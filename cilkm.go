// Package cilkm is the top-level facade of this reproduction of
// "Memory-Mapping Support for Reducer Hyperobjects" (Lee, Shafi, Leiserson,
// SPAA 2012).
//
// It re-exports the pieces a typical application needs — a work-stealing
// fork-join session, the two reducer mechanisms, and constructors for the
// common reducer types — so that user code reads much like Cilk code:
//
//	s := cilkm.NewSession(cilkm.MemoryMapped, 8)
//	defer s.Close()
//	sum := cilkm.NewAdd[int](s.Engine())
//	_ = s.Run(func(c *cilkm.Context) {
//	    c.ParallelFor(0, n, func(c *cilkm.Context, i int) { sum.Add(c, 1) })
//	})
//	fmt.Println(sum.Value())
//
// The building blocks live in the internal packages:
//
//   - internal/sched    — the work-stealing scheduler (Fork, ParallelFor).
//   - internal/core     — the memory-mapped reducer mechanism (Cilk-M).
//   - internal/hypermap — the hypermap baseline (Cilk Plus).
//   - internal/tlmm     — the modelled thread-local memory mapping substrate.
//   - internal/spa      — the sparse-accumulator view maps.
//   - internal/reducers — the typed reducer library.
//   - internal/pbfs     — the PBFS application benchmark.
//   - internal/bench    — the harness that regenerates the paper's figures.
package cilkm

import (
	"cmp"

	"repro/internal/core"
	"repro/internal/reducers"
	"repro/internal/sched"
)

// Context is the execution context handed to parallel code; it provides
// Fork, ForkN and ParallelFor.
type Context = sched.Context

// Session couples a work-stealing scheduler with a reducer engine.
type Session = core.Session

// Engine is a reducer mechanism (memory-mapped or hypermap).
type Engine = core.Engine

// Monoid defines a reducer's algebra.
type Monoid = core.Monoid

// Reducer is an untyped reducer handle.
type Reducer = core.Reducer

// Mechanism selects the reducer implementation.
type Mechanism = reducers.Mechanism

// Reducer mechanisms.
const (
	// MemoryMapped is the paper's contribution (Cilk-M).
	MemoryMapped = reducers.MemoryMapped
	// Hypermap is the Cilk Plus baseline.
	Hypermap = reducers.Hypermap
)

// EngineOptions tunes engine construction (instrumentation, address-space
// modelling).
type EngineOptions = reducers.EngineOptions

// NewSession creates a session with the given mechanism and worker count.
func NewSession(m Mechanism, workers int) *Session {
	return reducers.NewSession(m, workers, EngineOptions{})
}

// NewSessionWithOptions creates a session with explicit engine options.
func NewSessionWithOptions(m Mechanism, workers int, opts EngineOptions) *Session {
	return reducers.NewSession(m, workers, opts)
}

// NewEngine creates a stand-alone reducer engine (useful with
// core.NewSessionWithConfig for custom scheduler settings).
func NewEngine(m Mechanism, workers int, opts EngineOptions) Engine {
	return reducers.NewEngine(m, workers, opts)
}

// NewAdd registers a sum reducer.
func NewAdd[T reducers.Number](eng Engine) *reducers.Add[T] { return reducers.NewAdd[T](eng) }

// NewMin registers a minimum reducer.
func NewMin[T cmp.Ordered](eng Engine) *reducers.Min[T] { return reducers.NewMin[T](eng) }

// NewMax registers a maximum reducer.
func NewMax[T cmp.Ordered](eng Engine) *reducers.Max[T] { return reducers.NewMax[T](eng) }

// NewList registers a list-append reducer.
func NewList[T any](eng Engine) *reducers.List[T] { return reducers.NewList[T](eng) }

// NewAnd registers a logical-AND reducer.
func NewAnd(eng Engine) *reducers.And { return reducers.NewAnd(eng) }

// NewOr registers a logical-OR reducer.
func NewOr(eng Engine) *reducers.Or { return reducers.NewOr(eng) }

// NewString registers a string-concatenation reducer.
func NewString(eng Engine) *reducers.String { return reducers.NewString(eng) }

// NewMapOf registers a map-union reducer with the given combiner.
func NewMapOf[K comparable, V any](eng Engine, combine func(V, V) V) *reducers.MapOf[K, V] {
	return reducers.NewMapOf[K, V](eng, combine)
}

// NewCustom registers a reducer over an arbitrary monoid.
func NewCustom(eng Engine, m Monoid) *reducers.Custom { return reducers.NewCustom(eng, m) }
