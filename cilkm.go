// Package cilkm is the top-level facade of this reproduction of
// "Memory-Mapping Support for Reducer Hyperobjects" (Lee, Shafi, Leiserson,
// SPAA 2012).
//
// It re-exports the pieces a typical application needs — a work-stealing
// fork-join session built with functional options, the two reducer
// mechanisms, and constructors for the typed reducer library — so that
// user code reads much like Cilk code while every reducer update stays
// fully typed:
//
//	s := cilkm.New(cilkm.WithMechanism(cilkm.MemoryMapped), cilkm.WithWorkers(8))
//	defer s.Close()
//	sum := cilkm.NewAdd[int](s.Engine())
//	_ = s.Run(func(c *cilkm.Context) {
//	    c.ParallelFor(0, n, func(c *cilkm.Context, i int) { sum.Add(c, 1) })
//	})
//	fmt.Println(sum.Value())
//
// Every typed reducer embeds Handle, whose View(c) returns a typed *V
// resolved through a per-context cache keyed on the worker view epoch: the
// steady-state update path performs no interface dispatch, no runtime type
// assertion and no allocation.  Custom typed reducers are built from a
// TypedMonoid with NewCustomOf (or by embedding Handle directly).
//
// The building blocks live in the internal packages:
//
//   - internal/sched    — the work-stealing scheduler (Fork, ParallelFor).
//   - internal/core     — the memory-mapped reducer mechanism (Cilk-M).
//   - internal/hypermap — the hypermap baseline (Cilk Plus).
//   - internal/tlmm     — the modelled thread-local memory mapping substrate.
//   - internal/spa      — the sparse-accumulator view maps.
//   - internal/reducers — the typed reducer library.
//   - internal/pbfs     — the PBFS application benchmark.
//   - internal/bench    — the harness that regenerates the paper's figures.
package cilkm

import (
	"cmp"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/reducers"
	"repro/internal/sched"
)

// Context is the execution context handed to parallel code; it provides
// Fork, ForkN and ParallelFor.
type Context = sched.Context

// Session couples a work-stealing scheduler with a reducer engine.
type Session = core.Session

// Engine is a reducer mechanism (memory-mapped or hypermap).
type Engine = core.Engine

// Monoid defines a reducer's algebra (untyped; see TypedMonoid).
type Monoid = core.Monoid

// TypedMonoid is the generics-first monoid interface: Identity and Reduce
// over a concrete view type, adapted once into the untyped engine monoid
// at registration.
type TypedMonoid[V any] = reducers.TypedMonoid[V]

// TypedFuncMonoid adapts a pair of typed functions into a TypedMonoid.
type TypedFuncMonoid[V any] = reducers.TypedFuncMonoid[V]

// Handle is the generic typed-reducer core: View(c) resolves the calling
// context's local view as a typed pointer through a per-context cache
// invalidated by the worker view epoch.  Embed it to build new typed
// reducer kinds.
type Handle[V any] = reducers.Handle[V]

// Extreme is the view type of the Min and Max reducers.
type Extreme[T cmp.Ordered] = reducers.Extreme[T]

// Reducer is an untyped reducer handle.
type Reducer = core.Reducer

// PanicError is the error returned by Session.RunErr and Session.RunContext
// when parallel code panics: the job is aborted, its partial views are
// released, and the original panic value plus the captured stack surface
// here instead of crashing the caller.  errors.As-compatible; Unwrap
// returns the payload when the code panicked with an error value.
type PanicError = sched.PanicError

// ErrClosed is returned by Session.Run (and friends) after Close.
var ErrClosed = sched.ErrClosed

// Mechanism selects the reducer implementation.
type Mechanism = reducers.Mechanism

// Reducer mechanisms.
const (
	// MemoryMapped is the paper's contribution (Cilk-M).
	MemoryMapped = reducers.MemoryMapped
	// Hypermap is the Cilk Plus baseline.
	Hypermap = reducers.Hypermap
)

// Mechanisms lists all mechanisms in display order.
func Mechanisms() []Mechanism { return reducers.Mechanisms() }

// Exporter gathers metric samples from registered sources and serves them
// over HTTP as Prometheus text exposition format or expvar-style JSON.
// Create one with NewExporter and attach it to a session with
// WithMetricsExporter.
type Exporter = metrics.Exporter

// MetricSample is one exported time-series value: a named counter or
// gauge, optionally carrying a single label pair.
type MetricSample = metrics.MetricSample

// MetricSource is implemented by subsystems that can be sampled for
// export; custom application sources can register alongside the runtime's
// on the same Exporter.
type MetricSource = metrics.Source

// NewExporter creates an empty metrics exporter.
func NewExporter() *Exporter { return metrics.NewExporter() }

// Option configures New (and NewEngineWith): mechanism, worker count, and
// the engine knobs that used to live in the EngineOptions struct.
type Option func(*options)

type options struct {
	mech     Mechanism
	workers  int
	eng      reducers.EngineOptions
	exporter *Exporter
	// svc carries the resident-service knobs; only NewService reads it
	// (see service.go).
	svc sched.ServiceConfig
}

// WithMechanism selects the reducer implementation (default MemoryMapped).
func WithMechanism(m Mechanism) Option {
	return func(o *options) { o.mech = m }
}

// WithWorkers sets the number of workers; zero or unset selects
// runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithTiming enables duration measurement of the reduce overheads.
func WithTiming() Option {
	return func(o *options) { o.eng.Timing = true }
}

// WithCountLookups enables lookup counting.  Counting routes typed handle
// accesses through the engine's counted lookup path, so enable it before
// creating reducers.
func WithCountLookups() Option {
	return func(o *options) { o.eng.CountLookups = true }
}

// WithModelAddressSpace backs the memory-mapped engine's SPA pages with the
// simulated TLMM address space (ignored by the hypermap engine).
func WithModelAddressSpace() Option {
	return func(o *options) { o.eng.ModelAddressSpace = true }
}

// WithMergeBatchSize sets the memory-mapped engine's hypermerge batch size;
// zero keeps the default (ignored by the hypermap engine).
func WithMergeBatchSize(n int) Option {
	return func(o *options) { o.eng.MergeBatchSize = n }
}

// WithParallelMergeThreshold sets how many reduce pairs one hypermerge must
// carry before the memory-mapped engine fans its batches out through the
// scheduler; zero keeps the default (ignored by the hypermap engine).
func WithParallelMergeThreshold(n int) Option {
	return func(o *options) { o.eng.ParallelMergeThreshold = n }
}

// WithDirectoryShards sets the number of reducer-directory shards for
// either engine; zero sizes the directory from the worker count.
func WithDirectoryShards(n int) Option {
	return func(o *options) { o.eng.DirectoryShards = n }
}

// WithAdaptiveMerge lets the memory-mapped engine retune its hypermerge
// batching knobs (MergeBatchSize, ParallelMergeThreshold) from live
// pipeline signals — reduce pairs per merge, batch occupancy, the
// identity-elision rate — at trace boundaries.  Knobs set explicitly with
// WithMergeBatchSize or WithParallelMergeThreshold stay fixed overrides
// the tuner never touches.  Tuning only changes merge partitioning
// granularity, never reduce order, so results are unchanged.  Ignored by
// the hypermap engine.
func WithAdaptiveMerge() Option {
	return func(o *options) { o.eng.AdaptiveMerge = true }
}

// WithMetricsExporter registers the session's runtime signals on the given
// exporter: the reducer engine (merge pipeline, arenas, directory, page
// pool), the scheduler (steals, forks, merge tasks), and the
// fault-injection plan.  The exporter is an http.Handler — mount it to
// serve Prometheus text format (default) or expvar JSON (?format=expvar):
//
//	exp := cilkm.NewExporter()
//	s := cilkm.New(cilkm.WithMetricsExporter(exp))
//	http.Handle("/metrics", exp)
//
// Sampling reads lock-free counters, so scraping never perturbs a run.
func WithMetricsExporter(exp *Exporter) Option {
	return func(o *options) { o.exporter = exp }
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// New creates a session from functional options: mechanism, worker count
// and engine knobs in one variadic constructor.
//
//	s := cilkm.New()                                  // memory-mapped, GOMAXPROCS workers
//	s := cilkm.New(cilkm.WithMechanism(cilkm.Hypermap),
//	               cilkm.WithWorkers(8),
//	               cilkm.WithTiming())
func New(opts ...Option) *Session {
	o := buildOptions(opts)
	s := reducers.NewSession(o.mech, o.workers, o.eng)
	if o.exporter != nil {
		// The engines implement metrics.Source as an optional interface;
		// registration replaces by name, so a later session pointed at the
		// same exporter takes over the endpoint.
		if src, ok := s.Engine().(MetricSource); ok {
			o.exporter.Register("engine", src)
		}
		o.exporter.Register("sched", s.Runtime())
		o.exporter.Register("faultinject", metrics.SourceFunc(faultinject.SampleMetrics))
	}
	return s
}

// NewEngineWith creates a stand-alone reducer engine from the same
// functional options as New (useful with core.NewSessionWithConfig for
// custom scheduler settings).
func NewEngineWith(opts ...Option) Engine {
	o := buildOptions(opts)
	return reducers.NewEngine(o.mech, o.workers, o.eng)
}

// EngineOptions tunes engine construction (instrumentation, address-space
// modelling).
//
// Deprecated: use the functional options accepted by New and NewEngineWith.
type EngineOptions = reducers.EngineOptions

// NewSession creates a session with the given mechanism and worker count.
//
// Deprecated: use New with WithMechanism and WithWorkers.
func NewSession(m Mechanism, workers int) *Session {
	return New(WithMechanism(m), WithWorkers(workers))
}

// NewSessionWithOptions creates a session with explicit engine options.
//
// Deprecated: use New with functional options.
func NewSessionWithOptions(m Mechanism, workers int, opts EngineOptions) *Session {
	return reducers.NewSession(m, workers, opts)
}

// NewEngine creates a stand-alone reducer engine.
//
// Deprecated: use NewEngineWith with functional options.
func NewEngine(m Mechanism, workers int, opts EngineOptions) Engine {
	return reducers.NewEngine(m, workers, opts)
}

// NewAdd registers a sum reducer.
func NewAdd[T reducers.Number](eng Engine) *reducers.Add[T] { return reducers.NewAdd[T](eng) }

// NewMin registers a minimum reducer.
func NewMin[T cmp.Ordered](eng Engine) *reducers.Min[T] { return reducers.NewMin[T](eng) }

// NewMax registers a maximum reducer.
func NewMax[T cmp.Ordered](eng Engine) *reducers.Max[T] { return reducers.NewMax[T](eng) }

// NewList registers a list-append reducer.
func NewList[T any](eng Engine) *reducers.List[T] { return reducers.NewList[T](eng) }

// NewAnd registers a logical-AND reducer.
func NewAnd(eng Engine) *reducers.And { return reducers.NewAnd(eng) }

// NewOr registers a logical-OR reducer.
func NewOr(eng Engine) *reducers.Or { return reducers.NewOr(eng) }

// NewString registers a string-concatenation reducer.
func NewString(eng Engine) *reducers.String { return reducers.NewString(eng) }

// NewMapOf registers a map-union reducer with the given combiner.
func NewMapOf[K comparable, V any](eng Engine, combine func(V, V) V) *reducers.MapOf[K, V] {
	return reducers.NewMapOf[K, V](eng, combine)
}

// NewCustomOf registers a typed reducer over an arbitrary TypedMonoid.
func NewCustomOf[V any](eng Engine, m TypedMonoid[V]) *reducers.CustomOf[V] {
	return reducers.NewCustomOf[V](eng, m)
}

// NewHandle registers a typed monoid and returns the bare typed handle, for
// callers embedding Handle in their own reducer types.
func NewHandle[V any](eng Engine, m TypedMonoid[V]) Handle[V] {
	return reducers.NewHandle[V](eng, m)
}

// NewCustom registers a reducer over an arbitrary untyped monoid.
//
// Deprecated: use NewCustomOf with a TypedMonoid, which keeps the view
// typed end to end.
func NewCustom(eng Engine, m Monoid) *reducers.Custom { return reducers.NewCustom(eng, m) }
