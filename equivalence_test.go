package cilkm_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	cilkm "repro"
	"repro/internal/core"
	"repro/internal/reducers"
)

// opTree is a randomly generated fork structure used to check that both
// reducer mechanisms produce exactly the serial result for a
// non-commutative reduction, whatever the shape of the parallelism.
type opTree struct {
	label    int
	children []*opTree
}

// genTree builds a random tree with at most maxNodes nodes.
func genTree(rng *rand.Rand, maxNodes int) *opTree {
	counter := 0
	var build func(depth int) *opTree
	build = func(depth int) *opTree {
		counter++
		n := &opTree{label: counter}
		if depth >= 6 || counter >= maxNodes {
			return n
		}
		kids := rng.Intn(3)
		for i := 0; i < kids && counter < maxNodes; i++ {
			n.children = append(n.children, build(depth+1))
		}
		return n
	}
	return build(0)
}

// serialTrace produces the reference preorder label sequence.
func serialTrace(n *opTree, out *[]int) {
	if n == nil {
		return
	}
	*out = append(*out, n.label)
	for _, c := range n.children {
		serialTrace(c, out)
	}
}

// parallelTrace walks the tree with ForkN, appending to a list reducer.
func parallelTrace(c *cilkm.Context, list interface {
	PushBack(*cilkm.Context, int)
}, n *opTree, slow bool) {
	if n == nil {
		return
	}
	if slow {
		// A short sleep yields the processor so that steals occur even on
		// a single-CPU host, exercising view creation and hypermerges.
		time.Sleep(5 * time.Microsecond)
	}
	list.PushBack(c, n.label)
	branches := make([]func(*cilkm.Context), len(n.children))
	for i, child := range n.children {
		child := child
		branches[i] = func(c *cilkm.Context) { parallelTrace(c, list, child, slow) }
	}
	c.ForkN(branches...)
}

// TestPropertyMechanismsMatchSerialOnRandomTrees is the repository's
// end-to-end determinism property: for random fork trees, the list built by
// parallel execution equals the serial preorder under both mechanisms.
func TestPropertyMechanismsMatchSerialOnRandomTrees(t *testing.T) {
	sessions := map[cilkm.Mechanism]*cilkm.Session{
		cilkm.MemoryMapped: cilkm.NewSession(cilkm.MemoryMapped, 3),
		cilkm.Hypermap:     cilkm.NewSession(cilkm.Hypermap, 3),
	}
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()

	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := genTree(rng, 120)
		var want []int
		serialTrace(tree, &want)
		for mech, s := range sessions {
			list := cilkm.NewList[int](s.Engine())
			err := s.Run(func(c *cilkm.Context) {
				parallelTrace(c, list, tree, true)
			})
			if err != nil {
				t.Logf("%v: run failed: %v", mech, err)
				return false
			}
			got := list.Value()
			list.Close()
			if len(got) != len(want) {
				t.Logf("%v: length %d, want %d", mech, len(got), len(want))
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					t.Logf("%v: position %d: got %d, want %d", mech, i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMechanismsAgreeOnAggregates cross-checks that both mechanisms compute
// identical sums, minima and maxima for the same deterministic workload.
func TestMechanismsAgreeOnAggregates(t *testing.T) {
	type answer struct {
		sum      int64
		min, max uint64
	}
	answers := make(map[cilkm.Mechanism]answer)
	const n = 50_000
	for _, mech := range []cilkm.Mechanism{cilkm.MemoryMapped, cilkm.Hypermap} {
		s := cilkm.NewSession(mech, 4)
		sum := cilkm.NewAdd[int64](s.Engine())
		mn := cilkm.NewMin[uint64](s.Engine())
		mx := cilkm.NewMax[uint64](s.Engine())
		err := s.Run(func(c *cilkm.Context) {
			c.ParallelFor(0, n, func(c *cilkm.Context, i int) {
				v := uint64(i)*0x9E3779B97F4A7C15 + 7
				sum.Add(c, int64(v%1000))
				mn.Update(c, v)
				mx.Update(c, v)
			})
		})
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		a := answer{sum: sum.Value()}
		a.min, _ = mn.Value()
		a.max, _ = mx.Value()
		answers[mech] = a
		s.Close()
	}
	if answers[cilkm.MemoryMapped] != answers[cilkm.Hypermap] {
		t.Fatalf("mechanisms disagree: %+v vs %+v",
			answers[cilkm.MemoryMapped], answers[cilkm.Hypermap])
	}
	if fmt.Sprintf("%v", answers[cilkm.MemoryMapped]) == "" {
		t.Fatal("unreachable")
	}
}

// TestReadOnlyAccessesPreserveEquivalence mixes mutable updates with
// read-only ReadView accesses under steal-heavy execution on both
// mechanisms.  Read-only accesses leave the written bit clear, so the
// runtime elides those views from every hypermerge; the test pins that the
// elision is semantically invisible — written reducers still reduce to the
// serial result and read-only reducers stay at the identity.
func TestReadOnlyAccessesPreserveEquivalence(t *testing.T) {
	const n = 4000
	for _, mech := range []cilkm.Mechanism{cilkm.MemoryMapped, cilkm.Hypermap} {
		s := cilkm.NewSession(mech, 4)
		written := cilkm.NewAdd[int64](s.Engine())
		watched := cilkm.NewAdd[int64](s.Engine())
		peeks := cilkm.NewAdd[int64](s.Engine())
		err := s.Run(func(c *cilkm.Context) {
			c.ParallelForGrain(0, n, 8, func(c *cilkm.Context, i int) {
				if i%16 == 0 {
					time.Sleep(time.Microsecond) // widen the steal window
				}
				written.Add(c, 1)
				// Read-only peek at a reducer this trace never writes: the
				// local view is an identity view and must be elided, never
				// merged, and reading it must always see the identity.
				if v := *watched.ReadView(c); v != 0 {
					t.Errorf("%v: ReadView observed %d, want identity 0", mech, v)
				}
				// Read-only peek at a reducer the same trace also writes:
				// must observe the trace-local running value, not identity.
				peeks.Add(c, 1)
				if v := *peeks.ReadView(c); v < 1 {
					t.Errorf("%v: ReadView after write observed %d", mech, v)
				}
			})
		})
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if got := written.Value(); got != n {
			t.Fatalf("%v: written = %d, want %d", mech, got, n)
		}
		if got := peeks.Value(); got != n {
			t.Fatalf("%v: peeks = %d, want %d", mech, got, n)
		}
		if got := watched.Value(); got != 0 {
			t.Fatalf("%v: read-only reducer = %d, want 0", mech, got)
		}
		s.Close()
	}
}

// TestFastPathInvalidationOnMidRunUnregister pins the lookup fast path's
// invalidation contract against the nastiest reuse scenario: a reducer is
// unregistered mid-run and its slot address is immediately recycled by a
// fresh registration.  With a single directory shard the shard's LIFO free
// stack makes the reuse deterministic.  The Unregister must bump the view
// epoch (so every per-handle and per-context cache re-resolves), and the
// handle occupying the recycled address must read its own identity view —
// never the retired reducer's value — on both engines.
func TestFastPathInvalidationOnMidRunUnregister(t *testing.T) {
	const n = 1000
	for _, mech := range []cilkm.Mechanism{cilkm.MemoryMapped, cilkm.Hypermap} {
		s := cilkm.New(cilkm.WithMechanism(mech), cilkm.WithWorkers(2),
			cilkm.WithDirectoryShards(1))
		keep := cilkm.NewAdd[int64](s.Engine())
		var reused *reducers.Add[int64]
		err := s.Run(func(c *cilkm.Context) {
			doomed := cilkm.NewAdd[int64](s.Engine())
			doomed.Add(c, 41)
			keep.Add(c, 1)
			if got := *doomed.ReadView(c); got != 41 {
				t.Errorf("%v: doomed view = %d, want 41", mech, got)
			}
			addr := doomed.Reducer().Addr()
			before := c.ViewEpoch()
			doomed.Close()
			if after := c.ViewEpoch(); after <= before {
				t.Errorf("%v: Unregister left the view epoch at %d (was %d); "+
					"stale fast-path caches would survive", mech, after, before)
			}
			reused = cilkm.NewAdd[int64](s.Engine())
			if got := reused.Reducer().Addr(); got != addr {
				t.Fatalf("%v: recycled registration landed at %v, want reuse of %v",
					mech, got, addr)
			}
			// The recycled address must resolve to the new reducer's
			// identity, not the retired reducer's 41.
			if got := *reused.ReadView(c); got != 0 {
				t.Errorf("%v: reused slot's first read = %d, want identity 0", mech, got)
			}
			c.ParallelForGrain(0, n, 8, func(c *cilkm.Context, i int) {
				if i%64 == 0 {
					time.Sleep(time.Microsecond) // widen the steal window
				}
				reused.Add(c, 1)
				keep.Add(c, 1)
			})
		})
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if got := reused.Value(); got != n {
			t.Fatalf("%v: reused-slot reducer = %d, want %d", mech, got, n)
		}
		if got := keep.Value(); got != n+1 {
			t.Fatalf("%v: surviving reducer = %d, want %d", mech, got, n+1)
		}
		s.Close()
	}
}

// TestFastPathInvalidationOnAdaptiveRetune drives enough hypermerges
// through an adaptively tuned engine to force the merge tuner through
// several retune windows, while a typed handle is read between every merge.
// Each spawned child runs as its own trace, so every Wait performs a real
// hypermerge that bumps the worker's view epoch; the handle's fast path
// must re-resolve after each bump and observe the running merged total — a
// stale cached view would report a stale count.  Retuning itself only
// changes batching granularity, and the test pins that the totals stay
// exact on both engines (the tuner is memory-mapped-only; the hypermap
// engine runs the same schedule as the no-tuner control).
func TestFastPathInvalidationOnAdaptiveRetune(t *testing.T) {
	const rounds = 80 // > 2 full retune windows of 32 hypermerges
	for _, mech := range []cilkm.Mechanism{cilkm.MemoryMapped, cilkm.Hypermap} {
		s := cilkm.New(cilkm.WithMechanism(mech), cilkm.WithWorkers(2),
			cilkm.WithAdaptiveMerge())
		sum := cilkm.NewAdd[int64](s.Engine())
		err := s.Run(func(c *cilkm.Context) {
			start := c.ViewEpoch()
			for round := 1; round <= rounds; round++ {
				g := c.NewGroup()
				g.Spawn(func(c *cilkm.Context) { sum.Add(c, 1) })
				g.Wait()
				// The child's trace deposited one written view and Wait
				// merged it here, bumping the epoch; the fast path must
				// re-resolve and see every contribution so far.
				if got := *sum.ReadView(c); got != int64(round) {
					t.Fatalf("%v: after %d merges the fast path reads %d",
						mech, round, got)
				}
			}
			if end := c.ViewEpoch(); end <= start {
				t.Errorf("%v: %d hypermerges never bumped the view epoch (%d -> %d)",
					mech, rounds, start, end)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if got := sum.Value(); got != rounds {
			t.Fatalf("%v: merged total = %d, want %d", mech, got, rounds)
		}
		if mm, ok := s.Engine().(*core.MM); ok {
			if _, _, adaptive, retunes := mm.MergeTuning(); !adaptive || retunes == 0 {
				t.Fatalf("adaptive tuner never retuned (adaptive=%v retunes=%d); "+
					"the test exercised no retune-epoch interaction", adaptive, retunes)
			}
		}
		s.Close()
	}
}
