package cilkm_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	cilkm "repro"
)

// opTree is a randomly generated fork structure used to check that both
// reducer mechanisms produce exactly the serial result for a
// non-commutative reduction, whatever the shape of the parallelism.
type opTree struct {
	label    int
	children []*opTree
}

// genTree builds a random tree with at most maxNodes nodes.
func genTree(rng *rand.Rand, maxNodes int) *opTree {
	counter := 0
	var build func(depth int) *opTree
	build = func(depth int) *opTree {
		counter++
		n := &opTree{label: counter}
		if depth >= 6 || counter >= maxNodes {
			return n
		}
		kids := rng.Intn(3)
		for i := 0; i < kids && counter < maxNodes; i++ {
			n.children = append(n.children, build(depth+1))
		}
		return n
	}
	return build(0)
}

// serialTrace produces the reference preorder label sequence.
func serialTrace(n *opTree, out *[]int) {
	if n == nil {
		return
	}
	*out = append(*out, n.label)
	for _, c := range n.children {
		serialTrace(c, out)
	}
}

// parallelTrace walks the tree with ForkN, appending to a list reducer.
func parallelTrace(c *cilkm.Context, list interface {
	PushBack(*cilkm.Context, int)
}, n *opTree, slow bool) {
	if n == nil {
		return
	}
	if slow {
		// A short sleep yields the processor so that steals occur even on
		// a single-CPU host, exercising view creation and hypermerges.
		time.Sleep(5 * time.Microsecond)
	}
	list.PushBack(c, n.label)
	branches := make([]func(*cilkm.Context), len(n.children))
	for i, child := range n.children {
		child := child
		branches[i] = func(c *cilkm.Context) { parallelTrace(c, list, child, slow) }
	}
	c.ForkN(branches...)
}

// TestPropertyMechanismsMatchSerialOnRandomTrees is the repository's
// end-to-end determinism property: for random fork trees, the list built by
// parallel execution equals the serial preorder under both mechanisms.
func TestPropertyMechanismsMatchSerialOnRandomTrees(t *testing.T) {
	sessions := map[cilkm.Mechanism]*cilkm.Session{
		cilkm.MemoryMapped: cilkm.NewSession(cilkm.MemoryMapped, 3),
		cilkm.Hypermap:     cilkm.NewSession(cilkm.Hypermap, 3),
	}
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()

	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := genTree(rng, 120)
		var want []int
		serialTrace(tree, &want)
		for mech, s := range sessions {
			list := cilkm.NewList[int](s.Engine())
			err := s.Run(func(c *cilkm.Context) {
				parallelTrace(c, list, tree, true)
			})
			if err != nil {
				t.Logf("%v: run failed: %v", mech, err)
				return false
			}
			got := list.Value()
			list.Close()
			if len(got) != len(want) {
				t.Logf("%v: length %d, want %d", mech, len(got), len(want))
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					t.Logf("%v: position %d: got %d, want %d", mech, i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMechanismsAgreeOnAggregates cross-checks that both mechanisms compute
// identical sums, minima and maxima for the same deterministic workload.
func TestMechanismsAgreeOnAggregates(t *testing.T) {
	type answer struct {
		sum      int64
		min, max uint64
	}
	answers := make(map[cilkm.Mechanism]answer)
	const n = 50_000
	for _, mech := range []cilkm.Mechanism{cilkm.MemoryMapped, cilkm.Hypermap} {
		s := cilkm.NewSession(mech, 4)
		sum := cilkm.NewAdd[int64](s.Engine())
		mn := cilkm.NewMin[uint64](s.Engine())
		mx := cilkm.NewMax[uint64](s.Engine())
		err := s.Run(func(c *cilkm.Context) {
			c.ParallelFor(0, n, func(c *cilkm.Context, i int) {
				v := uint64(i)*0x9E3779B97F4A7C15 + 7
				sum.Add(c, int64(v%1000))
				mn.Update(c, v)
				mx.Update(c, v)
			})
		})
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		a := answer{sum: sum.Value()}
		a.min, _ = mn.Value()
		a.max, _ = mx.Value()
		answers[mech] = a
		s.Close()
	}
	if answers[cilkm.MemoryMapped] != answers[cilkm.Hypermap] {
		t.Fatalf("mechanisms disagree: %+v vs %+v",
			answers[cilkm.MemoryMapped], answers[cilkm.Hypermap])
	}
	if fmt.Sprintf("%v", answers[cilkm.MemoryMapped]) == "" {
		t.Fatal("unreachable")
	}
}

// TestReadOnlyAccessesPreserveEquivalence mixes mutable updates with
// read-only ReadView accesses under steal-heavy execution on both
// mechanisms.  Read-only accesses leave the written bit clear, so the
// runtime elides those views from every hypermerge; the test pins that the
// elision is semantically invisible — written reducers still reduce to the
// serial result and read-only reducers stay at the identity.
func TestReadOnlyAccessesPreserveEquivalence(t *testing.T) {
	const n = 4000
	for _, mech := range []cilkm.Mechanism{cilkm.MemoryMapped, cilkm.Hypermap} {
		s := cilkm.NewSession(mech, 4)
		written := cilkm.NewAdd[int64](s.Engine())
		watched := cilkm.NewAdd[int64](s.Engine())
		peeks := cilkm.NewAdd[int64](s.Engine())
		err := s.Run(func(c *cilkm.Context) {
			c.ParallelForGrain(0, n, 8, func(c *cilkm.Context, i int) {
				if i%16 == 0 {
					time.Sleep(time.Microsecond) // widen the steal window
				}
				written.Add(c, 1)
				// Read-only peek at a reducer this trace never writes: the
				// local view is an identity view and must be elided, never
				// merged, and reading it must always see the identity.
				if v := *watched.ReadView(c); v != 0 {
					t.Errorf("%v: ReadView observed %d, want identity 0", mech, v)
				}
				// Read-only peek at a reducer the same trace also writes:
				// must observe the trace-local running value, not identity.
				peeks.Add(c, 1)
				if v := *peeks.ReadView(c); v < 1 {
					t.Errorf("%v: ReadView after write observed %d", mech, v)
				}
			})
		})
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if got := written.Value(); got != n {
			t.Fatalf("%v: written = %d, want %d", mech, got, n)
		}
		if got := peeks.Value(); got != n {
			t.Fatalf("%v: peeks = %d, want %d", mech, got, n)
		}
		if got := watched.Value(); got != 0 {
			t.Fatalf("%v: read-only reducer = %d, want 0", mech, got)
		}
		s.Close()
	}
}
