package cilkm_test

import (
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	cilkm "repro"
	"repro/internal/core"
)

// mergeHeavyRun drives a session through a steal- and merge-heavy workload:
// random fork trees appending to a list reducer (forcing ordered
// hypermerges) plus an arena-eligible sum reducer, repeated so arena free
// lists see reuse.
func mergeHeavyRun(t *testing.T, s *cilkm.Session) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	sum := cilkm.NewAdd[int64](s.Engine())
	defer sum.Close()
	// watched is only ever read: its identity views carry no writes, so the
	// hypermerge elides every one of them — the elision-rate signal.
	watched := cilkm.NewAdd[int64](s.Engine())
	defer watched.Close()
	for round := 0; round < 40; round++ {
		tree := genTree(rng, 80)
		list := cilkm.NewList[int](s.Engine())
		err := s.Run(func(c *cilkm.Context) {
			parallelTrace(c, list, tree, true)
			c.ParallelFor(0, 64, func(c *cilkm.Context, i int) {
				if i%8 == 0 {
					time.Sleep(time.Microsecond)
				}
				sum.Add(c, 1)
				_ = *watched.ReadView(c)
			})
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		list.Close()
	}
}

// TestExporterMatchesMergeStatsMM pins the tentpole contract on the
// memory-mapped engine: every pipeline counter visible through the
// exporter equals the engine's own MergeStats snapshot after a merge-heavy
// run, and the headline signals (steals, elisions, batch occupancy, arena
// hit rate) are nonzero.
func TestExporterMatchesMergeStatsMM(t *testing.T) {
	exp := cilkm.NewExporter()
	s := cilkm.New(
		cilkm.WithMechanism(cilkm.MemoryMapped),
		cilkm.WithWorkers(4),
		cilkm.WithCountLookups(),
		cilkm.WithMetricsExporter(exp),
	)
	defer s.Close()
	mergeHeavyRun(t, s)
	if err := s.Quiescent(); err != nil {
		t.Fatal(err)
	}

	mm := s.Engine().(*core.MM)
	ms := mm.MergeStats()
	m := exp.ExpvarMap()

	for name, want := range map[string]int64{
		"cilkm_merges_total.mm":            ms.Merges,
		"cilkm_merge_slots_total.mm":       ms.SlotsMerged,
		"cilkm_merge_reduces_total.mm":     ms.Reduces,
		"cilkm_merge_batches_total.mm":     ms.Batches,
		"cilkm_stale_view_drops_total.mm":  ms.StaleViewDrops,
		"cilkm_identity_elisions_total.mm": ms.IdentityElisions,
		"cilkm_lookup_cache_hits_total.mm": ms.CacheHits,
		"cilkm_lookups_total.mm":           mm.Lookups(),
	} {
		got, ok := m[name]
		if !ok {
			t.Errorf("exporter missing %s", name)
			continue
		}
		if int64(got) != want {
			t.Errorf("%s = %v, exporter disagrees with MergeStats %d", name, got, want)
		}
	}

	for _, name := range []string{
		"cilkm_sched_steals_total",
		"cilkm_identity_elisions_total.mm",
		"cilkm_merge_batch_occupancy.mm",
		"cilkm_arena_hit_rate.mm",
		"cilkm_merges_total.mm",
		"cilkm_pagepool_round_trips_total.mm",
		"cilkm_directory_registers_total.mm",
	} {
		if m[name] <= 0 {
			t.Errorf("%s = %v, want nonzero after a merge-heavy run", name, m[name])
		}
	}

	// The same samples must render on the HTTP endpoint in both formats.
	rec := httptest.NewRecorder()
	exp.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if body := rec.Body.String(); !strings.Contains(body, `cilkm_merges_total{engine="mm"}`) {
		t.Errorf("Prometheus endpoint missing merge counter:\n%.400s", body)
	}
	rec = httptest.NewRecorder()
	exp.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=expvar", nil))
	if body := rec.Body.String(); !strings.Contains(body, "cilkm_merges_total.mm") {
		t.Errorf("expvar endpoint missing merge counter:\n%.400s", body)
	}
}

// TestExporterMatchesStatsHypermap pins the same contract on the baseline
// engine, which exports the subset of signals it tracks.
func TestExporterMatchesStatsHypermap(t *testing.T) {
	exp := cilkm.NewExporter()
	s := cilkm.New(
		cilkm.WithMechanism(cilkm.Hypermap),
		cilkm.WithWorkers(4),
		cilkm.WithCountLookups(),
		cilkm.WithMetricsExporter(exp),
	)
	defer s.Close()
	mergeHeavyRun(t, s)
	if err := s.Quiescent(); err != nil {
		t.Fatal(err)
	}

	eng := s.Engine()
	m := exp.ExpvarMap()
	if got, want := int64(m["cilkm_lookups_total.hypermap"]), eng.Lookups(); got != want {
		t.Errorf("cilkm_lookups_total.hypermap = %d, engine reports %d", got, want)
	}
	if m["cilkm_sched_steals_total"] <= 0 {
		t.Error("cilkm_sched_steals_total = 0, want steals on a fork-heavy run")
	}
	if m["cilkm_directory_registers_total.hypermap"] <= 0 {
		t.Error("hypermap directory registrations missing from exporter")
	}
}

// TestAdaptiveMergeEquivalence reruns the repository's determinism
// property with the adaptive tuner enabled: for random fork trees the
// parallel list equals the serial preorder on both mechanisms, whatever
// knob values the tuner converges to.  Tuning only changes merge
// partitioning granularity, so results must be bit-identical.
func TestAdaptiveMergeEquivalence(t *testing.T) {
	for _, mech := range []cilkm.Mechanism{cilkm.MemoryMapped, cilkm.Hypermap} {
		s := cilkm.New(
			cilkm.WithMechanism(mech),
			cilkm.WithWorkers(3),
			cilkm.WithAdaptiveMerge(),
		)
		rng := rand.New(rand.NewSource(99))
		for round := 0; round < 40; round++ {
			tree := genTree(rng, 120)
			var want []int
			serialTrace(tree, &want)
			list := cilkm.NewList[int](s.Engine())
			err := s.Run(func(c *cilkm.Context) {
				parallelTrace(c, list, tree, true)
			})
			if err != nil {
				t.Fatalf("%v round %d: %v", mech, round, err)
			}
			got := list.Value()
			list.Close()
			if len(got) != len(want) {
				t.Fatalf("%v round %d: length %d, want %d", mech, round, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v round %d: position %d: got %d, want %d", mech, round, i, got[i], want[i])
				}
			}
		}
		s.Close()
	}
}

// TestAdaptiveMergeRetunesAndRespectsOverrides drives enough hypermerges
// through an adaptive engine for the tuner to fire, then checks that the
// knobs stay inside the documented clamps — and that an explicitly
// configured batch size is never touched.
func TestAdaptiveMergeRetunesAndRespectsOverrides(t *testing.T) {
	s := cilkm.New(
		cilkm.WithMechanism(cilkm.MemoryMapped),
		cilkm.WithWorkers(4),
		cilkm.WithAdaptiveMerge(),
	)
	mergeHeavyRun(t, s)
	mm := s.Engine().(*core.MM)
	batch, threshold, adaptive, retunes := mm.MergeTuning()
	s.Close()
	if !adaptive {
		t.Fatal("MergeTuning reports adaptive=false on an adaptive engine")
	}
	if retunes == 0 {
		t.Fatal("tuner never fired over a merge-heavy run")
	}
	if batch < 8 || batch > 512 {
		t.Errorf("batch size %d outside the [8,512] clamp", batch)
	}
	if threshold < 32 || threshold > 8192 {
		t.Errorf("parallel threshold %d outside the [32,8192] clamp", threshold)
	}

	// An explicit batch size is a fixed override the tuner must not touch.
	s2 := cilkm.New(
		cilkm.WithMechanism(cilkm.MemoryMapped),
		cilkm.WithWorkers(4),
		cilkm.WithAdaptiveMerge(),
		cilkm.WithMergeBatchSize(48),
	)
	mergeHeavyRun(t, s2)
	mm2 := s2.Engine().(*core.MM)
	batch2, _, _, retunes2 := mm2.MergeTuning()
	s2.Close()
	if batch2 != 48 {
		t.Errorf("explicit batch size changed to %d by the tuner", batch2)
	}
	if retunes2 == 0 {
		t.Error("tuner should still retune the non-fixed threshold knob")
	}
}
