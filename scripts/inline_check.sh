#!/bin/sh
# inline-check: pin the compiler's inlining decisions for the typed-lookup
# fast path.
#
# The steady-state lookup contract (docs/ARCHITECTURE.md, "Lookup fast
# path") depends on the Go inliner flattening the hit shape at every layer:
# the slot probe and owner-stamp check into the memory-mapped engine's
# LookupWordFast, the bucket-head probe into the hypermap engine's
# LookupWordFast, and the worker-id/epoch accessors into the handle's View
# and ReadView.  None of that is visible in a test — a regression (say, a
# helper growing past the 80-node inlining budget) silently turns a
# single-deref hit into a call chain.  This script greps the compiler's
# -gcflags=-m diagnostics for the exact decisions the fast path relies on
# and fails when any is gone.  The build cache replays diagnostics, so the
# check is stable across warm runs.
#
# Deliberately NOT asserted: `can inline (*Handle[go.shape.*]).View` — the
# generic View body cannot inline (the outlined miss call alone costs 57 of
# the 80-node budget), so the steady state is one direct monomorphized call
# whose interior is fully flattened.  The dictionary wrappers for concrete
# instantiations do inline, and that is asserted.
set -u

GO=${GO:-go}

out=$("$GO" build -gcflags=-m \
	./internal/spa ./internal/sched ./internal/core \
	./internal/hypermap ./internal/reducers 2>&1) || {
	printf '%s\n' "$out"
	echo "inline-check: build failed" >&2
	exit 1
}

fail=0

# require FILE-FRAGMENT DIAGNOSTIC: assert the -m output holds a line from
# a file matching FILE-FRAGMENT that contains DIAGNOSTIC verbatim.
require() {
	if ! printf '%s\n' "$out" | grep "$1" | grep -qF "$2"; then
		echo "inline-check: missing in $1: $2" >&2
		fail=1
	fi
}

# Layer 1: the SPA slot helpers themselves are inlinable.
require 'internal/spa/' 'can inline (*MapSet).Probe'
require 'internal/spa/' 'can inline Slot.FastHit'
require 'internal/spa/' 'can inline Slot.View'

# Layer 1 (baseline engine): the loop-free bucket-head probe is inlinable.
require 'internal/hypermap/hashtable.go' 'can inline (*hashTable).probeHead'

# Layer 1 (scheduler): the epoch and worker-id accessors are inlinable.
require 'internal/sched/context.go' 'can inline (*Context).ViewEpoch'
require 'internal/sched/context.go' 'can inline (*Context).WorkerID'
require 'internal/sched/worker.go' 'can inline (*Worker).ViewEpoch'

# Layer 2: the memory-mapped engine's LookupWordFast hit shape is fully
# flattened — probe, owner-stamp check, view word and epoch all inline.
require 'internal/core/lookupfast.go' 'inlining call to spa.(*MapSet).Probe'
require 'internal/core/lookupfast.go' 'inlining call to spa.Slot.FastHit'
require 'internal/core/lookupfast.go' 'inlining call to spa.Slot.View'
require 'internal/core/lookupfast.go' 'inlining call to sched.(*Worker).ViewEpoch'

# Layer 2 (baseline engine): the hypermap LookupWordFast hit shape —
# bucket-head probe (hash included) and epoch inline.
require 'internal/hypermap/lookupfast.go' 'inlining call to (*hashTable).probeHead'
require 'internal/hypermap/lookupfast.go' 'inlining call to (*hashTable).hash'
require 'internal/hypermap/lookupfast.go' 'inlining call to sched.(*Worker).ViewEpoch'

# Layer 3: the handle's View/ReadView hit checks use the inlined context
# accessors (no call, no worker-struct detour on the id), and the concrete
# dictionary wrappers callers bind to are themselves inlinable.
require 'internal/reducers/handle.go' 'inlining call to sched.(*Context).WorkerID'
require 'internal/reducers/handle.go' 'inlining call to sched.(*Context).ViewEpoch'
require 'internal/reducers/handle.go' 'can inline (*Handle[bool]).View'
require 'internal/reducers/handle.go' 'can inline (*Handle[bool]).ReadView'

if [ "$fail" -ne 0 ]; then
	echo "inline-check: the lookup fast path is no longer fully inlined;" >&2
	echo "inline-check: relevant compiler output follows" >&2
	printf '%s\n' "$out" | grep -E 'lookupfast|Probe|FastHit|probeHead|ViewEpoch|WorkerID|Handle' >&2 || true
	exit 1
fi
echo "inline-check: all fast-path inlining decisions hold"
