// Regression tests for job-boundary failure containment: a monoid that
// panics mid-hypermerge must not leak pagepool pages or arena view blocks,
// and a cancelled job must settle fully, contribute nothing, and leave the
// engine reusable.
package cilkm_test

import (
	"context"
	"errors"
	"testing"
	"time"

	cilkm "repro"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// TestReducePanicConservesResources arms the monoid/reduce failpoint so the
// first hypermerge reduce of a job panics, and asserts — on both engines —
// that the failure is contained, the pagepool is conserved (every page
// fetched for view transferal came back), the view arenas balance, and the
// engine produces exact results once the fault is gone.
func TestReducePanicConservesResources(t *testing.T) {
	for _, mech := range cilkm.Mechanisms() {
		mech := mech
		t.Run(mech.String(), func(t *testing.T) {
			s := newChaosSession(mech)
			defer s.Close()
			sum := cilkm.NewAdd[int](s.Engine())

			plan := faultinject.NewPlan(7).Arm(faultinject.MonoidReduce, faultinject.Rule{Prob: 1, Limit: 1})
			deactivate := faultinject.Activate(plan)
			deactivated := false
			defer func() {
				if !deactivated {
					deactivate()
				}
			}()

			// A hypermerge only happens when a continuation is stolen, so
			// retry the sleepy job until the armed fault actually fires.
			var jobErr error
			succeeded := 0
			for attempt := 0; attempt < 20 && jobErr == nil; attempt++ {
				jobErr = s.RunErr(func(c *cilkm.Context) {
					c.ParallelForGrain(0, 100, 1, func(c *cilkm.Context, i int) {
						time.Sleep(10 * time.Microsecond)
						sum.Add(c, 1)
					})
				})
				if jobErr == nil {
					succeeded++
				}
				if qerr := s.Quiescent(); qerr != nil {
					t.Fatalf("attempt %d (err=%v): engine not quiescent: %v", attempt, jobErr, qerr)
				}
			}
			if jobErr == nil {
				t.Fatalf("monoid/reduce fault never fired in 20 jobs (no steals?)")
			}
			var fault *faultinject.Fault
			if !errors.As(jobErr, &fault) || fault.ID != faultinject.MonoidReduce {
				t.Fatalf("job failed with %v, want a monoid/reduce fault", jobErr)
			}
			if mm, ok := s.Engine().(*core.MM); ok {
				if out := mm.PoolStats().Outstanding(); out != 0 {
					t.Fatalf("reduce panic leaked %d pagepool pages", out)
				}
			}
			deactivate()
			deactivated = true

			// The failed job contributed nothing; clean jobs stay exact.
			if got, want := sum.Value(), succeeded*100; got != want {
				t.Fatalf("failed job leaked a partial contribution: sum=%d want %d", got, want)
			}
			if err := s.RunErr(func(c *cilkm.Context) {
				c.ParallelForGrain(0, 100, 1, func(c *cilkm.Context, i int) { sum.Add(c, 1) })
			}); err != nil {
				t.Fatalf("clean job after reduce panic: %v", err)
			}
			if got, want := sum.Value(), (succeeded+1)*100; got != want {
				t.Fatalf("sum=%d after clean job, want %d", got, want)
			}
			if err := s.Quiescent(); err != nil {
				t.Fatalf("engine not quiescent after recovery: %v", err)
			}
		})
	}
}

// TestRunContextCancelSettles cancels a long job mid-flight and asserts the
// containment contract: RunContext returns the context error (never hangs),
// the cancelled job contributes nothing to the reducers, the engine is
// quiescent, and the session remains fully usable.
func TestRunContextCancelSettles(t *testing.T) {
	for _, mech := range cilkm.Mechanisms() {
		mech := mech
		t.Run(mech.String(), func(t *testing.T) {
			s := newChaosSession(mech)
			defer s.Close()
			sum := cilkm.NewAdd[int](s.Engine())

			ctx, cancel := context.WithCancel(context.Background())
			started := make(chan struct{})
			go func() {
				<-started
				cancel()
			}()
			err := s.RunContext(ctx, func(c *cilkm.Context) {
				c.ParallelForGrain(0, 1<<20, 1, func(c *cilkm.Context, i int) {
					if i == 0 {
						close(started)
					}
					time.Sleep(5 * time.Microsecond)
					sum.Add(c, 1)
				})
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("RunContext returned %v, want context.Canceled", err)
			}
			if got := sum.Value(); got != 0 {
				t.Fatalf("cancelled job leaked a partial contribution: sum=%d", got)
			}
			if qerr := s.Quiescent(); qerr != nil {
				t.Fatalf("engine not quiescent after cancellation: %v", qerr)
			}
			if err := s.RunErr(func(c *cilkm.Context) {
				c.ParallelForGrain(0, 200, 1, func(c *cilkm.Context, i int) { sum.Add(c, 1) })
			}); err != nil {
				t.Fatalf("job after cancellation: %v", err)
			}
			if got := sum.Value(); got != 200 {
				t.Fatalf("sum=%d after post-cancel job, want 200", got)
			}
		})
	}
}
