// Chaos suite: sweeps seeded fault-injection plans over every compiled-in
// failpoint, on both reducer mechanisms, and asserts the PR's failure-
// containment contract end to end:
//
//   - an injected fault never crashes the process: it surfaces from
//     Session.RunErr as an error classifiable with errors.Is(err,
//     faultinject.ErrInjected), carrying the typed *faultinject.Fault and
//     the panicking goroutine's stack through *cilkm.PanicError;
//   - a job that fails (or merely ran under perturbation) leaves the
//     scheduler and the engine quiescent — no in-flight jobs or merges, no
//     pagepool pages outstanding, no worker-private views, balanced view-
//     arena accounting — which Session.Quiescent verifies after every job;
//   - reducers only ever observe complete jobs: after chaos is deactivated
//     a clean job still produces exactly the serial result, counting only
//     the successful jobs' contributions.
//
// The sweep is deterministic per seed (see faultinject): CHAOS_SEEDS widens
// the sweep (default 3 seeds per failpoint per mechanism).
package cilkm_test

import (
	"context"
	"errors"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	cilkm "repro"
	"repro/internal/faultinject"
	"repro/internal/reducers"
)

// chaosPoint arms one failpoint for one sweep leg.
type chaosPoint struct {
	id   faultinject.ID
	rule faultinject.Rule
	// storm selects the registration-storm scenario (registration-path
	// failpoints) instead of the fork-join job loop.
	storm bool
}

// chaosPoints lists the failpoints the sweep drives, with rules tuned so
// each leg sees both firing and non-firing hits: perturbation points fire
// often (they must not change results), fault points fire with a small
// limit so a job can fail and the next jobs run fault-free on a still-live
// plan.
var chaosPoints = []chaosPoint{
	{id: faultinject.SchedSteal, rule: faultinject.Rule{Prob: 0.3}},
	{id: faultinject.SchedPark, rule: faultinject.Rule{Prob: 0.5}},
	{id: faultinject.SchedMergeFork, rule: faultinject.Rule{Prob: 0.5}},
	{id: faultinject.MergeTask, rule: faultinject.Rule{Prob: 0.05, Limit: 3}},
	{id: faultinject.PagepoolGetN, rule: faultinject.Rule{Prob: 0.15, Limit: 3}},
	{id: faultinject.TLMMGrow, rule: faultinject.Rule{Prob: 0.5, Limit: 2}, storm: true},
	{id: faultinject.DirectoryRegister, rule: faultinject.Rule{Prob: 0.3}, storm: true},
	{id: faultinject.MonoidIdentity, rule: faultinject.Rule{Prob: 0.01, Limit: 2}},
	{id: faultinject.MonoidReduce, rule: faultinject.Rule{Prob: 0.2, Limit: 3}},
	{id: faultinject.EndTraceTransfer, rule: faultinject.Rule{Prob: 0.15, Limit: 3}},
}

// chaosSeeds returns the plan seeds to sweep; CHAOS_SEEDS=n widens it.
func chaosSeeds(t testing.TB) []uint64 {
	n := 3
	if s := os.Getenv("CHAOS_SEEDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("bad CHAOS_SEEDS=%q", s)
		}
		n = v
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i)*0x9E3779B97F4A7C15 + 1
	}
	return seeds
}

// newChaosSession builds a session tuned to reach every failpoint: the
// modelled address space wires the TLMM failpoints in, a single directory
// shard makes registrations fill SPA pages (and hence trigger growth)
// deterministically, and tiny merge batching pushes hypermerges onto the
// parallel fan-out path where the merge-task failpoints live.
func newChaosSession(mech cilkm.Mechanism) *cilkm.Session {
	return cilkm.New(
		cilkm.WithMechanism(mech),
		cilkm.WithWorkers(4),
		cilkm.WithModelAddressSpace(),
		cilkm.WithDirectoryShards(1),
		cilkm.WithMergeBatchSize(2),
		cilkm.WithParallelMergeThreshold(2),
	)
}

// assertContained accepts a nil error or a contained injected fault, and
// fails the test on anything else (a non-injected failure under chaos is a
// real bug, not chaos).
func assertContained(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		return
	}
	var pe *cilkm.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("job failed with a non-contained error: %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Errorf("contained panic lost its captured stack: %v", pe)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("job failed with a non-injected panic under chaos: %v", err)
	}
}

// chaosJob runs one reducer-heavy fork-join job: a grain-1 parallel loop in
// which every leaf touches every reducer, so steals produce deposits whose
// hypermerges carry enough matched reduce pairs to take the parallel
// fan-out path (where the merge-task failpoints live).
func chaosJob(s *cilkm.Session, sums []*reducers.Add[int], iters int) error {
	return s.RunErr(func(c *cilkm.Context) {
		c.ParallelForGrain(0, iters, 1, func(c *cilkm.Context, i int) {
			// Yield the CPU so parked workers wake and steal; without real
			// latency per leaf the owner drains the whole loop serially and
			// no deposits (hence no hypermerges) ever happen.
			time.Sleep(10 * time.Microsecond)
			for k := range sums {
				sums[k].Add(c, 1)
			}
		})
	})
}

// chaosRun drives one (mechanism, failpoint, seed) leg and returns how many
// times the armed failpoint was evaluated.
func chaosRun(t *testing.T, mech cilkm.Mechanism, pt chaosPoint, seed uint64) uint64 {
	t.Helper()
	s := newChaosSession(mech)
	defer s.Close()

	const nsums = 8
	const iters = 120
	// Registered outside the chaos window so every job has reducers to
	// hammer even when registration faults are armed.
	sums := make([]*reducers.Add[int], nsums)
	for i := range sums {
		sums[i] = cilkm.NewAdd[int](s.Engine())
	}
	var want [nsums]int

	plan := faultinject.NewPlan(seed).Arm(pt.id, pt.rule)
	deactivate := faultinject.Activate(plan)
	deactivated := false
	defer func() {
		if !deactivated {
			deactivate()
		}
	}()

	if pt.storm {
		chaosStorm(t, s)
	} else {
		for j := 0; j < 4; j++ {
			err := chaosJob(s, sums, iters)
			assertContained(t, err)
			if err == nil {
				for k := range want {
					want[k] += iters
				}
			}
			if qerr := s.Quiescent(); qerr != nil {
				t.Fatalf("seed %#x job %d (err=%v): engine not quiescent: %v", seed, j, err, qerr)
			}
		}
	}
	hits := plan.Hits(pt.id)
	deactivate()
	deactivated = true

	// Chaos off: the engine must be fully reusable and exact.
	if err := chaosJob(s, sums, iters); err != nil {
		t.Fatalf("seed %#x: clean job after chaos failed: %v", seed, err)
	}
	for k := range want {
		want[k] += iters
	}
	for k, sum := range sums {
		if got := sum.Value(); got != want[k] {
			t.Errorf("seed %#x: reducer %d = %d, want %d — a failed job leaked a partial contribution",
				seed, k, got, want[k])
		}
	}
	if err := s.Quiescent(); err != nil {
		t.Fatalf("seed %#x: engine not quiescent after clean job: %v", seed, err)
	}
	return hits
}

// chaosStorm exercises the registration-path failpoints: a burst of
// registrations (crossing an SPA page boundary, so TLMM growth runs inside
// the chaos window), a job touching the survivors, then retirement.
func chaosStorm(t *testing.T, s *cilkm.Session) {
	t.Helper()
	monoid := reducers.TypedFuncMonoid[int]{
		IdentityFn: func() *int { return new(int) },
		ReduceFn:   func(left, right *int) *int { *left += *right; return left },
	}
	var handles []reducers.Handle[int]
	injected := 0
	for i := 0; i < 300; i++ {
		h, err := reducers.TryNewHandle[int](s.Engine(), monoid)
		if err != nil {
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("registration %d failed with a non-injected error: %v", i, err)
			}
			injected++
			continue
		}
		handles = append(handles, h)
	}
	err := s.RunErr(func(c *cilkm.Context) {
		c.ParallelForGrain(0, len(handles), 1, func(c *cilkm.Context, i int) {
			*handles[i].View(c) += i + 1
		})
	})
	assertContained(t, err)
	if err == nil {
		for i := range handles {
			if got := *handles[i].Peek(); got != i+1 {
				t.Errorf("storm handle %d = %d, want %d", i, got, i+1)
			}
		}
	}
	for i := range handles {
		handles[i].Close()
	}
	if qerr := s.Quiescent(); qerr != nil {
		t.Fatalf("registration storm left the engine non-quiescent (injected=%d): %v", injected, qerr)
	}
}

// chaosServicePoints lists the failpoints the multi-tenant service sweep
// drives: the four service-surface failpoints added with the resident
// runtime, plus two engine fault points re-run under concurrent multi-job
// submission (their containment contract must hold per tenant, not just per
// process).
var chaosServicePoints = []chaosPoint{
	{id: faultinject.ServiceAdmit, rule: faultinject.Rule{Prob: 0.15, Limit: 4}},
	{id: faultinject.ServiceDispatch, rule: faultinject.Rule{Prob: 0.5}},
	{id: faultinject.ServiceDeadline, rule: faultinject.Rule{Prob: 0.5}},
	{id: faultinject.ServiceDrain, rule: faultinject.Rule{Prob: 0.9}},
	{id: faultinject.MonoidReduce, rule: faultinject.Rule{Prob: 0.1, Limit: 4}},
	{id: faultinject.EndTraceTransfer, rule: faultinject.Rule{Prob: 0.1, Limit: 4}},
}

// assertServiceContained accepts the errors a service job may legitimately
// report under chaos — success, a contained injected fault, its own
// cancellation or deadline, overload shedding, or the service closing — and
// fails on anything else (in particular any non-injected panic).
func assertServiceContained(t *testing.T, err error) {
	t.Helper()
	if err == nil ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, cilkm.ErrOverloaded) || errors.Is(err, cilkm.ErrClosed) {
		return
	}
	assertContained(t, err)
}

// chaosServiceRun drives one (mechanism, failpoint, seed) leg of the
// multi-tenant sweep: concurrent submitters × injected faults, asserting
// per-job containment (a tenant's fault, cancellation, or shed never
// perturbs another tenant's successful result) and pool-wide quiescence
// after drain.  Returns how many times the armed failpoint was evaluated.
func chaosServiceRun(t *testing.T, mech cilkm.Mechanism, pt chaosPoint, seed uint64) uint64 {
	t.Helper()
	drain := cilkm.DrainFinish
	if seed%2 == 1 {
		drain = cilkm.DrainCancel
	}
	svc := cilkm.NewService(
		cilkm.WithMechanism(mech),
		cilkm.WithWorkers(4),
		cilkm.WithModelAddressSpace(),
		cilkm.WithDirectoryShards(1),
		cilkm.WithMergeBatchSize(2),
		cilkm.WithParallelMergeThreshold(2),
		cilkm.WithQueueBound(4),
		cilkm.WithDrainPolicy(drain),
	)

	plan := faultinject.NewPlan(seed).Arm(pt.id, pt.rule)
	deactivate := faultinject.Activate(plan)
	deactivated := false
	defer func() {
		if !deactivated {
			deactivate()
		}
	}()

	const tenants = 4
	const jobsPerTenant = 3
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		tn := tn
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < jobsPerTenant; j++ {
				iters := 60 + 17*j + 5*tn
				var sum *reducers.Add[int]
				var opts []cilkm.JobOption
				if (tn+j)%3 == 0 {
					// Some jobs race a tight deadline, so cancellation paths
					// (and the deadline failpoint) are exercised every leg.
					opts = append(opts, cilkm.WithTimeout(2*time.Millisecond))
				}
				h, err := svc.Submit(context.Background(), func(c *cilkm.Context, js *cilkm.JobSession) {
					sum = cilkm.NewAdd[int](js)
					c.ParallelForGrain(0, iters, 1, func(c *cilkm.Context, i int) {
						time.Sleep(10 * time.Microsecond)
						sum.Add(c, 1)
					})
				}, opts...)
				if err != nil {
					// Admission may fail only for injected or policy reasons.
					if !errors.Is(err, faultinject.ErrInjected) &&
						!errors.Is(err, cilkm.ErrOverloaded) && !errors.Is(err, cilkm.ErrClosed) {
						t.Errorf("tenant %d job %d: unexpected Submit error: %v", tn, j, err)
					}
					continue
				}
				if (tn+j)%4 == 1 {
					h.Cancel() // explicit cancellation keeps that path hot too
				}
				werr := h.Wait()
				assertServiceContained(t, werr)
				if werr == nil {
					// Per-tenant containment: a successful job's reducer holds
					// exactly its own contribution, whatever the other tenants'
					// faults and cancellations did concurrently.
					if got := sum.Value(); got != iters {
						t.Errorf("tenant %d job %d: sum = %d, want %d (foreign contribution leaked in)",
							tn, j, got, iters)
					}
				}
			}
		}()
	}
	wg.Wait()

	// Chaos still active for Close on the drain leg; for the others,
	// deactivate first so the clean job is genuinely clean.
	if pt.id != faultinject.ServiceDrain {
		deactivate()
		deactivated = true
		var sum *reducers.Add[int]
		h, err := svc.Submit(context.Background(), func(c *cilkm.Context, js *cilkm.JobSession) {
			sum = cilkm.NewAdd[int](js)
			c.ParallelForGrain(0, 100, 1, func(c *cilkm.Context, i int) { sum.Add(c, 1) })
		})
		if err != nil {
			t.Fatalf("seed %#x: clean Submit after chaos failed: %v", seed, err)
		}
		if werr := h.Wait(); werr != nil {
			t.Fatalf("seed %#x: clean job after chaos failed: %v", seed, werr)
		}
		if got := sum.Value(); got != 100 {
			t.Errorf("seed %#x: clean job sum = %d, want 100", seed, got)
		}
	}

	// Drain: admission stops, in-flight jobs settle by policy, and the pool
	// plus engine verify quiescent — zero leaked pages/arenas/views.
	if err := svc.Close(); err != nil {
		t.Fatalf("seed %#x: Close after multi-tenant chaos: %v", seed, err)
	}
	if _, err := svc.Submit(context.Background(), func(c *cilkm.Context, js *cilkm.JobSession) {}); !errors.Is(err, cilkm.ErrClosed) {
		t.Fatalf("seed %#x: Submit after Close = %v, want ErrClosed", seed, err)
	}
	return plan.Hits(pt.id)
}

// TestChaosServiceSweep is the multi-tenant sweep: concurrent submitters ×
// injected faults × seeds × both engines.  On the memory-mapped engine each
// of the four service failpoints must actually be reached (summed across
// seeds), so the sweep cannot silently decay into testing nothing.
func TestChaosServiceSweep(t *testing.T) {
	for _, mech := range cilkm.Mechanisms() {
		mech := mech
		t.Run(mech.String(), func(t *testing.T) {
			reached := make(map[faultinject.ID]uint64)
			for _, pt := range chaosServicePoints {
				pt := pt
				t.Run(pt.id.String(), func(t *testing.T) {
					for _, seed := range chaosSeeds(t) {
						reached[pt.id] += chaosServiceRun(t, mech, pt, seed)
					}
				})
			}
			if t.Failed() || mech != cilkm.MemoryMapped {
				return
			}
			for _, pt := range chaosServicePoints {
				if reached[pt.id] == 0 {
					t.Errorf("service failpoint %v was never reached by the sweep workload", pt.id)
				}
			}
		})
	}
}

// TestChaosSweep is the suite: seeds × failpoints × both engines.  On the
// memory-mapped engine every armed failpoint must actually be reached by
// the workload (summed across seeds), so the sweep cannot silently decay
// into testing nothing.
func TestChaosSweep(t *testing.T) {
	for _, mech := range cilkm.Mechanisms() {
		mech := mech
		t.Run(mech.String(), func(t *testing.T) {
			reached := make(map[faultinject.ID]uint64)
			for _, pt := range chaosPoints {
				pt := pt
				t.Run(pt.id.String(), func(t *testing.T) {
					for _, seed := range chaosSeeds(t) {
						reached[pt.id] += chaosRun(t, mech, pt, seed)
					}
				})
			}
			if t.Failed() || mech != cilkm.MemoryMapped {
				return
			}
			for _, pt := range chaosPoints {
				if reached[pt.id] == 0 {
					t.Errorf("failpoint %v was never reached by the sweep workload", pt.id)
				}
			}
		})
	}
}
