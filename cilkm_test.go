package cilkm_test

import (
	"testing"

	cilkm "repro"
)

func TestFacadeQuickstart(t *testing.T) {
	for _, mech := range []cilkm.Mechanism{cilkm.MemoryMapped, cilkm.Hypermap} {
		s := cilkm.NewSession(mech, 2)
		sum := cilkm.NewAdd[int](s.Engine())
		list := cilkm.NewList[string](s.Engine())
		mn := cilkm.NewMin[int](s.Engine())
		mx := cilkm.NewMax[int](s.Engine())
		and := cilkm.NewAnd(s.Engine())
		or := cilkm.NewOr(s.Engine())
		str := cilkm.NewString(s.Engine())
		hist := cilkm.NewMapOf[int, int](s.Engine(), func(a, b int) int { return a + b })

		const n = 2000
		err := s.Run(func(c *cilkm.Context) {
			c.ParallelFor(0, n, func(c *cilkm.Context, i int) {
				sum.Add(c, i)
				mn.Update(c, i)
				mx.Update(c, i)
				and.Update(c, i >= 0)
				or.Update(c, i == 1234)
				hist.Update(c, i%3, 1)
			})
			list.PushBack(c, "a")
			str.Append(c, "x")
		})
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if got := sum.Value(); got != n*(n-1)/2 {
			t.Fatalf("%v: sum = %d", mech, got)
		}
		if v, ok := mn.Value(); !ok || v != 0 {
			t.Fatalf("%v: min = %d/%v", mech, v, ok)
		}
		if v, ok := mx.Value(); !ok || v != n-1 {
			t.Fatalf("%v: max = %d/%v", mech, v, ok)
		}
		if !and.Value() || !or.Value() {
			t.Fatalf("%v: and/or wrong", mech)
		}
		if len(list.Value()) != 1 || str.Value() != "x" {
			t.Fatalf("%v: list/string reducers wrong", mech)
		}
		if hist.Value()[0]+hist.Value()[1]+hist.Value()[2] != n {
			t.Fatalf("%v: histogram wrong", mech)
		}
		s.Close()
	}
}

func TestFacadeCustomAndEngineOptions(t *testing.T) {
	eng := cilkm.NewEngine(cilkm.MemoryMapped, 2, cilkm.EngineOptions{Timing: true, ModelAddressSpace: true})
	s := cilkm.NewSessionWithOptions(cilkm.Hypermap, 2, cilkm.EngineOptions{CountLookups: true})
	defer s.Close()
	if eng.Name() == s.Engine().Name() {
		t.Fatal("expected two different mechanisms")
	}
	cu := cilkm.NewCustom(s.Engine(), facadeMonoid{})
	if err := s.Run(func(c *cilkm.Context) {
		c.ParallelFor(0, 100, func(c *cilkm.Context, i int) {
			p := cu.View(c).(*pair)
			p.a++
			p.b += i
		})
	}); err != nil {
		t.Fatal(err)
	}
	got := cu.Value().(*pair)
	if got.a != 100 || got.b != 99*100/2 {
		t.Fatalf("custom reducer = %+v", got)
	}
	if s.Engine().Lookups() == 0 {
		t.Fatal("lookup counting should be enabled")
	}
}

type pair struct{ a, b int }

type facadeMonoid struct{}

func (facadeMonoid) Identity() any { return &pair{} }
func (facadeMonoid) Reduce(l, r any) any {
	lv := l.(*pair)
	rv := r.(*pair)
	lv.a += rv.a
	lv.b += rv.b
	return lv
}
