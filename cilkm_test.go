package cilkm_test

import (
	"testing"

	cilkm "repro"
)

// TestFacadeQuickstart exercises the whole typed reducer library through
// the deprecated NewSession shim, keeping the old constructor covered.
func TestFacadeQuickstart(t *testing.T) {
	for _, mech := range []cilkm.Mechanism{cilkm.MemoryMapped, cilkm.Hypermap} {
		s := cilkm.NewSession(mech, 2)
		sum := cilkm.NewAdd[int](s.Engine())
		list := cilkm.NewList[string](s.Engine())
		mn := cilkm.NewMin[int](s.Engine())
		mx := cilkm.NewMax[int](s.Engine())
		and := cilkm.NewAnd(s.Engine())
		or := cilkm.NewOr(s.Engine())
		str := cilkm.NewString(s.Engine())
		hist := cilkm.NewMapOf[int, int](s.Engine(), func(a, b int) int { return a + b })

		const n = 2000
		err := s.Run(func(c *cilkm.Context) {
			c.ParallelFor(0, n, func(c *cilkm.Context, i int) {
				sum.Add(c, i)
				mn.Update(c, i)
				mx.Update(c, i)
				and.Update(c, i >= 0)
				or.Update(c, i == 1234)
				hist.Update(c, i%3, 1)
			})
			list.PushBack(c, "a")
			str.Append(c, "x")
		})
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if got := sum.Value(); got != n*(n-1)/2 {
			t.Fatalf("%v: sum = %d", mech, got)
		}
		if v, ok := mn.Value(); !ok || v != 0 {
			t.Fatalf("%v: min = %d/%v", mech, v, ok)
		}
		if v, ok := mx.Value(); !ok || v != n-1 {
			t.Fatalf("%v: max = %d/%v", mech, v, ok)
		}
		if !and.Value() || !or.Value() {
			t.Fatalf("%v: and/or wrong", mech)
		}
		if len(list.Value()) != 1 || str.Value() != "x" {
			t.Fatalf("%v: list/string reducers wrong", mech)
		}
		if hist.Value()[0]+hist.Value()[1]+hist.Value()[2] != n {
			t.Fatalf("%v: histogram wrong", mech)
		}
		s.Close()
	}
}

func TestFacadeCustomAndEngineOptions(t *testing.T) {
	eng := cilkm.NewEngine(cilkm.MemoryMapped, 2, cilkm.EngineOptions{Timing: true, ModelAddressSpace: true})
	s := cilkm.NewSessionWithOptions(cilkm.Hypermap, 2, cilkm.EngineOptions{CountLookups: true})
	defer s.Close()
	if eng.Name() == s.Engine().Name() {
		t.Fatal("expected two different mechanisms")
	}
	cu := cilkm.NewCustom(s.Engine(), facadeMonoid{})
	if err := s.Run(func(c *cilkm.Context) {
		c.ParallelFor(0, 100, func(c *cilkm.Context, i int) {
			p := cu.View(c).(*pair)
			p.a++
			p.b += i
		})
	}); err != nil {
		t.Fatal(err)
	}
	got := cu.Value().(*pair)
	if got.a != 100 || got.b != 99*100/2 {
		t.Fatalf("custom reducer = %+v", got)
	}
	if s.Engine().Lookups() == 0 {
		t.Fatal("lookup counting should be enabled")
	}
}

type pair struct{ a, b int }

type facadeMonoid struct{}

func (facadeMonoid) Identity() any { return &pair{} }
func (facadeMonoid) Reduce(l, r any) any {
	lv := l.(*pair)
	rv := r.(*pair)
	lv.a += rv.a
	lv.b += rv.b
	return lv
}

type typedPairMonoid struct{}

func (typedPairMonoid) Identity() *pair { return &pair{} }
func (typedPairMonoid) Reduce(l, r *pair) *pair {
	l.a += r.a
	l.b += r.b
	return l
}

// TestFunctionalOptionsConstructor drives the options-based New/NewEngineWith
// constructors and the typed custom reducer end to end on both mechanisms.
func TestFunctionalOptionsConstructor(t *testing.T) {
	for _, mech := range cilkm.Mechanisms() {
		s := cilkm.New(
			cilkm.WithMechanism(mech),
			cilkm.WithWorkers(2),
			cilkm.WithTiming(),
			cilkm.WithDirectoryShards(1),
			cilkm.WithMergeBatchSize(16),
			cilkm.WithParallelMergeThreshold(64),
		)
		cu := cilkm.NewCustomOf[pair](s.Engine(), typedPairMonoid{})
		if err := s.Run(func(c *cilkm.Context) {
			c.ParallelFor(0, 100, func(c *cilkm.Context, i int) {
				p := cu.View(c)
				p.a++
				p.b += i
			})
		}); err != nil {
			t.Fatal(err)
		}
		if got := cu.Value(); got.a != 100 || got.b != 99*100/2 {
			t.Fatalf("%v: typed custom reducer = %+v", mech, got)
		}
		cu.Close()
		s.Close()
	}
}

// TestNewDefaultsAndEngineWith checks New's defaults (memory-mapped,
// GOMAXPROCS workers) and the options-based stand-alone engine constructor.
func TestNewDefaultsAndEngineWith(t *testing.T) {
	s := cilkm.New()
	defer s.Close()
	if s.Workers() < 1 {
		t.Fatalf("default session has %d workers", s.Workers())
	}
	if name := s.Engine().Name(); name != cilkm.NewEngineWith().Name() {
		t.Fatalf("default mechanisms differ: %q", name)
	}
	hm := cilkm.NewEngineWith(cilkm.WithMechanism(cilkm.Hypermap), cilkm.WithWorkers(2), cilkm.WithCountLookups())
	if hm.Name() == s.Engine().Name() {
		t.Fatal("WithMechanism(Hypermap) ignored")
	}
	if !hm.CountingLookups() {
		t.Fatal("WithCountLookups ignored")
	}
	// The deprecated stand-alone engine shim must agree with the
	// options-based constructor.
	old := cilkm.NewEngine(cilkm.Hypermap, 2, cilkm.EngineOptions{CountLookups: true})
	if old.Name() != hm.Name() || old.CountingLookups() != hm.CountingLookups() {
		t.Fatal("deprecated NewEngine shim disagrees with NewEngineWith")
	}
}

// TestTypedHandleEmbedding builds a reducer type by embedding cilkm.Handle,
// the documented extension point of the typed API.
func TestTypedHandleEmbedding(t *testing.T) {
	type stats = pair
	s := cilkm.New(cilkm.WithWorkers(2))
	defer s.Close()
	h := cilkm.NewHandle[stats](s.Engine(), typedPairMonoid{})
	defer h.Close()
	if err := s.Run(func(c *cilkm.Context) {
		c.ParallelFor(0, 500, func(c *cilkm.Context, i int) {
			v := h.View(c)
			v.a++
			v.b += 2
		})
	}); err != nil {
		t.Fatal(err)
	}
	if got := h.Peek(); got.a != 500 || got.b != 1000 {
		t.Fatalf("embedded handle = %+v", got)
	}
}
