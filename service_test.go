package cilkm_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	cilkm "repro"
	"repro/internal/reducers"
)

// TestServiceFacadeQuickstart exercises the documented serving workflow:
// submit jobs with per-job reducer sessions, wait, read results, drain.
// Reducer values are read after Wait — the root deposit is merged into the
// leftmost views before the handle completes — and stay readable after the
// session retired the registration.
func TestServiceFacadeQuickstart(t *testing.T) {
	for _, mech := range cilkm.Mechanisms() {
		t.Run(fmt.Sprint(mech), func(t *testing.T) {
			svc := cilkm.NewService(cilkm.WithMechanism(mech), cilkm.WithWorkers(4))
			var sum *reducers.Add[int64]
			var inTrace int64
			h, err := svc.Submit(context.Background(), func(c *cilkm.Context, js *cilkm.JobSession) {
				sum = cilkm.NewAdd[int64](js)
				c.ParallelFor(0, 10_000, func(c *cilkm.Context, i int) { sum.Add(c, int64(i)) })
				// In-trace read: every join has folded its branch back into
				// the root trace's view by now.
				inTrace = *sum.View(c)
			})
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			if err := h.Wait(); err != nil {
				t.Fatalf("Wait: %v", err)
			}
			const want = int64(10_000) * 9_999 / 2
			if inTrace != want {
				t.Fatalf("in-trace sum = %d, want %d", inTrace, want)
			}
			if got := sum.Value(); got != want {
				t.Fatalf("post-merge sum = %d, want %d", got, want)
			}
			// The job's session retired its reducers; the engine must hold
			// no live registrations and drain to verified quiescence.
			if n := svc.Engine().Registered(); n != 0 {
				t.Fatalf("%d reducers still registered after job completion", n)
			}
			if err := svc.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

// TestServiceTenantIsolation is the colliding-slot isolation test: two
// tenants repeatedly register reducers through their own job sessions on a
// single-shard directory (maximal slot collision and recycling) under steal
// pressure, on both engines.  Every job must read exactly its own total —
// a stale cross-job view merged in (or a view leaked out) would corrupt it.
func TestServiceTenantIsolation(t *testing.T) {
	for _, mech := range cilkm.Mechanisms() {
		t.Run(fmt.Sprint(mech), func(t *testing.T) {
			svc := cilkm.NewService(
				cilkm.WithMechanism(mech),
				cilkm.WithWorkers(4),
				cilkm.WithDirectoryShards(1),
				cilkm.WithQueueBound(8),
			)
			const tenants = 2
			const jobsPerTenant = 20
			var wg sync.WaitGroup
			errCh := make(chan error, tenants*jobsPerTenant)
			for tn := 0; tn < tenants; tn++ {
				tn := tn
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < jobsPerTenant; j++ {
						// Each tenant's contribution is distinct, so a single
						// foreign update changes the total detectably.
						contrib := int64(1 + tn*1_000_000)
						iters := 500 + 37*j
						var sum, aux *reducers.Add[int64]
						h, err := svc.Submit(context.Background(), func(c *cilkm.Context, js *cilkm.JobSession) {
							sum = cilkm.NewAdd[int64](js)
							aux = cilkm.NewAdd[int64](js) // second slot per job widens collisions
							c.ParallelForGrain(0, iters, 1, func(c *cilkm.Context, i int) {
								sum.Add(c, contrib)
								aux.Add(c, 1)
							})
						})
						if err != nil {
							errCh <- fmt.Errorf("tenant %d job %d: Submit: %v", tn, j, err)
							return
						}
						if err := h.Wait(); err != nil {
							errCh <- fmt.Errorf("tenant %d job %d: Wait: %v", tn, j, err)
							return
						}
						if got, want := sum.Value(), contrib*int64(iters); got != want {
							errCh <- fmt.Errorf("tenant %d job %d: sum = %d, want %d (cross-tenant view observed)", tn, j, got, want)
							return
						}
						if got := aux.Value(); got != int64(iters) {
							errCh <- fmt.Errorf("tenant %d job %d: aux = %d, want %d", tn, j, got, iters)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Error(err)
			}
			if n := svc.Engine().Registered(); n != 0 {
				t.Fatalf("%d reducers still registered after all jobs", n)
			}
			if err := svc.Close(); err != nil {
				t.Fatalf("Close (quiescence): %v", err)
			}
		})
	}
}

// TestServiceConcurrentSubmissionEquivalence runs the same deterministic
// aggregate as concurrent jobs on both engines and checks every job's
// result matches the serial computation — the equivalence suites' guarantee
// extended to concurrent multi-job submission.
func TestServiceConcurrentSubmissionEquivalence(t *testing.T) {
	const jobs = 12
	const n = 3_000
	wantSum := int64(n) * int64(n-1) / 2
	for _, mech := range cilkm.Mechanisms() {
		t.Run(fmt.Sprint(mech), func(t *testing.T) {
			svc := cilkm.NewService(cilkm.WithMechanism(mech), cilkm.WithWorkers(4))
			var wg sync.WaitGroup
			sums := make([]*reducers.Add[int64], jobs)
			mins := make([]*reducers.Min[int], jobs)
			errs := make([]error, jobs)
			for j := 0; j < jobs; j++ {
				j := j
				wg.Add(1)
				go func() {
					defer wg.Done()
					h, err := svc.Submit(context.Background(), func(c *cilkm.Context, js *cilkm.JobSession) {
						sums[j] = cilkm.NewAdd[int64](js)
						mins[j] = cilkm.NewMin[int](js)
						c.ParallelFor(0, n, func(c *cilkm.Context, i int) {
							sums[j].Add(c, int64(i))
							mins[j].Update(c, i+j)
						})
					})
					if err != nil {
						errs[j] = err
						return
					}
					errs[j] = h.Wait()
				}()
			}
			wg.Wait()
			for j := 0; j < jobs; j++ {
				if errs[j] != nil {
					t.Fatalf("job %d: %v", j, errs[j])
				}
				if got := sums[j].Value(); got != wantSum {
					t.Fatalf("job %d: sum = %d, want %d", j, got, wantSum)
				}
				v, ok := mins[j].Value()
				if !ok || v != j {
					t.Fatalf("job %d: min = %d (ok=%v), want %d", j, v, ok, j)
				}
			}
			if err := svc.Close(); err != nil {
				t.Fatalf("Close (quiescence): %v", err)
			}
		})
	}
}

// TestServiceSnapshotReadPath checks the non-worker read path: an
// app-lifetime reducer registered on the shared engine accumulates across a
// stream of jobs while an outside goroutine snapshots it concurrently with
// the per-job merges, observing monotonically non-decreasing values.
func TestServiceSnapshotReadPath(t *testing.T) {
	for _, mech := range cilkm.Mechanisms() {
		t.Run(fmt.Sprint(mech), func(t *testing.T) {
			svc := cilkm.NewService(cilkm.WithMechanism(mech), cilkm.WithWorkers(4))
			// App-lifetime reducer: registered on the engine, not a job
			// session, so it survives every job and each job's root merge
			// folds into its leftmost view.
			sum := cilkm.NewAdd[int64](svc.Engine())
			const jobs = 40
			const perJob = 200
			stop := make(chan struct{})
			firstRead := make(chan struct{})
			var prev int64
			var reads atomic.Int64
			var sampler sync.WaitGroup
			sampler.Add(1)
			go func() {
				defer sampler.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					// Snapshot copies under the merge lock: consistent, and
					// non-decreasing for a monotone reducer.
					v := sum.Snapshot()
					if v < prev {
						t.Errorf("snapshot went backwards: %d after %d", v, prev)
						return
					}
					prev = v
					if reads.Add(1) == 1 {
						close(firstRead)
					}
				}
			}()
			<-firstRead // the sampler is live before the job stream starts
			for j := 0; j < jobs; j++ {
				h, err := svc.Submit(context.Background(), func(c *cilkm.Context, js *cilkm.JobSession) {
					c.ParallelForGrain(0, perJob, 1, func(c *cilkm.Context, i int) {
						sum.Add(c, 1)
					})
				})
				if err != nil {
					t.Fatalf("Submit %d: %v", j, err)
				}
				if err := h.Wait(); err != nil {
					t.Fatalf("job %d: %v", j, err)
				}
			}
			close(stop)
			sampler.Wait()
			if got := sum.Snapshot(); got != jobs*perJob {
				t.Fatalf("final snapshot = %d, want %d", got, jobs*perJob)
			}
			if reads.Load() == 0 {
				t.Fatal("sampler performed no reads")
			}
			sum.Close()
			if err := svc.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

// TestServiceOverloadWithReducers is the acceptance overload scenario on a
// real engine: a saturated queue under the reject policy answers
// ErrOverloaded within bounded time while the in-flight reducer jobs
// complete with correct values, and Close verifies zero leaked
// pages/arenas/views.
func TestServiceOverloadWithReducers(t *testing.T) {
	for _, mech := range cilkm.Mechanisms() {
		t.Run(fmt.Sprint(mech), func(t *testing.T) {
			svc := cilkm.NewService(
				cilkm.WithMechanism(mech),
				cilkm.WithWorkers(2),
				cilkm.WithQueueBound(2),
				cilkm.WithAdmitPolicy(cilkm.AdmitReject),
			)
			gate := make(chan struct{})
			started := make(chan struct{}, 2)
			sums := make([]*reducers.Add[int64], 4)
			var handles []*cilkm.JobHandle
			// Two blockers occupy both workers...
			for i := 0; i < 2; i++ {
				i := i
				h, err := svc.Submit(context.Background(), func(c *cilkm.Context, js *cilkm.JobSession) {
					sums[i] = cilkm.NewAdd[int64](js)
					started <- struct{}{}
					<-gate
					c.ParallelFor(0, 1_000, func(c *cilkm.Context, j int) { sums[i].Add(c, 1) })
				})
				if err != nil {
					t.Fatalf("Submit blocker %d: %v", i, err)
				}
				handles = append(handles, h)
			}
			<-started
			<-started
			// ...then two more fill the admission queue exactly.
			for i := 2; i < 4; i++ {
				i := i
				h, err := svc.Submit(context.Background(), func(c *cilkm.Context, js *cilkm.JobSession) {
					sums[i] = cilkm.NewAdd[int64](js)
					c.ParallelFor(0, 1_000, func(c *cilkm.Context, j int) { sums[i].Add(c, 1) })
				})
				if err != nil {
					t.Fatalf("Submit queued %d: %v", i, err)
				}
				handles = append(handles, h)
			}
			// Pool busy + queue full: the next submission must be rejected
			// quickly, not block.
			done := make(chan error, 1)
			go func() {
				_, err := svc.Submit(context.Background(), func(c *cilkm.Context, js *cilkm.JobSession) {})
				done <- err
			}()
			select {
			case err := <-done:
				if !errors.Is(err, cilkm.ErrOverloaded) {
					t.Fatalf("overload Submit error = %v, want ErrOverloaded", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("reject-policy Submit blocked on a saturated queue")
			}
			close(gate)
			for i, h := range handles {
				if err := h.Wait(); err != nil {
					t.Fatalf("job %d: %v", i, err)
				}
				if got := sums[i].Value(); got != 1_000 {
					t.Fatalf("job %d: sum = %d, want 1000", i, got)
				}
			}
			if err := svc.Close(); err != nil {
				t.Fatalf("Close (leak check): %v", err)
			}
		})
	}
}

// TestServiceJobSessionScoping checks a retired session rejects late
// registration and that early Unregister through the session works.
func TestServiceJobSessionScoping(t *testing.T) {
	svc := cilkm.NewService(cilkm.WithWorkers(2))
	var late *cilkm.JobSession
	h, err := svc.Submit(context.Background(), func(c *cilkm.Context, js *cilkm.JobSession) {
		sum := cilkm.NewAdd[int](js)
		sum.Add(c, 41)
		js.Unregister(sum.Reducer()) // early retire of one reducer
		if js.Live() != 0 {
			panic(fmt.Sprintf("Live = %d after Unregister, want 0", js.Live()))
		}
		late = js
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := h.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if _, err := late.Register(nil); err == nil {
		t.Fatal("Register on retired session succeeded, want error")
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
