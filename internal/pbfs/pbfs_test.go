package pbfs_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pbfs"
	"repro/internal/reducers"
	"repro/internal/sched"
)

func newSession(t *testing.T, m reducers.Mechanism, workers int) *core.Session {
	t.Helper()
	s := reducers.NewSession(m, workers, reducers.EngineOptions{CountLookups: true})
	t.Cleanup(s.Close)
	return s
}

func testGraphs() []*graph.Graph {
	return []*graph.Graph{
		graph.Path(500),
		graph.Star(1000),
		graph.CompleteBinaryTree(1023),
		graph.Grid3D(8, 8, 8),
		graph.Torus2D(16),
		graph.RMAT(10, 8, 0.57, 0.19, 0.19, 7),
		graph.Random(600, 1800, 3),
	}
}

func TestSerialMatchesGraphBFS(t *testing.T) {
	for _, g := range testGraphs() {
		res := pbfs.Serial(g, 0)
		dist, layers := g.BFS(0)
		if res.Layers != layers {
			t.Fatalf("%s: serial layers %d, want %d", g.Name(), res.Layers, layers)
		}
		for v := range dist {
			if res.Dist[v] != dist[v] {
				t.Fatalf("%s: dist[%d] mismatch", g.Name(), v)
			}
		}
	}
}

func TestParallelMatchesSerialAllMechanisms(t *testing.T) {
	for _, m := range reducers.Mechanisms() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				s := newSession(t, m, workers)
				for _, g := range testGraphs() {
					res, err := pbfs.Parallel(s, g, pbfs.Config{Source: 0, Grain: 16})
					if err != nil {
						t.Fatalf("%s (P=%d): %v", g.Name(), workers, err)
					}
					if err := pbfs.Validate(g, 0, res); err != nil {
						t.Fatalf("%s (P=%d): %v", g.Name(), workers, err)
					}
				}
			}
		})
	}
}

func TestParallelFromNonZeroSource(t *testing.T) {
	s := newSession(t, reducers.MemoryMapped, 2)
	g := graph.Grid3D(6, 6, 6)
	src := int32(100)
	res, err := pbfs.Parallel(s, g, pbfs.Config{Source: src})
	if err != nil {
		t.Fatalf("Parallel: %v", err)
	}
	if err := pbfs.Validate(g, src, res); err != nil {
		t.Fatal(err)
	}
}

func TestParallelDisconnectedGraph(t *testing.T) {
	g, err := graph.FromEdges(10, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 5, V: 6}}, "disconnected")
	if err != nil {
		t.Fatal(err)
	}
	s := newSession(t, reducers.Hypermap, 2)
	res, err := pbfs.Parallel(s, g, pbfs.Config{Source: 0})
	if err != nil {
		t.Fatalf("Parallel: %v", err)
	}
	if res.Reachable != 3 {
		t.Fatalf("Reachable = %d, want 3", res.Reachable)
	}
	if res.Dist[5] != -1 || res.Dist[6] != -1 {
		t.Fatal("vertices in the other component should stay unreachable")
	}
	if err := pbfs.Validate(g, 0, res); err != nil {
		t.Fatal(err)
	}
}

func TestParallelErrors(t *testing.T) {
	s := newSession(t, reducers.MemoryMapped, 1)
	if _, err := pbfs.Parallel(s, nil, pbfs.Config{}); err == nil {
		t.Fatal("nil graph should fail")
	}
	g := graph.Path(10)
	if _, err := pbfs.Parallel(s, g, pbfs.Config{Source: -1}); err == nil {
		t.Fatal("negative source should fail")
	}
	if _, err := pbfs.Parallel(s, g, pbfs.Config{Source: 99}); err == nil {
		t.Fatal("out-of-range source should fail")
	}
}

func TestLookupCountingDuringPBFS(t *testing.T) {
	s := newSession(t, reducers.MemoryMapped, 2)
	eng := s.Engine()
	eng.ResetOverheads()
	g := graph.Grid3D(10, 10, 10)
	res, err := pbfs.Parallel(s, g, pbfs.Config{Source: 0, Grain: 64})
	if err != nil {
		t.Fatalf("Parallel: %v", err)
	}
	if err := pbfs.Validate(g, 0, res); err != nil {
		t.Fatal(err)
	}
	lookups := eng.Lookups()
	if lookups == 0 {
		t.Fatal("expected reducer lookups during PBFS")
	}
	// Lookups are hoisted to once per serial chunk, so they should be far
	// fewer than the number of vertices.
	if lookups > int64(g.NumVertices()) {
		t.Fatalf("lookups = %d, expected fewer than |V| = %d", lookups, g.NumVertices())
	}
}

func TestReducerReleasedAfterRun(t *testing.T) {
	eng := core.NewMM(core.MMConfig{Workers: 2})
	s := core.NewSession(2, eng)
	defer s.Close()
	g := graph.Torus2D(12)
	before := eng.Registered()
	if _, err := pbfs.Parallel(s, g, pbfs.Config{Source: 0}); err != nil {
		t.Fatalf("Parallel: %v", err)
	}
	if eng.Registered() != before {
		t.Fatalf("frontier reducer leaked: %d registered, want %d", eng.Registered(), before)
	}
}

func TestBagMonoid(t *testing.T) {
	m := pbfs.BagMonoid()
	a := m.Identity()
	b := m.Identity()
	ab, bb := a.(interface {
		Insert(int32)
		Len() int
	}), b.(interface {
		Insert(int32)
		Len() int
	})
	ab.Insert(1)
	bb.Insert(2)
	bb.Insert(3)
	combined := m.Reduce(a, b)
	if combined.(interface{ Len() int }).Len() != 3 {
		t.Fatal("bag monoid reduce should union the bags")
	}
}

func TestPBFSOnEmptyishGraph(t *testing.T) {
	s := newSession(t, reducers.MemoryMapped, 1)
	g := graph.Path(1)
	res, err := pbfs.Parallel(s, g, pbfs.Config{Source: 0})
	if err != nil {
		t.Fatalf("Parallel: %v", err)
	}
	if res.Layers != 0 || res.Reachable != 1 {
		t.Fatalf("single-vertex graph: %+v", res)
	}
}

func TestPBFSWithExplicitScheduler(t *testing.T) {
	// Drive PBFS through a session built with an explicit scheduler config
	// to make sure nothing depends on default construction.
	eng := core.NewMM(core.MMConfig{Workers: 3})
	s := core.NewSessionWithConfig(sched.Config{Workers: 3, Seed: 99}, eng)
	defer s.Close()
	g := graph.RMAT(9, 6, 0.45, 0.25, 0.15, 21)
	res, err := pbfs.Parallel(s, g, pbfs.Config{Source: 0, Grain: 8})
	if err != nil {
		t.Fatalf("Parallel: %v", err)
	}
	if err := pbfs.Validate(g, 0, res); err != nil {
		t.Fatal(err)
	}
}
