// Package pbfs implements the parallel breadth-first search application the
// paper uses to evaluate reducers (Figure 10): the work-efficient PBFS
// algorithm of Leiserson and Schardl, which explores the graph layer by
// layer, keeping the current and next frontier in bag data structures that
// are declared as reducers so parallel branches can insert newly discovered
// vertices without determinacy races.
package pbfs

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/reducers"
	"repro/internal/sched"
)

// Config tunes the parallel traversal.
type Config struct {
	// Grain is the pennant size below which a subtree is processed
	// serially.  Zero selects a default of 128.
	Grain int
	// Source is the BFS source vertex.
	Source int32
}

// Result holds the output of one BFS run.
type Result struct {
	// Dist is the distance of every vertex from the source (-1 when
	// unreachable).
	Dist []int32
	// Layers is the number of BFS layers explored.
	Layers int
	// Reachable is the number of vertices reached.
	Reachable int
}

// bagMonoid is the typed reducer monoid for bags: identity is the empty
// bag and the reduce operation is bag union (which is associative; PBFS
// does not depend on element order).
type bagMonoid struct{}

func (bagMonoid) Identity() *bag.Bag[int32] { return bag.New[int32]() }
func (bagMonoid) Reduce(left, right *bag.Bag[int32]) *bag.Bag[int32] {
	left.Union(right)
	return left
}

// BagTypedMonoid returns the typed bag-union monoid used for frontier
// reducers, for callers building their own bag reducer handles.
func BagTypedMonoid() reducers.TypedMonoid[bag.Bag[int32]] { return bagMonoid{} }

// BagMonoid returns the bag-union monoid adapted to the untyped engine
// interface, for callers registering through the raw core.Engine API.
func BagMonoid() core.Monoid { return reducers.AdaptMonoid[bag.Bag[int32]](bagMonoid{}) }

// Serial runs the reference serial BFS.
func Serial(g *graph.Graph, source int32) *Result {
	dist, layers := g.BFS(source)
	return &Result{Dist: dist, Layers: layers, Reachable: countReachable(dist)}
}

// Parallel runs PBFS on the given session.  The session's reducer mechanism
// (memory-mapped or hypermap) is whatever the session was built with, which
// is exactly the knob the paper's Figure 10 turns.
func Parallel(s *core.Session, g *graph.Graph, cfg Config) (*Result, error) {
	if g == nil {
		return nil, errors.New("pbfs: nil graph")
	}
	n := g.NumVertices()
	if n == 0 {
		return &Result{Dist: nil, Layers: 0}, nil
	}
	if cfg.Source < 0 || int(cfg.Source) >= n {
		return nil, fmt.Errorf("pbfs: source %d outside [0,%d)", cfg.Source, n)
	}
	grain := cfg.Grain
	if grain <= 0 {
		grain = 128
	}
	r := &runner{
		g:     g,
		dist:  make([]int32, n),
		grain: grain,
	}
	// dist is claimed concurrently with CompareAndSwapInt32 during layer
	// processing; keep every access atomic — including this init, which is
	// only safe plainly while no worker has started — so the access
	// discipline is uniform (and cilkvet's atomicfield check stays clean).
	for i := range r.dist {
		atomic.StoreInt32(&r.dist[i], -1)
	}
	atomic.StoreInt32(&r.dist[cfg.Source], 0)

	// The next-layer frontier is a typed bag reducer handle; the current
	// layer is a plain bag owned by the coordinating goroutine.
	next, err := reducers.TryNewHandle[bag.Bag[int32]](s.Engine(), bagMonoid{})
	if err != nil {
		return nil, fmt.Errorf("pbfs: registering frontier reducer: %w", err)
	}
	r.next = next
	defer r.next.Close()

	current := bag.New[int32]()
	current.Insert(cfg.Source)
	layers := 0
	for depth := int32(1); !current.IsEmpty(); depth++ {
		r.depth = depth
		if err := s.Run(r.processLayer(current)); err != nil {
			return nil, err
		}
		// The reducer's leftmost view now holds the next frontier; take it
		// and reset the reducer to an empty bag for the following layer.
		produced := r.next.Peek()
		r.next.SetView(bag.New[int32]())
		current = produced
		if !current.IsEmpty() {
			layers++
		}
	}
	return &Result{Dist: r.dist, Layers: layers, Reachable: countReachable(r.dist)}, nil
}

// runner carries the traversal state shared by all workers.
type runner struct {
	g     *graph.Graph
	next  reducers.Handle[bag.Bag[int32]]
	dist  []int32
	grain int
	depth int32
}

// processLayer returns the root task that explores every vertex in the
// current frontier in parallel.
func (r *runner) processLayer(current *bag.Bag[int32]) func(*sched.Context) {
	pennants := current.Pennants()
	return func(c *sched.Context) {
		// Process the pennants of the current bag in parallel.
		branches := make([]func(*sched.Context), len(pennants))
		for i, p := range pennants {
			p := p
			branches[i] = func(c *sched.Context) { r.processPennant(c, p) }
		}
		c.ForkN(branches...)
	}
}

// processPennant explores one pennant of the frontier.
func (r *runner) processPennant(c *sched.Context, p *bag.Pennant[int32]) {
	if p.Len() <= r.grain {
		view := r.localView(c)
		p.Walk(func(v int32) { r.processVertex(view, v) })
		return
	}
	rootElem, childElem, left, right, ok := p.Spine()
	view := r.localView(c)
	r.processVertex(view, rootElem)
	if !ok {
		return
	}
	r.processVertex(view, childElem)
	c.Fork(
		func(c *sched.Context) { r.processSubtree(c, left, p.Rank()-2) },
		func(c *sched.Context) { r.processSubtree(c, right, p.Rank()-2) },
	)
}

// processSubtree explores a pennant subtree, forking until the remaining
// size drops below the grain.
func (r *runner) processSubtree(c *sched.Context, st *bag.Subtree[int32], rank int) {
	if st.Empty() {
		return
	}
	if rank <= 0 || (1<<uint(rank)) <= r.grain {
		view := r.localView(c)
		st.Walk(func(v int32) { r.processVertex(view, v) })
		return
	}
	view := r.localView(c)
	r.processVertex(view, st.Element())
	l, rr := st.Children()
	c.Fork(
		func(c *sched.Context) { r.processSubtree(c, l, rank-1) },
		func(c *sched.Context) { r.processSubtree(c, rr, rank-1) },
	)
}

// localView looks up the calling context's local view of the next-frontier
// bag reducer through the typed handle — no interface assertion, and a
// cached typed pointer on repeat accesses.  The lookup is still hoisted to
// once per serial chunk, mirroring how the PBFS code in the paper accesses
// its bag reducer.
func (r *runner) localView(c *sched.Context) *bag.Bag[int32] {
	return r.next.View(c)
}

// processVertex relaxes every edge of v, claiming undiscovered neighbours
// with an atomic compare-and-swap and inserting them into the local view of
// the next-frontier bag.
func (r *runner) processVertex(view *bag.Bag[int32], v int32) {
	depth := r.depth
	for _, w := range r.g.Neighbors(v) {
		if atomic.LoadInt32(&r.dist[w]) >= 0 {
			continue
		}
		if atomic.CompareAndSwapInt32(&r.dist[w], -1, depth) {
			view.Insert(w)
		}
	}
}

// Validate checks a parallel result against the serial reference and
// returns an error describing the first mismatch.
func Validate(g *graph.Graph, source int32, got *Result) error {
	want := Serial(g, source)
	if got.Layers != want.Layers {
		return fmt.Errorf("pbfs: layers = %d, want %d", got.Layers, want.Layers)
	}
	if got.Reachable != want.Reachable {
		return fmt.Errorf("pbfs: reachable = %d, want %d", got.Reachable, want.Reachable)
	}
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] {
			return fmt.Errorf("pbfs: dist[%d] = %d, want %d", v, got.Dist[v], want.Dist[v])
		}
	}
	return nil
}

func countReachable(dist []int32) int {
	n := 0
	for _, d := range dist {
		if d >= 0 {
			n++
		}
	}
	return n
}
