// Package bag implements the bag data structure of Leiserson and Schardl's
// work-efficient parallel breadth-first search (SPAA 2010), which the paper
// uses as its application benchmark: PBFS keeps the current and next
// frontier in bags declared as reducers so that logically parallel branches
// can insert discovered vertices without races.
//
// A bag is a list of "pennants" indexed by rank, where a pennant of rank k
// holds exactly 2^k elements: its root holds one element and points at a
// complete binary tree of 2^k−1 further elements.  Insertion works like
// incrementing a binary counter, union like binary addition, and split like
// a right shift, all in O(log n) pennant operations.
package bag

// node is one pennant node holding a single element.
type node[T any] struct {
	elem        T
	left, right *node[T]
}

// Pennant is a tree of exactly 2^rank elements.
type Pennant[T any] struct {
	root *node[T]
	rank int
}

// Rank returns the pennant's rank; the pennant holds 2^rank elements.
func (p *Pennant[T]) Rank() int { return p.rank }

// Len returns the number of elements in the pennant.
func (p *Pennant[T]) Len() int { return 1 << p.rank }

// singleton creates a rank-0 pennant holding one element.
func singleton[T any](v T) *Pennant[T] {
	return &Pennant[T]{root: &node[T]{elem: v}, rank: 0}
}

// union combines two pennants of equal rank into one of rank+1 in O(1).
func union[T any](x, y *Pennant[T]) *Pennant[T] {
	if x.rank != y.rank {
		panic("bag: union of pennants with different ranks")
	}
	y.root.right = x.root.left
	x.root.left = y.root
	x.rank++
	return x
}

// split undoes union: it reduces x to rank−1 and returns the split-off
// pennant of the same rank.
func split[T any](x *Pennant[T]) *Pennant[T] {
	if x.rank == 0 {
		panic("bag: split of a rank-0 pennant")
	}
	y := &Pennant[T]{root: x.root.left, rank: x.rank - 1}
	x.root.left = y.root.right
	y.root.right = nil
	x.rank--
	return y
}

// Walk calls fn for every element in the pennant, in an unspecified order.
func (p *Pennant[T]) Walk(fn func(T)) {
	if p == nil || p.root == nil {
		return
	}
	fn(p.root.elem)
	walkTree(p.root.left, fn)
}

// walkTree walks the complete binary tree hanging off a pennant root.
func walkTree[T any](n *node[T], fn func(T)) {
	if n == nil {
		return
	}
	fn(n.elem)
	walkTree(n.left, fn)
	walkTree(n.right, fn)
}

// Spine exposes the pennant's root element and subtrees so that callers
// (PBFS) can descend the tree in parallel: it returns the root element and
// the two subtrees of the root's child tree along with the child tree's
// root element.  For a rank-0 pennant ok is false and only elem is valid.
func (p *Pennant[T]) Spine() (elem T, childElem T, left, right *Subtree[T], ok bool) {
	elem = p.root.elem
	if p.root.left == nil {
		return elem, childElem, nil, nil, false
	}
	c := p.root.left
	return elem, c.elem, &Subtree[T]{n: c.left}, &Subtree[T]{n: c.right}, true
}

// Subtree is a complete binary tree fragment of a pennant, used for
// parallel traversal.
type Subtree[T any] struct {
	n *node[T]
}

// Empty reports whether the subtree holds no nodes.
func (s *Subtree[T]) Empty() bool { return s == nil || s.n == nil }

// Element returns the root element of the subtree; it must not be empty.
func (s *Subtree[T]) Element() T { return s.n.elem }

// Children returns the left and right subtrees.
func (s *Subtree[T]) Children() (left, right *Subtree[T]) {
	return &Subtree[T]{n: s.n.left}, &Subtree[T]{n: s.n.right}
}

// Walk calls fn for every element in the subtree.
func (s *Subtree[T]) Walk(fn func(T)) {
	if s == nil {
		return
	}
	walkTree(s.n, fn)
}

// MaxRank bounds the number of pennant slots in a bag; 2^64 elements can
// never be exceeded.
const MaxRank = 64

// Bag is an unordered multiset supporting O(1) amortised insertion,
// O(log n) union and split, and linear traversal.
type Bag[T any] struct {
	pennants [MaxRank]*Pennant[T]
	size     int
}

// New returns an empty bag.
func New[T any]() *Bag[T] { return &Bag[T]{} }

// Len returns the number of elements in the bag.
func (b *Bag[T]) Len() int { return b.size }

// IsEmpty reports whether the bag holds no elements.
func (b *Bag[T]) IsEmpty() bool { return b.size == 0 }

// Insert adds one element, like incrementing a binary counter.
func (b *Bag[T]) Insert(v T) {
	p := singleton(v)
	k := 0
	for b.pennants[k] != nil {
		p = union(b.pennants[k], p)
		b.pennants[k] = nil
		k++
	}
	b.pennants[k] = p
	b.size++
}

// Union merges other into b, emptying other, like binary addition with
// carries.
func (b *Bag[T]) Union(other *Bag[T]) {
	if other == nil || other.size == 0 {
		return
	}
	var carry *Pennant[T]
	for k := 0; k < MaxRank; k++ {
		x, y := b.pennants[k], other.pennants[k]
		other.pennants[k] = nil
		b.pennants[k], carry = fullAdd(x, y, carry)
	}
	b.size += other.size
	other.size = 0
}

// fullAdd combines up to three pennants of rank k into a result of rank k
// and a carry of rank k+1, exactly like a binary full adder.
func fullAdd[T any](x, y, carry *Pennant[T]) (sum, carryOut *Pennant[T]) {
	present := 0
	if x != nil {
		present++
	}
	if y != nil {
		present++
	}
	if carry != nil {
		present++
	}
	switch present {
	case 0:
		return nil, nil
	case 1:
		if x != nil {
			return x, nil
		}
		if y != nil {
			return y, nil
		}
		return carry, nil
	case 2:
		if x == nil {
			return nil, union(y, carry)
		}
		if y == nil {
			return nil, union(x, carry)
		}
		return nil, union(x, y)
	default:
		return carry, union(x, y)
	}
}

// SplitHalf removes roughly half of the bag's elements and returns them as
// a new bag (the larger pennant stays behind when sizes are uneven).
func (b *Bag[T]) SplitHalf() *Bag[T] {
	out := New[T]()
	if b.size <= 1 {
		return out
	}
	var spare *Pennant[T]
	if b.pennants[0] != nil {
		spare = b.pennants[0]
		b.pennants[0] = nil
	}
	moved := 0
	for k := 1; k < MaxRank; k++ {
		if b.pennants[k] == nil {
			continue
		}
		out.pennants[k-1] = split(b.pennants[k])
		moved += out.pennants[k-1].Len()
		// Shift the remaining half down one rank as well.
		p := b.pennants[k]
		b.pennants[k] = nil
		if b.pennants[k-1] == nil {
			b.pennants[k-1] = p
		} else {
			b.pennants[k] = union(b.pennants[k-1], p)
			b.pennants[k-1] = nil
		}
	}
	if spare != nil {
		b.Insert(spare.root.elem)
		b.size-- // Insert bumped size for an element already counted.
	}
	b.size -= moved
	out.size = moved
	return out
}

// Pennants returns the non-empty pennants currently in the bag, smallest
// rank first.  PBFS walks these in parallel.
func (b *Bag[T]) Pennants() []*Pennant[T] {
	out := make([]*Pennant[T], 0, 8)
	for _, p := range b.pennants {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// Walk calls fn for every element in the bag, in an unspecified order.
func (b *Bag[T]) Walk(fn func(T)) {
	for _, p := range b.pennants {
		p.Walk(fn)
	}
}

// Clear removes every element.
func (b *Bag[T]) Clear() {
	for i := range b.pennants {
		b.pennants[i] = nil
	}
	b.size = 0
}
