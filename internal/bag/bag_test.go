package bag

import (
	"sort"
	"testing"
	"testing/quick"
)

func collect(b *Bag[int]) []int {
	var out []int
	b.Walk(func(v int) { out = append(out, v) })
	sort.Ints(out)
	return out
}

func TestEmptyBag(t *testing.T) {
	b := New[int]()
	if !b.IsEmpty() || b.Len() != 0 {
		t.Fatal("new bag should be empty")
	}
	if got := collect(b); len(got) != 0 {
		t.Fatalf("empty bag walked %d elements", len(got))
	}
	if len(b.Pennants()) != 0 {
		t.Fatal("empty bag should have no pennants")
	}
	b.Union(nil)
	b.Union(New[int]())
	if !b.IsEmpty() {
		t.Fatal("union with empty bags should keep the bag empty")
	}
}

func TestInsertAndWalk(t *testing.T) {
	b := New[int]()
	const n = 1000
	for i := 0; i < n; i++ {
		b.Insert(i)
	}
	if b.Len() != n {
		t.Fatalf("Len = %d, want %d", b.Len(), n)
	}
	got := collect(b)
	if len(got) != n {
		t.Fatalf("walked %d elements, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("element %d missing or duplicated (got %d)", i, v)
		}
	}
}

func TestPennantStructure(t *testing.T) {
	b := New[int]()
	for i := 0; i < 13; i++ { // 13 = 0b1101: pennants of rank 0, 2, 3
		b.Insert(i)
	}
	ps := b.Pennants()
	if len(ps) != 3 {
		t.Fatalf("expected 3 pennants for 13 elements, got %d", len(ps))
	}
	wantRanks := []int{0, 2, 3}
	total := 0
	for i, p := range ps {
		if p.Rank() != wantRanks[i] {
			t.Fatalf("pennant %d has rank %d, want %d", i, p.Rank(), wantRanks[i])
		}
		total += p.Len()
	}
	if total != 13 {
		t.Fatalf("pennants hold %d elements, want 13", total)
	}
}

func TestPennantSpineAndSubtrees(t *testing.T) {
	b := New[int]()
	for i := 0; i < 8; i++ {
		b.Insert(i)
	}
	ps := b.Pennants()
	if len(ps) != 1 || ps[0].Rank() != 3 {
		t.Fatalf("expected one rank-3 pennant, got %v", ps)
	}
	seen := make(map[int]bool)
	rootElem, childElem, left, right, ok := ps[0].Spine()
	if !ok {
		t.Fatal("rank-3 pennant should expose a spine")
	}
	seen[rootElem] = true
	seen[childElem] = true
	for _, st := range []*Subtree[int]{left, right} {
		st.Walk(func(v int) { seen[v] = true })
	}
	if len(seen) != 8 {
		t.Fatalf("spine traversal saw %d distinct elements, want 8", len(seen))
	}
	// Descend explicitly through Children.
	if !left.Empty() {
		l, r := left.Children()
		_ = left.Element()
		count := 1
		l.Walk(func(int) { count++ })
		r.Walk(func(int) { count++ })
		if count != 3 {
			t.Fatalf("left subtree of rank-3 pennant should hold 3 elements, got %d", count)
		}
	}
	// A singleton pennant has no spine.
	single := New[int]()
	single.Insert(42)
	if _, _, _, _, ok := single.Pennants()[0].Spine(); ok {
		t.Fatal("rank-0 pennant should not expose a spine")
	}
}

func TestUnionPreservesAllElements(t *testing.T) {
	a := New[int]()
	b := New[int]()
	for i := 0; i < 100; i++ {
		a.Insert(i)
	}
	for i := 100; i < 237; i++ {
		b.Insert(i)
	}
	a.Union(b)
	if a.Len() != 237 {
		t.Fatalf("union Len = %d, want 237", a.Len())
	}
	if !b.IsEmpty() {
		t.Fatal("union should empty the argument bag")
	}
	got := collect(a)
	for i, v := range got {
		if v != i {
			t.Fatalf("element %d missing after union", i)
		}
	}
}

func TestSplitHalf(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 8, 64, 100, 1023} {
		b := New[int]()
		for i := 0; i < n; i++ {
			b.Insert(i)
		}
		other := b.SplitHalf()
		if b.Len()+other.Len() != n {
			t.Fatalf("n=%d: sizes %d + %d != %d", n, b.Len(), other.Len(), n)
		}
		if n > 1 && (other.Len() == 0 || b.Len() == 0) {
			t.Fatalf("n=%d: split produced an empty half (%d/%d)", n, b.Len(), other.Len())
		}
		seen := make(map[int]int)
		b.Walk(func(v int) { seen[v]++ })
		other.Walk(func(v int) { seen[v]++ })
		if len(seen) != n {
			t.Fatalf("n=%d: %d distinct elements after split, want %d", n, len(seen), n)
		}
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: element %d appears %d times", n, v, c)
			}
		}
	}
}

func TestClear(t *testing.T) {
	b := New[int]()
	for i := 0; i < 50; i++ {
		b.Insert(i)
	}
	b.Clear()
	if !b.IsEmpty() || len(b.Pennants()) != 0 {
		t.Fatal("Clear did not empty the bag")
	}
	b.Insert(1)
	if b.Len() != 1 {
		t.Fatal("bag unusable after Clear")
	}
}

func TestPropertyUnionAndInsertPreserveMultiset(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := New[uint16]()
		b := New[uint16]()
		want := make(map[uint16]int)
		for _, x := range xs {
			a.Insert(x)
			want[x]++
		}
		for _, y := range ys {
			b.Insert(y)
			want[y]++
		}
		a.Union(b)
		if a.Len() != len(xs)+len(ys) || !b.IsEmpty() {
			return false
		}
		got := make(map[uint16]int)
		a.Walk(func(v uint16) { got[v]++ })
		if len(got) != len(want) {
			return false
		}
		for k, c := range want {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySplitPreservesMultiset(t *testing.T) {
	f := func(xs []uint16) bool {
		b := New[uint16]()
		want := make(map[uint16]int)
		for _, x := range xs {
			b.Insert(x)
			want[x]++
		}
		half := b.SplitHalf()
		if b.Len()+half.Len() != len(xs) {
			return false
		}
		got := make(map[uint16]int)
		b.Walk(func(v uint16) { got[v]++ })
		half.Walk(func(v uint16) { got[v]++ })
		if len(got) != len(want) {
			return false
		}
		for k, c := range want {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
