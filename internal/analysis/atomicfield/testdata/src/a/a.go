package a

import "sync/atomic"

type counter struct {
	n    int64
	dist []int32
	name string
}

func (c *counter) inc() { atomic.AddInt64(&c.n, 1) }

func (c *counter) get() int64 { return atomic.LoadInt64(&c.n) }

func (c *counter) bad() int64 { return c.n } // want `field counter\.n is accessed with sync/atomic`

func (c *counter) badStore() { c.n = 0 } // want `field counter\.n is accessed with sync/atomic`

func (c *counter) reset() {
	c.n = 0 //cilkvet:allow atomicfield -- fixture: counter not yet published to other goroutines
}

func (c *counter) relax(i int) { atomic.StoreInt32(&c.dist[i], 1) }

func (c *counter) read(i int) bool {
	return atomic.CompareAndSwapInt32(&c.dist[i], 0, 1)
}

func (c *counter) badElem(i int) int32 { return c.dist[i] } // want `elements of field counter\.dist are accessed with sync/atomic`

func (c *counter) size() int { return len(c.dist) } // header use: not flagged

func (c *counter) share() []int32 { return c.dist } // header use: not flagged

func (c *counter) badRange() (s int32) {
	for _, v := range c.dist { // want `elements of field counter\.dist are accessed with sync/atomic`
		s += v
	}
	return
}

func (c *counter) okIndexRange() (n int) {
	for i := range c.dist { // index-only range: not flagged
		n += i
	}
	return
}

func (c *counter) okName() string { return c.name } // untracked field
