// Package atomicfield reports struct fields that are accessed both through
// sync/atomic functions and through plain loads or stores.
//
// The lock-free runtime mixes two atomicity idioms: typed atomics
// (atomic.Uint64 and friends, which the type system keeps honest) and
// sync/atomic function calls on plain integer fields (the tlmm page
// reference counts, for example).  The second idiom has a classic failure
// mode: one new call site reads or writes the field directly, the race
// detector only catches it on schedules the tests happen to run, and the
// result is a torn or stale access that corrupts an epoch or a reference
// count.  This analyzer makes the convention compiler-checked: once any
// code in a package touches a field via sync/atomic, every other access to
// that field must be atomic too (or carry a //cilkvet:allow atomicfield
// suppression explaining why a plain access is safe, e.g. pre-publication
// initialisation).
//
// When the atomic calls target elements of a slice or array field
// (atomic.LoadInt32(&x.f[i])), plain *element* accesses are flagged;
// whole-header uses of the field (len, reslicing, passing the slice on)
// are not, since the header itself is not what the atomics protect.
//
// The analysis is per-package: a field accessed atomically in one package
// and plainly in another is not caught unless both uses are visible in one
// pass.  Every field this suite cares about is unexported, so in practice
// the package boundary is also the access boundary.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the atomicfield analyzer.
var Analyzer = &framework.Analyzer{
	Name: "atomicfield",
	Doc:  "report mixed sync/atomic and plain accesses to the same struct field",
	Run:  run,
}

// atomicOpPrefixes are the sync/atomic function families whose first
// argument is the address being operated on.
var atomicOpPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"}

func run(pass *framework.Pass) error {
	// First pass: find every field whose address feeds a sync/atomic call,
	// remembering the exact selector nodes used there (those accesses are
	// sanctioned by construction).
	type fieldUse struct {
		elem bool // atomics target elements of the field, not the field itself
	}
	atomicFields := make(map[*types.Var]*fieldUse)
	sanctioned := make(map[*ast.SelectorExpr]bool)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			target := addr.X
			elem := false
			if idx, ok := target.(*ast.IndexExpr); ok {
				target, elem = idx.X, true
			}
			sel, ok := target.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv := fieldOf(pass, sel)
			if fv == nil {
				return true
			}
			if u := atomicFields[fv]; u == nil {
				atomicFields[fv] = &fieldUse{elem: elem}
			} else if !elem {
				u.elem = false
			}
			sanctioned[sel] = true
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Second pass: every other access to those fields must be atomic.
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			fv := fieldOf(pass, sel)
			use, tracked := atomicFields[fv]
			if !tracked {
				return true
			}
			if use.elem {
				// Element-wise atomics: flag element reads/writes and
				// element-visiting ranges, not uses of the header.
				switch parent := parentOf(stack).(type) {
				case *ast.IndexExpr:
					if parent.X == sel {
						pass.Reportf(parent.Pos(), "elements of field %s are accessed with sync/atomic; plain element access can tear against concurrent atomics", fieldName(fv))
					}
				case *ast.RangeStmt:
					if parent.X == sel && parent.Value != nil {
						pass.Reportf(sel.Pos(), "elements of field %s are accessed with sync/atomic; ranging over the values reads them non-atomically", fieldName(fv))
					}
				}
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic; plain access can tear against concurrent atomics", fieldName(fv))
			return true
		})
	}
	return nil
}

// parentOf returns the node enclosing the one on top of the stack.
func parentOf(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}

// fieldName renders the field for a diagnostic: the declaring struct type
// and field name, not the arbitrary access expression.
func fieldName(fv *types.Var) string {
	if fv.Pkg() != nil {
		if named, ok := fieldOwner(fv); ok {
			return named + "." + fv.Name()
		}
	}
	return fv.Name()
}

// fieldOwner is a best-effort lookup of the struct type name declaring fv.
func fieldOwner(fv *types.Var) (string, bool) {
	// The field's parent scope does not name the struct; scan the package
	// scope for a named struct type containing this exact field object.
	scope := fv.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fv {
				return tn.Name(), true
			}
		}
	}
	return "", false
}

// isAtomicCall reports whether call invokes a sync/atomic function from
// one of the address-taking families.
func isAtomicCall(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range atomicOpPrefixes {
		if strings.HasPrefix(sel.Sel.Name, prefix) {
			return true
		}
	}
	return false
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(pass *framework.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return nil
	}
	return v
}
