// Package epochbump checks that every view-retirement path publishes a
// lookup-cache invalidation.
//
// The devirtualized lookup fast path caches (reducer, view) resolutions
// against a per-worker epoch counter.  Any operation that retires or moves
// a view — unregistering a reducer, growing a TLMM reducer page, reusing
// an SPA slot, stealing across a trace boundary, merging child views —
// must bump that epoch (PublishViewInvalidation for cross-worker
// retirement, InvalidateLookupCache owner-side) before the old view word
// can be recycled.  Forgetting the bump does not crash: the stale cache
// entry keeps resolving to the retired view and updates are silently lost
// into freed memory.  That failure mode survives tests unless a schedule
// happens to re-read through the stale entry, which is exactly the kind of
// invariant a checker should carry instead of a reviewer.
//
// The analyzer matches function declarations against the -funcs regexp
// (rendered as Name or Recv.Name) and verifies that each one can reach a
// call to one of the -bumps functions through same-package calls.  The
// reachability walk is a whole-body over-approximation: a bump behind a
// conditional satisfies it.  That is deliberate — the checker enforces
// "this path was written with invalidation in mind", and the fine-grained
// branch coverage belongs to the race and chaos suites.
package epochbump

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis/framework"
)

// DefaultFuncs matches the retirement entry points of the memory-mapped
// reducer runtime: the core MM and hypermap HM lifecycle methods plus TLMM
// reducer-page growth.
const DefaultFuncs = `^(MM|HM)\.(Unregister|BeginTrace|EndTrace|Merge)$|^MM\.growReducerPage$`

// DefaultBumps are the blessed invalidation publishers.
const DefaultBumps = "PublishViewInvalidation,InvalidateLookupCache,publishViewInvalidation"

// Analyzer is the epochbump analyzer.
var Analyzer = &framework.Analyzer{
	Name: "epochbump",
	Doc:  "check that view-retirement paths publish a lookup-cache invalidation",
	Run:  run,
}

var (
	funcsFlag string
	bumpsFlag string
)

func init() {
	Analyzer.Flags.StringVar(&funcsFlag, "funcs", DefaultFuncs, "regexp of functions (Name or Recv.Name) that must reach an invalidation bump")
	Analyzer.Flags.StringVar(&bumpsFlag, "bumps", DefaultBumps, "comma-separated names of functions that publish an invalidation")
}

// declInfo is the per-function slice of the same-package call graph.
type declInfo struct {
	decl    *ast.FuncDecl
	callees map[*types.Func]bool
	bumps   bool // directly calls one of the -bumps functions
}

func run(pass *framework.Pass) error {
	funcsRe, err := regexp.Compile(funcsFlag)
	if err != nil {
		return fmt.Errorf("epochbump: bad -funcs regexp: %w", err)
	}
	bumpNames := make(map[string]bool)
	for _, b := range strings.Split(bumpsFlag, ",") {
		if b = strings.TrimSpace(b); b != "" {
			bumpNames[b] = true
		}
	}

	// Build the same-package call graph over function declarations.
	graph := make(map[*types.Func]*declInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &declInfo{decl: fd, callees: make(map[*types.Func]bool)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(pass, call)
				if callee == nil {
					return true
				}
				if bumpNames[callee.Name()] {
					info.bumps = true
				}
				if callee.Pkg() == pass.Pkg {
					info.callees[callee.Origin()] = true
				}
				return true
			})
			graph[obj.Origin()] = info
		}
	}

	// Check every matched declaration for reachability of a bump.
	for obj, info := range graph {
		if !funcsRe.MatchString(declKey(obj)) {
			continue
		}
		if !reachesBump(graph, obj, make(map[*types.Func]bool)) {
			pass.Reportf(info.decl.Name.Pos(),
				"%s retires or moves views but never reaches %s; stale lookup-cache entries will resolve to the retired view",
				declKey(obj), strings.Join(sortedNames(bumpNames), " or "))
		}
	}
	return nil
}

// reachesBump walks the same-package call graph from obj looking for a
// declaration that directly calls a bump function.
func reachesBump(graph map[*types.Func]*declInfo, obj *types.Func, seen map[*types.Func]bool) bool {
	if seen[obj] {
		return false
	}
	seen[obj] = true
	info, ok := graph[obj]
	if !ok {
		return false
	}
	if info.bumps {
		return true
	}
	for callee := range info.callees {
		if reachesBump(graph, callee, seen) {
			return true
		}
	}
	return false
}

// calleeOf resolves the function or method a call statically invokes, or
// nil for indirect calls, conversions and builtins.
func calleeOf(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.IndexExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			f, _ := pass.TypesInfo.Uses[id].(*types.Func)
			return f
		}
	case *ast.IndexListExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			f, _ := pass.TypesInfo.Uses[id].(*types.Func)
			return f
		}
	}
	return nil
}

// declKey renders a function object as Name or Recv.Name, the notation the
// -funcs regexp matches against.
func declKey(obj *types.Func) string {
	if recv := obj.Signature().Recv(); recv != nil {
		t := recv.Type()
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			return named.Obj().Name() + "." + obj.Name()
		}
	}
	return obj.Name()
}

// sortedNames returns the set's keys in stable order for diagnostics.
func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
