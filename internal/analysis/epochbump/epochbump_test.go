package epochbump_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/epochbump"
)

func TestEpochBump(t *testing.T) {
	analysistest.Run(t, "testdata/src", epochbump.Analyzer, "a")
}
