package a

type MM struct{ epoch uint64 }

func (m *MM) InvalidateLookupCache() { m.epoch++ }

func (m *MM) publishViewInvalidation() { m.epoch += 2 }

func (m *MM) Unregister(id int) { // direct bump: ok
	m.InvalidateLookupCache()
}

func (m *MM) BeginTrace() { // transitive bump through retire: ok
	m.retire()
}

func (m *MM) retire() { m.publishViewInvalidation() }

func (m *MM) EndTrace() {} // want `MM\.EndTrace retires or moves views but never reaches`

func (m *MM) Merge(other *MM) { // want `MM\.Merge retires or moves views but never reaches`
	m.epoch = other.epoch
}

func (m *MM) growReducerPage() { // want `MM\.growReducerPage retires or moves views but never reaches`
	recycle(m)
}

// recycle loops back into growReducerPage; the cycle must not hang the
// reachability walk, and neither side bumps.
func recycle(m *MM) { m.growReducerPage() }

type HM struct{ mm MM }

func (h *HM) Unregister() { // bump through a field's method: ok
	h.mm.InvalidateLookupCache()
}

func (h *HM) helperOnly() {} // not matched by -funcs: ok
