package load

import (
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from the working directory to the directory holding
// go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// TestLoadModule type-checks the entire module (test variants included)
// through the source-only loader.  It is the foundation smoke test for
// cilkvet: if this fails, every analyzer result over the real tree is
// suspect.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full stdlib closure from source")
	}
	res, err := Load(moduleRoot(t), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Roots) == 0 {
		t.Fatal("no analysis roots loaded")
	}
	var foundCore, foundSched bool
	for _, p := range res.Roots {
		if p.Types == nil || p.TypesInfo == nil {
			t.Errorf("package %s missing type information", p.ImportPath)
		}
		switch p.Types.Path() {
		case "repro/internal/core":
			foundCore = true
		case "repro/internal/sched":
			foundSched = true
		}
	}
	if !foundCore || !foundSched {
		t.Errorf("expected core and sched among roots (core=%v sched=%v)", foundCore, foundSched)
	}
	if len(res.Index.Deprecated) == 0 {
		t.Error("module index found no deprecations (cilkm shims should be indexed)")
	}
}
