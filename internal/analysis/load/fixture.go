package load

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"

	"repro/internal/analysis/framework"
)

// LoadFixture type-checks a GOPATH-style fixture tree: each pkgpath names
// a directory srcdir/pkgpath holding one package's files.  Fixture
// packages may import each other by those same paths and may import the
// standard library (resolved through `go list`, type-checked from source
// like the main driver).  Every named fixture package becomes a Root.
//
// This is the loader behind the analysistest harness; it exists so
// analyzer tests exercise the same type-checking pipeline the real driver
// uses instead of a parallel one that could drift.
func LoadFixture(srcdir string, pkgpaths []string) (*Result, error) {
	fx := &fixtureLoader{
		res: &Result{
			Fset:  token.NewFileSet(),
			Index: framework.NewModuleIndex(),
		},
		srcdir: srcdir,
		sizes:  types.SizesFor("gc", runtime.GOARCH),
		byPath: make(map[string]*Package),
		listed: make(map[string]bool),
	}
	for _, path := range pkgpaths {
		pkg, err := fx.load(path)
		if err != nil {
			return nil, err
		}
		if !pkg.Root {
			pkg.Root = true
			fx.res.Roots = append(fx.res.Roots, pkg)
		}
	}
	return fx.res, nil
}

type fixtureLoader struct {
	res    *Result
	srcdir string
	sizes  types.Sizes
	byPath map[string]*Package
	listed map[string]bool
}

// load resolves one import path: a fixture directory when one exists
// under srcdir, the standard library otherwise.
func (fx *fixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := fx.byPath[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(fx.srcdir, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return fx.loadFixtureDir(path, dir)
	}
	return fx.loadStd(path)
}

// loadFixtureDir parses and type-checks one fixture package directory.
func (fx *fixtureLoader) loadFixtureDir(path, dir string) (*Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("load: fixture %s: no .go files in %s", path, dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fx.res.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: fixture %s: %w", path, err)
		}
		files = append(files, f)
	}
	// Resolve imports first so the importer below finds them ready.
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == "unsafe" {
				continue
			}
			if _, err := fx.load(p); err != nil {
				return nil, err
			}
		}
	}
	pkg, err := typecheck(fx.res, path, dir, files, fx.sizes, func(p string) (*types.Package, error) {
		if p == "unsafe" {
			return types.Unsafe, nil
		}
		if dep, ok := fx.byPath[p]; ok {
			return dep.Types, nil
		}
		return nil, fmt.Errorf("package %q not resolved for fixture %s", p, path)
	})
	if err != nil {
		return nil, err
	}
	fx.byPath[path] = pkg
	fx.res.Packages = append(fx.res.Packages, pkg)
	return pkg, nil
}

// loadStd lists one standard-library package with its dependency closure
// and type-checks whatever is not already loaded.
func (fx *fixtureLoader) loadStd(path string) (*Package, error) {
	if !fx.listed[path] {
		fx.listed[path] = true
		entries, err := goList(fx.srcdir, []string{path})
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.ImportPath == "unsafe" {
				continue
			}
			if e.Error != nil {
				return nil, fmt.Errorf("load: %s: %s", e.ImportPath, e.Error.Err)
			}
			if _, ok := fx.byPath[e.ImportPath]; ok {
				continue
			}
			pkg, err := checkOne(fx.res, fx.byPath, e, fx.sizes)
			if err != nil {
				return nil, err
			}
			fx.byPath[e.ImportPath] = pkg
			fx.res.Packages = append(fx.res.Packages, pkg)
		}
	}
	pkg, ok := fx.byPath[path]
	if !ok {
		return nil, fmt.Errorf("load: fixture import %q: not a fixture directory and not resolved by go list", path)
	}
	return pkg, nil
}
