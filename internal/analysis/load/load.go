// Package load is cilkvet's whole-module driver: it resolves Go packages
// with `go list`, type-checks them from source using only the standard
// library, and runs framework analyzers over the result.
//
// The usual foundation for this layer is golang.org/x/tools/go/packages,
// which loads export data produced by the build cache.  This repository
// builds hermetically (no module proxy), so the driver instead reproduces
// the minimal slice it needs: `go list -json -deps -test` supplies the
// dependency-ordered package graph with build-tag-resolved file lists, and
// each package — standard library included — is type-checked from source
// in that order.  CGO_ENABLED=0 keeps every file list pure Go, which is
// sound because nothing is executed: the analyzers only need types.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// listPackage is the subset of `go list -json` output the driver consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct {
		Path string
		Dir  string
	}
	Error *struct {
		Err string
	}
}

// Package is one loaded, type-checked package.
type Package struct {
	// ImportPath is the package's full `go list` identity, including any
	// " [pkg.test]" test-variant suffix.
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Fset is the file set shared by every package of one Load.
	Fset *token.FileSet
	// Files is the parsed syntax, with comments.
	Files []*ast.File
	// Types is the type-checked package; its Path() is the clean import
	// path with any test-variant suffix stripped.
	Types *types.Package
	// TypesInfo is the type information for Files.
	TypesInfo *types.Info
	// Root marks packages the analyzers should run over (the named
	// patterns and their test variants, as opposed to dependencies).
	Root bool
}

// Result is the output of Load.
type Result struct {
	// Fset is the shared file set.
	Fset *token.FileSet
	// Packages holds every loaded package in dependency order.
	Packages []*Package
	// Roots are the packages to analyze, a subset of Packages.
	Roots []*Package
	// Index is the module-wide doc-comment index.
	Index *framework.ModuleIndex
}

// Load lists patterns in dir (the module root) and type-checks the full
// dependency closure, test variants included.
func Load(dir string, patterns []string) (*Result, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	return check(entries)
}

// goList runs `go list -json -deps -test` and decodes the entry stream,
// which arrives in dependency order (dependencies before dependents).
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "-test", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("load: starting go list: %w", err)
	}
	var entries []*listPackage
	dec := json.NewDecoder(out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		entries = append(entries, &p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return entries, nil
}

// basePath strips the " [pkg.test]" test-variant suffix from an import
// path, yielding the path the package declares itself under.
func basePath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// check type-checks the listed packages in order and assembles the Result.
func check(entries []*listPackage) (*Result, error) {
	res := &Result{
		Fset:  token.NewFileSet(),
		Index: framework.NewModuleIndex(),
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	byPath := make(map[string]*Package)

	// Packages whose in-package test variant exists are analyzed through
	// that variant only, so non-test files are not reported twice.
	augmented := make(map[string]bool)
	for _, e := range entries {
		if e.ForTest != "" && basePath(e.ImportPath) == e.ForTest {
			augmented[e.ForTest] = true
		}
	}

	for _, e := range entries {
		if e.ImportPath == "unsafe" {
			continue // provided by types.Unsafe in the importer
		}
		if strings.HasSuffix(e.ImportPath, ".test") {
			continue // generated test main; its sources never exist on disk
		}
		if e.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", e.ImportPath, e.Error.Err)
		}
		pkg, err := checkOne(res, byPath, e, sizes)
		if err != nil {
			return nil, err
		}
		byPath[e.ImportPath] = pkg
		res.Packages = append(res.Packages, pkg)
		if isRoot(e) && !(e.ForTest == "" && augmented[e.ImportPath]) {
			pkg.Root = true
			res.Roots = append(res.Roots, pkg)
		}
	}
	return res, nil
}

// isRoot reports whether the entry is one the analyzers should run over: a
// named (non-dependency) package inside the module under analysis.
func isRoot(e *listPackage) bool {
	return !e.DepOnly && !e.Standard && e.Module != nil
}

// checkOne parses and type-checks a single package against the packages
// already resolved in byPath.
func checkOne(res *Result, byPath map[string]*Package, e *listPackage, sizes types.Sizes) (*Package, error) {
	if len(e.CgoFiles) > 0 {
		return nil, fmt.Errorf("load: %s lists cgo files under CGO_ENABLED=0", e.ImportPath)
	}
	files := make([]*ast.File, 0, len(e.GoFiles))
	for _, name := range e.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(e.Dir, name)
		}
		f, err := parser.ParseFile(res.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}

	pkg, err := typecheck(res, basePath(e.ImportPath), e.Dir, files, sizes, func(path string) (*types.Package, error) {
		if mapped, ok := e.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if dep, ok := byPath[path]; ok {
			return dep.Types, nil
		}
		return nil, fmt.Errorf("package %q not in dependency graph of %s", path, e.ImportPath)
	})
	if err != nil {
		return nil, err
	}
	pkg.ImportPath = e.ImportPath
	return pkg, nil
}

// typecheck runs the type checker over one parsed package and indexes its
// doc comments, failing on the first few type errors.
func typecheck(res *Result, pkgpath, dir string, files []*ast.File, sizes types.Sizes, imp func(string) (*types.Package, error)) (*Package, error) {
	var typeErrs []types.Error
	conf := types.Config{
		Sizes:    sizes,
		Importer: importerFunc(imp),
		Error: func(err error) {
			if te, ok := err.(types.Error); ok {
				typeErrs = append(typeErrs, te)
			}
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, _ := conf.Check(pkgpath, res.Fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, min(len(typeErrs), 5))
		for _, te := range typeErrs[:min(len(typeErrs), 5)] {
			msgs = append(msgs, fmt.Sprintf("  %s: %s", res.Fset.Position(te.Pos), te.Msg))
		}
		return nil, fmt.Errorf("load: type-checking %s:\n%s", pkgpath, strings.Join(msgs, "\n"))
	}
	res.Index.IndexFiles(pkgpath, files)
	return &Package{
		ImportPath: pkgpath,
		Dir:        dir,
		Fset:       res.Fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Run loads patterns in dir and applies every analyzer to every root
// package, returning the surviving findings sorted by position.
// Suppression comments are honoured and malformed suppressions are
// reported under the pseudo-analyzer name "suppression".
func Run(dir string, patterns []string, analyzers []*framework.Analyzer) ([]framework.Finding, error) {
	res, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var findings []framework.Finding
	seen := make(map[framework.Finding]bool)
	report := func(f framework.Finding) {
		if !seen[f] {
			seen[f] = true
			findings = append(findings, f)
		}
	}
	for _, pkg := range res.Roots {
		sup := framework.CollectSuppressions(pkg.Fset, pkg.Files)
		for _, d := range sup.Malformed {
			report(framework.Finding{Analyzer: "suppression", Pos: pkg.Fset.Position(d.Pos), Message: d.Message})
		}
		for _, a := range analyzers {
			pass := &framework.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Module:    res.Index,
				Report: func(d framework.Diagnostic) {
					pos := pkg.Fset.Position(d.Pos)
					if sup.Allows(a.Name, pos) {
						return
					}
					report(framework.Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("load: analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
