package a

import "unsafe"

// page stands in for an SPA map page: its address is its identity.
//
//cilkvet:nocopy
type page struct {
	n int
}

// wrapper contains a page, so it inherits the no-copy constraint.
type wrapper struct {
	p page
}

// bank embeds pages as array elements; still no-copy.
type bank struct {
	pages [4]page
}

// handle only points at a page and copies freely.
type handle struct {
	p *page
}

func use(p page) {} // want `parameter declared with no-copy type a\.page by value`

func produce(p *page) page { // want `result declared with no-copy type a\.page by value`
	return *p // want `return copies a\.page by value`
}

func copies(p *page, pages []page, w *wrapper, b *bank) {
	x := *p // want `assignment copies a\.page by value`
	x.n++
	y := pages[0] // want `assignment copies a\.page by value`
	y.n++
	z := *w // want `assignment copies a\.wrapper by value`
	z.p.n++
	v := b.pages // want `assignment copies \[4\]a\.page by value`
	v[0].n++
	fresh := page{n: 1} // composite literal: a fresh value, not a copy
	fresh.n++
	use(*p)                   // want `call passes a\.page by value`
	for _, e := range pages { // want `range value copies a\.page`
		_ = e.n
	}
	for i := range pages { // index-only range: not flagged
		_ = i
	}
}

func pointers(p *page, h handle) *page {
	q := p // copying the pointer is fine
	h2 := h
	_ = h2
	return q
}

func suppressed(p *page) {
	x := *p //cilkvet:allow nocopy -- fixture: snapshot read on a quiesced page
	x.n++
}

func size(p *page) uintptr {
	return unsafe.Sizeof(*p) // builtins do not copy their operand: not flagged
}

var global = page{} // fresh value into a variable: not flagged
