package nocopy_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nocopy"
)

func TestNoCopy(t *testing.T) {
	analysistest.Run(t, "testdata/src", nocopy.Analyzer, "a")
}
