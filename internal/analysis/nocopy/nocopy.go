// Package nocopy reports by-value copies of types that must stay put.
//
// The runtime is full of structs whose address is their identity: SPA map
// pages (4 KB of view slots aliased by lookup fast paths), cache-line
// padded counters and view-cache slots, intrusive free-stack nodes, and
// per-worker arenas.  Copying one by value silently forks its state — a
// copied SPA page double-frees its views, a copied padded counter loses
// updates — and nothing crashes until much later.
//
// `go vet`'s copylocks only understands types that transitively contain a
// Lock method (sync.Mutex, sync/atomic's typed values).  This analyzer
// extends the same discipline to plain-data types: a type declared with a
// `//cilkvet:nocopy` directive in its doc comment — or any type that
// transitively contains one as a field or array element — must not be
// copied.  Flagged copy contexts:
//
//   - assignments whose right-hand side reads an existing value
//     (x = y, x := *p, x := s.field)
//   - function call arguments passed by value
//   - range statements whose value variable copies the element
//   - return statements returning an existing value
//   - function signatures declaring a no-copy parameter or result by value
//
// Fresh values being moved into place — composite literals, function call
// results — are not copies of shared state and are not flagged.
package nocopy

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the nocopy analyzer.
var Analyzer = &framework.Analyzer{
	Name: "nocopy",
	Doc:  "report by-value copies of //cilkvet:nocopy types",
	Run:  run,
}

func run(pass *framework.Pass) error {
	c := &checker{pass: pass, cache: make(map[types.Type]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// Assigning to the blank identifier discards the value
					// rather than forking it.
					if len(n.Lhs) == len(n.Rhs) && isBlank(n.Lhs[i]) {
						continue
					}
					c.checkRead(rhs, "assignment copies")
				}
			case *ast.CallExpr:
				if isConversion(pass, n) || isBuiltinCall(pass, n) {
					break
				}
				for _, arg := range n.Args {
					c.checkRead(arg, "call passes")
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					c.checkRead(res, "return copies")
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.TypesInfo.TypeOf(n.Value); t != nil && c.isNoCopy(t) {
						pass.Reportf(n.Value.Pos(), "range value copies %s; iterate by index or pointer instead", typeString(t))
					}
				}
			case *ast.FuncType:
				c.checkSignature(n)
			case *ast.GenDecl:
				// Variable declarations with initialisers: var x = y.
				for _, spec := range n.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							c.checkRead(v, "assignment copies")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass  *framework.Pass
	cache map[types.Type]bool
}

// checkRead reports expr when it reads an existing value of a no-copy type
// (as opposed to constructing a fresh one).
func (c *checker) checkRead(expr ast.Expr, what string) {
	if !readsExisting(expr) {
		return
	}
	t := c.pass.TypesInfo.TypeOf(expr)
	if t == nil || !c.isNoCopy(t) {
		return
	}
	c.pass.Reportf(expr.Pos(), "%s %s by value; use a pointer (type is marked //cilkvet:nocopy)", what, typeString(t))
}

// checkSignature reports parameters and results declared with a no-copy
// value type: every call through such a signature copies.
func (c *checker) checkSignature(ft *ast.FuncType) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := c.pass.TypesInfo.TypeOf(field.Type)
			if t == nil || !c.isNoCopy(t) {
				continue
			}
			c.pass.Reportf(field.Type.Pos(), "%s declared with no-copy type %s by value; use a pointer", kind, typeString(t))
		}
	}
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// isBlank reports whether expr is the blank identifier.
func isBlank(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "_"
}

// readsExisting reports whether expr denotes an existing value (whose copy
// would alias live state) rather than a freshly constructed one.
func readsExisting(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return readsExisting(e.X)
	default:
		return false
	}
}

// isConversion reports whether call is a type conversion, not a function
// call (conversions of no-copy types are still copies, but the operand
// check on the conversion result's uses covers them without double
// reporting).
func isConversion(pass *framework.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

// isBuiltinCall reports whether call invokes a builtin (len, cap,
// unsafe.Sizeof, ...), none of which copy their operand at run time.
func isBuiltinCall(pass *framework.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		_, ok := pass.TypesInfo.Uses[fun].(*types.Builtin)
		return ok
	case *ast.SelectorExpr:
		_, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Builtin)
		return ok
	}
	return false
}

// isNoCopy reports whether t is, or transitively contains, a type marked
// //cilkvet:nocopy.
func (c *checker) isNoCopy(t types.Type) bool {
	if v, ok := c.cache[t]; ok {
		return v
	}
	c.cache[t] = false // cut recursive types
	v := c.computeNoCopy(t)
	c.cache[t] = v
	return v
}

func (c *checker) computeNoCopy(t types.Type) bool {
	switch t := t.(type) {
	case *types.Alias:
		return c.isNoCopy(types.Unalias(t))
	case *types.Named:
		o := t.Origin().Obj()
		if o.Pkg() != nil {
			if c.pass.Module.NoCopy[framework.ObjKey{Pkg: o.Pkg().Path(), Name: o.Name()}] {
				return true
			}
		}
		return c.isNoCopy(t.Underlying())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if c.isNoCopy(t.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return c.isNoCopy(t.Elem())
	}
	return false
}

// typeString renders t compactly for diagnostics.
func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
