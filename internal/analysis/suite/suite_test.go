package suite_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
)

// moduleRoot walks up from the working directory to the go.mod directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// TestSuiteCleanOnModule runs every cilkvet analyzer over the real module
// and requires zero findings: the tree must stay lint-clean, with every
// exception carried by an explicit, justified //cilkvet:allow comment.
// This is the same check `make lint` runs in CI.
func TestSuiteCleanOnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module and stdlib closure from source")
	}
	findings, err := load.Run(moduleRoot(t), []string{"./..."}, suite.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
}
