// Package suite registers the cilkvet analyzers.
//
// The list is the single source of truth shared by the standalone driver,
// the go vet -vettool mode and the module smoke test, so a new analyzer
// added here is automatically wired into all three.
package suite

import (
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/deprecatedapi"
	"repro/internal/analysis/epochbump"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/nocopy"
	"repro/internal/analysis/unsafeword"
)

// Analyzers returns the full cilkvet suite in stable order.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		atomicfield.Analyzer,
		deprecatedapi.Analyzer,
		epochbump.Analyzer,
		nocopy.Analyzer,
		unsafeword.Analyzer,
	}
}
