package deprecatedapi_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/deprecatedapi"
)

func TestDeprecatedAPI(t *testing.T) {
	analysistest.Run(t, "testdata/src", deprecatedapi.Analyzer, "a")
}
