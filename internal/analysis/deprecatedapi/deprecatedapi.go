// Package deprecatedapi reports uses of declarations whose doc comment
// carries a "Deprecated:" paragraph, staticcheck-SA1019 style.
//
// It replaces the old `make lint-deprecated` grep, which pattern-matched a
// hard-coded list of cilkm shim names and had to be edited every time a
// shim was added.  This analyzer instead reads the convention the shims
// already follow: any exported declaration — function, method, type, var
// or const, in any package of the module — whose doc comment contains a
// standard "Deprecated:" paragraph is off-limits outside its own package.
//
// Matching the grep's semantics, uses inside _test.go files are ignored by
// default (the shim tests must keep calling the shims); -includetests
// turns them back on.  Uses inside other deprecated declarations are
// always ignored so a deprecated shim may be implemented in terms of
// another without tripping the checker.
package deprecatedapi

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the deprecatedapi analyzer.
var Analyzer = &framework.Analyzer{
	Name: "deprecatedapi",
	Doc:  "report uses of declarations with a Deprecated: doc paragraph",
	Run:  run,
}

var includeTests bool

func init() {
	Analyzer.Flags.BoolVar(&includeTests, "includetests", false, "also report deprecated uses inside _test.go files")
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if !includeTests && strings.HasSuffix(filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			if declIsDeprecated(pass, decl) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil || obj.Pkg() == nil || obj.Pkg() == pass.Pkg {
					// Same-package uses are allowed: the deprecated shim
					// still has to implement itself.
					return true
				}
				key := objKey(obj)
				if key == nil {
					return true
				}
				msg, ok := pass.Module.Deprecated[*key]
				if !ok {
					return true
				}
				pass.Reportf(id.Pos(), "%s.%s is deprecated: %s", obj.Pkg().Name(), key.Name, msg)
				return true
			})
		}
	}
	return nil
}

// declIsDeprecated reports whether the declaration itself carries a
// Deprecated: paragraph, in which case its body may use other deprecated
// API freely.
func declIsDeprecated(pass *framework.Pass, decl ast.Decl) bool {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		obj, ok := pass.TypesInfo.Defs[d.Name].(*types.Func)
		if !ok {
			return false
		}
		key := objKey(obj)
		if key == nil {
			return false
		}
		_, dep := pass.Module.Deprecated[*key]
		return dep
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			var names []*ast.Ident
			switch s := spec.(type) {
			case *ast.TypeSpec:
				names = []*ast.Ident{s.Name}
			case *ast.ValueSpec:
				names = s.Names
			}
			for _, name := range names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if key := objKey(obj); key != nil {
					if _, dep := pass.Module.Deprecated[*key]; dep {
						return true
					}
				}
			}
		}
	}
	return false
}

// objKey maps a types.Object to its module-index key: "Name" for
// package-level declarations, "Recv.Name" for methods.
func objKey(obj types.Object) *framework.ObjKey {
	if obj.Pkg() == nil {
		return nil
	}
	name := obj.Name()
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Signature().Recv(); recv != nil {
			t := recv.Type()
			if p, ok := types.Unalias(t).(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := types.Unalias(t).(*types.Named)
			if !ok {
				return nil
			}
			name = named.Obj().Name() + "." + name
		}
	}
	return &framework.ObjKey{Pkg: obj.Pkg().Path(), Name: name}
}
