// Package old is the fixture's shim package: part of its API carries
// Deprecated: paragraphs.
package old

// NewSession opens a session.
//
// Deprecated: use NewEngine instead.
func NewSession() int { return 1 }

// NewEngine is the current constructor.
func NewEngine() int { return 2 }

// Options configures an engine.
type Options struct{ N int }

// LegacyOptions mirrors Options.
//
// Deprecated: use Options.
type LegacyOptions = Options

// Session is current, but one of its methods is not.
type Session struct{}

// Close tears a session down.
//
// Deprecated: sessions close themselves.
func (s *Session) Close() {}

// DefaultBudget is a tunable that moved.
//
// Deprecated: set Options.N.
var DefaultBudget = 8

// NewCustom builds on NewSession; a deprecated declaration may keep using
// other deprecated API.
//
// Deprecated: use NewEngine.
func NewCustom() int { return NewSession() }
