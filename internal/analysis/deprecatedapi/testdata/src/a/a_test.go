package a

import "old"

// Test files keep exercising deprecated shims; the analyzer skips them
// unless -includetests is set.
func testOnly() int { return old.NewSession() }
