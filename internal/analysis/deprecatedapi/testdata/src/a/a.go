package a

import "old"

func use() int {
	var s old.Session
	s.Close()               // want `old\.Session\.Close is deprecated: sessions close themselves\.`
	var o old.LegacyOptions // want `old\.LegacyOptions is deprecated: use Options\.`
	o.N = old.DefaultBudget // want `old\.DefaultBudget is deprecated: set Options\.N\.`
	o.N += old.NewEngine()  // current API: not flagged
	return old.NewSession() // want `old\.NewSession is deprecated: use NewEngine instead\.`
}

// wrapper adapts the old entry point during the migration.
//
// Deprecated: call old.NewEngine directly.
func wrapper() int { return old.NewSession() } // deprecated decl may use deprecated API
