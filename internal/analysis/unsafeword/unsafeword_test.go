package unsafeword_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/unsafeword"
)

func TestUnsafeWord(t *testing.T) {
	analysistest.Run(t, "testdata/src", unsafeword.Analyzer, "a")
}

// TestAllowlist checks that -allow patterns exempt both plain functions and
// Type.* method patterns.
func TestAllowlist(t *testing.T) {
	flags := &unsafeword.Analyzer.Flags
	if err := flags.Set("allow", unsafeword.DefaultAllow+",b.blessed,b.ring.*"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := flags.Set("allow", unsafeword.DefaultAllow); err != nil {
			t.Fatal(err)
		}
	}()
	analysistest.Run(t, "testdata/src", unsafeword.Analyzer, "b")
}
