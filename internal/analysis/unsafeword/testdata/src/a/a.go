package a

import "unsafe"

type slot struct {
	word unsafe.Pointer
	n    int64
}

func toUnsafe(p *int) unsafe.Pointer {
	return unsafe.Pointer(p) // want `conversion to unsafe\.Pointer outside the blessed view-word helpers`
}

func fromUnsafe(w unsafe.Pointer) *int {
	return (*int)(w) // want `conversion from unsafe\.Pointer to \*int outside the blessed view-word helpers`
}

func escape(w unsafe.Pointer) uintptr {
	return uintptr(w) // want `unsafe\.Pointer escaping to uintptr outside the blessed view-word helpers`
}

func add(w unsafe.Pointer) unsafe.Pointer {
	return unsafe.Add(w, 8) // want `unsafe\.Add call outside the blessed view-word helpers`
}

func slice(w unsafe.Pointer) []byte {
	return unsafe.Slice((*byte)(w), 8) // want `unsafe\.Slice call outside` `conversion from unsafe\.Pointer to \*byte outside`
}

func integral(x uintptr) uintptr { return x + 8 } // integer arithmetic: not flagged

func sizes(s *slot) uintptr { return unsafe.Sizeof(*s) } // Sizeof does not convert: not flagged

func store(s *slot, w unsafe.Pointer) { s.word = w } // moving a word without converting: not flagged

func suppressed(p *int) unsafe.Pointer {
	return unsafe.Pointer(p) //cilkvet:allow unsafeword -- fixture: audited one-off conversion
}
