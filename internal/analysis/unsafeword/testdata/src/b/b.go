package b

import "unsafe"

type ring struct{}

// blessed is added to the allowlist by the unit test.
func blessed(p *int) unsafe.Pointer { return unsafe.Pointer(p) }

// Enter is allowlisted as the method pattern b.ring.* by the unit test.
func (r *ring) Enter(p *int) unsafe.Pointer { return unsafe.Pointer(p) }

func other(p *int) unsafe.Pointer {
	return unsafe.Pointer(p) // want `conversion to unsafe\.Pointer outside the blessed view-word helpers`
}
