// Package unsafeword confines unsafe.Pointer conversions to the blessed
// view-word helpers.
//
// The paper's 16-byte SPA slot packs a view as a single machine word plus
// a flag-tagged owner stamp.  The GC-safety argument for that layout (see
// internal/core/word.go) holds only while every conversion between typed
// pointers, unsafe.Pointer and uintptr goes through a small set of audited
// helpers: BoxView/UnboxView and the eface pack/unpack behind them, the
// spa tag/untag helpers, the arena allocator, and the typed handles'
// word-to-*V resolution.  A conversion anywhere else is either a new
// unaudited entry point into the unsafe representation or an accidental
// pointer/integer round-trip the collector cannot see.
//
// The analyzer flags, outside an allowlist of fully-qualified functions:
//
//   - conversions to unsafe.Pointer
//   - conversions from unsafe.Pointer to a typed pointer
//   - conversions from unsafe.Pointer to uintptr
//   - calls to unsafe.Add, unsafe.Slice, unsafe.SliceData, unsafe.String
//     and unsafe.StringData
//
// Purely integral uintptr conversions (the tlmm model's page addresses)
// are not pointer conversions and are never flagged.  _test.go files are
// skipped by default (-includetests restores them): tests assert on slot
// layouts and forge view words on purpose.
//
// The allowlist is the -allow flag: comma-separated path.Match patterns
// over "importpath.Func" or "importpath.Type.Method" names, with this
// module's audited helpers as the default.  One-off exceptions belong in a
// //cilkvet:allow unsafeword suppression with a justification instead.
package unsafeword

import (
	"go/ast"
	"go/types"
	"path"
	"strings"

	"repro/internal/analysis/framework"
)

// DefaultAllow is the default allowlist: the audited unsafe helpers of
// this module.  Everything here has a documented GC-safety argument at its
// definition.
var DefaultAllow = strings.Join([]string{
	// The eface pack/unpack pair behind BoxView/UnboxView.
	"repro/internal/core.unpackEface",
	"repro/internal/core.packEface",
	// The owner-stamp word used in SPA slots and hypermap entries, and
	// its one inverse.
	"repro/internal/core.ownerWord",
	"repro/internal/core.reducerOf",
	// The per-worker view arena carves views out of pointer-free chunks.
	"repro/internal/core.viewArena.alloc",
	// The merge locality sort keys on view addresses (integer use only).
	"repro/internal/core.sortOpsByLocality",
	// The spa slot tag helpers: flags live in the stamp's low bits.
	"repro/internal/spa.tagOwner",
	"repro/internal/spa.untagOwner",
	"repro/internal/spa.Slot.*",
	// Typed handles resolve a view word back to *V.
	"repro/internal/reducers.Handle.viewMiss",
	"repro/internal/reducers.Handle.readViewMiss",
	"repro/internal/reducers.arenaMonoidAdapter.InitView",
}, ",")

// Analyzer is the unsafeword analyzer.
var Analyzer = &framework.Analyzer{
	Name: "unsafeword",
	Doc:  "confine unsafe.Pointer conversions to the blessed view-word helpers",
	Run:  run,
}

var (
	allowFlag    string
	includeTests bool
)

func init() {
	Analyzer.Flags.StringVar(&allowFlag, "allow", DefaultAllow, "comma-separated patterns of functions allowed to convert unsafe pointers")
	Analyzer.Flags.BoolVar(&includeTests, "includetests", false, "also check _test.go files, which legitimately probe the unsafe representation")
}

func run(pass *framework.Pass) error {
	patterns := strings.Split(allowFlag, ",")
	allowed := func(fn string) bool {
		for _, p := range patterns {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			if ok, _ := path.Match(p, fn); ok {
				return true
			}
		}
		return false
	}

	for _, f := range pass.Files {
		if !includeTests && strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			// Tests assert on slot layouts and forge view words on
			// purpose; the invariant protects production code paths.
			continue
		}
		var fnStack []string
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			if fd, ok := n.(*ast.FuncDecl); ok {
				fnStack = fnStack[:0]
				fnStack = append(fnStack, declName(pass, fd))
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind := classify(pass, call)
			if kind == "" {
				return true
			}
			fn := ""
			if len(fnStack) > 0 {
				fn = fnStack[len(fnStack)-1]
			}
			if fn != "" && allowed(fn) {
				return true
			}
			pass.Reportf(call.Pos(), "%s outside the blessed view-word helpers; route through BoxView/UnboxView or the spa tag helpers, or add the containing function to the unsafeword allowlist", kind)
			return true
		})
	}
	return nil
}

// declName renders a function declaration as importpath.Func or
// importpath.Type.Method, matching the allowlist syntax.
func declName(pass *framework.Pass, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if r := recvName(fd.Recv.List[0].Type); r != "" {
			name = r + "." + name
		}
	}
	return pass.Pkg.Path() + "." + name
}

// recvName unwraps a receiver type expression to its bare type name.
func recvName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// classify returns a description of the unsafe conversion the call
// performs, or "" when it is not one.
func classify(pass *framework.Pass, call *ast.CallExpr) string {
	// unsafe.Add / unsafe.Slice / ... builtin calls.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "unsafe" {
				switch sel.Sel.Name {
				case "Add", "Slice", "SliceData", "String", "StringData":
					return "unsafe." + sel.Sel.Name + " call"
				}
			}
		}
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return ""
	}
	dst := tv.Type
	src := pass.TypesInfo.TypeOf(call.Args[0])
	if src == nil {
		return ""
	}
	switch {
	case isUnsafePointer(dst) && !isUnsafePointer(src):
		return "conversion to unsafe.Pointer"
	case isUnsafePointer(src) && isTypedPointer(dst):
		return "conversion from unsafe.Pointer to " + typeString(dst)
	case isUnsafePointer(src) && isUintptr(dst):
		return "unsafe.Pointer escaping to uintptr"
	}
	return ""
}

func isUnsafePointer(t types.Type) bool {
	b, ok := types.Unalias(t).(*types.Basic)
	return ok && b.Kind() == types.UnsafePointer
}

func isTypedPointer(t types.Type) bool {
	_, ok := types.Unalias(t).Underlying().(*types.Pointer)
	return ok
}

func isUintptr(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uintptr
}

func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
