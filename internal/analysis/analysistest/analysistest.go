// Package analysistest runs a framework analyzer over fixture packages
// and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of cilkvet's own
// loader.
//
// Fixtures live in a GOPATH-style tree: testdata/src/<pkgpath>/*.go.
// They may import each other by those paths and may import the standard
// library.  A line that should be diagnosed carries a trailing comment
//
//	x.f = 0 // want `regexp matching the message`
//
// with one quoted regexp per expected diagnostic on that line (double or
// back quotes).  Every diagnostic must be matched by a want on its line
// and every want must match a diagnostic; either direction failing fails
// the test.  Suppression comments are honoured exactly as in the real
// driver, so fixtures can assert both that //cilkvet:allow silences a
// finding and that a malformed suppression is itself reported.
package analysistest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/load"
)

// lineKey identifies one source line of the fixture tree.
type lineKey struct {
	file string
	line int
}

// want is one expectation parsed from a // want comment.
type want struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture packages under srcdir and applies a, comparing
// diagnostics to // want comments.
func Run(t *testing.T, srcdir string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	res, err := load.LoadFixture(srcdir, pkgs)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}

	wants := make(map[lineKey][]*want)
	for _, pkg := range res.Roots {
		for _, f := range pkg.Files {
			collectWants(t, res.Fset, f, wants)
		}
	}

	type diag struct {
		pos     token.Position
		message string
	}
	var diags []diag
	for _, pkg := range res.Roots {
		sup := framework.CollectSuppressions(pkg.Fset, pkg.Files)
		for _, d := range sup.Malformed {
			diags = append(diags, diag{pkg.Fset.Position(d.Pos), d.Message})
		}
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Module:    res.Index,
			Report: func(d framework.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if sup.Allows(a.Name, pos) {
					return
				}
				diags = append(diags, diag{pos, d.Message})
			},
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}

	for _, d := range diags {
		key := lineKey{d.pos.Filename, d.pos.Line}
		if !matchWant(wants[key], d.message) {
			t.Errorf("%s: unexpected diagnostic: %s", d.pos, d.message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re)
			}
		}
	}
}

// matchWant marks and reports the first unmatched want whose regexp
// matches the message.
func matchWant(ws []*want, message string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every // want comment in f into the wants map.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, wants map[lineKey][]*want) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue
			}
			text, ok = strings.CutPrefix(strings.TrimSpace(text), "want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			key := lineKey{pos.Filename, pos.Line}
			for _, pat := range parseWantPatterns(t, pos, text) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
				}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
}

// parseWantPatterns splits the text after "want" into its quoted regexps.
func parseWantPatterns(t *testing.T, pos token.Position, text string) []string {
	t.Helper()
	var pats []string
	for {
		text = strings.TrimSpace(text)
		if text == "" {
			return pats
		}
		quote := text[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: want expectation must be a quoted regexp, got %q", pos, text)
		}
		end := strings.IndexByte(text[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want regexp: %s", pos, text)
		}
		raw := text[:end+2]
		pat, err := strconv.Unquote(raw)
		if err != nil {
			t.Fatalf("%s: bad want literal %s: %v", pos, raw, err)
		}
		pats = append(pats, pat)
		text = text[end+2:]
	}
}
