package framework

import (
	"go/ast"
	"strings"
)

// ObjKey names a package-level object (or a method, as "Recv.Name") in a
// specific package.  It is the key cross-package doc-comment information is
// indexed under; types.Objects are mapped to it with KeyOf.
type ObjKey struct {
	// Pkg is the object's package import path.
	Pkg string
	// Name is the object's name; methods and struct fields use the
	// "Type.Name" form with any pointer receiver stripped.
	Name string
}

// ModuleIndex aggregates the doc-comment information analyzers need across
// package boundaries: deprecation notices (for deprecatedapi) and
// `//cilkvet:nocopy` type directives (for nocopy).  The drivers build one
// index over every package they load and share it between passes.
type ModuleIndex struct {
	// Deprecated maps objects whose doc comment contains a "Deprecated:"
	// paragraph to the first line of that paragraph.
	Deprecated map[ObjKey]string

	// NoCopy records types whose declarations carry a //cilkvet:nocopy
	// directive.
	NoCopy map[ObjKey]bool
}

// NewModuleIndex returns an empty index.
func NewModuleIndex() *ModuleIndex {
	return &ModuleIndex{
		Deprecated: make(map[ObjKey]string),
		NoCopy:     make(map[ObjKey]bool),
	}
}

// IndexFiles scans one package's parsed files (comments required) and
// records their deprecations and directives under import path pkgPath.
func (idx *ModuleIndex) IndexFiles(pkgPath string, files []*ast.File) {
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				name := d.Name.Name
				if d.Recv != nil && len(d.Recv.List) == 1 {
					if r := recvTypeName(d.Recv.List[0].Type); r != "" {
						name = r + "." + name
					}
				}
				if msg, ok := deprecationMessage(d.Doc); ok {
					idx.Deprecated[ObjKey{pkgPath, name}] = msg
				}
			case *ast.GenDecl:
				idx.indexGenDecl(pkgPath, d)
			}
		}
	}
}

func (idx *ModuleIndex) indexGenDecl(pkgPath string, d *ast.GenDecl) {
	declMsg, declDep := deprecationMessage(d.Doc)
	declNoCopy := hasDirective(d.Doc, "nocopy")
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			msg, dep := deprecationMessage(s.Doc)
			if !dep {
				msg, dep = declMsg, declDep
			}
			if dep {
				idx.Deprecated[ObjKey{pkgPath, s.Name.Name}] = msg
			}
			if declNoCopy || hasDirective(s.Doc, "nocopy") || hasDirective(s.Comment, "nocopy") {
				idx.NoCopy[ObjKey{pkgPath, s.Name.Name}] = true
			}
		case *ast.ValueSpec:
			msg, dep := deprecationMessage(s.Doc)
			if !dep {
				msg, dep = declMsg, declDep
			}
			if dep {
				for _, n := range s.Names {
					idx.Deprecated[ObjKey{pkgPath, n.Name}] = msg
				}
			}
		}
	}
}

// recvTypeName extracts the bare receiver type name from a receiver type
// expression, unwrapping pointers and type-parameter instantiations.
func recvTypeName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// deprecationMessage extracts the first line of a "Deprecated:" paragraph
// from a doc comment, following the convention pkg.go.dev renders.
func deprecationMessage(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "Deprecated:"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// hasDirective reports whether the comment group contains the cilkvet
// directive `//cilkvet:<name>`.  Directives are machine-readable comments:
// no space after //, exact name match up to whitespace.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//cilkvet:" + name
	for _, c := range doc.List {
		text := c.Text
		if text == want || strings.HasPrefix(text, want+" ") || strings.HasPrefix(text, want+"\t") {
			return true
		}
	}
	return false
}
