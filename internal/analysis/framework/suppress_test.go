package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const suppressSrc = `package p

func a() {
	_ = 1 //cilkvet:allow atomicfield -- init happens before publication
}

func b() {
	//cilkvet:allow nocopy,unsafeword -- quiesced snapshot
	_ = 2
}

func c() {
	_ = 3 //cilkvet:allow * — wildcard with an em dash
}

func d() {
	_ = 4 //cilkvet:allow atomicfield
}
`

func TestSuppressions(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	s := CollectSuppressions(fset, []*ast.File{f})

	at := func(line int) token.Position {
		return token.Position{Filename: "p.go", Line: line}
	}
	if !s.Allows("atomicfield", at(4)) {
		t.Error("same-line suppression not honoured")
	}
	if s.Allows("nocopy", at(4)) {
		t.Error("suppression leaked to an analyzer it does not name")
	}
	if !s.Allows("nocopy", at(9)) || !s.Allows("unsafeword", at(9)) {
		t.Error("line-above suppression with a name list not honoured")
	}
	if !s.Allows("epochbump", at(13)) {
		t.Error("wildcard suppression with em-dash separator not honoured")
	}
	if s.Allows("atomicfield", at(17)) {
		t.Error("justification-free suppression must suppress nothing")
	}
	if len(s.Malformed) != 1 {
		t.Fatalf("want exactly one malformed suppression, got %d", len(s.Malformed))
	}
	if got := fset.Position(s.Malformed[0].Pos).Line; got != 17 {
		t.Errorf("malformed suppression reported at line %d, want 17", got)
	}
}
