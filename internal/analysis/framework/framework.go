// Package framework is a self-contained re-implementation of the
// golang.org/x/tools/go/analysis surface that cilkvet's analyzers are
// written against.
//
// The real x/tools module is the obvious foundation for a vet suite, but
// this repository builds in hermetic environments with no module proxy, so
// the framework is reproduced here from the standard library alone: the
// Analyzer/Pass/Diagnostic shapes mirror go/analysis closely enough that
// the analyzers can be ported onto the real framework by changing one
// import, while the drivers (package load for whole-module runs, the
// unitchecker shim in cmd/cilkvet for `go vet -vettool`) replace
// go/packages and x/tools' unitchecker.
//
// Two deliberate deviations from go/analysis:
//
//   - Cross-package information does not travel through serialized Facts.
//     Instead every Pass carries a ModuleIndex — deprecation notices and
//     cilkvet directives harvested from the doc comments of every package
//     the driver saw — which is all the cross-package state these five
//     analyzers need.
//
//   - Suppression is first-class: a diagnostic is dropped when the
//     offending line (or the line above it) carries a
//     `//cilkvet:allow <analyzer> -- <justification>` comment.  A
//     suppression without a justification is itself reported, so the
//     allowlist stays auditable.
package framework

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags and suppression
	// comments.  It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: first line summary, then the
	// invariant it enforces and why.
	Doc string

	// Flags holds analyzer-specific configuration.  The drivers register
	// each flag as -<name>.<flag> on their own flag sets.
	Flags flag.FlagSet

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one package's worth of type-checked syntax to an analyzer,
// mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer

	// Fset maps positions for Files.
	Fset *token.FileSet

	// Files is the package's parsed syntax, comments included.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds the type information for Files.
	TypesInfo *types.Info

	// Module indexes doc-comment information (deprecations, cilkvet
	// directives) across every package the driver loaded.  Never nil, but
	// possibly restricted to the current package under drivers that cannot
	// see the whole module.
	Module *ModuleIndex

	// Report delivers one diagnostic.  Drivers install it; analyzers
	// normally call Reportf instead.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, mirroring go/analysis.Diagnostic.
type Diagnostic struct {
	// Pos is the primary position of the finding.
	Pos token.Pos

	// Message describes the finding in one sentence.
	Message string
}

// A Finding is a positioned, attributed diagnostic as emitted by a driver:
// the analyzer that produced it plus the resolved file position.
type Finding struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string

	// Pos is the resolved source position.
	Pos token.Position

	// Message is the diagnostic text.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}
