package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppressions records, per file line, which analyzers the code has
// explicitly silenced and why.  The syntax is
//
//	//cilkvet:allow name1,name2 -- justification
//
// placed on the offending line or on the line directly above it.  The
// justification after the "--" separator is mandatory: cilkvet's findings
// encode concurrency invariants, so every exception must say why it is
// safe.  A malformed or justification-free suppression is reported as a
// finding in its own right and suppresses nothing.
type Suppressions struct {
	// byLine maps a file line to the set of analyzer names allowed there.
	// The magic name "*" allows every analyzer.
	byLine map[suppressLine]map[string]bool

	// Malformed lists allow-comments missing names or a justification.
	Malformed []Diagnostic
}

type suppressLine struct {
	file string
	line int
}

// CollectSuppressions scans the comments of the given files.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byLine: make(map[suppressLine]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//cilkvet:allow")
				if !ok {
					continue
				}
				names, just := splitAllow(rest)
				if len(names) == 0 || just == "" {
					s.Malformed = append(s.Malformed, Diagnostic{
						Pos:     c.Pos(),
						Message: "malformed suppression: want //cilkvet:allow <analyzers> -- <justification>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				key := suppressLine{file: pos.Filename, line: pos.Line}
				set := s.byLine[key]
				if set == nil {
					set = make(map[string]bool)
					s.byLine[key] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	return s
}

// splitAllow parses the remainder of an allow-comment into analyzer names
// and a justification.  The separator may be "--" or an em dash.
func splitAllow(rest string) (names []string, justification string) {
	rest = strings.TrimSpace(rest)
	var namePart string
	switch {
	case strings.Contains(rest, "--"):
		parts := strings.SplitN(rest, "--", 2)
		namePart, justification = parts[0], strings.TrimSpace(parts[1])
	case strings.Contains(rest, "—"):
		parts := strings.SplitN(rest, "—", 2)
		namePart, justification = parts[0], strings.TrimSpace(parts[1])
	default:
		namePart = rest
	}
	for _, n := range strings.FieldsFunc(namePart, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		names = append(names, n)
	}
	return names, justification
}

// Allows reports whether a diagnostic from the named analyzer at the given
// resolved position is suppressed: an allow-comment for that analyzer (or
// "*") sits on the same line or the line above.
func (s *Suppressions) Allows(analyzer string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if set, ok := s.byLine[suppressLine{file: pos.Filename, line: line}]; ok {
			if set[analyzer] || set["*"] {
				return true
			}
		}
	}
	return false
}
