package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const indexSrc = `package p

// Old does things.
//
// Deprecated: use New instead.
// Second line is not part of the message.
func Old() {}

// New does things.
func New() {}

// T is a type with a deprecated method.
type T struct{}

// M is going away.
//
// Deprecated: call T.N.
func (t *T) M() {}

// Page must not move.
//
//cilkvet:nocopy
type Page struct{}

// Free is unconstrained.
type Free struct{}

// B is deprecated at the decl group level.
//
// Deprecated: gone.
var (
	B = 1
)
`

func TestModuleIndex(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", indexSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := NewModuleIndex()
	idx.IndexFiles("example/p", []*ast.File{f})

	if got := idx.Deprecated[ObjKey{"example/p", "Old"}]; got != "use New instead." {
		t.Errorf("Old deprecation = %q, want first line only", got)
	}
	if _, ok := idx.Deprecated[ObjKey{"example/p", "New"}]; ok {
		t.Error("New wrongly indexed as deprecated")
	}
	if got := idx.Deprecated[ObjKey{"example/p", "T.M"}]; got != "call T.N." {
		t.Errorf("T.M deprecation = %q", got)
	}
	if got := idx.Deprecated[ObjKey{"example/p", "B"}]; got != "gone." {
		t.Errorf("B deprecation = %q", got)
	}
	if !idx.NoCopy[ObjKey{"example/p", "Page"}] {
		t.Error("Page //cilkvet:nocopy directive not indexed")
	}
	if idx.NoCopy[ObjKey{"example/p", "Free"}] {
		t.Error("Free wrongly indexed as nocopy")
	}
}
