package bench

import (
	"strings"
	"testing"

	"repro/internal/reducers"
)

// quickCfg returns a configuration sized so the whole experiment suite runs
// in seconds.
func quickCfg() Config {
	c := QuickConfig()
	c.Lookups = 200_000
	return c
}

func TestConfigNormalize(t *testing.T) {
	var c Config
	n := c.normalize()
	d := DefaultConfig()
	if n.MaxWorkers != d.MaxWorkers || n.Lookups != d.Lookups || n.Repetitions != d.Repetitions ||
		n.GraphScale != d.GraphScale || n.Seed != d.Seed {
		t.Fatalf("normalize of zero config = %+v, want defaults %+v", n, d)
	}
	c = Config{MaxWorkers: 2, Lookups: 10, Repetitions: 1, GraphScale: 0.5, Seed: 9}
	if c.normalize() != c {
		t.Fatal("normalize should not modify a fully specified config")
	}
}

func TestWorkloadNames(t *testing.T) {
	if WorkloadName(WorkloadAdd, 64) != "add-64" {
		t.Fatalf("WorkloadName = %q", WorkloadName(WorkloadAdd, 64))
	}
	if WorkloadMin.String() != "min" || WorkloadMax.String() != "max" || WorkloadAddBase.String() != "add-base" {
		t.Fatal("workload names wrong")
	}
	if !strings.Contains(Workload(9).String(), "9") {
		t.Fatal("unknown workload string")
	}
}

func TestClampWorkers(t *testing.T) {
	if clampWorkers(0) != 1 || clampWorkers(-3) != 1 {
		t.Fatal("clampWorkers should floor at 1")
	}
	if clampWorkers(8) != 8 {
		t.Fatal("clampWorkers should not change reasonable counts")
	}
	if clampWorkers(100000) > 1024 {
		t.Fatal("clampWorkers should bound absurd counts")
	}
}

func TestRunWorkloadUnknown(t *testing.T) {
	s := session(reducers.MemoryMapped, 1, false)
	defer s.Close()
	if _, err := runWorkload(s, Workload(99), 4, 100, 1); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

func TestWorkloadsProduceCorrectResults(t *testing.T) {
	for _, mech := range reducers.Mechanisms() {
		s := session(mech, 2, false)
		for _, w := range []Workload{WorkloadAdd, WorkloadMin, WorkloadMax, WorkloadAddBase} {
			if w == WorkloadAddBase {
				// add-base must run on one worker; use a dedicated session.
				s1 := session(mech, 1, false)
				if _, err := runWorkload(s1, w, 8, 5000, 3); err != nil {
					t.Fatalf("%v/%v: %v", mech, w, err)
				}
				s1.Close()
				continue
			}
			if _, err := runWorkload(s, w, 8, 5000, 3); err != nil {
				t.Fatalf("%v/%v: %v", mech, w, err)
			}
		}
		s.Close()
	}
}

func TestFig1(t *testing.T) {
	res, err := RunFig1(quickCfg())
	if err != nil {
		t.Fatalf("RunFig1: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("Figure 1 should have 4 bars, got %d", len(res.Rows))
	}
	names := []string{"L1-memory", "memory-mapped", "hypermap", "locking"}
	for i, want := range names {
		if res.Rows[i].Name != want {
			t.Fatalf("row %d = %q, want %q", i, res.Rows[i].Name, want)
		}
		if res.Rows[i].PerOp <= 0 || res.Rows[i].Normalized <= 0 {
			t.Fatalf("row %q has non-positive measurements: %+v", want, res.Rows[i])
		}
	}
	if res.Rows[0].Normalized != 1.0 {
		t.Fatalf("L1 row should be normalised to 1, got %v", res.Rows[0].Normalized)
	}
	// The headline shape — memory-mapped lookups cheaper than hypermap
	// lookups — is asserted loosely here because this quick configuration
	// measures only a few hundred thousand lookups and the two mechanisms
	// are within noise of each other at n = 4 on slow hosts; the recorded
	// benchmarks (BenchmarkFig1LookupOverhead, BenchmarkFig6LookupOverhead)
	// and the cilkbench harness measure the shape at full size.
	if speedup := res.MMFasterThanHypermap(); speedup <= 0.7 {
		t.Fatalf("memory-mapped lookups dramatically slower than hypermap, speedup = %.2f", speedup)
	}
	if res.basePerOpSeconds() <= 0 {
		t.Fatal("base per-op time should be positive")
	}
	out := res.Table().String()
	if !strings.Contains(out, "hypermap") || !strings.Contains(out, "Figure 1") {
		t.Fatalf("table rendering incomplete:\n%s", out)
	}
}

func TestFig5Serial(t *testing.T) {
	cfg := quickCfg()
	res, err := RunFig5(cfg, false)
	if err != nil {
		t.Fatalf("RunFig5: %v", err)
	}
	if res.Workers != 1 {
		t.Fatalf("serial study should use one worker, got %d", res.Workers)
	}
	if len(res.Rows) != 3*len(ReducerCounts) {
		t.Fatalf("expected %d clusters, got %d", 3*len(ReducerCounts), len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, mech := range reducers.Mechanisms() {
			if row.Time[mech] <= 0 {
				t.Fatalf("%s has non-positive time for %v", WorkloadName(row.Workload, row.N), mech)
			}
		}
	}
	// The headline shape: the memory-mapped mechanism is not slower than
	// the hypermap mechanism on average across the sweep.  The threshold
	// admits timing noise at this reduced workload size; the full-size
	// sweep is recorded by cilkbench and the Figure 5 benchmarks.
	if ratio := res.MeanRatio(); ratio <= 0.85 {
		t.Fatalf("expected hypermap/mm ratio near or above 1, got %.2f", ratio)
	}
	out := res.Table().String()
	if !strings.Contains(out, "add-1024") || !strings.Contains(out, "max-4") {
		t.Fatalf("table missing clusters:\n%s", out)
	}
}

func TestFig5Parallel(t *testing.T) {
	cfg := quickCfg()
	cfg.MaxWorkers = 2
	res, err := RunFig5(cfg, true)
	if err != nil {
		t.Fatalf("RunFig5: %v", err)
	}
	if res.Workers != 2 {
		t.Fatalf("parallel study should use 2 workers, got %d", res.Workers)
	}
	if !strings.Contains(res.Table().String(), "Figure 5(b)") {
		t.Fatal("parallel table should be labelled 5(b)")
	}
}

func TestFig6(t *testing.T) {
	res, err := RunFig6(quickCfg())
	if err != nil {
		t.Fatalf("RunFig6: %v", err)
	}
	if len(res.Rows) != len(FineReducerCounts) {
		t.Fatalf("expected %d rows, got %d", len(FineReducerCounts), len(res.Rows))
	}
	mmWorse := 0
	for _, row := range res.Rows {
		if row.Overhead[reducers.Hypermap] < row.Overhead[reducers.MemoryMapped] {
			mmWorse++
		}
	}
	// The memory-mapped lookup overhead should be the smaller one in the
	// majority of clusters (allowing for noise at this reduced size).
	if mmWorse > 2*len(res.Rows)/3 {
		t.Fatalf("memory-mapped lookup overhead larger than hypermap in %d of %d clusters", mmWorse, len(res.Rows))
	}
	if !strings.Contains(res.Table().String(), "add-512") {
		t.Fatal("table missing rows")
	}
	_ = res.OverheadSpread(reducers.MemoryMapped)
	_ = res.OverheadSpread(reducers.Hypermap)
}

func TestFig7And8(t *testing.T) {
	cfg := quickCfg()
	cfg.MaxWorkers = 4
	cfg.Lookups = 100_000
	res, err := RunFig7(cfg)
	if err != nil {
		t.Fatalf("RunFig7: %v", err)
	}
	if res.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", res.Workers)
	}
	if len(res.Rows) != len(FineReducerCounts) {
		t.Fatalf("expected %d rows, got %d", len(FineReducerCounts), len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, mech := range reducers.Mechanisms() {
			if row.Elapsed[mech] <= 0 {
				t.Fatalf("n=%d %v: non-positive elapsed time", row.N, mech)
			}
		}
	}
	t7 := res.Fig7Table().String()
	t8 := res.Fig8Table().String()
	if !strings.Contains(t7, "Figure 7") || !strings.Contains(t8, "Figure 8") {
		t.Fatal("tables mislabelled")
	}
	if !strings.Contains(t8, "view transferal") {
		t.Fatal("Figure 8 table missing breakdown columns")
	}
	_ = res.OverheadGrowth(reducers.MemoryMapped)
	_ = res.OverheadGrowth(reducers.Hypermap)
}

func TestFig9(t *testing.T) {
	cfg := quickCfg()
	cfg.Lookups = 100_000
	res, err := RunFig9(cfg)
	if err != nil {
		t.Fatalf("RunFig9: %v", err)
	}
	if len(res.Rows) != len(ReducerCounts)*len(SpeedupWorkerCounts) {
		t.Fatalf("expected %d rows, got %d", len(ReducerCounts)*len(SpeedupWorkerCounts), len(res.Rows))
	}
	for _, n := range ReducerCounts {
		if got := res.SpeedupAt(n, 1); got < 0.99 || got > 1.01 {
			t.Fatalf("speedup at P=1 should be 1.0, got %v for n=%d", got, n)
		}
		if res.SerialTime[n] <= 0 {
			t.Fatalf("missing serial time for n=%d", n)
		}
	}
	if res.SpeedupAt(4, 999) != 0 {
		t.Fatal("SpeedupAt for a missing point should return 0")
	}
	if !strings.Contains(res.Table().String(), "Figure 9") {
		t.Fatal("table mislabelled")
	}
}

func TestFig10(t *testing.T) {
	cfg := quickCfg()
	cfg.MaxWorkers = 2
	cfg.Repetitions = 1
	res, err := RunFig10(cfg, []string{"rmat23", "grid3d200"})
	if err != nil {
		t.Fatalf("RunFig10: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Stats.Vertices == 0 || row.Stats.Edges == 0 {
			t.Fatalf("%s: empty stand-in graph", row.Spec.Name)
		}
		if row.SerialRatio() <= 0 || row.ParallelRatio() <= 0 {
			t.Fatalf("%s: non-positive ratios", row.Spec.Name)
		}
		if row.Lookups <= 0 {
			t.Fatalf("%s: no reducer lookups recorded", row.Spec.Name)
		}
	}
	a := res.Fig10aTable().String()
	b := res.Fig10bTable().String()
	if !strings.Contains(a, "rmat23") || !strings.Contains(b, "grid3d200") {
		t.Fatal("tables missing graphs")
	}
	if _, err := RunFig10(cfg, []string{"not-a-graph"}); err == nil {
		t.Fatal("unknown input name should fail")
	}
}
