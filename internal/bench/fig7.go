package bench

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/reducers"
)

// Fig7Row is one cluster of Figures 7 and 8: the reduce overhead of add-n
// during a parallel execution, measured by instrumenting the runtime, for
// each mechanism, along with its breakdown into the four categories the
// paper reports.
type Fig7Row struct {
	N int
	// Breakdown maps mechanism → instrumented overhead breakdown.
	Breakdown map[reducers.Mechanism]metrics.Breakdown
	// Steals maps mechanism → number of successful steals during the
	// measured run (the paper verifies these are comparable across
	// systems, since reduce overhead is proportional to steals).
	Steals map[reducers.Mechanism]int64
	// Elapsed maps mechanism → wall-clock time of the measured run.
	Elapsed map[reducers.Mechanism]time.Duration
}

// Total returns the total reduce overhead for one mechanism.
func (r Fig7Row) Total(m reducers.Mechanism) time.Duration {
	return r.Breakdown[m].Total()
}

// Fig7Result holds the reduce-overhead study (Figure 7) and its breakdown
// (Figure 8).
type Fig7Result struct {
	Workers int
	Lookups int
	Rows    []Fig7Row
}

// RunFig7 reproduces Figures 7 and 8: the reduce overhead — time spent
// creating views, inserting views, transferring views and hypermerging —
// incurred by add-n during parallel execution, for both mechanisms.  The
// paper runs this study with twice the usual number of lookups to prolong
// execution; the harness follows suit.
func RunFig7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.normalize()
	workers := clampWorkers(cfg.MaxWorkers)
	lookups := cfg.Lookups * 2
	res := &Fig7Result{Workers: workers, Lookups: lookups}
	for _, n := range FineReducerCounts {
		row := Fig7Row{
			N:         n,
			Breakdown: make(map[reducers.Mechanism]metrics.Breakdown),
			Steals:    make(map[reducers.Mechanism]int64),
			Elapsed:   make(map[reducers.Mechanism]time.Duration),
		}
		for _, mech := range reducers.Mechanisms() {
			s := session(mech, workers, true)
			var agg metrics.Breakdown
			var steals int64
			sample, err := measure(cfg.Repetitions, func() (time.Duration, error) {
				s.Engine().ResetOverheads()
				s.Runtime().ResetStats()
				d, err := runAddN(s, n, lookups)
				if err != nil {
					return 0, err
				}
				agg.Add(s.Engine().Overheads())
				steals += s.Runtime().Stats().Steals
				return d, nil
			})
			s.Close()
			if err != nil {
				return nil, err
			}
			// Average the accumulated overhead over the repetitions.
			reps := int64(cfg.Repetitions)
			if reps < 1 {
				reps = 1
			}
			for i := range agg.Nanos {
				agg.Nanos[i] /= reps
				agg.Counts[i] /= reps
			}
			row.Breakdown[mech] = agg
			row.Steals[mech] = steals / reps
			row.Elapsed[mech] = time.Duration(sample.Mean() * float64(time.Second))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig7Table renders the reduce-overhead comparison (Figure 7).
func (r *Fig7Result) Fig7Table() *metrics.Table {
	t := metrics.NewTable(
		"Figure 7: reduce overhead of add-n during parallel execution",
		"benchmark", "Cilk-M (mm)", "Cilk Plus (hypermap)", "hypermap / mm", "steals (mm)", "steals (hm)")
	for _, row := range r.Rows {
		mm := row.Total(reducers.MemoryMapped)
		hm := row.Total(reducers.Hypermap)
		ratio := 0.0
		if mm > 0 {
			ratio = float64(hm) / float64(mm)
		}
		t.AddRow(
			WorkloadName(WorkloadAdd, row.N),
			mm, hm, ratio,
			row.Steals[reducers.MemoryMapped],
			row.Steals[reducers.Hypermap],
		)
	}
	return t
}

// Fig8Table renders the breakdown of the memory-mapped mechanism's reduce
// overhead (Figure 8).
func (r *Fig7Result) Fig8Table() *metrics.Table {
	t := metrics.NewTable(
		"Figure 8: breakdown of the Cilk-M reduce overhead for add-n",
		"benchmark", "view creation", "view insertion", "hypermerge", "view transferal", "total")
	for _, row := range r.Rows {
		b := row.Breakdown[reducers.MemoryMapped]
		t.AddRow(
			WorkloadName(WorkloadAdd, row.N),
			b.Duration(metrics.ViewCreation),
			b.Duration(metrics.ViewInsertion),
			b.Duration(metrics.Hypermerge),
			b.Duration(metrics.ViewTransferal),
			b.Total(),
		)
	}
	return t
}

// OverheadGrowth returns the ratio of the reduce overhead at the largest n
// to the overhead at the smallest n for the given mechanism; the paper
// observes that the hypermap overhead grows much faster with n than the
// memory-mapped overhead.
func (r *Fig7Result) OverheadGrowth(m reducers.Mechanism) float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	first := r.Rows[0].Total(m).Seconds()
	last := r.Rows[len(r.Rows)-1].Total(m).Seconds()
	if first <= 0 {
		return 0
	}
	return last / first
}
