package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/reducers"
	"repro/internal/sched"
)

// ManyReducersRow is one measurement of the sharded-directory study: a
// dynamic per-key histogram with `Live` keys, each backed by its own add
// reducer registered on the fly from inside the parallel region.
type ManyReducersRow struct {
	Mechanism string
	Live      int
	// RegNs and RegPerSec describe the concurrent-registration phase: all
	// Live reducers are registered from inside one ParallelFor.
	RegNs     float64
	RegPerSec float64
	// LookupNs is the per-update cost of the histogram phase: random keys
	// into the Live-wide reducer table, so it measures the lookup fast
	// path at population Live.
	LookupNs float64
	// Shards and FreeRetries come from the directory stats: retries count
	// CAS contention on the shard free stacks.
	Shards      int
	FreeRetries int64
}

// ManyReducersResult holds the many-reducers study.
type ManyReducersResult struct {
	Workers int
	Lookups int
	Rows    []ManyReducersRow
}

// manyReducersLives returns the live-reducer populations to sweep: the
// paper-scale sweep (1e3 / 1e5 / 1e6) for real runs, a shrunk one for
// explicitly quick configurations so smoke tests stay fast.
func manyReducersLives(cfg Config) []int {
	if cfg.Quick {
		return []int{1_000, 10_000}
	}
	return []int{1_000, 100_000, 1_000_000}
}

// RunManyReducers exercises dynamic reducer creation at scale on both
// mechanisms: for each live-reducer population it measures (1) the
// throughput of registering every reducer concurrently from inside a
// parallel region — the path the sharded directory made lock-free — and
// (2) the per-update cost of a random-key histogram over that population,
// which holds the paper's O(1) lookup claim to populations up to 1e6.
func RunManyReducers(cfg Config) (*ManyReducersResult, error) {
	cfg = cfg.normalize()
	workers := clampWorkers(cfg.MaxWorkers)
	res := &ManyReducersResult{Workers: workers, Lookups: cfg.Lookups}
	for _, m := range reducers.Mechanisms() {
		for _, live := range manyReducersLives(cfg) {
			row, err := runManyReducersRow(m, workers, live, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: manyreducers %s/%d: %w", m, live, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func runManyReducersRow(m reducers.Mechanism, workers, live int, cfg Config) (ManyReducersRow, error) {
	row := ManyReducersRow{Mechanism: m.String(), Live: live}
	eng := reducers.NewEngine(m, workers, reducers.EngineOptions{})
	s := core.NewSessionWithConfig(sched.Config{Workers: workers}, eng)
	defer s.Close()

	// Phase 1 — concurrent registration: every key's reducer is created
	// from inside the parallel region, the way a server would create one
	// per request key or per graph component.
	sums := make([]*reducers.Add[int64], live)
	nChunks := chunks(live)
	start := time.Now()
	err := s.Run(func(c *sched.Context) {
		c.ParallelFor(0, nChunks, func(c *sched.Context, chunk int) {
			lo := chunk * chunkSize
			hi := min(lo+chunkSize, live)
			for i := lo; i < hi; i++ {
				sums[i] = reducers.NewAdd[int64](eng)
			}
		})
	})
	regElapsed := time.Since(start)
	if err != nil {
		return row, err
	}
	if got := eng.Registered(); got != live {
		return row, fmt.Errorf("registered %d reducers, want %d", got, live)
	}
	row.RegNs = float64(regElapsed.Nanoseconds()) / float64(live)
	row.RegPerSec = float64(live) / regElapsed.Seconds()

	// Phase 2 — the histogram: x random-key updates across the live
	// population.  Keys come from the xorshift stream, so lookups spray
	// across the whole directory-backed address range.
	x := cfg.Lookups
	base := uint64(cfg.Seed)*2654435761 + 1
	nChunks = chunks(x)
	start = time.Now()
	err = s.Run(func(c *sched.Context) {
		c.ParallelFor(0, nChunks, func(c *sched.Context, chunk int) {
			lo := chunk * chunkSize
			hi := min(lo+chunkSize, x)
			state := xorshift(base + uint64(chunk))
			for i := lo; i < hi; i++ {
				state = xorshift(state)
				sums[state%uint64(live)].Add(c, 1)
			}
		})
	})
	lookupElapsed := time.Since(start)
	if err != nil {
		return row, err
	}
	row.LookupNs = float64(lookupElapsed.Nanoseconds()) / float64(x)

	// The histogram total must be exact: every update landed in exactly
	// one reducer and every view was merged.
	var total int64
	for _, sr := range sums {
		total += sr.Value()
	}
	if total != int64(x) {
		return row, fmt.Errorf("histogram total %d, want %d", total, x)
	}
	if ds, ok := eng.(interface {
		DirectoryStats() metrics.DirectoryStats
	}); ok {
		st := ds.DirectoryStats()
		row.Shards = st.Shards
		row.FreeRetries = st.FreeRetries
	}
	return row, nil
}

// Table renders the many-reducers study.
func (r *ManyReducersResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Many reducers: dynamic per-key histogram (%d workers, %d updates)", r.Workers, r.Lookups),
		"mechanism", "live", "reg ns", "regs/sec", "lookup ns", "shards", "free retries")
	for _, row := range r.Rows {
		t.AddRow(row.Mechanism, row.Live, row.RegNs, row.RegPerSec, row.LookupNs,
			row.Shards, row.FreeRetries)
	}
	return t
}
