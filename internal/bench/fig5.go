package bench

import (
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/reducers"
)

// Fig5Row is one cluster of Figure 5: the execution time of one
// microbenchmark instance under both reducer mechanisms.
type Fig5Row struct {
	Workload Workload
	N        int
	Workers  int
	// Time maps mechanism → mean execution time.
	Time map[reducers.Mechanism]time.Duration
	// RelStdDev maps mechanism → relative standard deviation across
	// repetitions (the paper reports <5%).
	RelStdDev map[reducers.Mechanism]float64
}

// Ratio returns hypermap time divided by memory-mapped time (>1 means the
// memory-mapped mechanism is faster, as the paper reports).
func (r Fig5Row) Ratio() float64 {
	mm := r.Time[reducers.MemoryMapped].Seconds()
	hm := r.Time[reducers.Hypermap].Seconds()
	if mm == 0 {
		return 0
	}
	return hm / mm
}

// Fig5Result holds every cluster of Figure 5(a) (serial) or 5(b)
// (parallel).
type Fig5Result struct {
	Workers int
	Lookups int
	Rows    []Fig5Row
}

// RunFig5 reproduces Figure 5: execution times of add-n, min-n and max-n
// for n ∈ {4,16,64,256,1024} under both mechanisms.  With parallel=false it
// produces Figure 5(a) (one worker); with parallel=true it produces Figure
// 5(b) (cfg.MaxWorkers workers).
func RunFig5(cfg Config, parallel bool) (*Fig5Result, error) {
	cfg = cfg.normalize()
	workers := 1
	if parallel {
		workers = clampWorkers(cfg.MaxWorkers)
	}
	res := &Fig5Result{Workers: workers, Lookups: cfg.Lookups}
	for _, w := range []Workload{WorkloadAdd, WorkloadMin, WorkloadMax} {
		for _, n := range ReducerCounts {
			row := Fig5Row{
				Workload:  w,
				N:         n,
				Workers:   workers,
				Time:      make(map[reducers.Mechanism]time.Duration),
				RelStdDev: make(map[reducers.Mechanism]float64),
			}
			for _, mech := range reducers.Mechanisms() {
				s := session(mech, workers, false)
				sample, err := measure(cfg.Repetitions, func() (time.Duration, error) {
					return runWorkload(s, w, n, cfg.Lookups, cfg.Seed)
				})
				s.Close()
				if err != nil {
					return nil, err
				}
				row.Time[mech] = time.Duration(sample.Mean() * float64(time.Second))
				row.RelStdDev[mech] = sample.RelStdDev()
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Table renders the result in the shape of Figure 5.
func (r *Fig5Result) Table() *metrics.Table {
	title := "Figure 5(a): microbenchmark execution times, single worker"
	if r.Workers > 1 {
		title = "Figure 5(b): microbenchmark execution times, " + strconv.Itoa(r.Workers) + " workers"
	}
	t := metrics.NewTable(title,
		"benchmark", "Cilk-M (mm)", "Cilk Plus (hypermap)", "hypermap / mm")
	for _, row := range r.Rows {
		t.AddRow(
			WorkloadName(row.Workload, row.N),
			row.Time[reducers.MemoryMapped],
			row.Time[reducers.Hypermap],
			row.Ratio(),
		)
	}
	return t
}

// MeanRatio returns the average hypermap/memory-mapped time ratio across
// all clusters (the paper reports roughly 4–9× for serial runs and 3–9× for
// parallel runs).
func (r *Fig5Result) MeanRatio() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, row := range r.Rows {
		sum += row.Ratio()
	}
	return sum / float64(len(r.Rows))
}
