package bench

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/reducers"
)

// Fig6Row is one cluster of Figure 6: the lookup overhead — execution time
// of add-n minus execution time of add-base-n on a single worker — for each
// mechanism.
type Fig6Row struct {
	N int
	// Overhead maps mechanism → total lookup overhead for the run.
	Overhead map[reducers.Mechanism]time.Duration
	// PerLookup maps mechanism → overhead per lookup.
	PerLookup map[reducers.Mechanism]time.Duration
}

// Ratio returns hypermap overhead divided by memory-mapped overhead.
func (r Fig6Row) Ratio() float64 {
	mm := r.Overhead[reducers.MemoryMapped].Seconds()
	hm := r.Overhead[reducers.Hypermap].Seconds()
	if mm <= 0 {
		return 0
	}
	return hm / mm
}

// Fig6Result holds the lookup-overhead study.
type Fig6Result struct {
	Lookups int
	Rows    []Fig6Row
}

// RunFig6 reproduces Figure 6: the reducer lookup overhead of both
// mechanisms as the number of reducers varies, measured on a single worker
// as time(add-n) − time(add-base-n).
func RunFig6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.normalize()
	res := &Fig6Result{Lookups: cfg.Lookups}

	// Baseline per n (the array-update loop is essentially independent of
	// n, but measuring it per n mirrors the paper's methodology).
	for _, n := range FineReducerCounts {
		baseSession := session(reducers.MemoryMapped, 1, false)
		baseSample, err := measure(cfg.Repetitions, func() (time.Duration, error) {
			return runAddBaseN(baseSession, n, cfg.Lookups)
		})
		baseSession.Close()
		if err != nil {
			return nil, err
		}
		base := baseSample.Min()

		row := Fig6Row{
			N:         n,
			Overhead:  make(map[reducers.Mechanism]time.Duration),
			PerLookup: make(map[reducers.Mechanism]time.Duration),
		}
		for _, mech := range reducers.Mechanisms() {
			s := session(mech, 1, false)
			sample, err := measure(cfg.Repetitions, func() (time.Duration, error) {
				return runAddN(s, n, cfg.Lookups)
			})
			s.Close()
			if err != nil {
				return nil, err
			}
			overhead := sample.Min() - base
			if overhead < 0 {
				overhead = 0
			}
			row.Overhead[mech] = time.Duration(overhead * float64(time.Second))
			row.PerLookup[mech] = time.Duration(overhead / float64(cfg.Lookups) * float64(time.Second))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the result in the shape of Figure 6.
func (r *Fig6Result) Table() *metrics.Table {
	t := metrics.NewTable(
		"Figure 6: reducer lookup overhead on a single worker (time of add-n minus add-base-n)",
		"benchmark", "Cilk-M (mm)", "Cilk Plus (hypermap)", "mm ns/lookup", "hypermap ns/lookup", "hypermap / mm")
	for _, row := range r.Rows {
		t.AddRow(
			WorkloadName(WorkloadAdd, row.N),
			row.Overhead[reducers.MemoryMapped],
			row.Overhead[reducers.Hypermap],
			float64(row.PerLookup[reducers.MemoryMapped].Nanoseconds()),
			float64(row.PerLookup[reducers.Hypermap].Nanoseconds()),
			row.Ratio(),
		)
	}
	return t
}

// OverheadSpread returns, for the given mechanism, the ratio between the
// largest and smallest per-lookup overhead across the sweep.  The paper
// observes that the memory-mapped overhead stays fairly constant
// (spread ≈ 1) while the hypermap overhead varies significantly with n.
func (r *Fig6Result) OverheadSpread(m reducers.Mechanism) float64 {
	minV, maxV := 0.0, 0.0
	for i, row := range r.Rows {
		v := row.Overhead[m].Seconds()
		if i == 0 || v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if minV <= 0 {
		return 0
	}
	return maxV / minV
}
