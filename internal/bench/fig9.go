package bench

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/reducers"
)

// Fig9Row is one curve point of Figure 9: the speedup of add-n on the
// memory-mapped mechanism for a given worker count.
type Fig9Row struct {
	N       int
	Workers int
	Elapsed time.Duration
	Speedup float64
}

// Fig9Result holds the speedup study.
type Fig9Result struct {
	Lookups int
	// Rows are grouped by N, ascending worker count within each group.
	Rows []Fig9Row
	// SerialTime maps n → single-worker execution time (the speedup
	// denominator's numerator, i.e. T1).
	SerialTime map[int]time.Duration
}

// RunFig9 reproduces Figure 9: the speedup of add-n on Cilk-M (the
// memory-mapped mechanism) for P ∈ {1,2,4,8,16} workers and
// n ∈ {4,16,64,256,1024} reducers, relative to the single-worker execution.
//
// Note that on a host with fewer physical CPUs than workers the "speedup"
// measures scheduling overhead rather than parallel speedup; the harness
// reports whatever the host provides and EXPERIMENTS.md discusses the
// discrepancy.
func RunFig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.normalize()
	res := &Fig9Result{Lookups: cfg.Lookups, SerialTime: make(map[int]time.Duration)}
	for _, n := range ReducerCounts {
		var t1 float64
		for _, p := range SpeedupWorkerCounts {
			workers := clampWorkers(p)
			s := session(reducers.MemoryMapped, workers, false)
			sample, err := measure(cfg.Repetitions, func() (time.Duration, error) {
				return runAddN(s, n, cfg.Lookups)
			})
			s.Close()
			if err != nil {
				return nil, err
			}
			mean := sample.Mean()
			if p == 1 {
				t1 = mean
				res.SerialTime[n] = time.Duration(mean * float64(time.Second))
			}
			speedup := 0.0
			if mean > 0 && t1 > 0 {
				speedup = t1 / mean
			}
			res.Rows = append(res.Rows, Fig9Row{
				N:       n,
				Workers: p,
				Elapsed: time.Duration(mean * float64(time.Second)),
				Speedup: speedup,
			})
		}
	}
	return res, nil
}

// Table renders the result in the shape of Figure 9.
func (r *Fig9Result) Table() *metrics.Table {
	t := metrics.NewTable(
		"Figure 9: speedup of add-n on Cilk-M (memory-mapped) over its single-worker execution",
		"benchmark", "workers", "time", "speedup")
	for _, row := range r.Rows {
		t.AddRow(WorkloadName(WorkloadAdd, row.N), row.Workers, row.Elapsed, row.Speedup)
	}
	return t
}

// SpeedupAt returns the measured speedup for a given n and worker count.
func (r *Fig9Result) SpeedupAt(n, workers int) float64 {
	for _, row := range r.Rows {
		if row.N == n && row.Workers == workers {
			return row.Speedup
		}
	}
	return 0
}
