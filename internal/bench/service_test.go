package bench

import "testing"

// TestRunServiceLatencySmoke runs the open-loop service experiment at a
// tiny scale and checks its accounting invariants: every arrival is
// classified exactly once, nothing fails, and completed jobs produce a
// coherent latency distribution.
func TestRunServiceLatencySmoke(t *testing.T) {
	res, err := RunServiceLatency(QuickConfig(), []int{2000})
	if err != nil {
		t.Fatalf("RunServiceLatency: %v", err)
	}
	if len(res.Rows) != 2 { // one rate × both mechanisms
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Failed != 0 {
			t.Errorf("%s rate=%d: %d jobs failed", row.Mechanism, row.Rate, row.Failed)
		}
		if row.Completed == 0 {
			t.Errorf("%s rate=%d: no jobs completed", row.Mechanism, row.Rate)
		}
		if row.P50 > row.P90 || row.P90 > row.P99 || row.P99 > row.Max {
			t.Errorf("%s rate=%d: percentiles not monotone: p50=%v p90=%v p99=%v max=%v",
				row.Mechanism, row.Rate, row.P50, row.P90, row.P99, row.Max)
		}
	}
	if res.Table() == "" {
		t.Error("empty table")
	}
	if res.BenchLines() == "" {
		t.Error("empty bench lines")
	}
}
