package bench

import (
	"strings"
	"testing"
)

func TestMergePipeline(t *testing.T) {
	res, err := RunMergePipeline(quickCfg())
	if err != nil {
		t.Fatalf("RunMergePipeline: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Merges == 0 || row.Slots == 0 || row.Batches == 0 {
			t.Fatalf("pipeline counters empty for n=%d: %+v", row.N, row)
		}
		// The headline property: bulk page movement keeps the number of
		// pagepool round-trips strictly below the number of slots merged.
		if row.PoolOps >= row.Slots {
			t.Fatalf("n=%d: %d pool ops for %d merged slots — batching not engaged",
				row.N, row.PoolOps, row.Slots)
		}
		// Wide merges must take the parallel path (threshold default 96).
		if row.N >= 256 && row.Parallel == 0 {
			t.Fatalf("n=%d: no merge was fanned out through the scheduler", row.N)
		}
	}
	out := res.Table().String()
	if !strings.Contains(out, "pool ops") || !strings.Contains(out, "1024") {
		t.Fatalf("table malformed:\n%s", out)
	}
}
