package bench

import (
	"strings"
	"testing"
)

func TestMergePipeline(t *testing.T) {
	res, err := RunMergePipeline(quickCfg())
	if err != nil {
		t.Fatalf("RunMergePipeline: %v", err)
	}
	// Three widths, each at 100%, 50% and 0% written views.
	if len(res.Rows) != 9 {
		t.Fatalf("expected 9 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		switch row.WrittenPct {
		case 100:
			if row.Merges == 0 || row.Slots == 0 || row.Batches == 0 {
				t.Fatalf("pipeline counters empty for n=%d: %+v", row.N, row)
			}
			if row.Elided != 0 {
				t.Fatalf("n=%d fully written: %d spurious elisions", row.N, row.Elided)
			}
			// Wide merges must take the parallel path (threshold default 96).
			if row.N >= 256 && row.Parallel == 0 {
				t.Fatalf("n=%d: no merge was fanned out through the scheduler", row.N)
			}
		case 50:
			if row.Elided == 0 {
				t.Fatalf("n=%d half written: no elisions recorded", row.N)
			}
			if row.Slots == 0 {
				t.Fatalf("n=%d half written: written half not merged: %+v", row.N, row)
			}
		case 0:
			// A fully read-only trace deposits nothing: no merges, no
			// reduce calls, and — the headline — no pagepool traffic.
			if row.Slots != 0 || row.PoolOps != 0 {
				t.Fatalf("n=%d all read-only: slots=%d poolops=%d, want 0/0", row.N, row.Slots, row.PoolOps)
			}
			if row.Elided == 0 {
				t.Fatalf("n=%d all read-only: no elisions recorded", row.N)
			}
		}
		// The headline property: bulk page movement keeps the number of
		// pagepool round-trips strictly below the number of slots merged
		// (both zero when everything was elided).
		if row.Slots > 0 && row.PoolOps >= row.Slots {
			t.Fatalf("n=%d: %d pool ops for %d merged slots — batching not engaged",
				row.N, row.PoolOps, row.Slots)
		}
	}
	out := res.Table().String()
	if !strings.Contains(out, "pool ops") || !strings.Contains(out, "1024") || !strings.Contains(out, "elided") {
		t.Fatalf("table malformed:\n%s", out)
	}
}
