package bench

import (
	"math"
	"time"

	"repro/internal/locking"
	"repro/internal/metrics"
	"repro/internal/reducers"
	"repro/internal/sched"
)

// Fig1Row is one bar of Figure 1: the per-access overhead of a mechanism,
// normalised to an ordinary L1-cache memory access.
type Fig1Row struct {
	Name       string
	PerOp      time.Duration
	Normalized float64
	// PaperNormalized is the approximate value the paper reports for the
	// same bar, for side-by-side comparison.
	PaperNormalized float64
}

// Fig1Result is the full Figure 1 dataset.
type Fig1Result struct {
	Rows    []Fig1Row
	Lookups int
}

// RunFig1 reproduces Figure 1: a tight loop of additions on four memory
// locations executed on a single worker, comparing an ordinary memory
// access against memory-mapped reducers, hypermap reducers, and per-location
// spin locks.
func RunFig1(cfg Config) (*Fig1Result, error) {
	cfg = cfg.normalize()
	const nLocations = 4
	x := cfg.Lookups

	res := &Fig1Result{Lookups: x}

	// Ordinary L1 accesses: the add-base workload.
	baseSession := session(reducers.MemoryMapped, 1, false)
	baseSample, err := measure(cfg.Repetitions, func() (time.Duration, error) {
		return runAddBaseN(baseSession, nLocations, x)
	})
	baseSession.Close()
	if err != nil {
		return nil, err
	}
	basePerOp := baseSample.Min() / float64(x)

	perOp := func(seconds float64) time.Duration {
		// Round up: per-access times below 1ns (possible for the plain-add
		// baseline on fast hosts) must not truncate to a zero Duration.
		// Normalized carries the full-precision ratio.
		return time.Duration(math.Ceil(seconds / float64(x) * float64(time.Second)))
	}
	addRow := func(name string, sample metrics.Sample, paper float64) {
		res.Rows = append(res.Rows, Fig1Row{
			Name:            name,
			PerOp:           perOp(sample.Min()),
			Normalized:      sample.Min() / float64(x) / basePerOp,
			PaperNormalized: paper,
		})
	}
	addRow("L1-memory", baseSample, 1.0)

	// Memory-mapped reducers.
	mmSession := session(reducers.MemoryMapped, 1, false)
	mmSample, err := measure(cfg.Repetitions, func() (time.Duration, error) {
		return runAddN(mmSession, nLocations, x)
	})
	mmSession.Close()
	if err != nil {
		return nil, err
	}
	addRow("memory-mapped", mmSample, 3.0)

	// Hypermap reducers.
	hmSession := session(reducers.Hypermap, 1, false)
	hmSample, err := measure(cfg.Repetitions, func() (time.Duration, error) {
		return runAddN(hmSession, nLocations, x)
	})
	hmSession.Close()
	if err != nil {
		return nil, err
	}
	addRow("hypermap", hmSample, 12.0)

	// Locking: one spin lock per memory location.
	lockSession := session(reducers.MemoryMapped, 1, false)
	lockSample, err := measure(cfg.Repetitions, func() (time.Duration, error) {
		arr := locking.NewArray(nLocations)
		nChunks := chunks(x)
		start := time.Now()
		runErr := lockSession.Run(func(c *sched.Context) {
			c.ParallelFor(0, nChunks, func(_ *sched.Context, chunk int) {
				lo := chunk * chunkSize
				hi := lo + chunkSize
				if hi > x {
					hi = x
				}
				idx := lo % nLocations
				for i := lo; i < hi; i++ {
					arr.Add(idx, 1)
					idx++
					if idx == nLocations {
						idx = 0
					}
				}
			})
		})
		return time.Since(start), runErr
	})
	lockSession.Close()
	if err != nil {
		return nil, err
	}
	addRow("locking", lockSample, 13.0)

	return res, nil
}

// basePerOpSeconds returns the normalisation base (seconds per op) implied
// by the first row; exposed for tests.
func (r *Fig1Result) basePerOpSeconds() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	return r.Rows[0].PerOp.Seconds()
}

// Table renders the result in the shape of Figure 1.
func (r *Fig1Result) Table() *metrics.Table {
	t := metrics.NewTable(
		"Figure 1: normalized overhead of updating four memory locations (single worker)",
		"mechanism", "ns/op", "normalized", "paper (approx)")
	for _, row := range r.Rows {
		t.AddRow(row.Name, float64(row.PerOp.Nanoseconds()), row.Normalized, row.PaperNormalized)
	}
	return t
}

// MMFasterThanHypermap reports the measured speedup of memory-mapped over
// hypermap lookups (the paper reports close to 4×).
func (r *Fig1Result) MMFasterThanHypermap() float64 {
	var mm, hm float64
	for _, row := range r.Rows {
		switch row.Name {
		case "memory-mapped":
			mm = row.Normalized
		case "hypermap":
			hm = row.Normalized
		}
	}
	if mm == 0 {
		return 0
	}
	return hm / mm
}
