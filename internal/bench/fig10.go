package bench

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/pbfs"
	"repro/internal/reducers"
)

// Fig10Row is one input graph of Figure 10: PBFS execution times under both
// mechanisms on one worker and on the full worker count, plus the graph's
// measured characteristics (Figure 10(b)).
type Fig10Row struct {
	Spec  graph.InputSpec
	Stats graph.Stats
	// SerialTime and ParallelTime map mechanism → mean execution time.
	SerialTime   map[reducers.Mechanism]time.Duration
	ParallelTime map[reducers.Mechanism]time.Duration
	// Lookups is the number of reducer lookups PBFS performed on this
	// input (memory-mapped run).
	Lookups int64
}

// SerialRatio returns Cilk-M time / Cilk Plus time on one worker (the
// paper reports values slightly above or near 1).
func (r Fig10Row) SerialRatio() float64 {
	hm := r.SerialTime[reducers.Hypermap].Seconds()
	if hm == 0 {
		return 0
	}
	return r.SerialTime[reducers.MemoryMapped].Seconds() / hm
}

// ParallelRatio returns Cilk-M time / Cilk Plus time on the full worker
// count (the paper reports values below 1: Cilk-M is faster).
func (r Fig10Row) ParallelRatio() float64 {
	hm := r.ParallelTime[reducers.Hypermap].Seconds()
	if hm == 0 {
		return 0
	}
	return r.ParallelTime[reducers.MemoryMapped].Seconds() / hm
}

// Fig10Result holds the PBFS study.
type Fig10Result struct {
	Workers    int
	GraphScale float64
	Rows       []Fig10Row
}

// RunFig10 reproduces Figure 10: PBFS on synthetic stand-ins for the
// paper's eight input graphs, on one worker and on cfg.MaxWorkers workers,
// under both reducer mechanisms.  Inputs may be restricted to a subset of
// the paper's graph names; nil means all eight.
func RunFig10(cfg Config, inputs []string) (*Fig10Result, error) {
	cfg = cfg.normalize()
	workers := clampWorkers(cfg.MaxWorkers)
	res := &Fig10Result{Workers: workers, GraphScale: cfg.GraphScale}

	specs := graph.PaperInputs()
	if len(inputs) > 0 {
		var filtered []graph.InputSpec
		for _, name := range inputs {
			spec, ok := graph.FindInput(name)
			if !ok {
				return nil, fmt.Errorf("bench: unknown PBFS input %q", name)
			}
			filtered = append(filtered, spec)
		}
		specs = filtered
	}

	for _, spec := range specs {
		g := spec.Build(cfg.GraphScale, cfg.Seed)
		row := Fig10Row{
			Spec:         spec,
			Stats:        g.ComputeStats(),
			SerialTime:   make(map[reducers.Mechanism]time.Duration),
			ParallelTime: make(map[reducers.Mechanism]time.Duration),
		}

		for _, mech := range reducers.Mechanisms() {
			// Serial (one worker).
			s1 := reducers.NewSession(mech, 1, reducers.EngineOptions{CountLookups: mech == reducers.MemoryMapped})
			sample, err := measure(cfg.Repetitions, func() (time.Duration, error) {
				s1.Engine().ResetOverheads()
				start := time.Now()
				out, runErr := pbfs.Parallel(s1, g, pbfs.Config{Source: 0})
				if runErr != nil {
					return 0, runErr
				}
				if vErr := pbfs.Validate(g, 0, out); vErr != nil {
					return 0, vErr
				}
				return time.Since(start), nil
			})
			if mech == reducers.MemoryMapped {
				row.Lookups = s1.Engine().Lookups() / int64(max(cfg.Repetitions, 1))
			}
			s1.Close()
			if err != nil {
				return nil, fmt.Errorf("bench: PBFS %s serial (%v): %w", spec.Name, mech, err)
			}
			row.SerialTime[mech] = time.Duration(sample.Mean() * float64(time.Second))

			// Parallel (full worker count).
			sp := reducers.NewSession(mech, workers, reducers.EngineOptions{})
			sample, err = measure(cfg.Repetitions, func() (time.Duration, error) {
				start := time.Now()
				out, runErr := pbfs.Parallel(sp, g, pbfs.Config{Source: 0})
				if runErr != nil {
					return 0, runErr
				}
				if vErr := pbfs.Validate(g, 0, out); vErr != nil {
					return 0, vErr
				}
				return time.Since(start), nil
			})
			sp.Close()
			if err != nil {
				return nil, fmt.Errorf("bench: PBFS %s parallel (%v): %w", spec.Name, mech, err)
			}
			row.ParallelTime[mech] = time.Duration(sample.Mean() * float64(time.Second))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig10aTable renders the relative-execution-time comparison (Figure
// 10(a)): Cilk-M time normalised by Cilk Plus time.
func (r *Fig10Result) Fig10aTable() *metrics.Table {
	t := metrics.NewTable(
		"Figure 10(a): PBFS execution time of Cilk-M relative to Cilk Plus (lower than 1 means Cilk-M is faster)",
		"graph", "1 worker", fmt.Sprintf("%d workers", r.Workers))
	for _, row := range r.Rows {
		t.AddRow(row.Spec.Name, row.SerialRatio(), row.ParallelRatio())
	}
	return t
}

// Fig10bTable renders the graph-characteristics table (Figure 10(b)),
// showing the paper's inputs next to the synthetic stand-ins actually
// measured.
func (r *Fig10Result) Fig10bTable() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 10(b): input graphs (synthetic stand-ins at scale %.4g)", r.GraphScale),
		"graph", "|V| paper", "|E| paper", "D paper", "lookups paper",
		"|V| here", "|E| here", "D here", "lookups here")
	for _, row := range r.Rows {
		t.AddRow(
			row.Spec.Name,
			row.Spec.PaperVertices, row.Spec.PaperEdges, row.Spec.PaperDiameter, row.Spec.PaperLookups,
			row.Stats.Vertices, row.Stats.Edges, row.Stats.Diameter, row.Lookups,
		)
	}
	return t
}
