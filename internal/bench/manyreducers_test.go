package bench

import "testing"

// TestRunManyReducersQuick smoke-runs the dynamic-registration study at the
// quick configuration and checks its internal consistency: the histogram
// totals are validated inside the harness, so success already proves every
// concurrently registered reducer merged exactly its own updates.
func TestRunManyReducersQuick(t *testing.T) {
	cfg := QuickConfig()
	res, err := RunManyReducers(cfg)
	if err != nil {
		t.Fatalf("RunManyReducers: %v", err)
	}
	wantRows := 2 * len(manyReducersLives(cfg)) // both mechanisms
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
	}
	for _, row := range res.Rows {
		if row.RegPerSec <= 0 || row.LookupNs <= 0 {
			t.Fatalf("row %+v: non-positive measurement", row)
		}
		if row.Shards == 0 {
			t.Fatalf("row %+v: directory stats missing", row)
		}
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}
