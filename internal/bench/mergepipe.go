package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// MergePipelineRow is one measurement of the batched hypermerge pipeline:
// a controlled sequence of view-transferal/hypermerge cycles over n
// reducers, with the pipeline counters captured afterwards.
type MergePipelineRow struct {
	N          int
	Merges     int64
	Slots      int64
	Batches    int64
	Parallel   int64
	PoolOps    int64 // pagepool round-trips (bulk ops count one)
	MergeTasks int64 // batches executed by thieves
	Elapsed    time.Duration
}

// MergePipelineResult holds the merge-pipeline study.
type MergePipelineResult struct {
	Workers int
	Rows    []MergePipelineRow
}

// RunMergePipeline exercises the batched, parallel hypermerge pipeline
// under controlled conditions: for each reducer count it drives explicit
// trace cycles — begin a trace, touch every reducer, transfer the views
// out, and hypermerge the deposit back — so that every repetition performs
// exactly one bulk page fetch, one full-width merge and one bulk page
// return, independent of steal luck.  The first cycle adopts views; every
// later cycle reduces n pairs, which is the path that batches and, past
// the threshold, fans out through the scheduler.
func RunMergePipeline(cfg Config) (*MergePipelineResult, error) {
	cfg = cfg.normalize()
	workers := clampWorkers(cfg.MaxWorkers)
	reps := cfg.Repetitions * 8
	if reps < 16 {
		reps = 16
	}
	res := &MergePipelineResult{Workers: workers}
	for _, n := range []int{64, 256, 1024} {
		eng := core.NewMM(core.MMConfig{Workers: workers})
		s := core.NewSession(workers, eng)
		rs := make([]*core.Reducer, n)
		for i := range rs {
			r, err := eng.Register(addMonoid{})
			if err != nil {
				s.Close()
				return nil, err
			}
			rs[i] = r
		}
		start := time.Now()
		err := s.Run(func(c *sched.Context) {
			w := c.Worker()
			for rep := 0; rep < reps; rep++ {
				tr := eng.BeginTrace(w)
				for _, r := range rs {
					eng.Lookup(c, r).(*addView).v++
				}
				d := eng.EndTrace(w, tr)
				eng.Merge(w, w.CurrentTrace(), d)
			}
		})
		elapsed := time.Since(start)
		ms := eng.MergeStats()
		st := s.Runtime().Stats()
		pool := eng.PoolStats()
		s.Close()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, MergePipelineRow{
			N:          n,
			Merges:     ms.Merges,
			Slots:      ms.SlotsMerged,
			Batches:    ms.Batches,
			Parallel:   ms.ParallelMerges,
			PoolOps:    pool.RoundTrips(),
			MergeTasks: st.MergeTasks,
			Elapsed:    elapsed,
		})
	}
	return res, nil
}

// addMonoid/addView is a local integer-sum monoid for the pipeline study.
type addMonoid struct{}

type addView struct{ v int64 }

func (addMonoid) Identity() any { return &addView{} }
func (addMonoid) Reduce(l, r any) any {
	lv := l.(*addView)
	lv.v += r.(*addView).v
	return lv
}

// Table renders the merge-pipeline study.
func (r *MergePipelineResult) Table() *metrics.Table {
	t := metrics.NewTable(
		"Merge pipeline: batched hypermerge with bulk page movement",
		"reducers", "merges", "slots", "batches", "parallel", "pool ops", "merge tasks", "elapsed")
	for _, row := range r.Rows {
		t.AddRow(row.N, row.Merges, row.Slots, row.Batches, row.Parallel,
			row.PoolOps, row.MergeTasks, row.Elapsed)
	}
	return t
}
