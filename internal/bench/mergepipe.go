package bench

import (
	"time"
	"unsafe"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// MergePipelineRow is one measurement of the batched hypermerge pipeline:
// a controlled sequence of view-transferal/hypermerge cycles over n
// reducers at a given written-view fraction, with the pipeline counters
// captured afterwards.
type MergePipelineRow struct {
	N          int
	WrittenPct int // percentage of views written (the rest are read-only)
	Merges     int64
	Slots      int64
	Batches    int64
	Parallel   int64
	Elided     int64 // never-written views recycled without a reduce call
	PoolOps    int64 // pagepool round-trips (bulk ops count one)
	MergeTasks int64 // batches executed by thieves
	Elapsed    time.Duration
}

// MergePipelineResult holds the merge-pipeline study.
type MergePipelineResult struct {
	Workers int
	Rows    []MergePipelineRow
}

// RunMergePipeline exercises the batched, parallel hypermerge pipeline
// under controlled conditions: for each reducer count it drives explicit
// trace cycles — begin a trace, touch every reducer, transfer the views
// out, and hypermerge the deposit back — so that every repetition performs
// exactly one bulk page fetch, one full-width merge and one bulk page
// return, independent of steal luck.  The first cycle adopts views; every
// later cycle reduces n pairs, which is the path that batches and, past
// the threshold, fans out through the scheduler.
//
// Each width also runs at reduced written fractions: the remaining views
// are resolved read-only, so their slots keep a clear written bit and the
// pipeline elides them — the Elided column counts views recycled with no
// reduce call, and at 0% written the PoolOps column shows that a fully
// elided trace performs no pagepool round-trips at all.
func RunMergePipeline(cfg Config) (*MergePipelineResult, error) {
	cfg = cfg.normalize()
	workers := clampWorkers(cfg.MaxWorkers)
	reps := cfg.Repetitions * 8
	if reps < 16 {
		reps = 16
	}
	res := &MergePipelineResult{Workers: workers}
	for _, n := range []int{64, 256, 1024} {
		for _, writtenPct := range []int{100, 50, 0} {
			row, err := runMergePipelineCase(cfg, workers, n, writtenPct, reps)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func runMergePipelineCase(cfg Config, workers, n, writtenPct, reps int) (MergePipelineRow, error) {
	eng := core.NewMM(core.MMConfig{Workers: workers})
	s := core.NewSession(workers, eng)
	defer s.Close()
	if cfg.Exporter != nil {
		// Re-registering under the same names points a live scrape
		// endpoint at the case currently running.
		cfg.Exporter.Register("engine", eng)
		cfg.Exporter.Register("sched", s.Runtime())
		cfg.Exporter.Register("faultinject", metrics.SourceFunc(faultinject.SampleMetrics))
	}
	rs := make([]*core.Reducer, n)
	for i := range rs {
		r, err := eng.Register(addMonoid{})
		if err != nil {
			return MergePipelineRow{}, err
		}
		rs[i] = r
	}
	written := n * writtenPct / 100
	start := time.Now()
	err := s.Run(func(c *sched.Context) {
		w := c.Worker()
		for rep := 0; rep < reps; rep++ {
			tr := eng.BeginTrace(w)
			for i, r := range rs {
				if i < written {
					eng.Lookup(c, r).(*addView).v++
				} else {
					word, _ := eng.LookupWord(c, r, 0, false)
					_ = word
				}
			}
			d := eng.EndTrace(w, tr)
			eng.Merge(w, w.CurrentTrace(), d)
		}
	})
	elapsed := time.Since(start)
	ms := eng.MergeStats()
	st := s.Runtime().Stats()
	pool := eng.PoolStats()
	if err != nil {
		return MergePipelineRow{}, err
	}
	return MergePipelineRow{
		N:          n,
		WrittenPct: writtenPct,
		Merges:     ms.Merges,
		Slots:      ms.SlotsMerged,
		Batches:    ms.Batches,
		Parallel:   ms.ParallelMerges,
		Elided:     ms.IdentityElisions,
		PoolOps:    pool.RoundTrips(),
		MergeTasks: st.MergeTasks,
		Elapsed:    elapsed,
	}, nil
}

// addMonoid/addView is a local integer-sum monoid for the pipeline study.
// It opts into arena placement so the study also exercises the view-arena
// recycle path (the views are a fixed-size pointer-free int64).
type addMonoid struct{}

type addView struct{ v int64 }

func (addMonoid) Identity() any { return &addView{} }
func (addMonoid) Reduce(l, r any) any {
	lv := l.(*addView)
	lv.v += r.(*addView).v
	return lv
}
func (addMonoid) ViewBytes() uintptr { return unsafe.Sizeof(addView{}) }

//cilkvet:allow unsafeword -- ArenaMonoid.InitView contract: p is a fresh ViewBytes-sized arena block
func (addMonoid) InitView(p unsafe.Pointer) { *(*addView)(p) = addView{} }

var _ core.ArenaMonoid = addMonoid{}

// Table renders the merge-pipeline study.
func (r *MergePipelineResult) Table() *metrics.Table {
	t := metrics.NewTable(
		"Merge pipeline: batched hypermerge with bulk page movement and identity elision",
		"reducers", "written%", "merges", "slots", "batches", "parallel", "elided", "pool ops", "merge tasks", "elapsed")
	for _, row := range r.Rows {
		t.AddRow(row.N, row.WrittenPct, row.Merges, row.Slots, row.Batches, row.Parallel,
			row.Elided, row.PoolOps, row.MergeTasks, row.Elapsed)
	}
	return t
}
