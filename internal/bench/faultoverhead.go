package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/reducers"
	"repro/internal/sched"
)

// FaultOverheadRow is one headline path measured with the failpoints in
// their two steady states: disabled (no plan active — the production
// configuration, one atomic load per site) and armed-idle (a plan active
// whose rules never become eligible — the full per-hit accounting runs but
// nothing ever fires).  The disabled column is the number that must stay
// within noise of the pre-failpoint baseline; the armed column bounds what
// a chaos run pays on top.
type FaultOverheadRow struct {
	Path     string
	Disabled time.Duration // per-op, no plan active
	Armed    time.Duration // per-op, armed-idle plan active
	Ops      int
}

// FaultOverheadResult is the full dataset of the faultoverhead experiment.
type FaultOverheadResult struct {
	Rows []FaultOverheadRow
}

// Table renders the result as a text table.
func (r *FaultOverheadResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Failpoint overhead on the headline paths (per op; armed = active plan, no rule eligible)\n")
	fmt.Fprintf(&b, "%-24s %14s %14s %10s\n", "path", "disabled", "armed-idle", "delta")
	for _, row := range r.Rows {
		delta := "n/a"
		if row.Disabled > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(float64(row.Armed)-float64(row.Disabled))/float64(row.Disabled))
		}
		fmt.Fprintf(&b, "%-24s %14v %14v %10s\n", row.Path, row.Disabled, row.Armed, delta)
	}
	return b.String()
}

// armedIdlePlan builds a plan that arms every compiled-in failpoint with an
// After threshold no run can reach, so every site executes its full
// per-hit accounting (the atomic ordinal increment and eligibility check)
// without ever firing — the worst steady-state cost chaos mode can impose
// while injecting nothing.
func armedIdlePlan() *faultinject.Plan {
	p := faultinject.NewPlan(1)
	for _, id := range faultinject.IDs() {
		p.Arm(id, faultinject.Rule{Prob: 1, After: 1 << 62})
	}
	return p
}

// RunFaultOverhead measures the fork, steal, lookup and merge headline
// paths with failpoints disabled and armed-idle.
func RunFaultOverhead(cfg Config) (*FaultOverheadResult, error) {
	cfg = cfg.normalize()
	res := &FaultOverheadResult{}

	type path struct {
		name string
		ops  int
		run  func() (time.Duration, error)
	}
	forkOps := cfg.Lookups / 16
	if forkOps < 1 {
		forkOps = 1
	}
	stealOps := cfg.Lookups / 64
	if stealOps < 1 {
		stealOps = 1
	}

	// Sessions are created fresh inside each measurement closure: the
	// armed-idle pass must include any chaos-mode cost paid at worker
	// startup and trace bookkeeping, not just the loop body.
	paths := []path{
		{
			// The allocation-free fork fast path on one worker: no steals,
			// so the sched/steal and merge failpoints stay cold and the
			// cost measured is Fork + the job-boundary bookkeeping.
			name: "fork (no steal)",
			ops:  forkOps,
			run: func() (time.Duration, error) {
				s := session(reducers.MemoryMapped, 1, false)
				defer s.Close()
				nop := func(*sched.Context) {}
				start := time.Now()
				err := s.Run(func(c *sched.Context) {
					for i := 0; i < forkOps; i++ {
						c.Fork(nop, nop)
					}
				})
				return time.Since(start), err
			},
		},
		{
			// A grain-1 parallel loop across workers: steal sweeps, parking
			// decisions and view transferal all run.
			name: "steal + transferal",
			ops:  stealOps,
			run: func() (time.Duration, error) {
				s := session(reducers.MemoryMapped, 4, false)
				defer s.Close()
				start := time.Now()
				err := s.Run(func(c *sched.Context) {
					c.ParallelForGrain(0, stealOps, 1, func(*sched.Context, int) {})
				})
				return time.Since(start), err
			},
		},
		{
			// The reducer lookup path of Figure 1 (memory-mapped, one
			// worker): the monoid/identity failpoint sits on its slow path.
			name: "lookup (memory-mapped)",
			ops:  cfg.Lookups,
			run: func() (time.Duration, error) {
				s := session(reducers.MemoryMapped, 1, false)
				defer s.Close()
				return runAddN(s, 4, cfg.Lookups)
			},
		},
		{
			// The same add workload on four workers: steals deposit views
			// and the hypermerge (with its merge-task failpoints) folds
			// them back.
			name: "merge (memory-mapped)",
			ops:  cfg.Lookups,
			run: func() (time.Duration, error) {
				s := session(reducers.MemoryMapped, 4, false)
				defer s.Close()
				return runAddN(s, 4, cfg.Lookups)
			},
		},
	}

	for _, p := range paths {
		disabled, err := measure(cfg.Repetitions, p.run)
		if err != nil {
			return nil, fmt.Errorf("bench: %s disabled: %w", p.name, err)
		}
		deactivate := faultinject.Activate(armedIdlePlan())
		armed, err := measure(cfg.Repetitions, p.run)
		deactivate()
		if err != nil {
			return nil, fmt.Errorf("bench: %s armed: %w", p.name, err)
		}
		res.Rows = append(res.Rows, FaultOverheadRow{
			Path:     p.name,
			Disabled: perOpDuration(disabled, p.ops),
			Armed:    perOpDuration(armed, p.ops),
			Ops:      p.ops,
		})
	}
	return res, nil
}

// perOpDuration converts a sample's best run into a per-operation duration.
func perOpDuration(s metrics.Sample, ops int) time.Duration {
	if ops < 1 {
		ops = 1
	}
	return time.Duration(s.Min() / float64(ops) * float64(time.Second))
}
