package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/reducers"
	"repro/internal/sched"
)

// DefaultServiceRates is the arrival-rate sweep (jobs per second) used when
// the caller does not pass explicit rates.  The low rate keeps the service
// mostly idle (latency ≈ job service time), the high rate pushes it past
// the queue bound so the reject path and tail latency under backpressure
// show up in the numbers.
var DefaultServiceRates = []int{200, 1000, 4000}

// ServiceLatencyRow is one (mechanism, arrival rate) leg of the open-loop
// service experiment.
type ServiceLatencyRow struct {
	Mechanism reducers.Mechanism
	Rate      int // target arrivals per second
	Jobs      int // arrivals attempted
	Completed int
	Rejected  int // AdmitReject refusals (open-loop losses)
	Failed    int // completed with a non-nil error (should be 0)
	// Latencies are measured from the job's scheduled open-loop arrival
	// instant to handle completion, so submitter scheduling lag and queue
	// wait are charged to the job, as an external client would see it.
	P50, P90, P99, Max time.Duration
	Elapsed            time.Duration
}

// ServiceLatencyResult is the full dataset of the service experiment.
type ServiceLatencyResult struct {
	Workers int
	Rows    []ServiceLatencyRow
}

// Table renders the result as a text table.
func (r *ServiceLatencyResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resident service, open-loop arrivals (%d workers; latency from scheduled arrival to completion)\n", r.Workers)
	fmt.Fprintf(&b, "%-14s %8s %6s %6s %6s %12s %12s %12s %12s\n",
		"mechanism", "rate/s", "jobs", "done", "rej", "p50", "p90", "p99", "max")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %8d %6d %6d %6d %12v %12v %12v %12v\n",
			row.Mechanism, row.Rate, row.Jobs, row.Completed, row.Rejected,
			row.P50.Round(time.Microsecond), row.P90.Round(time.Microsecond),
			row.P99.Round(time.Microsecond), row.Max.Round(time.Microsecond))
	}
	return b.String()
}

// BenchLines renders the result as `go test -bench`-style lines (one per
// row, percentiles attached as extra metrics) so the output can be piped
// through cmd/benchjson into the committed BENCH_pr*.json trajectory.
func (r *ServiceLatencyResult) BenchLines() string {
	var b strings.Builder
	for _, row := range r.Rows {
		if row.Completed == 0 {
			continue
		}
		fmt.Fprintf(&b, "BenchmarkServiceOpenLoop/%s/rate=%d-%d\t%8d\t%.0f ns/op\t%.0f p90-ns/op\t%.0f p99-ns/op\t%.0f max-ns/op\t%d rejected/run\n",
			row.Mechanism, row.Rate, runtime.GOMAXPROCS(0), row.Completed,
			float64(row.P50.Nanoseconds()), float64(row.P90.Nanoseconds()),
			float64(row.P99.Nanoseconds()), float64(row.Max.Nanoseconds()), row.Rejected)
	}
	return b.String()
}

// percentile returns the p-th percentile (0 < p <= 1) of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// RunServiceLatency measures request latency through the resident service
// under an open-loop arrival process: arrivals are scheduled on a fixed
// clock at each target rate regardless of completions, the signature of a
// serving workload (and the regime where queueing delay, not service time,
// dominates the tail).  Each arrival submits an independent fork-join job
// that registers its own reducer through a per-job session, mirroring how
// a multi-tenant deployment uses the service.  The admission policy is
// AdmitReject with the default queue bound, so overload shows up as
// counted rejections rather than as closed-loop throttling that would
// falsify the open-loop premise.
//
// rates is the arrival sweep in jobs/second; nil selects
// DefaultServiceRates.
func RunServiceLatency(cfg Config, rates []int) (*ServiceLatencyResult, error) {
	cfg = cfg.normalize()
	if len(rates) == 0 {
		rates = DefaultServiceRates
	}
	workers := cfg.MaxWorkers
	if n := runtime.GOMAXPROCS(0); workers > n {
		workers = n
	}
	jobs := 400
	leafSpin := 40
	if cfg.Quick {
		jobs = 60
		leafSpin = 10
	}
	res := &ServiceLatencyResult{Workers: workers}
	for _, mech := range reducers.Mechanisms() {
		for _, rate := range rates {
			row, err := runServiceLeg(mech, workers, rate, jobs, leafSpin)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, *row)
		}
	}
	return res, nil
}

// runServiceLeg drives one open-loop leg: jobs arrivals at rate/s against a
// fresh service, returning the latency distribution.
func runServiceLeg(mech reducers.Mechanism, workers, rate, jobs, leafSpin int) (*ServiceLatencyRow, error) {
	eng := reducers.NewEngine(mech, workers, reducers.EngineOptions{})
	rt := sched.New(sched.Config{Workers: workers, Reducers: eng})
	svc := sched.NewService(rt, sched.ServiceConfig{
		Admit:           sched.AdmitReject,
		AdaptiveParking: true,
		RootMerge:       eng.MergeRootDeposit,
		Quiesce:         eng.Quiescent,
	})

	row := &ServiceLatencyRow{Mechanism: mech, Rate: rate, Jobs: jobs}
	tick := time.Second / time.Duration(rate)
	latencies := make([]time.Duration, jobs) // completion - scheduled arrival; 0 = not completed
	var failed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < jobs; i++ {
		arrival := start.Add(time.Duration(i) * tick)
		if d := time.Until(arrival); d > 0 {
			time.Sleep(d)
		}
		i := i
		js := core.NewJobSession(eng)
		h, err := svc.Submit(context.Background(), sched.JobSpec{
			Fn: func(c *sched.Context) {
				sum := reducers.NewAdd[int64](js)
				c.ParallelForGrain(0, 64, 4, func(c *sched.Context, k int) {
					x := uint64(k + 1)
					for s := 0; s < leafSpin; s++ {
						x = xorshift(x)
					}
					sum.Add(c, int64(x&1))
				})
			},
			OnDone: func(error) { js.Retire() },
		})
		if err != nil {
			js.Retire()
			row.Rejected++
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if werr := h.Wait(); werr != nil {
				failed.Add(1)
				return
			}
			latencies[i] = time.Since(arrival)
		}()
	}
	wg.Wait()
	row.Elapsed = time.Since(start)
	row.Failed = int(failed.Load())
	if err := svc.Close(); err != nil {
		return nil, fmt.Errorf("service drain after %s rate=%d: %w", mech, rate, err)
	}
	done := latencies[:0]
	for _, l := range latencies {
		if l > 0 {
			done = append(done, l)
		}
	}
	sort.Slice(done, func(a, b int) bool { return done[a] < done[b] })
	row.Completed = len(done)
	row.P50 = percentile(done, 0.50)
	row.P90 = percentile(done, 0.90)
	row.P99 = percentile(done, 0.99)
	row.Max = percentile(done, 1)
	if row.Completed+row.Rejected+row.Failed != jobs {
		return nil, fmt.Errorf("%s rate=%d: %d completed + %d rejected + %d failed != %d jobs",
			mech, rate, row.Completed, row.Rejected, row.Failed, jobs)
	}
	return row, nil
}
