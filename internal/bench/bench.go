// Package bench contains the experiment harness that regenerates every
// table and figure in the paper's evaluation (Section 8): the add-n /
// min-n / max-n microbenchmarks of Figure 4, the lookup-overhead and
// reduce-overhead studies, the speedup curves, and the PBFS comparison.
//
// The harness measures this reproduction's two reducer mechanisms — the
// memory-mapped Cilk-M mechanism and the hypermap Cilk Plus baseline —
// running on the same scheduler, so the reported ratios isolate the reducer
// mechanism exactly as the paper's experiments do.  Absolute times are not
// comparable with the paper's AMD Opteron numbers; the shapes and ratios
// are what the reproduction targets.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/reducers"
	"repro/internal/sched"
)

// Config controls experiment sizing.
type Config struct {
	// MaxWorkers is the largest worker count used by parallel experiments
	// (the paper uses 16).
	MaxWorkers int
	// Lookups is the number of reducer lookups each microbenchmark
	// performs (the paper uses 1024 million; the default here is far
	// smaller so experiments finish quickly on modest machines).
	Lookups int
	// Repetitions is the number of runs averaged per data point.
	Repetitions int
	// GraphScale scales the synthetic PBFS input graphs relative to the
	// paper's inputs (1.0 reproduces the paper's sizes).
	GraphScale float64
	// Seed seeds workload generation.
	Seed int64
	// Quick marks a smoke-run configuration: experiments with their own
	// sizing sweeps (manyreducers) shrink them rather than inferring
	// smallness from the other knobs.
	Quick bool
	// Exporter, when non-nil, receives the live engine, scheduler and
	// fault-injection metric sources of each experiment as it runs, so a
	// scrape endpoint (cilkbench -metrics-addr) follows the experiment
	// currently executing.  Experiments that rebuild their engine per case
	// re-register under the same source names.
	Exporter *metrics.Exporter
}

// DefaultConfig returns a configuration sized for a laptop-class machine.
func DefaultConfig() Config {
	return Config{
		MaxWorkers:  16,
		Lookups:     2_000_000,
		Repetitions: 3,
		GraphScale:  1.0 / 128,
		Seed:        20120625, // SPAA'12 started June 25, 2012
	}
}

// QuickConfig returns a configuration small enough for unit tests and smoke
// runs.
func QuickConfig() Config {
	return Config{
		MaxWorkers: 4,
		Lookups:    60_000,
		// Three repetitions (each data point keeps the minimum): with a
		// single rep the fig1 shape assertion flakes on noisy shared-CPU
		// hosts.
		Repetitions: 3,
		GraphScale:  1.0 / 2048,
		Seed:        1,
		Quick:       true,
	}
}

// normalize fills in zero fields with defaults.
func (c Config) normalize() Config {
	d := DefaultConfig()
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = d.MaxWorkers
	}
	if c.Lookups <= 0 {
		c.Lookups = d.Lookups
	}
	if c.Repetitions <= 0 {
		c.Repetitions = d.Repetitions
	}
	if c.GraphScale <= 0 {
		c.GraphScale = d.GraphScale
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// ReducerCounts is the sweep of reducer counts used by Figures 5, 7 and 8.
var ReducerCounts = []int{4, 16, 64, 256, 1024}

// FineReducerCounts is the denser sweep used by Figures 6 and 7.
var FineReducerCounts = []int{4, 8, 16, 32, 64, 128, 256, 512, 1024}

// SpeedupWorkerCounts is the worker sweep of Figure 9.
var SpeedupWorkerCounts = []int{1, 2, 4, 8, 16}

// Workload identifies one of the paper's microbenchmarks (Figure 4).
type Workload int

// Microbenchmark workloads.
const (
	WorkloadAdd Workload = iota
	WorkloadMin
	WorkloadMax
	WorkloadAddBase
)

// String returns the workload's name in the paper's notation, without the
// reducer count.
func (w Workload) String() string {
	switch w {
	case WorkloadAdd:
		return "add"
	case WorkloadMin:
		return "min"
	case WorkloadMax:
		return "max"
	case WorkloadAddBase:
		return "add-base"
	default:
		return fmt.Sprintf("workload(%d)", int(w))
	}
}

// WorkloadName formats the paper's "add-n" style name.
func WorkloadName(w Workload, n int) string { return fmt.Sprintf("%s-%d", w, n) }

// xorshift is the cheap PRNG the min/max workloads use to generate values
// without perturbing timing.
func xorshift(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

// session creates a session with the given mechanism and worker count,
// sized for the harness.
func session(m reducers.Mechanism, workers int, timing bool) *core.Session {
	eng := reducers.NewEngine(m, workers, reducers.EngineOptions{Timing: timing})
	return core.NewSessionWithConfig(sched.Config{Workers: workers}, eng)
}

// chunkSize is the number of lookups each parallel-loop iteration performs
// serially.  The paper's microbenchmarks are tight serial loops inside a
// cilk_for; chunking keeps the harness's per-iteration closure overhead
// from masking the per-lookup cost being measured.
const chunkSize = 256

// chunks returns how many chunk iterations cover x lookups.
func chunks(x int) int { return (x + chunkSize - 1) / chunkSize }

// runAddN executes the add-n workload on an existing session: x iterations
// in a parallel loop, each adding 1 to one of n add reducers.
func runAddN(s *core.Session, n, x int) (time.Duration, error) {
	eng := s.Engine()
	sums := make([]*reducers.Add[int64], n)
	for i := range sums {
		sums[i] = reducers.NewAdd[int64](eng)
	}
	nChunks := chunks(x)
	start := time.Now()
	err := s.Run(func(c *sched.Context) {
		c.ParallelFor(0, nChunks, func(c *sched.Context, chunk int) {
			lo := chunk * chunkSize
			hi := lo + chunkSize
			if hi > x {
				hi = x
			}
			idx := lo % n
			for i := lo; i < hi; i++ {
				sums[idx].Add(c, 1)
				idx++
				if idx == n {
					idx = 0
				}
			}
		})
	})
	elapsed := time.Since(start)
	if err != nil {
		return 0, err
	}
	// Sanity: the reducers must hold exactly x increments in total.
	var total int64
	for _, sr := range sums {
		total += sr.Value()
		sr.Close()
	}
	if total != int64(x) {
		return 0, fmt.Errorf("bench: add-%d produced %d, want %d", n, total, x)
	}
	return elapsed, nil
}

// runMinMaxN executes the min-n or max-n workload: x random values are
// processed in a parallel loop, folding each into one of n min/max
// reducers.
func runMinMaxN(s *core.Session, w Workload, n, x int, seed int64) (time.Duration, error) {
	eng := s.Engine()
	var mins []*reducers.Min[uint64]
	var maxs []*reducers.Max[uint64]
	if w == WorkloadMin {
		mins = make([]*reducers.Min[uint64], n)
		for i := range mins {
			mins[i] = reducers.NewMin[uint64](eng)
		}
	} else {
		maxs = make([]*reducers.Max[uint64], n)
		for i := range maxs {
			maxs[i] = reducers.NewMax[uint64](eng)
		}
	}
	base := uint64(seed)*2654435761 + 1
	nChunks := chunks(x)
	start := time.Now()
	err := s.Run(func(c *sched.Context) {
		c.ParallelFor(0, nChunks, func(c *sched.Context, chunk int) {
			lo := chunk * chunkSize
			hi := lo + chunkSize
			if hi > x {
				hi = x
			}
			idx := lo % n
			if w == WorkloadMin {
				for i := lo; i < hi; i++ {
					mins[idx].Update(c, xorshift(base+uint64(i)))
					idx++
					if idx == n {
						idx = 0
					}
				}
			} else {
				for i := lo; i < hi; i++ {
					maxs[idx].Update(c, xorshift(base+uint64(i)))
					idx++
					if idx == n {
						idx = 0
					}
				}
			}
		})
	})
	elapsed := time.Since(start)
	if err != nil {
		return 0, err
	}
	for _, r := range mins {
		if _, ok := r.Value(); !ok && x >= n {
			return 0, fmt.Errorf("bench: min reducer never updated")
		}
		r.Close()
	}
	for _, r := range maxs {
		if _, ok := r.Value(); !ok && x >= n {
			return 0, fmt.Errorf("bench: max reducer never updated")
		}
		r.Close()
	}
	return elapsed, nil
}

// runAddBaseN executes the add-base-n workload of the lookup-overhead study
// (Figure 6): the same loop as add-n but updating a plain array instead of
// reducers, so the difference between the two isolates the lookup cost.
// The paper runs it on a single processor; callers must pass a one-worker
// session to avoid races on the plain array.
func runAddBaseN(s *core.Session, n, x int) (time.Duration, error) {
	type paddedCell struct {
		v int64
		_ [56]byte
	}
	cells := make([]paddedCell, n)
	nChunks := chunks(x)
	start := time.Now()
	err := s.Run(func(c *sched.Context) {
		c.ParallelFor(0, nChunks, func(_ *sched.Context, chunk int) {
			lo := chunk * chunkSize
			hi := lo + chunkSize
			if hi > x {
				hi = x
			}
			idx := lo % n
			for i := lo; i < hi; i++ {
				cells[idx].v++
				idx++
				if idx == n {
					idx = 0
				}
			}
		})
	})
	elapsed := time.Since(start)
	if err != nil {
		return 0, err
	}
	var total int64
	for i := range cells {
		total += cells[i].v
	}
	if total != int64(x) {
		return 0, fmt.Errorf("bench: add-base-%d produced %d, want %d", n, total, x)
	}
	return elapsed, nil
}

// runWorkload dispatches one workload run on a session.
func runWorkload(s *core.Session, w Workload, n, x int, seed int64) (time.Duration, error) {
	switch w {
	case WorkloadAdd:
		return runAddN(s, n, x)
	case WorkloadMin, WorkloadMax:
		return runMinMaxN(s, w, n, x, seed)
	case WorkloadAddBase:
		return runAddBaseN(s, n, x)
	default:
		return 0, fmt.Errorf("bench: unknown workload %v", w)
	}
}

// measure repeats a run and returns timing statistics.
func measure(reps int, run func() (time.Duration, error)) (metrics.Sample, error) {
	var s metrics.Sample
	if reps < 1 {
		reps = 1
	}
	for i := 0; i < reps; i++ {
		d, err := run()
		if err != nil {
			return s, err
		}
		s.AddDuration(d)
	}
	return s, nil
}

// clampWorkers limits a requested worker count to something sane for the
// host (oversubscription beyond 4× the available CPUs mostly measures
// scheduling noise).
func clampWorkers(requested int) int {
	if requested < 1 {
		return 1
	}
	limit := 4 * runtime.NumCPU()
	if limit < 16 {
		limit = 16
	}
	if requested > limit {
		return limit
	}
	return requested
}
