// Package tlmm provides a software model of thread-local memory mapping
// (TLMM), the operating-system facility the paper adds to Linux so that a
// work-stealing runtime can map one region of the shared virtual address
// space privately per worker thread.
//
// The real TLMM-Linux gives every thread its own root page directory whose
// entries are shared for the ordinary part of the address space and private
// for one 512 GB "TLMM region".  Physical pages are named by page
// descriptors (analogous to file descriptors) and three system calls —
// sys_palloc, sys_pfree and sys_pmap — allocate, free, and map them.
//
// Go programs cannot modify page tables, so this package reproduces the
// contract in software: a PhysMem holds the physical pages, an AddressSpace
// holds the shared mappings and per-thread root directories, and each
// ThreadVM can remap its private TLMM slice independently while reads and
// writes through shared addresses observe a single common mapping.  Every
// operation that would cross into the kernel on TLMM-Linux increments a
// kernel-crossing counter so that higher layers can account for remapping
// overhead the way the paper amortises it against steals.
package tlmm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the size of one page in bytes, matching the x86-64 4 KB pages
// used by TLMM-Linux.
const PageSize = 4096

// Address-space layout constants.  The paper reserves one entry of the
// 512-entry root page directory for the TLMM region, i.e. 512 GB of a
// 256 TB address space.  The model keeps the same proportions but expresses
// them directly as virtual addresses.
const (
	// TLMMBase is the lowest virtual address of the TLMM region.
	TLMMBase uintptr = 0x7f00_0000_0000
	// TLMMSize is the size of the TLMM region in bytes (512 GB).
	TLMMSize uintptr = 512 << 30
	// TLMMEnd is one past the last byte of the TLMM region.
	TLMMEnd = TLMMBase + TLMMSize

	// SharedBase is the lowest virtual address of the modelled shared
	// region (heap and data segments).
	SharedBase uintptr = 0x0000_1000_0000
	// SharedSize is the size of the modelled shared region.
	SharedSize uintptr = 64 << 30
	// SharedEnd is one past the last byte of the shared region.
	SharedEnd = SharedBase + SharedSize
)

// PD is a page descriptor: a process-wide name for a physical page, in the
// same way a file descriptor names an open file.  Any worker can map a page
// into its TLMM region if it knows the page's descriptor.
type PD int64

// PDNull is the reserved descriptor value indicating "no page".  Passing
// PDNull to Pmap removes the mapping at the corresponding slot.
const PDNull PD = -1

// Errors returned by the TLMM model.
var (
	ErrBadDescriptor  = errors.New("tlmm: invalid page descriptor")
	ErrFreedPage      = errors.New("tlmm: page descriptor already freed")
	ErrUnmapped       = errors.New("tlmm: access to unmapped address")
	ErrOutOfRange     = errors.New("tlmm: address outside modelled regions")
	ErrMisaligned     = errors.New("tlmm: base address not page aligned")
	ErrRegionOverflow = errors.New("tlmm: mapping exceeds TLMM region")
	ErrPageInUse      = errors.New("tlmm: page still mapped by a thread")
	ErrCrossesPage    = errors.New("tlmm: access crosses a page boundary")
)

// Page is one physical page of memory.  Thread mappings hold its address
// and refs is maintained atomically through that shared identity, so the
// struct must never be copied by value.
//
//cilkvet:nocopy
type Page struct {
	pd   PD
	data [PageSize]byte
	// refs counts how many thread mappings currently reference the page.
	refs int32
	// freed records whether the descriptor has been released.
	freed bool
}

// Descriptor returns the page descriptor that names this page.
func (p *Page) Descriptor() PD { return p.pd }

// Data exposes the page contents.  Callers must not retain the slice past
// the page's lifetime.
func (p *Page) Data() []byte { return p.data[:] }

// Stats aggregates the cost-model counters maintained by the model.  The
// counters correspond to the costs the paper reasons about: kernel
// crossings for palloc/pfree/pmap, page-table synchronisation events when a
// shared root-directory entry changes, and soft page faults taken on first
// access to a freshly mapped page.
type Stats struct {
	KernelCrossings int64
	PallocCalls     int64
	PfreeCalls      int64
	PmapCalls       int64
	PagesMapped     int64
	PagesUnmapped   int64
	RootSyncs       int64
	SoftFaults      int64
	SharedPages     int64
	TLMMPages       int64
}

// PhysMem is the modelled physical memory: a store of pages addressed by
// page descriptor.
type PhysMem struct {
	mu     sync.Mutex
	pages  map[PD]*Page
	nextPD PD

	kernelCrossings atomic.Int64
	pallocCalls     atomic.Int64
	pfreeCalls      atomic.Int64
	pmapCalls       atomic.Int64
	pagesMapped     atomic.Int64
	pagesUnmapped   atomic.Int64
	rootSyncs       atomic.Int64
	softFaults      atomic.Int64
}

// NewPhysMem returns an empty physical-memory model.
func NewPhysMem() *PhysMem {
	return &PhysMem{pages: make(map[PD]*Page)}
}

// Palloc models sys_palloc: it allocates one physical page and returns its
// descriptor.
func (pm *PhysMem) Palloc() PD {
	pm.kernelCrossings.Add(1)
	pm.pallocCalls.Add(1)
	pm.mu.Lock()
	defer pm.mu.Unlock()
	pd := pm.nextPD
	pm.nextPD++
	pm.pages[pd] = &Page{pd: pd}
	return pd
}

// PallocN allocates n pages and returns their descriptors.  It counts as a
// single kernel crossing, modelling a batched allocation.
func (pm *PhysMem) PallocN(n int) []PD {
	if n <= 0 {
		return nil
	}
	pm.kernelCrossings.Add(1)
	pm.pallocCalls.Add(1)
	pm.mu.Lock()
	defer pm.mu.Unlock()
	pds := make([]PD, n)
	for i := range pds {
		pd := pm.nextPD
		pm.nextPD++
		pm.pages[pd] = &Page{pd: pd}
		pds[i] = pd
	}
	return pds
}

// Pfree models sys_pfree: it releases a page descriptor and its physical
// page.  Freeing a page that is still mapped by some thread is an error, as
// is freeing an unknown or already-freed descriptor.
func (pm *PhysMem) Pfree(pd PD) error {
	pm.kernelCrossings.Add(1)
	pm.pfreeCalls.Add(1)
	pm.mu.Lock()
	defer pm.mu.Unlock()
	pg, ok := pm.pages[pd]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadDescriptor, pd)
	}
	if pg.freed {
		return fmt.Errorf("%w: %d", ErrFreedPage, pd)
	}
	if atomic.LoadInt32(&pg.refs) != 0 {
		return fmt.Errorf("%w: %d", ErrPageInUse, pd)
	}
	pg.freed = true
	delete(pm.pages, pd)
	return nil
}

// page looks up a live page by descriptor.
func (pm *PhysMem) page(pd PD) (*Page, error) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	pg, ok := pm.pages[pd]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadDescriptor, pd)
	}
	if pg.freed {
		return nil, fmt.Errorf("%w: %d", ErrFreedPage, pd)
	}
	return pg, nil
}

// LivePages reports the number of pages currently allocated.
func (pm *PhysMem) LivePages() int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return len(pm.pages)
}

// Stats returns a snapshot of the accumulated cost counters.
func (pm *PhysMem) Stats() Stats {
	return Stats{
		KernelCrossings: pm.kernelCrossings.Load(),
		PallocCalls:     pm.pallocCalls.Load(),
		PfreeCalls:      pm.pfreeCalls.Load(),
		PmapCalls:       pm.pmapCalls.Load(),
		PagesMapped:     pm.pagesMapped.Load(),
		PagesUnmapped:   pm.pagesUnmapped.Load(),
		RootSyncs:       pm.rootSyncs.Load(),
		SoftFaults:      pm.softFaults.Load(),
	}
}

// ResetStats zeroes the cost counters.
func (pm *PhysMem) ResetStats() {
	pm.kernelCrossings.Store(0)
	pm.pallocCalls.Store(0)
	pm.pfreeCalls.Store(0)
	pm.pmapCalls.Store(0)
	pm.pagesMapped.Store(0)
	pm.pagesUnmapped.Store(0)
	pm.rootSyncs.Store(0)
	pm.softFaults.Store(0)
}
