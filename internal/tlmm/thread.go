package tlmm

import (
	"fmt"
	"sync"
)

// ThreadVM is the per-worker virtual-memory state: a private root page
// directory whose TLMM subtree belongs exclusively to this thread while the
// remaining entries alias the process-wide shared directories.
type ThreadVM struct {
	as *AddressSpace
	id int

	mu   sync.Mutex
	root directory
	// tlmmMapped records, by page-aligned TLMM offset, which descriptors
	// this thread currently maps, so mappings can be enumerated and
	// published to other workers (the paper's "mapping strategy" for view
	// transferal) and so that unmapping maintains reference counts.
	tlmmMapped map[uintptr]PD
}

// ID returns the thread's index within its address space.
func (t *ThreadVM) ID() int { return t.id }

// AddressSpace returns the owning address space.
func (t *ThreadVM) AddressSpace() *AddressSpace { return t.as }

// Pmap models sys_pmap: it maps the pages named by pds at consecutive
// page-aligned virtual addresses starting at base inside this thread's TLMM
// region.  A PDNull entry removes the mapping at its slot.  The whole call
// counts as one kernel crossing regardless of how many descriptors are
// passed, matching the batched interface the paper relies on to amortise
// mapping costs against steals.
func (t *ThreadVM) Pmap(base uintptr, pds []PD) error {
	if base%PageSize != 0 {
		return fmt.Errorf("%w: %#x", ErrMisaligned, base)
	}
	if base < TLMMBase || base+uintptr(len(pds))*PageSize > TLMMEnd {
		return fmt.Errorf("%w: base %#x count %d", ErrRegionOverflow, base, len(pds))
	}
	t.as.Phys.kernelCrossings.Add(1)
	t.as.Phys.pmapCalls.Add(1)

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tlmmMapped == nil {
		t.tlmmMapped = make(map[uintptr]PD)
	}
	for i, pd := range pds {
		va := base + uintptr(i)*PageSize
		if pd == PDNull {
			if err := t.unmapLocked(va); err != nil {
				return err
			}
			continue
		}
		pg, err := t.as.Phys.page(pd)
		if err != nil {
			return err
		}
		if err := t.unmapLocked(va); err != nil {
			return err
		}
		leaf, li := t.ensureTLMMLocked(va)
		leaf.entries[li] = pte{page: pg}
		incRef(pg)
		t.tlmmMapped[va] = pd
		t.as.Phys.pagesMapped.Add(1)
		t.as.Phys.softFaults.Add(1)
	}
	return nil
}

// unmapLocked removes any existing mapping at va in the TLMM region.
func (t *ThreadVM) unmapLocked(va uintptr) error {
	pd, ok := t.tlmmMapped[va]
	if !ok {
		return nil
	}
	leaf, li, err := t.findTLMMLeafLocked(va)
	if err != nil {
		return err
	}
	if pg := leaf.entries[li].page; pg != nil {
		decRef(pg)
		t.as.Phys.pagesUnmapped.Add(1)
	}
	leaf.entries[li] = pte{}
	delete(t.tlmmMapped, va)
	_ = pd
	return nil
}

// ensureTLMMLocked walks (creating as needed) this thread's private TLMM
// subtree for va and returns the leaf directory and leaf index.
func (t *ThreadVM) ensureTLMMLocked(va uintptr) (*directory, int) {
	idx, _ := walkIndices(va)
	dir := &t.root
	for level := 0; level < pageTableLevels-1; level++ {
		e := &dir.entries[idx[level]]
		if e.dir == nil {
			e.dir = &directory{}
		}
		dir = e.dir
	}
	return dir, idx[pageTableLevels-1]
}

// findTLMMLeafLocked walks the private subtree without creating directories.
func (t *ThreadVM) findTLMMLeafLocked(va uintptr) (*directory, int, error) {
	idx, _ := walkIndices(va)
	dir := &t.root
	for level := 0; level < pageTableLevels-1; level++ {
		e := dir.entries[idx[level]]
		if e.dir == nil {
			return nil, 0, fmt.Errorf("%w: %#x", ErrUnmapped, va)
		}
		dir = e.dir
	}
	return dir, idx[pageTableLevels-1], nil
}

// Mappings returns a copy of the (virtual address → page descriptor) map of
// this thread's TLMM region.  Publishing these descriptors is how one
// worker would let another map its SPA pages under the paper's alternative
// "mapping strategy" for view transferal.
func (t *ThreadVM) Mappings() map[uintptr]PD {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[uintptr]PD, len(t.tlmmMapped))
	for va, pd := range t.tlmmMapped {
		out[va] = pd
	}
	return out
}

// MappedPages reports how many TLMM pages this thread currently maps.
func (t *ThreadVM) MappedPages() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.tlmmMapped)
}

// UnmapAll removes every TLMM mapping held by this thread.
func (t *ThreadVM) UnmapAll() error {
	t.mu.Lock()
	vas := make([]uintptr, 0, len(t.tlmmMapped))
	for va := range t.tlmmMapped {
		vas = append(vas, va)
	}
	t.mu.Unlock()
	if len(vas) == 0 {
		return nil
	}
	t.as.Phys.kernelCrossings.Add(1)
	t.as.Phys.pmapCalls.Add(1)
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, va := range vas {
		if err := t.unmapLocked(va); err != nil {
			return err
		}
	}
	return nil
}

// resolve translates a virtual address in this thread's view of the address
// space into a physical page and offset.
func (t *ThreadVM) resolve(va uintptr) (*Page, uintptr, error) {
	switch {
	case va >= TLMMBase && va < TLMMEnd:
		idx, off := walkIndices(va)
		t.mu.Lock()
		dir := &t.root
		for level := 0; level < pageTableLevels-1; level++ {
			e := dir.entries[idx[level]]
			if e.dir == nil {
				t.mu.Unlock()
				return nil, 0, fmt.Errorf("%w: %#x", ErrUnmapped, va)
			}
			dir = e.dir
		}
		pg := dir.entries[idx[pageTableLevels-1]].page
		t.mu.Unlock()
		if pg == nil {
			return nil, 0, fmt.Errorf("%w: %#x", ErrUnmapped, va)
		}
		return pg, off, nil
	case va >= SharedBase && va < SharedEnd:
		return t.as.resolveShared(va)
	default:
		return nil, 0, fmt.Errorf("%w: %#x", ErrOutOfRange, va)
	}
}

// Read copies len(buf) bytes from virtual address va into buf.  The access
// must not cross a page boundary, mirroring the aligned word accesses the
// runtime performs on SPA slots.
func (t *ThreadVM) Read(va uintptr, buf []byte) error {
	if crossesPage(va, len(buf)) {
		return fmt.Errorf("%w: %#x+%d", ErrCrossesPage, va, len(buf))
	}
	pg, off, err := t.resolve(va)
	if err != nil {
		return err
	}
	copy(buf, pg.data[off:off+uintptr(len(buf))])
	return nil
}

// Write copies buf into virtual address va.  The access must not cross a
// page boundary.
func (t *ThreadVM) Write(va uintptr, buf []byte) error {
	if crossesPage(va, len(buf)) {
		return fmt.Errorf("%w: %#x+%d", ErrCrossesPage, va, len(buf))
	}
	pg, off, err := t.resolve(va)
	if err != nil {
		return err
	}
	copy(pg.data[off:off+uintptr(len(buf))], buf)
	return nil
}

// ReadWord reads an 8-byte little-endian word at va.
func (t *ThreadVM) ReadWord(va uintptr) (uint64, error) {
	var buf [8]byte
	if err := t.Read(va, buf[:]); err != nil {
		return 0, err
	}
	return leUint64(buf[:]), nil
}

// WriteWord writes an 8-byte little-endian word at va.
func (t *ThreadVM) WriteWord(va uintptr, v uint64) error {
	var buf [8]byte
	lePutUint64(buf[:], v)
	return t.Write(va, buf[:])
}

func crossesPage(va uintptr, n int) bool {
	if n <= 0 {
		return false
	}
	return (va / PageSize) != ((va + uintptr(n) - 1) / PageSize)
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func lePutUint64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
