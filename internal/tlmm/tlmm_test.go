package tlmm

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPallocReturnsDistinctDescriptors(t *testing.T) {
	pm := NewPhysMem()
	seen := make(map[PD]bool)
	for i := 0; i < 100; i++ {
		pd := pm.Palloc()
		if seen[pd] {
			t.Fatalf("descriptor %d returned twice", pd)
		}
		seen[pd] = true
	}
	if got := pm.LivePages(); got != 100 {
		t.Fatalf("LivePages = %d, want 100", got)
	}
}

func TestPallocNBatch(t *testing.T) {
	pm := NewPhysMem()
	pds := pm.PallocN(10)
	if len(pds) != 10 {
		t.Fatalf("PallocN returned %d descriptors, want 10", len(pds))
	}
	st := pm.Stats()
	if st.KernelCrossings != 1 {
		t.Fatalf("batched PallocN should cost one kernel crossing, got %d", st.KernelCrossings)
	}
	if pm.PallocN(0) != nil {
		t.Fatal("PallocN(0) should return nil")
	}
}

func TestPfreeErrors(t *testing.T) {
	pm := NewPhysMem()
	if err := pm.Pfree(PD(42)); !errors.Is(err, ErrBadDescriptor) {
		t.Fatalf("Pfree of unknown descriptor: got %v, want ErrBadDescriptor", err)
	}
	pd := pm.Palloc()
	if err := pm.Pfree(pd); err != nil {
		t.Fatalf("Pfree: %v", err)
	}
	if err := pm.Pfree(pd); !errors.Is(err, ErrBadDescriptor) {
		t.Fatalf("double Pfree: got %v, want ErrBadDescriptor", err)
	}
}

func TestPfreeMappedPageFails(t *testing.T) {
	as := NewAddressSpace(nil)
	tvm := as.NewThread()
	pd := as.Phys.Palloc()
	if err := tvm.Pmap(TLMMBase, []PD{pd}); err != nil {
		t.Fatalf("Pmap: %v", err)
	}
	if err := as.Phys.Pfree(pd); !errors.Is(err, ErrPageInUse) {
		t.Fatalf("Pfree of mapped page: got %v, want ErrPageInUse", err)
	}
	if err := tvm.Pmap(TLMMBase, []PD{PDNull}); err != nil {
		t.Fatalf("unmap: %v", err)
	}
	if err := as.Phys.Pfree(pd); err != nil {
		t.Fatalf("Pfree after unmap: %v", err)
	}
}

func TestPmapValidation(t *testing.T) {
	as := NewAddressSpace(nil)
	tvm := as.NewThread()
	pd := as.Phys.Palloc()
	if err := tvm.Pmap(TLMMBase+1, []PD{pd}); !errors.Is(err, ErrMisaligned) {
		t.Fatalf("misaligned Pmap: got %v, want ErrMisaligned", err)
	}
	if err := tvm.Pmap(SharedBase, []PD{pd}); !errors.Is(err, ErrRegionOverflow) {
		t.Fatalf("Pmap outside TLMM region: got %v, want ErrRegionOverflow", err)
	}
	if err := tvm.Pmap(TLMMEnd-PageSize, []PD{pd, pd}); !errors.Is(err, ErrRegionOverflow) {
		t.Fatalf("Pmap crossing region end: got %v, want ErrRegionOverflow", err)
	}
	if err := tvm.Pmap(TLMMBase, []PD{PD(999)}); !errors.Is(err, ErrBadDescriptor) {
		t.Fatalf("Pmap of bad descriptor: got %v, want ErrBadDescriptor", err)
	}
}

func TestThreadsSeeIndependentTLMMMappings(t *testing.T) {
	// Reproduces the scenario of the paper's Figure 3: the same TLMM
	// virtual address maps to different physical pages in different
	// threads, while the shared region is common.
	as := NewAddressSpace(nil)
	t0 := as.NewThread()
	t1 := as.NewThread()

	pd0 := as.Phys.Palloc()
	pd1 := as.Phys.Palloc()
	va := TLMMBase

	if err := t0.Pmap(va, []PD{pd0}); err != nil {
		t.Fatalf("t0 Pmap: %v", err)
	}
	if err := t1.Pmap(va, []PD{pd1}); err != nil {
		t.Fatalf("t1 Pmap: %v", err)
	}
	if err := t0.WriteWord(va, 0xAAAA); err != nil {
		t.Fatalf("t0 write: %v", err)
	}
	if err := t1.WriteWord(va, 0xBBBB); err != nil {
		t.Fatalf("t1 write: %v", err)
	}
	v0, err := t0.ReadWord(va)
	if err != nil {
		t.Fatalf("t0 read: %v", err)
	}
	v1, err := t1.ReadWord(va)
	if err != nil {
		t.Fatalf("t1 read: %v", err)
	}
	if v0 != 0xAAAA || v1 != 0xBBBB {
		t.Fatalf("TLMM isolation violated: t0=%#x t1=%#x", v0, v1)
	}
}

func TestSharedRegionVisibleToAllThreads(t *testing.T) {
	as := NewAddressSpace(nil)
	t0 := as.NewThread()
	t1 := as.NewThread()
	pd := as.Phys.Palloc()
	va := SharedBase + 16*PageSize
	if err := as.MapShared(va, pd); err != nil {
		t.Fatalf("MapShared: %v", err)
	}
	if err := t0.WriteWord(va+8, 12345); err != nil {
		t.Fatalf("t0 write: %v", err)
	}
	got, err := t1.ReadWord(va + 8)
	if err != nil {
		t.Fatalf("t1 read: %v", err)
	}
	if got != 12345 {
		t.Fatalf("shared write not visible: got %d, want 12345", got)
	}
	// A thread created after the mapping also sees it.
	t2 := as.NewThread()
	got, err = t2.ReadWord(va + 8)
	if err != nil {
		t.Fatalf("t2 read: %v", err)
	}
	if got != 12345 {
		t.Fatalf("late thread does not see shared mapping: got %d", got)
	}
}

func TestViewTransferalByRemapping(t *testing.T) {
	// A worker can publish its TLMM page descriptors and another worker
	// can map the same physical pages, observing the first worker's data
	// (the "mapping strategy" described in Section 7).
	as := NewAddressSpace(nil)
	w1 := as.NewThread()
	w2 := as.NewThread()
	pd := as.Phys.Palloc()
	va := TLMMBase + 4*PageSize
	if err := w1.Pmap(va, []PD{pd}); err != nil {
		t.Fatalf("w1 Pmap: %v", err)
	}
	if err := w1.WriteWord(va, 777); err != nil {
		t.Fatalf("w1 write: %v", err)
	}
	published := w1.Mappings()
	gotPD, ok := published[va]
	if !ok {
		t.Fatalf("mapping at %#x not published", va)
	}
	if err := w2.Pmap(va, []PD{gotPD}); err != nil {
		t.Fatalf("w2 Pmap: %v", err)
	}
	v, err := w2.ReadWord(va)
	if err != nil {
		t.Fatalf("w2 read: %v", err)
	}
	if v != 777 {
		t.Fatalf("w2 sees %d at remapped page, want 777", v)
	}
}

func TestPmapRemapReplacesExistingMapping(t *testing.T) {
	as := NewAddressSpace(nil)
	tvm := as.NewThread()
	pdA := as.Phys.Palloc()
	pdB := as.Phys.Palloc()
	va := TLMMBase
	if err := tvm.Pmap(va, []PD{pdA}); err != nil {
		t.Fatalf("Pmap A: %v", err)
	}
	if err := tvm.WriteWord(va, 1); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := tvm.Pmap(va, []PD{pdB}); err != nil {
		t.Fatalf("Pmap B: %v", err)
	}
	v, err := tvm.ReadWord(va)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if v != 0 {
		t.Fatalf("fresh page should read zero, got %d", v)
	}
	// pdA should be freeable now that it is unmapped.
	if err := as.Phys.Pfree(pdA); err != nil {
		t.Fatalf("Pfree A after remap: %v", err)
	}
}

func TestUnmapAll(t *testing.T) {
	as := NewAddressSpace(nil)
	tvm := as.NewThread()
	pds := as.Phys.PallocN(8)
	if err := tvm.Pmap(TLMMBase, pds); err != nil {
		t.Fatalf("Pmap: %v", err)
	}
	if got := tvm.MappedPages(); got != 8 {
		t.Fatalf("MappedPages = %d, want 8", got)
	}
	if err := tvm.UnmapAll(); err != nil {
		t.Fatalf("UnmapAll: %v", err)
	}
	if got := tvm.MappedPages(); got != 0 {
		t.Fatalf("MappedPages after UnmapAll = %d, want 0", got)
	}
	for _, pd := range pds {
		if err := as.Phys.Pfree(pd); err != nil {
			t.Fatalf("Pfree %d: %v", pd, err)
		}
	}
	if err := tvm.UnmapAll(); err != nil {
		t.Fatalf("UnmapAll on empty region: %v", err)
	}
}

func TestAccessErrors(t *testing.T) {
	as := NewAddressSpace(nil)
	tvm := as.NewThread()
	if _, err := tvm.ReadWord(TLMMBase); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("read of unmapped TLMM address: got %v, want ErrUnmapped", err)
	}
	if _, err := tvm.ReadWord(SharedBase); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("read of unmapped shared address: got %v, want ErrUnmapped", err)
	}
	if _, err := tvm.ReadWord(0x10); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read outside modelled regions: got %v, want ErrOutOfRange", err)
	}
	pd := as.Phys.Palloc()
	if err := tvm.Pmap(TLMMBase, []PD{pd}); err != nil {
		t.Fatalf("Pmap: %v", err)
	}
	buf := make([]byte, 16)
	if err := tvm.Read(TLMMBase+PageSize-8, buf); !errors.Is(err, ErrCrossesPage) {
		t.Fatalf("page-crossing read: got %v, want ErrCrossesPage", err)
	}
	if err := tvm.Write(TLMMBase+PageSize-8, buf); !errors.Is(err, ErrCrossesPage) {
		t.Fatalf("page-crossing write: got %v, want ErrCrossesPage", err)
	}
}

func TestKernelCrossingAccounting(t *testing.T) {
	as := NewAddressSpace(nil)
	tvm := as.NewThread()
	as.Phys.ResetStats()
	pds := as.Phys.PallocN(4)                                    // 1 crossing
	_ = tvm.Pmap(TLMMBase, pds)                                  // 1 crossing
	_ = tvm.Pmap(TLMMBase, []PD{PDNull, PDNull, PDNull, PDNull}) // 1 crossing
	for _, pd := range pds {
		_ = as.Phys.Pfree(pd) // 4 crossings
	}
	st := as.Phys.Stats()
	if st.KernelCrossings != 7 {
		t.Fatalf("KernelCrossings = %d, want 7", st.KernelCrossings)
	}
	if st.PmapCalls != 2 {
		t.Fatalf("PmapCalls = %d, want 2", st.PmapCalls)
	}
	if st.PagesMapped != 4 || st.PagesUnmapped != 4 {
		t.Fatalf("mapped/unmapped = %d/%d, want 4/4", st.PagesMapped, st.PagesUnmapped)
	}
}

func TestWalkIndicesRoundTrip(t *testing.T) {
	f := func(va uint64) bool {
		va &= (1 << 48) - 1 // canonical 48-bit addresses
		idx, off := walkIndices(uintptr(va))
		recon := off
		shift := uint(offsetBits)
		for level := pageTableLevels - 1; level >= 0; level-- {
			recon |= uintptr(idx[level]) << shift
			shift += levelBits
		}
		return recon == uintptr(va)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteWordRoundTrip(t *testing.T) {
	as := NewAddressSpace(nil)
	tvm := as.NewThread()
	pd := as.Phys.Palloc()
	if err := tvm.Pmap(TLMMBase, []PD{pd}); err != nil {
		t.Fatalf("Pmap: %v", err)
	}
	f := func(slot uint16, v uint64) bool {
		off := uintptr(slot%512) * 8
		if err := tvm.WriteWord(TLMMBase+off, v); err != nil {
			return false
		}
		got, err := tvm.ReadWord(TLMMBase + off)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionLayoutEndsGrowTowardEachOther(t *testing.T) {
	l := NewRegionLayout()
	r1, err := l.ReserveReducerPages(2)
	if err != nil {
		t.Fatalf("ReserveReducerPages: %v", err)
	}
	if r1 != TLMMBase {
		t.Fatalf("first reducer reservation at %#x, want %#x", r1, TLMMBase)
	}
	r2, err := l.ReserveReducerPages(3)
	if err != nil {
		t.Fatalf("ReserveReducerPages: %v", err)
	}
	if r2 != TLMMBase+2*PageSize {
		t.Fatalf("second reducer reservation at %#x, want %#x", r2, TLMMBase+2*PageSize)
	}
	s1, err := l.ReserveStackPages(4)
	if err != nil {
		t.Fatalf("ReserveStackPages: %v", err)
	}
	if s1 != TLMMEnd-4*PageSize {
		t.Fatalf("first stack reservation at %#x, want %#x", s1, TLMMEnd-4*PageSize)
	}
	if got := l.ReducerBytesReserved(); got != 5*PageSize {
		t.Fatalf("ReducerBytesReserved = %d, want %d", got, 5*PageSize)
	}
	if got := l.StackBytesReserved(); got != 4*PageSize {
		t.Fatalf("StackBytesReserved = %d, want %d", got, 4*PageSize)
	}
	if n := len(l.ReducerReservations()); n != 2 {
		t.Fatalf("ReducerReservations = %d, want 2", n)
	}
	if n := len(l.StackReservations()); n != 1 {
		t.Fatalf("StackReservations = %d, want 1", n)
	}
	if _, err := l.ReserveReducerPages(0); err == nil {
		t.Fatal("ReserveReducerPages(0) should fail")
	}
	if _, err := l.ReserveStackPages(-1); err == nil {
		t.Fatal("ReserveStackPages(-1) should fail")
	}
}

func TestRootSyncOnNewSharedSubtree(t *testing.T) {
	as := NewAddressSpace(nil)
	_ = as.NewThread()
	_ = as.NewThread()
	as.Phys.ResetStats()
	pd := as.Phys.Palloc()
	if err := as.MapShared(SharedBase, pd); err != nil {
		t.Fatalf("MapShared: %v", err)
	}
	st := as.Phys.Stats()
	if st.RootSyncs == 0 {
		t.Fatal("expected a root synchronisation when a new shared root entry is populated")
	}
	if as.Threads() != 2 {
		t.Fatalf("Threads = %d, want 2", as.Threads())
	}
}

func TestMapSharedValidation(t *testing.T) {
	as := NewAddressSpace(nil)
	pd := as.Phys.Palloc()
	if err := as.MapShared(SharedBase+1, pd); !errors.Is(err, ErrMisaligned) {
		t.Fatalf("misaligned MapShared: got %v, want ErrMisaligned", err)
	}
	if err := as.MapShared(TLMMBase, pd); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("MapShared in TLMM region: got %v, want ErrOutOfRange", err)
	}
	if err := as.MapShared(SharedBase, PD(1234)); !errors.Is(err, ErrBadDescriptor) {
		t.Fatalf("MapShared of bad descriptor: got %v, want ErrBadDescriptor", err)
	}
}
