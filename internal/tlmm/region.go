package tlmm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// RegionLayout manages the split of the TLMM region that the paper
// describes: the cactus stack is allocated at the highest TLMM addresses and
// grows downwards, while the space reserved for reducers starts at the
// lowest TLMM address and grows upwards.  Because the region is 512 GB the
// two ends never meet in practice; the model still checks for collision.
//
// The layout itself is a process-wide agreement: every worker must use the
// same virtual addresses for the same reducer pages, so reservations are
// made once, globally, and each worker then maps its own physical page at
// the reserved address.
type RegionLayout struct {
	mu sync.Mutex
	// reducerNext is the next virtual address to hand out at the low end.
	reducerNext uintptr
	// stackNext is the next virtual address to hand out at the high end
	// (exclusive: the reservation is [stackNext-size, stackNext)).
	stackNext uintptr
	// reservedReducer records reducer-end reservations for introspection.
	reservedReducer []Reservation
	// reservedStack records stack-end reservations.
	reservedStack []Reservation
}

// Reservation is one address-range reservation inside the TLMM region.
type Reservation struct {
	Base  uintptr
	Pages int
}

// End returns one past the last byte of the reservation.
func (r Reservation) End() uintptr { return r.Base + uintptr(r.Pages)*PageSize }

// NewRegionLayout returns a layout covering the whole TLMM region.
func NewRegionLayout() *RegionLayout {
	return &RegionLayout{
		reducerNext: TLMMBase,
		stackNext:   TLMMEnd,
	}
}

// ReserveReducerPages reserves n pages at the low (reducer) end of the TLMM
// region and returns the base virtual address of the reservation.  The same
// address is valid in every worker's TLMM region; each worker maps its own
// physical pages there.
func (l *RegionLayout) ReserveReducerPages(n int) (uintptr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("tlmm: reservation of %d pages", n)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	base := l.reducerNext
	end := base + uintptr(n)*PageSize
	if end > l.stackNext {
		return 0, fmt.Errorf("%w: reducer end %#x would cross stack end %#x",
			ErrRegionOverflow, end, l.stackNext)
	}
	l.reducerNext = end
	l.reservedReducer = append(l.reservedReducer, Reservation{Base: base, Pages: n})
	return base, nil
}

// ReserveStackPages reserves n pages at the high (cactus-stack) end of the
// TLMM region, growing downwards, and returns the base virtual address.
func (l *RegionLayout) ReserveStackPages(n int) (uintptr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("tlmm: reservation of %d pages", n)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	base := l.stackNext - uintptr(n)*PageSize
	if base < l.reducerNext {
		return 0, fmt.Errorf("%w: stack end %#x would cross reducer end %#x",
			ErrRegionOverflow, base, l.reducerNext)
	}
	l.stackNext = base
	l.reservedStack = append(l.reservedStack, Reservation{Base: base, Pages: n})
	return base, nil
}

// ReducerReservations returns a copy of the reducer-end reservations.
func (l *RegionLayout) ReducerReservations() []Reservation {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Reservation, len(l.reservedReducer))
	copy(out, l.reservedReducer)
	return out
}

// StackReservations returns a copy of the stack-end reservations.
func (l *RegionLayout) StackReservations() []Reservation {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Reservation, len(l.reservedStack))
	copy(out, l.reservedStack)
	return out
}

// ReducerBytesReserved reports the total bytes reserved at the reducer end.
func (l *RegionLayout) ReducerBytesReserved() uintptr {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reducerNext - TLMMBase
}

// StackBytesReserved reports the total bytes reserved at the stack end.
func (l *RegionLayout) StackBytesReserved() uintptr {
	l.mu.Lock()
	defer l.mu.Unlock()
	return TLMMEnd - l.stackNext
}

// RegionPageTable is the RCU-published view of the reducer end of a region
// layout: entry i is the virtual base address reserved for SPA page index i.
// A single grower appends reservations with Publish while every worker reads
// concurrently with Base, so registration-driven growth never makes a
// lookup or another worker's page mapping wait on a lock.  The published
// slice is immutable; Publish copies and swaps the pointer atomically.
type RegionPageTable struct {
	bases atomic.Pointer[[]uintptr]
}

// Pages returns the number of published page reservations.  Lock-free.
func (t *RegionPageTable) Pages() int {
	if b := t.bases.Load(); b != nil {
		return len(*b)
	}
	return 0
}

// Base returns the reserved virtual base address of SPA page index pi, or
// false if no reservation has been published for it yet.  Lock-free.
func (t *RegionPageTable) Base(pi int) (uintptr, bool) {
	b := t.bases.Load()
	if b == nil || pi < 0 || pi >= len(*b) {
		return 0, false
	}
	return (*b)[pi], true
}

// Publish appends the reservation bases for the next pages and swaps in the
// grown table.  Callers must serialise Publish among themselves (the
// reducer directory's grow path already does); readers need no coordination.
func (t *RegionPageTable) Publish(newBases ...uintptr) {
	cur := t.bases.Load()
	var old []uintptr
	if cur != nil {
		old = *cur
	}
	grown := make([]uintptr, len(old)+len(newBases))
	copy(grown, old)
	copy(grown[len(old):], newBases)
	t.bases.Store(&grown)
}
