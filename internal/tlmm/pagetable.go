package tlmm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// The x86-64 four-level page-table geometry modelled by the package: each
// level indexes 9 bits of the virtual address, each directory holds 512
// entries, and the bottom 12 bits are the page offset.
const (
	entriesPerDirectory = 512
	levelBits           = 9
	offsetBits          = 12
	pageTableLevels     = 4
)

// pte is a page-table entry.  At intermediate levels it points to a child
// directory; at the leaf level it points to a physical page.
type pte struct {
	dir  *directory
	page *Page
}

// directory is one page directory (any level).
type directory struct {
	entries [entriesPerDirectory]pte
}

// walkIndices decomposes a virtual address into its four directory indices
// and the in-page offset, from the root level (index 0) down to the leaf
// level (index 3).
func walkIndices(va uintptr) (idx [pageTableLevels]int, offset uintptr) {
	offset = va & (PageSize - 1)
	va >>= offsetBits
	for level := pageTableLevels - 1; level >= 0; level-- {
		idx[level] = int(va & (entriesPerDirectory - 1))
		va >>= levelBits
	}
	return idx, offset
}

// rootIndex returns only the root-directory index of a virtual address.
func rootIndex(va uintptr) int {
	idx, _ := walkIndices(va)
	return idx[0]
}

// tlmmRootIndex is the root-directory slot reserved for the TLMM region.
var tlmmRootIndex = rootIndex(TLMMBase)

// AddressSpace models the virtual address space of one process running on
// TLMM-Linux.  Lower-level directories that correspond to the shared region
// are populated once and referenced from every thread's root directory;
// each thread owns the subtree hanging off the TLMM slot of its private
// root directory.
type AddressSpace struct {
	Phys *PhysMem

	mu sync.Mutex
	// sharedRoot holds the canonical root entries for the shared region.
	// Thread root directories mirror these entries; when a new shared
	// subtree is created, every live thread's root is synchronised, which
	// the model counts as a RootSync.
	sharedRoot directory
	threads    []*ThreadVM
	nextThread int
}

// NewAddressSpace creates an address space backed by the given physical
// memory.  If phys is nil a fresh PhysMem is created.
func NewAddressSpace(phys *PhysMem) *AddressSpace {
	if phys == nil {
		phys = NewPhysMem()
	}
	return &AddressSpace{Phys: phys}
}

// NewThread creates the virtual-memory state for one worker thread: a
// private root page directory whose shared entries alias the process-wide
// shared directories and whose TLMM entry is private.
func (as *AddressSpace) NewThread() *ThreadVM {
	as.mu.Lock()
	defer as.mu.Unlock()
	t := &ThreadVM{
		as: as,
		id: as.nextThread,
	}
	as.nextThread++
	// Mirror the current shared entries into the new thread's root.
	t.root = as.sharedRoot
	// The TLMM slot always points at a private subtree.
	t.root.entries[tlmmRootIndex] = pte{}
	as.threads = append(as.threads, t)
	return t
}

// Threads returns the number of thread VMs created in this address space.
func (as *AddressSpace) Threads() int {
	as.mu.Lock()
	defer as.mu.Unlock()
	return len(as.threads)
}

// ensureShared walks the shared subtree for va, creating directories as
// needed, and returns the leaf directory plus leaf index.  If the root
// entry had to be created, every thread's root directory is synchronised.
func (as *AddressSpace) ensureShared(va uintptr) (*directory, int) {
	idx, _ := walkIndices(va)
	as.mu.Lock()
	defer as.mu.Unlock()
	rootChanged := false
	dir := &as.sharedRoot
	for level := 0; level < pageTableLevels-1; level++ {
		e := &dir.entries[idx[level]]
		if e.dir == nil {
			e.dir = &directory{}
			if level == 0 {
				rootChanged = true
			}
		}
		dir = e.dir
	}
	if rootChanged {
		// TLMM-Linux must synchronise the root entries of every thread
		// when a shared root slot is populated; lower levels are shared
		// structurally and need no further work.
		for _, t := range as.threads {
			t.mu.Lock()
			for i := 0; i < entriesPerDirectory; i++ {
				if i != tlmmRootIndex {
					t.root.entries[i] = as.sharedRoot.entries[i]
				}
			}
			t.mu.Unlock()
		}
		as.Phys.rootSyncs.Add(1)
	}
	return dir, idx[pageTableLevels-1]
}

// MapShared maps the page named by pd at the page-aligned shared virtual
// address va, visible to every thread.
func (as *AddressSpace) MapShared(va uintptr, pd PD) error {
	if va%PageSize != 0 {
		return fmt.Errorf("%w: %#x", ErrMisaligned, va)
	}
	if va < SharedBase || va+PageSize > SharedEnd {
		return fmt.Errorf("%w: %#x", ErrOutOfRange, va)
	}
	pg, err := as.Phys.page(pd)
	if err != nil {
		return err
	}
	as.Phys.kernelCrossings.Add(1)
	leaf, li := as.ensureShared(va)
	as.mu.Lock()
	defer as.mu.Unlock()
	if old := leaf.entries[li].page; old != nil {
		decRef(old)
		as.Phys.pagesUnmapped.Add(1)
	}
	leaf.entries[li] = pte{page: pg}
	incRef(pg)
	as.Phys.pagesMapped.Add(1)
	as.Phys.softFaults.Add(1)
	return nil
}

// resolveShared translates a shared-region address without taking the
// address-space lock on the fast path; leaf directories are only ever
// appended to, never removed, so the data race window is acceptable for a
// model (callers needing strictness use the locked Map* paths).
func (as *AddressSpace) resolveShared(va uintptr) (*Page, uintptr, error) {
	idx, off := walkIndices(va)
	as.mu.Lock()
	dir := &as.sharedRoot
	for level := 0; level < pageTableLevels-1; level++ {
		e := dir.entries[idx[level]]
		if e.dir == nil {
			as.mu.Unlock()
			return nil, 0, fmt.Errorf("%w: %#x", ErrUnmapped, va)
		}
		dir = e.dir
	}
	pg := dir.entries[idx[pageTableLevels-1]].page
	as.mu.Unlock()
	if pg == nil {
		return nil, 0, fmt.Errorf("%w: %#x", ErrUnmapped, va)
	}
	return pg, off, nil
}

func incRef(pg *Page) { atomic.AddInt32(&pg.refs, 1) }
func decRef(pg *Page) { atomic.AddInt32(&pg.refs, -1) }
