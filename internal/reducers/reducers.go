// Package reducers is the user-facing reducer library: typed wrappers over
// the untyped reducer engines (the memory-mapped mechanism in
// internal/core and the hypermap baseline in internal/hypermap), mirroring
// the reducer library Cilk Plus ships (add, min, max, logical and/or, list
// append, and so on), plus a small factory for choosing the mechanism.
package reducers

import (
	"cmp"
	"fmt"

	"repro/internal/core"
	"repro/internal/hypermap"
	"repro/internal/sched"
)

// Mechanism selects which reducer implementation an engine uses.
type Mechanism int

const (
	// MemoryMapped is the paper's contribution: TLMM-backed SPA maps with
	// thread-local indirection (Cilk-M).
	MemoryMapped Mechanism = iota
	// Hypermap is the Cilk Plus baseline: per-context hash tables.
	Hypermap
)

// String returns the mechanism name.
func (m Mechanism) String() string {
	switch m {
	case MemoryMapped:
		return "memory-mapped"
	case Hypermap:
		return "hypermap"
	default:
		return fmt.Sprintf("mechanism(%d)", int(m))
	}
}

// Mechanisms lists all mechanisms in display order.
func Mechanisms() []Mechanism { return []Mechanism{MemoryMapped, Hypermap} }

// EngineOptions tunes engine construction.
type EngineOptions struct {
	// Timing enables duration measurement of the reduce overheads.
	Timing bool
	// CountLookups enables lookup counting.
	CountLookups bool
	// ModelAddressSpace backs the memory-mapped engine's SPA pages with
	// the simulated TLMM address space (ignored by the hypermap engine).
	ModelAddressSpace bool
	// MergeBatchSize sets the memory-mapped engine's hypermerge batch
	// size; zero keeps the default (ignored by the hypermap engine).
	MergeBatchSize int
	// ParallelMergeThreshold sets how many reduce pairs one hypermerge
	// must carry before the memory-mapped engine fans its batches out
	// through the scheduler; zero keeps the default (ignored by the
	// hypermap engine).
	ParallelMergeThreshold int
	// DirectoryShards sets the number of reducer-directory shards for
	// either engine; zero sizes the directory from the worker count.
	// Workloads that register and unregister reducers dynamically from
	// many workers benefit from more shards; tests pin it to 1 to make
	// slot recycling deterministic.
	DirectoryShards int
}

// NewEngine creates a reducer engine of the requested mechanism sized for
// the given number of workers.
func NewEngine(m Mechanism, workers int, opts EngineOptions) core.Engine {
	switch m {
	case Hypermap:
		return hypermap.New(hypermap.Config{
			Workers:         workers,
			Timing:          opts.Timing,
			CountLookups:    opts.CountLookups,
			DirectoryShards: opts.DirectoryShards,
		})
	default:
		return core.NewMM(core.MMConfig{
			Workers:                workers,
			Timing:                 opts.Timing,
			CountLookups:           opts.CountLookups,
			ModelAddressSpace:      opts.ModelAddressSpace,
			MergeBatchSize:         opts.MergeBatchSize,
			ParallelMergeThreshold: opts.ParallelMergeThreshold,
			DirectoryShards:        opts.DirectoryShards,
		})
	}
}

// NewSession creates a scheduler session backed by an engine of the
// requested mechanism.
func NewSession(m Mechanism, workers int, opts EngineOptions) *core.Session {
	return core.NewSession(workers, NewEngine(m, workers, opts))
}

// Number is the constraint for arithmetic reducers.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// mustRegister registers a monoid and panics on failure (nil monoid or
// exhausted engine), which only happens on programmer error.
func mustRegister(eng core.Engine, m core.Monoid) *core.Reducer {
	r, err := eng.Register(m)
	if err != nil {
		panic(fmt.Sprintf("reducers: register: %v", err))
	}
	return r
}

// ---------------------------------------------------------------------------
// Add
// ---------------------------------------------------------------------------

type addView[T Number] struct{ v T }

type addMonoid[T Number] struct{}

func (addMonoid[T]) Identity() any { return &addView[T]{} }
func (addMonoid[T]) Reduce(left, right any) any {
	l := left.(*addView[T])
	r := right.(*addView[T])
	l.v += r.v
	return l
}

// Add is a sum reducer over a numeric type (the op_add reducer of the Cilk
// Plus library).
type Add[T Number] struct {
	eng core.Engine
	r   *core.Reducer
}

// NewAdd registers a sum reducer with the engine.
func NewAdd[T Number](eng core.Engine) *Add[T] {
	return &Add[T]{eng: eng, r: mustRegister(eng, addMonoid[T]{})}
}

// Add adds v to the local view for the calling context.
func (a *Add[T]) Add(c *sched.Context, v T) {
	a.eng.Lookup(c, a.r).(*addView[T]).v += v
}

// Value returns the reducer's current (leftmost) value.
func (a *Add[T]) Value() T { return a.r.Value().(*addView[T]).v }

// SetValue sets the reducer's value; use it only outside parallel regions.
func (a *Add[T]) SetValue(v T) { a.r.SetValue(&addView[T]{v: v}) }

// Reducer exposes the underlying reducer handle.
func (a *Add[T]) Reducer() *core.Reducer { return a.r }

// Close unregisters the reducer; Value remains readable.
func (a *Add[T]) Close() { a.eng.Unregister(a.r) }

// ---------------------------------------------------------------------------
// Min / Max
// ---------------------------------------------------------------------------

type extremeView[T cmp.Ordered] struct {
	set bool
	v   T
}

type minMonoid[T cmp.Ordered] struct{}

func (minMonoid[T]) Identity() any { return &extremeView[T]{} }
func (minMonoid[T]) Reduce(left, right any) any {
	l := left.(*extremeView[T])
	r := right.(*extremeView[T])
	if r.set && (!l.set || r.v < l.v) {
		l.set, l.v = true, r.v
	}
	return l
}

type maxMonoid[T cmp.Ordered] struct{}

func (maxMonoid[T]) Identity() any { return &extremeView[T]{} }
func (maxMonoid[T]) Reduce(left, right any) any {
	l := left.(*extremeView[T])
	r := right.(*extremeView[T])
	if r.set && (!l.set || r.v > l.v) {
		l.set, l.v = true, r.v
	}
	return l
}

// Min is a minimum reducer (op_min).
type Min[T cmp.Ordered] struct {
	eng core.Engine
	r   *core.Reducer
}

// NewMin registers a minimum reducer with the engine.
func NewMin[T cmp.Ordered](eng core.Engine) *Min[T] {
	return &Min[T]{eng: eng, r: mustRegister(eng, minMonoid[T]{})}
}

// Update lowers the local view to v if v is smaller (or the view is unset).
func (m *Min[T]) Update(c *sched.Context, v T) {
	view := m.eng.Lookup(c, m.r).(*extremeView[T])
	if !view.set || v < view.v {
		view.set, view.v = true, v
	}
}

// Value returns the minimum seen so far; ok is false if no value was ever
// supplied.
func (m *Min[T]) Value() (v T, ok bool) {
	view := m.r.Value().(*extremeView[T])
	return view.v, view.set
}

// Reducer exposes the underlying reducer handle.
func (m *Min[T]) Reducer() *core.Reducer { return m.r }

// Close unregisters the reducer.
func (m *Min[T]) Close() { m.eng.Unregister(m.r) }

// Max is a maximum reducer (op_max).
type Max[T cmp.Ordered] struct {
	eng core.Engine
	r   *core.Reducer
}

// NewMax registers a maximum reducer with the engine.
func NewMax[T cmp.Ordered](eng core.Engine) *Max[T] {
	return &Max[T]{eng: eng, r: mustRegister(eng, maxMonoid[T]{})}
}

// Update raises the local view to v if v is larger (or the view is unset).
func (m *Max[T]) Update(c *sched.Context, v T) {
	view := m.eng.Lookup(c, m.r).(*extremeView[T])
	if !view.set || v > view.v {
		view.set, view.v = true, v
	}
}

// Value returns the maximum seen so far; ok is false if no value was ever
// supplied.
func (m *Max[T]) Value() (v T, ok bool) {
	view := m.r.Value().(*extremeView[T])
	return view.v, view.set
}

// Reducer exposes the underlying reducer handle.
func (m *Max[T]) Reducer() *core.Reducer { return m.r }

// Close unregisters the reducer.
func (m *Max[T]) Close() { m.eng.Unregister(m.r) }

// ---------------------------------------------------------------------------
// And / Or
// ---------------------------------------------------------------------------

type boolView struct{ v bool }

type andMonoid struct{}

func (andMonoid) Identity() any { return &boolView{v: true} }
func (andMonoid) Reduce(left, right any) any {
	l := left.(*boolView)
	l.v = l.v && right.(*boolView).v
	return l
}

type orMonoid struct{}

func (orMonoid) Identity() any { return &boolView{} }
func (orMonoid) Reduce(left, right any) any {
	l := left.(*boolView)
	l.v = l.v || right.(*boolView).v
	return l
}

// And is a logical-AND reducer (op_and) with identity true.
type And struct {
	eng core.Engine
	r   *core.Reducer
}

// NewAnd registers a logical-AND reducer.
func NewAnd(eng core.Engine) *And {
	return &And{eng: eng, r: mustRegister(eng, andMonoid{})}
}

// Update ANDs v into the local view.
func (a *And) Update(c *sched.Context, v bool) {
	view := a.eng.Lookup(c, a.r).(*boolView)
	view.v = view.v && v
}

// Value returns the conjunction of every supplied value.
func (a *And) Value() bool { return a.r.Value().(*boolView).v }

// Close unregisters the reducer.
func (a *And) Close() { a.eng.Unregister(a.r) }

// Or is a logical-OR reducer (op_or) with identity false.
type Or struct {
	eng core.Engine
	r   *core.Reducer
}

// NewOr registers a logical-OR reducer.
func NewOr(eng core.Engine) *Or {
	return &Or{eng: eng, r: mustRegister(eng, orMonoid{})}
}

// Update ORs v into the local view.
func (o *Or) Update(c *sched.Context, v bool) {
	view := o.eng.Lookup(c, o.r).(*boolView)
	view.v = view.v || v
}

// Value returns the disjunction of every supplied value.
func (o *Or) Value() bool { return o.r.Value().(*boolView).v }

// Close unregisters the reducer.
func (o *Or) Close() { o.eng.Unregister(o.r) }

// ---------------------------------------------------------------------------
// List append
// ---------------------------------------------------------------------------

type listView[T any] struct{ items []T }

type listMonoid[T any] struct{}

func (listMonoid[T]) Identity() any { return &listView[T]{} }
func (listMonoid[T]) Reduce(left, right any) any {
	l := left.(*listView[T])
	r := right.(*listView[T])
	l.items = append(l.items, r.items...)
	return l
}

// List is a list-append reducer (reducer_list_append): the final list
// equals the list a serial execution would build, even though appends occur
// on parallel branches.  List append is associative but not commutative, so
// it exercises the runtime's ordering guarantees.
type List[T any] struct {
	eng core.Engine
	r   *core.Reducer
}

// NewList registers a list-append reducer.
func NewList[T any](eng core.Engine) *List[T] {
	return &List[T]{eng: eng, r: mustRegister(eng, listMonoid[T]{})}
}

// PushBack appends v to the local view.
func (l *List[T]) PushBack(c *sched.Context, v T) {
	view := l.eng.Lookup(c, l.r).(*listView[T])
	view.items = append(view.items, v)
}

// Value returns the reducer's current list.
func (l *List[T]) Value() []T { return l.r.Value().(*listView[T]).items }

// Reducer exposes the underlying reducer handle.
func (l *List[T]) Reducer() *core.Reducer { return l.r }

// Close unregisters the reducer.
func (l *List[T]) Close() { l.eng.Unregister(l.r) }

// ---------------------------------------------------------------------------
// String concatenation
// ---------------------------------------------------------------------------

type stringView struct{ s []byte }

type stringMonoid struct{}

func (stringMonoid) Identity() any { return &stringView{} }
func (stringMonoid) Reduce(left, right any) any {
	l := left.(*stringView)
	l.s = append(l.s, right.(*stringView).s...)
	return l
}

// String is a string-concatenation reducer (reducer_basic_string).
type String struct {
	eng core.Engine
	r   *core.Reducer
}

// NewString registers a string-concatenation reducer.
func NewString(eng core.Engine) *String {
	return &String{eng: eng, r: mustRegister(eng, stringMonoid{})}
}

// Append appends s to the local view.
func (sr *String) Append(c *sched.Context, s string) {
	view := sr.eng.Lookup(c, sr.r).(*stringView)
	view.s = append(view.s, s...)
}

// Value returns the concatenation in serial order.
func (sr *String) Value() string { return string(sr.r.Value().(*stringView).s) }

// Close unregisters the reducer.
func (sr *String) Close() { sr.eng.Unregister(sr.r) }

// ---------------------------------------------------------------------------
// Map union
// ---------------------------------------------------------------------------

type mapView[K comparable, V any] struct{ m map[K]V }

type mapMonoid[K comparable, V any] struct {
	combine func(V, V) V
}

func (mm mapMonoid[K, V]) Identity() any { return &mapView[K, V]{m: make(map[K]V)} }
func (mm mapMonoid[K, V]) Reduce(left, right any) any {
	l := left.(*mapView[K, V])
	r := right.(*mapView[K, V])
	for k, rv := range r.m {
		if lv, ok := l.m[k]; ok {
			l.m[k] = mm.combine(lv, rv)
		} else {
			l.m[k] = rv
		}
	}
	return l
}

// MapOf is a map-union reducer: values for duplicate keys are combined with
// the supplied function, which must itself be associative for the reducer
// to be deterministic.
type MapOf[K comparable, V any] struct {
	eng core.Engine
	r   *core.Reducer
}

// NewMapOf registers a map-union reducer with the given combiner.
func NewMapOf[K comparable, V any](eng core.Engine, combine func(V, V) V) *MapOf[K, V] {
	return &MapOf[K, V]{eng: eng, r: mustRegister(eng, mapMonoid[K, V]{combine: combine})}
}

// Update merges (k, v) into the local view using the combiner.
func (m *MapOf[K, V]) Update(c *sched.Context, k K, v V) {
	view := m.eng.Lookup(c, m.r).(*mapView[K, V])
	mon := m.r.Monoid().(mapMonoid[K, V])
	if old, ok := view.m[k]; ok {
		view.m[k] = mon.combine(old, v)
		return
	}
	view.m[k] = v
}

// Value returns the merged map.
func (m *MapOf[K, V]) Value() map[K]V { return m.r.Value().(*mapView[K, V]).m }

// Close unregisters the reducer.
func (m *MapOf[K, V]) Close() { m.eng.Unregister(m.r) }

// ---------------------------------------------------------------------------
// Custom monoid
// ---------------------------------------------------------------------------

// FuncMonoid adapts a pair of functions into a core.Monoid, for callers who
// want a one-off custom reducer without defining a type.
type FuncMonoid struct {
	IdentityFn func() any
	ReduceFn   func(left, right any) any
}

// Identity implements core.Monoid.
func (f FuncMonoid) Identity() any { return f.IdentityFn() }

// Reduce implements core.Monoid.
func (f FuncMonoid) Reduce(left, right any) any { return f.ReduceFn(left, right) }

// Custom is a reducer over a user-supplied monoid.
type Custom struct {
	eng core.Engine
	r   *core.Reducer
}

// NewCustom registers a reducer for an arbitrary monoid.
func NewCustom(eng core.Engine, m core.Monoid) *Custom {
	return &Custom{eng: eng, r: mustRegister(eng, m)}
}

// View returns the local view for the calling context; the caller mutates
// it according to its own update semantics.
func (cu *Custom) View(c *sched.Context) any { return cu.eng.Lookup(c, cu.r) }

// Value returns the reducer's current (leftmost) view.
func (cu *Custom) Value() any { return cu.r.Value() }

// Reducer exposes the underlying reducer handle.
func (cu *Custom) Reducer() *core.Reducer { return cu.r }

// Close unregisters the reducer.
func (cu *Custom) Close() { cu.eng.Unregister(cu.r) }

var (
	_ core.Monoid = addMonoid[int]{}
	_ core.Monoid = minMonoid[int]{}
	_ core.Monoid = maxMonoid[int]{}
	_ core.Monoid = andMonoid{}
	_ core.Monoid = orMonoid{}
	_ core.Monoid = listMonoid[int]{}
	_ core.Monoid = stringMonoid{}
	_ core.Monoid = mapMonoid[string, int]{}
	_ core.Monoid = FuncMonoid{}
)
