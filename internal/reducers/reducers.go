// Package reducers is the user-facing reducer library: generics-first
// typed reducers over the untyped reducer engines (the memory-mapped
// mechanism in internal/core and the hypermap baseline in
// internal/hypermap), mirroring the reducer library Cilk Plus ships (add,
// min, max, logical and/or, list append, and so on), plus a small factory
// for choosing the mechanism.
//
// Every reducer kind embeds Handle[V]: a typed monoid (TypedMonoid) is
// adapted once into the untyped core.Monoid at registration, and every
// update resolves its view through the handle's per-context typed cache,
// so the steady-state update path performs no interface dispatch, no
// runtime type assertion and no allocation — the paper's
// lookup-as-cheap-as-a-local-variable claim carried all the way to the
// typed API.
package reducers

import (
	"cmp"
	"fmt"

	"repro/internal/core"
	"repro/internal/hypermap"
	"repro/internal/sched"
)

// Mechanism selects which reducer implementation an engine uses.
type Mechanism int

const (
	// MemoryMapped is the paper's contribution: TLMM-backed SPA maps with
	// thread-local indirection (Cilk-M).
	MemoryMapped Mechanism = iota
	// Hypermap is the Cilk Plus baseline: per-context hash tables.
	Hypermap
)

// String returns the mechanism name.
func (m Mechanism) String() string {
	switch m {
	case MemoryMapped:
		return "memory-mapped"
	case Hypermap:
		return "hypermap"
	default:
		return fmt.Sprintf("mechanism(%d)", int(m))
	}
}

// Mechanisms lists all mechanisms in display order.
func Mechanisms() []Mechanism { return []Mechanism{MemoryMapped, Hypermap} }

// EngineOptions tunes engine construction.
type EngineOptions struct {
	// Timing enables duration measurement of the reduce overheads.
	Timing bool
	// CountLookups enables lookup counting.
	CountLookups bool
	// ModelAddressSpace backs the memory-mapped engine's SPA pages with
	// the simulated TLMM address space (ignored by the hypermap engine).
	ModelAddressSpace bool
	// MergeBatchSize sets the memory-mapped engine's hypermerge batch
	// size; zero keeps the default (ignored by the hypermap engine).
	MergeBatchSize int
	// ParallelMergeThreshold sets how many reduce pairs one hypermerge
	// must carry before the memory-mapped engine fans its batches out
	// through the scheduler; zero keeps the default (ignored by the
	// hypermap engine).
	ParallelMergeThreshold int
	// DirectoryShards sets the number of reducer-directory shards for
	// either engine; zero sizes the directory from the worker count.
	// Workloads that register and unregister reducers dynamically from
	// many workers benefit from more shards; tests pin it to 1 to make
	// slot recycling deterministic.
	DirectoryShards int
	// AdaptiveMerge lets the memory-mapped engine retune its hypermerge
	// batching knobs from live pipeline signals at trace boundaries
	// (ignored by the hypermap engine).  Knobs set explicitly above stay
	// fixed overrides the tuner never touches.
	AdaptiveMerge bool
}

// NewEngine creates a reducer engine of the requested mechanism sized for
// the given number of workers.
func NewEngine(m Mechanism, workers int, opts EngineOptions) core.Engine {
	switch m {
	case Hypermap:
		return hypermap.New(hypermap.Config{
			Workers:         workers,
			Timing:          opts.Timing,
			CountLookups:    opts.CountLookups,
			DirectoryShards: opts.DirectoryShards,
		})
	default:
		return core.NewMM(core.MMConfig{
			Workers:                workers,
			Timing:                 opts.Timing,
			CountLookups:           opts.CountLookups,
			ModelAddressSpace:      opts.ModelAddressSpace,
			MergeBatchSize:         opts.MergeBatchSize,
			ParallelMergeThreshold: opts.ParallelMergeThreshold,
			DirectoryShards:        opts.DirectoryShards,
			AdaptiveMerge:          opts.AdaptiveMerge,
		})
	}
}

// NewSession creates a scheduler session backed by an engine of the
// requested mechanism.
func NewSession(m Mechanism, workers int, opts EngineOptions) *core.Session {
	return core.NewSession(workers, NewEngine(m, workers, opts))
}

// Number is the constraint for arithmetic reducers.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// mustRegister registers a monoid and panics on failure (nil monoid or
// exhausted engine), which only happens on programmer error.
func mustRegister(eng core.Engine, m core.Monoid) *core.Reducer {
	r, err := eng.Register(m)
	if err != nil {
		panic(fmt.Sprintf("reducers: register: %v", err))
	}
	return r
}

// ---------------------------------------------------------------------------
// Add
// ---------------------------------------------------------------------------

// addMonoid is the typed sum monoid: the view is the number itself.
type addMonoid[T Number] struct{}

func (addMonoid[T]) Identity() *T { return new(T) }
func (addMonoid[T]) Reduce(left, right *T) *T {
	*left += *right
	return left
}

// Add is a sum reducer over a numeric type (the op_add reducer of the Cilk
// Plus library).  Its view type is the number itself, so View hands back a
// *T that updates like a local variable.
type Add[T Number] struct {
	Handle[T]
}

// NewAdd registers a sum reducer with the engine.
func NewAdd[T Number](eng core.Engine) *Add[T] {
	return &Add[T]{Handle: newHandle[T](eng, addMonoid[T]{})}
}

// Add adds v to the local view for the calling context.
func (a *Add[T]) Add(c *sched.Context, v T) { *a.View(c) += v }

// Value returns the reducer's current (leftmost) value.
func (a *Add[T]) Value() T { return *a.Peek() }

// SetValue sets the reducer's value; use it only outside parallel regions.
func (a *Add[T]) SetValue(v T) { a.SetView(&v) }

// ---------------------------------------------------------------------------
// Min / Max
// ---------------------------------------------------------------------------

// Extreme is the view type of the Min and Max reducers: a value plus a flag
// recording whether any value has been supplied yet (the monoid identity is
// the unset view).
type Extreme[T cmp.Ordered] struct {
	Set bool
	Val T
}

type minMonoid[T cmp.Ordered] struct{}

func (minMonoid[T]) Identity() *Extreme[T] { return &Extreme[T]{} }
func (minMonoid[T]) Reduce(left, right *Extreme[T]) *Extreme[T] {
	if right.Set && (!left.Set || right.Val < left.Val) {
		left.Set, left.Val = true, right.Val
	}
	return left
}

type maxMonoid[T cmp.Ordered] struct{}

func (maxMonoid[T]) Identity() *Extreme[T] { return &Extreme[T]{} }
func (maxMonoid[T]) Reduce(left, right *Extreme[T]) *Extreme[T] {
	if right.Set && (!left.Set || right.Val > left.Val) {
		left.Set, left.Val = true, right.Val
	}
	return left
}

// Min is a minimum reducer (op_min).
type Min[T cmp.Ordered] struct {
	Handle[Extreme[T]]
}

// NewMin registers a minimum reducer with the engine.
func NewMin[T cmp.Ordered](eng core.Engine) *Min[T] {
	return &Min[T]{Handle: newHandle[Extreme[T]](eng, minMonoid[T]{})}
}

// Update lowers the local view to v if v is smaller (or the view is unset).
func (m *Min[T]) Update(c *sched.Context, v T) {
	view := m.View(c)
	if !view.Set || v < view.Val {
		view.Set, view.Val = true, v
	}
}

// Value returns the minimum seen so far; ok is false if no value was ever
// supplied.
func (m *Min[T]) Value() (v T, ok bool) {
	view := m.Peek()
	return view.Val, view.Set
}

// Max is a maximum reducer (op_max).
type Max[T cmp.Ordered] struct {
	Handle[Extreme[T]]
}

// NewMax registers a maximum reducer with the engine.
func NewMax[T cmp.Ordered](eng core.Engine) *Max[T] {
	return &Max[T]{Handle: newHandle[Extreme[T]](eng, maxMonoid[T]{})}
}

// Update raises the local view to v if v is larger (or the view is unset).
func (m *Max[T]) Update(c *sched.Context, v T) {
	view := m.View(c)
	if !view.Set || v > view.Val {
		view.Set, view.Val = true, v
	}
}

// Value returns the maximum seen so far; ok is false if no value was ever
// supplied.
func (m *Max[T]) Value() (v T, ok bool) {
	view := m.Peek()
	return view.Val, view.Set
}

// ---------------------------------------------------------------------------
// And / Or
// ---------------------------------------------------------------------------

type andMonoid struct{}

func (andMonoid) Identity() *bool { v := true; return &v }
func (andMonoid) Reduce(left, right *bool) *bool {
	*left = *left && *right
	return left
}

type orMonoid struct{}

func (orMonoid) Identity() *bool { return new(bool) }
func (orMonoid) Reduce(left, right *bool) *bool {
	*left = *left || *right
	return left
}

// And is a logical-AND reducer (op_and) with identity true.
type And struct {
	Handle[bool]
}

// NewAnd registers a logical-AND reducer.
func NewAnd(eng core.Engine) *And {
	return &And{Handle: newHandle[bool](eng, andMonoid{})}
}

// Update ANDs v into the local view.
func (a *And) Update(c *sched.Context, v bool) {
	view := a.View(c)
	*view = *view && v
}

// Value returns the conjunction of every supplied value.
func (a *And) Value() bool { return *a.Peek() }

// Or is a logical-OR reducer (op_or) with identity false.
type Or struct {
	Handle[bool]
}

// NewOr registers a logical-OR reducer.
func NewOr(eng core.Engine) *Or {
	return &Or{Handle: newHandle[bool](eng, orMonoid{})}
}

// Update ORs v into the local view.
func (o *Or) Update(c *sched.Context, v bool) {
	view := o.View(c)
	*view = *view || v
}

// Value returns the disjunction of every supplied value.
func (o *Or) Value() bool { return *o.Peek() }

// ---------------------------------------------------------------------------
// List append
// ---------------------------------------------------------------------------

type listMonoid[T any] struct{}

func (listMonoid[T]) Identity() *[]T { return new([]T) }
func (listMonoid[T]) Reduce(left, right *[]T) *[]T {
	*left = append(*left, *right...)
	return left
}

// List is a list-append reducer (reducer_list_append): the final list
// equals the list a serial execution would build, even though appends occur
// on parallel branches.  List append is associative but not commutative, so
// it exercises the runtime's ordering guarantees.  Its view type is the
// slice itself: PushBack is an append through the cached *[]T.
type List[T any] struct {
	Handle[[]T]
}

// NewList registers a list-append reducer.
func NewList[T any](eng core.Engine) *List[T] {
	return &List[T]{Handle: newHandle[[]T](eng, listMonoid[T]{})}
}

// PushBack appends v to the local view.
func (l *List[T]) PushBack(c *sched.Context, v T) {
	view := l.View(c)
	*view = append(*view, v)
}

// Value returns the reducer's current list.
func (l *List[T]) Value() []T { return *l.Peek() }

// ---------------------------------------------------------------------------
// String concatenation
// ---------------------------------------------------------------------------

type stringMonoid struct{}

func (stringMonoid) Identity() *[]byte { return new([]byte) }
func (stringMonoid) Reduce(left, right *[]byte) *[]byte {
	*left = append(*left, *right...)
	return left
}

// String is a string-concatenation reducer (reducer_basic_string).  The
// view is the byte slice being built.
type String struct {
	Handle[[]byte]
}

// NewString registers a string-concatenation reducer.
func NewString(eng core.Engine) *String {
	return &String{Handle: newHandle[[]byte](eng, stringMonoid{})}
}

// Append appends s to the local view.
func (sr *String) Append(c *sched.Context, s string) {
	view := sr.View(c)
	*view = append(*view, s...)
}

// Value returns the concatenation in serial order.
func (sr *String) Value() string { return string(*sr.Peek()) }

// ---------------------------------------------------------------------------
// Map union
// ---------------------------------------------------------------------------

type mapMonoid[K comparable, V any] struct {
	combine func(V, V) V
}

func (mm mapMonoid[K, V]) Identity() *map[K]V {
	m := make(map[K]V)
	return &m
}

func (mm mapMonoid[K, V]) Reduce(left, right *map[K]V) *map[K]V {
	l, r := *left, *right
	for k, rv := range r {
		if lv, ok := l[k]; ok {
			l[k] = mm.combine(lv, rv)
		} else {
			l[k] = rv
		}
	}
	return left
}

// MapOf is a map-union reducer: values for duplicate keys are combined with
// the supplied function, which must itself be associative for the reducer
// to be deterministic.  The combiner is cached in the handle at
// construction, so Update never re-derives it from the monoid.
type MapOf[K comparable, V any] struct {
	Handle[map[K]V]
	combine func(V, V) V
}

// NewMapOf registers a map-union reducer with the given combiner.
func NewMapOf[K comparable, V any](eng core.Engine, combine func(V, V) V) *MapOf[K, V] {
	return &MapOf[K, V]{
		Handle:  newHandle[map[K]V](eng, mapMonoid[K, V]{combine: combine}),
		combine: combine,
	}
}

// Update merges (k, v) into the local view using the combiner.
func (m *MapOf[K, V]) Update(c *sched.Context, k K, v V) {
	view := *m.View(c)
	if old, ok := view[k]; ok {
		view[k] = m.combine(old, v)
		return
	}
	view[k] = v
}

// Value returns the merged map.
func (m *MapOf[K, V]) Value() map[K]V { return *m.Peek() }

// ---------------------------------------------------------------------------
// Custom monoids
// ---------------------------------------------------------------------------

// CustomOf is a typed reducer over a user-supplied TypedMonoid: the typed
// successor of Custom.  Callers mutate the *V returned by View according to
// their own update semantics.
type CustomOf[V any] struct {
	Handle[V]
}

// NewCustomOf registers a typed reducer for an arbitrary typed monoid.
func NewCustomOf[V any](eng core.Engine, m TypedMonoid[V]) *CustomOf[V] {
	return &CustomOf[V]{Handle: newHandle[V](eng, m)}
}

// Value returns the reducer's current (leftmost) view.
func (cu *CustomOf[V]) Value() *V { return cu.Peek() }

// FuncMonoid adapts a pair of functions into a core.Monoid, for callers who
// want a one-off custom reducer without defining a type.
//
// Deprecated: use TypedFuncMonoid with NewCustomOf, which keeps the view
// typed end to end.
type FuncMonoid struct {
	IdentityFn func() any
	ReduceFn   func(left, right any) any
}

// Identity implements core.Monoid.
func (f FuncMonoid) Identity() any { return f.IdentityFn() }

// Reduce implements core.Monoid.
func (f FuncMonoid) Reduce(left, right any) any { return f.ReduceFn(left, right) }

// Custom is a reducer over a user-supplied untyped monoid.
//
// Deprecated: use CustomOf, whose View returns a typed pointer instead of
// an any that must be asserted on every access.
type Custom struct {
	eng core.Engine
	r   *core.Reducer
}

// NewCustom registers a reducer for an arbitrary untyped monoid.
//
// Deprecated: use NewCustomOf with a TypedMonoid.
func NewCustom(eng core.Engine, m core.Monoid) *Custom {
	return &Custom{eng: eng, r: mustRegister(eng, m)}
}

// View returns the local view for the calling context; the caller mutates
// it according to its own update semantics.
func (cu *Custom) View(c *sched.Context) any { return cu.eng.Lookup(c, cu.r) }

// Value returns the reducer's current (leftmost) view.
func (cu *Custom) Value() any { return cu.r.Value() }

// Reducer exposes the underlying reducer handle.
func (cu *Custom) Reducer() *core.Reducer { return cu.r }

// Close unregisters the reducer; Value remains readable.
func (cu *Custom) Close() { cu.eng.Unregister(cu.r) }

var (
	_ TypedMonoid[int]            = addMonoid[int]{}
	_ TypedMonoid[Extreme[int]]   = minMonoid[int]{}
	_ TypedMonoid[Extreme[int]]   = maxMonoid[int]{}
	_ TypedMonoid[bool]           = andMonoid{}
	_ TypedMonoid[bool]           = orMonoid{}
	_ TypedMonoid[[]int]          = listMonoid[int]{}
	_ TypedMonoid[[]byte]         = stringMonoid{}
	_ TypedMonoid[map[string]int] = mapMonoid[string, int]{}
	_ TypedMonoid[int]            = TypedFuncMonoid[int]{}
	_ core.Monoid                 = FuncMonoid{}
	_ core.Monoid                 = typedMonoidAdapter[int]{}
)
