package reducers

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/sched"
)

// seqMonoid is a noncommutative typed monoid — sequence concatenation —
// used to verify that views resolved through Handle's typed cache are
// still merged in exact serial order on both engines.
type seqMonoid struct{}

func (seqMonoid) Identity() *[]int { return new([]int) }
func (seqMonoid) Reduce(left, right *[]int) *[]int {
	*left = append(*left, *right...)
	return left
}

// TestTypedHandleNoncommutativeEquivalence runs noncommutative reducers
// (an int-sequence CustomOf and a String) through the typed handles under
// forced steals and checks the result equals the serial order, on both
// engines.  If the typed per-context cache ever served a view across a
// steal, merge or trace boundary, concatenation order would break.
func TestTypedHandleNoncommutativeEquivalence(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := testSession(t, m, 4)
		seq := NewCustomOf[[]int](s.Engine(), seqMonoid{})
		str := NewString(s.Engine())
		const n = 250
		var want strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&want, "%d;", i)
		}
		if err := s.Run(func(c *sched.Context) {
			c.ParallelForGrain(0, n, 1, func(c *sched.Context, i int) {
				time.Sleep(30 * time.Microsecond)
				// Two updates through the same context exercise the
				// cached fast path (the second View is a typed cache hit).
				v := seq.View(c)
				*v = append(*v, i)
				str.Append(c, fmt.Sprintf("%d;", i))
			})
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if steals := s.Runtime().Stats().Steals; steals == 0 {
			t.Fatal("workload did not provoke any steals")
		}
		got := *seq.Value()
		if len(got) != n {
			t.Fatalf("sequence has %d elements, want %d", len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("sequence[%d] = %d; typed-cache merge order differs from serial order", i, v)
			}
		}
		if str.Value() != want.String() {
			t.Fatalf("string concatenation differs from serial order")
		}
	})
}

// TestTypedCacheInvalidationOnSlotReuse pins the interaction between the
// typed view cache and the directory's slot recycling: unregistering a
// reducer mid-run and registering a new one into the recycled slot (one
// directory shard makes the reuse deterministic) must invalidate every
// cached typed view — the retired handle serves its frozen leftmost value
// and the new reducer starts from a clean identity view.
func TestTypedCacheInvalidationOnSlotReuse(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := NewSession(m, 1, EngineOptions{DirectoryShards: 1})
		t.Cleanup(s.Close)
		a := NewAdd[int](s.Engine())
		a.SetValue(10)
		var b *Add[int]
		if err := s.Run(func(c *sched.Context) {
			a.Add(c, 1) // populates a's typed cache for this context
			a.Add(c, 1) // cached fast path
			a.Close()   // mid-run unregister: epoch bump, slot freed
			b = NewAdd[int](s.Engine())
			if b.Reducer().Addr() != a.Reducer().Addr() {
				t.Errorf("slot not recycled: a at %d, b at %d", a.Reducer().Addr(), b.Reducer().Addr())
			}
			b.Add(c, 5) // must get a fresh identity view, not a's cached one
			// The retired handle re-resolves to the frozen leftmost value:
			// its typed cache entry must not survive the unregister.
			if got := *a.View(c); got != 10 {
				t.Errorf("retired handle view = %d, want frozen leftmost 10", got)
			}
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		// a's in-flight view (the two +1s) was dropped, never merged; b's
		// view merged normally despite living at the recycled address.
		if got := a.Value(); got != 10 {
			t.Fatalf("retired a.Value() = %d, want 10", got)
		}
		if got := b.Value(); got != 5 {
			t.Fatalf("b.Value() = %d, want 5 (typed cache leaked across slot reuse)", got)
		}
	})
}

// TestTypedNilContextSerialPath checks that every typed reducer behaves
// like an ordinary variable when used with a nil context outside the
// scheduler (the serial path of the paper's reducers).
func TestTypedNilContextSerialPath(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		eng := NewEngine(m, 1, EngineOptions{})
		sum := NewAdd[int](eng)
		sum.Add(nil, 5)
		sum.Add(nil, 7)
		if got := sum.Value(); got != 12 {
			t.Fatalf("serial sum = %d, want 12", got)
		}
		mn := NewMin[int](eng)
		mn.Update(nil, 9)
		mn.Update(nil, 3)
		if v, ok := mn.Value(); !ok || v != 3 {
			t.Fatalf("serial min = %d/%v, want 3", v, ok)
		}
		lst := NewList[string](eng)
		lst.PushBack(nil, "a")
		lst.PushBack(nil, "b")
		if got := lst.Value(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
			t.Fatalf("serial list = %v", got)
		}
		str := NewString(eng)
		str.Append(nil, "x")
		str.Append(nil, "y")
		if str.Value() != "xy" {
			t.Fatalf("serial string = %q", str.Value())
		}
		hist := NewMapOf[int, int](eng, func(a, b int) int { return a + b })
		hist.Update(nil, 1, 2)
		hist.Update(nil, 1, 3)
		if hist.Value()[1] != 5 {
			t.Fatalf("serial map = %v", hist.Value())
		}
		cu := NewCustomOf[[]int](eng, seqMonoid{})
		*cu.View(nil) = append(*cu.View(nil), 42)
		if got := *cu.Value(); len(got) != 1 || got[0] != 42 {
			t.Fatalf("serial custom = %v", got)
		}
		and := NewAnd(eng)
		and.Update(nil, true)
		and.Update(nil, false)
		or := NewOr(eng)
		or.Update(nil, false)
		or.Update(nil, true)
		if and.Value() || !or.Value() {
			t.Fatalf("serial and/or = %v/%v", and.Value(), or.Value())
		}
	})
}

// TestTypedHandleCountedRouting pins the instrumentation contract: a handle
// created on an engine with lookup counting enabled routes every access
// through the engine's counted Lookup (its own cache would hide hits from
// the paper's lookup-count figures).
func TestTypedHandleCountedRouting(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := NewSession(m, 1, EngineOptions{CountLookups: true})
		t.Cleanup(s.Close)
		sum := NewAdd[int](s.Engine())
		const n = 100
		if err := s.Run(func(c *sched.Context) {
			for i := 0; i < n; i++ {
				sum.Add(c, 1)
			}
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if got := s.Engine().Lookups(); got != n {
			t.Fatalf("counted engine saw %d lookups, want %d (typed cache must not swallow counted lookups)", got, n)
		}
		if got := sum.Value(); got != n {
			t.Fatalf("sum = %d, want %d", got, n)
		}
	})
}

// TestTypedMapCombinerCached checks MapOf's construction-time combiner
// cache: updates work even if the reducer's monoid is never consulted
// again, and duplicate keys combine correctly under parallel merges.
func TestTypedMapCombinerCached(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := testSession(t, m, 4)
		calls := 0
		hist := NewMapOf[int, int](s.Engine(), func(a, b int) int { calls++; return a + b })
		const n = 4000
		if err := s.Run(func(c *sched.Context) {
			c.ParallelFor(0, n, func(c *sched.Context, i int) {
				hist.Update(c, i%5, 1)
			})
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		total := 0
		for _, v := range hist.Value() {
			total += v
		}
		if total != n {
			t.Fatalf("histogram total = %d, want %d", total, n)
		}
		if calls == 0 {
			t.Fatal("combiner was never invoked")
		}
	})
}

// TestAdaptMonoidRoundTrip checks the typed→untyped monoid adapter used at
// registration: identity and reduce must behave identically through the
// untyped interface.
func TestAdaptMonoidRoundTrip(t *testing.T) {
	um := AdaptMonoid[[]int](seqMonoid{})
	l := um.Identity().(*[]int)
	r := um.Identity().(*[]int)
	*l = append(*l, 1)
	*r = append(*r, 2, 3)
	out := um.Reduce(l, r).(*[]int)
	if got := *out; len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("adapted reduce = %v", got)
	}
	tf := TypedFuncMonoid[int]{
		IdentityFn: func() *int { return new(int) },
		ReduceFn:   func(a, b *int) *int { *a += *b; return a },
	}
	x, y := tf.Identity(), tf.Identity()
	*x, *y = 4, 5
	if *tf.Reduce(x, y) != 9 {
		t.Fatal("TypedFuncMonoid reduce failed")
	}
}
