package reducers

import (
	"testing"
	"unsafe"

	"repro/internal/core"
	"repro/internal/sched"
)

// TestAdaptMonoidArenaEligibility pins which view types get the arena
// adapter: fixed-size pointer-free types do, anything carrying pointers
// (slices, maps, strings) stays on the plain adapter.
func TestAdaptMonoidArenaEligibility(t *testing.T) {
	if _, ok := AdaptMonoid[int](addMonoid[int]{}).(core.ArenaMonoid); !ok {
		t.Fatal("int views should be arena-eligible")
	}
	if _, ok := AdaptMonoid[bool](andMonoid{}).(core.ArenaMonoid); !ok {
		t.Fatal("bool views should be arena-eligible")
	}
	if _, ok := AdaptMonoid[Extreme[float64]](minMonoid[float64]{}).(core.ArenaMonoid); !ok {
		t.Fatal("Extreme[float64] (flat struct) should be arena-eligible")
	}
	if _, ok := AdaptMonoid[Extreme[string]](minMonoid[string]{}).(core.ArenaMonoid); ok {
		t.Fatal("Extreme[string] carries a string and must stay on the heap path")
	}
	if _, ok := AdaptMonoid[[]int](listMonoid[int]{}).(core.ArenaMonoid); ok {
		t.Fatal("slice views must stay on the heap path")
	}
	if _, ok := AdaptMonoid[map[string]int](mapMonoid[string, int]{combine: func(a, b int) int { return a + b }}).(core.ArenaMonoid); ok {
		t.Fatal("map views must stay on the heap path")
	}
	// Oversized pointer-free views fall back to the heap path too.
	type big struct{ a [40]int64 } // 320 bytes > largest class
	if _, ok := AdaptMonoid[big](TypedFuncMonoid[big]{
		IdentityFn: func() *big { return &big{} },
		ReduceFn:   func(l, r *big) *big { return l },
	}).(core.ArenaMonoid); ok {
		t.Fatal("oversized views must stay on the heap path")
	}
}

// TestArenaAdapterInitViewWritesIdentity checks that InitView reproduces
// the monoid identity — including non-zero identities like And's true —
// over memory holding a dead prior view.
func TestArenaAdapterInitViewWritesIdentity(t *testing.T) {
	am, ok := AdaptMonoid[bool](andMonoid{}).(core.ArenaMonoid)
	if !ok {
		t.Fatal("andMonoid should adapt to an ArenaMonoid")
	}
	if am.ViewBytes() != unsafe.Sizeof(false) {
		t.Fatalf("ViewBytes = %d, want %d", am.ViewBytes(), unsafe.Sizeof(false))
	}
	block := new(bool)
	*block = false // a dead prior view that is NOT the identity
	am.InitView(unsafe.Pointer(block))
	if !*block {
		t.Fatal("InitView did not reconstruct the And identity (true)")
	}

	me, ok := AdaptMonoid[Extreme[int]](minMonoid[int]{}).(core.ArenaMonoid)
	if !ok {
		t.Fatal("minMonoid should adapt to an ArenaMonoid")
	}
	ext := &Extreme[int]{Set: true, Val: 42}
	me.InitView(unsafe.Pointer(ext))
	if ext.Set || ext.Val != 0 {
		t.Fatalf("InitView left a dirty Extreme view: %+v", ext)
	}
}

// TestReadViewKeepsViewsElidable drives the typed read-only access path on
// the memory-mapped engine: a trace that only ReadViews a reducer deposits
// nothing, the merge pipeline counts an elision, and the value is
// untouched; a later trace that Views (mutable) merges normally.
func TestReadViewKeepsViewsElidable(t *testing.T) {
	eng := core.NewMM(core.MMConfig{Workers: 1})
	s := core.NewSession(1, eng)
	defer s.Close()
	sum := NewAdd[int](eng)
	if !sum.Reducer().ArenaEligible() {
		t.Fatal("Add[int] should be arena-eligible")
	}
	if err := s.Run(func(c *sched.Context) {
		w := c.Worker()
		// Trace 1: read-only.
		tr := eng.BeginTrace(w)
		if got := *sum.ReadView(c); got != 0 {
			t.Errorf("ReadView = %d, want identity 0", got)
		}
		if got := *sum.ReadView(c); got != 0 { // cached re-read
			t.Errorf("cached ReadView = %d, want 0", got)
		}
		d := eng.EndTrace(w, tr)
		if d != nil {
			t.Error("read-only trace produced a deposit")
		}
		eng.Merge(w, w.CurrentTrace(), d)
		// Trace 2: read-only first, then mutable — the write must survive.
		tr = eng.BeginTrace(w)
		_ = *sum.ReadView(c)
		*sum.View(c) += 9
		if got := *sum.ReadView(c); got != 9 {
			t.Errorf("ReadView after write = %d, want 9", got)
		}
		d = eng.EndTrace(w, tr)
		if d == nil {
			t.Error("written view was elided")
		}
		eng.Merge(w, w.CurrentTrace(), d)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.Run(func(c *sched.Context) {}); err != nil {
		t.Fatalf("flush run: %v", err)
	}
	if got := sum.Value(); got != 9 {
		t.Fatalf("final value = %d, want 9", got)
	}
	ms := eng.MergeStats()
	if ms.IdentityElisions != 1 {
		t.Fatalf("IdentityElisions = %d, want 1", ms.IdentityElisions)
	}
}

// TestTypedUpdatesRecycleArenaViews checks the full typed pipeline at
// steady state: repeated steal-shaped trace cycles over typed Add handles
// draw every identity view from the arena free lists.
func TestTypedUpdatesRecycleArenaViews(t *testing.T) {
	const reps = 16
	eng := core.NewMM(core.MMConfig{Workers: 1})
	s := core.NewSession(1, eng)
	defer s.Close()
	sums := make([]*Add[int64], 8)
	for i := range sums {
		sums[i] = NewAdd[int64](eng)
	}
	if err := s.Run(func(c *sched.Context) {
		w := c.Worker()
		for rep := 0; rep < reps; rep++ {
			tr := eng.BeginTrace(w)
			for _, h := range sums {
				h.Add(c, 1)
			}
			d := eng.EndTrace(w, tr)
			eng.Merge(w, w.CurrentTrace(), d)
		}
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.Run(func(c *sched.Context) {}); err != nil {
		t.Fatalf("flush run: %v", err)
	}
	for i, h := range sums {
		if got := h.Value(); got != reps {
			t.Fatalf("sum %d = %d, want %d", i, got, reps)
		}
	}
	st := eng.ArenaStats()
	if st.HeapViews != 0 {
		t.Fatalf("HeapViews = %d, want 0 on the typed arena path", st.HeapViews)
	}
	if st.FreeHits == 0 {
		t.Fatal("typed trace cycles never hit the arena free list")
	}
}

// TestCountedReadViewStaysReadOnly pins the instrumented-run behaviour: on
// a lookup-counting engine, ReadView must still resolve through the
// read-only path (counted, but never stamping the written bit), so
// identity elision keeps working under instrumentation.
func TestCountedReadViewStaysReadOnly(t *testing.T) {
	eng := core.NewMM(core.MMConfig{Workers: 1, CountLookups: true})
	s := core.NewSession(1, eng)
	defer s.Close()
	sum := NewAdd[int](eng)
	const reads = 10
	if err := s.Run(func(c *sched.Context) {
		w := c.Worker()
		tr := eng.BeginTrace(w)
		for i := 0; i < reads; i++ {
			if got := *sum.ReadView(c); got != 0 {
				t.Errorf("counted ReadView = %d, want 0", got)
			}
		}
		d := eng.EndTrace(w, tr)
		if d != nil {
			t.Error("counted read-only trace produced a deposit")
		}
		eng.Merge(w, w.CurrentTrace(), d)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := eng.Lookups(); got != reads {
		t.Fatalf("Lookups = %d, want %d (counted ReadView must count every access)", got, reads)
	}
	if ms := eng.MergeStats(); ms.IdentityElisions != 1 {
		t.Fatalf("IdentityElisions = %d, want 1", ms.IdentityElisions)
	}
	if got := sum.Value(); got != 0 {
		t.Fatalf("value = %d, want 0", got)
	}
}
