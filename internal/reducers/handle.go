package reducers

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
)

// TypedMonoid is the generics-first counterpart of core.Monoid: the same
// algebra (associative Reduce with identity Identity, left argument
// serially earlier and commonly updated in place), expressed over a
// concrete view type V.  It is adapted into the untyped core.Monoid
// exactly once, at registration, so the engines stay mechanism-focused and
// monomorphic while user code never writes a type assertion.
type TypedMonoid[V any] interface {
	// Identity allocates a fresh identity view.
	Identity() *V
	// Reduce combines two views, left serially preceding right, and
	// returns the combined view (commonly left, updated in place).
	Reduce(left, right *V) *V
}

// typedMonoidAdapter boxes a TypedMonoid into the untyped core.Monoid.
// The only interface conversions in the whole typed pipeline happen here —
// on view creation and on hypermerge, never on the update fast path.
type typedMonoidAdapter[V any] struct{ m TypedMonoid[V] }

func (a typedMonoidAdapter[V]) Identity() any { return a.m.Identity() }
func (a typedMonoidAdapter[V]) Reduce(left, right any) any {
	return a.m.Reduce(left.(*V), right.(*V))
}

// AdaptMonoid wraps a typed monoid into the untyped core.Monoid the engines
// operate on.  Handles do this internally; it is exported for callers that
// register typed monoids through the raw core.Engine API.
func AdaptMonoid[V any](m TypedMonoid[V]) core.Monoid {
	return typedMonoidAdapter[V]{m: m}
}

// TypedFuncMonoid adapts a pair of typed functions into a TypedMonoid, for
// one-off custom reducers that do not warrant a named monoid type.
type TypedFuncMonoid[V any] struct {
	IdentityFn func() *V
	ReduceFn   func(left, right *V) *V
}

// Identity implements TypedMonoid.
func (f TypedFuncMonoid[V]) Identity() *V { return f.IdentityFn() }

// Reduce implements TypedMonoid.
func (f TypedFuncMonoid[V]) Reduce(left, right *V) *V { return f.ReduceFn(left, right) }

// viewSlot is one worker's entry in a handle's typed view cache: the
// context the view was resolved for, the worker view epoch the resolution
// is valid for, and the typed view pointer.  The entry is padded to a cache
// line so adjacent workers' slots never share one.  Each slot is read and
// written only by its worker's goroutine; cross-goroutine invalidation
// happens purely through the worker's atomic view epoch.
type viewSlot[V any] struct {
	ctx   *sched.Context
	epoch uint64
	view  *V
	_     [40]byte
}

// Handle is the generic core every typed reducer embeds: a registered
// reducer plus a per-worker, per-context typed view cache.
//
// View resolves the calling context's local view of the reducer as a *V.
// Steady state — the same context touching the same reducer again with no
// intervening steal, merge, unregister or region growth — costs one padded
// atomic epoch load and two compares, then returns the typed pointer
// directly: no interface dispatch, no runtime type assertion, and no
// allocation.  The cache is invalidated by the worker view epoch that
// already serialises the engines' view machinery: trace boundaries and
// hypermerges bump it owner-side, unregisters and view-region growth bump
// it cross-worker, so a cached *V can never outlive the untyped view it
// shadows.  On a miss the handle resolves through Engine.LookupCached,
// performing the single untyped lookup and one conversion, and re-stamps
// the slot with the epoch sampled before that lookup.
//
// A handle built on an engine with lookup counting enabled routes every
// access through the engine's counted Lookup instead (the instrumented
// runs of the paper's figures need exact lookup counts); enable counting
// before creating handles.
type Handle[V any] struct {
	eng core.Engine
	r   *core.Reducer
	// counted records, at construction, that the engine counts lookups;
	// see the type comment.
	counted bool
	// slots is the typed view cache, indexed by worker ID.  A worker of a
	// larger runtime attached after construction falls back to the
	// uncached typed lookup.
	slots []viewSlot[V]
}

// NewHandle registers a typed monoid with the engine and returns the typed
// handle for it, panicking on registration failure like the prebuilt
// reducer constructors.  Most callers use the prebuilt reducers (Add, Min,
// List, ...); NewHandle is for building new typed reducer kinds by
// embedding.
func NewHandle[V any](eng core.Engine, m TypedMonoid[V]) Handle[V] {
	return newHandle[V](eng, m)
}

// TryNewHandle is NewHandle returning registration failures as errors
// instead of panicking, for callers that register reducers at runtime and
// must degrade gracefully (registration can fail for resource reasons,
// e.g. TLMM address-space exhaustion under ModelAddressSpace).
func TryNewHandle[V any](eng core.Engine, m TypedMonoid[V]) (Handle[V], error) {
	r, err := eng.Register(AdaptMonoid[V](m))
	if err != nil {
		return Handle[V]{}, err
	}
	return Handle[V]{
		eng:     eng,
		r:       r,
		counted: eng.CountingLookups(),
		slots:   make([]viewSlot[V], eng.Workers()),
	}, nil
}

func newHandle[V any](eng core.Engine, m TypedMonoid[V]) Handle[V] {
	h, err := TryNewHandle[V](eng, m)
	if err != nil {
		panic(fmt.Sprintf("reducers: register: %v", err))
	}
	return h
}

// View returns the local view of the reducer for context c as a typed
// pointer.  With a nil context (serial code outside the scheduler) it
// returns the leftmost view, so typed reducers degrade to ordinary
// variables exactly like the untyped Lookup path.
func (h *Handle[V]) View(c *sched.Context) *V {
	if c == nil {
		return h.r.Value().(*V)
	}
	if h.counted {
		return h.eng.Lookup(c, h.r).(*V)
	}
	w := c.Worker()
	if id := w.ID(); id < len(h.slots) {
		s := &h.slots[id]
		if s.ctx == c && s.epoch == w.ViewEpoch() {
			return s.view
		}
		v, epoch := h.eng.LookupCached(c, h.r, s.epoch)
		tv := v.(*V)
		if epoch != 0 {
			// Engines return epoch zero for "do not cache" (retired
			// handles); a worker running a context has passed BeginTrace,
			// so its real epoch is never zero and the sentinel can never
			// collide with a valid stamp.
			s.ctx, s.epoch, s.view = c, epoch, tv
		}
		return tv
	}
	return h.eng.Lookup(c, h.r).(*V)
}

// Peek returns the reducer's current leftmost view as a typed pointer:
// outside a parallel region this is the reducer's final value.
func (h *Handle[V]) Peek() *V { return h.r.Value().(*V) }

// SetView replaces the leftmost view.  Use it only outside parallel
// regions.
func (h *Handle[V]) SetView(v *V) { h.r.SetValue(v) }

// Reducer exposes the underlying untyped reducer handle.
func (h *Handle[V]) Reducer() *core.Reducer { return h.r }

// Engine returns the engine the reducer is registered with.
func (h *Handle[V]) Engine() core.Engine { return h.eng }

// Close unregisters the reducer; the leftmost view remains readable
// through Peek (and the wrappers' Value methods).
func (h *Handle[V]) Close() { h.eng.Unregister(h.r) }
