package reducers

import (
	"fmt"
	"reflect"
	"unsafe"

	"repro/internal/core"
	"repro/internal/hypermap"
	"repro/internal/sched"
)

// TypedMonoid is the generics-first counterpart of core.Monoid: the same
// algebra (associative Reduce with identity Identity, left argument
// serially earlier and commonly updated in place), expressed over a
// concrete view type V.  It is adapted into the untyped core.Monoid
// exactly once, at registration, so the engines stay mechanism-focused and
// monomorphic while user code never writes a type assertion.
type TypedMonoid[V any] interface {
	// Identity allocates a fresh identity view.
	Identity() *V
	// Reduce combines two views, left serially preceding right, and
	// returns the combined view (commonly left, updated in place).
	Reduce(left, right *V) *V
}

// typedMonoidAdapter boxes a TypedMonoid into the untyped core.Monoid.
// The only interface conversions in the whole typed pipeline happen here —
// on view creation and on hypermerge, never on the update fast path.
type typedMonoidAdapter[V any] struct{ m TypedMonoid[V] }

func (a typedMonoidAdapter[V]) Identity() any { return a.m.Identity() }
func (a typedMonoidAdapter[V]) Reduce(left, right any) any {
	return a.m.Reduce(left.(*V), right.(*V))
}

// arenaMonoidAdapter is the adapter used when V is arena-eligible (fixed
// size, pointer-free): it additionally implements core.ArenaMonoid, so the
// memory-mapping engine places identity views inside its per-worker view
// arenas instead of calling the heap allocator.  The identity value is
// captured once at adaptation — a monoid's identity element is unique, so
// copying the seed is equivalent to calling Identity (which stays in use on
// the heap path and for the reducer's leftmost view).
type arenaMonoidAdapter[V any] struct {
	m    TypedMonoid[V]
	seed V
}

func (a *arenaMonoidAdapter[V]) Identity() any { return a.m.Identity() }
func (a *arenaMonoidAdapter[V]) Reduce(left, right any) any {
	return a.m.Reduce(left.(*V), right.(*V))
}
func (a *arenaMonoidAdapter[V]) ViewBytes() uintptr { return unsafe.Sizeof(a.seed) }
func (a *arenaMonoidAdapter[V]) InitView(p unsafe.Pointer) {
	*(*V)(p) = a.seed
}

// AdaptMonoid wraps a typed monoid into the untyped core.Monoid the engines
// operate on.  Handles do this internally; it is exported for callers that
// register typed monoids through the raw core.Engine API.  View types that
// are fixed-size and pointer-free (numbers, bools, flat structs — the Add,
// Min, Max, And and Or reducers) get the arena adapter, which lets the
// memory-mapping engine construct and recycle their identity views inside
// its per-worker view arenas: the post-steal first lookup then performs no
// heap allocation at all.
func AdaptMonoid[V any](m TypedMonoid[V]) core.Monoid {
	if t := reflect.TypeFor[V](); pointerFree(t) && core.ArenaClassFor(t.Size()) >= 0 {
		if id := m.Identity(); id != nil {
			return &arenaMonoidAdapter[V]{m: m, seed: *id}
		}
	}
	return typedMonoidAdapter[V]{m: m}
}

// pointerFree reports whether a value of type t contains no pointers, so
// its views may live in arena memory the garbage collector does not scan.
// The check is conservative: anything not provably pointer-free (slices,
// maps, strings, interfaces, channels, pointers, functions) stays on the
// heap path.
func pointerFree(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return t.Len() == 0 || pointerFree(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !pointerFree(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// TypedFuncMonoid adapts a pair of typed functions into a TypedMonoid, for
// one-off custom reducers that do not warrant a named monoid type.
type TypedFuncMonoid[V any] struct {
	IdentityFn func() *V
	ReduceFn   func(left, right *V) *V
}

// Identity implements TypedMonoid.
func (f TypedFuncMonoid[V]) Identity() *V { return f.IdentityFn() }

// Reduce implements TypedMonoid.
func (f TypedFuncMonoid[V]) Reduce(left, right *V) *V { return f.ReduceFn(left, right) }

// viewSlot is one worker's entry in a handle's typed view cache: the
// context the view was resolved for, the typed view pointer, and two
// worker-view-epoch stamps — wepoch marks the epoch the resolution is valid
// for writing (the engine-side written bit is stamped), repoch the epoch it
// is valid for reading.  A mutable resolution sets both; a read-only one
// sets repoch alone, so a View after a ReadView still revisits the engine
// once to stamp the written bit.  Encoding writability as its own epoch
// rather than a bool keeps the View hit check to one epoch load and two
// compares — no separate written-flag load on the hottest path.  The entry
// is padded to a cache line so adjacent workers' slots never share one.
// Each slot is read and written only by its worker's goroutine;
// cross-goroutine invalidation happens purely through the worker's atomic
// view epoch.
//
//cilkvet:nocopy
type viewSlot[V any] struct {
	ctx    *sched.Context
	wepoch uint64
	repoch uint64
	view   *V
	_      [32]byte
}

// Handle is the generic core every typed reducer embeds: a registered
// reducer plus a per-worker, per-context typed view cache.
//
// View resolves the calling context's local view of the reducer as a *V.
// Steady state — the same context touching the same reducer again with no
// intervening steal, merge, unregister or region growth — costs one padded
// atomic epoch load and two compares, then returns the typed pointer
// directly: no interface dispatch, no runtime type assertion, and no
// allocation.  The cache is invalidated by the worker view epoch that
// already serialises the engines' view machinery: trace boundaries and
// hypermerges bump it owner-side, unregisters and view-region growth bump
// it cross-worker, so a cached *V can never outlive the untyped view it
// shadows.  On a miss the handle resolves through Engine.LookupCached,
// performing the single untyped lookup and one conversion, and re-stamps
// the slot with the epoch sampled before that lookup.
//
// A handle built on an engine with lookup counting enabled routes every
// access through the engine's counted Lookup instead (the instrumented
// runs of the paper's figures need exact lookup counts); enable counting
// before creating handles.
type Handle[V any] struct {
	eng core.Engine
	r   *core.Reducer
	// counted records, at construction, that the engine counts lookups;
	// see the type comment.
	counted bool
	// mm and hm are the devirtualized miss paths, captured by a type switch
	// at construction: at most one is non-nil, and a cache miss on it calls
	// the engine's concrete LookupWordFast directly instead of dispatching
	// through the Engine interface.  A third-party engine leaves both nil
	// and misses resolve through the interface LookupWord, the retained
	// slow/fallback path.
	mm *core.MM
	hm *hypermap.HM
	// slots is the typed view cache, indexed by worker ID.  A worker of a
	// larger runtime attached after construction falls back to the
	// uncached typed lookup.
	slots []viewSlot[V]
}

// NewHandle registers a typed monoid with the engine and returns the typed
// handle for it, panicking on registration failure like the prebuilt
// reducer constructors.  Most callers use the prebuilt reducers (Add, Min,
// List, ...); NewHandle is for building new typed reducer kinds by
// embedding.
func NewHandle[V any](eng core.Engine, m TypedMonoid[V]) Handle[V] {
	return newHandle[V](eng, m)
}

// TryNewHandle is NewHandle returning registration failures as errors
// instead of panicking, for callers that register reducers at runtime and
// must degrade gracefully (registration can fail for resource reasons,
// e.g. TLMM address-space exhaustion under ModelAddressSpace).
func TryNewHandle[V any](eng core.Engine, m TypedMonoid[V]) (Handle[V], error) {
	r, err := eng.Register(AdaptMonoid[V](m))
	if err != nil {
		return Handle[V]{}, err
	}
	h := Handle[V]{
		eng:     eng,
		r:       r,
		counted: eng.CountingLookups(),
		slots:   make([]viewSlot[V], eng.Workers()),
	}
	// Peel registration facades (core.JobSession and anything else exposing
	// Underlying) before the type switch, so a handle registered through a
	// per-job session still captures the concrete engine's devirtualized
	// miss path.  Registration itself already went through the facade, which
	// is where its scoping lives; lookups are facade-free by design.
	conc := eng
	for {
		u, ok := conc.(interface{ Underlying() core.Engine })
		if !ok {
			break
		}
		conc = u.Underlying()
	}
	switch conc := conc.(type) {
	case *core.MM:
		h.mm = conc
	case *hypermap.HM:
		h.hm = conc
	}
	return h, nil
}

func newHandle[V any](eng core.Engine, m TypedMonoid[V]) Handle[V] {
	h, err := TryNewHandle[V](eng, m)
	if err != nil {
		panic(fmt.Sprintf("reducers: register: %v", err))
	}
	return h
}

// View returns the local view of the reducer for context c as a typed
// pointer, for reading or mutation.  With a nil context (serial code
// outside the scheduler) it returns the leftmost view, so typed reducers
// degrade to ordinary variables exactly like the untyped Lookup path.
//
// The steady-state hit is an epoch load, two compares and the typed
// deref — nothing else.  Everything that is not that shape (nil contexts,
// counted handles, cache misses, written-bit stamping) lives in the
// outlined viewMiss, keeping View itself under the compiler's inlining
// budget so the hit path inlines into the caller's loop body; `make
// inline-check` pins that.  A counted handle can never take the hit path
// because it never populates its slots, so the hit check needs no counted
// test.
//
// The miss path resolves the packed slot word through the engine's
// concrete LookupWordFast (captured at construction, no interface
// dispatch; see Handle.mm) and, being a mutable access, stamps the slot's
// written bit, which exempts the view from the merge pipeline's
// identity-view elision.
func (h *Handle[V]) View(c *sched.Context) *V {
	if c != nil {
		// The id comes off the context, not the worker, so the slot fetch
		// does not wait on the c.w load the epoch compare needs.
		if id := c.WorkerID(); uint(id) < uint(len(h.slots)) {
			if s := &h.slots[id]; s.ctx == c && s.wepoch == c.ViewEpoch() {
				return s.view
			}
		}
	}
	return h.viewMiss(c)
}

// viewMiss is the outlined slow half of View: a cache miss, or a hit that
// was resolved read-only and must revisit the engine once so the slot's
// written bit gets stamped.
func (h *Handle[V]) viewMiss(c *sched.Context) *V {
	if c == nil {
		return h.r.Value().(*V)
	}
	if h.counted {
		return h.eng.Lookup(c, h.r).(*V)
	}
	w := c.Worker()
	id := w.ID()
	if id >= len(h.slots) {
		// A worker of a larger runtime attached after construction: no
		// cache slot, fall back to the uncached typed lookup.
		return h.eng.Lookup(c, h.r).(*V)
	}
	s := &h.slots[id]
	var word unsafe.Pointer
	var epoch uint64
	switch {
	case h.mm != nil:
		word, epoch = h.mm.LookupWordFast(c, h.r, true)
	case h.hm != nil:
		word, epoch = h.hm.LookupWordFast(c, h.r, true)
	default:
		word, epoch = h.eng.LookupWord(c, h.r, s.wepoch, true)
	}
	tv := (*V)(word)
	if epoch != 0 {
		// Engines return epoch zero for "do not cache" (retired
		// handles); a worker running a context has passed BeginTrace,
		// so its real epoch is never zero and the sentinel can never
		// collide with a valid stamp.  A mutable resolution is readable
		// too, so both stamps take the epoch.
		s.ctx, s.wepoch, s.repoch, s.view = c, epoch, epoch, tv
	}
	return tv
}

// ReadView returns the local view for reading only.  It resolves exactly
// like View but never stamps the written bit: a view that is only ever
// read through ReadView still equals the monoid identity, so the merge
// pipeline elides it — no reduce call, no transferal, and (on the
// memory-mapped engine) its arena block is recycled at trace end.  Do not
// write through the returned pointer; use View for that.
func (h *Handle[V]) ReadView(c *sched.Context) *V {
	if c != nil {
		if id := c.WorkerID(); uint(id) < uint(len(h.slots)) {
			// A cached view serves reads regardless of how it was resolved:
			// repoch is stamped by both resolution modes.
			if s := &h.slots[id]; s.ctx == c && s.repoch == c.ViewEpoch() {
				return s.view
			}
		}
	}
	return h.readViewMiss(c)
}

// readViewMiss is the outlined slow half of ReadView, mirroring viewMiss
// with a read-only resolution: the written bit stays clear and the cache
// slot records the view as unwritten, so a later View still revisits the
// engine once to stamp it.
func (h *Handle[V]) readViewMiss(c *sched.Context) *V {
	if c == nil {
		return h.r.Value().(*V)
	}
	if h.counted {
		// Counted handles bypass their caches so instrumented runs keep
		// exact lookup counts — but a read must still resolve through the
		// read-only path (LookupWord counts it too), or counting would
		// stamp the written bit and silently disable identity elision.
		word, _ := h.eng.LookupWord(c, h.r, 0, false)
		return (*V)(word)
	}
	w := c.Worker()
	id := w.ID()
	if id >= len(h.slots) {
		return h.eng.Lookup(c, h.r).(*V)
	}
	s := &h.slots[id]
	var word unsafe.Pointer
	var epoch uint64
	switch {
	case h.mm != nil:
		word, epoch = h.mm.LookupWordFast(c, h.r, false)
	case h.hm != nil:
		word, epoch = h.hm.LookupWordFast(c, h.r, false)
	default:
		word, epoch = h.eng.LookupWord(c, h.r, s.repoch, false)
	}
	tv := (*V)(word)
	if epoch != 0 {
		// The resolution did not stamp the written bit, so it must not
		// satisfy a later View hit: clear the write stamp (a still-valid
		// wepoch would imply ctx == c and repoch == epoch, which would
		// have hit above — so nothing valid is ever discarded here).
		s.ctx, s.wepoch, s.repoch, s.view = c, 0, epoch, tv
	}
	return tv
}

// Peek returns the reducer's current leftmost view as a typed pointer:
// outside a parallel region this is the reducer's final value.
func (h *Handle[V]) Peek() *V { return h.r.Value().(*V) }

// Snapshot copies the reducer's current leftmost view and returns the copy.
// It is the defined fast read path into a live session for non-worker
// goroutines (an HTTP handler sampling a counter mid-job): the copy is taken
// under the reducer's lock, the same lock every merge into the leftmost view
// holds, so the returned value is a consistent snapshot of some prefix of
// the merges — never a half-merged torn read, which a Peek dereferenced
// outside the lock could observe while a hypermerge runs Reduce in place.
// Deposits a running job has not yet merged are not included.  The copy is
// shallow: for view types holding pointers or slices (List reducers), the
// referenced cells are shared with the live view and may still be appended
// to — snapshot-read such reducers only between jobs, or keep V flat.
func (h *Handle[V]) Snapshot() V {
	var out V
	h.r.WithLeftmost(func(view any) {
		out = *view.(*V)
	})
	return out
}

// SetView replaces the leftmost view.  Use it only outside parallel
// regions.
func (h *Handle[V]) SetView(v *V) { h.r.SetValue(v) }

// Reducer exposes the underlying untyped reducer handle.
func (h *Handle[V]) Reducer() *core.Reducer { return h.r }

// Engine returns the engine the reducer is registered with.
func (h *Handle[V]) Engine() core.Engine { return h.eng }

// Close unregisters the reducer; the leftmost view remains readable
// through Peek (and the wrappers' Value methods).
func (h *Handle[V]) Close() { h.eng.Unregister(h.r) }
