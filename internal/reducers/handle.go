package reducers

import (
	"fmt"
	"reflect"
	"unsafe"

	"repro/internal/core"
	"repro/internal/sched"
)

// TypedMonoid is the generics-first counterpart of core.Monoid: the same
// algebra (associative Reduce with identity Identity, left argument
// serially earlier and commonly updated in place), expressed over a
// concrete view type V.  It is adapted into the untyped core.Monoid
// exactly once, at registration, so the engines stay mechanism-focused and
// monomorphic while user code never writes a type assertion.
type TypedMonoid[V any] interface {
	// Identity allocates a fresh identity view.
	Identity() *V
	// Reduce combines two views, left serially preceding right, and
	// returns the combined view (commonly left, updated in place).
	Reduce(left, right *V) *V
}

// typedMonoidAdapter boxes a TypedMonoid into the untyped core.Monoid.
// The only interface conversions in the whole typed pipeline happen here —
// on view creation and on hypermerge, never on the update fast path.
type typedMonoidAdapter[V any] struct{ m TypedMonoid[V] }

func (a typedMonoidAdapter[V]) Identity() any { return a.m.Identity() }
func (a typedMonoidAdapter[V]) Reduce(left, right any) any {
	return a.m.Reduce(left.(*V), right.(*V))
}

// arenaMonoidAdapter is the adapter used when V is arena-eligible (fixed
// size, pointer-free): it additionally implements core.ArenaMonoid, so the
// memory-mapping engine places identity views inside its per-worker view
// arenas instead of calling the heap allocator.  The identity value is
// captured once at adaptation — a monoid's identity element is unique, so
// copying the seed is equivalent to calling Identity (which stays in use on
// the heap path and for the reducer's leftmost view).
type arenaMonoidAdapter[V any] struct {
	m    TypedMonoid[V]
	seed V
}

func (a *arenaMonoidAdapter[V]) Identity() any { return a.m.Identity() }
func (a *arenaMonoidAdapter[V]) Reduce(left, right any) any {
	return a.m.Reduce(left.(*V), right.(*V))
}
func (a *arenaMonoidAdapter[V]) ViewBytes() uintptr { return unsafe.Sizeof(a.seed) }
func (a *arenaMonoidAdapter[V]) InitView(p unsafe.Pointer) {
	*(*V)(p) = a.seed
}

// AdaptMonoid wraps a typed monoid into the untyped core.Monoid the engines
// operate on.  Handles do this internally; it is exported for callers that
// register typed monoids through the raw core.Engine API.  View types that
// are fixed-size and pointer-free (numbers, bools, flat structs — the Add,
// Min, Max, And and Or reducers) get the arena adapter, which lets the
// memory-mapping engine construct and recycle their identity views inside
// its per-worker view arenas: the post-steal first lookup then performs no
// heap allocation at all.
func AdaptMonoid[V any](m TypedMonoid[V]) core.Monoid {
	if t := reflect.TypeFor[V](); pointerFree(t) && core.ArenaClassFor(t.Size()) >= 0 {
		if id := m.Identity(); id != nil {
			return &arenaMonoidAdapter[V]{m: m, seed: *id}
		}
	}
	return typedMonoidAdapter[V]{m: m}
}

// pointerFree reports whether a value of type t contains no pointers, so
// its views may live in arena memory the garbage collector does not scan.
// The check is conservative: anything not provably pointer-free (slices,
// maps, strings, interfaces, channels, pointers, functions) stays on the
// heap path.
func pointerFree(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return t.Len() == 0 || pointerFree(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !pointerFree(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// TypedFuncMonoid adapts a pair of typed functions into a TypedMonoid, for
// one-off custom reducers that do not warrant a named monoid type.
type TypedFuncMonoid[V any] struct {
	IdentityFn func() *V
	ReduceFn   func(left, right *V) *V
}

// Identity implements TypedMonoid.
func (f TypedFuncMonoid[V]) Identity() *V { return f.IdentityFn() }

// Reduce implements TypedMonoid.
func (f TypedFuncMonoid[V]) Reduce(left, right *V) *V { return f.ReduceFn(left, right) }

// viewSlot is one worker's entry in a handle's typed view cache: the
// context the view was resolved for, the worker view epoch the resolution
// is valid for, the typed view pointer, and whether the cached resolution
// already stamped the engine-side written bit (a View after a ReadView must
// revisit the engine once to stamp it).  The entry is padded to a cache
// line so adjacent workers' slots never share one.  Each slot is read and
// written only by its worker's goroutine; cross-goroutine invalidation
// happens purely through the worker's atomic view epoch.
type viewSlot[V any] struct {
	ctx     *sched.Context
	epoch   uint64
	view    *V
	written bool
	_       [39]byte
}

// Handle is the generic core every typed reducer embeds: a registered
// reducer plus a per-worker, per-context typed view cache.
//
// View resolves the calling context's local view of the reducer as a *V.
// Steady state — the same context touching the same reducer again with no
// intervening steal, merge, unregister or region growth — costs one padded
// atomic epoch load and two compares, then returns the typed pointer
// directly: no interface dispatch, no runtime type assertion, and no
// allocation.  The cache is invalidated by the worker view epoch that
// already serialises the engines' view machinery: trace boundaries and
// hypermerges bump it owner-side, unregisters and view-region growth bump
// it cross-worker, so a cached *V can never outlive the untyped view it
// shadows.  On a miss the handle resolves through Engine.LookupCached,
// performing the single untyped lookup and one conversion, and re-stamps
// the slot with the epoch sampled before that lookup.
//
// A handle built on an engine with lookup counting enabled routes every
// access through the engine's counted Lookup instead (the instrumented
// runs of the paper's figures need exact lookup counts); enable counting
// before creating handles.
type Handle[V any] struct {
	eng core.Engine
	r   *core.Reducer
	// counted records, at construction, that the engine counts lookups;
	// see the type comment.
	counted bool
	// slots is the typed view cache, indexed by worker ID.  A worker of a
	// larger runtime attached after construction falls back to the
	// uncached typed lookup.
	slots []viewSlot[V]
}

// NewHandle registers a typed monoid with the engine and returns the typed
// handle for it, panicking on registration failure like the prebuilt
// reducer constructors.  Most callers use the prebuilt reducers (Add, Min,
// List, ...); NewHandle is for building new typed reducer kinds by
// embedding.
func NewHandle[V any](eng core.Engine, m TypedMonoid[V]) Handle[V] {
	return newHandle[V](eng, m)
}

// TryNewHandle is NewHandle returning registration failures as errors
// instead of panicking, for callers that register reducers at runtime and
// must degrade gracefully (registration can fail for resource reasons,
// e.g. TLMM address-space exhaustion under ModelAddressSpace).
func TryNewHandle[V any](eng core.Engine, m TypedMonoid[V]) (Handle[V], error) {
	r, err := eng.Register(AdaptMonoid[V](m))
	if err != nil {
		return Handle[V]{}, err
	}
	return Handle[V]{
		eng:     eng,
		r:       r,
		counted: eng.CountingLookups(),
		slots:   make([]viewSlot[V], eng.Workers()),
	}, nil
}

func newHandle[V any](eng core.Engine, m TypedMonoid[V]) Handle[V] {
	h, err := TryNewHandle[V](eng, m)
	if err != nil {
		panic(fmt.Sprintf("reducers: register: %v", err))
	}
	return h
}

// View returns the local view of the reducer for context c as a typed
// pointer, for reading or mutation.  With a nil context (serial code
// outside the scheduler) it returns the leftmost view, so typed reducers
// degrade to ordinary variables exactly like the untyped Lookup path.
//
// The cache-miss path resolves through Engine.LookupWord — the packed slot
// word converted straight to *V, with no interface value constructed
// anywhere — and, being a mutable access, stamps the slot's written bit,
// which exempts the view from the merge pipeline's identity-view elision.
// The steady-state hit is one padded epoch load and three compares.
func (h *Handle[V]) View(c *sched.Context) *V {
	if c == nil {
		return h.r.Value().(*V)
	}
	if h.counted {
		return h.eng.Lookup(c, h.r).(*V)
	}
	w := c.Worker()
	if id := w.ID(); id < len(h.slots) {
		s := &h.slots[id]
		if s.ctx == c && s.written && s.epoch == w.ViewEpoch() {
			return s.view
		}
		// Cache miss — or a hit resolved read-only, which must revisit the
		// engine once so the slot's written bit gets stamped.
		word, epoch := h.eng.LookupWord(c, h.r, s.epoch, true)
		tv := (*V)(word)
		if epoch != 0 {
			// Engines return epoch zero for "do not cache" (retired
			// handles); a worker running a context has passed BeginTrace,
			// so its real epoch is never zero and the sentinel can never
			// collide with a valid stamp.
			s.ctx, s.epoch, s.view, s.written = c, epoch, tv, true
		}
		return tv
	}
	return h.eng.Lookup(c, h.r).(*V)
}

// ReadView returns the local view for reading only.  It resolves exactly
// like View but never stamps the written bit: a view that is only ever
// read through ReadView still equals the monoid identity, so the merge
// pipeline elides it — no reduce call, no transferal, and (on the
// memory-mapped engine) its arena block is recycled at trace end.  Do not
// write through the returned pointer; use View for that.
func (h *Handle[V]) ReadView(c *sched.Context) *V {
	if c == nil {
		return h.r.Value().(*V)
	}
	if h.counted {
		// Counted handles bypass their caches so instrumented runs keep
		// exact lookup counts — but a read must still resolve through the
		// read-only path (LookupWord counts it too), or counting would
		// stamp the written bit and silently disable identity elision.
		word, _ := h.eng.LookupWord(c, h.r, 0, false)
		return (*V)(word)
	}
	w := c.Worker()
	if id := w.ID(); id < len(h.slots) {
		s := &h.slots[id]
		if s.ctx == c && s.epoch == w.ViewEpoch() {
			// A cached view serves reads regardless of how it was resolved.
			return s.view
		}
		word, epoch := h.eng.LookupWord(c, h.r, s.epoch, false)
		tv := (*V)(word)
		if epoch != 0 {
			s.ctx, s.epoch, s.view, s.written = c, epoch, tv, false
		}
		return tv
	}
	return h.eng.Lookup(c, h.r).(*V)
}

// Peek returns the reducer's current leftmost view as a typed pointer:
// outside a parallel region this is the reducer's final value.
func (h *Handle[V]) Peek() *V { return h.r.Value().(*V) }

// SetView replaces the leftmost view.  Use it only outside parallel
// regions.
func (h *Handle[V]) SetView(v *V) { h.r.SetValue(v) }

// Reducer exposes the underlying untyped reducer handle.
func (h *Handle[V]) Reducer() *core.Reducer { return h.r }

// Engine returns the engine the reducer is registered with.
func (h *Handle[V]) Engine() core.Engine { return h.eng }

// Close unregisters the reducer; the leftmost view remains readable
// through Peek (and the wrappers' Value methods).
func (h *Handle[V]) Close() { h.eng.Unregister(h.r) }
