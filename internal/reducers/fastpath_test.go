package reducers

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hypermap"
	"repro/internal/metrics"
	"repro/internal/sched"
)

func fastPathStats(t *testing.T, eng core.Engine) metrics.LookupFastPathStats {
	t.Helper()
	switch e := eng.(type) {
	case *core.MM:
		return e.FastPathStats()
	case *hypermap.HM:
		return e.FastPathStats()
	}
	t.Fatalf("engine %T exposes no fast-path stats", eng)
	return metrics.LookupFastPathStats{}
}

// TestFastPathCounters pins when the devirtualized lookup's outcome
// counters tick on both engines: a first touch is a miss plus a cold miss,
// a steady-state handle-cache hit never reaches the engine at all, and an
// epoch invalidation turns exactly one re-resolution into an engine-side
// fast hit (the view still exists; only the handle's stamp went stale).
func TestFastPathCounters(t *testing.T) {
	for _, m := range Mechanisms() {
		t.Run(m.String(), func(t *testing.T) {
			s := NewSession(m, 2, EngineOptions{})
			defer s.Close()
			eng := s.Engine()
			sum := NewAdd[int64](eng)
			if err := s.Run(func(c *sched.Context) {
				sum.Add(c, 1)
				s0 := fastPathStats(t, eng)
				if s0.Misses < 1 || s0.ColdMisses < 1 {
					t.Errorf("first touch not counted as cold: %+v", s0)
				}
				sum.Add(c, 1)
				if s1 := fastPathStats(t, eng); s1 != s0 {
					t.Errorf("handle-cache hit reached the engine: %+v -> %+v", s0, s1)
				}
				// Invalidate the handle's epoch stamp without touching the
				// view: the re-resolution must be an engine fast hit, not a
				// cold one.
				c.Worker().InvalidateLookupCache()
				sum.Add(c, 1)
				s2 := fastPathStats(t, eng)
				if s2.Hits != s0.Hits+1 {
					t.Errorf("epoch miss took no engine fast hit: %+v -> %+v", s0, s2)
				}
				if s2.ColdMisses != s0.ColdMisses {
					t.Errorf("epoch miss went cold: %+v -> %+v", s0, s2)
				}
			}); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if got := sum.Value(); got != 3 {
				t.Fatalf("sum = %d, want 3", got)
			}

			// ResetOverheads must clear the family along with the other
			// lookup instrumentation.
			type resetter interface{ ResetOverheads() }
			eng.(resetter).ResetOverheads()
			if got := fastPathStats(t, eng); got != (metrics.LookupFastPathStats{}) {
				t.Fatalf("ResetOverheads left fast-path counters: %+v", got)
			}
		})
	}
}
