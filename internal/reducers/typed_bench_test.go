package reducers

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// The boxed* types replicate the seed's pre-generics reducer wrappers —
// an interface Lookup plus a runtime type assertion on every update — so
// the typed-vs-boxed benchmarks measure exactly the overhead the
// generics-first API removes.

type boxedAddView[T Number] struct{ v T }

type boxedAddMonoid[T Number] struct{}

func (boxedAddMonoid[T]) Identity() any { return &boxedAddView[T]{} }
func (boxedAddMonoid[T]) Reduce(left, right any) any {
	l := left.(*boxedAddView[T])
	l.v += right.(*boxedAddView[T]).v
	return l
}

type boxedAdd[T Number] struct {
	eng core.Engine
	r   *core.Reducer
}

func newBoxedAdd[T Number](eng core.Engine) *boxedAdd[T] {
	return &boxedAdd[T]{eng: eng, r: mustRegister(eng, boxedAddMonoid[T]{})}
}

func (a *boxedAdd[T]) add(c *sched.Context, v T) {
	a.eng.Lookup(c, a.r).(*boxedAddView[T]).v += v
}

type boxedListView[T any] struct{ items []T }

type boxedListMonoid[T any] struct{}

func (boxedListMonoid[T]) Identity() any { return &boxedListView[T]{} }
func (boxedListMonoid[T]) Reduce(left, right any) any {
	l := left.(*boxedListView[T])
	l.items = append(l.items, right.(*boxedListView[T]).items...)
	return l
}

type boxedList[T any] struct {
	eng core.Engine
	r   *core.Reducer
}

func newBoxedList[T any](eng core.Engine) *boxedList[T] {
	return &boxedList[T]{eng: eng, r: mustRegister(eng, boxedListMonoid[T]{})}
}

func (l *boxedList[T]) pushBack(c *sched.Context, v T) {
	view := l.eng.Lookup(c, l.r).(*boxedListView[T])
	view.items = append(view.items, v)
}

// benchEachMechanism runs the benchmark body once per mechanism, on a
// single worker so the numbers isolate the lookup path (no steals, no
// merges — the steady state the paper's Figure 1 measures).
func benchEachMechanism(b *testing.B, fn func(b *testing.B, s *core.Session)) {
	for _, m := range Mechanisms() {
		b.Run(m.String(), func(b *testing.B) {
			s := NewSession(m, 1, EngineOptions{})
			defer s.Close()
			fn(b, s)
		})
	}
}

// BenchmarkTypedAdd is the typed steady-state update path: Add.Add through
// Handle's per-context typed view cache.  Expect 0 allocs/op and fewer
// ns/op than BenchmarkBoxedAdd on both engines.
func BenchmarkTypedAdd(b *testing.B) {
	benchEachMechanism(b, func(b *testing.B, s *core.Session) {
		sum := NewAdd[int64](s.Engine())
		b.ReportAllocs()
		b.ResetTimer()
		_ = s.Run(func(c *sched.Context) {
			for i := 0; i < b.N; i++ {
				sum.Add(c, 1)
			}
		})
		b.StopTimer()
		if got := sum.Value(); got != int64(b.N) {
			b.Fatalf("sum = %d, want %d", got, b.N)
		}
	})
}

// BenchmarkBoxedAdd is the seed's boxed update path — interface Lookup +
// type assertion per update — kept as the baseline the typed API is
// measured against.
func BenchmarkBoxedAdd(b *testing.B) {
	benchEachMechanism(b, func(b *testing.B, s *core.Session) {
		sum := newBoxedAdd[int64](s.Engine())
		b.ReportAllocs()
		b.ResetTimer()
		_ = s.Run(func(c *sched.Context) {
			for i := 0; i < b.N; i++ {
				sum.add(c, 1)
			}
		})
	})
}

// BenchmarkTypedList is List.PushBack through the typed cache.  The local
// view is pre-grown to b.N inside the run and the timer reset after, so the
// measurement isolates the per-update lookup + append and is not dominated
// by growslice copies and GC of the retained list.
func BenchmarkTypedList(b *testing.B) {
	benchEachMechanism(b, func(b *testing.B, s *core.Session) {
		lst := NewList[int64](s.Engine())
		b.ReportAllocs()
		_ = s.Run(func(c *sched.Context) {
			*lst.View(c) = make([]int64, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lst.PushBack(c, int64(i))
			}
			b.StopTimer()
		})
		if got := len(lst.Value()); got != b.N {
			b.Fatalf("list length = %d, want %d", got, b.N)
		}
	})
}

// BenchmarkBoxedList is the boxed PushBack baseline, pre-grown like
// BenchmarkTypedList.
func BenchmarkBoxedList(b *testing.B) {
	benchEachMechanism(b, func(b *testing.B, s *core.Session) {
		lst := newBoxedList[int64](s.Engine())
		b.ReportAllocs()
		_ = s.Run(func(c *sched.Context) {
			view := lst.eng.Lookup(c, lst.r).(*boxedListView[int64])
			view.items = make([]int64, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lst.pushBack(c, int64(i))
			}
			b.StopTimer()
		})
	})
}

// BenchmarkTypedLookupSteadyState measures View(c) alone in the steady
// state — the handle's per-worker slot stays valid for the whole loop, so
// every iteration is the single-deref hit path: worker id, slot fetch,
// context/epoch compare, typed pointer.  The acceptance bar for the fast
// path is this number against BenchmarkRawSliceIndexBaseline: the hit must
// land within 1.5x of a raw array index.  The view pointer is accumulated
// into a sink so the compiler cannot hoist or elide the lookup.
func BenchmarkTypedLookupSteadyState(b *testing.B) {
	benchEachMechanism(b, func(b *testing.B, s *core.Session) {
		sum := NewAdd[int64](s.Engine())
		b.ReportAllocs()
		_ = s.Run(func(c *sched.Context) {
			sum.Add(c, 1) // fault the slot in: the loop measures hits only
			b.ResetTimer()
			var sink int64
			for i := 0; i < b.N; i++ {
				sink += *sum.View(c)
			}
			b.StopTimer()
			if sink == 0 {
				b.Fatal("lookup sink is zero; the view was never read")
			}
		})
	})
}

// rawViewArray is the shape of the comparison floor: the simplest possible
// per-worker view store, a plain []V indexed by the executing worker's id.
// Any flat-array stand-in for a reducer has to resolve that id from the
// context, so the baseline resolves it too — leaving it out would compare
// the fast path against a loop the compiler folds to a constant load.  The
// accessor is noinline for the same reason: inlined, the loop-invariant
// index and load hoist out of the benchmark loop entirely.  The resulting
// code shape is one direct call, the context→worker→id loads, one
// bounds-checked index and one load — so the delta between the two
// benchmarks is exactly what the fast path adds (the slot fetch and the
// context and epoch compares).
type rawViewArray struct {
	views []int64
}

//go:noinline
func (r *rawViewArray) view(c *sched.Context) *int64 {
	return &r.views[c.Worker().ID()]
}

// BenchmarkRawSliceIndexBaseline is the floor BenchmarkTypedLookupSteadyState
// is judged against: the same accumulate loop reading through a raw []V
// array index per worker — no reducer machinery at all.
func BenchmarkRawSliceIndexBaseline(b *testing.B) {
	s := NewSession(MemoryMapped, 1, EngineOptions{})
	defer s.Close()
	raw := &rawViewArray{views: make([]int64, 8)}
	b.ReportAllocs()
	_ = s.Run(func(c *sched.Context) {
		raw.views[c.Worker().ID()] = 1
		b.ResetTimer()
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += *raw.view(c)
		}
		b.StopTimer()
		if sink == 0 {
			b.Fatal("baseline sink is zero")
		}
	})
}

// BenchmarkTypedAddRotating rotates over four reducers.  The engines'
// single-entry per-context caches thrash under rotation, but every typed
// handle keeps its own per-worker slot, so the typed path still serves
// cache hits — the case where the handle-side cache beats the engine-side
// cache outright.
func BenchmarkTypedAddRotating(b *testing.B) {
	benchEachMechanism(b, func(b *testing.B, s *core.Session) {
		sums := [4]*Add[int64]{}
		for i := range sums {
			sums[i] = NewAdd[int64](s.Engine())
		}
		b.ReportAllocs()
		b.ResetTimer()
		_ = s.Run(func(c *sched.Context) {
			idx := 0
			for i := 0; i < b.N; i++ {
				sums[idx].Add(c, 1)
				idx++
				if idx == 4 {
					idx = 0
				}
			}
		})
	})
}

// BenchmarkBoxedAddRotating is the boxed four-reducer rotation baseline.
func BenchmarkBoxedAddRotating(b *testing.B) {
	benchEachMechanism(b, func(b *testing.B, s *core.Session) {
		sums := [4]*boxedAdd[int64]{}
		for i := range sums {
			sums[i] = newBoxedAdd[int64](s.Engine())
		}
		b.ReportAllocs()
		b.ResetTimer()
		_ = s.Run(func(c *sched.Context) {
			idx := 0
			for i := 0; i < b.N; i++ {
				sums[idx].add(c, 1)
				idx++
				if idx == 4 {
					idx = 0
				}
			}
		})
	})
}
