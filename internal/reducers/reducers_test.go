package reducers

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// testSession builds a session for the given mechanism and worker count.
func testSession(t *testing.T, m Mechanism, workers int) *core.Session {
	t.Helper()
	s := NewSession(m, workers, EngineOptions{Timing: true})
	t.Cleanup(s.Close)
	return s
}

// forEachMechanism runs the test body once per reducer mechanism.
func forEachMechanism(t *testing.T, fn func(t *testing.T, m Mechanism)) {
	for _, m := range Mechanisms() {
		m := m
		t.Run(m.String(), func(t *testing.T) { fn(t, m) })
	}
}

func TestMechanismString(t *testing.T) {
	if MemoryMapped.String() != "memory-mapped" || Hypermap.String() != "hypermap" {
		t.Fatal("unexpected mechanism names")
	}
	if !strings.Contains(Mechanism(9).String(), "9") {
		t.Fatal("unknown mechanism should include its number")
	}
	if len(Mechanisms()) != 2 {
		t.Fatal("Mechanisms() should list both mechanisms")
	}
}

func TestEngineNames(t *testing.T) {
	mm := NewEngine(MemoryMapped, 2, EngineOptions{})
	hm := NewEngine(Hypermap, 2, EngineOptions{})
	if !strings.Contains(mm.Name(), "memory-mapped") {
		t.Fatalf("MM engine name %q", mm.Name())
	}
	if !strings.Contains(hm.Name(), "hypermap") {
		t.Fatalf("hypermap engine name %q", hm.Name())
	}
}

func TestAddSerialExecution(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := testSession(t, m, 1)
		sum := NewAdd[int](s.Engine())
		const n = 100000
		if err := s.Run(func(c *sched.Context) {
			c.ParallelFor(0, n, func(c *sched.Context, i int) {
				sum.Add(c, i)
			})
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		want := n * (n - 1) / 2
		if got := sum.Value(); got != want {
			t.Fatalf("sum = %d, want %d", got, want)
		}
	})
}

func TestAddParallelWithForcedSteals(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := testSession(t, m, 4)
		sum := NewAdd[int64](s.Engine())
		const n = 400
		if err := s.Run(func(c *sched.Context) {
			c.ParallelForGrain(0, n, 1, func(c *sched.Context, i int) {
				time.Sleep(50 * time.Microsecond)
				sum.Add(c, int64(i))
			})
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if steals := s.Runtime().Stats().Steals; steals == 0 {
			t.Fatalf("workload did not provoke any steals; cannot exercise merges")
		}
		want := int64(n * (n - 1) / 2)
		if got := sum.Value(); got != want {
			t.Fatalf("sum = %d, want %d", got, want)
		}
		// Views must not linger in worker-private state between runs.
		ovh := s.Engine().Overheads()
		if ovh.Count(0) == 0 { // view creation happened at least for stolen traces
			t.Fatalf("expected view creations under steals, got %s", ovh)
		}
	})
}

func TestAddAccumulatesAcrossRuns(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := testSession(t, m, 2)
		sum := NewAdd[int](s.Engine())
		sum.SetValue(10)
		for run := 0; run < 3; run++ {
			if err := s.Run(func(c *sched.Context) {
				c.ParallelFor(0, 1000, func(c *sched.Context, i int) { sum.Add(c, 1) })
			}); err != nil {
				t.Fatalf("Run: %v", err)
			}
		}
		if got := sum.Value(); got != 10+3*1000 {
			t.Fatalf("sum = %d, want %d", got, 3010)
		}
	})
}

func TestListAppendMatchesSerialOrder(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := testSession(t, m, 4)
		list := NewList[int](s.Engine())
		const n = 300
		if err := s.Run(func(c *sched.Context) {
			c.ParallelForGrain(0, n, 1, func(c *sched.Context, i int) {
				time.Sleep(50 * time.Microsecond)
				list.PushBack(c, i)
			})
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if steals := s.Runtime().Stats().Steals; steals == 0 {
			t.Fatal("workload did not provoke any steals")
		}
		got := list.Value()
		if len(got) != n {
			t.Fatalf("list has %d elements, want %d", len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("list[%d] = %d; parallel append order differs from serial order", i, v)
			}
		}
	})
}

func TestListAppendTreeWalkOrder(t *testing.T) {
	// The paper's Figure 2: walk a binary tree, collecting nodes that
	// satisfy a property.  The reducer must produce the serial preorder
	// list regardless of steals.
	type node struct {
		id          int
		left, right *node
	}
	var build func(depth, id int) (*node, int)
	build = func(depth, id int) (*node, int) {
		if depth == 0 {
			return nil, id
		}
		n := &node{id: id}
		id++
		n.left, id = build(depth-1, id)
		n.right, id = build(depth-1, id)
		return n, id
	}
	root, total := build(9, 0) // 511 nodes
	var serial []int
	var serialWalk func(n *node)
	serialWalk = func(n *node) {
		if n == nil {
			return
		}
		if n.id%3 == 0 {
			serial = append(serial, n.id)
		}
		serialWalk(n.left)
		serialWalk(n.right)
	}
	serialWalk(root)
	_ = total

	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := testSession(t, m, 4)
		list := NewList[int](s.Engine())
		var walk func(c *sched.Context, n *node)
		walk = func(c *sched.Context, n *node) {
			if n == nil {
				return
			}
			time.Sleep(10 * time.Microsecond)
			if n.id%3 == 0 {
				list.PushBack(c, n.id)
			}
			c.Fork(
				func(c *sched.Context) { walk(c, n.left) },
				func(c *sched.Context) { walk(c, n.right) },
			)
		}
		if err := s.Run(func(c *sched.Context) { walk(c, root) }); err != nil {
			t.Fatalf("Run: %v", err)
		}
		got := list.Value()
		if len(got) != len(serial) {
			t.Fatalf("collected %d nodes, want %d", len(got), len(serial))
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("position %d: got %d, want %d (order differs from serial walk)", i, got[i], serial[i])
			}
		}
	})
}

func TestMinMaxReducers(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := testSession(t, m, 4)
		mn := NewMin[int](s.Engine())
		mx := NewMax[int](s.Engine())
		if _, ok := mn.Value(); ok {
			t.Fatal("fresh Min reducer should be unset")
		}
		if _, ok := mx.Value(); ok {
			t.Fatal("fresh Max reducer should be unset")
		}
		values := make([]int, 5000)
		rng := uint64(12345)
		for i := range values {
			rng = rng*6364136223846793005 + 1442695040888963407
			values[i] = int(rng % 1000003)
		}
		wantMin, wantMax := values[0], values[0]
		for _, v := range values {
			if v < wantMin {
				wantMin = v
			}
			if v > wantMax {
				wantMax = v
			}
		}
		if err := s.Run(func(c *sched.Context) {
			c.ParallelFor(0, len(values), func(c *sched.Context, i int) {
				mn.Update(c, values[i])
				mx.Update(c, values[i])
			})
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if got, ok := mn.Value(); !ok || got != wantMin {
			t.Fatalf("min = %d/%v, want %d", got, ok, wantMin)
		}
		if got, ok := mx.Value(); !ok || got != wantMax {
			t.Fatalf("max = %d/%v, want %d", got, ok, wantMax)
		}
	})
}

func TestAndOrReducers(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := testSession(t, m, 2)
		allEven := NewAnd(s.Engine())
		anyOdd := NewOr(s.Engine())
		if err := s.Run(func(c *sched.Context) {
			c.ParallelFor(0, 1000, func(c *sched.Context, i int) {
				allEven.Update(c, i%2 == 0)
				anyOdd.Update(c, i%2 == 1)
			})
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if allEven.Value() {
			t.Fatal("And reducer should be false: not all values are even")
		}
		if !anyOdd.Value() {
			t.Fatal("Or reducer should be true: some values are odd")
		}
		allEven.Close()
		anyOdd.Close()
	})
}

func TestStringReducer(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := testSession(t, m, 4)
		str := NewString(s.Engine())
		const n = 200
		want := strings.Builder{}
		for i := 0; i < n; i++ {
			fmt.Fprintf(&want, "%d,", i)
		}
		if err := s.Run(func(c *sched.Context) {
			c.ParallelForGrain(0, n, 1, func(c *sched.Context, i int) {
				time.Sleep(20 * time.Microsecond)
				str.Append(c, fmt.Sprintf("%d,", i))
			})
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if got := str.Value(); got != want.String() {
			t.Fatalf("concatenation differs from serial order:\ngot  %q\nwant %q", got, want.String())
		}
		str.Close()
	})
}

func TestMapOfReducer(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := testSession(t, m, 4)
		hist := NewMapOf[int, int](s.Engine(), func(a, b int) int { return a + b })
		const n = 10000
		if err := s.Run(func(c *sched.Context) {
			c.ParallelFor(0, n, func(c *sched.Context, i int) {
				hist.Update(c, i%7, 1)
			})
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		got := hist.Value()
		total := 0
		for k, v := range got {
			if k < 0 || k >= 7 {
				t.Fatalf("unexpected key %d", k)
			}
			total += v
		}
		if total != n {
			t.Fatalf("histogram total = %d, want %d", total, n)
		}
		hist.Close()
	})
}

func TestCustomReducer(t *testing.T) {
	type stats struct {
		count int
		sum   float64
	}
	mon := FuncMonoid{
		IdentityFn: func() any { return &stats{} },
		ReduceFn: func(l, r any) any {
			lv, rv := l.(*stats), r.(*stats)
			lv.count += rv.count
			lv.sum += rv.sum
			return lv
		},
	}
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := testSession(t, m, 2)
		cu := NewCustom(s.Engine(), mon)
		if err := s.Run(func(c *sched.Context) {
			c.ParallelFor(0, 1000, func(c *sched.Context, i int) {
				v := cu.View(c).(*stats)
				v.count++
				v.sum += float64(i)
			})
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		got := cu.Value().(*stats)
		if got.count != 1000 || got.sum != 999*1000/2 {
			t.Fatalf("stats = %+v", got)
		}
		if cu.Reducer() == nil {
			t.Fatal("Reducer() should expose the handle")
		}
		cu.Close()
	})
}

func TestSerialContextLookup(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		eng := NewEngine(m, 1, EngineOptions{})
		sum := NewAdd[int](eng)
		// With a nil context the reducer behaves like an ordinary variable.
		sum.Add(nil, 5)
		sum.Add(nil, 7)
		if got := sum.Value(); got != 12 {
			t.Fatalf("serial-context sum = %d, want 12", got)
		}
	})
}

func TestMultipleReducersInOneRun(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := testSession(t, m, 4)
		const nReducers = 64
		sums := make([]*Add[int], nReducers)
		for i := range sums {
			sums[i] = NewAdd[int](s.Engine())
		}
		const n = 6400
		if err := s.Run(func(c *sched.Context) {
			c.ParallelFor(0, n, func(c *sched.Context, i int) {
				sums[i%nReducers].Add(c, 1)
			})
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		for i, sr := range sums {
			if got := sr.Value(); got != n/nReducers {
				t.Fatalf("reducer %d = %d, want %d", i, got, n/nReducers)
			}
		}
	})
}

func TestCloseAndSlotReuse(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		// One directory shard makes the recycled address available to the
		// very next registration.
		s := NewSession(m, 2, EngineOptions{Timing: true, DirectoryShards: 1})
		t.Cleanup(s.Close)
		a := NewAdd[int](s.Engine())
		addrA := a.Reducer().Addr()
		a.Add(nil, 3)
		a.Close()
		if !a.Reducer().Retired() {
			t.Fatal("reducer not marked retired after Close")
		}
		if got := a.Value(); got != 3 {
			t.Fatalf("value after Close = %d, want 3", got)
		}
		b := NewAdd[int](s.Engine())
		if b.Reducer().Addr() != addrA {
			t.Fatalf("slot %d not reused after Close (got %d)", addrA, b.Reducer().Addr())
		}
		if got := b.Value(); got != 0 {
			t.Fatalf("fresh reducer in reused slot has value %d, want 0", got)
		}
	})
}

func TestOverheadInstrumentation(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := testSession(t, m, 4)
		eng := s.Engine()
		eng.SetCountLookups(true)
		sum := NewAdd[int](eng)
		const n = 256
		if err := s.Run(func(c *sched.Context) {
			c.ParallelForGrain(0, n, 1, func(c *sched.Context, i int) {
				time.Sleep(20 * time.Microsecond)
				sum.Add(c, 1)
			})
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if got := eng.Lookups(); got != n {
			t.Fatalf("lookup count = %d, want %d", got, n)
		}
		ovh := eng.Overheads()
		if ovh.Total() == 0 {
			t.Fatalf("expected non-zero timed overheads, got %s", ovh)
		}
		eng.ResetOverheads()
		if eng.Overheads().Total() != 0 || eng.Lookups() != 0 {
			t.Fatal("ResetOverheads did not clear counters")
		}
		eng.SetCountLookups(false)
		eng.SetTiming(false)
	})
}

func TestValueVisibleInsideRunViaNilContext(t *testing.T) {
	// Reading Value() mid-run reflects only the leftmost view; this test
	// pins that behaviour (the paper's reducers have the same property).
	forEachMechanism(t, func(t *testing.T, m Mechanism) {
		s := testSession(t, m, 1)
		sum := NewAdd[int](s.Engine())
		sum.SetValue(100)
		if err := s.Run(func(c *sched.Context) {
			sum.Add(c, 1)
			if v := sum.Value(); v != 100 {
				t.Errorf("mid-run Value = %d, want 100 (leftmost view only)", v)
			}
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if got := sum.Value(); got != 101 {
			t.Fatalf("final value = %d, want 101", got)
		}
	})
}
