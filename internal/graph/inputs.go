package graph

import (
	"fmt"
	"math"
)

// InputSpec describes one of the paper's eight PBFS input graphs together
// with a synthetic generator that approximates its shape at a configurable
// scale.  The paper's inputs are matrix-collection and web graphs that are
// not redistributable, so the reproduction generates stand-ins whose vertex
// count, edge count (hence average degree) and rough diameter class match
// Figure 10(b).
type InputSpec struct {
	// Name is the paper's graph name.
	Name string
	// PaperVertices, PaperEdges and PaperDiameter are the |V|, |E| and D
	// columns of Figure 10(b).
	PaperVertices int64
	PaperEdges    int64
	PaperDiameter int
	// PaperLookups is the number of reducer lookups the paper reports for
	// the PBFS run on this input.
	PaperLookups int64
	// Build generates the stand-in graph with roughly PaperVertices*scale
	// vertices.
	Build func(scale float64, seed int64) *Graph
}

// PaperInputs returns the specifications of the eight graphs in Figure
// 10(b), in the paper's order.
func PaperInputs() []InputSpec {
	return []InputSpec{
		{
			Name: "kkt_power", PaperVertices: 2_050_000, PaperEdges: 12_760_000, PaperDiameter: 31, PaperLookups: 1027,
			Build: func(scale float64, seed int64) *Graph {
				n := scaledVertices(2_050_000, scale)
				m := int(float64(n) * 6.2)
				g := Random(n, m, seed)
				g.SetName("kkt_power (synthetic random, deg≈12.4)")
				return g
			},
		},
		{
			Name: "freescale1", PaperVertices: 3_430_000, PaperEdges: 17_100_000, PaperDiameter: 128, PaperLookups: 1748,
			Build: func(scale float64, seed int64) *Graph {
				n := scaledVertices(3_430_000, scale)
				side := int(math.Sqrt(float64(n)))
				if side < 2 {
					side = 2
				}
				g := Torus2D(side)
				g.SetName("freescale1 (synthetic torus, high diameter)")
				return g
			},
		},
		{
			Name: "cage14", PaperVertices: 1_510_000, PaperEdges: 27_100_000, PaperDiameter: 43, PaperLookups: 766,
			Build: func(scale float64, seed int64) *Graph {
				n := scaledVertices(1_510_000, scale)
				m := n * 18
				g := Random(n, m, seed)
				g.SetName("cage14 (synthetic random, deg≈36)")
				return g
			},
		},
		{
			Name: "wikipedia", PaperVertices: 2_400_000, PaperEdges: 41_900_000, PaperDiameter: 460, PaperLookups: 1631,
			Build: func(scale float64, seed int64) *Graph {
				n := scaledVertices(2_400_000, scale)
				g := PreferentialAttachment(n, 17, seed)
				g.SetName("wikipedia (synthetic preferential attachment)")
				return g
			},
		},
		{
			Name: "grid3d200", PaperVertices: 8_000_000, PaperEdges: 55_800_000, PaperDiameter: 598, PaperLookups: 4323,
			Build: func(scale float64, seed int64) *Graph {
				n := scaledVertices(8_000_000, scale)
				side := int(math.Cbrt(float64(n)))
				if side < 2 {
					side = 2
				}
				g := Grid3D(side, side, side)
				g.SetName(fmt.Sprintf("grid3d200 (synthetic %d^3 grid)", side))
				return g
			},
		},
		{
			Name: "rmat23", PaperVertices: 2_300_000, PaperEdges: 77_900_000, PaperDiameter: 8, PaperLookups: 71269,
			Build: func(scale float64, seed int64) *Graph {
				n := scaledVertices(2_300_000, scale)
				sc := int(math.Round(math.Log2(float64(n))))
				if sc < 4 {
					sc = 4
				}
				g := RMAT(sc, 34, 0.57, 0.19, 0.19, seed)
				g.SetName(fmt.Sprintf("rmat23 (synthetic R-MAT scale %d)", sc))
				return g
			},
		},
		{
			Name: "cage15", PaperVertices: 5_150_000, PaperEdges: 99_200_000, PaperDiameter: 50, PaperLookups: 2547,
			Build: func(scale float64, seed int64) *Graph {
				n := scaledVertices(5_150_000, scale)
				m := n * 19
				g := Random(n, m, seed)
				g.SetName("cage15 (synthetic random, deg≈38)")
				return g
			},
		},
		{
			Name: "nlpkkt160", PaperVertices: 8_350_000, PaperEdges: 225_400_000, PaperDiameter: 163, PaperLookups: 4174,
			Build: func(scale float64, seed int64) *Graph {
				n := scaledVertices(8_350_000, scale)
				side := int(math.Cbrt(float64(n)))
				if side < 2 {
					side = 2
				}
				g := Grid3D(side, side, side)
				g.SetName(fmt.Sprintf("nlpkkt160 (synthetic %d^3 grid)", side))
				return g
			},
		},
	}
}

// FindInput returns the spec with the given paper name.
func FindInput(name string) (InputSpec, bool) {
	for _, s := range PaperInputs() {
		if s.Name == name {
			return s, true
		}
	}
	return InputSpec{}, false
}

// scaledVertices converts a paper vertex count and scale factor into a
// stand-in vertex count, never below a small floor so that tiny scales
// still produce meaningful graphs.
func scaledVertices(paper int64, scale float64) int {
	if scale <= 0 {
		scale = 1.0 / 1024
	}
	n := int(float64(paper) * scale)
	if n < 64 {
		n = 64
	}
	return n
}
