package graph

import (
	"testing"
	"testing/quick"
)

func TestFromEdgesValidation(t *testing.T) {
	if _, err := FromEdges(0, nil, "empty"); err == nil {
		t.Fatal("FromEdges with zero vertices should fail")
	}
	if _, err := FromEdges(2, []Edge{{0, 5}}, "bad"); err == nil {
		t.Fatal("FromEdges with out-of-range endpoint should fail")
	}
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 1}, {1, 2}}, "g")
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	// The self-loop is dropped: 2 undirected edges remain.
	if g.NumUndirectedEdges() != 2 || g.NumEdges() != 4 {
		t.Fatalf("edges = %d/%d, want 2 undirected / 4 directed", g.NumUndirectedEdges(), g.NumEdges())
	}
	if g.Name() != "g" {
		t.Fatalf("Name = %q", g.Name())
	}
	g.SetName("renamed")
	if g.Name() != "renamed" {
		t.Fatal("SetName failed")
	}
}

func TestCSRAdjacency(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1}, {0, 2}, {2, 3}, {1, 2}}, "square-ish")
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	wantAdj := map[int32][]int32{
		0: {1, 2},
		1: {0, 2},
		2: {0, 1, 3},
		3: {2},
	}
	for v, want := range wantAdj {
		got := g.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("Neighbors(%d) = %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Neighbors(%d) = %v, want %v (sorted)", v, got, want)
			}
		}
		if g.Degree(v) != len(want) {
			t.Fatalf("Degree(%d) = %d, want %d", v, g.Degree(v), len(want))
		}
	}
}

func TestBFSOnPath(t *testing.T) {
	g := Path(10)
	dist, layers := g.BFS(0)
	if layers != 9 {
		t.Fatalf("path eccentricity = %d, want 9", layers)
	}
	for i, d := range dist {
		if int(d) != i {
			t.Fatalf("dist[%d] = %d, want %d", i, d, i)
		}
	}
	// From the middle.
	dist, layers = g.BFS(5)
	if layers != 5 {
		t.Fatalf("eccentricity from middle = %d, want 5", layers)
	}
	if dist[0] != 5 || dist[9] != 4 {
		t.Fatalf("unexpected distances from middle: %v", dist)
	}
}

func TestBFSOnStarAndTree(t *testing.T) {
	star := Star(100)
	dist, layers := star.BFS(0)
	if layers != 1 {
		t.Fatalf("star eccentricity = %d, want 1", layers)
	}
	for i := 1; i < 100; i++ {
		if dist[i] != 1 {
			t.Fatalf("dist[%d] = %d, want 1", i, dist[i])
		}
	}
	tree := CompleteBinaryTree(127)
	_, layers = tree.BFS(0)
	if layers != 6 {
		t.Fatalf("tree of 127 nodes should have 6 BFS layers from the root, got %d", layers)
	}
}

func TestBFSDisconnectedAndInvalidSource(t *testing.T) {
	// Two components: 0-1 and 2-3.
	g, _ := FromEdges(4, []Edge{{0, 1}, {2, 3}}, "two-components")
	dist, _ := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatal("vertices in the other component should be unreachable")
	}
	st := g.ComputeStats()
	if st.Reachable != 2 {
		t.Fatalf("Reachable = %d, want 2", st.Reachable)
	}
	dist, layers := g.BFS(-1)
	if layers != 0 {
		t.Fatal("BFS from invalid source should explore nothing")
	}
	for _, d := range dist {
		if d != -1 {
			t.Fatal("BFS from invalid source should mark everything unreachable")
		}
	}
}

func TestGrid3DStructure(t *testing.T) {
	g := Grid3D(4, 4, 4)
	if g.NumVertices() != 64 {
		t.Fatalf("vertices = %d, want 64", g.NumVertices())
	}
	// 3 * n^2 * (n-1) undirected edges for an n^3 grid.
	want := int64(3 * 16 * 3)
	if g.NumUndirectedEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumUndirectedEdges(), want)
	}
	_, layers := g.BFS(0)
	if layers != 9 { // (4-1)*3 corners apart
		t.Fatalf("grid diameter from corner = %d, want 9", layers)
	}
}

func TestTorus2DStructure(t *testing.T) {
	g := Torus2D(5)
	if g.NumVertices() != 25 {
		t.Fatalf("vertices = %d, want 25", g.NumVertices())
	}
	if g.NumUndirectedEdges() != 50 {
		t.Fatalf("edges = %d, want 50", g.NumUndirectedEdges())
	}
	for v := int32(0); v < 25; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus vertex %d has degree %d, want 4", v, g.Degree(v))
		}
	}
}

func TestLadderStructure(t *testing.T) {
	g := Ladder(50)
	if g.NumVertices() != 100 {
		t.Fatalf("vertices = %d, want 100", g.NumVertices())
	}
	_, layers := g.BFS(0)
	if layers < 49 {
		t.Fatalf("ladder should have high diameter, got %d layers", layers)
	}
}

func TestRMATProperties(t *testing.T) {
	g := RMAT(10, 8, 0.57, 0.19, 0.19, 42)
	if g.NumVertices() != 1024 {
		t.Fatalf("vertices = %d, want 1024", g.NumVertices())
	}
	if g.NumUndirectedEdges() == 0 || g.NumUndirectedEdges() > 1024*8 {
		t.Fatalf("unexpected edge count %d", g.NumUndirectedEdges())
	}
	// Determinism for a fixed seed.
	h := RMAT(10, 8, 0.57, 0.19, 0.19, 42)
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("RMAT with the same seed should be deterministic")
	}
	st := g.ComputeStats()
	if st.Reachable < g.NumVertices()/4 {
		t.Fatalf("RMAT giant component too small: %d of %d", st.Reachable, g.NumVertices())
	}
	if st.AvgDegree <= 0 {
		t.Fatal("average degree should be positive")
	}
}

func TestRandomAndPreferentialAttachment(t *testing.T) {
	r := Random(500, 2500, 7)
	if r.NumVertices() != 500 {
		t.Fatalf("vertices = %d", r.NumVertices())
	}
	if r.NumUndirectedEdges() == 0 {
		t.Fatal("random graph has no edges")
	}
	pa := PreferentialAttachment(500, 3, 7)
	if pa.NumVertices() != 500 {
		t.Fatalf("vertices = %d", pa.NumVertices())
	}
	// Preferential attachment produces a connected graph.
	st := pa.ComputeStats()
	if st.Reachable != 500 {
		t.Fatalf("preferential-attachment graph should be connected, reachable = %d", st.Reachable)
	}
	// Heavy tail: some vertex should have degree well above the minimum.
	maxDeg := 0
	for v := int32(0); v < 500; v++ {
		if d := pa.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 10 {
		t.Fatalf("expected a hub vertex, max degree = %d", maxDeg)
	}
	tiny := PreferentialAttachment(3, 0, 1)
	if tiny.NumVertices() != 3 {
		t.Fatal("small preferential-attachment graph mis-sized")
	}
}

func TestPaperInputs(t *testing.T) {
	specs := PaperInputs()
	if len(specs) != 8 {
		t.Fatalf("expected 8 paper inputs, got %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if s.PaperVertices <= 0 || s.PaperEdges <= 0 || s.PaperDiameter <= 0 || s.PaperLookups <= 0 {
			t.Fatalf("spec %q has missing paper data", s.Name)
		}
		names[s.Name] = true
		g := s.Build(1.0/2048, int64(1))
		if g.NumVertices() < 64 {
			t.Fatalf("%s stand-in too small: %d vertices", s.Name, g.NumVertices())
		}
		if g.NumUndirectedEdges() == 0 {
			t.Fatalf("%s stand-in has no edges", s.Name)
		}
		st := g.ComputeStats()
		if st.Reachable < 2 {
			t.Fatalf("%s stand-in has no reachable structure from vertex 0", s.Name)
		}
	}
	for _, want := range []string{"kkt_power", "freescale1", "cage14", "wikipedia", "grid3d200", "rmat23", "cage15", "nlpkkt160"} {
		if !names[want] {
			t.Fatalf("missing paper input %q", want)
		}
	}
	if _, ok := FindInput("rmat23"); !ok {
		t.Fatal("FindInput failed for a known name")
	}
	if _, ok := FindInput("nonexistent"); ok {
		t.Fatal("FindInput should fail for an unknown name")
	}
}

func TestPropertyBFSDistancesAreConsistent(t *testing.T) {
	// For any graph, BFS distances must differ by at most 1 across an edge
	// and unreachable vertices must have no reachable neighbours.
	f := func(seed int64) bool {
		g := Random(200, 400, seed)
		dist, _ := g.BFS(0)
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			for _, u := range g.Neighbors(v) {
				dv, du := dist[v], dist[u]
				if dv >= 0 && du >= 0 {
					diff := dv - du
					if diff < -1 || diff > 1 {
						return false
					}
				}
				if (dv < 0) != (du < 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
