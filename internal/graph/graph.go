// Package graph provides the compressed-sparse-row graphs, synthetic graph
// generators and serial BFS reference used by the PBFS experiment
// (Figure 10).  The paper evaluates PBFS on eight large sparse input graphs
// that are not redistributable here, so the package also defines synthetic
// stand-ins whose vertex count, edge count and diameter approximate each
// input at a configurable scale.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is an undirected graph in compressed-sparse-row form.
type Graph struct {
	// rowPtr has length NumVertices()+1; the neighbours of vertex v are
	// col[rowPtr[v]:rowPtr[v+1]].
	rowPtr []int64
	col    []int32
	name   string
}

// Name returns the graph's descriptive name.
func (g *Graph) Name() string { return g.name }

// SetName sets the graph's descriptive name.
func (g *Graph) SetName(name string) { g.name = name }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.rowPtr) - 1 }

// NumEdges returns the number of directed edges stored (an undirected edge
// counts twice).
func (g *Graph) NumEdges() int64 { return int64(len(g.col)) }

// NumUndirectedEdges returns the number of undirected edges.
func (g *Graph) NumUndirectedEdges() int64 { return g.NumEdges() / 2 }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int32) int {
	return int(g.rowPtr[v+1] - g.rowPtr[v])
}

// Neighbors returns the adjacency list of v.  The returned slice aliases
// the graph's storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.col[g.rowPtr[v]:g.rowPtr[v+1]]
}

// Edge is one undirected edge.
type Edge struct {
	U, V int32
}

// FromEdges builds a CSR graph with n vertices from an undirected edge
// list.  Self-loops are dropped and duplicate edges are kept (multigraph),
// matching how RMAT inputs are normally used for BFS benchmarking.
func FromEdges(n int, edges []Edge, name string) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: %d vertices", n)
	}
	deg := make([]int64, n+1)
	kept := 0
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) outside [0,%d)", e.U, e.V, n)
		}
		deg[e.U+1]++
		deg[e.V+1]++
		kept++
	}
	rowPtr := make([]int64, n+1)
	for v := 1; v <= n; v++ {
		rowPtr[v] = rowPtr[v-1] + deg[v]
	}
	col := make([]int32, rowPtr[n])
	next := make([]int64, n)
	copy(next, rowPtr[:n])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		col[next[e.U]] = e.V
		next[e.U]++
		col[next[e.V]] = e.U
		next[e.V]++
	}
	g := &Graph{rowPtr: rowPtr, col: col, name: name}
	g.sortAdjacency()
	return g, nil
}

// sortAdjacency sorts every adjacency list so traversal order is
// deterministic.
func (g *Graph) sortAdjacency() {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		lo, hi := g.rowPtr[v], g.rowPtr[v+1]
		seg := g.col[lo:hi]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
	}
}

// BFS runs a serial breadth-first search from source and returns the
// distance of every vertex (-1 for unreachable vertices) along with the
// number of layers explored (the eccentricity of the source within its
// component).
func (g *Graph) BFS(source int32) (dist []int32, layers int) {
	n := g.NumVertices()
	dist = make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	if n == 0 || int(source) >= n || source < 0 {
		return dist, 0
	}
	dist[source] = 0
	frontier := []int32{source}
	depth := int32(0)
	for len(frontier) > 0 {
		depth++
		var next []int32
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if dist[v] < 0 {
					dist[v] = depth
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist, int(depth - 1)
}

// Stats summarises a graph for experiment output, mirroring the columns of
// the paper's Figure 10(b).
type Stats struct {
	Name      string
	Vertices  int
	Edges     int64 // undirected edge count
	Diameter  int   // eccentricity of vertex 0 within its component
	Reachable int   // vertices reachable from vertex 0
	AvgDegree float64
}

// ComputeStats measures the graph from vertex 0.
func (g *Graph) ComputeStats() Stats {
	dist, layers := g.BFS(0)
	reach := 0
	for _, d := range dist {
		if d >= 0 {
			reach++
		}
	}
	avg := 0.0
	if g.NumVertices() > 0 {
		avg = float64(g.NumEdges()) / float64(g.NumVertices())
	}
	return Stats{
		Name:      g.name,
		Vertices:  g.NumVertices(),
		Edges:     g.NumUndirectedEdges(),
		Diameter:  layers,
		Reachable: reach,
		AvgDegree: avg,
	}
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

// Path returns a path graph on n vertices (diameter n-1); useful in tests.
func Path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{int32(i), int32(i + 1)})
	}
	g, _ := FromEdges(n, edges, fmt.Sprintf("path%d", n))
	return g
}

// Star returns a star graph: vertex 0 connected to every other vertex.
func Star(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{0, int32(i)})
	}
	g, _ := FromEdges(n, edges, fmt.Sprintf("star%d", n))
	return g
}

// CompleteBinaryTree returns a complete binary tree on n vertices.
func CompleteBinaryTree(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{int32((i - 1) / 2), int32(i)})
	}
	g, _ := FromEdges(n, edges, fmt.Sprintf("tree%d", n))
	return g
}

// Grid3D returns an nx × ny × nz grid with 6-neighbour connectivity, the
// synthetic analogue of the paper's grid3d200 input.
func Grid3D(nx, ny, nz int) *Graph {
	id := func(x, y, z int) int32 { return int32((x*ny+y)*nz + z) }
	var edges []Edge
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				if x+1 < nx {
					edges = append(edges, Edge{id(x, y, z), id(x+1, y, z)})
				}
				if y+1 < ny {
					edges = append(edges, Edge{id(x, y, z), id(x, y+1, z)})
				}
				if z+1 < nz {
					edges = append(edges, Edge{id(x, y, z), id(x, y, z+1)})
				}
			}
		}
	}
	g, _ := FromEdges(nx*ny*nz, edges, fmt.Sprintf("grid3d-%dx%dx%d", nx, ny, nz))
	return g
}

// Torus2D returns an n × n torus (every vertex has degree 4), a
// moderate-diameter mesh like the finite-element graphs in the paper.
func Torus2D(n int) *Graph {
	id := func(x, y int) int32 { return int32(x*n + y) }
	var edges []Edge
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			edges = append(edges, Edge{id(x, y), id((x+1)%n, y)})
			edges = append(edges, Edge{id(x, y), id(x, (y+1)%n)})
		}
	}
	g, _ := FromEdges(n*n, edges, fmt.Sprintf("torus2d-%dx%d", n, n))
	return g
}

// RMAT generates a recursive-matrix (R-MAT) power-law graph with 2^scale
// vertices and approximately edgeFactor * 2^scale undirected edges, the
// synthetic analogue of the paper's rmat23 and wikipedia inputs.
func RMAT(scale int, edgeFactor int, a, b, c float64, seed int64) *Graph {
	n := 1 << scale
	m := n * edgeFactor
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left quadrant: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		edges = append(edges, Edge{int32(u), int32(v)})
	}
	g, _ := FromEdges(n, edges, fmt.Sprintf("rmat-s%d-e%d", scale, edgeFactor))
	return g
}

// Random returns an Erdős–Rényi style random graph with n vertices and m
// undirected edges.
func Random(n int, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		edges = append(edges, Edge{u, v})
	}
	g, _ := FromEdges(n, edges, fmt.Sprintf("random-%d-%d", n, m))
	return g
}

// PreferentialAttachment returns a Barabási–Albert style graph in which
// each new vertex attaches to k existing vertices chosen proportionally to
// degree; it produces the heavy-tailed degree distributions of web-like
// graphs such as the paper's wikipedia input.
func PreferentialAttachment(n, k int, seed int64) *Graph {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	// targets holds one entry per edge endpoint, so sampling uniformly
	// from it is sampling proportionally to degree.
	targets := make([]int32, 0, 2*n*k)
	start := k + 1
	if start > n {
		start = n
	}
	// Seed with a small clique.
	for u := 0; u < start; u++ {
		for v := u + 1; v < start; v++ {
			edges = append(edges, Edge{int32(u), int32(v)})
			targets = append(targets, int32(u), int32(v))
		}
	}
	for u := start; u < n; u++ {
		chosen := make(map[int32]bool, k)
		for len(chosen) < k {
			var t int32
			if len(targets) == 0 {
				t = int32(rng.Intn(u))
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if int(t) == u {
				continue
			}
			chosen[t] = true
		}
		for t := range chosen {
			edges = append(edges, Edge{int32(u), t})
			targets = append(targets, int32(u), t)
		}
	}
	g, _ := FromEdges(n, edges, fmt.Sprintf("prefattach-%d-%d", n, k))
	return g
}

// Ladder returns a long "ladder" graph (2 × n grid), which has a large
// diameter relative to its size, approximating high-diameter meshes such as
// freescale1.
func Ladder(n int) *Graph {
	var edges []Edge
	id := func(side, i int) int32 { return int32(2*i + side) }
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{id(0, i), id(1, i)})
		if i+1 < n {
			edges = append(edges, Edge{id(0, i), id(0, i+1)})
			edges = append(edges, Edge{id(1, i), id(1, i+1)})
		}
	}
	g, _ := FromEdges(2*n, edges, fmt.Sprintf("ladder-%d", n))
	return g
}
