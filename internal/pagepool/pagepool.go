// Package pagepool provides the memory pools the Cilk-M runtime uses for
// SPA map pages.  The paper structures them "like the rest of the pools for
// the internal memory allocator managed by the runtime": every worker owns
// a local pool and a global pool rebalances the distribution between local
// pools in the manner of Hoard.  Only empty SPA maps may be recycled, which
// callers guarantee by resetting pages before release; the pool additionally
// verifies the invariant when handed a checker.
package pagepool

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// Stats summarises pool activity.
type Stats struct {
	Allocs        int64 // pages handed out
	Frees         int64 // pages returned
	FreshPages    int64 // pages created because every pool was empty
	LocalHits     int64 // allocations served by the worker's local pool
	GlobalHits    int64 // allocations served by the global pool
	Rebalances    int64 // local→global spills
	GlobalPages   int64 // pages currently held by the global pool
	LocalPages    int64 // pages currently held across local pools
	RejectedDirty int64 // releases rejected because the page was not empty
	SingleGets    int64 // Get calls (one lock round-trip each)
	SinglePuts    int64 // Put calls (one lock round-trip each)
	BulkGets      int64 // GetN calls (one round-trip regardless of count)
	BulkPuts      int64 // PutN calls (one round-trip regardless of count)
}

// RoundTrips returns the number of pool operations performed: a single-page
// Get or Put counts one, and a bulk GetN or PutN counts one regardless of
// how many pages it moved.  The batched hypermerge pipeline's invariant —
// fewer pool operations than slots merged — is asserted against this.
func (s Stats) RoundTrips() int64 {
	return s.SingleGets + s.SinglePuts + s.BulkGets + s.BulkPuts
}

// Outstanding reports the number of pages currently checked out of the
// pool: handed out and neither returned nor rejected as dirty (a rejected
// page is dropped to the garbage collector, closing its accounting).  It is
// the pool half of the runtime's leak invariant — zero whenever no job is
// in flight, including after a panicked or cancelled job.
func (s Stats) Outstanding() int64 {
	return s.Allocs - s.Frees - s.RejectedDirty
}

// Pool is a Hoard-style two-level page pool for values of type T.
type Pool[T any] struct {
	// newPage creates a fresh page when both pools are empty.
	newPage func() T
	// isEmpty, when non-nil, validates the "only empty pages are recycled"
	// invariant on release.
	isEmpty func(T) bool
	// localMax bounds the size of one local pool; excess pages spill to
	// the global pool (the Hoard-style rebalancing trigger).
	localMax int

	global struct {
		mu    sync.Mutex
		pages []T
	}
	locals []*localPool[T]

	allocs        atomic.Int64
	frees         atomic.Int64
	fresh         atomic.Int64
	localHits     atomic.Int64
	globalHits    atomic.Int64
	rebalances    atomic.Int64
	rejectedDirty atomic.Int64
	singleGets    atomic.Int64
	singlePuts    atomic.Int64
	bulkGets      atomic.Int64
	bulkPuts      atomic.Int64
}

type localPool[T any] struct {
	mu    sync.Mutex
	pages []T
}

// Option configures a Pool.
type Option[T any] func(*Pool[T])

// WithEmptyCheck installs a validator that must report true for a page to
// be accepted back into the pool.
func WithEmptyCheck[T any](isEmpty func(T) bool) Option[T] {
	return func(p *Pool[T]) { p.isEmpty = isEmpty }
}

// WithLocalMax sets the maximum number of pages a local pool may hold
// before spilling half of them to the global pool.  The default is 8.
func WithLocalMax[T any](n int) Option[T] {
	return func(p *Pool[T]) {
		if n > 0 {
			p.localMax = n
		}
	}
}

// New creates a pool for nWorkers workers.  newPage is called to create
// fresh pages when no recycled page is available.
func New[T any](nWorkers int, newPage func() T, opts ...Option[T]) *Pool[T] {
	if nWorkers < 1 {
		nWorkers = 1
	}
	p := &Pool[T]{
		newPage:  newPage,
		localMax: 8,
		locals:   make([]*localPool[T], nWorkers),
	}
	for i := range p.locals {
		p.locals[i] = &localPool[T]{}
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Workers returns the number of local pools.
func (p *Pool[T]) Workers() int { return len(p.locals) }

// Get returns a page for the given worker, preferring the worker's local
// pool, then the global pool, then a fresh allocation.
func (p *Pool[T]) Get(worker int) T {
	p.allocs.Add(1)
	p.singleGets.Add(1)
	lp := p.local(worker)

	lp.mu.Lock()
	if n := len(lp.pages); n > 0 {
		pg := lp.pages[n-1]
		lp.pages = lp.pages[:n-1]
		lp.mu.Unlock()
		p.localHits.Add(1)
		return pg
	}
	lp.mu.Unlock()

	p.global.mu.Lock()
	if n := len(p.global.pages); n > 0 {
		pg := p.global.pages[n-1]
		p.global.pages = p.global.pages[:n-1]
		p.global.mu.Unlock()
		p.globalHits.Add(1)
		return pg
	}
	p.global.mu.Unlock()

	p.fresh.Add(1)
	return p.newPage()
}

// Put returns a page to the given worker's local pool.  If the pool has an
// emptiness checker and the page is not empty, the page is dropped and the
// rejection is counted, preserving the invariant that only empty pages are
// recycled.  When the local pool exceeds its bound, half of it spills to
// the global pool.
func (p *Pool[T]) Put(worker int, page T) {
	if p.isEmpty != nil && !p.isEmpty(page) {
		p.rejectedDirty.Add(1)
		return
	}
	p.frees.Add(1)
	p.singlePuts.Add(1)
	lp := p.local(worker)
	lp.mu.Lock()
	lp.pages = append(lp.pages, page)
	if len(lp.pages) > p.localMax {
		// Copy the spill before unlocking: the suffix slots are about to be
		// vacated, and another Put for the same worker id could otherwise
		// overwrite them while they are still aliased here.
		spill := append([]T(nil), lp.pages[p.localMax/2:]...)
		clearTail(lp.pages, len(lp.pages)-p.localMax/2)
		lp.pages = lp.pages[:p.localMax/2]
		lp.mu.Unlock()
		p.rebalances.Add(1)
		p.global.mu.Lock()
		p.global.pages = append(p.global.pages, spill...)
		p.global.mu.Unlock()
		return
	}
	lp.mu.Unlock()
}

// TryGet is Get with an exhaustion path: it fails (allocating nothing)
// when the pagepool/get failpoint fires, modelling the backing allocator
// running dry.  Production callers that can surface an error use it so
// chaos plans can drive their failure handling; with no plan active it is
// Get plus one atomic load.
func (p *Pool[T]) TryGet(worker int) (T, error) {
	if faultinject.Enabled() {
		if err := faultinject.Error(faultinject.PagepoolGet); err != nil {
			var zero T
			return zero, fmt.Errorf("pagepool: page allocation failed: %w", err)
		}
	}
	return p.Get(worker), nil
}

// GetN returns n pages for the given worker in one pool round-trip: the
// worker's local pool is drained first, then the global pool, each under a
// single lock acquisition, and any shortfall is made up with fresh pages.
// The batched view-transferal path uses it to fetch all the public SPA
// pages a deposit needs at once instead of one pool trip per page.
func (p *Pool[T]) GetN(worker int, n int) []T {
	if n <= 0 {
		return nil
	}
	p.allocs.Add(int64(n))
	p.bulkGets.Add(1)
	out := make([]T, 0, n)

	lp := p.local(worker)
	lp.mu.Lock()
	if take := min(n, len(lp.pages)); take > 0 {
		out = append(out, lp.pages[len(lp.pages)-take:]...)
		clearTail(lp.pages, take)
		lp.pages = lp.pages[:len(lp.pages)-take]
		p.localHits.Add(int64(take))
	}
	lp.mu.Unlock()

	if len(out) < n {
		p.global.mu.Lock()
		if take := min(n-len(out), len(p.global.pages)); take > 0 {
			out = append(out, p.global.pages[len(p.global.pages)-take:]...)
			clearTail(p.global.pages, take)
			p.global.pages = p.global.pages[:len(p.global.pages)-take]
			p.globalHits.Add(int64(take))
		}
		p.global.mu.Unlock()
	}

	for len(out) < n {
		p.fresh.Add(1)
		out = append(out, p.newPage())
	}
	return out
}

// TryGetN is GetN with an exhaustion path: it fails (allocating nothing)
// when the pagepool/getn failpoint fires.  View transferal fetches its
// deposit pages through it, so a chaos plan can fail a deposit mid-job and
// the leak accounting can prove nothing escaped.
func (p *Pool[T]) TryGetN(worker int, n int) ([]T, error) {
	if n > 0 && faultinject.Enabled() {
		if err := faultinject.Error(faultinject.PagepoolGetN); err != nil {
			return nil, fmt.Errorf("pagepool: bulk allocation of %d pages failed: %w", n, err)
		}
	}
	return p.GetN(worker, n), nil
}

// PutN returns pages to the given worker's local pool in one round-trip.
// Non-empty pages are dropped (and counted) exactly as in Put; a local pool
// that ends up over its bound spills half to the global pool.  The caller's
// slice is never mutated: when a dirty page forces filtering, the clean
// pages are gathered into a fresh slice.
func (p *Pool[T]) PutN(worker int, pages []T) {
	p.bulkPuts.Add(1)
	kept := pages
	if p.isEmpty != nil {
		for i := range pages {
			if p.isEmpty(pages[i]) {
				continue
			}
			fresh := append(make([]T, 0, len(pages)-1), pages[:i]...)
			for _, pg := range pages[i:] {
				if p.isEmpty(pg) {
					fresh = append(fresh, pg)
				} else {
					p.rejectedDirty.Add(1)
				}
			}
			kept = fresh
			break
		}
	}
	if len(kept) == 0 {
		return
	}
	p.frees.Add(int64(len(kept)))
	lp := p.local(worker)
	lp.mu.Lock()
	lp.pages = append(lp.pages, kept...)
	if len(lp.pages) > p.localMax {
		spill := append([]T(nil), lp.pages[p.localMax/2:]...)
		clearTail(lp.pages, len(lp.pages)-p.localMax/2)
		lp.pages = lp.pages[:p.localMax/2]
		lp.mu.Unlock()
		p.rebalances.Add(1)
		p.global.mu.Lock()
		p.global.pages = append(p.global.pages, spill...)
		p.global.mu.Unlock()
		return
	}
	lp.mu.Unlock()
}

// clearTail zeroes the last n slots of pages so vacated entries do not pin
// page memory through the slice's backing array.
func clearTail[T any](pages []T, n int) {
	var zero T
	for i := len(pages) - n; i < len(pages); i++ {
		pages[i] = zero
	}
}

// Prime pre-populates the global pool with n fresh pages.
func (p *Pool[T]) Prime(n int) {
	if n <= 0 {
		return
	}
	pages := make([]T, 0, n)
	for i := 0; i < n; i++ {
		pages = append(pages, p.newPage())
	}
	p.global.mu.Lock()
	p.global.pages = append(p.global.pages, pages...)
	p.global.mu.Unlock()
}

// Stats returns a snapshot of the pool counters.
func (p *Pool[T]) Stats() Stats {
	s := Stats{
		Allocs:        p.allocs.Load(),
		Frees:         p.frees.Load(),
		FreshPages:    p.fresh.Load(),
		LocalHits:     p.localHits.Load(),
		GlobalHits:    p.globalHits.Load(),
		Rebalances:    p.rebalances.Load(),
		RejectedDirty: p.rejectedDirty.Load(),
		SingleGets:    p.singleGets.Load(),
		SinglePuts:    p.singlePuts.Load(),
		BulkGets:      p.bulkGets.Load(),
		BulkPuts:      p.bulkPuts.Load(),
	}
	p.global.mu.Lock()
	s.GlobalPages = int64(len(p.global.pages))
	p.global.mu.Unlock()
	for _, lp := range p.locals {
		lp.mu.Lock()
		s.LocalPages += int64(len(lp.pages))
		lp.mu.Unlock()
	}
	return s
}

func (p *Pool[T]) local(worker int) *localPool[T] {
	if worker < 0 {
		worker = 0
	}
	return p.locals[worker%len(p.locals)]
}
