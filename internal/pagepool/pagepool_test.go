package pagepool

import (
	"sync"
	"testing"
	"testing/quick"
)

type page struct {
	id    int
	dirty bool
}

func newPool(workers, localMax int) (*Pool[*page], *int) {
	created := 0
	p := New[*page](workers,
		func() *page { created++; return &page{id: created} },
		WithEmptyCheck[*page](func(pg *page) bool { return !pg.dirty }),
		WithLocalMax[*page](localMax),
	)
	return p, &created
}

func TestGetCreatesFreshWhenEmpty(t *testing.T) {
	p, created := newPool(2, 4)
	pg := p.Get(0)
	if pg == nil || *created != 1 {
		t.Fatalf("expected one fresh page, created=%d", *created)
	}
	st := p.Stats()
	if st.Allocs != 1 || st.FreshPages != 1 || st.LocalHits != 0 || st.GlobalHits != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestPutThenGetHitsLocalPool(t *testing.T) {
	p, created := newPool(2, 4)
	pg := p.Get(1)
	p.Put(1, pg)
	got := p.Get(1)
	if got != pg {
		t.Fatal("expected to get the recycled page back")
	}
	if *created != 1 {
		t.Fatalf("created %d pages, want 1", *created)
	}
	st := p.Stats()
	if st.LocalHits != 1 {
		t.Fatalf("LocalHits = %d, want 1", st.LocalHits)
	}
}

func TestDirtyPagesAreRejected(t *testing.T) {
	p, _ := newPool(1, 4)
	pg := p.Get(0)
	pg.dirty = true
	p.Put(0, pg)
	st := p.Stats()
	if st.RejectedDirty != 1 || st.Frees != 0 {
		t.Fatalf("dirty page not rejected: %+v", st)
	}
	// The next Get must not return the dirty page.
	got := p.Get(0)
	if got == pg {
		t.Fatal("dirty page was recycled")
	}
}

func TestRebalanceSpillsToGlobalPool(t *testing.T) {
	p, _ := newPool(2, 4)
	pages := make([]*page, 10)
	for i := range pages {
		pages[i] = p.Get(0)
	}
	for _, pg := range pages {
		p.Put(0, pg)
	}
	st := p.Stats()
	if st.Rebalances == 0 {
		t.Fatalf("expected at least one rebalance, stats %+v", st)
	}
	if st.GlobalPages == 0 {
		t.Fatalf("expected pages in the global pool, stats %+v", st)
	}
	if st.LocalPages+st.GlobalPages != 10 {
		t.Fatalf("pages lost during rebalance: %+v", st)
	}
	// Another worker's Get should be able to pull from the global pool.
	beforeFresh := st.FreshPages
	_ = p.Get(1)
	st = p.Stats()
	if st.GlobalHits == 0 && st.FreshPages != beforeFresh {
		t.Fatalf("worker 1 allocated fresh instead of using global pool: %+v", st)
	}
}

func TestPrime(t *testing.T) {
	p, created := newPool(1, 4)
	p.Prime(5)
	p.Prime(0)
	if *created != 5 {
		t.Fatalf("Prime created %d pages, want 5", *created)
	}
	st := p.Stats()
	if st.GlobalPages != 5 {
		t.Fatalf("GlobalPages = %d, want 5", st.GlobalPages)
	}
	_ = p.Get(0)
	st = p.Stats()
	if st.GlobalHits != 1 || st.FreshPages != 0 {
		t.Fatalf("expected a global hit, got %+v", st)
	}
}

func TestWorkerIndexOutOfRangeIsClamped(t *testing.T) {
	p, _ := newPool(2, 4)
	pg := p.Get(-5)
	p.Put(99, pg)
	if got := p.Get(99); got != pg {
		t.Fatal("out-of-range worker index should map onto an existing pool")
	}
	if p.Workers() != 2 {
		t.Fatalf("Workers = %d, want 2", p.Workers())
	}
}

func TestZeroWorkerPoolStillWorks(t *testing.T) {
	p := New[*page](0, func() *page { return &page{} })
	if p.Workers() != 1 {
		t.Fatalf("Workers = %d, want 1", p.Workers())
	}
	pg := p.Get(0)
	p.Put(0, pg)
	if p.Get(0) != pg {
		t.Fatal("recycling in single-pool mode failed")
	}
}

func TestConcurrentGetPut(t *testing.T) {
	p, _ := newPool(4, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			held := make([]*page, 0, 16)
			for i := 0; i < 1000; i++ {
				if i%3 == 2 && len(held) > 0 {
					p.Put(worker, held[len(held)-1])
					held = held[:len(held)-1]
					continue
				}
				held = append(held, p.Get(worker))
			}
			for _, pg := range held {
				p.Put(worker, pg)
			}
		}(w)
	}
	wg.Wait()
	st := p.Stats()
	if st.Allocs == 0 || st.Frees == 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if st.LocalPages+st.GlobalPages != st.Frees-(st.Allocs-st.FreshPages) {
		// Every freed page is either in a pool or was re-allocated.
		t.Fatalf("page accounting mismatch: %+v", st)
	}
}

func TestPropertyPoolNeverHandsOutDirtyOrDuplicatePages(t *testing.T) {
	f := func(ops []uint8) bool {
		p, _ := newPool(3, 4)
		out := make(map[*page]bool) // pages currently handed out
		for _, op := range ops {
			worker := int(op) % 3
			if op%2 == 0 {
				pg := p.Get(worker)
				if pg.dirty || out[pg] {
					return false
				}
				out[pg] = true
			} else {
				// return an arbitrary held page
				for pg := range out {
					delete(out, pg)
					p.Put(worker, pg)
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGetNDrainsLocalThenGlobalThenFresh(t *testing.T) {
	p, _ := newPool(2, 8)
	// Seed: 2 pages in worker 0's local pool, 3 in the global pool.
	local := []*page{p.Get(0), p.Get(0)}
	for _, pg := range local {
		p.Put(0, pg)
	}
	p.Prime(3)

	got := p.GetN(0, 7)
	if len(got) != 7 {
		t.Fatalf("GetN returned %d pages, want 7", len(got))
	}
	seen := map[*page]bool{}
	for _, pg := range got {
		if pg == nil || seen[pg] {
			t.Fatal("GetN returned nil or duplicate page")
		}
		seen[pg] = true
	}
	st := p.Stats()
	if st.BulkGets != 1 {
		t.Fatalf("BulkGets = %d, want 1", st.BulkGets)
	}
	if st.LocalHits != 2 || st.GlobalHits != 3 {
		t.Fatalf("hits local=%d global=%d, want 2/3", st.LocalHits, st.GlobalHits)
	}
	if st.LocalPages != 0 || st.GlobalPages != 0 {
		t.Fatalf("pools not drained: %+v", st)
	}
}

func TestGetNZeroAndNegative(t *testing.T) {
	p, _ := newPool(1, 4)
	if got := p.GetN(0, 0); got != nil {
		t.Fatalf("GetN(0) = %v, want nil", got)
	}
	if got := p.GetN(0, -3); got != nil {
		t.Fatalf("GetN(-3) = %v, want nil", got)
	}
	if rt := p.Stats().RoundTrips(); rt != 0 {
		t.Fatalf("RoundTrips = %d, want 0", rt)
	}
}

func TestPutNRejectsDirtyAndSpills(t *testing.T) {
	p, _ := newPool(1, 4)
	pages := p.GetN(0, 8)
	pages[3].dirty = true
	p.PutN(0, pages)
	st := p.Stats()
	if st.BulkPuts != 1 {
		t.Fatalf("BulkPuts = %d, want 1", st.BulkPuts)
	}
	if st.RejectedDirty != 1 || st.Frees != 7 {
		t.Fatalf("rejected=%d frees=%d, want 1/7", st.RejectedDirty, st.Frees)
	}
	// localMax is 4, so the local pool must have spilled to global.
	if st.Rebalances != 1 || st.LocalPages+st.GlobalPages != 7 {
		t.Fatalf("spill bookkeeping wrong: %+v", st)
	}
	// Every clean page must come back out exactly once, clean.
	out := map[*page]bool{}
	for i := 0; i < 7; i++ {
		pg := p.Get(0)
		if pg.dirty || out[pg] {
			t.Fatal("dirty or duplicate page recycled")
		}
		out[pg] = true
	}
}

func TestRoundTripsCountsOpsNotPages(t *testing.T) {
	p, _ := newPool(1, 16)
	pages := p.GetN(0, 10)
	p.PutN(0, pages)
	one := p.Get(0)
	p.Put(0, one)
	st := p.Stats()
	if got := st.RoundTrips(); got != 4 {
		t.Fatalf("RoundTrips = %d, want 4 (GetN+PutN+Get+Put)", got)
	}
	if st.Allocs != 11 || st.Frees != 11 {
		t.Fatalf("page counts wrong: %+v", st)
	}
}

func TestPutNDoesNotMutateCallerSlice(t *testing.T) {
	p, _ := newPool(1, 16)
	pages := p.GetN(0, 5)
	snapshot := append([]*page(nil), pages...)
	pages[1].dirty = true
	pages[4].dirty = true
	p.PutN(0, pages)
	for i := range pages {
		if pages[i] != snapshot[i] {
			t.Fatalf("PutN mutated caller slice at %d", i)
		}
	}
	if st := p.Stats(); st.RejectedDirty != 2 || st.Frees != 3 {
		t.Fatalf("rejected=%d frees=%d, want 2/3", st.RejectedDirty, st.Frees)
	}
}

func TestPutNBurstRespectsLocalMaxBound(t *testing.T) {
	// Merge-sized bursts: a wide hypermerge returns dozens of public pages
	// in one PutN.  The local pool must never retain more than localMax
	// pages after the call — the burst spills to the global pool — and no
	// page may be lost or duplicated across repeated bursts.
	const localMax = 8
	const burst = 64
	const rounds = 3
	p, _ := newPool(2, localMax)
	for round := 1; round <= rounds; round++ {
		pages := p.GetN(0, burst)
		p.PutN(0, pages)
		st := p.Stats()
		// After a spill the local pool holds exactly localMax/2 pages; it
		// must never exceed the bound.
		if st.LocalPages > localMax {
			t.Fatalf("round %d: local pools hold %d pages, bound is %d", round, st.LocalPages, localMax)
		}
		if st.LocalPages != localMax/2 {
			t.Fatalf("round %d: local pool holds %d pages after spill, want %d", round, st.LocalPages, localMax/2)
		}
		if st.GlobalPages != burst-localMax/2 {
			t.Fatalf("round %d: global pool holds %d pages, want %d", round, st.GlobalPages, burst-localMax/2)
		}
		if st.Rebalances != int64(round) {
			t.Fatalf("round %d: Rebalances = %d, want %d (one spill per burst)", round, st.Rebalances, round)
		}
	}
	// Every page must come back out exactly once: the bursts conserved the
	// population across local and global pools.
	seen := map[*page]bool{}
	for _, pg := range p.GetN(0, burst) {
		if seen[pg] {
			t.Fatal("burst spill duplicated a page")
		}
		seen[pg] = true
	}
	if len(seen) != burst {
		t.Fatalf("recovered %d distinct pages, want %d", len(seen), burst)
	}
	if st := p.Stats(); st.FreshPages != burst {
		t.Fatalf("FreshPages = %d, want %d (burst cycling must not allocate)", st.FreshPages, burst)
	}
}

func TestGetNBurstPrefersLocalThenGlobal(t *testing.T) {
	// A bulk fetch must drain the worker's local pool before touching the
	// global pool, and the global pool before allocating fresh pages —
	// each tier under a single lock acquisition.
	const localMax = 8
	p, _ := newPool(2, localMax)
	p.PutN(1, p.GetN(1, 3)) // 3 fresh pages parked in worker 1's local pool
	p.Prime(6)              // then 6 pages into the global pool
	pre := p.Stats()
	_ = p.GetN(1, 12) // 3 local + 6 global + 3 fresh
	st := p.Stats()
	if got := st.LocalHits - pre.LocalHits; got != 3 {
		t.Fatalf("local hits during burst = %d, want 3", got)
	}
	if got := st.GlobalHits - pre.GlobalHits; got != 6 {
		t.Fatalf("global hits during burst = %d, want 6", got)
	}
	if got := st.FreshPages - pre.FreshPages; got != 3 {
		t.Fatalf("fresh pages during burst = %d, want 3", got)
	}
	if st.LocalPages != 0 || st.GlobalPages != 0 {
		t.Fatalf("burst fetch left pages behind: %+v", st)
	}
}

func TestConcurrentBulkBurstsKeepInvariants(t *testing.T) {
	// Merge-sized GetN/PutN bursts from many goroutines: the pool must
	// never hand out a duplicate page, and every local pool stays within
	// its bound once the dust settles.
	const localMax = 4
	const workers = 4
	p, _ := newPool(workers, localMax)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pages := p.GetN(w, 17)
				for _, pg := range pages {
					if pg == nil {
						t.Error("GetN handed out a nil page")
						return
					}
				}
				p.PutN(w, pages)
			}
		}(w)
	}
	wg.Wait()
	st := p.Stats()
	if st.LocalPages > int64(workers*localMax) {
		t.Fatalf("local pools exceed bound after bursts: %+v", st)
	}
	if st.RejectedDirty != 0 {
		t.Fatalf("clean bursts produced dirty rejections: %+v", st)
	}
	if st.Allocs != st.Frees {
		t.Fatalf("page population not conserved: allocs=%d frees=%d", st.Allocs, st.Frees)
	}
}
