package hypermap

import "repro/internal/spa"

// hashTable is a chained hash table mapping reducer addresses to view
// entries.  It reproduces the structure of the hypermaps in the open-source
// Cilk Plus runtime (reducer_impl.cpp) rather than relying on Go's built-in
// map, so that the measured lookup cost has the same character as the
// baseline the paper compares against:
//
//   - the table is sized from a fixed progression of odd (prime-like)
//     bucket counts,
//   - the hash reduces the reducer's address modulo the bucket count (an
//     integer division on every lookup),
//   - collisions chain within a bucket, and
//   - exceeding the load factor triggers a rehash into the next size (the
//     "hash-table expansion" the paper's Figure 6 discussion calls out).
//
// Entries are stored by value inside the chain nodes: one allocation per
// node, none per entry.  The entry stores the same single-word view
// representation the memory-mapped engine's SPA slots use (plus the owner
// stamp and an explicit written byte — see entry's doc comment).
type hashTable struct {
	buckets  []*hashEntry
	nbuckets uint64
	n        int
	sizeIdx  int
}

// hashEntry is one chained element.
type hashEntry struct {
	key  spa.Addr
	ent  entry
	next *hashEntry
}

// bucketSizes is the progression of bucket counts, mirroring the small
// prime-like sizes the Cilk Plus runtime grows its hypermaps through.
var bucketSizes = []int{17, 37, 79, 163, 331, 673, 1361, 2729, 5471, 10949, 21911, 43853, 87719, 175447}

// newHashTable creates an empty table whose initial size is at least hint.
func newHashTable(hint int) *hashTable {
	idx := 0
	for idx < len(bucketSizes)-1 && bucketSizes[idx] < hint {
		idx++
	}
	return &hashTable{
		buckets:  make([]*hashEntry, bucketSizes[idx]),
		nbuckets: uint64(bucketSizes[idx]),
		sizeIdx:  idx,
	}
}

// hash reduces the reducer address (in the real runtime, the reducer's
// pointer shifted past its alignment bits) modulo the bucket count.
func (t *hashTable) hash(key spa.Addr) uint64 {
	return (uint64(key) + 0x9E3779B9) % t.nbuckets
}

// len returns the number of stored entries.
func (t *hashTable) len() int { return t.n }

// lookup returns a pointer to the entry for key, or nil.  The pointer
// aliases the chain node, so callers may update the entry in place (the
// hypermerge's reduce-into-current and the lookup path's written-bit
// stamping both do).
func (t *hashTable) lookup(key spa.Addr) *entry {
	for e := t.buckets[t.hash(key)]; e != nil; e = e.next {
		if e.key == key {
			return &e.ent
		}
	}
	return nil
}

// probeHead returns the entry for key only when it sits at the head of its
// bucket chain, or nil.  Unlike lookup it never walks the chain, so it has
// no loop and the compiler inlines it into the engine's devirtualized
// lookup fast path; a hit is one hash (the baseline's characteristic
// modulo), one load and one compare.  Chains are short at steady state —
// the table grows at load factor 1 — and a below-head entry is still found
// by the outlined miss path's full lookup, so probeHead trades a rare
// second probe for an inlinable first one.
func (t *hashTable) probeHead(key spa.Addr) *entry {
	if e := t.buckets[t.hash(key)]; e != nil && e.key == key {
		return &e.ent
	}
	return nil
}

// insert adds an entry for key, which must not already be present, growing
// the table when the load factor reaches 1.
func (t *hashTable) insert(key spa.Addr, ent entry) {
	if t.n >= len(t.buckets) {
		t.grow()
	}
	b := t.hash(key)
	t.buckets[b] = &hashEntry{key: key, ent: ent, next: t.buckets[b]}
	t.n++
}

// remove deletes the entry for key, returning whether it was present.  The
// engine uses it when a lookup finds a stale entry at a recycled reducer
// address: the retired occupant's view is dropped before the live
// reducer's identity view is inserted.
func (t *hashTable) remove(key spa.Addr) bool {
	b := t.hash(key)
	for p := &t.buckets[b]; *p != nil; p = &(*p).next {
		if (*p).key == key {
			*p = (*p).next
			t.n--
			return true
		}
	}
	return false
}

// grow moves to the next bucket-count in the progression and rehashes every
// entry.
func (t *hashTable) grow() {
	if t.sizeIdx+1 < len(bucketSizes) {
		t.sizeIdx++
	}
	old := t.buckets
	t.buckets = make([]*hashEntry, bucketSizes[t.sizeIdx])
	t.nbuckets = uint64(len(t.buckets))
	for _, e := range old {
		for e != nil {
			next := e.next
			b := t.hash(e.key)
			e.next = t.buckets[b]
			t.buckets[b] = e
			e = next
		}
	}
}

// forEach calls fn for every (key, entry) pair; the entry pointer aliases
// the chain node.
func (t *hashTable) forEach(fn func(key spa.Addr, ent *entry)) {
	for _, e := range t.buckets {
		for ; e != nil; e = e.next {
			fn(e.key, &e.ent)
		}
	}
}
