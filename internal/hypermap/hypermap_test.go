package hypermap_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hypermap"
	"repro/internal/sched"
)

type sumMonoid struct{}

type sumView struct{ v int }

func (sumMonoid) Identity() any { return &sumView{} }
func (sumMonoid) Reduce(left, right any) any {
	l := left.(*sumView)
	l.v += right.(*sumView).v
	return l
}

type catMonoid struct{}

type catView struct{ s string }

func (catMonoid) Identity() any { return &catView{} }
func (catMonoid) Reduce(left, right any) any {
	l := left.(*catView)
	l.s += right.(*catView).s
	return l
}

func TestHypermapRegisterUnregister(t *testing.T) {
	// One directory shard makes the recycled address available to the very
	// next registration.
	e := hypermap.New(hypermap.Config{Workers: 2, DirectoryShards: 1})
	if _, err := e.Register(nil); err == nil {
		t.Fatal("Register(nil) should fail")
	}
	r1, err := e.Register(sumMonoid{})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	r2, _ := e.Register(sumMonoid{})
	if r1.Addr() == r2.Addr() {
		t.Fatal("distinct reducers share an address")
	}
	if e.Registered() != 2 {
		t.Fatalf("Registered = %d, want 2", e.Registered())
	}
	addr := r1.Addr()
	e.Unregister(r1)
	e.Unregister(nil)
	if !r1.Retired() {
		t.Fatal("Unregister did not retire the reducer")
	}
	r3, _ := e.Register(sumMonoid{})
	if r3.Addr() != addr {
		t.Fatalf("address %d not recycled, got %d", addr, r3.Addr())
	}
}

func TestHypermapSerialAndParallelSum(t *testing.T) {
	for _, workers := range []int{1, 4} {
		eng := hypermap.New(hypermap.Config{Workers: workers, InitialBuckets: 8})
		s := core.NewSession(workers, eng)
		r, _ := eng.Register(sumMonoid{})
		const n = 500
		err := s.Run(func(c *sched.Context) {
			c.ParallelForGrain(0, n, 1, func(c *sched.Context, i int) {
				if workers > 1 {
					time.Sleep(20 * time.Microsecond)
				}
				eng.Lookup(c, r).(*sumView).v++
			})
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if got := r.Value().(*sumView).v; got != n {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, got, n)
		}
		if workers > 1 && s.Runtime().Stats().Steals == 0 {
			t.Fatal("expected steals on the parallel run")
		}
		for i := 0; i < workers; i++ {
			if got := eng.WorkerViewCount(i); got != 0 {
				t.Fatalf("worker %d retains %d views after the run", i, got)
			}
		}
		s.Close()
	}
}

func TestHypermapNonCommutativeOrder(t *testing.T) {
	eng := hypermap.New(hypermap.Config{Workers: 4})
	s := core.NewSession(4, eng)
	defer s.Close()
	r, _ := eng.Register(catMonoid{})
	const n = 150
	var want strings.Builder
	for i := 0; i < n; i++ {
		want.WriteByte(byte('a' + i%26))
	}
	err := s.Run(func(c *sched.Context) {
		c.ParallelForGrain(0, n, 1, func(c *sched.Context, i int) {
			time.Sleep(40 * time.Microsecond)
			view := eng.Lookup(c, r).(*catView)
			view.s += string(byte('a' + i%26))
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := r.Value().(*catView).s; got != want.String() {
		t.Fatalf("order differs from serial:\ngot  %q\nwant %q", got, want.String())
	}
}

func TestHypermapOverheadsAndLookupCounting(t *testing.T) {
	eng := hypermap.New(hypermap.Config{Workers: 2, Timing: true, CountLookups: true})
	s := core.NewSession(2, eng)
	defer s.Close()
	r, _ := eng.Register(sumMonoid{})
	const n = 300
	err := s.Run(func(c *sched.Context) {
		c.ParallelForGrain(0, n, 1, func(c *sched.Context, i int) {
			time.Sleep(20 * time.Microsecond)
			eng.Lookup(c, r).(*sumView).v++
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := eng.Lookups(); got != n {
		t.Fatalf("Lookups = %d, want %d", got, n)
	}
	if eng.Overheads().Total() == 0 {
		t.Fatal("expected timed overheads")
	}
	eng.ResetOverheads()
	if eng.Overheads().Total() != 0 || eng.Lookups() != 0 {
		t.Fatal("ResetOverheads did not clear counters")
	}
	eng.SetTiming(false)
	eng.SetCountLookups(false)
	if !strings.Contains(eng.Name(), "hypermap") {
		t.Fatalf("Name = %q", eng.Name())
	}
}

func TestHypermapMergeRootDepositNil(t *testing.T) {
	eng := hypermap.New(hypermap.Config{Workers: 1})
	eng.MergeRootDeposit(nil)
	var d *hypermap.Deposit
	eng.MergeRootDeposit(d)
	if (&hypermap.Deposit{}).Len() != 0 {
		t.Fatal("empty deposit should have zero length")
	}
}

func TestHypermapSerialContext(t *testing.T) {
	eng := hypermap.New(hypermap.Config{Workers: 1})
	r, _ := eng.Register(sumMonoid{})
	eng.Lookup(nil, r).(*sumView).v = 9
	if got := r.Value().(*sumView).v; got != 9 {
		t.Fatalf("serial-context value = %d, want 9", got)
	}
}

// TestHypermapIdentityElision checks the written-bit elision on the
// hypermap engine: read-only resolutions (LookupWord with mutable=false)
// leave entries unwritten, and the hypermerge skips them — no reduce call,
// no insertion into the current map — while written entries still fold.
func TestHypermapIdentityElision(t *testing.T) {
	const nred = 24
	const reps = 4
	e := hypermap.New(hypermap.Config{Workers: 1})
	s := core.NewSession(1, e)
	defer s.Close()
	rs := make([]*core.Reducer, nred)
	for i := range rs {
		rs[i], _ = e.Register(sumMonoid{})
	}
	if err := s.Run(func(c *sched.Context) {
		w := c.Worker()
		for rep := 0; rep < reps; rep++ {
			tr := e.BeginTrace(w)
			for i, r := range rs {
				if i%2 == 0 {
					e.Lookup(c, r).(*sumView).v++ // written
				} else {
					word, _ := e.LookupWord(c, r, 0, false) // read-only
					if got := (*sumView)(word).v; got != 0 {
						t.Errorf("read-only first lookup = %d, want identity 0", got)
					}
				}
			}
			d := e.EndTrace(w, tr)
			e.Merge(w, w.CurrentTrace(), d)
		}
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.Run(func(c *sched.Context) {}); err != nil {
		t.Fatalf("flush run: %v", err)
	}
	for i, r := range rs {
		want := 0
		if i%2 == 0 {
			want = reps
		}
		if got := r.Value().(*sumView).v; got != want {
			t.Fatalf("reducer %d = %d, want %d", i, got, want)
		}
	}
	if got := e.IdentityElisions(); got != int64(nred/2*reps) {
		t.Fatalf("IdentityElisions = %d, want %d", got, nred/2*reps)
	}
}

// TestHypermapWriteAfterReadOnlyLookup pins the written-bit stamping order:
// a read-only first touch followed by a mutable lookup in the same trace
// must produce a view that merges normally.
func TestHypermapWriteAfterReadOnlyLookup(t *testing.T) {
	e := hypermap.New(hypermap.Config{Workers: 1})
	s := core.NewSession(1, e)
	defer s.Close()
	r, _ := e.Register(sumMonoid{})
	if err := s.Run(func(c *sched.Context) {
		w := c.Worker()
		tr := e.BeginTrace(w)
		word, _ := e.LookupWord(c, r, 0, false)
		_ = (*sumView)(word).v
		e.Lookup(c, r).(*sumView).v += 5
		d := e.EndTrace(w, tr)
		e.Merge(w, w.CurrentTrace(), d)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.Run(func(c *sched.Context) {}); err != nil {
		t.Fatalf("flush run: %v", err)
	}
	if got := r.Value().(*sumView).v; got != 5 {
		t.Fatalf("value = %d, want 5", got)
	}
	if got := e.IdentityElisions(); got != 0 {
		t.Fatalf("IdentityElisions = %d, want 0", got)
	}
}
