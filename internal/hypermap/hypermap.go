package hypermap

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/spa"
)

// Config configures the hypermap engine.
type Config struct {
	// Workers sizes the per-worker instrumentation.
	Workers int
	// Timing enables duration measurement in the overhead instrumentation.
	Timing bool
	// CountLookups enables lookup counting.
	CountLookups bool
	// InitialBuckets is the initial size hint for newly created hypermaps.
	// The Cilk Plus runtime starts its hash tables small and grows them;
	// a value of 0 keeps Go's default behaviour.
	InitialBuckets int
	// DirectoryShards is the number of reducer-directory shards; it is
	// rounded up to a power of two.  Zero sizes the directory from
	// Workers.  Tests pin it to 1 to make slot recycling deterministic.
	DirectoryShards int
}

// HM is the hypermap reducer engine (the Cilk Plus baseline mechanism).
// The concrete name matters to the typed reducer handles: they capture *HM
// at construction and call its LookupWordFast directly, mirroring the
// memory-mapped engine's *core.MM, so neither mechanism pays an interface
// dispatch on a handle-cache miss.
type HM struct {
	cfg Config
	rec *metrics.Recorder

	// dir is the sharded reducer directory shared with the memory-mapped
	// engine's implementation: registration, unregistration and the live
	// count run on its lock-free paths, so the Figure comparisons measure
	// the lookup structures rather than a registry mutex.
	dir *core.Directory

	// initMu guards attach-time bookkeeping only (the worker list and the
	// per-worker counter resize in WorkerInit).
	initMu sync.Mutex
	// workers is the RCU-published list of attached per-worker states, so
	// Unregister can publish view invalidations without a lock.
	workers atomic.Pointer[[]*hmWorker]

	countLookups bool
	// lookups holds one cache-line-padded counter per worker, indexed
	// directly by worker ID.  It is sized from the engine config at
	// construction and re-sized in WorkerInit when a runtime with more
	// workers attaches, so counts are never aliased across workers.
	lookups []metrics.PaddedCounter
	// cacheHits counts per-context lookup-cache hits per worker, so that
	// the Figure comparisons stay apples-to-apples with the memory-mapped
	// engine: both mechanisms run the same single-entry cache ahead of
	// their respective lookup structures.  Maintained only while lookup
	// counting is enabled.
	cacheHits []metrics.PaddedCounter

	// elisions counts never-written views the hypermerge skipped, the
	// hypermap counterpart of metrics.MergePipeline.IdentityElisions.
	elisions metrics.PaddedCounter

	// fastHits, fastMisses and fastCold count the devirtualized typed-lookup
	// fast path's outcomes (see lookupfast.go); they tick only on
	// handle-cache misses, mirroring the memory-mapped engine's counters.
	fastHits   metrics.PaddedCounter
	fastMisses metrics.PaddedCounter
	fastCold   metrics.PaddedCounter

	// mergeInflight counts hypermerges (Merge and MergeRootDeposit calls)
	// currently executing; part of the engine's quiescence invariant.
	mergeInflight atomic.Int64
}

// hmWorker is the per-worker state: the user hypermap of the trace the
// worker is currently executing.
type hmWorker struct {
	eng *HM
	w   *sched.Worker
	// user is the user hypermap: reducer address → local view.
	user *hashTable
}

// entry pairs a local view with the reducer that owns it.  The view is
// stored as its packed single-word representation (core.Reducer.BoxView
// reassembles the interface value) rather than as a two-word interface, so
// both mechanisms share one boxing strategy; unlike the 16-byte SPA slot,
// though, the written flag lives in an explicit byte (24 bytes per entry)
// rather than in the stamp's low bits — the baseline keeps plain loads and
// stores on its mutable-in-place entries.  The owner stamp plays the role
// the monoid pointer plays in Cilk Plus (it carries the monoid) and
// additionally lets a lookup detect that an entry at a recycled address
// belongs to a retired reducer.  written mirrors the SPA slots' written
// flag: entries never handed out for mutation still hold the monoid
// identity and are elided by the hypermerge.
type entry struct {
	view    unsafe.Pointer
	owner   *core.Reducer
	written bool
}

// hmTrace identifies an active trace.  Traces nest when a worker helps at a
// stalled join, so the token saves the suspended outer trace's user
// hypermap for EndTrace to restore.
type hmTrace struct {
	ws    *hmWorker
	saved *hashTable
	// ended makes the token single-shot: the scheduler's abort path may
	// call EndTrace defensively on a trace that already ended, and the
	// second call must not deposit (and then discard) the restored outer
	// trace's hypermap.
	ended bool
}

// Engine is the name this engine was originally exported under; HM is the
// canonical name.  The alias keeps existing callers compiling.
type Engine = HM

// Deposit is a deposited hypermap: view transferal in the hypermap scheme
// simply hands over the map.
type Deposit struct {
	views *hashTable
}

// Len returns the number of deposited views.
func (d *Deposit) Len() int {
	if d.views == nil {
		return 0
	}
	return d.views.len()
}

// New creates a hypermap engine.
func New(cfg Config) *HM {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	e := &HM{
		cfg:       cfg,
		rec:       metrics.NewRecorder(cfg.Workers),
		lookups:   make([]metrics.PaddedCounter, cfg.Workers),
		cacheHits: make([]metrics.PaddedCounter, cfg.Workers),
	}
	e.dir = core.NewDirectory(core.DirectoryConfig{
		Shards:  cfg.DirectoryShards,
		Workers: cfg.Workers,
	})
	e.rec.SetTiming(cfg.Timing)
	e.countLookups = cfg.CountLookups
	return e
}

// publishViewInvalidation bumps every attached worker's view epoch so no
// context keeps serving a cached view after its reducer is unregistered.
func (e *HM) publishViewInvalidation() {
	if ws := e.workers.Load(); ws != nil {
		for _, s := range *ws {
			s.w.PublishViewInvalidation()
		}
	}
}

// Name implements core.Engine.
func (e *HM) Name() string { return "Cilk Plus (hypermap)" }

// newHypermap allocates an empty user hypermap.
func (e *HM) newHypermap() *hashTable {
	return newHashTable(e.cfg.InitialBuckets)
}

// --- registration and lookup ---

// Register implements core.Engine: a lock-free slot allocation in the
// sharded directory.
func (e *HM) Register(m core.Monoid) (*core.Reducer, error) {
	if m == nil {
		return nil, errors.New("hypermap: nil monoid")
	}
	return e.dir.Register(e, m)
}

// Unregister implements core.Engine.  The directory's compare-and-swap is
// the registry identity check (got == r): a double-unregister after slot
// reuse can never delete another live reducer's entry or free an address
// twice.  A successful unregister publishes a view invalidation so every
// context re-resolves its cached view on the next lookup.  As in the
// memory-mapped engine, a worker still holding the retired reducer's
// hypermap entry for the current trace keeps reading that (doomed) view
// until the trace ends; the owner stamp keeps it invisible to every other
// reducer.
func (e *HM) Unregister(r *core.Reducer) {
	if r == nil || r.Engine() != core.Engine(e) {
		return
	}
	if e.dir.Unregister(r) {
		e.publishViewInvalidation()
	}
	core.MarkRetired(r)
}

// Registered returns the number of live reducers.  Lock-free.
func (e *HM) Registered() int { return e.dir.Live() }

// Directory exposes the sharded reducer directory (for tests and
// diagnostics).
func (e *HM) Directory() *core.Directory { return e.dir }

// DirectoryStats returns a snapshot of the directory's shard layout and
// contention counters.
func (e *HM) DirectoryStats() metrics.DirectoryStats { return e.dir.Stats() }

// Lookup implements core.Engine: a hash-table lookup keyed by the reducer's
// address, creating and inserting an identity view on a miss.  The same
// per-context single-entry cache the memory-mapped engine runs sits ahead
// of the hash table, so repeated lookups of one reducer in a loop body skip
// the hashing entirely and the Figure comparisons stay apples-to-apples.
// Like the memory-mapped engine, Lookup hands out a mutable view, so it
// stamps the entry's written bit.
func (e *HM) Lookup(c *sched.Context, r *core.Reducer) any {
	if c == nil {
		return r.Value()
	}
	w := c.Worker()
	ws, _ := w.Local().(*hmWorker)
	if ws == nil {
		return r.Value()
	}
	if e.countLookups {
		e.lookups[w.ID()].Add(1)
	}
	if v, ok := c.CachedView(r.ID()); ok {
		if e.countLookups {
			e.cacheHits[w.ID()].Add(1)
		}
		return v
	}
	if ent := ws.user.lookup(r.Addr()); ent != nil && ent.owner == r {
		// The owner stamp guarantees an entry at a recycled address never
		// serves a stale view (mirroring the memory-mapped engine's SPA
		// slot stamp).
		ent.written = true
		v := r.BoxView(ent.view)
		c.CacheView(r.ID(), v)
		return v
	}
	return e.lookupSlow(c, w, ws, r, true)
}

// LookupCached implements core.Engine: the resolution step behind the typed
// handles' per-context view caches, mirroring the memory-mapped engine so
// the typed API is mechanism-agnostic.  The epoch is sampled before the
// lookup (a racing invalidation only forces a harmless re-resolution); a
// zero epoch tells the caller not to cache — returned for nil contexts and
// retired handles, whose frozen leftmost value must be re-read every time.
func (e *HM) LookupCached(c *sched.Context, r *core.Reducer, prevEpoch uint64) (any, uint64) {
	_ = prevEpoch
	if c == nil {
		return r.Value(), 0
	}
	epoch := c.Worker().ViewEpoch()
	v := e.Lookup(c, r)
	if !e.dir.Valid(r) {
		return v, 0
	}
	return v, epoch
}

// LookupWord implements core.Engine: the word-level lookup behind the typed
// handles, mirroring the memory-mapped engine so the typed API is
// mechanism-agnostic.  Only mutable accesses stamp the entry's written bit;
// read-only accesses leave identity views elidable by the hypermerge.
func (e *HM) LookupWord(c *sched.Context, r *core.Reducer, prevEpoch uint64, mutable bool) (unsafe.Pointer, uint64) {
	_ = prevEpoch
	if c == nil {
		return r.UnboxView(r.Value()), 0
	}
	w := c.Worker()
	ws, _ := w.Local().(*hmWorker)
	if ws == nil {
		return r.UnboxView(r.Value()), 0
	}
	if e.countLookups {
		// Counted handles route reads here (bypassing their caches), so
		// instrumented runs keep exact lookup counts on this path too.
		e.lookups[w.ID()].Add(1)
	}
	epoch := w.ViewEpoch()
	if ent := ws.user.lookup(r.Addr()); ent != nil && ent.owner == r {
		if mutable {
			ent.written = true
		}
		return ent.view, epoch
	}
	v := e.lookupSlow(c, w, ws, r, mutable)
	if !e.dir.Valid(r) {
		return r.UnboxView(v), 0
	}
	return r.UnboxView(v), epoch
}

// Workers implements core.Engine: the number of per-worker structures
// currently maintained (construction size, grown when a larger runtime
// attaches).
func (e *HM) Workers() int {
	e.initMu.Lock()
	defer e.initMu.Unlock()
	return len(e.lookups)
}

func (e *HM) lookupSlow(c *sched.Context, w *sched.Worker, ws *hmWorker, r *core.Reducer, mutable bool) any {
	if !e.dir.Valid(r) {
		// A retired handle: serve the frozen leftmost value, matching a
		// serial lookup after unregistration.
		return r.Value()
	}
	if ent := ws.user.lookup(r.Addr()); ent != nil {
		// A stale entry from a retired occupant of this recycled address;
		// drop its in-flight view before installing r's identity view.
		ws.user.remove(r.Addr())
	}
	// Chaos point for a monoid whose Identity blows up: fired before the
	// entry is inserted, so a contained identity panic leaves the worker's
	// hypermap exactly as it was.
	faultinject.Check(faultinject.MonoidIdentity)
	start := e.rec.Start()
	view := r.Monoid().Identity()
	word := r.UnboxView(view)
	e.rec.Stop(w.ID(), metrics.ViewCreation, start)

	start = e.rec.Start()
	ws.user.insert(r.Addr(), entry{view: word, owner: r, written: mutable})
	e.rec.Stop(w.ID(), metrics.ViewInsertion, start)
	if mutable {
		// Only mutable resolutions populate the context's boxed cache: a
		// cached hit never revisits the entry, so it must not bypass the
		// written-bit stamping of a later mutable access.
		c.CacheView(r.ID(), view)
	}
	return view
}

// --- sched.ReducerRuntime hooks ---

// WorkerInit implements sched.ReducerRuntime.  It runs once per worker
// while the attaching runtime is being constructed — before any of that
// runtime's tasks execute — so it sizes the per-worker lookup counters
// from the runtime's actual worker count.  Lookup can then index by
// worker ID directly, and counts are never aliased when the engine config
// and the runtime disagree about the number of workers.  An engine must
// not be attached to a new runtime while a previously attached one is
// executing: the resize would race with that runtime's lock-free Lookup
// reads.  (Sessions couple one engine to one runtime, so no current
// caller does this.)
func (e *HM) WorkerInit(w *sched.Worker) {
	ws := &hmWorker{eng: e, w: w, user: e.newHypermap()}
	w.SetLocal(ws)
	e.initMu.Lock()
	if n := w.Runtime().Workers(); n > len(e.lookups) {
		e.lookups = append(e.lookups, make([]metrics.PaddedCounter, n-len(e.lookups))...)
		e.cacheHits = append(e.cacheHits, make([]metrics.PaddedCounter, n-len(e.cacheHits))...)
		e.rec.EnsureWorkers(n)
	}
	// Republish the worker list copy-on-write: publication sweeps iterate
	// it lock-free.
	var grown []*hmWorker
	if cur := e.workers.Load(); cur != nil {
		grown = append(grown, *cur...)
	}
	grown = append(grown, ws)
	e.workers.Store(&grown)
	e.initMu.Unlock()
}

// BeginTrace implements sched.ReducerRuntime.  A stolen frame starts with
// an empty user hypermap; the suspended trace's hypermap (non-empty when
// the worker is helping at a stalled join) is saved in the trace token.
func (e *HM) BeginTrace(w *sched.Worker) sched.Trace {
	ws, _ := w.Local().(*hmWorker)
	if ws == nil {
		return &hmTrace{}
	}
	tr := &hmTrace{ws: ws, saved: ws.user}
	ws.user = e.newHypermap()
	w.InvalidateLookupCache()
	return tr
}

// EndTrace implements sched.ReducerRuntime.  View transferal in the
// hypermap scheme deposits the user hypermap itself, then restores the
// suspended outer trace's hypermap.
func (e *HM) EndTrace(w *sched.Worker, tr sched.Trace) sched.Deposit {
	ws, _ := w.Local().(*hmWorker)
	if ws == nil {
		return nil
	}
	ht, _ := tr.(*hmTrace)
	if ht != nil {
		if ht.ended {
			return nil
		}
		ht.ended = true
	}
	var dep *Deposit
	if ws.user.len() != 0 {
		start := e.rec.Start()
		dep = &Deposit{views: ws.user}
		ws.user = nil
		e.rec.Stop(w.ID(), metrics.ViewTransferal, start)
	}
	if ht != nil && ht.saved != nil {
		ws.user = ht.saved
	} else if ws.user == nil {
		ws.user = e.newHypermap()
	}
	w.InvalidateLookupCache()
	if dep == nil {
		return nil
	}
	return dep
}

// Merge implements sched.ReducerRuntime: the hypermerge.  The worker walks
// the deposited hypermap; never-written entries are elided outright (the
// view still equals the monoid identity, so current ⊗ e = current — no
// reduce call, no insertion); for every other element it looks up the
// corresponding view in its own user hypermap and either reduces the pair
// (current ⊗ deposited) or inserts the deposited entry wholesale.
func (e *HM) Merge(w *sched.Worker, tr sched.Trace, d sched.Deposit) {
	dep, _ := d.(*Deposit)
	if dep == nil {
		return
	}
	ws, _ := w.Local().(*hmWorker)
	if ws == nil {
		return
	}
	e.mergeInflight.Add(1)
	defer e.mergeInflight.Add(-1)
	start := e.rec.Start()
	reduces := int64(0)
	inserts := int64(0)
	elisions := int64(0)
	dep.views.forEach(func(addr spa.Addr, depEnt *entry) {
		if !depEnt.written {
			elisions++
			return
		}
		if curEnt := ws.user.lookup(addr); curEnt != nil {
			if curEnt.owner == depEnt.owner {
				r := depEnt.owner
				// Chaos point for a monoid whose Reduce blows up
				// mid-hypermerge; views are heap-backed here, so a contained
				// reduce panic leaks nothing — the dropped deposit falls to
				// the garbage collector.
				faultinject.Check(faultinject.MonoidReduce)
				combined := r.Monoid().Reduce(r.BoxView(curEnt.view), r.BoxView(depEnt.view))
				curEnt.view = r.UnboxView(combined)
				curEnt.written = true
				reduces++
				return
			}
			// Owner stamps differ: the address was recycled while one of
			// the views was in flight, and at most one owner can still be
			// registered.  Drop the stale side.
			if depEnt.owner == nil || !e.dir.Valid(depEnt.owner) {
				return
			}
			ws.user.remove(addr)
		}
		insStart := e.rec.Start()
		ws.user.insert(addr, *depEnt)
		e.rec.Stop(w.ID(), metrics.ViewInsertion, insStart)
		inserts++
	})
	dep.views = nil
	w.InvalidateLookupCache()
	e.rec.Stop(w.ID(), metrics.Hypermerge, start)
	if reduces > 1 {
		e.rec.RecordCount(w.ID(), metrics.Hypermerge, reduces-1)
	}
	if elisions > 0 {
		e.elisions.Add(elisions)
	}
	_ = inserts
}

// MergeRootDeposit implements core.Engine.  Each entry's owner stamp
// resolves the reducer directly — no registry copy, no lock — and the
// directory's epoch-stamped Valid check drops views whose reducer was
// unregistered while they were in flight.  Never-written entries are
// elided exactly as in Merge.
func (e *HM) MergeRootDeposit(d sched.Deposit) {
	dep, _ := d.(*Deposit)
	if dep == nil || dep.views == nil {
		return
	}
	e.mergeInflight.Add(1)
	defer e.mergeInflight.Add(-1)
	dep.views.forEach(func(addr spa.Addr, ent *entry) {
		if ent.owner == nil || !e.dir.Valid(ent.owner) {
			return
		}
		if !ent.written {
			e.elisions.Add(1)
			return
		}
		core.AbsorbView(ent.owner, ent.owner.BoxView(ent.view))
	})
	dep.views = nil
}

// Discard implements sched.ReducerRuntime: release a deposit that will
// never be merged — the containment path for a job that panicked or was
// cancelled between a trace's EndTrace and its join.  Hypermap views are
// heap-backed and the deposit is the hash table itself, so dropping the
// reference is the whole release; the garbage collector reclaims the views.
// A nil or already-consumed deposit is a no-op.
func (e *HM) Discard(w *sched.Worker, d sched.Deposit) {
	dep, _ := d.(*Deposit)
	if dep == nil {
		return
	}
	dep.views = nil
}

// Quiescent implements core.Engine: verify that no job left engine state in
// flight.  The hypermap engine holds no pooled resources, so quiescence is
// just "no hypermerge executing and every worker's user hypermap empty".
// It must only be called between jobs; the hypermaps are owner-local.
func (e *HM) Quiescent() error {
	if n := e.mergeInflight.Load(); n != 0 {
		return fmt.Errorf("hypermap: %d hypermerges still in flight", n)
	}
	if list := e.workers.Load(); list != nil {
		for i, ws := range *list {
			if n := ws.user.len(); n != 0 {
				return fmt.Errorf("hypermap: worker %d holds %d views", i, n)
			}
		}
	}
	return nil
}

// IdentityElisions reports the number of never-written views the
// hypermerge elided since the last reset (the hypermap counterpart of the
// memory-mapped engine's MergePipeline.IdentityElisions).
func (e *HM) IdentityElisions() int64 { return e.elisions.Load() }

// --- instrumentation ---

// Overheads implements core.Engine.
func (e *HM) Overheads() metrics.Breakdown { return e.rec.Snapshot() }

// ResetOverheads implements core.Engine.
func (e *HM) ResetOverheads() {
	e.rec.Reset()
	for i := range e.lookups {
		e.lookups[i].Store(0)
	}
	for i := range e.cacheHits {
		e.cacheHits[i].Store(0)
	}
	e.elisions.Store(0)
	e.fastHits.Store(0)
	e.fastMisses.Store(0)
	e.fastCold.Store(0)
}

// CacheHits reports the number of lookups served by the per-context cache
// since the last reset.  Like Lookups it only counts while lookup counting
// is enabled.
func (e *HM) CacheHits() int64 {
	var n int64
	for i := range e.cacheHits {
		n += e.cacheHits[i].Load()
	}
	return n
}

// SetTiming implements core.Engine.
func (e *HM) SetTiming(on bool) { e.rec.SetTiming(on) }

// SetCountLookups implements core.Engine.
func (e *HM) SetCountLookups(on bool) { e.countLookups = on }

// CountingLookups implements core.Engine.
func (e *HM) CountingLookups() bool { return e.countLookups }

// Lookups implements core.Engine.
func (e *HM) Lookups() int64 {
	var n int64
	for i := range e.lookups {
		n += e.lookups[i].Load()
	}
	return n
}

// WorkerViewCount reports the number of views in worker i's user hypermap
// (diagnostic; it should be zero between runs).
func (e *HM) WorkerViewCount(i int) int {
	ws := e.workers.Load()
	if ws == nil || i < 0 || i >= len(*ws) {
		return 0
	}
	return (*ws)[i].user.len()
}

var _ core.Engine = (*HM)(nil)
