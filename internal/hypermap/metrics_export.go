package hypermap

import "repro/internal/metrics"

// engineLabel is the engine label value the hypermap engine exports under.
const engineLabel = "hypermap"

// SampleMetrics implements metrics.Source.  The hypermap engine does not
// run the batched merge pipeline, so it exports the subset of the shared
// metric names it actually tracks: identity elisions, lookup counters and
// the reducer-directory aggregate.  All values are atomic loads, safe to
// sample mid-run.
func (e *HM) SampleMetrics(emit func(metrics.MetricSample)) {
	emit(metrics.MetricSample{
		Name:     "cilkm_identity_elisions_total",
		Help:     "Never-written identity views elided instead of merged.",
		Kind:     metrics.KindCounter,
		LabelKey: "engine", LabelValue: engineLabel,
		Value: float64(e.IdentityElisions()),
	})
	metrics.EmitLookups(emit, engineLabel, e.Lookups(), e.CacheHits())
	metrics.EmitLookupFastPath(emit, engineLabel, e.FastPathStats())
	metrics.EmitDirectory(emit, engineLabel, e.DirectoryStats())
}
