package hypermap

import (
	"unsafe"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// This file is the hypermap engine's devirtualized lookup fast path — the
// baseline-mechanism twin of the memory-mapped engine's lookupfast.go.  The
// typed reducer handles capture *HM at construction and call
// LookupWordFast directly on a handle-cache miss, so the comparison between
// mechanisms measures the lookup structures (SPA indexing vs chained hash)
// rather than Go interface dispatch.  The hit shape is one hash (the
// baseline's characteristic modulo by the bucket count), one bucket-head
// load and two compares; everything else is outlined into lookupWordMiss.

// LookupWordFast resolves r's local view word for context c exactly like
// LookupWord, but as a concrete method with the chain walk outlined: the
// inlinable bucket-head probe answers when r's entry heads its chain (the
// common case at steady state), and every other situation — a below-head
// entry, written-bit stamping, first touches, recycled addresses, retired
// handles, non-worker contexts — takes the outlined miss path.  c must be
// non-nil.  The epoch result follows the LookupWord contract: zero means
// "do not cache".
func (e *HM) LookupWordFast(c *sched.Context, r *core.Reducer, mutable bool) (unsafe.Pointer, uint64) {
	w := c.Worker()
	if ws, ok := w.Local().(*hmWorker); ok {
		if ent := ws.user.probeHead(r.Addr()); ent != nil && ent.owner == r && (!mutable || ent.written) {
			e.fastHits.Add(1)
			return ent.view, w.ViewEpoch()
		}
	}
	return e.lookupWordMiss(c, w, r, mutable)
}

// lookupWordMiss is the outlined slow half of LookupWordFast.  The full
// chain lookup re-probes — the head probe rejects below-head entries and
// owned entries whose written bit needs stamping on a mutable access — and
// only then does the resolution fall through to lookupSlow.  Retired
// handles return epoch zero so the caller never caches the frozen leftmost
// value, mirroring LookupWord.
func (e *HM) lookupWordMiss(c *sched.Context, w *sched.Worker, r *core.Reducer, mutable bool) (unsafe.Pointer, uint64) {
	e.fastMisses.Add(1)
	ws, _ := w.Local().(*hmWorker)
	if ws == nil {
		return r.UnboxView(r.Value()), 0
	}
	if e.countLookups {
		// Parity with LookupWord; see the memory-mapped engine's
		// lookupWordMiss for why counted handles never reach this path.
		e.lookups[w.ID()].Add(1)
	}
	epoch := w.ViewEpoch()
	if ent := ws.user.lookup(r.Addr()); ent != nil && ent.owner == r {
		if mutable {
			ent.written = true
		}
		return ent.view, epoch
	}
	e.fastCold.Add(1)
	v := e.lookupSlow(c, w, ws, r, mutable)
	if !e.dir.Valid(r) {
		return r.UnboxView(v), 0
	}
	return r.UnboxView(v), epoch
}

// FastPathStats returns a snapshot of the devirtualized typed-lookup fast
// path's outcome counters.
func (e *HM) FastPathStats() metrics.LookupFastPathStats {
	return metrics.LookupFastPathStats{
		Hits:       e.fastHits.Load(),
		Misses:     e.fastMisses.Load(),
		ColdMisses: e.fastCold.Load(),
	}
}
