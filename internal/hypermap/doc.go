// Package hypermap implements the baseline reducer mechanism used by
// Cilk++ and Intel Cilk Plus, against which the paper compares its
// memory-mapping mechanism: each execution context owns a hash table (a
// "hypermap") mapping reducers to their local views.
//
// Every reducer access performs a hash-table lookup keyed by the reducer's
// identity.  When a stolen computation first touches a reducer, an identity
// view is created lazily and inserted into the hypermap.  View transferal
// is cheap — the hypermap pointer itself is deposited — but lookups carry
// the full hash-table cost and hypermerges walk one table performing a
// lookup in the other per element, which is where the paper finds Cilk Plus
// spending most of its reduce overhead.
//
// The engine shares the sharded reducer directory with the memory-mapped
// mechanism and implements metrics.Source for the subset of runtime
// signals it tracks (identity elisions, lookup counters, directory
// statistics), so figure comparisons and scrape endpoints treat both
// mechanisms uniformly.
package hypermap
