package spa

import (
	"testing"
	"unsafe"
)

// TestProbeMatchesSlotAt pins Probe — the lookup fast path's predecomposed
// twin of SlotAt — to identical results: same slot for an occupied address,
// the zero Slot for a missing page, and an empty (never FastHit-able) slot
// for an unoccupied index on an existing page.
func TestProbeMatchesSlotAt(t *testing.T) {
	ms := NewMapSet()
	view := unsafe.Pointer(new(int64))
	owner := unsafe.Pointer(new(int64))
	addr := MakeAddr(2, 17)
	if err := ms.Insert(addr, view, owner, FlagWritten); err != nil {
		t.Fatalf("Insert: %v", err)
	}

	s := ms.Probe(2, 17)
	if s != ms.SlotAt(addr) {
		t.Fatalf("Probe(2, 17) = %+v, differs from SlotAt(%d)", s, addr)
	}
	if s.View() != view || s.Owner() != owner || !s.Written() {
		t.Fatalf("Probe returned wrong slot: view %p owner %p written %v",
			s.View(), s.Owner(), s.Written())
	}

	// EnsurePage materialised pages 0..2, so a probe of an unoccupied index
	// on an existing page is an empty slot, not a panic.
	if got := ms.Probe(1, 17); !got.IsEmpty() {
		t.Fatalf("unoccupied slot probe = %+v, want empty", got)
	}
	// Pages beyond the set: the zero Slot, matching SlotAt's contract.
	if got := ms.Probe(3, 0); got != (Slot{}) {
		t.Fatalf("missing-page probe = %+v, want zero Slot", got)
	}
	if got := ms.Probe(-1, 0); got != (Slot{}) {
		t.Fatalf("negative-page probe = %+v, want zero Slot", got)
	}
}

// TestFastHit pins the two-masked-compare hit predicate the devirtualized
// lookup paths inline: stamped owner must match, a mutable access
// additionally needs the written bit, and flag bits never corrupt the
// owner comparison.
func TestFastHit(t *testing.T) {
	view := unsafe.Pointer(new(int64))
	owner := unsafe.Pointer(new(int64))
	other := unsafe.Pointer(new(int64))

	slot := func(flags uintptr) Slot {
		m := New()
		if err := m.Insert(5, view, owner, flags); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		return m.SlotAt(5)
	}

	cases := []struct {
		name          string
		s             Slot
		owner         unsafe.Pointer
		mutable, want bool
	}{
		{"empty slot never hits", Slot{}, owner, false, false},
		{"owned unwritten read hits", slot(0), owner, false, true},
		{"owned unwritten mutable misses (bit must be stamped)", slot(0), owner, true, false},
		{"owned written mutable hits", slot(FlagWritten), owner, true, true},
		{"owned written read hits", slot(FlagWritten), owner, false, true},
		{"arena flag does not disturb the owner compare", slot(FlagWritten | FlagArena), owner, true, true},
		{"foreign owner misses", slot(FlagWritten), other, false, false},
	}
	for _, tc := range cases {
		if got := tc.s.FastHit(tc.owner, tc.mutable); got != tc.want {
			t.Errorf("%s: FastHit = %v, want %v", tc.name, got, tc.want)
		}
	}
}
