// Package spa implements the sparse-accumulator (SPA) map that Cilk-M uses
// to organise a worker's local views (Section 6 of the paper).
//
// A SPA map occupies one 4 KB page of the worker's TLMM region and holds
//
//   - a view array of 248 elements, each a pair of 8-byte machine words
//     (local view pointer, owner stamp),
//   - a log array of 120 one-byte indices naming the valid elements,
//   - a 4-byte count of valid elements, and
//   - a 4-byte count of log entries.
//
// Empty elements are represented by a nil pair.  Lookups are constant time
// (index the view array), and sequencing through the valid views is linear
// in the number of views by walking the log.  If more views are inserted
// than the log can describe, the log is abandoned and sequencing falls back
// to scanning the whole view array; the insertion cost amortises the scan.
//
// # Word packing
//
// A slot really is two machine words — 16 bytes, the paper's layout — not
// two Go interfaces (32 bytes).  The first word is the view's single-word
// representation (the data word of the interface value the reducer engine
// hands out; see core.Reducer.BoxView for the safety argument).  The second
// word is the owner stamp: a pointer to the owning reducer, whose low three
// bits — always zero in a real pointer — carry per-slot flags:
//
//   - FlagWritten marks that the view has been handed out for mutation
//     since it was inserted.  A slot whose flag is clear provably still
//     holds the monoid identity, so hypermerges elide it (reduce with the
//     identity is a no-op).
//   - FlagArena marks that the view's memory was carved from a runtime
//     view arena (or recycled through one) and may be returned to an arena
//     free list when the view dies.
//
// The tagged stamp is produced with unsafe.Add, so it remains an interior
// pointer into the owning reducer: the garbage collector keeps the reducer
// alive through it, and `go vet -unsafeptr` accepts every conversion.
package spa
