package spa

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"unsafe"

	"repro/internal/tlmm"
)

// fakeOwner stands in for the reducer handle whose pointer the engines
// stamp into a slot's second word.
type fakeOwner struct{ name string }

func (o *fakeOwner) ptr() unsafe.Pointer { return unsafe.Pointer(o) }

// newView allocates a word-sized view and returns its word.
func newView() unsafe.Pointer { return unsafe.Pointer(new(int64)) }

func TestSlotIsTwoWords(t *testing.T) {
	if got := unsafe.Sizeof(Slot{}); got != SlotBytes {
		t.Fatalf("Slot is %d bytes, want %d (the paper's 16-byte pair)", got, SlotBytes)
	}
}

func TestSlotFlagPacking(t *testing.T) {
	own := &fakeOwner{"add"}
	v := newView()
	for _, flags := range []uintptr{0, FlagWritten, FlagArena, FlagWritten | FlagArena} {
		s := MakeSlot(v, own.ptr(), flags)
		if s.View() != v {
			t.Fatalf("flags %#x: View mangled", flags)
		}
		if s.Owner() != own.ptr() {
			t.Fatalf("flags %#x: Owner mangled", flags)
		}
		if s.Flags() != flags {
			t.Fatalf("Flags = %#x, want %#x", s.Flags(), flags)
		}
		if s.Written() != (flags&FlagWritten != 0) || s.Arena() != (flags&FlagArena != 0) {
			t.Fatalf("flags %#x: Written/Arena accessors wrong", flags)
		}
		if s.IsEmpty() {
			t.Fatalf("flags %#x: packed slot reads empty", flags)
		}
	}
}

func TestNewMapIsEmpty(t *testing.T) {
	m := New()
	if !m.IsEmpty() || m.Len() != 0 || m.LogLen() != 0 || !m.LogValid() {
		t.Fatalf("fresh map not in empty state: %+v", m)
	}
	for i := 0; i < SlotsPerMap; i++ {
		s, err := m.Lookup(i)
		if err != nil {
			t.Fatalf("Lookup(%d): %v", i, err)
		}
		if !s.IsEmpty() {
			t.Fatalf("slot %d not empty in fresh map", i)
		}
	}
}

func TestInsertLookupRemove(t *testing.T) {
	m := New()
	own := &fakeOwner{"add"}
	v := newView()
	if err := m.Insert(7, v, own.ptr(), 0); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if m.Len() != 1 || m.LogLen() != 1 {
		t.Fatalf("Len/LogLen = %d/%d, want 1/1", m.Len(), m.LogLen())
	}
	if got := m.Get(7); got != v {
		t.Fatalf("Get(7) = %v, want inserted view", got)
	}
	if got := m.Get(8); got != nil {
		t.Fatalf("Get(8) = %v, want nil", got)
	}
	if err := m.Insert(7, newView(), own.ptr(), 0); !errors.Is(err, ErrSlotOccupied) {
		t.Fatalf("double insert: got %v, want ErrSlotOccupied", err)
	}
	s, err := m.Remove(7)
	if err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if s.View() != v || s.Owner() != own.ptr() {
		t.Fatal("Remove returned wrong slot contents")
	}
	if _, err := m.Remove(7); !errors.Is(err, ErrSlotEmpty) {
		t.Fatalf("Remove of empty slot: got %v, want ErrSlotEmpty", err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len after remove = %d, want 0", m.Len())
	}
}

func TestMarkWritten(t *testing.T) {
	m := New()
	own := &fakeOwner{"add"}
	v := newView()
	if err := m.Insert(11, v, own.ptr(), FlagArena); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if m.SlotAt(11).Written() {
		t.Fatal("fresh slot already marked written")
	}
	m.MarkWritten(11)
	s := m.SlotAt(11)
	if !s.Written() {
		t.Fatal("MarkWritten did not set the flag")
	}
	if !s.Arena() {
		t.Fatal("MarkWritten clobbered the arena flag")
	}
	if s.View() != v || s.Owner() != own.ptr() {
		t.Fatal("MarkWritten disturbed the slot words")
	}
	// Idempotent, and harmless on empty or out-of-range slots.
	m.MarkWritten(11)
	m.MarkWritten(12)
	m.MarkWritten(-1)
	m.MarkWritten(SlotsPerMap)
	if m.Len() != 1 || !m.SlotAt(11).Written() {
		t.Fatal("MarkWritten no-op cases disturbed the map")
	}
}

func TestInsertValidation(t *testing.T) {
	m := New()
	own := &fakeOwner{"add"}
	if err := m.Insert(-1, newView(), own.ptr(), 0); !errors.Is(err, ErrSlotOutOfRange) {
		t.Fatalf("Insert(-1): got %v, want ErrSlotOutOfRange", err)
	}
	if err := m.Insert(SlotsPerMap, newView(), own.ptr(), 0); !errors.Is(err, ErrSlotOutOfRange) {
		t.Fatalf("Insert(248): got %v, want ErrSlotOutOfRange", err)
	}
	if err := m.Insert(0, nil, own.ptr(), 0); err == nil {
		t.Fatal("Insert of nil view should fail")
	}
	if err := m.Insert(0, newView(), nil, 0); err == nil {
		t.Fatal("Insert of nil owner should fail")
	}
	if _, err := m.Lookup(SlotsPerMap); !errors.Is(err, ErrSlotOutOfRange) {
		t.Fatalf("Lookup out of range: got %v, want ErrSlotOutOfRange", err)
	}
	if err := m.Update(5, newView(), 0); !errors.Is(err, ErrSlotEmpty) {
		t.Fatalf("Update of empty slot: got %v, want ErrSlotEmpty", err)
	}
	if err := m.Update(-3, newView(), 0); !errors.Is(err, ErrSlotOutOfRange) {
		t.Fatalf("Update out of range: got %v, want ErrSlotOutOfRange", err)
	}
	if _, err := m.Remove(SlotsPerMap + 1); !errors.Is(err, ErrSlotOutOfRange) {
		t.Fatalf("Remove out of range: got %v, want ErrSlotOutOfRange", err)
	}
}

func TestUpdateReplacesViewAndFlags(t *testing.T) {
	m := New()
	own := &fakeOwner{"add"}
	v1, v2 := newView(), newView()
	if err := m.Insert(3, v1, own.ptr(), FlagArena); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := m.Update(3, v2, FlagWritten); err != nil {
		t.Fatalf("Update: %v", err)
	}
	s := m.SlotAt(3)
	if s.View() != v2 {
		t.Fatal("Update did not replace view")
	}
	if s.Owner() != own.ptr() {
		t.Fatal("Update disturbed the owner stamp")
	}
	if s.Flags() != FlagWritten {
		t.Fatalf("Update flags = %#x, want FlagWritten", s.Flags())
	}
	if err := m.Update(3, nil, 0); err == nil {
		t.Fatal("Update with nil view should fail")
	}
	if m.Len() != 1 {
		t.Fatalf("Len after update = %d, want 1", m.Len())
	}
}

func TestRangeUsesLogWhenValid(t *testing.T) {
	m := New()
	own := &fakeOwner{"add"}
	order := []int{17, 3, 200, 45}
	for _, i := range order {
		if err := m.Insert(i, newView(), own.ptr(), 0); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	var visited []int
	m.Range(func(i int, s Slot) bool {
		visited = append(visited, i)
		return true
	})
	if len(visited) != len(order) {
		t.Fatalf("Range visited %d slots, want %d", len(visited), len(order))
	}
	// With a valid log, visitation order is insertion order.
	for k := range order {
		if visited[k] != order[k] {
			t.Fatalf("Range order %v, want insertion order %v", visited, order)
		}
	}
	// Early termination.
	count := 0
	m.Range(func(i int, s Slot) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("Range early stop visited %d, want 2", count)
	}
}

func TestRangeSkipsRemovedEntriesLoggedEarlier(t *testing.T) {
	m := New()
	own := &fakeOwner{"add"}
	for _, i := range []int{1, 2, 3} {
		if err := m.Insert(i, newView(), own.ptr(), 0); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if _, err := m.Remove(2); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	var visited []int
	m.Range(func(i int, s Slot) bool {
		visited = append(visited, i)
		return true
	})
	if len(visited) != 2 || visited[0] != 1 || visited[1] != 3 {
		t.Fatalf("Range after removal visited %v, want [1 3]", visited)
	}
}

func TestRangeAllowsRemovalDuringIteration(t *testing.T) {
	// The engines' identity-view elision removes unwritten slots while
	// ranging over the map; exercise that on both the logged and the
	// overflowed (full-scan) sequencing paths.
	for _, n := range []int{40, LogCapacity + 30} {
		m := New()
		own := &fakeOwner{"add"}
		for i := 0; i < n; i++ {
			flags := uintptr(0)
			if i%2 == 0 {
				flags = FlagWritten
			}
			if err := m.Insert(i, newView(), own.ptr(), flags); err != nil {
				t.Fatalf("Insert(%d): %v", i, err)
			}
		}
		removed := 0
		m.Range(func(i int, s Slot) bool {
			if !s.Written() {
				if _, err := m.Remove(i); err != nil {
					t.Fatalf("Remove(%d) during Range: %v", i, err)
				}
				removed++
			}
			return true
		})
		if removed != n/2 {
			t.Fatalf("n=%d: removed %d unwritten slots, want %d", n, removed, n/2)
		}
		if m.Len() != n-removed {
			t.Fatalf("n=%d: Len = %d after elision, want %d", n, m.Len(), n-removed)
		}
		m.Range(func(i int, s Slot) bool {
			if !s.Written() {
				t.Fatalf("n=%d: unwritten slot %d survived elision", n, i)
			}
			return true
		})
	}
}

func TestLogOverflowFallsBackToScan(t *testing.T) {
	m := New()
	own := &fakeOwner{"add"}
	// Insert more views than the log can describe.
	n := LogCapacity + 30
	for i := 0; i < n; i++ {
		if err := m.Insert(i, newView(), own.ptr(), 0); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	if m.LogValid() {
		t.Fatal("log should be invalid after overflow")
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	seen := make(map[int]bool)
	m.Range(func(i int, s Slot) bool {
		if seen[i] {
			t.Fatalf("slot %d visited twice", i)
		}
		seen[i] = true
		return true
	})
	if len(seen) != n {
		t.Fatalf("Range visited %d slots after overflow, want %d", len(seen), n)
	}
}

func TestResetRestoresEmptyState(t *testing.T) {
	m := New()
	own := &fakeOwner{"add"}
	for i := 0; i < LogCapacity+10; i++ {
		_ = m.Insert(i, newView(), own.ptr(), 0)
	}
	m.Reset()
	if !m.IsEmpty() || m.LogLen() != 0 || !m.LogValid() {
		t.Fatal("Reset did not restore the empty state")
	}
	if got := len(m.Indices()); got != 0 {
		t.Fatalf("Indices after Reset = %d entries, want 0", got)
	}
}

func TestTransferToMovesAndEmptiesSource(t *testing.T) {
	src := New()
	dst := New()
	own := &fakeOwner{"add"}
	idx := []int{5, 9, 100, 247}
	for _, i := range idx {
		if err := src.Insert(i, newView(), own.ptr(), FlagWritten|FlagArena); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	moved, err := src.TransferTo(dst)
	if err != nil {
		t.Fatalf("TransferTo: %v", err)
	}
	if moved != len(idx) {
		t.Fatalf("moved %d views, want %d", moved, len(idx))
	}
	if !src.IsEmpty() || !src.LogValid() || src.LogLen() != 0 {
		t.Fatal("source map not empty after transfer")
	}
	if dst.Len() != len(idx) {
		t.Fatalf("destination has %d views, want %d", dst.Len(), len(idx))
	}
	for _, i := range idx {
		s := dst.SlotAt(i)
		if s.IsEmpty() {
			t.Fatalf("destination missing view at slot %d", i)
		}
		if s.Flags() != FlagWritten|FlagArena {
			t.Fatalf("transfer dropped flags at slot %d: %#x", i, s.Flags())
		}
	}
}

func TestTransferToOccupiedDestinationFails(t *testing.T) {
	src := New()
	dst := New()
	own := &fakeOwner{"add"}
	_ = src.Insert(4, newView(), own.ptr(), 0)
	_ = dst.Insert(4, newView(), own.ptr(), 0)
	if _, err := src.TransferTo(dst); !errors.Is(err, ErrSlotOccupied) {
		t.Fatalf("TransferTo into occupied slot: got %v, want ErrSlotOccupied", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := New()
	own := &fakeOwner{"add"}
	// Handles are shifted past the flag bits, like aligned pointers.
	words := map[uint64]unsafe.Pointer{1 << 3: own.ptr()}
	handleOf := map[unsafe.Pointer]uint64{own.ptr(): 1 << 3}
	next := uint64(2)
	flagsAt := map[int]uintptr{0: 0, 10: FlagWritten, 200: FlagWritten | FlagArena}
	for _, i := range []int{0, 10, 200} {
		v := newView()
		words[next<<3] = v
		handleOf[v] = next << 3
		next++
		if err := m.Insert(i, v, own.ptr(), flagsAt[i]); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	buf := make([]byte, tlmm.PageSize)
	if err := m.Encode(buf, func(x unsafe.Pointer) uint64 { return handleOf[x] }); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var out Map
	if err := out.Decode(buf, func(h uint64) unsafe.Pointer { return words[h] }); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.Len() != m.Len() {
		t.Fatalf("decoded Len = %d, want %d", out.Len(), m.Len())
	}
	for _, i := range []int{0, 10, 200} {
		got, want := out.SlotAt(i), m.SlotAt(i)
		if got != want {
			t.Fatalf("decoded slot %d = %+v, want %+v (flags must round-trip)", i, got, want)
		}
	}
	// Handles with flag bits set cannot be distinguished from flags.
	if err := m.Encode(buf, func(unsafe.Pointer) uint64 { return 3 }); err == nil {
		t.Fatal("Encode with misaligned handles should fail")
	}
	if err := m.Encode(make([]byte, 10), func(unsafe.Pointer) uint64 { return 0 }); err == nil {
		t.Fatal("Encode into short buffer should fail")
	}
	if err := out.Decode(make([]byte, 10), func(uint64) unsafe.Pointer { return nil }); err == nil {
		t.Fatal("Decode from short buffer should fail")
	}
}

func TestPropertyInsertedViewsAreFound(t *testing.T) {
	own := &fakeOwner{"m"}
	f := func(raw []uint8) bool {
		m := New()
		want := make(map[int]unsafe.Pointer)
		for _, r := range raw {
			i := int(r) % SlotsPerMap
			if _, ok := want[i]; ok {
				continue
			}
			v := newView()
			if err := m.Insert(i, v, own.ptr(), 0); err != nil {
				return false
			}
			want[i] = v
		}
		if m.Len() != len(want) {
			return false
		}
		for i, v := range want {
			if m.Get(i) != v {
				return false
			}
		}
		found := 0
		m.Range(func(i int, s Slot) bool {
			if want[i] != s.View() {
				return false
			}
			found++
			return true
		})
		return found == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTransferPreservesViews(t *testing.T) {
	own := &fakeOwner{"m"}
	f := func(raw []uint8) bool {
		src, dst := New(), New()
		want := make(map[int]unsafe.Pointer)
		for _, r := range raw {
			i := int(r) % SlotsPerMap
			if _, ok := want[i]; ok {
				continue
			}
			v := newView()
			_ = src.Insert(i, v, own.ptr(), 0)
			want[i] = v
		}
		moved, err := src.TransferTo(dst)
		if err != nil || moved != len(want) {
			return false
		}
		if !src.IsEmpty() {
			return false
		}
		for i, v := range want {
			if dst.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMapSetAddressing(t *testing.T) {
	if MakeAddr(2, 17).Page() != 2 || MakeAddr(2, 17).Slot() != 17 {
		t.Fatal("MakeAddr/Page/Slot mismatch")
	}
	ms := NewMapSet()
	own := &fakeOwner{"add"}
	addr := MakeAddr(3, 100)
	v := newView()
	if got := ms.Get(addr); got != nil {
		t.Fatalf("Get on empty set = %v, want nil", got)
	}
	if err := ms.Insert(addr, v, own.ptr(), 0); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if ms.Pages() != 4 {
		t.Fatalf("Pages = %d, want 4 (grown to cover page 3)", ms.Pages())
	}
	if got := ms.Get(addr); got != v {
		t.Fatal("Get did not return inserted view")
	}
	if ms.Len() != 1 || ms.IsEmpty() {
		t.Fatalf("Len = %d, IsEmpty = %v", ms.Len(), ms.IsEmpty())
	}
	if err := ms.Insert(Addr(-1), v, own.ptr(), 0); err == nil {
		t.Fatal("Insert at negative addr should fail")
	}
	if err := ms.Update(addr, newView(), FlagWritten); err != nil {
		t.Fatalf("Update: %v", err)
	}
	ms.MarkWritten(addr)
	ms.MarkWritten(MakeAddr(9, 0)) // no-op beyond last page
	if !ms.SlotAt(addr).Written() {
		t.Fatal("MarkWritten at MapSet level did not stick")
	}
	if err := ms.Update(MakeAddr(9, 0), newView(), 0); err == nil {
		t.Fatal("Update beyond last page should fail")
	}
	if _, err := ms.Remove(MakeAddr(9, 0)); err == nil {
		t.Fatal("Remove beyond last page should fail")
	}
	s, err := ms.Remove(addr)
	if err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if s.IsEmpty() {
		t.Fatal("Remove returned empty slot")
	}
	if ms.Page(0) == nil || ms.Page(7) != nil || ms.Page(-1) != nil {
		t.Fatal("Page bounds handling incorrect")
	}
}

func TestMapSetInsertSlotPreservesFlags(t *testing.T) {
	ms := NewMapSet()
	own := &fakeOwner{"add"}
	v := newView()
	addr := MakeAddr(1, 9)
	if err := ms.InsertSlot(addr, MakeSlot(v, own.ptr(), FlagWritten|FlagArena)); err != nil {
		t.Fatalf("InsertSlot: %v", err)
	}
	s := ms.SlotAt(addr)
	if s.View() != v || s.Owner() != own.ptr() || s.Flags() != FlagWritten|FlagArena {
		t.Fatalf("InsertSlot mangled the slot: %+v", s)
	}
	if err := ms.InsertSlot(addr, MakeSlot(v, own.ptr(), 0)); !errors.Is(err, ErrSlotOccupied) {
		t.Fatalf("InsertSlot into occupied slot: got %v, want ErrSlotOccupied", err)
	}
	if err := ms.InsertSlot(MakeAddr(0, 0), Slot{}); err == nil {
		t.Fatal("InsertSlot of empty slot should fail")
	}
}

func TestMapSetRangeAndTransfer(t *testing.T) {
	own := &fakeOwner{"add"}
	src := NewMapSet()
	dst := NewMapSet()
	rng := rand.New(rand.NewSource(42))
	want := make(map[Addr]unsafe.Pointer)
	for len(want) < 400 {
		addr := MakeAddr(rng.Intn(3), rng.Intn(SlotsPerMap))
		if _, ok := want[addr]; ok {
			continue
		}
		v := newView()
		if err := src.Insert(addr, v, own.ptr(), 0); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		want[addr] = v
	}
	count := 0
	src.Range(func(addr Addr, s Slot) bool {
		if want[addr] != s.View() {
			t.Fatalf("Range returned wrong view at %d", addr)
		}
		count++
		return true
	})
	if count != len(want) {
		t.Fatalf("Range visited %d, want %d", count, len(want))
	}
	// Early stop across pages.
	count = 0
	src.Range(func(addr Addr, s Slot) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("Range early stop visited %d, want 5", count)
	}
	moved, err := src.TransferTo(dst)
	if err != nil {
		t.Fatalf("TransferTo: %v", err)
	}
	if moved != len(want) || !src.IsEmpty() || dst.Len() != len(want) {
		t.Fatalf("transfer moved %d, src empty %v, dst len %d", moved, src.IsEmpty(), dst.Len())
	}
	for addr, v := range want {
		if dst.Get(addr) != v {
			t.Fatalf("destination missing view at %d", addr)
		}
	}
}

func TestMapSetResetKeepsPages(t *testing.T) {
	ms := NewMapSet()
	own := &fakeOwner{"add"}
	_ = ms.Insert(MakeAddr(1, 5), newView(), own.ptr(), 0)
	if ms.Pages() != 2 {
		t.Fatalf("Pages = %d, want 2", ms.Pages())
	}
	ms.Reset()
	if ms.Pages() != 2 || !ms.IsEmpty() {
		t.Fatal("Reset should keep pages but empty them")
	}
}

func TestMapSetOccupiedPageSpan(t *testing.T) {
	ms := NewMapSet()
	own := &fakeOwner{"m"}
	if got := ms.OccupiedPageSpan(); got != 0 {
		t.Fatalf("empty set span = %d, want 0", got)
	}
	mustInsert := func(addr Addr) {
		if err := ms.Insert(addr, newView(), own.ptr(), 0); err != nil {
			t.Fatalf("Insert(%d): %v", addr, err)
		}
	}
	mustInsert(MakeAddr(0, 3))
	if got := ms.OccupiedPageSpan(); got != 1 {
		t.Fatalf("span = %d, want 1", got)
	}
	mustInsert(MakeAddr(2, 7))
	if got := ms.OccupiedPageSpan(); got != 3 {
		t.Fatalf("span = %d, want 3 (page 1 empty but in-span)", got)
	}
	if _, err := ms.Remove(MakeAddr(2, 7)); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if got := ms.OccupiedPageSpan(); got != 1 {
		t.Fatalf("span after remove = %d, want 1", got)
	}
}

func TestMapSetAttachAndDrainPages(t *testing.T) {
	src := NewMapSet()
	own := &fakeOwner{"m"}
	views := make([]unsafe.Pointer, 3)
	for i := 0; i < 3; i++ {
		views[i] = newView()
		if err := src.Insert(MakeAddr(i, i), views[i], own.ptr(), 0); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	dst := NewMapSet()
	pages := []*Map{New(), New(), New()}
	dst.AttachPages(pages)
	if dst.Pages() != 3 {
		t.Fatalf("Pages = %d, want 3", dst.Pages())
	}
	moved, err := src.TransferTo(dst)
	if err != nil || moved != 3 {
		t.Fatalf("TransferTo moved %d err %v", moved, err)
	}
	// The attached pages must be the ones that received the views.
	for i, p := range pages {
		if p.Get(i) != views[i] {
			t.Fatalf("attached page %d missing its view", i)
		}
	}
	drained := dst.DrainPages()
	if len(drained) != 3 || dst.Pages() != 0 || !dst.IsEmpty() {
		t.Fatalf("DrainPages left set in bad state: %d pages returned, %d held", len(drained), dst.Pages())
	}
	for i, p := range drained {
		if !p.IsEmpty() || !p.LogValid() {
			t.Fatalf("drained page %d not pristine", i)
		}
	}
}
