package spa

import (
	"fmt"
	"unsafe"
)

// Addr is a global view-slot address: it identifies one 16-byte slot across
// a sequence of SPA map pages.  It plays the role of the paper's tlmm_addr,
// which is the same for every worker throughout the life span of a reducer.
type Addr int

// Page returns the SPA page index of the address.
func (a Addr) Page() int { return int(a) / SlotsPerMap }

// Slot returns the in-page slot index of the address.
func (a Addr) Slot() int { return int(a) % SlotsPerMap }

// MakeAddr builds an Addr from a page index and an in-page slot index.
func MakeAddr(page, slot int) Addr { return Addr(page*SlotsPerMap + slot) }

// MapSet is an ordered collection of SPA map pages addressed by Addr.  A
// worker's private TLMM reducer area is one MapSet; the public SPA maps
// produced by view transferal are another.  Pool-backed callers move pages
// in and out in bulk via AttachPages and DrainPages.
type MapSet struct {
	pages []*Map
}

// NewMapSet returns an empty map set.
func NewMapSet() *MapSet { return &MapSet{} }

// Pages returns the number of SPA pages in the set.
func (ms *MapSet) Pages() int { return len(ms.pages) }

// Page returns the i-th SPA page, or nil if it does not exist.
func (ms *MapSet) Page(i int) *Map {
	if i < 0 || i >= len(ms.pages) {
		return nil
	}
	return ms.pages[i]
}

// Len returns the total number of valid views across all pages.
func (ms *MapSet) Len() int {
	n := 0
	for _, p := range ms.pages {
		n += p.Len()
	}
	return n
}

// IsEmpty reports whether no page holds any view.
func (ms *MapSet) IsEmpty() bool { return ms.Len() == 0 }

// EnsurePage grows the set until page index i exists and returns it.
func (ms *MapSet) EnsurePage(i int) *Map {
	for len(ms.pages) <= i {
		ms.pages = append(ms.pages, New())
	}
	return ms.pages[i]
}

// Get returns the view word at addr, or nil if the page does not exist or
// the slot is empty.  This is the lookup fast path at MapSet granularity.
func (ms *MapSet) Get(addr Addr) unsafe.Pointer {
	pi := addr.Page()
	if pi < 0 || pi >= len(ms.pages) {
		return nil
	}
	return ms.pages[pi].Get(addr.Slot())
}

// SlotAt returns the full slot at addr, or the zero Slot if the page does
// not exist.  Reducer engines use it where Get's view word alone is not
// enough: the slot's second word carries the owner stamp that guards
// against a recycled address serving a stale view, plus the per-slot flags.
func (ms *MapSet) SlotAt(addr Addr) Slot {
	pi := addr.Page()
	if pi < 0 || pi >= len(ms.pages) {
		return Slot{}
	}
	return ms.pages[pi].SlotAt(addr.Slot())
}

// Probe returns the slot at page index pi, slot index si, or the zero Slot
// when the page does not exist.  It is SlotAt with the address already
// decomposed: reducers precompute their (page, slot) pair at registration
// (SlotsPerMap is not a power of two, so Addr.Page and Addr.Slot each cost
// an integer division), leaving the lookup fast path one bounds check and
// two indexed loads.  si must be in [0, SlotsPerMap); Probe is small enough
// for the compiler to inline into the engines' lookup fast paths.
func (ms *MapSet) Probe(pi, si int) Slot {
	if uint(pi) >= uint(len(ms.pages)) {
		return Slot{}
	}
	return ms.pages[pi].views[si]
}

// Insert stores a (view, owner) pair with flags at addr, growing the set as
// needed.
func (ms *MapSet) Insert(addr Addr, view, owner unsafe.Pointer, flags uintptr) error {
	if addr < 0 {
		return fmt.Errorf("%w: %d", ErrSlotOutOfRange, addr)
	}
	return ms.EnsurePage(addr.Page()).Insert(addr.Slot(), view, owner, flags)
}

// InsertSlot installs a pre-packed slot at addr, growing the set as needed.
// Merges use it to move deposited slots wholesale, flags included.
func (ms *MapSet) InsertSlot(addr Addr, s Slot) error {
	if addr < 0 || s.IsEmpty() {
		return fmt.Errorf("%w: %d", ErrSlotOutOfRange, addr)
	}
	return ms.EnsurePage(addr.Page()).insertSlot(addr.Slot(), s)
}

// Update replaces the view word and flags at an occupied addr.
func (ms *MapSet) Update(addr Addr, view unsafe.Pointer, flags uintptr) error {
	pi := addr.Page()
	if pi < 0 || pi >= len(ms.pages) {
		return fmt.Errorf("%w: %d", ErrSlotEmpty, addr)
	}
	return ms.pages[pi].Update(addr.Slot(), view, flags)
}

// MarkWritten sets the written flag on the slot at addr (no-op when the
// page or slot does not exist).
func (ms *MapSet) MarkWritten(addr Addr) {
	pi := addr.Page()
	if pi < 0 || pi >= len(ms.pages) {
		return
	}
	ms.pages[pi].MarkWritten(addr.Slot())
}

// Remove clears the slot at addr and returns its previous contents.
func (ms *MapSet) Remove(addr Addr) (Slot, error) {
	pi := addr.Page()
	if pi < 0 || pi >= len(ms.pages) {
		return Slot{}, fmt.Errorf("%w: %d", ErrSlotEmpty, addr)
	}
	return ms.pages[pi].Remove(addr.Slot())
}

// Range calls fn for every valid (addr, slot) pair across all pages.
// Iteration stops early if fn returns false.  fn may Remove the slot it is
// visiting (the engines' identity-view elision does exactly that).
func (ms *MapSet) Range(fn func(addr Addr, s Slot) bool) {
	for pi, p := range ms.pages {
		stop := false
		p.Range(func(i int, s Slot) bool {
			if !fn(MakeAddr(pi, i), s) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// TransferTo moves every view from ms into dst, page by page, leaving ms
// empty.  It returns the number of views moved.
func (ms *MapSet) TransferTo(dst *MapSet) (int, error) {
	moved := 0
	for pi, p := range ms.pages {
		if p.IsEmpty() {
			continue
		}
		n, err := p.TransferTo(dst.EnsurePage(pi))
		moved += n
		if err != nil {
			return moved, err
		}
	}
	return moved, nil
}

// OccupiedPageSpan returns the number of leading pages the set would need
// to receive every view currently held here: one past the highest non-empty
// page index, or 0 when the set is empty.  The batched view-transferal path
// uses it to size one bulk pagepool fetch for the whole deposit.
func (ms *MapSet) OccupiedPageSpan() int {
	for pi := len(ms.pages) - 1; pi >= 0; pi-- {
		if !ms.pages[pi].IsEmpty() {
			return pi + 1
		}
	}
	return 0
}

// AttachPages appends already-allocated empty pages to the set, so that a
// caller who fetched pages from a pool in bulk can install them without
// going through EnsurePage's one-at-a-time allocator.
func (ms *MapSet) AttachPages(pages []*Map) {
	ms.pages = append(ms.pages, pages...)
}

// DrainPages resets every page and returns them all, leaving the set empty
// and pageless.  The pages are guaranteed empty, so the caller can hand the
// whole slice back to a pagepool in one bulk Put.
func (ms *MapSet) DrainPages() []*Map {
	pages := ms.pages
	for _, p := range pages {
		p.Reset()
	}
	ms.pages = nil
	return pages
}

// Reset empties every page in place, keeping the pages for reuse.
func (ms *MapSet) Reset() {
	for _, p := range ms.pages {
		p.Reset()
	}
}
