package spa

import (
	"errors"
	"fmt"
	"unsafe"

	"repro/internal/tlmm"
)

// Layout constants from the paper: a 2:1 ratio between the view array and
// the log array within one 4 KB page.
const (
	// SlotsPerMap is the number of view slots in one SPA map page.
	SlotsPerMap = 248
	// LogCapacity is the number of one-byte indices in the log array.
	LogCapacity = 120
	// SlotBytes is the in-page size of one view slot (two 8-byte words).
	SlotBytes = 16
)

// Per-slot flags, carried in the low bits of the owner stamp.
const (
	// FlagWritten marks a view that has been handed out for mutation; a
	// clear flag proves the view still equals the monoid identity.
	FlagWritten uintptr = 1 << 0
	// FlagArena marks a view whose memory may be recycled through a view
	// arena when the view dies.
	FlagArena uintptr = 1 << 1

	// FlagMask covers every flag bit.  Owner stamps are at least 8-byte
	// aligned, so the flag bits never collide with address bits.
	FlagMask uintptr = FlagWritten | FlagArena
)

// Compile-time checks that the modelled layout fits one page
// (248*16 + 120 + 4 + 4 = 4096) and that a slot really is two words.
var (
	_ = [1]struct{}{}[(SlotsPerMap*SlotBytes+LogCapacity+4+4)-tlmm.PageSize]
	_ = [1]struct{}{}[unsafe.Sizeof(Slot{})-SlotBytes]
)

// Errors returned by SPA maps.
var (
	ErrSlotOutOfRange = errors.New("spa: slot index out of range")
	ErrSlotOccupied   = errors.New("spa: slot already holds a view")
	ErrSlotEmpty      = errors.New("spa: slot holds no view")
)

// Slot is one element of the view array: two packed machine words.  The
// first is the view word (never nil in an occupied slot); the second is the
// owner stamp — a pointer to the owning reducer tagged with the slot flags
// in its low bits.  In the paper the second word is the monoid pointer; the
// engines here store the owning reducer handle (which carries the monoid)
// so that a recycled slot address can be detected by comparing the stamp
// against the reducer being looked up.  Both words are nil when the slot is
// empty; the runtime maintains the invariant that they are nil or non-nil
// together.
type Slot struct {
	view  unsafe.Pointer
	owner unsafe.Pointer
}

// MakeSlot packs a slot from a view word, an untagged owner stamp and flag
// bits.  It is exported for tests and engine code that moves slots between
// maps wholesale.
func MakeSlot(view, owner unsafe.Pointer, flags uintptr) Slot {
	return Slot{view: view, owner: tagOwner(owner, flags&FlagMask)}
}

// tagOwner folds flag bits into an owner stamp.  unsafe.Add keeps the
// result an interior pointer into the owner allocation, so the GC still
// pins the owner through the tagged word.
func tagOwner(owner unsafe.Pointer, flags uintptr) unsafe.Pointer {
	return unsafe.Add(owner, flags)
}

// untagOwner strips the flag bits from a tagged stamp.
func untagOwner(tagged unsafe.Pointer) unsafe.Pointer {
	return unsafe.Add(tagged, -int(uintptr(tagged)&FlagMask))
}

// IsEmpty reports whether the slot holds no view.
func (s Slot) IsEmpty() bool { return s.view == nil }

// View returns the slot's view word (nil when the slot is empty).
func (s Slot) View() unsafe.Pointer { return s.view }

// Owner returns the slot's untagged owner stamp (nil when empty).
func (s Slot) Owner() unsafe.Pointer {
	if s.owner == nil {
		return nil
	}
	return untagOwner(s.owner)
}

// Flags returns the slot's flag bits.
func (s Slot) Flags() uintptr { return uintptr(s.owner) & FlagMask }

// Written reports whether the slot's view has been handed out for mutation.
func (s Slot) Written() bool { return uintptr(s.owner)&FlagWritten != 0 }

// FastHit reports whether the slot serves a lookup by owner with no
// slow-path work at all: the slot is occupied and stamped by owner, and a
// mutable access additionally finds the written bit already set (a clear
// bit must take the slow path once to stamp it).  The whole test is two
// masked compares on the packed stamp word — an empty slot has a nil stamp
// and can never equal a real owner pointer — so it inlines into the
// engines' devirtualized lookup fast paths.
func (s Slot) FastHit(owner unsafe.Pointer, mutable bool) bool {
	tag := uintptr(s.owner)
	return tag&^FlagMask == uintptr(owner) && (!mutable || tag&FlagWritten != 0)
}

// Arena reports whether the slot's view memory is arena-recyclable.
func (s Slot) Arena() bool { return uintptr(s.owner)&FlagArena != 0 }

// Map is one SPA map page.  Its address is its identity: lookup fast
// paths alias slots by page pointer, so a by-value copy would fork the
// view array and double-free its arena views.
//
//cilkvet:nocopy
type Map struct {
	views [SlotsPerMap]Slot
	log   [LogCapacity]uint8
	// nviews is the number of valid elements in the view array.
	nviews int32
	// nlogs is the number of entries in the log array.  Once the log
	// overflows, nlogs stops tracking insertions and logValid becomes
	// false, signalling that sequencing must scan the whole view array.
	nlogs    int32
	logValid bool
}

// New returns an empty SPA map.
func New() *Map {
	return &Map{logValid: true}
}

// Reset returns the map to the empty state: all slots nil, counts zero, log
// tracking re-enabled.  The paper's invariant is that only empty SPA maps
// are recycled, so Reset is what a pool must call before reuse.
func (m *Map) Reset() {
	for i := range m.views {
		m.views[i] = Slot{}
	}
	m.nviews = 0
	m.nlogs = 0
	m.logValid = true
}

// Len reports the number of valid views in the map.
func (m *Map) Len() int { return int(m.nviews) }

// LogLen reports the number of log entries currently recorded.
func (m *Map) LogLen() int { return int(m.nlogs) }

// LogValid reports whether the log still describes every valid view, i.e.
// whether it has not overflowed since the last Reset.
func (m *Map) LogValid() bool { return m.logValid }

// IsEmpty reports whether the map holds no views.
func (m *Map) IsEmpty() bool { return m.nviews == 0 }

// Lookup returns the slot at index i.  It is the constant-time lookup of
// the paper: one bounds check and one array index.
func (m *Map) Lookup(i int) (Slot, error) {
	if i < 0 || i >= SlotsPerMap {
		return Slot{}, fmt.Errorf("%w: %d", ErrSlotOutOfRange, i)
	}
	return m.views[i], nil
}

// Get returns the view word stored at slot i, or nil if the slot is empty
// or out of range.  It is the unchecked fast path used by the reducer
// mechanism.
func (m *Map) Get(i int) unsafe.Pointer {
	if i < 0 || i >= SlotsPerMap {
		return nil
	}
	return m.views[i].view
}

// SlotAt returns the full slot at index i, or the zero Slot if i is out of
// range.  The reducer mechanism uses it on the lookup fast path to read the
// view and the slot's second word (the owner stamp) in one access.
func (m *Map) SlotAt(i int) Slot {
	if i < 0 || i >= SlotsPerMap {
		return Slot{}
	}
	return m.views[i]
}

// Insert stores a (view, owner) pair with the given flags at slot i, which
// must be empty.
func (m *Map) Insert(i int, view, owner unsafe.Pointer, flags uintptr) error {
	if i < 0 || i >= SlotsPerMap {
		return fmt.Errorf("%w: %d", ErrSlotOutOfRange, i)
	}
	if view == nil || owner == nil {
		return errors.New("spa: nil view or owner")
	}
	return m.insertSlot(i, MakeSlot(view, owner, flags))
}

// insertSlot installs a pre-packed slot at an empty index, maintaining the
// count and log bookkeeping.
func (m *Map) insertSlot(i int, s Slot) error {
	if !m.views[i].IsEmpty() {
		return fmt.Errorf("%w: %d", ErrSlotOccupied, i)
	}
	m.views[i] = s
	m.nviews++
	if m.logValid {
		if int(m.nlogs) < LogCapacity {
			m.log[m.nlogs] = uint8(i)
			m.nlogs++
		} else {
			// The log array is full: stop keeping track of logs.  The
			// cost of sequencing through the entire view array is
			// amortised against the insertions that overflowed it.
			m.logValid = false
		}
	}
	return nil
}

// Update replaces the view word and flags stored at an occupied slot,
// leaving the owner stamp unchanged.  It is used by hypermerges, which fold
// one view into another in place.
func (m *Map) Update(i int, view unsafe.Pointer, flags uintptr) error {
	if i < 0 || i >= SlotsPerMap {
		return fmt.Errorf("%w: %d", ErrSlotOutOfRange, i)
	}
	s := m.views[i]
	if s.IsEmpty() {
		return fmt.Errorf("%w: %d", ErrSlotEmpty, i)
	}
	if view == nil {
		return errors.New("spa: nil view")
	}
	m.views[i] = MakeSlot(view, s.Owner(), flags)
	return nil
}

// MarkWritten sets the written flag on slot i.  It is a no-op on empty or
// out-of-range slots, so the lookup fast path can call it unconditionally
// after its owner-stamp check.
func (m *Map) MarkWritten(i int) {
	if i < 0 || i >= SlotsPerMap {
		return
	}
	if s := m.views[i]; !s.IsEmpty() {
		m.views[i].owner = tagOwner(s.Owner(), s.Flags()|FlagWritten)
	}
}

// Remove clears slot i (used when a reducer goes out of scope and its slot
// is recycled) and returns the slot's previous contents.
func (m *Map) Remove(i int) (Slot, error) {
	if i < 0 || i >= SlotsPerMap {
		return Slot{}, fmt.Errorf("%w: %d", ErrSlotOutOfRange, i)
	}
	s := m.views[i]
	if s.IsEmpty() {
		return Slot{}, fmt.Errorf("%w: %d", ErrSlotEmpty, i)
	}
	m.views[i] = Slot{}
	m.nviews--
	// The log may now contain a stale index; sequencing skips empty slots,
	// so the log remains usable without compaction.
	return s, nil
}

// Range calls fn for every valid (index, slot) pair.  If the log is valid
// it walks only the logged indices (linear in the number of insertions);
// otherwise it scans the whole view array.  Iteration stops early if fn
// returns false.  fn may Remove the slot it is visiting.
func (m *Map) Range(fn func(i int, s Slot) bool) {
	if m.logValid {
		for k := 0; k < int(m.nlogs); k++ {
			i := int(m.log[k])
			s := m.views[i]
			if s.IsEmpty() {
				continue
			}
			if !fn(i, s) {
				return
			}
		}
		return
	}
	for i := 0; i < SlotsPerMap; i++ {
		s := m.views[i]
		if s.IsEmpty() {
			continue
		}
		if !fn(i, s) {
			return
		}
	}
}

// Indices returns the indices of all valid views in ascending order.  It is
// a convenience for tests and for deterministic sequencing in merges.
func (m *Map) Indices() []int {
	out := make([]int, 0, m.nviews)
	for i := 0; i < SlotsPerMap; i++ {
		if !m.views[i].IsEmpty() {
			out = append(out, i)
		}
	}
	return out
}

// TransferTo moves every valid view from m into dst (which must have the
// corresponding slots empty) and clears m.  This is the copying strategy
// for view transferal (Section 7): as the worker sequences through valid
// indices it simultaneously zeroes them out in the source map, so that
// after the transfer the private map is empty and may be reused by the
// worker for its next trace.  Slots move wholesale, flags included.
func (m *Map) TransferTo(dst *Map) (moved int, err error) {
	transfer := func(i int, s Slot) bool {
		if insErr := dst.insertSlot(i, s); insErr != nil {
			err = insErr
			return false
		}
		m.views[i] = Slot{}
		m.nviews--
		moved++
		return true
	}
	m.Range(transfer)
	if err != nil {
		return moved, err
	}
	// The source is now empty; restore its pristine state so it can be
	// recycled (the paper requires that recycled SPA maps be empty).
	m.nlogs = 0
	m.logValid = true
	return moved, nil
}

// Encode serialises the SPA map into its in-page byte layout inside buf,
// which must be at least tlmm.PageSize bytes.  View and owner words are
// represented by the caller-provided handle function, which maps them to
// 8-byte identifiers (a real system stores raw pointers; the model stores
// stable handles so a page can round-trip through the TLMM page store).
// Handles must have their low three bits clear — like the 8-byte-aligned
// pointers they stand in for — because the slot flags are packed into the
// low bits of the encoded owner word.
func (m *Map) Encode(buf []byte, handle func(unsafe.Pointer) uint64) error {
	if len(buf) < tlmm.PageSize {
		return fmt.Errorf("spa: encode buffer of %d bytes, need %d", len(buf), tlmm.PageSize)
	}
	off := 0
	for i := 0; i < SlotsPerMap; i++ {
		var hv, hm uint64
		if s := m.views[i]; !s.IsEmpty() {
			hv = handle(s.View())
			hm = handle(s.Owner())
			if hv&uint64(FlagMask) != 0 || hm&uint64(FlagMask) != 0 {
				return fmt.Errorf("spa: handle with low flag bits set at slot %d", i)
			}
			hm |= uint64(s.Flags())
		}
		putLE64(buf[off:], hv)
		putLE64(buf[off+8:], hm)
		off += SlotBytes
	}
	copy(buf[off:off+LogCapacity], m.log[:])
	off += LogCapacity
	putLE32(buf[off:], uint32(m.nviews))
	putLE32(buf[off+4:], uint32(m.nlogs))
	return nil
}

// Decode reconstructs the SPA map from its in-page byte layout, resolving
// 8-byte identifiers back to view/owner words through the lookup function
// and restoring the slot flags from the encoded owner word's low bits.
func (m *Map) Decode(buf []byte, lookup func(uint64) unsafe.Pointer) error {
	if len(buf) < tlmm.PageSize {
		return fmt.Errorf("spa: decode buffer of %d bytes, need %d", len(buf), tlmm.PageSize)
	}
	m.Reset()
	off := 0
	valid := 0
	for i := 0; i < SlotsPerMap; i++ {
		hv := getLE64(buf[off:])
		hm := getLE64(buf[off+8:])
		off += SlotBytes
		if hv == 0 && hm == 0 {
			continue
		}
		flags := uintptr(hm) & FlagMask
		m.views[i] = MakeSlot(lookup(hv), lookup(hm&^uint64(FlagMask)), flags)
		valid++
	}
	copy(m.log[:], buf[off:off+LogCapacity])
	off += LogCapacity
	m.nviews = int32(getLE32(buf[off:]))
	m.nlogs = int32(getLE32(buf[off+4:]))
	if int(m.nviews) != valid {
		return fmt.Errorf("spa: decode count mismatch: header %d, slots %d", m.nviews, valid)
	}
	m.logValid = int(m.nlogs) <= LogCapacity && int(m.nviews) == int(m.nlogs)
	return nil
}

func putLE64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getLE64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getLE32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
