// Package faultinject is the runtime's failpoint and deterministic-chaos
// framework.  Named failpoints are compiled into every layer that can fail
// mid-job — steal/park decision points in the scheduler, pagepool
// exhaustion, TLMM address-space growth, directory registration races, and
// monoid Reduce/Identity panics inside the merge pipeline — and cost one
// atomic load and a predicted branch while no plan is active, so they stay
// in production builds.
//
// A chaos run activates a Plan: a seed plus a set of armed rules, one per
// failpoint.  Whether a particular hit of a failpoint fires is a pure
// function of (plan seed, failpoint id, hit ordinal), so a failing schedule
// reproduces from its seed: the same code path performing the same sequence
// of failpoint hits observes the same sequence of decisions.  (Goroutine
// interleaving itself is not replayed — what the seed pins down is which
// hits inject, which is what makes a rare interleaving reproducible enough
// to shrink.)
//
// Three injection shapes cover the layers above:
//
//   - Error(id) returns an *Fault (wrapping ErrInjected) when the hit
//     fires: used where the surrounding code already has an error path
//     (TLMM growth, pagepool exhaustion).
//   - Check(id) panics with an *Fault: used where failure arrives as a
//     panic (a monoid's Identity or Reduce blowing up mid-merge).
//   - Perturb(id) calls runtime.Gosched() when the hit fires: used at
//     scheduling decision points (steal sweeps, pre-park, merge fan-out) to
//     shake out rare interleavings without changing any result.
//
// The active plan's per-site hit and fire counters are exported through
// SampleMetrics (wrap it in metrics.SourceFunc), so a chaos run can be
// watched on the same scrape endpoint as the rest of the runtime.
package faultinject
