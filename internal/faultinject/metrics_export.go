package faultinject

import "repro/internal/metrics"

// SampleMetrics is a package-level metrics.Source (wrap it in
// metrics.SourceFunc to register): it exports the active chaos plan's
// per-failpoint hit and fire counters, labelled by site name, plus a gauge
// reporting whether a plan is active at all.  With no plan active it emits
// only the gauge — the failpoints themselves are dormant and have no
// counters to read.  All values are atomic loads from the plan's padded
// per-site state, safe to sample during a chaos run.
func SampleMetrics(emit func(metrics.MetricSample)) {
	p := active.Load()
	activeVal := 0.0
	if p != nil {
		activeVal = 1
	}
	emit(metrics.MetricSample{
		Name:  "cilkm_faultinject_plan_active",
		Help:  "Whether a chaos plan is currently activated (0 or 1).",
		Kind:  metrics.KindGauge,
		Value: activeVal,
	})
	if p == nil {
		return
	}
	for _, id := range IDs() {
		emit(metrics.MetricSample{
			Name:     "cilkm_faultinject_hits_total",
			Help:     "Failpoint hits observed by the active plan.",
			Kind:     metrics.KindCounter,
			LabelKey: "site", LabelValue: id.String(),
			Value: float64(p.Hits(id)),
		})
		emit(metrics.MetricSample{
			Name:     "cilkm_faultinject_fires_total",
			Help:     "Failpoint hits that fired an injected fault.",
			Kind:     metrics.KindCounter,
			LabelKey: "site", LabelValue: id.String(),
			Value: float64(p.Fires(id)),
		})
	}
}
