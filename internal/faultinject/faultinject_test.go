package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestDisabledIsInert(t *testing.T) {
	if Enabled() {
		t.Fatal("no plan active, Enabled() = true")
	}
	for _, id := range IDs() {
		if Fire(id) {
			t.Fatalf("%v fired with no plan active", id)
		}
		if err := Error(id); err != nil {
			t.Fatalf("%v produced error %v with no plan active", id, err)
		}
		Check(id) // must not panic
		if Perturb(id) {
			t.Fatalf("%v perturbed with no plan active", id)
		}
	}
}

func TestDeterministicPerOrdinal(t *testing.T) {
	decide := func(seed uint64) []bool {
		p := NewPlan(seed).Arm(MonoidReduce, Rule{Prob: 0.3})
		out := make([]bool, 200)
		for i := range out {
			_, out[i] = p.fire(MonoidReduce)
		}
		return out
	}
	a, b := decide(42), decide(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d: decision not reproducible from seed", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.3 fired %d/%d hits", fired, len(a))
	}
	c := decide(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestAfterAndLimit(t *testing.T) {
	p := NewPlan(7).Arm(TLMMGrow, Rule{Prob: 1, After: 3, Limit: 2})
	var fires []uint64
	for i := 0; i < 10; i++ {
		if hit, ok := p.fire(TLMMGrow); ok {
			fires = append(fires, hit)
		}
	}
	if len(fires) != 2 || fires[0] != 4 || fires[1] != 5 {
		t.Fatalf("After=3 Limit=2: fired at hits %v, want [4 5]", fires)
	}
	if got := p.Fires(TLMMGrow); got != 2 {
		t.Fatalf("Fires = %d, want 2", got)
	}
	if got := p.Hits(TLMMGrow); got != 10 {
		t.Fatalf("Hits = %d, want 10", got)
	}
}

func TestActivateInjectsTypedFault(t *testing.T) {
	p := NewPlan(1).Arm(PagepoolGetN, Rule{Prob: 1, Limit: 1})
	deactivate := Activate(p)
	defer deactivate()

	err := Error(PagepoolGetN)
	if err == nil {
		t.Fatal("armed failpoint did not fire")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error %v does not wrap ErrInjected", err)
	}
	var f *Fault
	if !errors.As(err, &f) || f.ID != PagepoolGetN {
		t.Fatalf("injected error %v is not a *Fault for %v", err, PagepoolGetN)
	}
	if Error(PagepoolGetN) != nil {
		t.Fatal("Limit=1 fired twice")
	}
}

func TestCheckPanicsWithFault(t *testing.T) {
	deactivate := Activate(NewPlan(1).Arm(MonoidIdentity, Rule{Prob: 1, Limit: 1}))
	defer deactivate()
	defer func() {
		p := recover()
		f, ok := p.(*Fault)
		if !ok || f.ID != MonoidIdentity {
			t.Fatalf("Check panicked with %v, want *Fault{MonoidIdentity}", p)
		}
	}()
	Check(MonoidIdentity)
	t.Fatal("Check did not panic")
}

func TestDoubleActivatePanics(t *testing.T) {
	deactivate := Activate(NewPlan(1))
	defer deactivate()
	defer func() {
		if recover() == nil {
			t.Fatal("second Activate did not panic")
		}
	}()
	Activate(NewPlan(2))
}

func TestConcurrentHitsRace(t *testing.T) {
	p := NewPlan(99).Arm(SchedSteal, Rule{Prob: 0.5, Limit: 100})
	deactivate := Activate(p)
	defer deactivate()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				Fire(SchedSteal)
			}
		}()
	}
	wg.Wait()
	if got := p.Hits(SchedSteal); got != 8000 {
		t.Fatalf("Hits = %d, want 8000", got)
	}
	if got := p.Fires(SchedSteal); got > 100 {
		t.Fatalf("Fires = %d exceeds Limit 100", got)
	}
}
