package faultinject

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
)

// ID names one compiled-in failpoint.
type ID uint32

// The runtime's named failpoints.  Adding one here and calling Enabled() +
// one of the injection helpers at the site is all a new layer needs.
const (
	// SchedSteal perturbs a worker's steal sweep (internal/sched.trySteal).
	SchedSteal ID = iota
	// SchedPark perturbs the pre-park decision (internal/sched parking).
	SchedPark
	// SchedMergeFork perturbs the hypermerge fan-out between batch pushes.
	SchedMergeFork
	// MergeTask panics a runtime-internal merge task before its closure
	// runs (internal/sched.runMergeTask).
	MergeTask
	// PagepoolGet injects exhaustion into pagepool.Pool.TryGet.
	PagepoolGet
	// PagepoolGetN injects exhaustion into pagepool.Pool.TryGetN (the bulk
	// fetch view transferal depends on).
	PagepoolGetN
	// TLMMGrow fails TLMM address-space growth for a fresh SPA page
	// (internal/core.MM.growReducerPage), surfacing as a Register error.
	TLMMGrow
	// DirectoryRegister perturbs the directory's lock-free slot allocation
	// between the free-stack pop and the occupant publication, widening the
	// registration/unregistration race window.
	DirectoryRegister
	// MonoidIdentity panics identity-view creation (engine lookupSlow).
	MonoidIdentity
	// MonoidReduce panics a monoid Reduce call inside the hypermerge
	// (both engines' merge paths).
	MonoidReduce
	// EndTraceTransfer fails view transferal right after the public pages
	// have been fetched from the pool, modelling a failure while publishing
	// a deposit: the engine must hand the fetched pages straight back, drop
	// the trace's private views, and unwind.
	EndTraceTransfer
	// ServiceAdmit fails admission into the resident service's bounded
	// queue (sched.Service.Submit), modelling an enqueue-time resource
	// failure: Submit returns the injected *Fault and the job is never
	// queued.
	ServiceAdmit
	// ServiceDispatch perturbs the moment an idle worker takes a queued job
	// off the service's admission queue, skewing dispatch order and the
	// dispatch/cancellation race without changing any result.
	ServiceDispatch
	// ServiceDeadline perturbs deadline/cancellation firing for a service
	// job: the window between a deadline (or caller cancellation) marking
	// the job cancelled and the handle completing is stretched, widening
	// the cancel-vs-finish race.
	ServiceDeadline
	// ServiceDrain perturbs Service.Close between the stop-admission
	// barrier and the drain wait, widening the Submit-racing-Close window.
	ServiceDrain
	numIDs
)

// String returns the failpoint's stable name (used in chaos reports).
func (id ID) String() string {
	switch id {
	case SchedSteal:
		return "sched/steal"
	case SchedPark:
		return "sched/park"
	case SchedMergeFork:
		return "sched/merge-fork"
	case MergeTask:
		return "sched/merge-task"
	case PagepoolGet:
		return "pagepool/get"
	case PagepoolGetN:
		return "pagepool/getn"
	case TLMMGrow:
		return "tlmm/grow"
	case DirectoryRegister:
		return "directory/register"
	case MonoidIdentity:
		return "monoid/identity"
	case MonoidReduce:
		return "monoid/reduce"
	case EndTraceTransfer:
		return "endtrace/transfer"
	case ServiceAdmit:
		return "service/admit"
	case ServiceDispatch:
		return "service/dispatch"
	case ServiceDeadline:
		return "service/deadline"
	case ServiceDrain:
		return "service/drain"
	default:
		return fmt.Sprintf("failpoint(%d)", uint32(id))
	}
}

// IDs returns every compiled-in failpoint, in declaration order.
func IDs() []ID {
	out := make([]ID, numIDs)
	for i := range out {
		out[i] = ID(i)
	}
	return out
}

// ErrInjected is the sentinel every injected fault wraps, so callers can
// classify an error (or a contained panic value) as chaos-made with
// errors.Is regardless of which failpoint produced it.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault is the concrete error/panic value an injection produces.  It
// survives the scheduler's panic containment intact (the job boundary wraps
// it, never stringifies it), so chaos tests assert on the typed value.
type Fault struct {
	// ID is the failpoint that fired.
	ID ID
	// Hit is the 1-based ordinal of the firing hit at that failpoint.
	Hit uint64
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: %v fired (hit %d)", f.ID, f.Hit)
}

// Unwrap links every Fault to ErrInjected.
func (f *Fault) Unwrap() error { return ErrInjected }

// Rule arms one failpoint inside a Plan.
type Rule struct {
	// Prob is the probability in (0, 1] that an eligible hit fires.  Zero
	// arms nothing (the rule is ignored).
	Prob float64
	// After skips the first After hits entirely (they are not eligible).
	After uint64
	// Limit caps the number of firing hits; zero means unlimited.
	Limit uint64
}

// Plan is a seeded chaos schedule: which failpoints are armed and how.
// Build one with NewPlan + Arm, then Activate it.  A Plan must not be armed
// after activation.
type Plan struct {
	seed  uint64
	rules [numIDs]Rule
	state [numIDs]siteState
}

type siteState struct {
	hits  atomic.Uint64
	fires atomic.Uint64
	_     [48]byte // keep concurrent sites off each other's line
}

// NewPlan creates an empty plan for the given seed (zero selects a fixed
// default so the zero seed is still deterministic).
func NewPlan(seed uint64) *Plan {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Plan{seed: seed}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() uint64 { return p.seed }

// Arm installs a rule for one failpoint and returns the plan for chaining.
func (p *Plan) Arm(id ID, r Rule) *Plan {
	p.rules[id] = r
	return p
}

// Hits returns how many times the failpoint was evaluated under this plan.
func (p *Plan) Hits(id ID) uint64 { return p.state[id].hits.Load() }

// Fires returns how many evaluations of the failpoint fired.
func (p *Plan) Fires(id ID) uint64 { return p.state[id].fires.Load() }

// fire decides one hit.  The decision hashes (seed, id, hit ordinal), so a
// replay with the same plan makes the same per-ordinal decisions.
func (p *Plan) fire(id ID) (uint64, bool) {
	r := &p.rules[id]
	if r.Prob <= 0 {
		return 0, false
	}
	hit := p.state[id].hits.Add(1)
	if hit <= r.After {
		return 0, false
	}
	x := splitmix64(p.seed ^ (uint64(id)+1)*0xA24BAED4963EE407 ^ hit*0x9FB21C651E98DF25)
	// Top 53 bits → uniform float in [0, 1).
	if float64(x>>11)/(1<<53) >= r.Prob {
		return 0, false
	}
	// The CAS-free Add keeps the counter exact; a racing hit that lands
	// past the limit simply declines after the fact.
	if fired := p.state[id].fires.Add(1); r.Limit > 0 && fired > r.Limit {
		p.state[id].fires.Add(^uint64(0)) // decrement: this hit declined
		return 0, false
	}
	return hit, true
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche over the packed (seed, site, ordinal) word.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// active is the process-wide activated plan; nil while chaos is off.  One
// global (rather than per-engine) keeps the disabled fast path to a single
// atomic pointer load at every site, including sites in leaf packages
// (pagepool, tlmm) that have no engine back-pointer.
var active atomic.Pointer[Plan]

// Enabled reports whether a chaos plan is active.  This is the whole cost a
// failpoint pays in production: one atomic load and one predicted branch.
func Enabled() bool { return active.Load() != nil }

// Activate installs the plan and returns a deactivation function.  Exactly
// one plan may be active at a time; activating over a live plan panics, so
// chaos tests that forget to serialise fail loudly instead of corrupting
// each other's determinism.
func Activate(p *Plan) (deactivate func()) {
	if p == nil {
		panic("faultinject: Activate(nil)")
	}
	if !active.CompareAndSwap(nil, p) {
		panic("faultinject: a plan is already active")
	}
	return func() { active.CompareAndSwap(p, nil) }
}

// Fire reports whether failpoint id fires at this hit.  Sites with bespoke
// failure shapes use it directly; most go through Error, Check or Perturb.
func Fire(id ID) bool {
	p := active.Load()
	if p == nil {
		return false
	}
	_, ok := p.fire(id)
	return ok
}

// Error returns an injected *Fault when id fires, nil otherwise.
func Error(id ID) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	if hit, ok := p.fire(id); ok {
		return &Fault{ID: id, Hit: hit}
	}
	return nil
}

// Check panics with an injected *Fault when id fires.  It models failures
// that arrive as panics (a monoid blowing up mid-merge); the scheduler's
// job-boundary containment turns the panic into an error without erasing
// the *Fault value.
func Check(id ID) {
	p := active.Load()
	if p == nil {
		return
	}
	if hit, ok := p.fire(id); ok {
		panic(&Fault{ID: id, Hit: hit})
	}
}

// Perturb yields the processor when id fires, perturbing the goroutine
// interleaving at a scheduling decision point without changing any result.
// It reports whether it fired so callers can additionally skew a local
// decision (e.g. abandon a steal sweep).
func Perturb(id ID) bool {
	p := active.Load()
	if p == nil {
		return false
	}
	if _, ok := p.fire(id); ok {
		runtime.Gosched()
		return true
	}
	return false
}
