package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hypermap"
	"repro/internal/sched"
)

type benchMonoid struct{}
type benchView struct{ v int64 }

func (benchMonoid) Identity() any       { return &benchView{} }
func (benchMonoid) Reduce(l, r any) any { lv := l.(*benchView); lv.v += r.(*benchView).v; return lv }

func BenchmarkMMLookupRaw(b *testing.B) {
	eng := core.NewMM(core.MMConfig{Workers: 1})
	s := core.NewSession(1, eng)
	defer s.Close()
	rs := make([]*core.Reducer, 4)
	for i := range rs {
		rs[i], _ = eng.Register(benchMonoid{})
	}
	b.ResetTimer()
	_ = s.Run(func(c *sched.Context) {
		idx := 0
		for i := 0; i < b.N; i++ {
			eng.Lookup(c, rs[idx]).(*benchView).v++
			idx++
			if idx == 4 {
				idx = 0
			}
		}
	})
}

func BenchmarkMMLookupViaInterface(b *testing.B) {
	var eng core.Engine = core.NewMM(core.MMConfig{Workers: 1})
	s := core.NewSession(1, eng)
	defer s.Close()
	rs := make([]*core.Reducer, 4)
	for i := range rs {
		rs[i], _ = eng.Register(benchMonoid{})
	}
	b.ResetTimer()
	_ = s.Run(func(c *sched.Context) {
		idx := 0
		for i := 0; i < b.N; i++ {
			eng.Lookup(c, rs[idx]).(*benchView).v++
			idx++
			if idx == 4 {
				idx = 0
			}
		}
	})
}

// BenchmarkMMLookupRepeated is the per-context cache's target case: a loop
// body that looks up the same reducer on every iteration.  The cache turns
// the SPA walk into two integer compares, so this should run measurably
// faster than the rotating-lookup benchmarks above.
func BenchmarkMMLookupRepeated(b *testing.B) {
	eng := core.NewMM(core.MMConfig{Workers: 1})
	s := core.NewSession(1, eng)
	defer s.Close()
	r, _ := eng.Register(benchMonoid{})
	b.ResetTimer()
	_ = s.Run(func(c *sched.Context) {
		for i := 0; i < b.N; i++ {
			eng.Lookup(c, r).(*benchView).v++
		}
	})
}

// BenchmarkHypermapLookupRepeated is the same loop on the hypermap engine,
// which runs the identical per-context cache ahead of its hash table.
func BenchmarkHypermapLookupRepeated(b *testing.B) {
	eng := hypermap.New(hypermap.Config{Workers: 1})
	s := core.NewSession(1, eng)
	defer s.Close()
	r, _ := eng.Register(benchMonoid{})
	b.ResetTimer()
	_ = s.Run(func(c *sched.Context) {
		for i := 0; i < b.N; i++ {
			eng.Lookup(c, r).(*benchView).v++
		}
	})
}

func BenchmarkHypermapLookupRaw(b *testing.B) {
	eng := hypermap.New(hypermap.Config{Workers: 1})
	s := core.NewSession(1, eng)
	defer s.Close()
	rs := make([]*core.Reducer, 4)
	for i := range rs {
		rs[i], _ = eng.Register(benchMonoid{})
	}
	b.ResetTimer()
	_ = s.Run(func(c *sched.Context) {
		idx := 0
		for i := 0; i < b.N; i++ {
			eng.Lookup(c, rs[idx]).(*benchView).v++
			idx++
			if idx == 4 {
				idx = 0
			}
		}
	})
}

func BenchmarkBaselineArray(b *testing.B) {
	eng := core.NewMM(core.MMConfig{Workers: 1})
	s := core.NewSession(1, eng)
	defer s.Close()
	cells := make([]benchView, 4)
	b.ResetTimer()
	_ = s.Run(func(c *sched.Context) {
		idx := 0
		for i := 0; i < b.N; i++ {
			cells[idx].v++
			idx++
			if idx == 4 {
				idx = 0
			}
		}
	})
}
