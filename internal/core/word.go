package core

import (
	"fmt"
	"unsafe"
)

// This file implements the single-word view representation behind the
// paper's 16-byte SPA slots.
//
// A Go interface value is two machine words: a type word and a data word.
// Storing interface values in the SPA view array would make every slot 32
// bytes — twice the paper's layout — and would drag interface conversions
// through the hottest paths in the system.  Instead, the engines store only
// the data word in the slot and keep the type word once per reducer:
//
//   - Every view of one reducer has the same dynamic type (the Monoid
//     contract below), so the reducer captures its views' type word once,
//     at registration, from the identity view that initialises its
//     leftmost value.
//   - UnboxView extracts a view's data word for storage, verifying the
//     dynamic type against the captured word so a monoid that violates the
//     contract fails loudly instead of corrupting memory.
//   - BoxView reassembles the interface value from the stored word and the
//     captured type word.  It is pure word assembly: no allocation, no
//     reflection.
//
// Safety argument for the garbage collector: the data word of any non-nil
// interface value is always a pointer — pointer-shaped types (pointers,
// maps, channels, functions) store the value itself, and every other type
// is boxed behind a pointer when it enters an interface.  SPA slots and
// arena free lists store these words as unsafe.Pointer in ordinary Go
// structs and slices, so the collector scans them and keeps both the views
// and (through interior pointers) their backing arena chunks alive.  No
// pointer is ever round-tripped through a uintptr variable; the only
// pointer arithmetic is unsafe.Add on the owner stamp's flag bits (see
// package spa), which `go vet -unsafeptr` accepts.

// eface mirrors the runtime representation of an empty interface.
type eface struct {
	typ  unsafe.Pointer
	data unsafe.Pointer
}

// unpackEface splits an interface value into its type and data words.
func unpackEface(v any) (typ, data unsafe.Pointer) {
	e := (*eface)(unsafe.Pointer(&v))
	return e.typ, e.data
}

// packEface assembles an interface value from a type word and a data word.
func packEface(typ, data unsafe.Pointer) any {
	var v any
	e := (*eface)(unsafe.Pointer(&v))
	e.typ = typ
	e.data = data
	return v
}

// captureViewType records the reducer's view type word from its first
// identity view.  Register calls it with the leftmost view.
func (r *Reducer) captureViewType(view any) error {
	typ, data := unpackEface(view)
	if typ == nil || data == nil {
		return fmt.Errorf("core: monoid %T produced a nil identity view", r.monoid)
	}
	r.viewType = typ
	return nil
}

// UnboxView extracts the single-word representation of a view for storage
// in a packed SPA slot (or hypermap entry).  It panics when the view's
// dynamic type differs from the reducer's captured view type: the Monoid
// contract requires Identity and Reduce to produce views of one concrete
// type, because the slot has no room for a per-view type word.
func (r *Reducer) UnboxView(v any) unsafe.Pointer {
	typ, data := unpackEface(v)
	if typ != r.viewType {
		panic(fmt.Sprintf("core: reducer %d monoid %T changed its view type (views must share one concrete type)",
			r.id, r.monoid))
	}
	if data == nil {
		panic(fmt.Sprintf("core: reducer %d monoid %T produced a nil view", r.id, r.monoid))
	}
	return data
}

// BoxView reassembles the interface value for a stored view word.  It
// performs no allocation: the result is the reducer's captured type word
// paired with the slot word.
func (r *Reducer) BoxView(word unsafe.Pointer) any {
	return packEface(r.viewType, word)
}

// ownerWord encodes r as the owner-stamp word stored in an SPA slot's
// second word (package spa tags its low bits with the slot flags).  The
// stamp is an ordinary pointer to the Reducer, so slots keep their owners
// alive and the collector relocates nothing behind our back.  Every
// stamping site must use this helper: it is the one audited conversion of
// a reducer into its word form, and reducerOf is its only inverse.
func ownerWord(r *Reducer) unsafe.Pointer {
	return unsafe.Pointer(r)
}

// reducerOf decodes an owner-stamp word produced by ownerWord.  The spa
// accessors strip the flag bits before the word gets here, so the result
// is the exact pointer ownerWord stored (or nil for an empty slot).
func reducerOf(word unsafe.Pointer) *Reducer {
	return (*Reducer)(word)
}
