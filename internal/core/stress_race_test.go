package core_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/hypermap"
	"repro/internal/sched"
)

// TestConcurrentRegisterLookupUnregisterStress hammers the reducer
// directory from inside ParallelFor bodies on both engines: every iteration
// updates long-lived noncommutative reducers (whose final values must match
// a serial execution exactly), registers a scratch reducer, drives it
// through lookups, verifies its local view, and unregisters it — so
// registration, lookup and slot recycling race with steals, view
// transferal and hypermerges.  Run it under -race: it is the concurrency
// gate for the lock-free registration paths.
func TestConcurrentRegisterLookupUnregisterStress(t *testing.T) {
	const (
		lanes = 8
		steps = 24
		iters = lanes * steps
	)
	workers := 4
	engines := map[string]core.Engine{
		"mm":       core.NewMM(core.MMConfig{Workers: workers}),
		"hypermap": hypermap.New(hypermap.Config{Workers: workers}),
	}
	for name, eng := range engines {
		t.Run(name, func(t *testing.T) {
			s := core.NewSession(workers, eng)
			defer s.Close()

			// Long-lived noncommutative reducers: one concatenation lane
			// per residue class.  Their final strings must equal the serial
			// left-to-right concatenation regardless of the churn below.
			cats := make([]*core.Reducer, lanes)
			for i := range cats {
				r, err := eng.Register(catMonoid{})
				if err != nil {
					t.Fatalf("Register: %v", err)
				}
				cats[i] = r
			}
			baseline := eng.Registered()

			var scratchFailures atomic.Int64
			err := s.Run(func(c *sched.Context) {
				c.ParallelForGrain(0, iters, 1, func(c *sched.Context, i int) {
					lane := i % lanes
					step := i / lanes
					// The ordered update: lane strings grow in serial order.
					eng.Lookup(c, cats[lane]).(*catView).s += string(rune('a' + step%26))

					// Scratch churn: a register → lookup → verify →
					// unregister cycle whose slot immediately becomes
					// available for recycling by a concurrent iteration.
					scratch, err := eng.Register(sumMonoid{})
					if err != nil {
						scratchFailures.Add(1)
						return
					}
					const bumps = 8
					for k := 0; k < bumps; k++ {
						eng.Lookup(c, scratch).(*sumView).v++
					}
					if got := eng.Lookup(c, scratch).(*sumView).v; got != bumps {
						scratchFailures.Add(1)
					}
					eng.Unregister(scratch)
					// A second unregister of the now-stale handle must be a
					// no-op even if the slot was already recycled elsewhere.
					eng.Unregister(scratch)
				})
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if n := scratchFailures.Load(); n != 0 {
				t.Fatalf("%d scratch reducers misbehaved", n)
			}
			if got := eng.Registered(); got != baseline {
				t.Fatalf("Registered = %d after churn, want %d", got, baseline)
			}
			want := ""
			for step := 0; step < steps; step++ {
				want += string(rune('a' + step%26))
			}
			for lane, r := range cats {
				if got := r.Value().(*catView).s; got != want {
					t.Fatalf("lane %d: got %q, want %q — noncommutative merge order broken under churn",
						lane, got, want)
				}
			}
		})
	}
}

// TestConcurrentChurnManyTraces repeats shorter churn bursts across many
// Run invocations, so registration races also cross root-merge boundaries
// (deposited views of retired scratch reducers must be dropped, never
// absorbed into a recycled slot's new owner).
func TestConcurrentChurnManyTraces(t *testing.T) {
	workers := 4
	for name, eng := range map[string]core.Engine{
		"mm":       core.NewMM(core.MMConfig{Workers: workers, DirectoryShards: 2}),
		"hypermap": hypermap.New(hypermap.Config{Workers: workers, DirectoryShards: 2}),
	} {
		t.Run(name, func(t *testing.T) {
			s := core.NewSession(workers, eng)
			defer s.Close()
			keeper, _ := eng.Register(sumMonoid{})
			const rounds = 6
			const perRound = 64
			for round := 0; round < rounds; round++ {
				survivors := make([]*core.Reducer, perRound)
				err := s.Run(func(c *sched.Context) {
					c.ParallelForGrain(0, perRound, 1, func(c *sched.Context, i int) {
						eng.Lookup(c, keeper).(*sumView).v++
						scratch, err := eng.Register(sumMonoid{})
						if err != nil {
							t.Errorf("Register: %v", err)
							return
						}
						eng.Lookup(c, scratch).(*sumView).v += 1000
						if i%2 == 0 {
							// Half retire inside the trace: their in-flight
							// updates are dropped and their slots recycle
							// while the run is still executing.
							eng.Unregister(scratch)
						} else {
							// The rest outlive the run and are retired after
							// the root merge absorbed their views.
							survivors[i] = scratch
						}
					})
				})
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				for _, r := range survivors {
					if r == nil {
						continue
					}
					if got := r.Value().(*sumView).v; got != 1000 {
						t.Fatalf("round %d: surviving scratch = %d, want 1000", round, got)
					}
					eng.Unregister(r)
				}
			}
			if got := keeper.Value().(*sumView).v; got != rounds*perRound {
				t.Fatalf("keeper = %d, want %d — scratch churn leaked into a live reducer", got, rounds*perRound)
			}
			if got := eng.Registered(); got != 1 {
				t.Fatalf("Registered = %d, want 1", got)
			}
		})
	}
}
