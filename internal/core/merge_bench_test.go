package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// benchMergeCycle measures one full pipeline cycle — begin a trace, touch
// every reducer, transfer the views out in one bulk page fetch, and
// hypermerge the deposit back — for a given width and batching config.
func benchMergeCycle(b *testing.B, nred, workers, batch, threshold int) {
	eng := core.NewMM(core.MMConfig{
		Workers:                workers,
		MergeBatchSize:         batch,
		ParallelMergeThreshold: threshold,
	})
	s := core.NewSession(workers, eng)
	defer s.Close()
	rs := make([]*core.Reducer, nred)
	for i := range rs {
		rs[i], _ = eng.Register(benchMonoid{})
	}
	b.ResetTimer()
	_ = s.Run(func(c *sched.Context) {
		w := c.Worker()
		for i := 0; i < b.N; i++ {
			tr := eng.BeginTrace(w)
			for _, r := range rs {
				eng.Lookup(c, r).(*benchView).v++
			}
			d := eng.EndTrace(w, tr)
			eng.Merge(w, w.CurrentTrace(), d)
		}
	})
	b.StopTimer()
	ms := eng.MergeStats()
	pool := eng.PoolStats()
	if ms.SlotsMerged > 0 {
		b.ReportMetric(float64(pool.RoundTrips())/float64(ms.SlotsMerged), "poolops/slot")
	}
	if ms.Merges > 0 {
		b.ReportMetric(float64(ms.ParallelMerges)/float64(ms.Merges), "parallel/merge")
	}
}

func BenchmarkMergeSerial64(b *testing.B)    { benchMergeCycle(b, 64, 1, 32, 1<<30) }
func BenchmarkMergeSerial256(b *testing.B)   { benchMergeCycle(b, 256, 1, 32, 1<<30) }
func BenchmarkMergeParallel256(b *testing.B) { benchMergeCycle(b, 256, 4, 32, 96) }
func BenchmarkMergeParallel1k(b *testing.B)  { benchMergeCycle(b, 1024, 4, 32, 96) }
