package core

import (
	"errors"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/spa"
)

// This file implements the sharded reducer directory: the registry that maps
// SPA slot addresses to live reducers for both engines (the memory-mapped
// mechanism and the hypermap baseline).
//
// The seed funnelled every Register/Unregister/Registered through one
// engine-wide mutex over a map[spa.Addr]*Reducer, and grew TLMM address-space
// reservations inside that lock, so workloads that create reducers
// dynamically (one per key, per request, per graph component) serialised on
// the registry.  The directory removes the global lock:
//
//   - Addresses are striped across a power-of-two number of shards:
//     shard(addr) = addr & mask, local(addr) = addr >> shift, so shard s owns
//     exactly the addresses { local*Shards + s }.  A round-robin cursor
//     spreads registrations, which keeps the address space dense (sequential
//     single-threaded registration yields addresses 0, 1, 2, ...).
//   - Each shard keeps its recycled slots on an intrusive lock-free stack:
//     the head packs a 32-bit version with a 32-bit slot index, the next
//     links live inside the slot entries themselves, and the version bump on
//     every successful CAS defeats ABA — so the common churn path
//     (unregister one reducer, register another) performs no allocation and
//     takes no lock.
//   - Reducer ids are drawn from per-shard sequences (id = seq*Shards +
//     shard + 1), unique across the directory without a shared counter.
//   - The shard's local-index → slot mapping is an RCU-published slice of
//     slot pointers: readers load the published pointer and index it with no
//     lock; growth copies the pointer slice under a per-shard mutex and
//     publishes the new one atomically.  Slot entries never move, so a
//     writer holding a *dirSlot is immune to concurrent growth.
//   - The live count is per-shard (registers minus unregisters), so
//     Registered() sums a handful of counters instead of taking a lock, and
//     steady-state churn touches no shared cache line except the cursor.
//   - Every slot carries an epoch, bumped on unregister.  A reducer records
//     the epoch of its slot at registration, so a recycled address can never
//     satisfy a stale handle: Valid(r) compares both the slot's current
//     occupant and its epoch against the handle.
//   - When an allocation first touches a new SPA page index, the directory
//     invokes the OnGrow hook outside every shard lock (serialised by a
//     dedicated grow mutex).  The memory-mapped engine uses the hook to
//     reserve TLMM region pages and publish them in an RCU page table, so
//     registering reducer #100,000 neither stalls lookups nor other
//     registrations.

// DirectoryConfig configures a sharded reducer directory.
type DirectoryConfig struct {
	// Shards is the number of registry shards; it is rounded up to a power
	// of two.  Zero selects a default sized from Workers (or GOMAXPROCS
	// when Workers is also zero).
	Shards int
	// Workers is the expected registration parallelism, used only to size
	// the default shard count.
	Workers int
	// OnGrow, if non-nil, is called once per new SPA page index (in
	// ascending order, serialised, outside all shard locks) the first time
	// an allocated address lands on that page.  The memory-mapped engine
	// reserves TLMM address space here.  An error fails the registration
	// that triggered the growth.
	OnGrow func(page int) error
}

// defaultShards sizes the shard count from the requested worker parallelism.
func defaultShards(workers int) int {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := 4 * workers
	if n < 8 {
		n = 8
	}
	if n > 512 {
		n = 512
	}
	return n
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// dirSlot is one registry slot.  The entry is allocated once and never
// moves; the RCU-published slice holds pointers to it, so growth never
// copies slot state.
type dirSlot struct {
	// epoch counts the slot's incarnations: it is bumped every time the
	// slot's reducer is unregistered.  A Reducer records the epoch it was
	// registered under, letting Valid reject stale handles after reuse.
	epoch atomic.Uint64
	// r is the slot's current occupant, nil while the slot is free.
	r atomic.Pointer[Reducer]
	// nextFree is the intrusive free-stack link: the packed index
	// (local+1, 0 meaning end-of-stack) of the next free slot.  It is
	// written only while this slot sits on the free stack, exclusively by
	// the pusher, but read concurrently by racing poppers, hence atomic.
	nextFree atomic.Uint64
}

// dirShard is one registry shard.  Its hot fields are written only by
// registrations and unregistrations whose addresses stripe to this shard,
// and the struct is padded so neighbouring shards do not false-share.
type dirShard struct {
	// free is the shard's lock-free stack of recycled local slot indices,
	// packed as version<<32 | (local+1); 0 in the low half means empty.
	// The version increments on every successful CAS, so a head popped,
	// recycled and re-pushed between a competitor's load and CAS cannot
	// forge a match (ABA).
	free atomic.Uint64
	// freeLen mirrors the stack depth so diagnostics and tests can observe
	// recycling without walking the stack.
	freeLen atomic.Int64
	// next is the next fresh local slot index.
	next atomic.Uint64
	// idSeq drives this shard's reducer-id sequence.
	idSeq atomic.Uint64
	// slots is the RCU-published local-index → slot mapping.
	slots atomic.Pointer[[]*dirSlot]
	// mu serialises growth of the slots slice (publication stays atomic).
	mu sync.Mutex
	// counters aggregates this shard's registration and contention events.
	// Registers - Unregisters is also the shard's live-reducer count.
	counters metrics.DirectoryCounters

	_ [64]byte
}

// popFree pops a recycled local index, or returns -1 when the shard has
// none.  Lock-free: a failed CAS means another registration raced us, which
// the shard counts as contention.
func (s *dirShard) popFree() int64 {
	for {
		h := s.free.Load()
		idx := uint32(h)
		if idx == 0 {
			return -1
		}
		slot := s.lookup(uint64(idx - 1))
		next := uint32(slot.nextFree.Load())
		if s.free.CompareAndSwap(h, (h>>32+1)<<32|uint64(next)) {
			s.freeLen.Add(-1)
			return int64(idx - 1)
		}
		s.counters.FreeRetries.Add(1)
	}
}

// pushFree returns a local index to the shard's free stack.  The caller
// owns the (vacated) slot, so threading the next link through it is safe.
func (s *dirShard) pushFree(local uint64) {
	slot := s.slot(local)
	for {
		h := s.free.Load()
		slot.nextFree.Store(uint64(uint32(h)))
		if s.free.CompareAndSwap(h, (h>>32+1)<<32|(local+1)) {
			s.freeLen.Add(1)
			return
		}
		s.counters.FreeRetries.Add(1)
	}
}

// slot returns the shard's slot entry for a local index, growing and
// republishing the slot slice if the index is fresh.
func (s *dirShard) slot(local uint64) *dirSlot {
	if arr := s.slots.Load(); arr != nil && local < uint64(len(*arr)) {
		return (*arr)[local]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	arr := s.slots.Load()
	var cur []*dirSlot
	if arr != nil {
		cur = *arr
	}
	if local < uint64(len(cur)) {
		return cur[local]
	}
	n := 2 * len(cur)
	if n < 8 {
		n = 8
	}
	if uint64(n) <= local {
		n = int(local) + 1
	}
	grown := make([]*dirSlot, n)
	copy(grown, cur)
	// One backing array for all new entries: growth costs two allocations
	// regardless of width, instead of one per slot.
	chunk := make([]dirSlot, n-len(cur))
	for i := len(cur); i < n; i++ {
		grown[i] = &chunk[i-len(cur)]
	}
	s.slots.Store(&grown)
	s.counters.SlotGrows.Add(1)
	return grown[local]
}

// lookup returns the slot entry for a local index, or nil if the shard has
// never published it.  Lock-free.
func (s *dirShard) lookup(local uint64) *dirSlot {
	arr := s.slots.Load()
	if arr == nil || local >= uint64(len(*arr)) {
		return nil
	}
	return (*arr)[local]
}

// live returns the shard's live-reducer count.
func (s *dirShard) live() int64 {
	return s.counters.Registers.Load() - s.counters.Unregisters.Load()
}

// Directory is the sharded reducer registry shared by both engines.  The
// read-only routing fields live on their own line; the cursor — the only
// cache line every registration shares — is padded away from them.
type Directory struct {
	shards []dirShard
	mask   uint64
	shift  uint

	// onGrow and the grow state serialise SPA-page growth outside the
	// registration path; grownPages is the lock-free fast-path check.
	onGrow func(page int) error

	_ [64]byte
	// cursor round-robins registrations across shards; combined with the
	// striped address layout it keeps the allocated address range dense.
	cursor     atomic.Uint64
	_          [56]byte
	grownPages atomic.Int64
	_          [56]byte
	growMu     sync.Mutex
}

// NewDirectory creates a sharded directory.
func NewDirectory(cfg DirectoryConfig) *Directory {
	n := cfg.Shards
	if n <= 0 {
		n = defaultShards(cfg.Workers)
	}
	n = ceilPow2(n)
	d := &Directory{
		shards: make([]dirShard, n),
		mask:   uint64(n - 1),
		shift:  uint(bits.TrailingZeros(uint(n))),
		onGrow: cfg.OnGrow,
	}
	return d
}

// Shards returns the number of registry shards.
func (d *Directory) Shards() int { return len(d.shards) }

// Live returns the number of registered reducers by summing the per-shard
// counts.  Lock-free; exact whenever no registration is mid-flight.
func (d *Directory) Live() int {
	var n int64
	for i := range d.shards {
		n += d.shards[i].live()
	}
	return int(n)
}

// addr assembles the global address of a shard-local slot index.
func (d *Directory) addr(shard, local uint64) spa.Addr {
	return spa.Addr(local<<d.shift | shard)
}

// Register allocates a slot and installs a new reducer for the given engine
// and monoid.  The only lock it can take is the grow mutex, and only when
// the allocation is the first to land on a new SPA page.
func (d *Directory) Register(eng Engine, m Monoid) (*Reducer, error) {
	if m == nil {
		return nil, errors.New("core: nil monoid")
	}
	si := (d.cursor.Add(1) - 1) & d.mask
	s := &d.shards[si]
	var local uint64
	recycled := false
	if idx := s.popFree(); idx >= 0 {
		local = uint64(idx)
		recycled = true
	} else {
		local = s.next.Add(1) - 1
	}
	addr := d.addr(si, local)
	if d.onGrow != nil {
		// Both branches verify growth: a recycled slot normally sits on an
		// already-grown page (one atomic load), but a slot pushed back by a
		// previously failed registration may not.
		if err := d.growToPage(addr.Page()); err != nil {
			// Hand the unused slot back so the address is not leaked.
			s.pushFree(local)
			return nil, err
		}
	}
	if recycled {
		s.counters.Recycles.Add(1)
	} else {
		s.counters.FreshSlots.Add(1)
	}
	slot := s.slot(local)
	// Chaos point for registration races: a Perturb yields between slot
	// acquisition and reducer publication, widening the window in which
	// concurrent registrations, lookups on recycled addresses, and shard
	// growth can interleave with this half-done registration.
	faultinject.Perturb(faultinject.DirectoryRegister)
	r := &Reducer{
		// id = seq*Shards + shard + 1: unique across the directory (the
		// shard part distinguishes concurrent sequences) and nonzero (the
		// per-context lookup cache requires nonzero keys).
		id:         (s.idSeq.Add(1)-1)<<d.shift + si + 1,
		addr:       addr,
		page:       int32(addr.Page()),
		slot:       int32(addr.Slot()),
		slotEpoch:  slot.epoch.Load(),
		monoid:     m,
		eng:        eng,
		leftmost:   m.Identity(),
		arenaClass: -1,
	}
	// Capture the view type word for the packed-slot representation (see
	// word.go); the identity view that seeds the leftmost value is the
	// canonical instance of the reducer's single view type.
	if err := r.captureViewType(r.leftmost); err != nil {
		s.pushFree(local)
		return nil, err
	}
	if am, ok := m.(ArenaMonoid); ok {
		if class := ArenaClassFor(am.ViewBytes()); class >= 0 {
			r.arena = am
			r.arenaClass = int8(class)
		}
	}
	slot.r.Store(r)
	s.counters.Registers.Add(1)
	return r, nil
}

// growToPage runs the OnGrow hook for every SPA page index up to and
// including page, exactly once per page, in ascending order.  The atomic
// fast path means steady-state registrations never touch the grow mutex
// (one page covers spa.SlotsPerMap addresses).
func (d *Directory) growToPage(page int) error {
	if d.grownPages.Load() > int64(page) {
		return nil
	}
	d.growMu.Lock()
	defer d.growMu.Unlock()
	for d.grownPages.Load() <= int64(page) {
		if err := d.onGrow(int(d.grownPages.Load())); err != nil {
			return err
		}
		d.grownPages.Add(1)
	}
	return nil
}

// Unregister removes r from the directory, bumps its slot's epoch, and
// recycles the address.  The compare-and-swap performs the registry
// identity check atomically: a second Unregister of the same handle — or an
// Unregister racing a slot reuse — fails the CAS and leaves the current
// occupant untouched, so a double-unregister can never delete another live
// reducer's entry or push a duplicate address onto the free list.  It
// returns whether r was the slot's occupant.
func (d *Directory) Unregister(r *Reducer) bool {
	if r == nil {
		return false
	}
	si := uint64(r.addr) & d.mask
	local := uint64(r.addr) >> d.shift
	s := &d.shards[si]
	slot := s.lookup(local)
	if slot == nil {
		return false
	}
	if !slot.r.CompareAndSwap(r, nil) {
		s.counters.StaleUnregisters.Add(1)
		return false
	}
	slot.epoch.Add(1)
	s.counters.Unregisters.Add(1)
	s.pushFree(local)
	return true
}

// Get returns the reducer currently registered at addr, or nil.  Lock-free.
func (d *Directory) Get(addr spa.Addr) *Reducer {
	if addr < 0 {
		return nil
	}
	slot := d.shards[uint64(addr)&d.mask].lookup(uint64(addr) >> d.shift)
	if slot == nil {
		return nil
	}
	return slot.r.Load()
}

// Valid reports whether r is still the live registration for its address:
// the slot's occupant must be r and the slot's epoch must equal the epoch r
// was registered under.  A handle kept across Unregister fails the check
// even after its address has been recycled to a new reducer.
func (d *Directory) Valid(r *Reducer) bool {
	if r == nil {
		return false
	}
	slot := d.shards[uint64(r.addr)&d.mask].lookup(uint64(r.addr) >> d.shift)
	return slot != nil && slot.r.Load() == r && slot.epoch.Load() == r.slotEpoch
}

// Range calls fn for every live reducer until fn returns false.  It is a
// diagnostic walk: concurrent registrations may or may not be observed.
func (d *Directory) Range(fn func(r *Reducer) bool) {
	for si := range d.shards {
		arr := d.shards[si].slots.Load()
		if arr == nil {
			continue
		}
		for _, slot := range *arr {
			if r := slot.r.Load(); r != nil {
				if !fn(r) {
					return
				}
			}
		}
	}
}

// Stats aggregates the per-shard counters.
func (d *Directory) Stats() metrics.DirectoryStats {
	st := metrics.DirectoryStats{
		Shards:     len(d.shards),
		GrownPages: d.grownPages.Load(),
	}
	for i := range d.shards {
		s := &d.shards[i]
		st.Live += s.live()
		st.Registers += s.counters.Registers.Load()
		st.Recycles += s.counters.Recycles.Load()
		st.FreshSlots += s.counters.FreshSlots.Load()
		st.Unregisters += s.counters.Unregisters.Load()
		st.StaleUnregisters += s.counters.StaleUnregisters.Load()
		st.FreeRetries += s.counters.FreeRetries.Load()
		st.SlotGrows += s.counters.SlotGrows.Load()
		if n := s.freeLen.Load(); n > 0 {
			st.FreeSlots += n
		}
	}
	return st
}
