package core

import (
	"fmt"
	"sync"
)

// JobSession is a per-job registration scope over a shared Engine: the
// multi-tenant resident service hands each submitted job one, so reducers a
// tenant registers live exactly as long as the job and are retired in one
// sweep when it completes — a tenant cannot leak slots into the shared
// directory, and the directory's epoch-stamped slot recycling guarantees
// that a stale handle from a finished job never resolves a view belonging
// to whichever job the slot was recycled to.
//
// JobSession implements Engine by delegation, so typed reducer handles and
// experiment code written against Engine work unchanged inside a job; the
// scheduler hooks (BeginTrace, Merge, ...) still run against the shared
// engine the runtime was built with — a JobSession is a registration facade,
// not a second mechanism.
type JobSession struct {
	// Engine is the shared engine every delegated call lands on.
	Engine

	mu      sync.Mutex
	live    map[*Reducer]struct{}
	retired bool
}

// NewJobSession creates a registration scope over eng.
func NewJobSession(eng Engine) *JobSession {
	return &JobSession{Engine: eng, live: make(map[*Reducer]struct{})}
}

// Underlying returns the shared engine behind the session.  Typed reducer
// handles unwrap it to reach their devirtualized fast paths.
func (js *JobSession) Underlying() Engine { return js.Engine }

// Register registers a reducer on the shared engine and scopes it to this
// session: Retire (or the service's job-completion hook) unregisters it.
// After Retire, Register fails — the job is over.
func (js *JobSession) Register(m Monoid) (*Reducer, error) {
	js.mu.Lock()
	if js.retired {
		js.mu.Unlock()
		return nil, fmt.Errorf("core: Register on retired job session")
	}
	js.mu.Unlock()
	r, err := js.Engine.Register(m)
	if err != nil {
		return nil, err
	}
	js.mu.Lock()
	if js.retired {
		// Retire raced the registration: honour the scope by retiring the
		// newcomer immediately.
		js.mu.Unlock()
		js.Engine.Unregister(r)
		return nil, fmt.Errorf("core: Register on retired job session")
	}
	js.live[r] = struct{}{}
	js.mu.Unlock()
	return r, nil
}

// Unregister retires one session-scoped reducer early.  Unregistering a
// reducer that belongs to another session is forwarded unchanged (the
// shared engine makes double-unregister a no-op).
func (js *JobSession) Unregister(r *Reducer) {
	js.mu.Lock()
	delete(js.live, r)
	js.mu.Unlock()
	js.Engine.Unregister(r)
}

// Live reports the number of reducers currently scoped to the session.
func (js *JobSession) Live() int {
	js.mu.Lock()
	defer js.mu.Unlock()
	return len(js.live)
}

// Retire unregisters every reducer still scoped to the session and closes
// it to further registration.  Retired reducers keep their final leftmost
// values readable (Engine.Unregister semantics), so a submitter holding the
// job's handles can still read results after the job — and its session —
// are gone.  Retire is idempotent and safe to call concurrently with late
// Register calls from a straggler branch.
func (js *JobSession) Retire() {
	js.mu.Lock()
	if js.retired {
		js.mu.Unlock()
		return
	}
	js.retired = true
	rs := make([]*Reducer, 0, len(js.live))
	for r := range js.live {
		rs = append(rs, r)
	}
	js.live = nil
	js.mu.Unlock()
	for _, r := range rs {
		js.Engine.Unregister(r)
	}
}
