package core

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"repro/internal/metrics"
)

// This file implements the per-worker view arena: a size-classed bump
// allocator with free lists that backs identity-view creation for monoids
// whose views are fixed-size and pointer-free (ArenaMonoid).
//
// The paper amortises view bookkeeping against steals; what remains of the
// post-steal lookup cost in this model is one heap allocation per identity
// view.  The arena removes it: lookupSlow carves the view out of the
// worker's arena, and views that the hypermerge folds away — the
// non-surviving side of each reduce pair, dropped stale views, and
// never-written identity views elided at trace end — are pushed back onto a
// free list, so the steady-state steal→lookup→merge cycle allocates
// nothing.
//
// Ownership: an arena belongs to one worker and is touched only from that
// worker's goroutine (lookupSlow, EndTrace elision, and the post-join free
// sweep of Merge all run there).  Blocks are not returned to the chunk they
// were carved from: a block freed by the merging worker goes on the merging
// worker's free list, which is safe because every block of one class is
// interchangeable and the unsafe.Pointer references on free lists and in
// SPA slots keep the backing chunks alive (interior pointers pin Go heap
// objects).
//
// GC safety: arenas are only used for pointer-free view types, so the
// collector never needs to see pointers inside a chunk; the chunks
// themselves are ordinary []uint64 allocations kept alive by the block
// pointers carved from them.

const (
	// arenaMinClassBytes is the smallest size class (one machine word).
	arenaMinClassBytes = 8
	// arenaMaxClassBytes is the largest view an arena will place; bigger
	// views fall back to the monoid's heap Identity.
	arenaMaxClassBytes = 128
	// arenaNumClasses covers 8, 16, 32, 64 and 128 bytes.
	arenaNumClasses = 5
	// arenaChunkBytes is the size of one bump chunk (per class).
	arenaChunkBytes = 8192
)

// ArenaClassFor returns the size class for a view of the given size, or -1
// when the size is outside the arena's range.  Classes are powers of two
// from 8 to 128 bytes; sizes round up to the next class.
func ArenaClassFor(size uintptr) int {
	if size > arenaMaxClassBytes {
		return -1
	}
	c, bytes := 0, uintptr(arenaMinClassBytes)
	for bytes < size {
		bytes <<= 1
		c++
	}
	return c
}

// arenaClassBytes returns the block size of a class.
func arenaClassBytes(class int) uintptr {
	return arenaMinClassBytes << uint(class)
}

// viewArena is one worker's size-classed view allocator.  The allocator
// state (free lists, bump chunks) is owner-goroutine-only, but the counters
// are atomics: only the owning worker writes them, while the metrics
// exporter may sample them lock-free at any time during a run.
type viewArena struct {
	classes [arenaNumClasses]arenaClass

	allocs      atomic.Int64 // blocks handed out
	freeHits    atomic.Int64 // allocations served from a free list
	chunkAllocs atomic.Int64 // fresh bump chunks allocated
	frees       atomic.Int64 // blocks returned to a free list
	freeBlocks  atomic.Int64 // blocks currently sitting on free lists
	heapViews   atomic.Int64 // identity views that bypassed the arena (heap path)
}

// arenaClass is one size class: a free list of recycled blocks and the
// current bump chunk.
type arenaClass struct {
	free  []unsafe.Pointer
	chunk []uint64
	off   int // next free word index within chunk
}

// alloc carves one block of the given class: free list first, then the bump
// chunk, then a fresh chunk.  Blocks are 8-byte aligned (chunks are
// []uint64) and sized to the class, so any block can later serve any view
// of the same class.
func (a *viewArena) alloc(class int) unsafe.Pointer {
	if class < 0 || class >= arenaNumClasses {
		panic(fmt.Sprintf("core: view arena class %d out of range", class))
	}
	a.allocs.Add(1)
	c := &a.classes[class]
	if n := len(c.free); n > 0 {
		p := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		a.freeHits.Add(1)
		a.freeBlocks.Add(-1)
		return p
	}
	words := int(arenaClassBytes(class) / 8)
	if c.off+words > len(c.chunk) {
		c.chunk = make([]uint64, arenaChunkBytes/8)
		c.off = 0
		a.chunkAllocs.Add(1)
	}
	p := unsafe.Pointer(&c.chunk[c.off])
	c.off += words
	return p
}

// free returns a dead block to the class free list.  The block must be a
// pointer previously handed out for this class by some worker's arena
// (slots record this in their FlagArena bit), so the memory is at least
// class-size bytes and 8-byte aligned.
func (a *viewArena) free(class int, p unsafe.Pointer) {
	if class < 0 || class >= arenaNumClasses || p == nil {
		return
	}
	a.frees.Add(1)
	a.freeBlocks.Add(1)
	c := &a.classes[class]
	c.free = append(c.free, p)
}

// stats snapshots the arena counters.  Safe to call at any time (atomic
// loads); the counters are only mutated by the owning worker, so a snapshot
// taken while the engine is quiescent is exact.
func (a *viewArena) stats() metrics.ArenaStats {
	return metrics.ArenaStats{
		Allocs:      a.allocs.Load(),
		FreeHits:    a.freeHits.Load(),
		ChunkAllocs: a.chunkAllocs.Load(),
		Frees:       a.frees.Load(),
		FreeBlocks:  a.freeBlocks.Load(),
		HeapViews:   a.heapViews.Load(),
	}
}
