package core

import (
	"unsafe"

	"repro/internal/metrics"
	"repro/internal/sched"
)

// This file is the memory-mapped engine's devirtualized lookup fast path:
// the concrete-type entry point the typed reducer handles call on a
// handle-cache miss instead of dispatching through the Engine interface.
// The paper's claim is that a memory-mapped reducer lookup is a handful of
// instructions; the shape here is the Go rendering of that claim:
//
//	worker   := c.Worker()                   // one field load
//	private  := worker.Local().(*mmWorker)   // one load + type check
//	slot     := private.Probe(r.page, r.slot)// bounds check + 2 indexed loads
//	hit      := slot.FastHit(r, mutable)     // 2 masked compares
//	return slot.View(), worker.ViewEpoch()   // field load + atomic load
//
// The reducer's (page, slot) pair is precomputed at registration
// (SlotsPerMap is not a power of two, so Addr.Page/Addr.Slot each cost an
// integer division) and every helper on the path is small enough for the
// compiler to inline — `make inline-check` pins that.  Everything else —
// written-bit stamping, first touches, recycled slots, retired handles,
// non-worker contexts — is outlined into lookupWordMiss so the hot shape
// stays branch-predictable and under the inlining budget.

// LookupWordFast resolves r's local view word for context c exactly like
// LookupWord, but as a concrete method: the typed handles capture *MM at
// construction and call it directly, so a steady-state miss of the handle's
// own epoch cache re-resolves without an interface dispatch.  c must be
// non-nil (the handles route nil contexts to the leftmost view themselves).
// The epoch result follows the LookupWord contract: zero means "do not
// cache".
//
// The hit counter is affordable here because LookupWordFast only runs when
// a handle's per-worker cache slot misses — a per-trace event (steal,
// merge, unregister, growth), not a per-update one.
func (e *MM) LookupWordFast(c *sched.Context, r *Reducer, mutable bool) (unsafe.Pointer, uint64) {
	w := c.Worker()
	if ws, ok := w.Local().(*mmWorker); ok {
		if s := ws.private.Probe(int(r.page), int(r.slot)); s.FastHit(ownerWord(r), mutable) {
			e.fastHits.Add(1)
			return s.View(), w.ViewEpoch()
		}
	}
	return e.lookupWordMiss(c, w, r, mutable)
}

// lookupWordMiss is the outlined slow half of LookupWordFast.  It repeats
// the probe through the general SlotAt path — the fast probe rejects an
// owned slot whose written bit is clear on a mutable access, and that case
// must stamp the bit rather than create a view — then falls through to
// lookupSlow.  Retired handles return epoch zero so the caller never caches
// the frozen leftmost value; an owned slot that is still live keeps serving
// its private view until the trace ends, exactly like LookupWord (the hit
// path checks the owner stamp, not directory validity).
func (e *MM) lookupWordMiss(c *sched.Context, w *sched.Worker, r *Reducer, mutable bool) (unsafe.Pointer, uint64) {
	e.fastMisses.Add(1)
	ws, _ := w.Local().(*mmWorker)
	if ws == nil {
		return r.UnboxView(r.Value()), 0
	}
	if e.countLookups {
		// Parity with LookupWord: an engine counting lookups counts the
		// re-resolutions that reach it (handles built while counting was on
		// bypass this path entirely and count exactly; see CountingLookups).
		e.lookups[w.ID()].Add(1)
	}
	epoch := w.ViewEpoch()
	if s := ws.private.SlotAt(r.addr); s.View() != nil && s.Owner() == ownerWord(r) {
		if mutable && !s.Written() {
			ws.private.MarkWritten(r.addr)
		}
		return s.View(), epoch
	}
	e.fastCold.Add(1)
	v := e.lookupSlow(c, w, ws, r, mutable)
	if !e.dir.Valid(r) {
		return r.UnboxView(v), 0
	}
	return r.UnboxView(v), epoch
}

// FastPathStats returns a snapshot of the devirtualized typed-lookup fast
// path's outcome counters.
func (e *MM) FastPathStats() metrics.LookupFastPathStats {
	return metrics.LookupFastPathStats{
		Hits:       e.fastHits.Load(),
		Misses:     e.fastMisses.Load(),
		ColdMisses: e.fastCold.Load(),
	}
}
