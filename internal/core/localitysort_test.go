package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// TestMergeLocalitySortCounterAndCorrectness drives one hypermerge carrying
// enough reduce pairs to cross the locality-sort threshold (512) and checks
// both effects: the pipeline counts the sort, and reordering the reduce
// partition changes nothing semantically — every reducer still folds
// current ⊗ deposited exactly once.
func TestMergeLocalitySortCounterAndCorrectness(t *testing.T) {
	eng := core.NewMM(core.MMConfig{Workers: 2})
	s := core.NewSession(2, eng)
	defer s.Close()

	const n = 600
	rs := make([]*core.Reducer, n)
	for i := range rs {
		r, err := eng.Register(sumMonoid{})
		if err != nil {
			t.Fatalf("Register: %v", err)
		}
		rs[i] = r
	}
	if err := s.Run(func(c *sched.Context) {
		// The root trace writes every reducer so the spawned child's
		// deposit meets a non-empty current slot: n matched reduce pairs,
		// zero adopts.
		for _, r := range rs {
			eng.Lookup(c, r).(*sumView).v += 1
		}
		g := c.NewGroup()
		g.Spawn(func(c *sched.Context) {
			for _, r := range rs {
				eng.Lookup(c, r).(*sumView).v += 2
			}
		})
		g.Wait()
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}

	stats := eng.MergeStats()
	if stats.LocalitySorts == 0 {
		t.Fatalf("no locality sort recorded across %d-pair merge: %+v",
			n, stats)
	}
	if stats.Reduces < n {
		t.Fatalf("Reduces = %d, want >= %d (matched pairs must reduce)",
			stats.Reduces, n)
	}
	for i, r := range rs {
		if got := r.Value().(*sumView).v; got != 3 {
			t.Fatalf("reducer %d = %d, want 3", i, got)
		}
	}
}
