package core_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hypermap"
	"repro/internal/sched"
)

// engines returns one of each reducer engine for cross-mechanism tests.
func engines(workers int) map[string]core.Engine {
	return map[string]core.Engine{
		"mm":       core.NewMM(core.MMConfig{Workers: workers}),
		"hypermap": hypermap.New(hypermap.Config{Workers: workers}),
	}
}

// TestUnregisterSlotRecyclingBothEngines covers the full recycle cycle on
// both engines: register → unregister → register reuses the slot, and the
// unregistered reducer's final value stays readable.  The directory is
// pinned to one shard so the recycled address is handed to the very next
// registration (with more shards the round-robin cursor reaches the freed
// shard within Shards() registrations).
func TestUnregisterSlotRecyclingBothEngines(t *testing.T) {
	for name, eng := range map[string]core.Engine{
		"mm":       core.NewMM(core.MMConfig{Workers: 2, DirectoryShards: 1}),
		"hypermap": hypermap.New(hypermap.Config{Workers: 2, DirectoryShards: 1}),
	} {
		t.Run(name, func(t *testing.T) {
			s := core.NewSession(2, eng)
			defer s.Close()
			r1, err := eng.Register(sumMonoid{})
			if err != nil {
				t.Fatalf("Register: %v", err)
			}
			if err := s.Run(func(c *sched.Context) {
				c.ParallelForGrain(0, 100, 1, func(c *sched.Context, i int) {
					eng.Lookup(c, r1).(*sumView).v++
				})
			}); err != nil {
				t.Fatalf("Run: %v", err)
			}
			addr := r1.Addr()
			eng.Unregister(r1)
			if !r1.Retired() {
				t.Fatal("reducer not marked retired")
			}
			// The final value must survive unregistration.
			if got := r1.Value().(*sumView).v; got != 100 {
				t.Fatalf("final value after Unregister = %d, want 100", got)
			}
			if got := eng.Lookup(nil, r1).(*sumView).v; got != 100 {
				t.Fatalf("nil-context Lookup after Unregister = %d, want 100", got)
			}
			// A new registration must reuse the recycled slot without
			// inheriting any state from the retired reducer.
			r2, err := eng.Register(sumMonoid{})
			if err != nil {
				t.Fatalf("re-Register: %v", err)
			}
			if r2.Addr() != addr {
				t.Fatalf("slot not recycled: got %d, want %d", r2.Addr(), addr)
			}
			if got := r2.Value().(*sumView).v; got != 0 {
				t.Fatalf("recycled slot leaked a value: %d", got)
			}
			if err := s.Run(func(c *sched.Context) {
				eng.Lookup(c, r2).(*sumView).v += 7
			}); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if got := r2.Value().(*sumView).v; got != 7 {
				t.Fatalf("recycled reducer value = %d, want 7", got)
			}
		})
	}
}

// TestLookupNilContextBothEngines checks that a nil context (serial code
// outside the scheduler) reads the leftmost view on both engines.
func TestLookupNilContextBothEngines(t *testing.T) {
	for name, eng := range engines(1) {
		t.Run(name, func(t *testing.T) {
			r, err := eng.Register(sumMonoid{})
			if err != nil {
				t.Fatalf("Register: %v", err)
			}
			if got := eng.Lookup(nil, r).(*sumView).v; got != 0 {
				t.Fatalf("nil-context identity lookup = %d, want 0", got)
			}
			r.SetValue(&sumView{v: 9})
			if got := eng.Lookup(nil, r).(*sumView).v; got != 9 {
				t.Fatalf("nil-context lookup = %d, want 9", got)
			}
			// Repeated nil-context lookups must not be confused by any
			// cached state from a previous parallel region.
			s := core.NewSession(1, eng)
			if err := s.Run(func(c *sched.Context) {
				eng.Lookup(c, r).(*sumView).v++
			}); err != nil {
				t.Fatalf("Run: %v", err)
			}
			s.Close()
			if got := eng.Lookup(nil, r).(*sumView).v; got != 10 {
				t.Fatalf("nil-context lookup after run = %d, want 10", got)
			}
		})
	}
}

// TestParallelMergePreservesSerialOrder drives lanes of a noncommutative
// monoid through a steal-heavy computation with the parallel merge path
// forced on (threshold 1, batch size 1, so every multi-slot hypermerge
// fans out), and checks that every lane's final string equals the serial
// left-to-right concatenation.
func TestParallelMergePreservesSerialOrder(t *testing.T) {
	const lanes = 16
	const steps = 26
	workers := 4
	eng := core.NewMM(core.MMConfig{
		Workers:                workers,
		MergeBatchSize:         1,
		ParallelMergeThreshold: 1,
	})
	s := core.NewSession(workers, eng)
	defer s.Close()
	rs := make([]*core.Reducer, lanes)
	for i := range rs {
		r, err := eng.Register(catMonoid{})
		if err != nil {
			t.Fatalf("Register: %v", err)
		}
		rs[i] = r
	}
	err := s.Run(func(c *sched.Context) {
		c.ParallelForGrain(0, lanes*steps, 1, func(c *sched.Context, i int) {
			time.Sleep(20 * time.Microsecond) // widen the steal window
			lane := i % lanes
			step := i / lanes
			eng.Lookup(c, rs[lane]).(*catView).s += string(rune('a' + step))
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := ""
	for step := 0; step < steps; step++ {
		want += string(rune('a' + step))
	}
	for lane, r := range rs {
		if got := r.Value().(*catView).s; got != want {
			t.Fatalf("lane %d reduced out of order: got %q, want %q", lane, got, want)
		}
	}
	if s.Runtime().Stats().Steals == 0 {
		t.Skip("no steals occurred; serial-order check vacuous this run")
	}
}

// TestMergePipelineCounters drives controlled trace cycles and checks the
// pipeline's accounting: every slot is merged, batches are formed, wide
// merges fan out, and bulk page movement keeps pagepool round-trips
// strictly below the number of slots merged.
func TestMergePipelineCounters(t *testing.T) {
	const n = 300 // > default parallel threshold, spans two SPA pages
	const reps = 10
	workers := 4
	eng := core.NewMM(core.MMConfig{Workers: workers})
	s := core.NewSession(workers, eng)
	defer s.Close()
	rs := make([]*core.Reducer, n)
	for i := range rs {
		rs[i], _ = eng.Register(sumMonoid{})
	}
	err := s.Run(func(c *sched.Context) {
		w := c.Worker()
		for rep := 0; rep < reps; rep++ {
			tr := eng.BeginTrace(w)
			for _, r := range rs {
				eng.Lookup(c, r).(*sumView).v++
			}
			d := eng.EndTrace(w, tr)
			eng.Merge(w, w.CurrentTrace(), d)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.Run(func(c *sched.Context) {}); err != nil {
		t.Fatalf("flush run: %v", err)
	}
	for i, r := range rs {
		if got := r.Value().(*sumView).v; got != reps {
			t.Fatalf("reducer %d = %d, want %d", i, got, reps)
		}
	}
	ms := eng.MergeStats()
	if ms.Merges < reps {
		t.Fatalf("Merges = %d, want >= %d", ms.Merges, reps)
	}
	if ms.SlotsMerged < int64(n*reps) {
		t.Fatalf("SlotsMerged = %d, want >= %d", ms.SlotsMerged, n*reps)
	}
	// First cycle adopts, the rest reduce full width.
	if ms.Adopts < n || ms.Reduces < int64(n*(reps-1)) {
		t.Fatalf("adopts=%d reduces=%d, want >= %d / %d", ms.Adopts, ms.Reduces, n, n*(reps-1))
	}
	if ms.ParallelMerges == 0 {
		t.Fatal("no merge crossed the parallel threshold")
	}
	if ms.BulkPageFetches < reps || ms.BulkPageReturns < reps {
		t.Fatalf("bulk page movement missing: fetches=%d returns=%d", ms.BulkPageFetches, ms.BulkPageReturns)
	}
	pool := eng.PoolStats()
	if got := pool.RoundTrips(); got >= ms.SlotsMerged {
		t.Fatalf("%d pagepool round-trips for %d merged slots — batching not engaged", got, ms.SlotsMerged)
	}
	if pool.RejectedDirty != 0 {
		t.Fatalf("dirty pages recycled: %+v", pool)
	}
}

// TestLookupCacheCountsHits checks that with lookup counting enabled, the
// per-context cache records hits for repeated same-reducer lookups on both
// engines, and that cached and uncached lookups agree.
func TestLookupCacheCountsHits(t *testing.T) {
	type hitCounter interface {
		CacheHits() int64
	}
	for name, eng := range engines(1) {
		t.Run(name, func(t *testing.T) {
			eng.SetCountLookups(true)
			s := core.NewSession(1, eng)
			defer s.Close()
			r, _ := eng.Register(sumMonoid{})
			const iters = 1000
			if err := s.Run(func(c *sched.Context) {
				for i := 0; i < iters; i++ {
					eng.Lookup(c, r).(*sumView).v++
				}
			}); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if got := r.Value().(*sumView).v; got != iters {
				t.Fatalf("sum = %d, want %d", got, iters)
			}
			if got := eng.Lookups(); got != iters {
				t.Fatalf("Lookups = %d, want %d", got, iters)
			}
			hc, ok := eng.(hitCounter)
			if !ok {
				t.Fatalf("%T does not expose CacheHits", eng)
			}
			// Everything after the first lookup of the trace must hit.
			if got := hc.CacheHits(); got < iters-1 {
				t.Fatalf("CacheHits = %d, want >= %d", got, iters-1)
			}
		})
	}
}

// TestMergeBatchSizesEquivalent runs the same deterministic workload under
// several batch/threshold settings and requires identical results — the
// batching must be invisible to the monoid algebra.
func TestMergeBatchSizesEquivalent(t *testing.T) {
	run := func(batch, threshold int) []string {
		const lanes = 8
		const steps = 12
		eng := core.NewMM(core.MMConfig{
			Workers:                4,
			MergeBatchSize:         batch,
			ParallelMergeThreshold: threshold,
		})
		s := core.NewSession(4, eng)
		defer s.Close()
		rs := make([]*core.Reducer, lanes)
		for i := range rs {
			rs[i], _ = eng.Register(catMonoid{})
		}
		if err := s.Run(func(c *sched.Context) {
			c.ParallelForGrain(0, lanes*steps, 1, func(c *sched.Context, i int) {
				time.Sleep(5 * time.Microsecond)
				eng.Lookup(c, rs[i%lanes]).(*catView).s += fmt.Sprint(i / lanes % 10)
			})
		}); err != nil {
			t.Fatalf("Run(batch=%d,thresh=%d): %v", batch, threshold, err)
		}
		out := make([]string, lanes)
		for i, r := range rs {
			out[i] = r.Value().(*catView).s
		}
		return out
	}
	serial := run(1, 1<<30) // parallel path disabled
	for _, cfg := range [][2]int{{1, 1}, {4, 2}, {32, 96}} {
		got := run(cfg[0], cfg[1])
		for lane := range serial {
			if got[lane] != serial[lane] {
				t.Fatalf("batch=%d threshold=%d lane %d: got %q, want %q",
					cfg[0], cfg[1], lane, got[lane], serial[lane])
			}
		}
	}
}
