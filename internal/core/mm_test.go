package core_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/spa"
	"repro/internal/tlmm"
)

// sumMonoid is a minimal integer-sum monoid for engine-level tests.
type sumMonoid struct{}

type sumView struct{ v int }

func (sumMonoid) Identity() any { return &sumView{} }
func (sumMonoid) Reduce(left, right any) any {
	l := left.(*sumView)
	l.v += right.(*sumView).v
	return l
}

// catMonoid concatenates strings; it is associative but not commutative.
type catMonoid struct{}

type catView struct{ s string }

func (catMonoid) Identity() any { return &catView{} }
func (catMonoid) Reduce(left, right any) any {
	l := left.(*catView)
	l.s += right.(*catView).s
	return l
}

func TestMMRegisterAssignsSequentialAddrs(t *testing.T) {
	e := core.NewMM(core.MMConfig{Workers: 2})
	var prev spa.Addr = -1
	for i := 0; i < 300; i++ {
		r, err := e.Register(sumMonoid{})
		if err != nil {
			t.Fatalf("Register: %v", err)
		}
		if r.Addr() <= prev {
			t.Fatalf("addresses not increasing: %d after %d", r.Addr(), prev)
		}
		prev = r.Addr()
		if r.Monoid() == nil || r.Engine() != core.Engine(e) || r.ID() == 0 {
			t.Fatal("reducer accessors incomplete")
		}
	}
	if e.Registered() != 300 {
		t.Fatalf("Registered = %d, want 300", e.Registered())
	}
}

func TestMMRegisterNilMonoidFails(t *testing.T) {
	e := core.NewMM(core.MMConfig{Workers: 1})
	if _, err := e.Register(nil); err == nil {
		t.Fatal("Register(nil) should fail")
	}
}

func TestMMUnregisterRecyclesSlots(t *testing.T) {
	// One directory shard makes the recycled address available to the very
	// next registration.
	e := core.NewMM(core.MMConfig{Workers: 1, DirectoryShards: 1})
	r1, _ := e.Register(sumMonoid{})
	r2, _ := e.Register(sumMonoid{})
	addr1 := r1.Addr()
	e.Unregister(r1)
	e.Unregister(nil) // no-op
	if e.Registered() != 1 {
		t.Fatalf("Registered = %d, want 1", e.Registered())
	}
	r3, _ := e.Register(sumMonoid{})
	if r3.Addr() != addr1 {
		t.Fatalf("slot not recycled: got %d, want %d", r3.Addr(), addr1)
	}
	if !r1.Retired() || r2.Retired() {
		t.Fatal("retired flags wrong")
	}
}

func TestMMLeftmostViewSemantics(t *testing.T) {
	e := core.NewMM(core.MMConfig{Workers: 1})
	r, _ := e.Register(sumMonoid{})
	if got := r.Value().(*sumView).v; got != 0 {
		t.Fatalf("identity leftmost = %d, want 0", got)
	}
	r.SetValue(&sumView{v: 42})
	if got := e.Lookup(nil, r).(*sumView).v; got != 42 {
		t.Fatalf("serial lookup = %d, want 42", got)
	}
}

func TestMMModelAddressSpaceBacksSPAPages(t *testing.T) {
	workers := 2
	eng := core.NewMM(core.MMConfig{Workers: workers, ModelAddressSpace: true})
	s := core.NewSession(workers, eng)
	defer s.Close()

	// Register enough reducers to require two SPA pages.
	n := spa.SlotsPerMap + 10
	reds := make([]*core.Reducer, n)
	for i := range reds {
		r, err := eng.Register(sumMonoid{})
		if err != nil {
			t.Fatalf("Register: %v", err)
		}
		reds[i] = r
	}
	if eng.RegionLayout() == nil || eng.AddressSpace() == nil {
		t.Fatal("modelled address space not initialised")
	}
	if got := eng.RegionLayout().ReducerBytesReserved(); got != 2*tlmm.PageSize {
		t.Fatalf("reserved %d bytes of TLMM reducer space, want %d", got, 2*tlmm.PageSize)
	}
	err := s.Run(func(c *sched.Context) {
		c.ParallelFor(0, n, func(c *sched.Context, i int) {
			eng.Lookup(c, reds[i]).(*sumView).v++
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, r := range reds {
		if got := r.Value().(*sumView).v; got != 1 {
			t.Fatalf("reducer %d = %d, want 1", i, got)
		}
	}
	// The root worker must have mapped both SPA pages through the modelled
	// sys_palloc / sys_pmap interface.
	st := eng.AddressSpace().Phys.Stats()
	if st.PmapCalls == 0 || st.PagesMapped < 2 {
		t.Fatalf("expected TLMM mappings, stats %+v", st)
	}
}

func TestMMRootDepositsAbsorbInSerialOrder(t *testing.T) {
	// Each run's views are folded into the leftmost view after the views
	// already there, so sequential runs concatenate in program order even
	// for a non-commutative monoid.
	eng := core.NewMM(core.MMConfig{Workers: 2})
	s := core.NewSession(2, eng)
	defer s.Close()
	r, _ := eng.Register(catMonoid{})
	for _, part := range []string{"A", "B", "C"} {
		part := part
		if err := s.Run(func(c *sched.Context) {
			c.Fork(
				func(c *sched.Context) { eng.Lookup(c, r).(*catView).s += part },
				func(c *sched.Context) { eng.Lookup(c, r).(*catView).s += strings.ToLower(part) },
			)
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	if got := r.Value().(*catView).s; got != "AaBbCc" {
		t.Fatalf("leftmost = %q, want \"AaBbCc\"", got)
	}
}

func TestMMDepositCountAndPool(t *testing.T) {
	workers := 4
	eng := core.NewMM(core.MMConfig{Workers: workers, Timing: true})
	s := core.NewSession(workers, eng)
	defer s.Close()
	r, _ := eng.Register(sumMonoid{})
	err := s.Run(func(c *sched.Context) {
		c.ParallelForGrain(0, 200, 1, func(c *sched.Context, i int) {
			time.Sleep(30 * time.Microsecond)
			eng.Lookup(c, r).(*sumView).v++
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := r.Value().(*sumView).v; got != 200 {
		t.Fatalf("sum = %d, want 200", got)
	}
	if s.Runtime().Stats().Steals == 0 {
		t.Fatal("expected steals")
	}
	ps := eng.PoolStats()
	if ps.Allocs == 0 {
		t.Fatalf("public SPA pool unused: %+v", ps)
	}
	if ps.RejectedDirty != 0 {
		t.Fatalf("non-empty SPA pages were recycled: %+v", ps)
	}
	// All private views must have been transferred out by the end of the
	// run.
	for i := 0; i < workers; i++ {
		if n := eng.WorkerPrivateViews(i); n != 0 {
			t.Fatalf("worker %d still holds %d private views after the run", i, n)
		}
	}
	ovh := eng.Overheads()
	if ovh.Total() == 0 {
		t.Fatalf("expected timed overheads, got %s", ovh)
	}
}

func TestMMMergeRootDepositNil(t *testing.T) {
	eng := core.NewMM(core.MMConfig{Workers: 1})
	eng.MergeRootDeposit(nil) // must not panic
	var d *core.MMDeposit
	eng.MergeRootDeposit(d) // typed nil
}

func TestMMName(t *testing.T) {
	eng := core.NewMM(core.MMConfig{})
	if !strings.Contains(eng.Name(), "Cilk-M") {
		t.Fatalf("Name = %q", eng.Name())
	}
}

func TestSessionAccessors(t *testing.T) {
	eng := core.NewMM(core.MMConfig{Workers: 2})
	s := core.NewSessionWithConfig(sched.Config{Workers: 2, Seed: 7}, eng)
	defer s.Close()
	if s.Workers() != 2 || s.Engine() != core.Engine(eng) || s.Runtime() == nil {
		t.Fatal("session accessors broken")
	}
}
