package core_test

import (
	"testing"
	"unsafe"

	"repro/internal/core"
	"repro/internal/hypermap"
	"repro/internal/sched"
	"repro/internal/spa"
)

// arenaSumMonoid is an untyped sum monoid that opts into arena placement:
// its view is a bare int64, fixed-size and pointer-free.
type arenaSumMonoid struct{}

func (arenaSumMonoid) Identity() any { return new(int64) }
func (arenaSumMonoid) Reduce(left, right any) any {
	l := left.(*int64)
	*l += *right.(*int64)
	return l
}
func (arenaSumMonoid) ViewBytes() uintptr        { return unsafe.Sizeof(int64(0)) }
func (arenaSumMonoid) InitView(p unsafe.Pointer) { *(*int64)(p) = 0 }

var _ core.ArenaMonoid = arenaSumMonoid{}

// TestArenaClassFor pins the size-class mapping.
func TestArenaClassFor(t *testing.T) {
	cases := []struct {
		size uintptr
		want int
	}{
		{0, 0}, {1, 0}, {8, 0}, {9, 1}, {16, 1}, {17, 2}, {32, 2},
		{33, 3}, {64, 3}, {65, 4}, {128, 4}, {129, -1}, {4096, -1},
	}
	for _, tc := range cases {
		if got := core.ArenaClassFor(tc.size); got != tc.want {
			t.Fatalf("ArenaClassFor(%d) = %d, want %d", tc.size, got, tc.want)
		}
	}
}

// TestArenaViewsRecycleThroughMergeCycle drives repeated
// steal-shaped trace cycles (begin, first-lookup every reducer, transfer,
// hypermerge) and checks that after warm-up the identity views come from
// the arena free lists — the dying side of each reduce pair funds the next
// trace's view creation, so the cycle stops allocating.
func TestArenaViewsRecycleThroughMergeCycle(t *testing.T) {
	const nred = 64
	const reps = 20
	eng := core.NewMM(core.MMConfig{Workers: 1})
	s := core.NewSession(1, eng)
	defer s.Close()
	rs := make([]*core.Reducer, nred)
	for i := range rs {
		r, err := eng.Register(arenaSumMonoid{})
		if err != nil {
			t.Fatalf("Register: %v", err)
		}
		if !r.ArenaEligible() {
			t.Fatal("arenaSumMonoid not detected as arena-eligible")
		}
		rs[i] = r
	}
	if err := s.Run(func(c *sched.Context) {
		w := c.Worker()
		for rep := 0; rep < reps; rep++ {
			tr := eng.BeginTrace(w)
			for _, r := range rs {
				*eng.Lookup(c, r).(*int64)++
			}
			d := eng.EndTrace(w, tr)
			eng.Merge(w, w.CurrentTrace(), d)
		}
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.Run(func(c *sched.Context) {}); err != nil {
		t.Fatalf("flush run: %v", err)
	}
	for i, r := range rs {
		if got := *r.Value().(*int64); got != reps {
			t.Fatalf("reducer %d = %d, want %d", i, got, reps)
		}
	}
	st := eng.ArenaStats()
	if st.Allocs == 0 {
		t.Fatal("no arena allocations recorded for an arena-eligible monoid")
	}
	if st.HeapViews != 0 {
		t.Fatalf("HeapViews = %d, want 0 (every identity view should be arena-placed)", st.HeapViews)
	}
	// Each merge kills nred deposited views, which must fund the next
	// trace's nred creations: all but the first couple of cycles hit the
	// free list.
	if st.FreeHits < int64(nred*(reps-2)) {
		t.Fatalf("FreeHits = %d, want >= %d (views not recycling)", st.FreeHits, nred*(reps-2))
	}
	if st.Frees < st.FreeHits {
		t.Fatalf("Frees = %d < FreeHits = %d: free list served more than was freed", st.Frees, st.FreeHits)
	}
	// The whole run should bump-allocate only a handful of chunks.
	if st.ChunkAllocs > 4 {
		t.Fatalf("ChunkAllocs = %d, want <= 4 (bump chunks churning)", st.ChunkAllocs)
	}
}

// TestHeapMonoidBypassesArena checks the heap fallback accounting for
// monoids that are not arena-eligible.
func TestHeapMonoidBypassesArena(t *testing.T) {
	eng := core.NewMM(core.MMConfig{Workers: 1})
	s := core.NewSession(1, eng)
	defer s.Close()
	r, _ := eng.Register(sumMonoid{}) // *sumView: plain monoid, no ArenaMonoid
	if r.ArenaEligible() {
		t.Fatal("plain monoid misdetected as arena-eligible")
	}
	if err := s.Run(func(c *sched.Context) {
		w := c.Worker()
		tr := eng.BeginTrace(w)
		eng.Lookup(c, r).(*sumView).v++
		d := eng.EndTrace(w, tr)
		eng.Merge(w, w.CurrentTrace(), d)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := eng.ArenaStats()
	if st.HeapViews == 0 {
		t.Fatal("heap-path view creation not accounted")
	}
	if st.Allocs != 0 {
		t.Fatalf("Allocs = %d, want 0 for a heap-only monoid", st.Allocs)
	}
}

// TestIdentityElisionAtEndTrace checks the transferal-time elision: a trace
// that only ever resolves views read-only (LookupWord with mutable=false)
// deposits nothing — no public pages are fetched, no pagepool round-trip
// happens, and the arena blocks are recycled immediately.
func TestIdentityElisionAtEndTrace(t *testing.T) {
	const nred = 32
	eng := core.NewMM(core.MMConfig{Workers: 1})
	s := core.NewSession(1, eng)
	defer s.Close()
	rs := make([]*core.Reducer, nred)
	for i := range rs {
		rs[i], _ = eng.Register(arenaSumMonoid{})
	}
	baseTrips := eng.PoolStats().RoundTrips()
	if err := s.Run(func(c *sched.Context) {
		w := c.Worker()
		tr := eng.BeginTrace(w)
		for _, r := range rs {
			word, _ := eng.LookupWord(c, r, 0, false)
			if got := *(*int64)(word); got != 0 {
				t.Errorf("read-only first lookup = %d, want identity 0", got)
			}
		}
		d := eng.EndTrace(w, tr)
		if d != nil {
			t.Error("all-read-only trace produced a deposit")
		}
		eng.Merge(w, w.CurrentTrace(), d)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ms := eng.MergeStats()
	if ms.IdentityElisions != nred {
		t.Fatalf("IdentityElisions = %d, want %d", ms.IdentityElisions, nred)
	}
	if ms.Reduces != 0 || ms.Adopts != 0 {
		t.Fatalf("elided views still merged: reduces=%d adopts=%d", ms.Reduces, ms.Adopts)
	}
	if got := eng.PoolStats().RoundTrips(); got != baseTrips {
		t.Fatalf("pagepool round-trips = %d, want %d (elision must avoid page traffic)", got, baseTrips)
	}
	st := eng.ArenaStats()
	if st.Frees != nred {
		t.Fatalf("arena Frees = %d, want %d (elided views recycled)", st.Frees, nred)
	}
	for i, r := range rs {
		if got := *r.Value().(*int64); got != 0 {
			t.Fatalf("reducer %d = %d, want 0 after read-only run", i, got)
		}
	}
}

// TestIdentityElisionMixedWrittenViews interleaves written and read-only
// views in one trace: only the written half is transferred and reduced,
// and the final values equal the writes.
func TestIdentityElisionMixedWrittenViews(t *testing.T) {
	const nred = 40
	const reps = 5
	eng := core.NewMM(core.MMConfig{Workers: 1})
	s := core.NewSession(1, eng)
	defer s.Close()
	rs := make([]*core.Reducer, nred)
	for i := range rs {
		rs[i], _ = eng.Register(arenaSumMonoid{})
	}
	if err := s.Run(func(c *sched.Context) {
		w := c.Worker()
		for rep := 0; rep < reps; rep++ {
			tr := eng.BeginTrace(w)
			for i, r := range rs {
				if i%2 == 0 {
					*eng.Lookup(c, r).(*int64)++ // written
				} else {
					word, _ := eng.LookupWord(c, r, 0, false) // read-only
					_ = *(*int64)(word)
				}
			}
			d := eng.EndTrace(w, tr)
			eng.Merge(w, w.CurrentTrace(), d)
		}
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.Run(func(c *sched.Context) {}); err != nil {
		t.Fatalf("flush run: %v", err)
	}
	for i, r := range rs {
		want := int64(0)
		if i%2 == 0 {
			want = reps
		}
		if got := *r.Value().(*int64); got != want {
			t.Fatalf("reducer %d = %d, want %d", i, got, want)
		}
	}
	ms := eng.MergeStats()
	if want := int64(nred / 2 * reps); ms.IdentityElisions != want {
		t.Fatalf("IdentityElisions = %d, want %d", ms.IdentityElisions, want)
	}
	if want := int64(nred / 2 * reps); ms.SlotsMerged != want {
		t.Fatalf("SlotsMerged = %d, want %d (only written views merge)", ms.SlotsMerged, want)
	}
}

// TestWriteAfterReadOnlyLookupIsMerged guards the subtle ordering case: a
// view first resolved read-only and LATER written in the same trace must
// lose its elidability — the written bit is stamped on the mutable access.
func TestWriteAfterReadOnlyLookupIsMerged(t *testing.T) {
	eng := core.NewMM(core.MMConfig{Workers: 1})
	s := core.NewSession(1, eng)
	defer s.Close()
	r, _ := eng.Register(arenaSumMonoid{})
	if err := s.Run(func(c *sched.Context) {
		w := c.Worker()
		tr := eng.BeginTrace(w)
		word, _ := eng.LookupWord(c, r, 0, false) // read-only first touch
		_ = *(*int64)(word)
		*eng.Lookup(c, r).(*int64) += 7 // then a write
		d := eng.EndTrace(w, tr)
		if d == nil {
			t.Error("written view elided")
		}
		eng.Merge(w, w.CurrentTrace(), d)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.Run(func(c *sched.Context) {}); err != nil {
		t.Fatalf("flush run: %v", err)
	}
	if got := *r.Value().(*int64); got != 7 {
		t.Fatalf("value = %d, want 7", got)
	}
	if ms := eng.MergeStats(); ms.IdentityElisions != 0 {
		t.Fatalf("IdentityElisions = %d, want 0", ms.IdentityElisions)
	}
}

// TestRootDepositElidesUnwrittenViews checks MergeRootDeposit's elision: a
// root trace that only reads a reducer folds nothing into the leftmost
// view.
func TestRootDepositElidesUnwrittenViews(t *testing.T) {
	eng := core.NewMM(core.MMConfig{Workers: 1})
	s := core.NewSession(1, eng)
	defer s.Close()
	written, _ := eng.Register(arenaSumMonoid{})
	readOnly, _ := eng.Register(arenaSumMonoid{})
	if err := s.Run(func(c *sched.Context) {
		*eng.Lookup(c, written).(*int64) += 3
		word, _ := eng.LookupWord(c, readOnly, 0, false)
		_ = *(*int64)(word)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := *written.Value().(*int64); got != 3 {
		t.Fatalf("written reducer = %d, want 3", got)
	}
	if got := *readOnly.Value().(*int64); got != 0 {
		t.Fatalf("read-only reducer = %d, want 0", got)
	}
	if ms := eng.MergeStats(); ms.IdentityElisions == 0 {
		t.Fatal("root deposit did not elide the unwritten view")
	}
}

// TestLogOverflowHypermergeBothEngines covers the SPA log-overflow path at
// the engine level: a single trace inserts more views into one SPA map page
// than the 120-entry log can describe, so transferal and the hypermerge
// must fall back to the full-array scan — and still fold every view, on
// both engines.  DirectoryShards is pinned to 1 so the first 248 reducers
// share SPA page 0.
func TestLogOverflowHypermergeBothEngines(t *testing.T) {
	const nred = spa.LogCapacity + 80 // 200 > 120, all on page 0
	const reps = 3
	for name, eng := range map[string]core.Engine{
		"mm":       core.NewMM(core.MMConfig{Workers: 1, DirectoryShards: 1}),
		"hypermap": hypermap.New(hypermap.Config{Workers: 1, DirectoryShards: 1}),
	} {
		t.Run(name, func(t *testing.T) {
			s := core.NewSession(1, eng)
			defer s.Close()
			rs := make([]*core.Reducer, nred)
			for i := range rs {
				r, err := eng.Register(catMonoid{})
				if err != nil {
					t.Fatalf("Register: %v", err)
				}
				if r.Addr().Page() != 0 {
					t.Fatalf("reducer %d landed on page %d, want 0 (need one overflowing map)", i, r.Addr().Page())
				}
				rs[i] = r
			}
			if err := s.Run(func(c *sched.Context) {
				w := c.Worker()
				for rep := 0; rep < reps; rep++ {
					tr := eng.BeginTrace(w)
					for i, r := range rs {
						eng.Lookup(c, r).(*catView).s += string(rune('a' + (rep+i)%26))
					}
					d := eng.EndTrace(w, tr)
					eng.Merge(w, w.CurrentTrace(), d)
				}
			}); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := s.Run(func(c *sched.Context) {}); err != nil {
				t.Fatalf("flush run: %v", err)
			}
			for i, r := range rs {
				want := ""
				for rep := 0; rep < reps; rep++ {
					want += string(rune('a' + (rep+i)%26))
				}
				if got := r.Value().(*catView).s; got != want {
					t.Fatalf("reducer %d = %q, want %q (overflowed map merged wrong)", i, got, want)
				}
			}
		})
	}
}

// TestEnsureMappedGrowthUnderRegistrationChurn exercises the one-step
// growth of the worker's mapped-page bitmap while registrations churn the
// directory: pages are touched out of order (recycled low addresses
// interleaved with fresh high ones) and each worker must map each touched
// page exactly once.  The TLMM accounting (MappedPages, PmapCalls) pins
// the invariant.
func TestEnsureMappedGrowthUnderRegistrationChurn(t *testing.T) {
	const pages = 5
	eng := core.NewMM(core.MMConfig{Workers: 1, DirectoryShards: 1, ModelAddressSpace: true})
	s := core.NewSession(1, eng)
	defer s.Close()

	// Fill several SPA pages with registrations, churning as we go: every
	// few registrations, unregister one of the earlier reducers and
	// re-register (the recycled low address will be touched after much
	// higher pages have already been mapped).
	var rs []*core.Reducer
	for i := 0; i < pages*spa.SlotsPerMap; i++ {
		r, err := eng.Register(arenaSumMonoid{})
		if err != nil {
			t.Fatalf("Register #%d: %v", i, err)
		}
		rs = append(rs, r)
		if i%97 == 13 {
			victim := rs[i/3]
			eng.Unregister(victim)
			r2, err := eng.Register(arenaSumMonoid{})
			if err != nil {
				t.Fatalf("churn re-register: %v", err)
			}
			rs[i/3] = r2
		}
	}
	// Touch the reducers high-page-first so the first ensureMapped call
	// must grow the bitmap to its full span in one step, then verify every
	// page and every recycled low address still resolves.
	if err := s.Run(func(c *sched.Context) {
		for i := len(rs) - 1; i >= 0; i-- {
			*eng.Lookup(c, rs[i]).(*int64)++
		}
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, r := range rs {
		if got := *r.Value().(*int64); got != 1 {
			t.Fatalf("reducer %d = %d, want 1", i, got)
		}
	}
	if got := eng.WorkerMappedPages(0); got != pages {
		t.Fatalf("worker 0 mapped %d pages, want %d", got, pages)
	}
	// Exactly one sys_pmap call per (worker, page): churn must not remap.
	if st := eng.AddressSpace().Phys.Stats(); st.PmapCalls != pages {
		t.Fatalf("PmapCalls = %d, want %d (pages remapped under churn)", st.PmapCalls, pages)
	}
}

// TestMergeIntoReadOnlySlotSurvivesElision is the regression test for the
// subtlest elision interaction: the parent trace resolves a reducer
// read-only (its slot is unwritten), a nested written trace merges its
// deposit in, and the common in-place reduce keeps the parent's view
// pointer.  The surviving slot now carries the child's contribution, so
// the merge must stamp its written bit — otherwise the parent's EndTrace
// elision would recycle the merged value and the update would be lost.
func TestMergeIntoReadOnlySlotSurvivesElision(t *testing.T) {
	eng := core.NewMM(core.MMConfig{Workers: 1})
	s := core.NewSession(1, eng)
	defer s.Close()
	r, _ := eng.Register(arenaSumMonoid{})
	if err := s.Run(func(c *sched.Context) {
		w := c.Worker()
		outer := eng.BeginTrace(w)
		word, _ := eng.LookupWord(c, r, 0, false) // read-only parent view
		if got := *(*int64)(word); got != 0 {
			t.Errorf("parent read-only view = %d, want 0", got)
		}
		// A stolen-child-shaped nested trace that writes the reducer.
		inner := eng.BeginTrace(w)
		*eng.Lookup(c, r).(*int64) += 5
		d := eng.EndTrace(w, inner)
		eng.Merge(w, w.CurrentTrace(), d) // folds into the outer trace's slot
		d2 := eng.EndTrace(w, outer)
		if d2 == nil {
			t.Error("merged view was elided at the parent trace end")
		}
		eng.Merge(w, w.CurrentTrace(), d2)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.Run(func(c *sched.Context) {}); err != nil {
		t.Fatalf("flush run: %v", err)
	}
	if got := *r.Value().(*int64); got != 5 {
		t.Fatalf("value = %d, want 5 (child contribution lost to elision)", got)
	}
}
