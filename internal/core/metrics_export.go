package core

import "repro/internal/metrics"

// engineLabel is the engine label value the memory-mapped engine exports
// under.
const engineLabel = "mm"

// SampleMetrics implements metrics.Source: it emits the engine's live
// counters as exporter samples.  Every value comes from an atomic load —
// the merge pipeline's padded counters, the per-worker arena atomics, the
// page pool's internal accounting and the directory shard counters — so
// sampling is safe at any moment of a run and never blocks a worker.
func (e *MM) SampleMetrics(emit func(metrics.MetricSample)) {
	ms := e.MergeStats()
	metrics.EmitMergePipeline(emit, engineLabel, ms)
	metrics.EmitElisions(emit, engineLabel, ms.IdentityElisions, ms.SlotsMerged)
	metrics.EmitLookups(emit, engineLabel, e.Lookups(), ms.CacheHits)
	metrics.EmitLookupFastPath(emit, engineLabel, e.FastPathStats())
	metrics.EmitArena(emit, engineLabel, e.ArenaStats())
	metrics.EmitDirectory(emit, engineLabel, e.DirectoryStats())

	ps := e.PoolStats()
	counter := func(name, help string, v int64) {
		emit(metrics.MetricSample{Name: name, Help: help, Kind: metrics.KindCounter,
			LabelKey: "engine", LabelValue: engineLabel, Value: float64(v)})
	}
	gauge := func(name, help string, v float64) {
		emit(metrics.MetricSample{Name: name, Help: help, Kind: metrics.KindGauge,
			LabelKey: "engine", LabelValue: engineLabel, Value: v})
	}
	counter("cilkm_pagepool_round_trips_total", "Page-pool lock round-trips (bulk operations count once).", ps.RoundTrips())
	counter("cilkm_pagepool_allocs_total", "SPA pages handed out by the page pool.", ps.Allocs)
	counter("cilkm_pagepool_frees_total", "SPA pages returned to the page pool.", ps.Frees)
	counter("cilkm_pagepool_fresh_pages_total", "Pages created because every pool was empty.", ps.FreshPages)
	counter("cilkm_pagepool_local_hits_total", "Allocations served by a worker's local pool.", ps.LocalHits)
	counter("cilkm_pagepool_global_hits_total", "Allocations served by the global pool.", ps.GlobalHits)
	gauge("cilkm_pagepool_outstanding_pages", "Pages currently checked out of the pool.", float64(ps.Outstanding()))

	// The live tuning knobs: constant for a fixed-configuration engine,
	// moving when the adaptive tuner is driving them.
	batch, threshold, adaptive, retunes := e.MergeTuning()
	gauge("cilkm_merge_batch_size", "Live hypermerge batch size (reduce pairs per batch).", float64(batch))
	gauge("cilkm_parallel_merge_threshold", "Live fan-out threshold (reduce pairs per hypermerge).", float64(threshold))
	if adaptive {
		counter("cilkm_merge_retunes_total", "Adaptive-tuner retune events.", retunes)
	}
}
