package core

import (
	"context"
	"sync"
	"unsafe"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/spa"
)

// Monoid defines a reducer's algebra: an associative binary operation
// Reduce with identity Identity.  Reduce may update and return its left
// argument in place; the runtime always passes the serially-earlier view on
// the left, so in-place reduction preserves the serial semantics.
//
// Views are stored word-packed: the engines keep only the data word of the
// view's interface value in their 16-byte SPA slots (or hypermap entries)
// and re-box it with a type word captured at registration.  Identity and
// Reduce must therefore produce non-nil views of one concrete type for the
// lifetime of the reducer; a monoid that changes its view type panics at
// the first unbox (see Reducer.UnboxView).
type Monoid interface {
	// Identity allocates a fresh identity view.
	Identity() any
	// Reduce combines two views, with left serially preceding right, and
	// returns the combined view (commonly left, updated in place).
	Reduce(left, right any) any
}

// ArenaMonoid is an optional extension of Monoid for monoids whose views
// are fixed-size and pointer-free.  The memory-mapping engine places such
// identity views inside the per-worker view arena instead of calling the
// heap allocator, and recycles them when the hypermerge folds them away —
// making the post-steal first lookup allocation-free.  The typed reducer
// adapter implements it automatically for eligible view types (see
// reducers.AdaptMonoid); hand-written untyped monoids may implement it
// directly.
//
// InitView must fully overwrite the ViewBytes() bytes at p with a complete
// identity view: p is 8-byte-aligned arena memory that may still hold a
// dead prior view.  ViewBytes must not exceed ArenaClassFor's largest
// class; larger monoids simply remain on the heap path.
type ArenaMonoid interface {
	Monoid
	// ViewBytes returns the exact byte size of one view.
	ViewBytes() uintptr
	// InitView constructs an identity view in place at p.
	InitView(p unsafe.Pointer)
}

// Engine is the interface both reducer mechanisms implement.  It extends
// the scheduler's ReducerRuntime hooks with registration, lookup and the
// instrumentation needed to reproduce the paper's overhead measurements.
type Engine interface {
	sched.ReducerRuntime

	// Register creates a reducer backed by the given monoid.  The
	// reducer's leftmost view is initialised to the monoid's identity.
	// Register is safe to call concurrently, including from inside
	// parallel regions.
	Register(m Monoid) (*Reducer, error)
	// Unregister retires a reducer, recycling its slot address.  The
	// reducer's leftmost view (its value as of the unregister) remains
	// readable; local views still in flight inside a running parallel
	// region are dropped rather than merged (a worker that already holds
	// such a view may keep reading it until its trace ends, but no other
	// reducer — in particular none registered at the recycled address —
	// can ever observe it).  Unregister is safe to call concurrently; a
	// second Unregister of the same handle is a no-op even after the slot
	// has been recycled to a new reducer.
	Unregister(r *Reducer)
	// Registered reports the number of live reducers.  Both engines answer
	// from the directory's atomic live counter, without taking a lock.
	Registered() int
	// Lookup returns the local view of r for the execution context c.
	// With a nil context (serial code outside the scheduler) it returns
	// the leftmost view.
	Lookup(c *sched.Context, r *Reducer) any
	// LookupCached is the entry point behind the typed reducer handles'
	// per-context view caches (reducers.Handle).  It resolves the local
	// view exactly like Lookup and additionally returns the worker view
	// epoch the resolution is valid for, sampled before the lookup so a
	// concurrent invalidation can only make the caller conservatively
	// re-resolve.  prevEpoch is the epoch of the caller's invalidated
	// cache entry (zero on first touch); engines accept it for
	// diagnostics and future slot-generation checks.  A newEpoch of zero
	// tells the caller not to cache the returned view — engines return it
	// for nil contexts and for retired handles, whose frozen leftmost
	// value must be re-read on every access, composing the cache with the
	// directory's slot recycling and stale-view drops.
	LookupCached(c *sched.Context, r *Reducer, prevEpoch uint64) (view any, newEpoch uint64)
	// LookupWord is the word-level twin of LookupCached: it resolves the
	// local view's packed single-word representation (the slot word;
	// reassemble the interface value with Reducer.BoxView, or convert
	// directly to the typed pointer).  The typed reducer handles use it so
	// a steady-state typed update never constructs an interface value.
	// mutable distinguishes accesses that may mutate the view (Handle.View)
	// from read-only peeks (Handle.ReadView): a mutable resolution sets the
	// slot's written bit, which exempts the view from the merge pipeline's
	// identity-view elision.  The epoch result follows the LookupCached
	// contract (zero means "do not cache").
	LookupWord(c *sched.Context, r *Reducer, prevEpoch uint64, mutable bool) (word unsafe.Pointer, newEpoch uint64)
	// MergeRootDeposit folds the deposit returned by Runtime.Run into the
	// registered reducers' leftmost views.
	MergeRootDeposit(d sched.Deposit)
	// Quiescent verifies that no completed, failed, or cancelled job left
	// engine resources in flight: no hypermerge still executing, no pool
	// pages outstanding, no worker holding private views, and the view-
	// arena accounting balanced.  It must only be called between jobs; it
	// reads owner-local counters that are unsynchronised by design.  A
	// nil result is the engine's quiescence guarantee after failure
	// containment; a non-nil error describes the first leak found.
	Quiescent() error

	// Workers reports how many per-worker lookup structures the engine
	// currently maintains (the construction-time worker count, grown if a
	// larger runtime attaches).  Typed reducer handles size their
	// per-worker view caches from it.
	Workers() int

	// Overheads returns the accumulated reduce-overhead breakdown.
	Overheads() metrics.Breakdown
	// ResetOverheads zeroes the overhead counters.
	ResetOverheads()
	// SetTiming enables or disables duration measurement inside the
	// overhead instrumentation (event counts are always kept).
	SetTiming(on bool)
	// SetCountLookups enables or disables lookup counting, which is used
	// by the PBFS experiment to report the number of reducer lookups.
	// Typed reducer handles snapshot the flag at construction (see
	// CountingLookups), so enabling counting after handles exist leaves
	// those handles on their uncounted cached path — enable counting
	// before creating the reducers whose lookups should be counted.
	SetCountLookups(on bool)
	// CountingLookups reports whether lookup counting is enabled.  Typed
	// reducer handles snapshot it at construction: a handle built on a
	// counting engine routes every access through the engine's counted
	// Lookup instead of its own cache, so instrumented runs keep exact
	// lookup counts.  Enable counting before creating handles.
	CountingLookups() bool
	// Lookups reports the number of lookups counted since the last reset.
	Lookups() int64
	// Name identifies the mechanism in experiment output.
	Name() string
}

// Reducer is one reducer hyperobject.  The same Reducer value is shared by
// all workers; what differs per worker is the local view the engine hands
// out at Lookup time.
type Reducer struct {
	id   uint64
	addr spa.Addr
	// page and slot are addr's decomposed SPA coordinates (addr.Page() and
	// addr.Slot()), precomputed at registration.  SlotsPerMap is not a power
	// of two, so the decomposition costs an integer division and a modulo;
	// hoisting it here means the lookup fast path probes the worker's
	// private maps with two plain array indexes (see MM.LookupWordFast).
	page, slot int32
	// slotEpoch is the incarnation of the directory slot this reducer was
	// registered under.  The slot's epoch is bumped on every unregister, so
	// a handle kept across Unregister can never pass Directory.Valid once
	// its address has been recycled (see directory.go).
	slotEpoch uint64
	monoid    Monoid
	eng       Engine

	// viewType is the type word shared by every view of this reducer,
	// captured at registration from the identity view; BoxView pairs it
	// with a stored slot word to reassemble the interface value.
	viewType unsafe.Pointer
	// arena is non-nil when the monoid supports in-place identity
	// construction (ArenaMonoid) and its views fit an arena size class;
	// arenaClass is that class, or -1 for the heap path.
	arena      ArenaMonoid
	arenaClass int8

	mu       sync.Mutex
	leftmost any
	retired  bool
}

// ID returns the reducer's unique identifier within its engine.
func (r *Reducer) ID() uint64 { return r.id }

// Addr returns the reducer's TLMM slot address (its tlmm_addr): the SPA
// view-array slot that holds the reducer's view pointer in every worker's
// TLMM region.
func (r *Reducer) Addr() spa.Addr { return r.addr }

// Monoid returns the reducer's monoid.
func (r *Reducer) Monoid() Monoid { return r.monoid }

// ArenaEligible reports whether the reducer's identity views are placed in
// the per-worker view arenas (fixed-size, pointer-free monoid) rather than
// heap-allocated.
func (r *Reducer) ArenaEligible() bool { return r.arenaClass >= 0 }

// Engine returns the engine the reducer is registered with.
func (r *Reducer) Engine() Engine { return r.eng }

// Value returns the reducer's leftmost view: outside a parallel region this
// is the reducer's current (final) value.
func (r *Reducer) Value() any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leftmost
}

// SetValue replaces the leftmost view.  It is intended for initialising a
// reducer before a parallel region.
func (r *Reducer) SetValue(v any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.leftmost = v
}

// Retired reports whether the reducer has been unregistered.
func (r *Reducer) Retired() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retired
}

// absorb folds a deposited view into the leftmost view in serial order
// (leftmost ⊗ view).
func (r *Reducer) absorb(view any) {
	r.mu.Lock()
	r.leftmost = r.monoid.Reduce(r.leftmost, view)
	r.mu.Unlock()
}

func (r *Reducer) markRetired() {
	r.mu.Lock()
	r.retired = true
	r.mu.Unlock()
}

// WithLeftmost runs f with the reducer's leftmost view while holding the
// reducer's lock.  It is the defined read path for non-worker goroutines
// into a live session: merges mutate the leftmost view in place under the
// same lock, so a value Value() returns could change under the caller,
// while a copy taken inside f is a consistent snapshot.  f must return
// without blocking and must not call back into the reducer or the engine.
func (r *Reducer) WithLeftmost(f func(view any)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f(r.leftmost)
}

// AbsorbView folds a deposited view into the reducer's leftmost view in
// serial order (leftmost ⊗ view).  It is exported for Engine
// implementations outside this package.
func AbsorbView(r *Reducer, view any) { r.absorb(view) }

// MarkRetired marks the reducer as unregistered.  It is exported for Engine
// implementations outside this package.
func MarkRetired(r *Reducer) { r.markRetired() }

// Session couples a scheduler runtime with a reducer engine so that callers
// get the complete "run a parallel computation with reducers" workflow in
// one object: views produced by the root computation are merged into the
// reducers' leftmost views when Run returns.
type Session struct {
	rt  *sched.Runtime
	eng Engine
}

// NewSession creates a runtime with the given number of workers wired to
// the given engine.
func NewSession(workers int, eng Engine) *Session {
	rt := sched.New(sched.Config{Workers: workers, Reducers: eng})
	return &Session{rt: rt, eng: eng}
}

// NewSessionWithConfig creates a session from an explicit scheduler
// configuration; cfg.Reducers is overwritten with eng.
func NewSessionWithConfig(cfg sched.Config, eng Engine) *Session {
	cfg.Reducers = eng
	rt := sched.New(cfg)
	return &Session{rt: rt, eng: eng}
}

// Runtime returns the underlying scheduler runtime.
func (s *Session) Runtime() *sched.Runtime { return s.rt }

// Engine returns the reducer engine.
func (s *Session) Engine() Engine { return s.eng }

// Workers returns the number of workers.
func (s *Session) Workers() int { return s.rt.Workers() }

// Run executes fn on the worker pool, waits for completion, and merges the
// root computation's views into the reducers' leftmost views.
func (s *Session) Run(fn func(*sched.Context)) error {
	d, err := s.rt.Run(fn)
	if err != nil {
		return err
	}
	s.eng.MergeRootDeposit(d)
	return nil
}

// RunErr is Run with panic containment: a panic inside fn does not re-panic
// on the caller's goroutine but is returned as a *sched.PanicError carrying
// the original panic value and the captured stack.  Whatever the outcome,
// the root deposit (if any) is settled — merged on success, discarded on
// failure — so the engine is quiescent and reusable afterwards.
func (s *Session) RunErr(fn func(*sched.Context)) error {
	return s.RunContext(context.Background(), fn)
}

// RunContext is RunErr with cancellation: when ctx is cancelled the running
// job is aborted at its next fork, spawn, steal, or merge checkpoint and
// RunContext returns ctx.Err().  An aborted or failed job's partial root
// deposit is discarded, never merged, so the reducers' leftmost views only
// ever observe complete jobs.
func (s *Session) RunContext(ctx context.Context, fn func(*sched.Context)) error {
	d, err := s.rt.RunContext(ctx, fn)
	if err != nil {
		s.eng.Discard(nil, d)
		return err
	}
	s.eng.MergeRootDeposit(d)
	return nil
}

// Quiescent verifies that neither the scheduler nor the engine has work or
// resources in flight; see Runtime.Quiescent and Engine.Quiescent.  Call it
// only between jobs.
func (s *Session) Quiescent() error {
	if err := s.rt.Quiescent(); err != nil {
		return err
	}
	return s.eng.Quiescent()
}

// Close shuts down the worker pool.
func (s *Session) Close() { s.rt.Close() }
