package core

import "testing"

// tuneEngine builds an adaptive engine without starting a scheduler: the
// tuner only reads the pipeline counters and the worker count, so the test
// drives it by pumping the counters directly.
func tuneEngine(t *testing.T, cfg MMConfig) *MM {
	t.Helper()
	cfg.AdaptiveMerge = true
	return NewMM(cfg)
}

func TestTunerSkipsUntilWindowFull(t *testing.T) {
	e := tuneEngine(t, MMConfig{Workers: 4})
	e.mergePipe.Merges.Add(mergeTuneWindow - 1)
	e.mergePipe.Reduces.Add(10_000)
	e.tuner.maybeRetune(e)
	if n := e.tuner.retunes.Load(); n != 0 {
		t.Fatalf("retunes = %d before the window filled", n)
	}
}

func TestTunerBatchTracksReducesPerMerge(t *testing.T) {
	e := tuneEngine(t, MMConfig{Workers: 4})
	// 32 merges x 1024 reduce pairs each: avg/(2P) = 1024/8 = 128,
	// already a power of two, inside the clamps.
	e.mergePipe.Merges.Add(mergeTuneWindow)
	e.mergePipe.Reduces.Add(mergeTuneWindow * 1024)
	e.tuner.maybeRetune(e)
	batch, threshold, adaptive, retunes := e.MergeTuning()
	if !adaptive || retunes != 1 {
		t.Fatalf("adaptive=%v retunes=%d, want one retune", adaptive, retunes)
	}
	if batch != 128 {
		t.Errorf("batch = %d, want 128 (1024 pairs / 2x4 workers)", batch)
	}
	if threshold != 4*128 {
		t.Errorf("threshold = %d, want 4x batch = 512", threshold)
	}
}

func TestTunerClampsTinyAndHugeMerges(t *testing.T) {
	e := tuneEngine(t, MMConfig{Workers: 4})
	// Tiny merges: avg 2 pairs -> floor clamp.
	e.mergePipe.Merges.Add(mergeTuneWindow)
	e.mergePipe.Reduces.Add(mergeTuneWindow * 2)
	e.tuner.maybeRetune(e)
	if batch, threshold, _, _ := e.MergeTuning(); batch != minMergeBatch || threshold != minParallelThreshold {
		t.Errorf("tiny merges: batch=%d threshold=%d, want floor clamps %d/%d",
			batch, threshold, minMergeBatch, minParallelThreshold)
	}
	// Huge merges: avg 1M pairs -> ceiling clamp.
	e.mergePipe.Merges.Add(mergeTuneWindow)
	e.mergePipe.Reduces.Add(mergeTuneWindow * 1_000_000)
	e.tuner.maybeRetune(e)
	if batch, _, _, _ := e.MergeTuning(); batch != maxMergeBatch {
		t.Errorf("huge merges: batch=%d, want ceiling clamp %d", batch, maxMergeBatch)
	}
}

func TestTunerElisionBiasDoublesThreshold(t *testing.T) {
	e := tuneEngine(t, MMConfig{Workers: 4})
	// avg 1024 pairs/merge -> batch 128, base threshold 512; elision rate
	// 0.75 (> tunerElisionBias) doubles it.
	e.mergePipe.Merges.Add(mergeTuneWindow)
	e.mergePipe.Reduces.Add(mergeTuneWindow * 1024)
	e.mergePipe.IdentityElisions.Add(mergeTuneWindow * 1024 * 3)
	e.tuner.maybeRetune(e)
	if _, threshold, _, _ := e.MergeTuning(); threshold != 2*4*128 {
		t.Errorf("threshold = %d, want elision-biased 1024", threshold)
	}
}

func TestTunerRespectsFixedKnobs(t *testing.T) {
	e := tuneEngine(t, MMConfig{Workers: 4, MergeBatchSize: 48, ParallelMergeThreshold: 200})
	e.mergePipe.Merges.Add(mergeTuneWindow)
	e.mergePipe.Reduces.Add(mergeTuneWindow * 1024)
	e.tuner.maybeRetune(e)
	batch, threshold, _, retunes := e.MergeTuning()
	if batch != 48 || threshold != 200 {
		t.Errorf("fixed knobs moved: batch=%d threshold=%d, want 48/200", batch, threshold)
	}
	if retunes != 1 {
		t.Errorf("retunes = %d, want the retune to still count", retunes)
	}
}

func TestTunerWindowDeltasNotCumulative(t *testing.T) {
	e := tuneEngine(t, MMConfig{Workers: 4})
	// First window: huge merges push the batch to the ceiling.
	e.mergePipe.Merges.Add(mergeTuneWindow)
	e.mergePipe.Reduces.Add(mergeTuneWindow * 1_000_000)
	e.tuner.maybeRetune(e)
	// Second window: tiny merges.  If the tuner used cumulative counters
	// instead of deltas the stale first window would dominate.
	e.mergePipe.Merges.Add(mergeTuneWindow)
	e.mergePipe.Reduces.Add(mergeTuneWindow * 2)
	e.tuner.maybeRetune(e)
	if batch, _, _, retunes := e.MergeTuning(); batch != minMergeBatch || retunes != 2 {
		t.Errorf("batch=%d retunes=%d, want window-local floor clamp after 2 retunes", batch, retunes)
	}
}
