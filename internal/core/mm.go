package core

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/pagepool"
	"repro/internal/sched"
	"repro/internal/spa"
	"repro/internal/tlmm"
)

// MMConfig configures the memory-mapping engine.
type MMConfig struct {
	// Workers sizes the per-worker structures; it must match the number of
	// workers in the runtime the engine is attached to.
	Workers int
	// Timing enables duration measurement in the overhead instrumentation.
	Timing bool
	// CountLookups enables lookup counting (used by the PBFS experiment).
	CountLookups bool
	// ModelAddressSpace, when true, backs every SPA page with a page of
	// the simulated TLMM address space: reducer slot addresses are
	// reserved in the TLMM region layout and each worker maps a physical
	// page (via the modelled sys_palloc/sys_pmap) the first time it
	// touches a page index.  This exercises the substrate the paper's
	// kernel modification provides; disable it for the tightest possible
	// lookup fast path.
	ModelAddressSpace bool
	// DirectoryShards is the number of reducer-directory shards; it is
	// rounded up to a power of two.  Zero sizes the directory from
	// Workers.  Tests pin it to 1 to make slot recycling deterministic.
	DirectoryShards int
	// MergeBatchSize is the number of occupied SPA slots grouped into one
	// unit of hypermerge work.  Zero selects the default (32).
	MergeBatchSize int
	// ParallelMergeThreshold is the number of reduce pairs a single
	// hypermerge must carry before its batches are fanned out through the
	// scheduler as forked merge tasks; below it the owner folds the slots
	// serially.  Zero selects the default (96); set it very large to keep
	// every merge serial.
	ParallelMergeThreshold int
	// AdaptiveMerge enables the merge tuner: the engine re-derives
	// MergeBatchSize and ParallelMergeThreshold at trace boundaries from
	// the live pipeline signals (average reduce pairs per hypermerge,
	// identity-elision rate) instead of keeping the constructor values for
	// the engine's lifetime.  A knob explicitly set in this config is an
	// override the tuner never touches, so fixed and adaptive operation
	// compose per knob.  Tuning changes only how reduce batches are
	// partitioned and fanned out, never the per-reducer reduce order, so
	// results are bit-identical with tuning on or off (the noncommutative
	// equivalence suites run under both).
	AdaptiveMerge bool
}

// Default batching parameters of the hypermerge pipeline.
const (
	defaultMergeBatchSize         = 32
	defaultParallelMergeThreshold = 96
)

// MM is the memory-mapping reducer engine (the paper's Cilk-M mechanism).
type MM struct {
	cfg MMConfig
	rec *metrics.Recorder
	// pool recycles public SPA pages used for view transferal.
	pool *pagepool.Pool[*spa.Map]

	// Modelled operating-system state (nil unless ModelAddressSpace).
	aspace *tlmm.AddressSpace
	layout *tlmm.RegionLayout
	// pageTable is the RCU-published map from SPA page index to reserved
	// TLMM base address (nil unless ModelAddressSpace).  It is grown by
	// the directory's serialised OnGrow hook and read lock-free by every
	// worker mapping a page, so address-space growth never blocks lookups
	// or other registrations.
	pageTable *tlmm.RegionPageTable

	// dir is the sharded reducer directory: Register, Unregister,
	// Registered and the root merge's reducer resolution all run on its
	// lock-free paths.
	dir *Directory

	// initMu guards attach-time bookkeeping only (the worker list and the
	// per-worker counter resize in WorkerInit); no steady-state path takes
	// it.
	initMu sync.Mutex
	// workers is the RCU-published list of attached per-worker states, so
	// Unregister and region growth can publish view invalidations without
	// a lock.
	workers atomic.Pointer[[]*mmWorker]

	countLookups bool
	// lookups holds one cache-line-padded counter per worker, indexed
	// directly by worker ID.  It is sized from the engine config at
	// construction and re-sized in WorkerInit when a runtime with more
	// workers attaches, so counts are never aliased across workers.
	lookups []metrics.PaddedCounter
	// cacheHits counts per-context lookup-cache hits per worker; like
	// lookups it is only maintained while lookup counting is enabled, so
	// the cached fast path stays free of atomic writes otherwise.
	cacheHits []metrics.PaddedCounter

	// mergeBatch and parallelThreshold are the live batching knobs.  They
	// are atomics because the adaptive merge tuner (when enabled) retunes
	// them concurrently with merges reading them; Merge loads each knob
	// once per hypermerge, so one merge never observes a mid-flight mix.
	mergeBatch        atomic.Int64
	parallelThreshold atomic.Int64
	// tuner adapts the batching knobs from live pipeline signals; nil
	// unless cfg.AdaptiveMerge.
	tuner *mergeTuner
	// nworkers mirrors len(lookups) for lock-free readers (the tuner and
	// the metrics sampler); updated under initMu in WorkerInit.
	nworkers atomic.Int64
	// mergePipe aggregates the hypermerge pipeline counters.
	mergePipe metrics.MergePipeline

	// fastHits, fastMisses and fastCold count the devirtualized typed-lookup
	// fast path's outcomes (see lookupfast.go).  They tick only on
	// handle-cache misses, never on the single-deref hit path, so one shared
	// padded counter per outcome is contention-free enough.
	fastHits   metrics.PaddedCounter
	fastMisses metrics.PaddedCounter
	fastCold   metrics.PaddedCounter

	// mergeInflight counts hypermerges (Merge and MergeRootDeposit calls)
	// currently executing; part of the engine's quiescence invariant.
	mergeInflight atomic.Int64
	// arenaRootReleased counts arena-carved view blocks released on
	// non-worker goroutines (the root merge and root-side discards), where
	// no arena is available to recycle into: the blocks fall to the garbage
	// collector, and this counter closes the arena live-view accounting —
	// live = Σ(allocs − frees) − arenaRootReleased, zero at quiescence.
	arenaRootReleased atomic.Int64
}

// mmWorker is the per-worker state of the memory-mapping engine: the
// worker's private SPA maps (its TLMM reducer area), the worker's view
// arena, and, when the address space is modelled, the worker's thread VM
// and the set of SPA page indices it has backed with physical pages.
type mmWorker struct {
	eng     *MM
	w       *sched.Worker
	private *spa.MapSet
	// spare caches an emptied map set for reuse by the next BeginTrace.
	spare *spa.MapSet
	// arena carves identity views for arena-eligible monoids and recycles
	// the views the hypermerge folds away.  Owner-goroutine only.
	arena viewArena
	vm    *tlmm.ThreadVM
	// mapped[i] reports whether SPA page index i is backed by a TLMM page
	// in this worker's address space.
	mapped []bool
	// opsFree caches reduce-partition buffers for reuse across hypermerges,
	// so the steady state allocates no mergeOp storage at all.  It is a
	// small stack, not a single slot: a worker blocked in ForkMergeTasks
	// can steal and run another hypermerge reentrantly, putting several
	// buffers in flight at once.  Owner-goroutine only — every merge this
	// worker owns partitions and recycles on its own goroutine.
	opsFree [][]mergeOp
}

// getOpsBuf hands out a recycled reduce-partition buffer, or a fresh one
// sized to capHint when the stack is empty.
func (ws *mmWorker) getOpsBuf(capHint int) []mergeOp {
	if n := len(ws.opsFree); n > 0 {
		buf := ws.opsFree[n-1]
		ws.opsFree[n-1] = nil
		ws.opsFree = ws.opsFree[:n-1]
		return buf
	}
	return make([]mergeOp, 0, capHint)
}

// putOpsBuf returns a settled partition buffer to the stack.  The buffer is
// cleared first so a cached buffer never pins dead views, owners or pages
// for the collector; merges that panic never reach here, leaving their
// buffer to the panic-cleanup sweep (and the GC) instead.
func (ws *mmWorker) putOpsBuf(ops []mergeOp) {
	if cap(ops) == 0 || len(ws.opsFree) >= 4 {
		return
	}
	clear(ops)
	ws.opsFree = append(ws.opsFree, ops[:0])
}

// freeSlotView recycles a dead slot's view block into this worker's arena.
// Only arena-flagged slots are recycled: the flag certifies that the view
// word is a class-sized block some worker's arena carved for the slot's
// owner, so the owner's class sizes it correctly.  Heap-backed views are
// left to the garbage collector.
func (ws *mmWorker) freeSlotView(s spa.Slot) {
	if !s.Arena() {
		return
	}
	r := reducerOf(s.Owner())
	ws.arena.free(int(r.arenaClass), s.View())
}

// mmTrace identifies an active trace.  Because a worker that stalls at a
// join helps by executing other stolen tasks, traces nest: the trace token
// holds the private SPA maps of the suspended outer trace so EndTrace can
// restore them once the inner trace completes.
type mmTrace struct {
	ws    *mmWorker
	saved *spa.MapSet
	// ended makes the token single-shot: a trace that already ended — in
	// particular one whose EndTrace panicked after restoring the suspended
	// outer maps — must not swap maps again when the scheduler's abort path
	// calls EndTrace defensively a second time.
	ended bool
}

// dropPrivateViews discards every view in the worker's current private map
// set without merging it anywhere: arena blocks recycle into this worker's
// arena, heap views fall to the garbage collector.  It is the abort-path
// counterpart of view transferal — the trace's updates are already lost,
// so only the resource accounting matters.  Returns the number of views
// dropped.
func (ws *mmWorker) dropPrivateViews() int {
	n := 0
	ws.private.Range(func(addr spa.Addr, s spa.Slot) bool {
		if _, err := ws.private.Remove(addr); err == nil {
			ws.freeSlotView(s)
			n++
		}
		return true
	})
	return n
}

// restoreOuterTrace swaps the (now empty) private map set for the suspended
// outer trace's maps, exactly as the tail of a successful EndTrace does.
func (ws *mmWorker) restoreOuterTrace(mt *mmTrace) {
	if mt != nil && mt.saved != nil {
		ws.spare = ws.private
		ws.private = mt.saved
	}
}

// MMDeposit is the result of view transferal: public SPA pages holding the
// transferred view pointers.
type MMDeposit struct {
	views *spa.MapSet
	// count is the number of views in the deposit.
	count int
}

// Views exposes the deposited views (for tests and diagnostics).
func (d *MMDeposit) Views() *spa.MapSet { return d.views }

// Count returns the number of deposited views.
func (d *MMDeposit) Count() int { return d.count }

// NewMM creates a memory-mapping engine.
func NewMM(cfg MMConfig) *MM {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	// An explicitly configured knob is an override the adaptive tuner
	// never touches; record which knobs were fixed before defaulting.
	batchFixed := cfg.MergeBatchSize > 0
	thresholdFixed := cfg.ParallelMergeThreshold > 0
	if cfg.MergeBatchSize <= 0 {
		cfg.MergeBatchSize = defaultMergeBatchSize
	}
	if cfg.ParallelMergeThreshold <= 0 {
		cfg.ParallelMergeThreshold = defaultParallelMergeThreshold
	}
	e := &MM{
		cfg:       cfg,
		rec:       metrics.NewRecorder(cfg.Workers),
		lookups:   make([]metrics.PaddedCounter, cfg.Workers),
		cacheHits: make([]metrics.PaddedCounter, cfg.Workers),
	}
	e.mergeBatch.Store(int64(cfg.MergeBatchSize))
	e.parallelThreshold.Store(int64(cfg.ParallelMergeThreshold))
	e.nworkers.Store(int64(cfg.Workers))
	if cfg.AdaptiveMerge {
		e.tuner = &mergeTuner{batchFixed: batchFixed, thresholdFixed: thresholdFixed}
	}
	e.rec.SetTiming(cfg.Timing)
	e.countLookups = cfg.CountLookups
	e.pool = pagepool.New[*spa.Map](cfg.Workers,
		func() *spa.Map { return spa.New() },
		pagepool.WithEmptyCheck[*spa.Map](func(m *spa.Map) bool { return m.IsEmpty() }),
	)
	dcfg := DirectoryConfig{Shards: cfg.DirectoryShards, Workers: cfg.Workers}
	if cfg.ModelAddressSpace {
		e.aspace = tlmm.NewAddressSpace(nil)
		e.layout = tlmm.NewRegionLayout()
		e.pageTable = &tlmm.RegionPageTable{}
		dcfg.OnGrow = e.growReducerPage
	}
	e.dir = NewDirectory(dcfg)
	return e
}

// growReducerPage is the directory's OnGrow hook: it reserves TLMM address
// space for one more SPA page and publishes the reservation in the RCU page
// table.  The directory serialises calls and keeps them off the shard fast
// paths, so registering reducer #100,000 neither stalls lookups nor other
// registrations.  Workers observe the growth through the published table
// (and the view-epoch bump) the next time they need to map the page.
func (e *MM) growReducerPage(page int) error {
	if err := faultinject.Error(faultinject.TLMMGrow); err != nil {
		// Injected address-space exhaustion: the registration that
		// triggered the growth fails cleanly (the directory returns the
		// slot to its free stack) and no reservation is recorded.
		return fmt.Errorf("core: reserving TLMM page %d: %w", page, err)
	}
	base, err := e.layout.ReserveReducerPages(1)
	if err != nil {
		return fmt.Errorf("core: reserving TLMM page %d: %w", page, err)
	}
	e.pageTable.Publish(base)
	e.publishViewInvalidation()
	return nil
}

// publishViewInvalidation bumps every attached worker's view epoch, forcing
// each context's single-entry lookup cache to re-resolve on its next
// lookup.  It is the cross-worker publication step for events that change
// shared view metadata beneath running contexts: a reducer unregistered
// mid-run and the view regions growing.
func (e *MM) publishViewInvalidation() {
	if ws := e.workers.Load(); ws != nil {
		for _, s := range *ws {
			s.w.PublishViewInvalidation()
		}
	}
}

// Name implements Engine.
func (e *MM) Name() string { return "Cilk-M (memory-mapped)" }

// AddressSpace returns the modelled TLMM address space, or nil when the
// model is disabled.
func (e *MM) AddressSpace() *tlmm.AddressSpace { return e.aspace }

// RegionLayout returns the TLMM region layout, or nil when the model is
// disabled.
func (e *MM) RegionLayout() *tlmm.RegionLayout { return e.layout }

// PoolStats exposes the public SPA page pool statistics.
func (e *MM) PoolStats() pagepool.Stats { return e.pool.Stats() }

// ArenaStats aggregates the per-worker view-arena counters.  The counters
// are per-worker atomics, so sampling is safe at any time — including
// mid-run, which is how the metrics exporter reads them; a snapshot taken
// while the engine is quiescent is exact.
func (e *MM) ArenaStats() metrics.ArenaStats {
	var s metrics.ArenaStats
	if ws := e.workers.Load(); ws != nil {
		for _, w := range *ws {
			s.Add(w.arena.stats())
		}
	}
	return s
}

// --- Engine registration and lookup ---

// Register implements Engine: a lock-free slot allocation in the sharded
// directory.  The only lock a registration can encounter is the directory's
// grow mutex, taken once per fresh SPA page (every spa.SlotsPerMap
// addresses) to reserve TLMM address space.
func (e *MM) Register(m Monoid) (*Reducer, error) {
	return e.dir.Register(e, m)
}

// Unregister implements Engine.  The directory's compare-and-swap performs
// the registry identity check: a double-unregister — even one racing a slot
// reuse — can never delete another live reducer's entry or free an address
// twice.  A successful unregister publishes a view invalidation so every
// context re-resolves its cached view on the next lookup.  Re-resolution of
// the retired handle itself yields the frozen leftmost value — unless the
// calling worker still holds the reducer's private view for the current
// trace, in which case that view (doomed to be dropped, never merged)
// remains readable until the trace ends; the owner stamp guarantees no
// OTHER reducer can ever observe it.
func (e *MM) Unregister(r *Reducer) {
	if r == nil || r.eng != Engine(e) {
		return
	}
	if e.dir.Unregister(r) {
		e.publishViewInvalidation()
	}
	r.markRetired()
}

// Registered returns the number of live reducers.  Lock-free.
func (e *MM) Registered() int { return e.dir.Live() }

// Directory exposes the sharded reducer directory (for tests, benchmarks
// and diagnostics).
func (e *MM) Directory() *Directory { return e.dir }

// DirectoryStats returns a snapshot of the directory's shard layout and
// contention counters.
func (e *MM) DirectoryStats() metrics.DirectoryStats { return e.dir.Stats() }

// Lookup implements Engine.  The fast path is the paper's two memory
// accesses and a predictable branch: read the reducer's tlmm_addr, index
// the worker's private view slots, and test the resulting words.  Ahead
// of it sits the per-context single-entry cache: when a loop body looks up
// the same reducer repeatedly, two compares (reducer identity and the
// worker's view epoch) replace even the SPA indexing, and a steal, view
// transferal or hypermerge invalidates the cache by bumping the epoch.
//
// Lookup hands out an interface value the caller may mutate through, so it
// counts as a mutable access: the slot's written bit is set on the first
// probe, exempting the view from identity elision.
func (e *MM) Lookup(c *sched.Context, r *Reducer) any {
	if c == nil {
		return r.Value()
	}
	w := c.Worker()
	ws, _ := w.Local().(*mmWorker)
	if ws == nil {
		return r.Value()
	}
	if e.countLookups {
		e.lookups[w.ID()].Add(1)
	}
	if v, ok := c.CachedView(r.id); ok {
		if e.countLookups {
			e.cacheHits[w.ID()].Add(1)
		}
		return v
	}
	if s := ws.private.SlotAt(r.addr); s.View() != nil {
		// The slot's second word stamps the view with its owning reducer;
		// matching it against r guarantees a recycled address never serves
		// a stale view.  This keeps the fast path independent of the
		// number of live reducers: one array index and one compare.
		if s.Owner() == ownerWord(r) {
			if !s.Written() {
				ws.private.MarkWritten(r.addr)
			}
			v := r.BoxView(s.View())
			c.CacheView(r.id, v)
			return v
		}
	}
	return e.lookupSlow(c, w, ws, r, true)
}

// LookupCached implements Engine: the boxed resolution step behind the
// typed handles' per-context view caches (retained for callers that want
// the interface value; the handles themselves use LookupWord).  The epoch
// is sampled before the lookup, so an invalidation racing the resolution
// (an unregister or view-region growth on another goroutine) leaves the
// caller holding an already-stale epoch and forces a harmless re-resolution
// on its next access.  Retired handles and nil contexts return epoch zero —
// "do not cache" — because their result is the reducer's frozen leftmost
// value, which must be re-read every time (SetValue may replace it between
// accesses).
func (e *MM) LookupCached(c *sched.Context, r *Reducer, prevEpoch uint64) (any, uint64) {
	_ = prevEpoch
	if c == nil {
		return r.Value(), 0
	}
	epoch := c.Worker().ViewEpoch()
	v := e.Lookup(c, r)
	if !e.dir.Valid(r) {
		return v, 0
	}
	return v, epoch
}

// LookupWord implements Engine: the word-level lookup behind the typed
// handles.  It resolves the slot word directly — no interface value is
// constructed anywhere on the hit path — and only a mutable access sets
// the slot's written bit, so read-only ReadView accesses leave identity
// views elidable by the merge pipeline.
func (e *MM) LookupWord(c *sched.Context, r *Reducer, prevEpoch uint64, mutable bool) (unsafe.Pointer, uint64) {
	_ = prevEpoch
	if c == nil {
		return r.UnboxView(r.Value()), 0
	}
	w := c.Worker()
	ws, _ := w.Local().(*mmWorker)
	if ws == nil {
		return r.UnboxView(r.Value()), 0
	}
	if e.countLookups {
		// Counted handles route reads here (bypassing their caches), so
		// instrumented runs keep exact lookup counts on this path too.
		e.lookups[w.ID()].Add(1)
	}
	epoch := w.ViewEpoch()
	if s := ws.private.SlotAt(r.addr); s.View() != nil && s.Owner() == ownerWord(r) {
		if mutable && !s.Written() {
			ws.private.MarkWritten(r.addr)
		}
		return s.View(), epoch
	}
	v := e.lookupSlow(c, w, ws, r, mutable)
	if !e.dir.Valid(r) {
		return r.UnboxView(v), 0
	}
	return r.UnboxView(v), epoch
}

// Workers implements Engine: the number of per-worker structures currently
// maintained (construction size, grown when a larger runtime attaches).
func (e *MM) Workers() int {
	e.initMu.Lock()
	defer e.initMu.Unlock()
	return len(e.lookups)
}

// lookupSlow creates and installs an identity view: it runs at most once
// per reducer per steal, plus once per slot recycle (when it also clears
// the retired occupant's stale view).  Arena-eligible monoids get their
// view carved out of the worker's view arena — a free-list pop or a bump
// allocation, no heap allocator — and the slot's arena flag records that
// the block is recyclable when the view dies.  mutable stamps the written
// bit (and populates the context's boxed cache); a read-only first lookup
// leaves the bit clear so the identity view can be elided if it is never
// subsequently written.
func (e *MM) lookupSlow(c *sched.Context, w *sched.Worker, ws *mmWorker, r *Reducer, mutable bool) any {
	if !e.dir.Valid(r) {
		// A retired handle: no new view is created for it.  Serve the
		// frozen leftmost value, matching a serial lookup after
		// unregistration.
		return r.Value()
	}
	if s := ws.private.SlotAt(r.addr); s.View() != nil {
		// Occupied, but the fast path rejected the owner stamp: the
		// occupant registered an earlier incarnation of this recycled
		// address.  The directory holds at most one live registration per
		// address — r — so the occupant is retired and its in-flight view
		// is dropped (and its arena block recycled).
		if old, err := ws.private.Remove(r.addr); err == nil {
			ws.freeSlotView(old)
			e.mergePipe.StaleViewDrops.Add(1)
		}
	}
	// Ensure the worker's TLMM region backs the SPA page holding this slot.
	if ws.vm != nil {
		ws.ensureMapped(r.addr.Page())
	}
	// Chaos point for a monoid whose Identity blows up: fired before any
	// slot state is written, so a contained identity panic leaves the
	// worker's maps exactly as they were.
	faultinject.Check(faultinject.MonoidIdentity)
	var word unsafe.Pointer
	var flags uintptr
	start := e.rec.Start()
	if r.arenaClass >= 0 {
		word = ws.arena.alloc(int(r.arenaClass))
		r.arena.InitView(word)
		flags = spa.FlagArena
	} else {
		word = r.UnboxView(r.monoid.Identity())
		ws.arena.heapViews.Add(1)
	}
	e.rec.Stop(w.ID(), metrics.ViewCreation, start)
	if mutable {
		flags |= spa.FlagWritten
	}

	start = e.rec.Start()
	// The slot's second word is the owner stamp (the reducer handle, which
	// carries the monoid), not the bare monoid: see Lookup.
	if err := ws.private.Insert(r.addr, word, ownerWord(r), flags); err != nil {
		// The slot was cleared of any stale occupant above, so an occupied
		// slot here is a programming error.
		panic(fmt.Sprintf("core: SPA slot %d unexpectedly occupied: %v", r.addr, err))
	}
	e.rec.Stop(w.ID(), metrics.ViewInsertion, start)
	v := r.BoxView(word)
	if mutable {
		// Only mutable resolutions may populate the context's boxed cache:
		// a cached hit never revisits the slot, so it must not be able to
		// bypass the written-bit stamping of a later mutable access.
		c.CacheView(r.id, v)
	}
	return v
}

// ensureMapped backs SPA page index pi with a physical page in this
// worker's modelled TLMM region (sys_palloc + sys_pmap), once.  The page's
// virtual base comes from the RCU-published region page table, which the
// directory's grow hook populates before the page's first address is handed
// out, so the lock-free read here can never miss.  The mapped bitmap grows
// to the target length in one step (with doubling, so registration churn
// that walks page indices upward costs amortised O(1) per page, not one
// append per missing index).
func (ws *mmWorker) ensureMapped(pi int) {
	if len(ws.mapped) <= pi {
		n := pi + 1
		if n < 2*len(ws.mapped) {
			n = 2 * len(ws.mapped)
		}
		grown := make([]bool, n)
		copy(grown, ws.mapped)
		ws.mapped = grown
	}
	if ws.mapped[pi] {
		return
	}
	base, ok := ws.eng.pageTable.Base(pi)
	if !ok {
		panic(fmt.Sprintf("core: SPA page %d not published in the region page table", pi))
	}
	pd := ws.eng.aspace.Phys.Palloc()
	if err := ws.vm.Pmap(base, []tlmm.PD{pd}); err != nil {
		panic(fmt.Sprintf("core: mapping SPA page %d: %v", pi, err))
	}
	ws.mapped[pi] = true
}

// --- sched.ReducerRuntime hooks ---

// WorkerInit implements sched.ReducerRuntime.  It runs once per worker
// while the attaching runtime is being constructed — before any of that
// runtime's tasks execute — so it sizes the per-worker lookup counters
// from the runtime's actual worker count.  Lookup can then index by
// worker ID directly, and counts are never aliased when the engine config
// and the runtime disagree about the number of workers.  An engine must
// not be attached to a new runtime while a previously attached one is
// executing: the resize would race with that runtime's lock-free Lookup
// reads.  (Sessions couple one engine to one runtime, so no current
// caller does this.)
func (e *MM) WorkerInit(w *sched.Worker) {
	ws := &mmWorker{
		eng:     e,
		w:       w,
		private: spa.NewMapSet(),
	}
	if e.aspace != nil {
		ws.vm = e.aspace.NewThread()
	}
	w.SetLocal(ws)
	e.initMu.Lock()
	if n := w.Runtime().Workers(); n > len(e.lookups) {
		e.lookups = append(e.lookups, make([]metrics.PaddedCounter, n-len(e.lookups))...)
		e.cacheHits = append(e.cacheHits, make([]metrics.PaddedCounter, n-len(e.cacheHits))...)
		e.rec.EnsureWorkers(n)
		e.nworkers.Store(int64(n))
	}
	// Republish the worker list copy-on-write: publication sweeps
	// (Unregister, region growth) iterate it lock-free.
	var grown []*mmWorker
	if cur := e.workers.Load(); cur != nil {
		grown = append(grown, *cur...)
	}
	grown = append(grown, ws)
	e.workers.Store(&grown)
	e.initMu.Unlock()
}

// BeginTrace implements sched.ReducerRuntime.  The new trace starts with an
// empty set of private SPA maps; the previous trace's maps (non-empty when
// the worker is helping at a stalled join) are saved in the trace token and
// restored by EndTrace.
func (e *MM) BeginTrace(w *sched.Worker) sched.Trace {
	ws, _ := w.Local().(*mmWorker)
	if ws == nil {
		return &mmTrace{}
	}
	tr := &mmTrace{ws: ws, saved: ws.private}
	if ws.spare != nil {
		ws.private = ws.spare
		ws.spare = nil
	} else {
		ws.private = spa.NewMapSet()
	}
	w.InvalidateLookupCache()
	return tr
}

// EndTrace implements sched.ReducerRuntime: it performs view transferal
// with identity-view elision.  Slots whose written bit never got set still
// hold the monoid identity — the trace looked them up but never mutated
// them — so folding them at the join would be a no-op; they are removed
// here instead, their arena blocks recycled, before the deposit is even
// sized.  A trace whose views were all elided deposits nothing and performs
// no pagepool round-trip at all.  The surviving views are copied into
// public SPA pages fetched from the pool in one bulk round-trip (zeroing
// the private slots as the worker sequences through), and the suspended
// outer trace's maps are restored.
func (e *MM) EndTrace(w *sched.Worker, tr sched.Trace) sched.Deposit {
	ws, _ := w.Local().(*mmWorker)
	if ws == nil {
		return nil
	}
	mt, _ := tr.(*mmTrace)
	if mt != nil {
		if mt.ended {
			return nil
		}
		mt.ended = true
	}
	var dep *MMDeposit
	elided := int64(0)
	ws.private.Range(func(addr spa.Addr, s spa.Slot) bool {
		if s.Written() {
			return true
		}
		if _, err := ws.private.Remove(addr); err == nil {
			ws.freeSlotView(s)
			elided++
		}
		return true
	})
	if elided > 0 {
		e.mergePipe.IdentityElisions.Add(elided)
	}
	if span := ws.private.OccupiedPageSpan(); span > 0 {
		start := e.rec.Start()
		pages, err := e.pool.TryGetN(w.ID(), span)
		if err == nil {
			// Chaos point for transferal failing after the page fetch: the
			// abort path below must hand the fetched pages straight back.
			if ferr := faultinject.Error(faultinject.EndTraceTransfer); ferr != nil {
				e.pool.PutN(w.ID(), pages)
				err = ferr
			}
		}
		if err != nil {
			// Page exhaustion (or an injected fault) mid-transferal: the
			// trace's updates cannot be deposited, so the only sound exit is
			// to drop them and unwind.  Every private view recycles into this
			// worker's arena, the suspended outer trace's maps come back, and
			// the panic is contained at the job boundary by the scheduler.
			ws.dropPrivateViews()
			ws.restoreOuterTrace(mt)
			w.InvalidateLookupCache()
			panic(fmt.Errorf("core: view transferal: %w", err))
		}
		public := spa.NewMapSet()
		public.AttachPages(pages)
		e.mergePipe.BulkPageFetches.Add(1)
		moved, terr := ws.private.TransferTo(public)
		if terr != nil {
			panic(fmt.Sprintf("core: view transferal failed: %v", terr))
		}
		e.rec.Stop(w.ID(), metrics.ViewTransferal, start)
		dep = &MMDeposit{views: public, count: moved}
	}
	if mt != nil && mt.saved != nil {
		// The now-empty map set becomes the spare for the next trace.
		ws.spare = ws.private
		ws.private = mt.saved
	}
	w.InvalidateLookupCache()
	if dep == nil {
		return nil
	}
	return dep
}

// mergeOp is one reduce pair of a hypermerge: the slot address, the owning
// reducer resolved from the owner stamp, and the packed slots holding the
// serially-earlier current view and the deposited view.  The partition pass
// also resolves the slot's position in the current trace's map set — the
// page pointer and the slot index — so the reduce inner loop updates the
// surviving slot with plain indexing instead of re-deriving page and slot
// from the address (SlotsPerMap is 248, so every Addr decomposition is an
// integer division).  page stays valid even if the map set grows during the
// partition: pages are stable heap objects, only the page table reallocates.
// runMergeBatch records the views the reduce killed in dead; the merge
// owner recycles their arena blocks after the batches join (cross-worker
// batch executors never touch an arena).
type mergeOp struct {
	addr  spa.Addr
	owner *Reducer
	page  *spa.Map
	slot  int32
	cur   spa.Slot
	dep   spa.Slot
	dead  [2]spa.Slot
}

// mergeLocalitySortMin is the reduce-partition size at which Merge orders
// the ops by (arena size class, current-view address) before batching.
// Below it the ordering pass costs more than the contiguity buys; above it
// each batch walks same-class views in address order — contiguous runs
// through the arena chunks the views were carved from.
const mergeLocalitySortMin = 512

// mergeLocalityIdxBits bounds the partitions the locality sort handles: the
// op index shares the packed sort key with the class and address, so
// partitions of 2^20 ops or more skip the ordering (they are far past any
// size where the key encoding is worth revisiting).
const mergeLocalityIdxBits = 20

// sortOpsByLocality computes the order in which a reduce partition's ops
// should run so that views of one arena size class form contiguous
// address-ordered runs.  The sort key packs (class+1, view address, op
// index) into one uint64 — heap views (class -1) sort first, the
// 8-byte-aligned address is kept to 36 significant bits (truncation only
// perturbs ordering across 512 GiB strides, and the order is a locality
// heuristic, never a correctness condition), and the index makes keys
// unique and the permutation stable.  The ops themselves stay in place:
// the result is an index permutation the batch loops walk, so the sort
// moves 8-byte keys, never the ~100-byte ops (physically permuting them
// measurably slowed large parallel merges).  Deposits usually arrive
// already address-ordered — views are carved from bump chunks in slot
// order — so the already-sorted check keeps the steady-state cost at one
// linear scan; a nil result means "run in natural order".
func sortOpsByLocality(ops []mergeOp) []uint32 {
	keys := make([]uint64, len(ops))
	for i := range ops {
		op := &ops[i]
		class := uint64(uint8(op.owner.arenaClass+1)) & 0xFF
		view := uint64(uintptr(op.cur.View())) >> 3
		keys[i] = class<<56 | (view&(1<<36-1))<<mergeLocalityIdxBits | uint64(i)
	}
	if slices.IsSorted(keys) {
		return nil
	}
	slices.Sort(keys)
	order := make([]uint32, len(ops))
	for j, k := range keys {
		order[j] = uint32(k & (1<<mergeLocalityIdxBits - 1))
	}
	return order
}

// runMergeBatch folds one batch of reduce pairs into the current trace's
// private SPA slots.  Distinct batches touch disjoint slots, so batches may
// run concurrently; within a batch each Reduce keeps the serially-earlier
// view on the left, preserving the serial order of every reducer's view
// chain.  The interface values handed to the monoid are assembled from the
// slot words (BoxView: word pairing, no allocation), and the combined
// result is unboxed back into the op's pre-resolved (page, slot) position —
// no address decomposition anywhere in the loop.
func runMergeBatch(ops []mergeOp) {
	for i := range ops {
		runMergeOp(&ops[i])
	}
}

// runMergeBatchOrdered is runMergeBatch through an index permutation: the
// batch is a slice of the locality order computed by sortOpsByLocality, and
// the ops stay at their partition positions (the panic-cleanup and
// dead-view sweeps iterate them positionally).  Slices of one permutation
// are disjoint index sets, so ordered batches parallelise exactly like
// positional ones.
func runMergeBatchOrdered(ops []mergeOp, order []uint32) {
	for _, j := range order {
		runMergeOp(&ops[j])
	}
}

// runMergeOp folds one reduce pair into its pre-resolved current-trace
// slot.
func runMergeOp(op *mergeOp) {
	// Chaos point for a monoid whose Reduce blows up mid-hypermerge:
	// fired before the op's slots are touched, so this op's dead records
	// stay empty and the cleanup path treats it as never run.
	faultinject.Check(faultinject.MonoidReduce)
	left := op.owner.BoxView(op.cur.View())
	right := op.owner.BoxView(op.dep.View())
	combined := op.owner.UnboxView(op.owner.monoid.Reduce(left, right))
	switch combined {
	case op.cur.View():
		// The usual in-place reduction: the current view survives and
		// the deposited view dies.  The surviving slot now carries the
		// deposit's (written) contribution even if the current trace
		// only ever read it, so its written bit must be set — otherwise
		// the trace-end elision would drop the merged value.
		if !op.cur.Written() {
			op.page.MarkWritten(int(op.slot))
		}
		op.dead[0] = op.dep
	case op.dep.View():
		// The monoid returned its right argument: the deposited view
		// (flags included) replaces the current one, which dies.
		if err := op.page.Update(int(op.slot), combined, op.dep.Flags()|spa.FlagWritten); err != nil {
			panic(fmt.Sprintf("core: hypermerge update: %v", err))
		}
		op.dead[0] = op.cur
	default:
		// A fresh combined view of unknown provenance: no arena flag,
		// and both inputs die.
		if err := op.page.Update(int(op.slot), combined, spa.FlagWritten); err != nil {
			panic(fmt.Sprintf("core: hypermerge update: %v", err))
		}
		op.dead[0] = op.cur
		op.dead[1] = op.dep
	}
}

// Merge implements sched.ReducerRuntime: the hypermerge, rebuilt as a
// batched pipeline over packed slots.  One pass over the deposit partitions
// the occupied slots: never-written views are elided outright (recycled
// without a reduce call — MM deposits are normally already elided at
// EndTrace, but deposits that bypass it, and future transports, stay
// correct), views with no matching current view are adopted wholesale (a
// slot insertion, flags preserved, done serially because it mutates the map
// structure), and matched pairs are gathered into batches of MergeBatchSize
// reduce operations with their target (page, slot) position pre-resolved —
// the partition walks deposit and current pages in lockstep, and the reduce
// loops never decompose an address again.  Large partitions are first
// ordered by (arena size class, view address) so each batch works through
// contiguous runs of the arena chunks (see sortOpsByLocality).  Small
// merges fold their batches serially; once the
// pair count crosses ParallelMergeThreshold the batches are fanned out
// through the scheduler as forked merge tasks, which is sound because
// distinct reducers' Reduce calls are independent and each reducer still
// sees current ⊗ deposited exactly once per deposit.  After the batches
// complete, the owner recycles the arena blocks of every view the reduces
// killed, and the emptied public pages go back to the pool in one bulk
// round-trip.
func (e *MM) Merge(w *sched.Worker, tr sched.Trace, d sched.Deposit) {
	dep, _ := d.(*MMDeposit)
	if dep == nil {
		return
	}
	ws, _ := w.Local().(*mmWorker)
	if ws == nil {
		return
	}
	e.mergeInflight.Add(1)
	defer e.mergeInflight.Add(-1)
	start := e.rec.Start()
	// Capture the merging trace's map set once: if the fan-out below
	// stalls and this worker helps with other stolen work, ws.private is
	// temporarily swapped, but the partition (and the page pointers it
	// resolves into the ops) must keep targeting the trace that owns the
	// join.
	cur := ws.private
	var ops []mergeOp
	// If a reduce panics mid-hypermerge (a buggy — or fault-injected —
	// monoid), the deposit must not leak: every deposited view is either
	// already folded into cur, recorded dead, or still unmerged in ops /
	// dep.views.  Settle all three classes, return the public pages, and
	// let the wrapped panic unwind to the job boundary.
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if dep.views == nil {
			// The deposit was already fully settled by the success path.
			panic(p)
		}
		for i := range ops {
			op := &ops[i]
			dep.views.Remove(op.addr)
			if op.dead[0].IsEmpty() && op.dead[1].IsEmpty() {
				// The op never ran: its deposited view dies unmerged.  (cur
				// may hold a partial merge — the job is aborting, and the
				// trace's views are discarded at the recovery point.)
				ws.freeSlotView(op.dep)
				continue
			}
			for _, dv := range op.dead {
				if !dv.IsEmpty() {
					ws.freeSlotView(dv)
				}
			}
		}
		// Anything still left (a future transport that panics during the
		// partition pass) dies with its slot.
		dep.views.Range(func(addr spa.Addr, s spa.Slot) bool {
			if _, err := dep.views.Remove(addr); err == nil {
				ws.freeSlotView(s)
			}
			return true
		})
		if pages := dep.views.DrainPages(); len(pages) > 0 {
			e.pool.PutN(w.ID(), pages)
			e.mergePipe.BulkPageReturns.Add(1)
		}
		dep.views = nil
		dep.count = 0
		w.InvalidateLookupCache()
		panic(p)
	}()
	adopts := int64(0)
	staleDrops := int64(0)
	elisions := int64(0)
	// The partition walks the deposit's pages directly, pairing each with
	// the current trace's page of the same index, so the per-slot work is
	// one array index on each side — no address recomposition in the loop
	// and no division to split it back apart.  The Addr is still assembled
	// (one add against the page base) for the removal paths and the
	// panic-cleanup records, which stay address-keyed.
	for pi, depPages := 0, dep.views.Pages(); pi < depPages; pi++ {
		dp := dep.views.Page(pi)
		if dp == nil || dp.IsEmpty() {
			continue
		}
		// curPage is resolved once per page.  An adopt below may create the
		// page in cur after this lookup returned nil; the cached nil stays
		// correct for the rest of this page's slots — a just-created page
		// holds only slots this loop adopted, and each slot index is
		// visited exactly once.
		curPage := cur.Page(pi)
		pageBase := spa.MakeAddr(pi, 0)
		dp.Range(func(si int, s spa.Slot) bool {
			addr := pageBase + spa.Addr(si)
			owner := reducerOf(s.Owner())
			if !s.Written() {
				// The view was looked up but never written: it still equals the
				// monoid identity, and current ⊗ e = current.  Recycle it with
				// no reduce call and no slot traffic.  The slot is removed from
				// the deposit as it is freed so the panic-cleanup sweep above can
				// never see (and double-free) it.
				if _, err := dep.views.Remove(addr); err == nil {
					ws.freeSlotView(s)
				}
				elisions++
				return true
			}
			var curSlot spa.Slot
			if curPage != nil {
				curSlot = curPage.SlotAt(si)
			}
			if curSlot.View() != nil {
				if curSlot.Owner() == ownerWord(owner) {
					if ops == nil {
						ops = ws.getOpsBuf(dep.count)
					}
					ops = append(ops, mergeOp{
						addr: addr, owner: owner,
						page: curPage, slot: int32(si),
						cur: curSlot, dep: s,
					})
					return true
				}
				// The owner stamps differ, so the address was recycled while
				// one of the views was in flight; the directory holds at most
				// one live registration per address, so at most one side can
				// still be valid.  Drop the stale side (recycling its block).
				if owner == nil || !e.dir.Valid(owner) {
					if _, err := dep.views.Remove(addr); err == nil {
						ws.freeSlotView(s)
					}
					staleDrops++
					return true
				}
				old, err := cur.Remove(addr)
				if err != nil {
					panic(fmt.Sprintf("core: hypermerge stale removal: %v", err))
				}
				ws.freeSlotView(old)
				staleDrops++
				// Fall through to adopt the deposited (live) view.
			}
			if ws.vm != nil {
				ws.ensureMapped(pi)
			}
			if err := cur.InsertSlot(addr, s); err != nil {
				panic(fmt.Sprintf("core: hypermerge insert: %v", err))
			}
			// The view now lives in cur; clear the deposit's reference so the
			// panic-cleanup sweep cannot free a view another map owns.
			dep.views.Remove(addr)
			adopts++
			return true
		})
	}
	// Load the batching knobs once per hypermerge: the adaptive tuner may
	// retune them concurrently, and one merge must partition consistently.
	mergeBatch := int(e.mergeBatch.Load())
	parallelThreshold := int(e.parallelThreshold.Load())
	reduces := int64(len(ops))
	var order []uint32
	if len(ops) >= mergeLocalitySortMin && len(ops) < 1<<mergeLocalityIdxBits {
		order = sortOpsByLocality(ops)
		e.mergePipe.LocalitySorts.Add(1)
	}
	batches := 0
	if len(ops) > 0 {
		batches = (len(ops) + mergeBatch - 1) / mergeBatch
	}
	if len(ops) >= parallelThreshold && batches > 1 {
		fns := make([]func(), 0, batches)
		for lo := 0; lo < len(ops); lo += mergeBatch {
			hi := min(lo+mergeBatch, len(ops))
			if order != nil {
				batch := order[lo:hi]
				fns = append(fns, func() { runMergeBatchOrdered(ops, batch) })
			} else {
				batch := ops[lo:hi]
				fns = append(fns, func() { runMergeBatch(batch) })
			}
		}
		e.mergePipe.ParallelMerges.Add(1)
		w.ForkMergeTasks(fns)
	} else if order != nil {
		runMergeBatchOrdered(ops, order)
	} else if len(ops) > 0 {
		runMergeBatch(ops)
	}
	// The batches have joined (ForkMergeTasks blocks), so the dead-view
	// records are visible here; return their arena blocks to this worker's
	// arena — "the owning arena at trace end" — off the batch executors'
	// goroutines.
	for i := range ops {
		for _, dv := range ops[i].dead {
			if !dv.IsEmpty() {
				ws.freeSlotView(dv)
			}
		}
	}
	ws.putOpsBuf(ops)
	w.InvalidateLookupCache()
	e.rec.Stop(w.ID(), metrics.Hypermerge, start)
	if reduces > 1 {
		e.rec.RecordCount(w.ID(), metrics.Hypermerge, reduces-1)
	}
	if adopts > 0 {
		e.rec.RecordCount(w.ID(), metrics.ViewInsertion, adopts)
	}
	e.mergePipe.Merges.Add(1)
	e.mergePipe.SlotsMerged.Add(reduces + adopts)
	e.mergePipe.Reduces.Add(reduces)
	e.mergePipe.Adopts.Add(adopts)
	e.mergePipe.Batches.Add(int64(batches))
	if staleDrops > 0 {
		e.mergePipe.StaleViewDrops.Add(staleDrops)
	}
	if elisions > 0 {
		e.mergePipe.IdentityElisions.Add(elisions)
	}
	if pages := dep.views.DrainPages(); len(pages) > 0 {
		e.pool.PutN(w.ID(), pages)
		e.mergePipe.BulkPageReturns.Add(1)
	}
	dep.views = nil
	dep.count = 0
	// A completed hypermerge is a trace-boundary event and the only point
	// where the tuner's input signals change, so retuning hooks in here
	// (and costs one atomic load and a compare when the window has not
	// filled, nothing when tuning is off).
	if e.tuner != nil {
		e.tuner.maybeRetune(e)
	}
}

// MergeRootDeposit implements Engine: the views produced by the root trace
// are folded into the reducers' leftmost views in serial order.  The owner
// stamp carried by every deposited slot resolves the reducer directly —
// no registry copy, no lock — and the directory's epoch-stamped Valid check
// drops views whose reducer was unregistered while they were in flight,
// even if the address has since been recycled.  Never-written views are
// elided exactly as in Merge (leftmost ⊗ e = leftmost); their blocks are
// not recycled — MergeRootDeposit runs on the caller's goroutine, which
// owns no arena — and fall to the garbage collector with the deposit.
func (e *MM) MergeRootDeposit(d sched.Deposit) {
	dep, _ := d.(*MMDeposit)
	if dep == nil || dep.views == nil {
		return
	}
	e.mergeInflight.Add(1)
	defer e.mergeInflight.Add(-1)
	dep.views.Range(func(addr spa.Addr, s spa.Slot) bool {
		// Whatever happens to the view below — absorbed into the leftmost,
		// elided, or dropped stale — an arena-carved block leaves the arena
		// accounting here: no worker goroutine owns this code path, so the
		// block goes to the garbage collector instead of a free list, and
		// arenaRootReleased closes the books on it.
		if s.Arena() {
			e.arenaRootReleased.Add(1)
		}
		owner := reducerOf(s.Owner())
		if owner == nil || !e.dir.Valid(owner) {
			// The reducer was unregistered while views for it were still
			// in flight; fold into nothing (drop), mirroring a view whose
			// reducer went out of scope.
			e.mergePipe.StaleViewDrops.Add(1)
			return true
		}
		if !s.Written() {
			e.mergePipe.IdentityElisions.Add(1)
			return true
		}
		owner.absorb(owner.BoxView(s.View()))
		return true
	})
	if pages := dep.views.DrainPages(); len(pages) > 0 {
		e.pool.PutN(0, pages)
		e.mergePipe.BulkPageReturns.Add(1)
	}
	dep.views = nil
	dep.count = 0
}

// Discard implements sched.ReducerRuntime: release the resources held by a
// deposit that will never be merged — the containment path for a job that
// panicked or was cancelled between a trace's EndTrace and its join.  When
// the discarding goroutine is a worker, arena-carved views recycle into
// that worker's arena (cross-arena frees are legal: blocks are not returned
// to the chunk they were carved from); from a non-worker goroutine the
// blocks fall to the garbage collector and are counted out of the arena
// accounting like root-merged views.  The public SPA pages always go back
// to the pool.  A nil or already-consumed deposit is a no-op, so Discard
// is safe to call on both sides of a racing settle.
func (e *MM) Discard(w *sched.Worker, d sched.Deposit) {
	dep, _ := d.(*MMDeposit)
	if dep == nil || dep.views == nil {
		return
	}
	var ws *mmWorker
	if w != nil {
		ws, _ = w.Local().(*mmWorker)
	}
	dep.views.Range(func(addr spa.Addr, s spa.Slot) bool {
		if _, err := dep.views.Remove(addr); err != nil {
			return true
		}
		if ws != nil {
			ws.freeSlotView(s)
		} else if s.Arena() {
			e.arenaRootReleased.Add(1)
		}
		return true
	})
	wid := 0
	if w != nil {
		wid = w.ID()
	}
	if pages := dep.views.DrainPages(); len(pages) > 0 {
		e.pool.PutN(wid, pages)
		e.mergePipe.BulkPageReturns.Add(1)
	}
	dep.views = nil
	dep.count = 0
}

// Quiescent implements Engine: verify that no job left resources in flight.
// It must only be called while no job is running (after Runtime.Run and the
// root-deposit merge have returned); the checks read owner-local counters
// that are unsynchronised by design.  The invariants checked are exactly
// the ones failure containment promises to restore: no hypermerge still
// executing, every pagepool page back in the pool, no worker holding
// private views, and every arena block either on a free list or accounted
// to a root-side release.
func (e *MM) Quiescent() error {
	if n := e.mergeInflight.Load(); n != 0 {
		return fmt.Errorf("core: %d hypermerges still in flight", n)
	}
	if out := e.pool.Stats().Outstanding(); out != 0 {
		return fmt.Errorf("core: %d pagepool pages outstanding", out)
	}
	if list := e.workers.Load(); list != nil {
		for i, ws := range *list {
			if ws == nil {
				continue
			}
			if n := ws.private.Len(); n != 0 {
				return fmt.Errorf("core: worker %d holds %d private views", i, n)
			}
		}
	}
	ar := e.ArenaStats()
	if live := ar.Allocs - ar.Frees - e.arenaRootReleased.Load(); live != 0 {
		return fmt.Errorf("core: %d arena view blocks live (allocs=%d frees=%d rootReleased=%d)",
			live, ar.Allocs, ar.Frees, e.arenaRootReleased.Load())
	}
	return nil
}

// --- instrumentation ---

// Overheads implements Engine.
func (e *MM) Overheads() metrics.Breakdown { return e.rec.Snapshot() }

// ResetOverheads implements Engine.
func (e *MM) ResetOverheads() {
	e.rec.Reset()
	for i := range e.lookups {
		e.lookups[i].Store(0)
	}
	for i := range e.cacheHits {
		e.cacheHits[i].Store(0)
	}
	e.fastHits.Store(0)
	e.fastMisses.Store(0)
	e.fastCold.Store(0)
	e.mergePipe.Reset()
}

// MergeStats returns a snapshot of the hypermerge pipeline counters, with
// CacheHits filled in from the per-worker hit counters.
func (e *MM) MergeStats() metrics.MergePipelineStats {
	s := e.mergePipe.Snapshot()
	s.CacheHits = e.CacheHits()
	return s
}

// CacheHits reports the number of lookups served by the per-context cache
// since the last reset.  Like Lookups it only counts while lookup counting
// is enabled.
func (e *MM) CacheHits() int64 {
	var n int64
	for i := range e.cacheHits {
		n += e.cacheHits[i].Load()
	}
	return n
}

// SetTiming implements Engine.
func (e *MM) SetTiming(on bool) { e.rec.SetTiming(on) }

// SetCountLookups implements Engine.
func (e *MM) SetCountLookups(on bool) { e.countLookups = on }

// CountingLookups implements Engine.
func (e *MM) CountingLookups() bool { return e.countLookups }

// Lookups implements Engine.
func (e *MM) Lookups() int64 {
	var n int64
	for i := range e.lookups {
		n += e.lookups[i].Load()
	}
	return n
}

// WorkerPrivateViews reports the number of views currently held in worker
// i's private SPA maps (diagnostic; it should be zero between runs).
func (e *MM) WorkerPrivateViews(i int) int {
	ws := e.workers.Load()
	if ws == nil || i < 0 || i >= len(*ws) {
		return 0
	}
	return (*ws)[i].private.Len()
}

// WorkerMappedPages reports how many SPA page indexes worker i has backed
// with TLMM pages (diagnostic; zero unless ModelAddressSpace).  Together
// with the address space's PmapCalls it pins down the page-accounting
// invariant: each worker maps each page it touches exactly once, no matter
// how registration churn interleaves with growth.
func (e *MM) WorkerMappedPages(i int) int {
	ws := e.workers.Load()
	if ws == nil || i < 0 || i >= len(*ws) {
		return 0
	}
	if vm := (*ws)[i].vm; vm != nil {
		return vm.MappedPages()
	}
	return 0
}

var _ Engine = (*MM)(nil)
