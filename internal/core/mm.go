package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/pagepool"
	"repro/internal/sched"
	"repro/internal/spa"
	"repro/internal/tlmm"
)

// MMConfig configures the memory-mapping engine.
type MMConfig struct {
	// Workers sizes the per-worker structures; it must match the number of
	// workers in the runtime the engine is attached to.
	Workers int
	// Timing enables duration measurement in the overhead instrumentation.
	Timing bool
	// CountLookups enables lookup counting (used by the PBFS experiment).
	CountLookups bool
	// ModelAddressSpace, when true, backs every SPA page with a page of
	// the simulated TLMM address space: reducer slot addresses are
	// reserved in the TLMM region layout and each worker maps a physical
	// page (via the modelled sys_palloc/sys_pmap) the first time it
	// touches a page index.  This exercises the substrate the paper's
	// kernel modification provides; disable it for the tightest possible
	// lookup fast path.
	ModelAddressSpace bool
}

// MM is the memory-mapping reducer engine (the paper's Cilk-M mechanism).
type MM struct {
	cfg MMConfig
	rec *metrics.Recorder
	// pool recycles public SPA pages used for view transferal.
	pool *pagepool.Pool[*spa.Map]

	// Modelled operating-system state (nil unless ModelAddressSpace).
	aspace *tlmm.AddressSpace
	layout *tlmm.RegionLayout

	mu        sync.Mutex
	nextID    uint64
	nextAddr  spa.Addr
	freeAddrs []spa.Addr
	registry  map[spa.Addr]*Reducer
	// reservedPages counts SPA page indices already reserved in the TLMM
	// region layout.
	reservedPages int

	countLookups bool
	// lookups holds one cache-line-padded counter per worker, indexed
	// directly by worker ID.  It is sized from the engine config at
	// construction and re-sized in WorkerInit when a runtime with more
	// workers attaches, so counts are never aliased across workers.
	lookups []metrics.PaddedCounter

	closedWorkers []*mmWorker
}

// mmWorker is the per-worker state of the memory-mapping engine: the
// worker's private SPA maps (its TLMM reducer area) and, when the address
// space is modelled, the worker's thread VM and the set of SPA page indices
// it has backed with physical pages.
type mmWorker struct {
	eng     *MM
	w       *sched.Worker
	private *spa.MapSet
	// spare caches an emptied map set for reuse by the next BeginTrace.
	spare *spa.MapSet
	vm    *tlmm.ThreadVM
	// mapped[i] reports whether SPA page index i is backed by a TLMM page
	// in this worker's address space.
	mapped []bool
}

// mmTrace identifies an active trace.  Because a worker that stalls at a
// join helps by executing other stolen tasks, traces nest: the trace token
// holds the private SPA maps of the suspended outer trace so EndTrace can
// restore them once the inner trace completes.
type mmTrace struct {
	ws    *mmWorker
	saved *spa.MapSet
}

// MMDeposit is the result of view transferal: public SPA pages holding the
// transferred view pointers.
type MMDeposit struct {
	views *spa.MapSet
	// count is the number of views in the deposit.
	count int
}

// Views exposes the deposited views (for tests and diagnostics).
func (d *MMDeposit) Views() *spa.MapSet { return d.views }

// Count returns the number of deposited views.
func (d *MMDeposit) Count() int { return d.count }

// NewMM creates a memory-mapping engine.
func NewMM(cfg MMConfig) *MM {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	e := &MM{
		cfg:      cfg,
		rec:      metrics.NewRecorder(cfg.Workers),
		registry: make(map[spa.Addr]*Reducer),
		lookups:  make([]metrics.PaddedCounter, cfg.Workers),
	}
	e.rec.SetTiming(cfg.Timing)
	e.countLookups = cfg.CountLookups
	e.pool = pagepool.New[*spa.Map](cfg.Workers,
		func() *spa.Map { return spa.New() },
		pagepool.WithEmptyCheck[*spa.Map](func(m *spa.Map) bool { return m.IsEmpty() }),
	)
	if cfg.ModelAddressSpace {
		e.aspace = tlmm.NewAddressSpace(nil)
		e.layout = tlmm.NewRegionLayout()
	}
	return e
}

// Name implements Engine.
func (e *MM) Name() string { return "Cilk-M (memory-mapped)" }

// AddressSpace returns the modelled TLMM address space, or nil when the
// model is disabled.
func (e *MM) AddressSpace() *tlmm.AddressSpace { return e.aspace }

// RegionLayout returns the TLMM region layout, or nil when the model is
// disabled.
func (e *MM) RegionLayout() *tlmm.RegionLayout { return e.layout }

// PoolStats exposes the public SPA page pool statistics.
func (e *MM) PoolStats() pagepool.Stats { return e.pool.Stats() }

// --- Engine registration and lookup ---

// Register implements Engine.
func (e *MM) Register(m Monoid) (*Reducer, error) {
	if m == nil {
		return nil, errors.New("core: nil monoid")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var addr spa.Addr
	if n := len(e.freeAddrs); n > 0 {
		addr = e.freeAddrs[n-1]
		e.freeAddrs = e.freeAddrs[:n-1]
	} else {
		addr = e.nextAddr
		e.nextAddr++
		if e.layout != nil {
			// Reserve TLMM address space for any newly needed SPA page.
			for e.reservedPages <= addr.Page() {
				if _, err := e.layout.ReserveReducerPages(1); err != nil {
					return nil, fmt.Errorf("core: reserving TLMM page: %w", err)
				}
				e.reservedPages++
			}
		}
	}
	e.nextID++
	r := &Reducer{
		id:       e.nextID,
		addr:     addr,
		monoid:   m,
		eng:      e,
		leftmost: m.Identity(),
	}
	e.registry[addr] = r
	return r, nil
}

// Unregister implements Engine.
func (e *MM) Unregister(r *Reducer) {
	if r == nil || r.eng != Engine(e) {
		return
	}
	e.mu.Lock()
	if _, ok := e.registry[r.addr]; ok {
		delete(e.registry, r.addr)
		e.freeAddrs = append(e.freeAddrs, r.addr)
	}
	e.mu.Unlock()
	r.markRetired()
}

// Registered returns the number of live reducers.
func (e *MM) Registered() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.registry)
}

// Lookup implements Engine.  The fast path is the paper's two memory
// accesses and a predictable branch: read the reducer's tlmm_addr, index
// the worker's private view slots, and test the resulting pointer.
func (e *MM) Lookup(c *sched.Context, r *Reducer) any {
	if c == nil {
		return r.Value()
	}
	w := c.Worker()
	ws, _ := w.Local().(*mmWorker)
	if ws == nil {
		return r.Value()
	}
	if e.countLookups {
		e.lookups[w.ID()].Add(1)
	}
	if v := ws.private.Get(r.addr); v != nil {
		return v
	}
	return e.lookupSlow(w, ws, r)
}

// lookupSlow creates and installs an identity view: it runs at most once
// per reducer per steal.
func (e *MM) lookupSlow(w *sched.Worker, ws *mmWorker, r *Reducer) any {
	// Ensure the worker's TLMM region backs the SPA page holding this slot.
	if ws.vm != nil {
		ws.ensureMapped(r.addr.Page())
	}
	start := e.rec.Start()
	view := r.monoid.Identity()
	e.rec.Stop(w.ID(), metrics.ViewCreation, start)

	start = e.rec.Start()
	if err := ws.private.Insert(r.addr, view, r.monoid); err != nil {
		// The slot can only be occupied if another view was installed for
		// this address during this trace, which Register/Unregister
		// bookkeeping prevents; treat it as a programming error.
		panic(fmt.Sprintf("core: SPA slot %d unexpectedly occupied: %v", r.addr, err))
	}
	e.rec.Stop(w.ID(), metrics.ViewInsertion, start)
	return view
}

// ensureMapped backs SPA page index pi with a physical page in this
// worker's modelled TLMM region (sys_palloc + sys_pmap), once.
func (ws *mmWorker) ensureMapped(pi int) {
	for len(ws.mapped) <= pi {
		ws.mapped = append(ws.mapped, false)
	}
	if ws.mapped[pi] {
		return
	}
	pd := ws.eng.aspace.Phys.Palloc()
	base := tlmm.TLMMBase + uintptr(pi)*tlmm.PageSize
	if err := ws.vm.Pmap(base, []tlmm.PD{pd}); err != nil {
		panic(fmt.Sprintf("core: mapping SPA page %d: %v", pi, err))
	}
	ws.mapped[pi] = true
}

// --- sched.ReducerRuntime hooks ---

// WorkerInit implements sched.ReducerRuntime.  It runs once per worker
// while the attaching runtime is being constructed — before any of that
// runtime's tasks execute — so it sizes the per-worker lookup counters
// from the runtime's actual worker count.  Lookup can then index by
// worker ID directly, and counts are never aliased when the engine config
// and the runtime disagree about the number of workers.  An engine must
// not be attached to a new runtime while a previously attached one is
// executing: the resize would race with that runtime's lock-free Lookup
// reads.  (Sessions couple one engine to one runtime, so no current
// caller does this.)
func (e *MM) WorkerInit(w *sched.Worker) {
	ws := &mmWorker{
		eng:     e,
		w:       w,
		private: spa.NewMapSet(),
	}
	if e.aspace != nil {
		ws.vm = e.aspace.NewThread()
	}
	w.SetLocal(ws)
	e.mu.Lock()
	if n := w.Runtime().Workers(); n > len(e.lookups) {
		e.lookups = append(e.lookups, make([]metrics.PaddedCounter, n-len(e.lookups))...)
		e.rec.EnsureWorkers(n)
	}
	e.closedWorkers = append(e.closedWorkers, ws)
	e.mu.Unlock()
}

// BeginTrace implements sched.ReducerRuntime.  The new trace starts with an
// empty set of private SPA maps; the previous trace's maps (non-empty when
// the worker is helping at a stalled join) are saved in the trace token and
// restored by EndTrace.
func (e *MM) BeginTrace(w *sched.Worker) sched.Trace {
	ws, _ := w.Local().(*mmWorker)
	if ws == nil {
		return &mmTrace{}
	}
	tr := &mmTrace{ws: ws, saved: ws.private}
	if ws.spare != nil {
		ws.private = ws.spare
		ws.spare = nil
	} else {
		ws.private = spa.NewMapSet()
	}
	return tr
}

// EndTrace implements sched.ReducerRuntime: it performs view transferal.
// The worker copies the view pointers from its private SPA maps into public
// SPA pages drawn from the shared pool, zeroing the private slots as it
// sequences through them, returns the public pages as the deposit, and
// restores the suspended outer trace's maps.
func (e *MM) EndTrace(w *sched.Worker, tr sched.Trace) sched.Deposit {
	ws, _ := w.Local().(*mmWorker)
	if ws == nil {
		return nil
	}
	mt, _ := tr.(*mmTrace)
	var dep *MMDeposit
	if !ws.private.IsEmpty() {
		start := e.rec.Start()
		public := spa.NewPooledMapSet(
			func() *spa.Map { return e.pool.Get(w.ID()) },
			func(m *spa.Map) { e.pool.Put(w.ID(), m) },
		)
		moved, err := ws.private.TransferTo(public)
		if err != nil {
			panic(fmt.Sprintf("core: view transferal failed: %v", err))
		}
		e.rec.Stop(w.ID(), metrics.ViewTransferal, start)
		dep = &MMDeposit{views: public, count: moved}
	}
	if mt != nil && mt.saved != nil {
		// The now-empty map set becomes the spare for the next trace.
		ws.spare = ws.private
		ws.private = mt.saved
	}
	if dep == nil {
		return nil
	}
	return dep
}

// Merge implements sched.ReducerRuntime: the hypermerge.  The worker's
// current views are the serially-earlier ones, so each deposited view is
// reduced as current ⊗ deposited.  Deposited views with no matching current
// view are adopted by writing their pointer into the worker's private SPA
// slot (a view insertion).  The emptied public pages are recycled.
func (e *MM) Merge(w *sched.Worker, tr sched.Trace, d sched.Deposit) {
	dep, _ := d.(*MMDeposit)
	if dep == nil {
		return
	}
	ws, _ := w.Local().(*mmWorker)
	if ws == nil {
		return
	}
	start := e.rec.Start()
	reduces := int64(0)
	adopts := int64(0)
	dep.views.Range(func(addr spa.Addr, s spa.Slot) bool {
		if cur := ws.private.Get(addr); cur != nil {
			monoid := s.Monoid.(Monoid)
			combined := monoid.Reduce(cur, s.View)
			if combined != cur {
				if err := ws.private.Update(addr, combined); err != nil {
					panic(fmt.Sprintf("core: hypermerge update: %v", err))
				}
			}
			reduces++
			return true
		}
		if ws.vm != nil {
			ws.ensureMapped(addr.Page())
		}
		if err := ws.private.Insert(addr, s.View, s.Monoid); err != nil {
			panic(fmt.Sprintf("core: hypermerge insert: %v", err))
		}
		adopts++
		return true
	})
	e.rec.Stop(w.ID(), metrics.Hypermerge, start)
	if reduces > 1 {
		e.rec.RecordCount(w.ID(), metrics.Hypermerge, reduces-1)
	}
	if adopts > 0 {
		e.rec.RecordCount(w.ID(), metrics.ViewInsertion, adopts)
	}
	dep.views.Recycle()
	dep.views = nil
	dep.count = 0
}

// MergeRootDeposit implements Engine: the views produced by the root trace
// are folded into the reducers' leftmost views in serial order.
func (e *MM) MergeRootDeposit(d sched.Deposit) {
	dep, _ := d.(*MMDeposit)
	if dep == nil || dep.views == nil {
		return
	}
	e.mu.Lock()
	reg := make(map[spa.Addr]*Reducer, len(e.registry))
	for a, r := range e.registry {
		reg[a] = r
	}
	e.mu.Unlock()
	dep.views.Range(func(addr spa.Addr, s spa.Slot) bool {
		if r, ok := reg[addr]; ok {
			r.absorb(s.View)
			return true
		}
		// The reducer was unregistered while views for it were still in
		// flight; fold into nothing (drop), mirroring a view whose reducer
		// went out of scope.
		return true
	})
	dep.views.Recycle()
	dep.views = nil
	dep.count = 0
}

// --- instrumentation ---

// Overheads implements Engine.
func (e *MM) Overheads() metrics.Breakdown { return e.rec.Snapshot() }

// ResetOverheads implements Engine.
func (e *MM) ResetOverheads() {
	e.rec.Reset()
	for i := range e.lookups {
		e.lookups[i].Store(0)
	}
}

// SetTiming implements Engine.
func (e *MM) SetTiming(on bool) { e.rec.SetTiming(on) }

// SetCountLookups implements Engine.
func (e *MM) SetCountLookups(on bool) { e.countLookups = on }

// Lookups implements Engine.
func (e *MM) Lookups() int64 {
	var n int64
	for i := range e.lookups {
		n += e.lookups[i].Load()
	}
	return n
}

// WorkerPrivateViews reports the number of views currently held in worker
// i's private SPA maps (diagnostic; it should be zero between runs).
func (e *MM) WorkerPrivateViews(i int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i < 0 || i >= len(e.closedWorkers) {
		return 0
	}
	return e.closedWorkers[i].private.Len()
}

var _ Engine = (*MM)(nil)
