package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hypermap"
	"repro/internal/sched"
)

// The seed single-mutex baseline these benchmarks are compared against
// lives in seedbaseline_bench_test.go (package core, so it constructs the
// same Reducer values): BenchmarkRegisterChurnSeedBaseline and
// BenchmarkRegisterGrowthSeedBaseline.

// BenchmarkRegisterChurnDirectory is the same churn through the sharded
// directory on the memory-mapped engine: lock-free slot pop/push per
// shard.  The acceptance target is >= 4x the mutex baseline at -cpu 8.
func BenchmarkRegisterChurnDirectory(b *testing.B) {
	eng := core.NewMM(core.MMConfig{Workers: 8})
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r, err := eng.Register(benchMonoid{})
			if err != nil {
				b.Fatal(err)
			}
			eng.Unregister(r)
		}
	})
}

// BenchmarkRegisterChurnDirectoryHypermap is the same churn through the
// hypermap engine, which shares the directory implementation.
func BenchmarkRegisterChurnDirectoryHypermap(b *testing.B) {
	eng := hypermap.New(hypermap.Config{Workers: 8})
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r, err := eng.Register(benchMonoid{})
			if err != nil {
				b.Fatal(err)
			}
			eng.Unregister(r)
		}
	})
}

// BenchmarkRegisterGrowthDirectory registers without unregistering, so
// every allocation takes a fresh slot and the directory's RCU slot arrays
// and page-growth path are exercised rather than the free lists.
func BenchmarkRegisterGrowthDirectory(b *testing.B) {
	eng := core.NewMM(core.MMConfig{Workers: 8})
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := eng.Register(benchMonoid{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// lookupAtScale measures the lookup fast path with `live` registered
// reducers, rotating over four of them the way BenchmarkMMLookupRaw does.
// The acceptance criterion is that the 1e5-live figure stays within 10% of
// the small-registry figure: the fast path is one array index plus one
// owner compare, independent of the registry population.
func lookupAtScale(b *testing.B, live int) {
	eng := core.NewMM(core.MMConfig{Workers: 1})
	s := core.NewSession(1, eng)
	defer s.Close()
	rs := make([]*core.Reducer, live)
	for i := range rs {
		rs[i], _ = eng.Register(benchMonoid{})
	}
	// Rotate over four reducers spread across the registry so the
	// per-context cache misses on every access, as in the Raw benchmarks.
	probes := []*core.Reducer{rs[0], rs[live/3], rs[2*live/3], rs[live-1]}
	b.ResetTimer()
	_ = s.Run(func(c *sched.Context) {
		idx := 0
		for i := 0; i < b.N; i++ {
			eng.Lookup(c, probes[idx]).(*benchView).v++
			idx++
			if idx == len(probes) {
				idx = 0
			}
		}
	})
}

func BenchmarkMMLookup4Live(b *testing.B)    { lookupAtScale(b, 4) }
func BenchmarkMMLookup100kLive(b *testing.B) { lookupAtScale(b, 100_000) }
