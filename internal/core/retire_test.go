package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hypermap"
	"repro/internal/sched"
)

// oneShardEngines builds one engine of each mechanism with a single
// directory shard, so a recycled address is handed to the very next
// registration and the retirement tests are deterministic.
func oneShardEngines(workers int) map[string]core.Engine {
	return map[string]core.Engine{
		"mm":       core.NewMM(core.MMConfig{Workers: workers, DirectoryShards: 1}),
		"hypermap": hypermap.New(hypermap.Config{Workers: workers, DirectoryShards: 1}),
	}
}

// TestDoubleUnregisterAfterReuseBothEngines is the regression test for the
// seed MM bug: Unregister did not verify registry identity, so a second
// Unregister of a stale handle after slot reuse deleted the new occupant's
// entry and pushed a duplicate address onto the free list.
func TestDoubleUnregisterAfterReuseBothEngines(t *testing.T) {
	for name, eng := range oneShardEngines(1) {
		t.Run(name, func(t *testing.T) {
			r1, err := eng.Register(sumMonoid{})
			if err != nil {
				t.Fatalf("Register: %v", err)
			}
			eng.Unregister(r1)
			r2, _ := eng.Register(sumMonoid{})
			if r2.Addr() != r1.Addr() {
				t.Fatalf("slot not recycled: got %d, want %d", r2.Addr(), r1.Addr())
			}
			// The stale double-unregister: with the seed registry this
			// deleted r2's entry and freed its address a second time.
			eng.Unregister(r1)
			if got := eng.Registered(); got != 1 {
				t.Fatalf("Registered after stale Unregister = %d, want 1", got)
			}
			// No duplicate address may have entered the free list: the next
			// registration must not alias r2's live slot.
			r3, _ := eng.Register(sumMonoid{})
			if r3.Addr() == r2.Addr() {
				t.Fatalf("live address %d handed out twice", r2.Addr())
			}
			// r2 must still function normally.
			s := core.NewSession(1, eng)
			defer s.Close()
			if err := s.Run(func(c *sched.Context) {
				eng.Lookup(c, r2).(*sumView).v += 5
			}); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if got := r2.Value().(*sumView).v; got != 5 {
				t.Fatalf("r2 value = %d, want 5", got)
			}
		})
	}
}

// TestUnregisterReRegisterInsideRunningTrace retires a reducer mid-run,
// recycles its slot to a new reducer, and checks that the new reducer never
// observes the old cached view or the old private-slot view: the retired
// reducer's in-flight updates are dropped, not leaked into the new
// registration.
func TestUnregisterReRegisterInsideRunningTrace(t *testing.T) {
	for name, eng := range oneShardEngines(1) {
		t.Run(name, func(t *testing.T) {
			s := core.NewSession(1, eng)
			defer s.Close()
			r1, _ := eng.Register(sumMonoid{})
			var r2 *core.Reducer
			if err := s.Run(func(c *sched.Context) {
				// Install and warm r1's view (and the per-context cache).
				for i := 0; i < 50; i++ {
					eng.Lookup(c, r1).(*sumView).v++
				}
				eng.Unregister(r1)
				var err error
				r2, err = eng.Register(sumMonoid{})
				if err != nil {
					t.Errorf("re-Register: %v", err)
					return
				}
				if r2.Addr() != r1.Addr() {
					t.Errorf("slot not recycled inside trace: got %d, want %d", r2.Addr(), r1.Addr())
					return
				}
				// The recycled slot must not serve r1's cached or private
				// view: r2 starts from a fresh identity view.
				v2 := eng.Lookup(c, r2).(*sumView)
				if v2.v != 0 {
					t.Errorf("recycled slot leaked a view with value %d", v2.v)
					return
				}
				v2.v += 7
			}); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if got := r2.Value().(*sumView).v; got != 7 {
				t.Fatalf("r2 value = %d, want 7 (old view leaked into the merge?)", got)
			}
			// r1's in-flight updates were dropped at unregistration; its
			// leftmost view stays at the identity.
			if got := r1.Value().(*sumView).v; got != 0 {
				t.Fatalf("retired r1 value = %d, want 0", got)
			}
			// A lookup through a retired handle serves the frozen value
			// rather than creating views.
			if err := s.Run(func(c *sched.Context) {
				if got := eng.Lookup(c, r1).(*sumView).v; got != 0 {
					t.Errorf("retired-handle lookup = %d, want 0", got)
				}
			}); err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}

// TestRetiredHandleLookupDoesNotClobberLiveView looks up a retired handle
// whose address has been recycled to a live reducer, in a context where the
// live reducer already holds a view: the stale lookup must neither return
// nor disturb the live occupant's view.
func TestRetiredHandleLookupDoesNotClobberLiveView(t *testing.T) {
	for name, eng := range oneShardEngines(1) {
		t.Run(name, func(t *testing.T) {
			s := core.NewSession(1, eng)
			defer s.Close()
			r1, _ := eng.Register(sumMonoid{})
			eng.Unregister(r1)
			r2, _ := eng.Register(sumMonoid{})
			if r2.Addr() != r1.Addr() {
				t.Fatalf("slot not recycled: got %d, want %d", r2.Addr(), r1.Addr())
			}
			if err := s.Run(func(c *sched.Context) {
				eng.Lookup(c, r2).(*sumView).v = 41
				// The stale handle shares r2's address but must not reach
				// r2's view.
				if got := eng.Lookup(c, r1).(*sumView).v; got != 0 {
					t.Errorf("stale-handle lookup = %d, want 0", got)
				}
				eng.Lookup(c, r2).(*sumView).v++
			}); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if got := r2.Value().(*sumView).v; got != 42 {
				t.Fatalf("r2 value = %d, want 42", got)
			}
		})
	}
}
