package core

import (
	"sync"
	"testing"

	"repro/internal/spa"
)

// seedRegistry replicates the seed registration path byte-for-byte — one
// engine-wide mutex over a map[spa.Addr]*Reducer with a free-address stack,
// allocating the Reducer and its identity view inside the critical section,
// exactly as MM.Register did before the sharded directory replaced it.  It
// lives in package core so the benchmark constructs the same Reducer values
// the engines do, keeping the baseline honest.
type seedRegistry struct {
	mu        sync.Mutex
	nextID    uint64
	nextAddr  spa.Addr
	freeAddrs []spa.Addr
	registry  map[spa.Addr]*Reducer
}

func newSeedRegistry() *seedRegistry {
	return &seedRegistry{registry: make(map[spa.Addr]*Reducer)}
}

func (e *seedRegistry) register(m Monoid) *Reducer {
	e.mu.Lock()
	defer e.mu.Unlock()
	var addr spa.Addr
	if n := len(e.freeAddrs); n > 0 {
		addr = e.freeAddrs[n-1]
		e.freeAddrs = e.freeAddrs[:n-1]
	} else {
		addr = e.nextAddr
		e.nextAddr++
	}
	e.nextID++
	r := &Reducer{
		id:       e.nextID,
		addr:     addr,
		monoid:   m,
		eng:      nil,
		leftmost: m.Identity(),
	}
	e.registry[addr] = r
	return r
}

func (e *seedRegistry) unregister(r *Reducer) {
	if r == nil {
		return
	}
	e.mu.Lock()
	if _, ok := e.registry[r.addr]; ok {
		delete(e.registry, r.addr)
		e.freeAddrs = append(e.freeAddrs, r.addr)
	}
	e.mu.Unlock()
	r.markRetired()
}

type seedBenchMonoid struct{}

type seedBenchView struct{ v int64 }

func (seedBenchMonoid) Identity() any { return &seedBenchView{} }
func (seedBenchMonoid) Reduce(l, r any) any {
	lv := l.(*seedBenchView)
	lv.v += r.(*seedBenchView).v
	return lv
}

// BenchmarkRegisterChurnSeedBaseline is the seed single-mutex path: the
// reference the directory's registration scaling is measured against (run
// with -cpu 8 for the acceptance comparison).
func BenchmarkRegisterChurnSeedBaseline(b *testing.B) {
	reg := newSeedRegistry()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r := reg.register(seedBenchMonoid{})
			reg.unregister(r)
		}
	})
}

// BenchmarkRegisterGrowthSeedBaseline registers without unregistering on
// the seed path, the counterpart of BenchmarkRegisterGrowthDirectory.
func BenchmarkRegisterGrowthSeedBaseline(b *testing.B) {
	reg := newSeedRegistry()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			reg.register(seedBenchMonoid{})
		}
	})
}
