package core

import "sync/atomic"

// This file implements adaptive merge tuning: instead of running the
// hypermerge pipeline with whatever MergeBatchSize/ParallelMergeThreshold
// the constructor picked, an engine built with MMConfig.AdaptiveMerge
// re-derives both knobs from the live pipeline counters.  The Xeon Phi
// MapReduce literature's observation motivates this: merge/batch
// parameters are workload-dependent enough that a fixed constant is wrong
// for somebody — a 4-reducer histogram and a 100k-reducer analytics job
// want very different fan-out points.
//
// Correctness never depends on the knob values: batching partitions the
// reduce pairs of one hypermerge into contiguous groups, each pair is
// still folded exactly once with the serially-earlier view on the left,
// and distinct pairs touch disjoint slots.  Tuning therefore changes
// scheduling granularity only; the noncommutative-monoid equivalence
// suites run with tuning enabled to pin that down.
//
// The controller is deliberately simple and observable (every input and
// output is exported by the metrics sampler):
//
//   - Window: every mergeTuneWindow completed hypermerges, one retune
//     runs.  Concurrent merges elect the retuner with a CAS; losers skip.
//   - Batch size: a fanned-out merge should split into about two batches
//     per worker — enough parallelism to occupy thieves without paying
//     fork overhead for tiny batches.  With avg = reduce pairs per
//     hypermerge observed over the window and P workers, the target is
//     avg/(2P), rounded up to a power of two and clamped to
//     [minMergeBatch, maxMergeBatch].
//   - Parallel threshold: fanning out pays only when it yields several
//     batches, so the threshold tracks 4× the batch size (clamped to
//     [minParallelThreshold, maxParallelThreshold]).  A pipeline whose
//     identity-elision rate exceeds tunerElisionBias additionally doubles
//     the threshold: elision-dominated merges spend their time in the
//     serial partition pass, which fan-out cannot parallelise, so the
//     fork overhead buys nothing.
//
// Knobs the constructor set explicitly (batchFixed/thresholdFixed) are
// user overrides the tuner leaves alone; the remaining knob still adapts.

// Tuning-policy constants.
const (
	// mergeTuneWindow is the number of completed hypermerges between
	// retunes.
	mergeTuneWindow = 32
	// minMergeBatch and maxMergeBatch clamp the adaptive batch size.
	minMergeBatch = 8
	maxMergeBatch = 512
	// minParallelThreshold and maxParallelThreshold clamp the adaptive
	// fan-out threshold.
	minParallelThreshold = 32
	maxParallelThreshold = 8192
	// tunerElisionBias is the identity-elision rate above which the tuner
	// biases toward serial merging (doubling the fan-out threshold).
	tunerElisionBias = 0.5
)

// mergeTuner holds the adaptive controller's window state.  The last*
// fields snapshot the pipeline counters at the previous retune so each
// window works on deltas; retuning is a single-winner CAS election so the
// knobs are written by at most one goroutine at a time.
type mergeTuner struct {
	batchFixed     bool // MergeBatchSize was set explicitly: never retuned
	thresholdFixed bool // ParallelMergeThreshold was set explicitly: never retuned

	retuning     atomic.Bool  // CAS election lock for the retune critical section
	lastMerges   atomic.Int64 // Merges counter at the last retune
	lastReduces  atomic.Int64 // Reduces counter at the last retune
	lastElisions atomic.Int64 // IdentityElisions counter at the last retune
	retunes      atomic.Int64 // completed retunes (exported as a metric)
}

// maybeRetune runs the controller if a full window of hypermerges has
// completed since the last retune.  The fast path — window not full — is
// one atomic load and a compare.  Safe to call concurrently from any
// worker finishing a merge.
func (t *mergeTuner) maybeRetune(e *MM) {
	merges := e.mergePipe.Merges.Load()
	if merges-t.lastMerges.Load() < mergeTuneWindow {
		return
	}
	if !t.retuning.CompareAndSwap(false, true) {
		return // another worker is retuning this window
	}
	defer t.retuning.Store(false)
	last := t.lastMerges.Load()
	if merges-last < mergeTuneWindow {
		return // the winner of a racing election already consumed the window
	}
	reduces := e.mergePipe.Reduces.Load()
	elisions := e.mergePipe.IdentityElisions.Load()
	dM := merges - last
	dR := reduces - t.lastReduces.Load()
	dE := elisions - t.lastElisions.Load()
	t.lastMerges.Store(merges)
	t.lastReduces.Store(reduces)
	t.lastElisions.Store(elisions)

	avg := float64(dR) / float64(dM) // observed reduce pairs per hypermerge
	workers := e.nworkers.Load()
	if workers < 1 {
		workers = 1
	}

	batch := e.mergeBatch.Load()
	if !t.batchFixed {
		batch = int64(ceilPow2(int(avg / float64(2*workers))))
		if batch < minMergeBatch {
			batch = minMergeBatch
		}
		if batch > maxMergeBatch {
			batch = maxMergeBatch
		}
		e.mergeBatch.Store(batch)
	}
	if !t.thresholdFixed {
		threshold := 4 * batch
		if dR+dE > 0 && float64(dE)/float64(dR+dE) > tunerElisionBias {
			threshold *= 2
		}
		if threshold < minParallelThreshold {
			threshold = minParallelThreshold
		}
		if threshold > maxParallelThreshold {
			threshold = maxParallelThreshold
		}
		e.parallelThreshold.Store(threshold)
	}
	t.retunes.Add(1)
}

// MergeTuning reports the live batching knobs, whether the adaptive tuner
// is driving them, and how many retunes it has performed.  The values are
// the ones the next hypermerge will load.
func (e *MM) MergeTuning() (batchSize, parallelThreshold int, adaptive bool, retunes int64) {
	batchSize = int(e.mergeBatch.Load())
	parallelThreshold = int(e.parallelThreshold.Load())
	if e.tuner != nil {
		adaptive = true
		retunes = e.tuner.retunes.Load()
	}
	return
}
