package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// This file benchmarks the word-packed SPA storage layer: the post-steal
// first lookup (view creation) on the arena vs the heap path, and the
// hypermerge at varying written-view fractions (identity-view elision).
// `make bench-spa` runs them; bench-json records them in the BENCH_pr5
// artifact.

// benchFirstLookup measures the post-steal first lookup: every op resolves
// a reducer that has no view in the current trace, so it runs the full
// slow path (identity-view creation + slot insertion).  The trace is
// rolled every K ops — EndTrace + hypermerge into the root trace — which
// both recycles the views (funding the arena free lists) and guarantees
// the next K lookups are first lookups again.  The roll cost is amortised
// across K ops and reported in ns/op like the paper amortises view
// bookkeeping against steals.
func benchFirstLookup(b *testing.B, m core.Monoid, bump func(v any)) {
	eng := core.NewMM(core.MMConfig{
		Workers: 1,
		// Keep the merge serial: the fan-out path's task plumbing would
		// charge scheduler allocations to the lookup measurement.
		ParallelMergeThreshold: 1 << 30,
	})
	s := core.NewSession(1, eng)
	defer s.Close()
	const K = 256
	rs := make([]*core.Reducer, K)
	for i := range rs {
		rs[i], _ = eng.Register(m)
	}
	b.ReportAllocs()
	b.ResetTimer()
	_ = s.Run(func(c *sched.Context) {
		w := c.Worker()
		tr := eng.BeginTrace(w)
		k := 0
		for i := 0; i < b.N; i++ {
			bump(eng.Lookup(c, rs[k]))
			k++
			if k == K {
				d := eng.EndTrace(w, tr)
				eng.Merge(w, w.CurrentTrace(), d)
				tr = eng.BeginTrace(w)
				k = 0
			}
		}
		d := eng.EndTrace(w, tr)
		eng.Merge(w, w.CurrentTrace(), d)
	})
	b.StopTimer()
	st := eng.ArenaStats()
	if st.Allocs > 0 {
		b.ReportMetric(float64(st.FreeHits)/float64(st.Allocs), "arena-reuse")
	}
}

// BenchmarkMMFirstLookupArena is the arena path: an ArenaMonoid's identity
// views are carved from the worker's view arena, so after warm-up the
// whole steal→lookup→merge cycle allocates nothing (0 allocs/op).
func BenchmarkMMFirstLookupArena(b *testing.B) {
	benchFirstLookup(b, arenaSumMonoid{}, func(v any) { *v.(*int64)++ })
}

// BenchmarkMMFirstLookupHeap is the same cycle over a plain monoid whose
// Identity calls the heap allocator — the pre-arena baseline.
func BenchmarkMMFirstLookupHeap(b *testing.B) {
	benchFirstLookup(b, sumMonoid{}, func(v any) { v.(*sumView).v++ })
}

// benchMergeWritten measures one full trace cycle (begin, touch K
// reducers, transfer, hypermerge) with a controlled fraction of written
// views: the rest are resolved read-only and must be elided — no reduce
// call, and for the all-read-only case no pagepool traffic at all.
func benchMergeWritten(b *testing.B, writtenPct int) {
	eng := core.NewMM(core.MMConfig{
		Workers:                1,
		ParallelMergeThreshold: 1 << 30,
	})
	s := core.NewSession(1, eng)
	defer s.Close()
	const K = 256
	rs := make([]*core.Reducer, K)
	for i := range rs {
		rs[i], _ = eng.Register(arenaSumMonoid{})
	}
	written := K * writtenPct / 100
	b.ReportAllocs()
	b.ResetTimer()
	_ = s.Run(func(c *sched.Context) {
		w := c.Worker()
		for i := 0; i < b.N; i++ {
			tr := eng.BeginTrace(w)
			for k, r := range rs {
				if k < written {
					*eng.Lookup(c, r).(*int64)++
				} else {
					word, _ := eng.LookupWord(c, r, 0, false)
					_ = word
				}
			}
			d := eng.EndTrace(w, tr)
			eng.Merge(w, w.CurrentTrace(), d)
		}
	})
	b.StopTimer()
	ms := eng.MergeStats()
	pool := eng.PoolStats()
	n := float64(b.N)
	b.ReportMetric(float64(ms.Reduces+ms.Adopts)/n, "slots-merged/cycle")
	b.ReportMetric(float64(ms.IdentityElisions)/n, "elided/cycle")
	b.ReportMetric(float64(pool.RoundTrips())/n, "poolops/cycle")
}

func BenchmarkMMMergeWritten0(b *testing.B)   { benchMergeWritten(b, 0) }
func BenchmarkMMMergeWritten50(b *testing.B)  { benchMergeWritten(b, 50) }
func BenchmarkMMMergeWritten100(b *testing.B) { benchMergeWritten(b, 100) }
