// Package core implements reducer hyperobjects and, in particular, the
// paper's primary contribution: the memory-mapping reducer mechanism that
// Cilk-M uses in place of Cilk Plus's hypermaps.
//
// A reducer is defined by an algebraic monoid (T, ⊗, e).  During parallel
// execution each worker operates on its own local view of the reducer; the
// runtime creates identity views lazily when a stolen computation first
// touches a reducer, transfers views out when a stolen branch completes,
// and reduces ("hypermerges") view sets back together in serial order at
// joins, so that the final value equals the value a serial execution would
// produce.
//
// The memory-mapping mechanism (type MM) answers the paper's four design
// questions as follows:
//
//  1. Operating-system support: each worker owns a modelled TLMM region
//     (package tlmm) in which the same virtual address resolves to that
//     worker's own SPA pages.
//  2. Thread-local indirection: the TLMM region holds only pointers to
//     views; the views themselves live on the ordinary shared heap.
//  3. View organisation: pointers are arranged in SPA map pages
//     (package spa), giving constant-time lookup and linear-time
//     sequencing.
//  4. View transferal: on completion of a stolen branch the worker copies
//     its private SPA-map slots into public SPA pages drawn from a
//     Hoard-style pool (package pagepool) and zeroes the private ones, so
//     hypermerges never remap memory.
//
// Around that mechanism the package grows the runtime pieces a resident
// engine needs: a sharded lock-free reducer directory (type Directory),
// per-worker size-classed view arenas that recycle identity views through
// the merge, a batched hypermerge pipeline that fans out through the
// scheduler past a threshold, and — behind MMConfig.AdaptiveMerge — a
// tuner (mergetune.go) that retunes the batching knobs from the live
// pipeline counters at trace boundaries.  MM implements metrics.Source, so
// every one of those counters is exportable on a scrape endpoint; see
// docs/OBSERVABILITY.md at the repository root.
package core
