package core_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/spa"
)

// newDir is a directory with no engine attached: registration through the
// directory tags reducers with a nil engine, which none of these tests
// dereference.
func newDir(cfg core.DirectoryConfig) *core.Directory { return core.NewDirectory(cfg) }

func TestDirectoryShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {100, 128},
	} {
		d := newDir(core.DirectoryConfig{Shards: tc.in})
		if got := d.Shards(); got != tc.want {
			t.Fatalf("Shards(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	// The default is a power of two sized from the worker count.
	d := newDir(core.DirectoryConfig{Workers: 3})
	if got := d.Shards(); got < 8 || got&(got-1) != 0 {
		t.Fatalf("default shard count %d: want a power of two >= 8", got)
	}
}

// TestDirectorySequentialAddrsDense checks the striped address layout: a
// single-threaded registration sequence receives the dense addresses
// 0, 1, 2, ... regardless of the shard count, so the SPA page span stays
// proportional to the number of reducers.
func TestDirectorySequentialAddrsDense(t *testing.T) {
	d := newDir(core.DirectoryConfig{Shards: 16})
	for i := 0; i < 1000; i++ {
		r, err := d.Register(nil, sumMonoid{})
		if err != nil {
			t.Fatalf("Register %d: %v", i, err)
		}
		if r.Addr() != spa.Addr(i) {
			t.Fatalf("registration %d got address %d", i, r.Addr())
		}
	}
	if d.Live() != 1000 {
		t.Fatalf("Live = %d, want 1000", d.Live())
	}
}

func TestDirectoryRecycleAndEpochValidity(t *testing.T) {
	d := newDir(core.DirectoryConfig{Shards: 1})
	r1, _ := d.Register(nil, sumMonoid{})
	if !d.Valid(r1) {
		t.Fatal("fresh registration not valid")
	}
	if got := d.Get(r1.Addr()); got != r1 {
		t.Fatalf("Get = %p, want r1", got)
	}
	if !d.Unregister(r1) {
		t.Fatal("Unregister returned false for a live reducer")
	}
	if d.Valid(r1) {
		t.Fatal("retired handle still valid")
	}
	if d.Get(r1.Addr()) != nil {
		t.Fatal("Get returned a retired reducer")
	}
	r2, _ := d.Register(nil, sumMonoid{})
	if r2.Addr() != r1.Addr() {
		t.Fatalf("address not recycled: got %d, want %d", r2.Addr(), r1.Addr())
	}
	// The epoch stamp distinguishes the incarnations of the shared slot.
	if d.Valid(r1) {
		t.Fatal("stale handle satisfied by recycled slot")
	}
	if !d.Valid(r2) {
		t.Fatal("recycled registration not valid")
	}
	if got := d.Get(r2.Addr()); got != r2 {
		t.Fatalf("Get after recycle = %p, want r2", got)
	}
}

// TestDirectoryDoubleUnregister is the regression test for the seed MM bug:
// a double-Unregister after slot reuse must neither delete the new
// occupant's entry nor push a duplicate address onto the free list.
func TestDirectoryDoubleUnregister(t *testing.T) {
	d := newDir(core.DirectoryConfig{Shards: 1})
	r1, _ := d.Register(nil, sumMonoid{})
	if !d.Unregister(r1) {
		t.Fatal("first Unregister failed")
	}
	r2, _ := d.Register(nil, sumMonoid{})
	if r2.Addr() != r1.Addr() {
		t.Fatalf("slot not recycled: got %d, want %d", r2.Addr(), r1.Addr())
	}
	// Stale second unregister: must be a no-op.
	if d.Unregister(r1) {
		t.Fatal("double Unregister of a stale handle succeeded")
	}
	if d.Live() != 1 || !d.Valid(r2) {
		t.Fatalf("double unregister disturbed the live occupant: live=%d valid=%v", d.Live(), d.Valid(r2))
	}
	// No duplicate address may have entered the free list: the next
	// registration must get a fresh address, not r2's.
	r3, _ := d.Register(nil, sumMonoid{})
	if r3.Addr() == r2.Addr() {
		t.Fatalf("free list handed out a live address %d twice", r2.Addr())
	}
	st := d.Stats()
	if st.StaleUnregisters != 1 {
		t.Fatalf("StaleUnregisters = %d, want 1", st.StaleUnregisters)
	}
}

func TestDirectoryGrowHookOrdering(t *testing.T) {
	var pages []int
	d := newDir(core.DirectoryConfig{
		Shards: 4,
		OnGrow: func(p int) error { pages = append(pages, p); return nil },
	})
	n := 2*spa.SlotsPerMap + 1 // spans three SPA pages
	for i := 0; i < n; i++ {
		if _, err := d.Register(nil, sumMonoid{}); err != nil {
			t.Fatalf("Register %d: %v", i, err)
		}
	}
	if len(pages) != 3 {
		t.Fatalf("OnGrow ran %d times, want 3", len(pages))
	}
	for i, p := range pages {
		if p != i {
			t.Fatalf("OnGrow order %v: want ascending from 0", pages)
		}
	}
	if st := d.Stats(); st.GrownPages != 3 {
		t.Fatalf("GrownPages = %d, want 3", st.GrownPages)
	}
}

func TestDirectoryGrowHookErrorFailsRegistration(t *testing.T) {
	fail := false
	d := newDir(core.DirectoryConfig{
		Shards: 1,
		OnGrow: func(p int) error {
			if fail {
				return errTest
			}
			return nil
		},
	})
	for i := 0; i < spa.SlotsPerMap; i++ {
		if _, err := d.Register(nil, sumMonoid{}); err != nil {
			t.Fatalf("Register %d: %v", i, err)
		}
	}
	fail = true
	if _, err := d.Register(nil, sumMonoid{}); err == nil {
		t.Fatal("registration crossing a failed grow succeeded")
	}
	live := d.Live()
	fail = false
	r, err := d.Register(nil, sumMonoid{})
	if err != nil {
		t.Fatalf("Register after grow recovered: %v", err)
	}
	// The failed registration must not have leaked its address.
	if r.Addr() != spa.Addr(spa.SlotsPerMap) || d.Live() != live+1 {
		t.Fatalf("failed registration leaked state: addr=%d live=%d", r.Addr(), d.Live())
	}
}

// TestDirectoryConcurrentChurn hammers Register/Unregister from many
// goroutines and checks the directory's global invariants afterwards:
// the live count is exact, every live reducer is valid, and no two live
// reducers share an address.
func TestDirectoryConcurrentChurn(t *testing.T) {
	d := newDir(core.DirectoryConfig{Shards: 8})
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	keep := make([][]*core.Reducer, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r, err := d.Register(nil, sumMonoid{})
				if err != nil {
					t.Errorf("Register: %v", err)
					return
				}
				if i%3 == 0 {
					keep[g] = append(keep[g], r)
				} else {
					if !d.Unregister(r) {
						t.Error("Unregister of own live reducer failed")
						return
					}
					d.Unregister(r) // stale double-unregister must be a no-op
				}
			}
		}()
	}
	wg.Wait()
	want := 0
	seen := make(map[spa.Addr]bool)
	for _, rs := range keep {
		for _, r := range rs {
			want++
			if !d.Valid(r) {
				t.Fatalf("kept reducer %d invalid", r.ID())
			}
			if seen[r.Addr()] {
				t.Fatalf("two live reducers share address %d", r.Addr())
			}
			seen[r.Addr()] = true
		}
	}
	if d.Live() != want {
		t.Fatalf("Live = %d, want %d", d.Live(), want)
	}
	n := 0
	d.Range(func(r *core.Reducer) bool { n++; return true })
	if n != want {
		t.Fatalf("Range visited %d live reducers, want %d", n, want)
	}
	st := d.Stats()
	if st.Registers != goroutines*perG {
		t.Fatalf("Registers = %d, want %d", st.Registers, goroutines*perG)
	}
	if st.Recycles+st.FreshSlots != st.Registers {
		t.Fatalf("Recycles+FreshSlots = %d, want %d", st.Recycles+st.FreshSlots, st.Registers)
	}
	if st.Unregisters != int64(goroutines*perG-want) {
		t.Fatalf("Unregisters = %d, want %d", st.Unregisters, goroutines*perG-want)
	}
}

// errTest is a sentinel for the grow-hook failure test.
var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "test grow failure" }
