package core

import (
	"testing"
	"unsafe"

	"repro/internal/spa"
)

// mkCurSlot packs a (view, owner) pair into a written SPA slot the way the
// merge partition would find it in the current trace's maps.
func mkCurSlot(t *testing.T, view, owner unsafe.Pointer) spa.Slot {
	t.Helper()
	m := spa.New()
	if err := m.Insert(0, view, owner, spa.FlagWritten); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	return m.SlotAt(0)
}

// TestSortOpsByLocality pins the locality sort's ordering contract: the
// returned permutation groups reduce ops by arena size class first
// (heap-backed views, class -1, lead), ascends by current-view address
// within a class, keeps ops with identical (class, address) keys in their
// original relative order (the packed index makes the sort stable), and
// leaves the ops slice itself untouched — the panic-cleanup and dead-view
// sweeps iterate it positionally.  An already-ordered partition returns
// nil ("run in natural order").
func TestSortOpsByLocality(t *testing.T) {
	backing := make([]int64, 64)
	ptr := func(i int) unsafe.Pointer { return unsafe.Pointer(&backing[i]) }
	heap := &Reducer{arenaClass: -1}
	c0 := &Reducer{arenaClass: 0}
	c2 := &Reducer{arenaClass: 2}
	mk := func(r *Reducer, vi, tag int) mergeOp {
		return mergeOp{
			addr:  spa.Addr(tag), // tag marks the op's original position
			owner: r,
			cur:   mkCurSlot(t, ptr(vi), unsafe.Pointer(r)),
		}
	}

	ops := []mergeOp{
		mk(c2, 8, 0),
		mk(c0, 40, 1),
		mk(heap, 0, 2),
		mk(c0, 16, 3),
		mk(c2, 8, 4), // identical key to index 0: stability tiebreak
		mk(heap, 48, 5),
	}
	order := sortOpsByLocality(ops)
	want := []uint32{2, 5, 3, 1, 0, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	for i := range ops {
		if ops[i].addr != spa.Addr(i) {
			t.Fatalf("sortOpsByLocality moved op %d (tag %d)", i, ops[i].addr)
		}
	}

	// Feed the ops back in their locality order: the partition is now
	// sorted, so the pre-pass must report natural order with no sort.
	resorted := make([]mergeOp, len(ops))
	for i, j := range order {
		resorted[i] = ops[j]
	}
	if got := sortOpsByLocality(resorted); got != nil {
		t.Fatalf("ordered partition still returned a permutation: %v", got)
	}
}
