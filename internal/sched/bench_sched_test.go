package sched

import (
	"runtime"
	"testing"
)

// BenchmarkForkNoSteal measures the serial fast path of Fork: a single
// worker forks trivial branches, so no continuation is ever stolen and the
// paper's "no-steal runs like serial code" property is exercised directly.
// The target is 0 allocs/op: task and join objects must come from the
// worker's free lists.
func BenchmarkForkNoSteal(b *testing.B) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	b.ReportAllocs()
	_ = rt.RunAndMerge(func(c *Context) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Fork(func(*Context) {}, func(*Context) {})
		}
	})
}

// BenchmarkForkNoStealDepth8 forks through a small recursion so the deque
// holds several continuations at once, exercising pushBottom/popBottomIf at
// depth rather than at a constantly-empty deque.
func BenchmarkForkNoStealDepth8(b *testing.B) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	var rec func(c *Context, d int)
	rec = func(c *Context, d int) {
		if d == 0 {
			return
		}
		c.Fork(
			func(c *Context) { rec(c, d-1) },
			func(c *Context) { rec(c, d-1) },
		)
	}
	b.ReportAllocs()
	_ = rt.RunAndMerge(func(c *Context) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec(c, 8)
		}
	})
}

// BenchmarkStealThroughput measures the cost of moving tasks through the
// deque from the thief's end: batches are pushed at the bottom and drained
// entirely by stealTop.  With the Chase–Lev deque each steal is one CAS
// (O(1)); the old mutex deque shifted the whole remaining slice per steal
// (O(n)), so this benchmark degrades quadratically in the batch size there.
func BenchmarkStealThroughput(b *testing.B) {
	const batch = 4096
	var d deque
	tasks := make([]*task, batch)
	for i := range tasks {
		tasks[i] = &task{}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		for _, t := range tasks {
			d.pushBottom(t)
		}
		for d.stealTop() != nil {
		}
	}
}

// BenchmarkParallelForOverhead runs a grain-1 parallel loop with a trivial
// body, measuring the end-to-end per-iteration cost of ParallelFor's
// recursive fork tree.
func BenchmarkParallelForOverhead(b *testing.B) {
	rt := New(Config{Workers: runtime.GOMAXPROCS(0)})
	defer rt.Close()
	b.ReportAllocs()
	b.ResetTimer()
	_ = rt.RunAndMerge(func(c *Context) {
		c.ParallelForGrain(0, b.N, 1, func(*Context, int) {})
	})
}

// BenchmarkParallelForFib computes fib(20) by naive binary Fork recursion
// with no serial cutoff — the classic Cilk fork-overhead stress test (about
// 10946 forks per fib call, nearly all resolved on the fast path).
func BenchmarkParallelForFib(b *testing.B) {
	rt := New(Config{Workers: runtime.GOMAXPROCS(0)})
	defer rt.Close()
	var fib func(c *Context, n int, out *int64)
	fib = func(c *Context, n int, out *int64) {
		if n < 2 {
			*out = int64(n)
			return
		}
		var x, y int64
		c.Fork(
			func(c *Context) { fib(c, n-1, &x) },
			func(c *Context) { fib(c, n-2, &y) },
		)
		*out = x + y
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out int64
		_ = rt.RunAndMerge(func(c *Context) { fib(c, 20, &out) })
		if out != 6765 {
			b.Fatalf("fib(20) = %d, want 6765", out)
		}
	}
}
