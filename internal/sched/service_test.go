package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestService builds a small service over a fresh runtime.
func newTestService(t *testing.T, cfg ServiceConfig) *Service {
	t.Helper()
	rt := New(Config{Workers: 4})
	return NewService(rt, cfg)
}

// TestServiceSubmitConcurrent drives many concurrent submitters through one
// service and checks every job ran exactly once with a correct result.
func TestServiceSubmitConcurrent(t *testing.T) {
	s := newTestService(t, ServiceConfig{Queue: 8})
	const jobs = 64
	var total atomic.Int64
	var wg sync.WaitGroup
	handles := make([]*JobHandle, jobs)
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {
				var sum atomic.Int64
				c.ParallelFor(0, 100, func(c *Context, j int) { sum.Add(1) })
				total.Add(sum.Load())
			}})
			handles[i], errs[i] = h, err
		}()
	}
	wg.Wait()
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: Submit failed: %v", i, errs[i])
		}
		if err := handles[i].Wait(); err != nil {
			t.Fatalf("job %d: Wait: %v", i, err)
		}
	}
	if got := total.Load(); got != jobs*100 {
		t.Fatalf("total = %d, want %d", got, jobs*100)
	}
	st := s.Stats()
	if st.Admitted != jobs || st.Settled != jobs {
		t.Fatalf("stats admitted=%d settled=%d, want %d/%d", st.Admitted, st.Settled, jobs, jobs)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServicePanicContainment checks one tenant's panic surfaces as a
// *PanicError on its own handle and perturbs nothing else.
func TestServicePanicContainment(t *testing.T) {
	s := newTestService(t, ServiceConfig{})
	bad, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {
		c.Fork(func(c *Context) { panic("tenant blew up") }, func(c *Context) {})
	}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	var sum atomic.Int64
	good, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {
		c.ParallelFor(0, 1000, func(c *Context, i int) { sum.Add(1) })
	}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	werr := bad.Wait()
	var pe *PanicError
	if !errors.As(werr, &pe) || pe.Value != "tenant blew up" {
		t.Fatalf("bad job error = %v, want PanicError(tenant blew up)", werr)
	}
	if err := good.Wait(); err != nil {
		t.Fatalf("good job: %v", err)
	}
	if sum.Load() != 1000 {
		t.Fatalf("good job sum = %d, want 1000", sum.Load())
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServiceAdmitReject saturates a 1-slot queue on a blocked pool and
// checks the reject policy answers ErrOverloaded within bounded time while
// the in-flight job still completes correctly.
func TestServiceAdmitReject(t *testing.T) {
	rt := New(Config{Workers: 1})
	s := NewService(rt, ServiceConfig{Queue: 1, Admit: AdmitReject})
	release := make(chan struct{})
	ran := make(chan struct{})
	blocker, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {
		close(ran)
		<-release
	}})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-ran
	queued, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {}})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	start := time.Now()
	if _, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {}}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overload Submit error = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("reject took %v, want immediate", d)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	close(release)
	if err := blocker.Wait(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	if err := queued.Wait(); err != nil {
		t.Fatalf("queued: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServiceAdmitShedOldest checks the shed policy evicts the oldest
// lowest-priority queued job, completing its handle with ErrOverloaded,
// and admits the newcomer.
func TestServiceAdmitShedOldest(t *testing.T) {
	rt := New(Config{Workers: 1})
	s := NewService(rt, ServiceConfig{Queue: 2, Admit: AdmitShedOldest})
	release := make(chan struct{})
	ran := make(chan struct{})
	blocker, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {
		close(ran)
		<-release
	}})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-ran
	var lowRan, highRan, newRan atomic.Bool
	low, err := s.Submit(context.Background(), JobSpec{Priority: 0, Fn: func(c *Context) { lowRan.Store(true) }})
	if err != nil {
		t.Fatalf("Submit low: %v", err)
	}
	high, err := s.Submit(context.Background(), JobSpec{Priority: 5, Fn: func(c *Context) { highRan.Store(true) }})
	if err != nil {
		t.Fatalf("Submit high: %v", err)
	}
	// Queue full (low, high): the next submission sheds `low`, the oldest
	// job of the lowest priority class.
	newer, err := s.Submit(context.Background(), JobSpec{Priority: 0, Fn: func(c *Context) { newRan.Store(true) }})
	if err != nil {
		t.Fatalf("Submit newer: %v", err)
	}
	if werr := low.Wait(); !errors.Is(werr, ErrOverloaded) {
		t.Fatalf("shed job error = %v, want ErrOverloaded", werr)
	}
	close(release)
	if err := blocker.Wait(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	if err := high.Wait(); err != nil {
		t.Fatalf("high: %v", err)
	}
	if err := newer.Wait(); err != nil {
		t.Fatalf("newer: %v", err)
	}
	if lowRan.Load() {
		t.Fatal("shed job ran")
	}
	if !highRan.Load() || !newRan.Load() {
		t.Fatal("surviving jobs did not run")
	}
	if got := s.Stats().Shed; got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServiceAdmitBlock checks the block policy holds the submitter until
// space frees, and that a blocked submitter's context cancellation fails
// the submission with the context's error.
func TestServiceAdmitBlock(t *testing.T) {
	rt := New(Config{Workers: 1})
	s := NewService(rt, ServiceConfig{Queue: 1, Admit: AdmitBlock})
	release := make(chan struct{})
	ran := make(chan struct{})
	blocker, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {
		close(ran)
		<-release
	}})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-ran
	queued, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {}})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}

	// A submitter with a cancelled context must not block forever.
	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, JobSpec{Fn: func(c *Context) {}})
		cancelled <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it block on the full queue
	cancel()
	select {
	case err := <-cancelled:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled blocked Submit error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Submit ignored its context cancellation")
	}

	// A patient submitter gets in once the queue drains.
	blocked := make(chan *JobHandle, 1)
	go func() {
		h, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {}})
		if err != nil {
			t.Errorf("blocked Submit: %v", err)
		}
		blocked <- h
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := blocker.Wait(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	if err := queued.Wait(); err != nil {
		t.Fatalf("queued: %v", err)
	}
	select {
	case h := <-blocked:
		if err := h.Wait(); err != nil {
			t.Fatalf("blocked job: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Submit never unblocked after space freed")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServicePriorityOrder checks queued jobs dispatch in priority order,
// FIFO within a class.
func TestServicePriorityOrder(t *testing.T) {
	rt := New(Config{Workers: 1})
	s := NewService(rt, ServiceConfig{Queue: 8})
	release := make(chan struct{})
	ran := make(chan struct{})
	blocker, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {
		close(ran)
		<-release
	}})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-ran
	var mu sync.Mutex
	var order []int
	submit := func(tag, prio int) *JobHandle {
		h, err := s.Submit(context.Background(), JobSpec{Priority: prio, Fn: func(c *Context) {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
		}})
		if err != nil {
			t.Fatalf("Submit %d: %v", tag, err)
		}
		return h
	}
	hs := []*JobHandle{submit(1, 0), submit(2, 5), submit(3, 0), submit(4, 5)}
	close(release)
	if err := blocker.Wait(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	for i, h := range hs {
		if err := h.Wait(); err != nil {
			t.Fatalf("job %d: %v", i+1, err)
		}
	}
	want := []int{2, 4, 1, 3}
	mu.Lock()
	defer mu.Unlock()
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServiceDeadline checks a queued job whose Timeout expires before a
// worker takes it completes with context.DeadlineExceeded and never runs.
func TestServiceDeadline(t *testing.T) {
	rt := New(Config{Workers: 1})
	s := NewService(rt, ServiceConfig{Queue: 4})
	release := make(chan struct{})
	ran := make(chan struct{})
	blocker, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {
		close(ran)
		<-release
	}})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-ran
	var doomedRan atomic.Bool
	doomed, err := s.Submit(context.Background(), JobSpec{
		Timeout: 20 * time.Millisecond,
		Fn:      func(c *Context) { doomedRan.Store(true) },
	})
	if err != nil {
		t.Fatalf("Submit doomed: %v", err)
	}
	if werr := doomed.Wait(); !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("doomed error = %v, want DeadlineExceeded", werr)
	}
	if doomedRan.Load() {
		t.Fatal("expired job ran anyway")
	}
	close(release)
	if err := blocker.Wait(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	if got := s.Stats().DeadlineMisses; got != 1 {
		t.Fatalf("DeadlineMisses = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServiceRunningDeadline checks a deadline firing mid-execution unblocks
// the waiter with DeadlineExceeded while the job unwinds at its checkpoints
// and the pool settles to quiescence.
func TestServiceRunningDeadline(t *testing.T) {
	s := newTestService(t, ServiceConfig{Queue: 4})
	h, err := s.Submit(context.Background(), JobSpec{
		Timeout: 20 * time.Millisecond,
		Fn: func(c *Context) {
			for i := 0; i < 1_000_000; i++ {
				c.Fork(func(c *Context) { time.Sleep(50 * time.Microsecond) },
					func(c *Context) { time.Sleep(50 * time.Microsecond) })
			}
		},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if werr := h.Wait(); !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want DeadlineExceeded", werr)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close (quiescence): %v", err)
	}
}

// TestServiceCancelHandle checks JobHandle.Cancel evicts a queued job with
// context.Canceled.
func TestServiceCancelHandle(t *testing.T) {
	rt := New(Config{Workers: 1})
	s := NewService(rt, ServiceConfig{Queue: 4})
	release := make(chan struct{})
	ran := make(chan struct{})
	blocker, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {
		close(ran)
		<-release
	}})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-ran
	var victimRan atomic.Bool
	victim, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) { victimRan.Store(true) }})
	if err != nil {
		t.Fatalf("Submit victim: %v", err)
	}
	victim.Cancel()
	if werr := victim.Wait(); !errors.Is(werr, context.Canceled) {
		t.Fatalf("cancelled error = %v, want context.Canceled", werr)
	}
	if victimRan.Load() {
		t.Fatal("cancelled job ran")
	}
	close(release)
	if err := blocker.Wait(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServiceWatchdogStall submits a job that makes no scheduler-visible
// progress (a serial poll loop, no forks) and checks the watchdog cancels
// it with a *StallError carrying a stack dump, then the pool drains clean.
func TestServiceWatchdogStall(t *testing.T) {
	s := newTestService(t, ServiceConfig{Queue: 4, Watchdog: 50 * time.Millisecond})
	h, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {
		// A recoverable stall: spin until the watchdog's cancellation is
		// visible through the polling API, making no steal/merge progress.
		for !c.Cancelled() {
			time.Sleep(time.Millisecond)
		}
	}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	werr := h.Wait()
	if !errors.Is(werr, ErrStalled) {
		t.Fatalf("error = %v, want ErrStalled", werr)
	}
	var se *StallError
	if !errors.As(werr, &se) {
		t.Fatalf("error %v does not unwrap to *StallError", werr)
	}
	if se.Window != 50*time.Millisecond {
		t.Fatalf("StallError.Window = %v, want 50ms", se.Window)
	}
	if len(h.StallDump()) == 0 {
		t.Fatal("StallDump is empty, want goroutine stacks")
	}
	if got := s.Stats().WatchdogCancels; got != 1 {
		t.Fatalf("WatchdogCancels = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close (quiescence): %v", err)
	}
}

// TestServiceWatchdogSparesLiveJobs checks a job that keeps forking past
// the watchdog window is NOT cancelled: progress resets the stall clock.
func TestServiceWatchdogSparesLiveJobs(t *testing.T) {
	s := newTestService(t, ServiceConfig{Queue: 4, Watchdog: 60 * time.Millisecond})
	h, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {
		deadline := time.Now().Add(200 * time.Millisecond)
		for time.Now().Before(deadline) {
			c.ParallelFor(0, 64, func(c *Context, i int) { time.Sleep(time.Millisecond) })
		}
	}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if werr := h.Wait(); werr != nil {
		t.Fatalf("live job cancelled: %v", werr)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServiceDrainCancel checks Close under DrainCancel completes queued
// jobs with ErrClosed without running them, and drains to quiescence.
func TestServiceDrainCancel(t *testing.T) {
	rt := New(Config{Workers: 1})
	s := NewService(rt, ServiceConfig{Queue: 8, Drain: DrainCancel})
	release := make(chan struct{})
	ran := make(chan struct{})
	blocker, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {
		close(ran)
		<-release
	}})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-ran
	var queuedRan atomic.Bool
	queued, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) { queuedRan.Store(true) }})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	if werr := queued.Wait(); !errors.Is(werr, ErrClosed) {
		t.Fatalf("queued job error = %v, want ErrClosed", werr)
	}
	if queuedRan.Load() {
		t.Fatal("drain-cancelled job ran")
	}
	// The running blocker must still be waited for: release it.
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if werr := blocker.Wait(); werr != nil && !errors.Is(werr, ErrClosed) {
		t.Fatalf("blocker error = %v, want nil or ErrClosed", werr)
	}
}

// TestServiceSubmitAfterClose checks the deterministic ErrClosed contract.
func TestServiceSubmitAfterClose(t *testing.T) {
	s := newTestService(t, ServiceConfig{})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	// Idempotent Close returns the first verdict.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestServiceCloseRacingSubmit is the multi-job twin of TestCloseRacingRun:
// Close races a burst of concurrent Submit calls.  Every submission must
// either be admitted (and its handle complete) or deterministically return
// ErrClosed — never deadlock, never leak a queued job — and the drained
// pool must verify quiescent.
func TestServiceCloseRacingSubmit(t *testing.T) {
	for round := 0; round < 30; round++ {
		rt := New(Config{Workers: 4})
		drain := DrainFinish
		if round%2 == 1 {
			drain = DrainCancel
		}
		s := NewService(rt, ServiceConfig{Queue: 4, Drain: drain, AdaptiveParking: true})
		const callers = 8
		var wg sync.WaitGroup
		handles := make([]*JobHandle, callers)
		errs := make([]error, callers)
		for g := 0; g < callers; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				handles[g], errs[g] = s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {
					c.ParallelForGrain(0, 32, 1, func(c *Context, i int) {
						time.Sleep(time.Microsecond)
					})
				}})
			}()
		}
		time.Sleep(time.Duration(round%5) * 50 * time.Microsecond)
		closed := make(chan error, 1)
		go func() { closed <- s.Close() }()
		wg.Wait()
		select {
		case err := <-closed:
			if err != nil {
				t.Fatalf("round %d: Close: %v", round, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: Close hung racing Submit", round)
		}
		for g := 0; g < callers; g++ {
			if errs[g] != nil {
				if !errors.Is(errs[g], ErrClosed) {
					t.Fatalf("round %d: caller %d Submit error = %v, want ErrClosed", round, g, errs[g])
				}
				continue
			}
			werr := handles[g].Wait()
			if werr != nil && !errors.Is(werr, ErrClosed) {
				t.Fatalf("round %d: caller %d Wait = %v, want nil or ErrClosed", round, g, werr)
			}
		}
		if _, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {}}); !errors.Is(err, ErrClosed) {
			t.Fatalf("round %d: Submit after Close = %v, want ErrClosed", round, err)
		}
		if err := rt.Quiescent(); err != nil {
			t.Fatalf("round %d: pool not quiescent after drain: %v", round, err)
		}
	}
}

// TestServiceAdaptiveParking checks the spin threshold rises while jobs are
// in flight and falls back to 1 when the service idles.
func TestServiceAdaptiveParking(t *testing.T) {
	rt := New(Config{Workers: 2, StealAttemptsBeforePark: 4})
	s := NewService(rt, ServiceConfig{Queue: 4, AdaptiveParking: true})
	release := make(chan struct{})
	ran := make(chan struct{})
	h, err := s.Submit(context.Background(), JobSpec{Fn: func(c *Context) {
		close(ran)
		<-release
	}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-ran
	if got := rt.spinAttempts(); got <= 4 {
		t.Fatalf("spinAttempts under load = %d, want > 4", got)
	}
	close(release)
	if err := h.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := rt.spinAttempts(); got != 1 {
		t.Fatalf("spinAttempts idle = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
