package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Config configures a Runtime.
type Config struct {
	// Workers is the number of worker goroutines (processor surrogates).
	// Zero means runtime.GOMAXPROCS(0).
	Workers int
	// Seed seeds the per-worker random number generators used for victim
	// selection.  Zero selects a fixed default, making schedules
	// reproducible for a given worker count and interleaving.
	Seed uint64
	// Reducers is the reducer mechanism to notify about steals, view
	// transferal and merges.  Nil disables reducer support.
	Reducers ReducerRuntime
	// StealAttemptsBeforePark bounds how many full victim sweeps a worker
	// performs before parking.  Zero selects a default.
	StealAttemptsBeforePark int
}

// Stats aggregates scheduler counters across workers.
type Stats struct {
	Forks          int64 // Fork calls
	Steals         int64 // successful steals
	FailedSteals   int64 // steal sweeps that found nothing
	StalledJoins   int64 // forks whose continuation was stolen
	HelpedTasks    int64 // tasks executed while waiting at a join
	TasksExecuted  int64 // stolen or injected tasks executed
	MergeTasks     int64 // runtime-internal merge tasks run by thieves
	RootTasks      int64 // Run invocations
	MaxDequeDepth  int64 // high-water mark of any deque
	ParallelForSpl int64 // splits performed by ParallelFor
}

// Runtime is a work-stealing fork-join scheduler instance.
type Runtime struct {
	cfg      Config
	workers  []*Worker
	reducers ReducerRuntime

	inbox    chan *rootTask
	quit     chan struct{}
	wake     chan struct{}
	parked   atomic.Int32
	started  sync.WaitGroup
	stopped  sync.WaitGroup
	closed   atomic.Bool
	inflight atomic.Int64

	// service is the resident service attached by NewService, nil for a
	// plain batch runtime.  Idle workers poll its admission queue after an
	// empty steal sweep, so job dispatch rides the existing scheduling loop
	// instead of a dedicated dispatcher goroutine.
	service atomic.Pointer[Service]

	// spin is the adaptive park threshold: how many empty sweeps a worker
	// tolerates before parking.  It starts at StealAttemptsBeforePark; a
	// service with AdaptiveParking steers it with the live load (hot while
	// jobs are in flight, 1 when idle so an embedding server gets its CPUs
	// back).
	spin atomic.Int32

	// parks and unparks count actual worker park/unpark transitions (a
	// registration that backs out at the recheck is not a park).
	parks   atomic.Int64
	unparks atomic.Int64

	stats struct {
		rootTasks atomic.Int64
	}
}

// rootTask carries one Run invocation into the worker pool.
type rootTask struct {
	fn   func(*Context)
	job  *job // cancellation token; nil for plain Run
	done chan Deposit
	err  chan any // contained panic value (*PanicError or cancellation token)
}

// ErrClosed is returned by Run after Close has been called.
var ErrClosed = errors.New("sched: runtime is closed")

// New creates a runtime and starts its workers.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x9E3779B97F4A7C15
	}
	if cfg.StealAttemptsBeforePark <= 0 {
		cfg.StealAttemptsBeforePark = 4
	}
	red := cfg.Reducers
	if red == nil {
		red = nopReducerRuntime{}
	}
	rt := &Runtime{
		cfg:      cfg,
		reducers: red,
		inbox:    make(chan *rootTask),
		quit:     make(chan struct{}),
		wake:     make(chan struct{}, cfg.Workers),
	}
	rt.spin.Store(int32(cfg.StealAttemptsBeforePark))
	rt.workers = make([]*Worker, cfg.Workers)
	for i := range rt.workers {
		rt.workers[i] = newWorker(rt, i, cfg.Seed+uint64(i)*0x9E3779B97F4A7C15+1)
	}
	for _, w := range rt.workers {
		rt.reducers.WorkerInit(w)
	}
	rt.started.Add(cfg.Workers)
	rt.stopped.Add(cfg.Workers)
	for _, w := range rt.workers {
		go w.loop()
	}
	rt.started.Wait()
	return rt
}

// Workers returns the number of workers.
func (rt *Runtime) Workers() int { return len(rt.workers) }

// Worker returns the i-th worker (for metrics and reducer bookkeeping).
func (rt *Runtime) Worker(i int) *Worker { return rt.workers[i] }

// Reducers returns the configured reducer mechanism, or nil if none.
func (rt *Runtime) Reducers() ReducerRuntime {
	if _, ok := rt.reducers.(nopReducerRuntime); ok {
		return nil
	}
	return rt.reducers
}

// Run executes fn on the worker pool and blocks until it — and every branch
// it forked — has completed.  It returns the Deposit produced by the root
// trace's view transferal, which the reducer mechanism uses to fold the
// computation's views into the reducers' leftmost (user-visible) views.
//
// Run may be called repeatedly, but calls are serialised by the caller's
// own structure; concurrent Run calls execute concurrently on the same pool
// and are independent of each other.
func (rt *Runtime) Run(fn func(*Context)) (Deposit, error) {
	if rt.closed.Load() {
		return nil, ErrClosed
	}
	rt.stats.rootTasks.Add(1)
	root := &rootTask{
		fn:   fn,
		done: make(chan Deposit, 1),
		err:  make(chan any, 1),
	}
	select {
	case rt.inbox <- root:
	case <-rt.quit:
		return nil, ErrClosed
	}
	rt.inflight.Add(1)
	defer rt.inflight.Add(-1)
	rt.signalWork()
	select {
	case d := <-root.done:
		return d, nil
	case p := <-root.err:
		// p is the contained *PanicError wrapped at the recovery point
		// nearest the original panic: re-raising the value itself keeps
		// the caller's recover() able to inspect the typed payload (via
		// PanicError.Value) and the captured stack.  By the time it is
		// delivered every branch of the job has been settled and its views
		// discarded, so the engine is reusable even if the caller recovers.
		panic(p)
	}
}

// RunErr is Run with the panic contained at the job boundary: a panic
// anywhere in the job — any branch, any worker, the merge pipeline — is
// returned as a *PanicError carrying the original panic value and the
// panicking goroutine's stack, instead of re-panicking on the caller's
// goroutine.  The failed job is fully settled before RunErr returns: every
// branch it forked has completed or been reclaimed and every undeposited
// view has been discarded, so the runtime (and the reducer engine behind
// it) is immediately reusable.
func (rt *Runtime) RunErr(fn func(*Context)) (Deposit, error) {
	return rt.RunContext(context.Background(), fn)
}

// RunContext is RunErr with cooperative cancellation.  When ctx is
// cancelled the job is asked to stop: every fork checkpoint (Fork, ForkN,
// ParallelFor splits, Group.Spawn) and every not-yet-started stolen branch
// observes the token and unwinds, already-running serial sections run to
// their next checkpoint (or may poll Context.Cancelled), and RunContext
// waits for the job to fully settle before returning ctx.Err() — it never
// abandons a running job, so a cancelled runtime is quiescent, not leaking.
// A job that completes in the same instant its context is cancelled has its
// result discarded and still reports ctx.Err().
func (rt *Runtime) RunContext(ctx context.Context, fn func(*Context)) (Deposit, error) {
	if rt.closed.Load() {
		return nil, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rt.stats.rootTasks.Add(1)
	root := &rootTask{
		fn:   fn,
		job:  &job{},
		done: make(chan Deposit, 1),
		err:  make(chan any, 1),
	}
	select {
	case rt.inbox <- root:
	case <-rt.quit:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	rt.inflight.Add(1)
	defer rt.inflight.Add(-1)
	rt.signalWork()
	select {
	case d := <-root.done:
		return d, nil
	case p := <-root.err:
		return nil, containedError(p, nil)
	case <-ctx.Done():
		// Request cancellation, then keep waiting: the job must fully
		// settle (every branch joined or reclaimed, every deposit
		// discarded) before the pool is reusable.
		root.job.cancelled.Store(true)
		cerr := ctx.Err()
		select {
		case d := <-root.done:
			// The job outran its cancellation.  Honour the context
			// contract — no result after Done — and hand the root deposit
			// back to the mechanism so nothing leaks.
			rt.reducers.Discard(nil, d)
			return nil, cerr
		case p := <-root.err:
			return nil, containedError(p, cerr)
		}
	}
}

// containedError translates a value delivered on rootTask.err into the
// error RunErr/RunContext return: the cancellation token becomes the
// context's error, anything else is the already-wrapped *PanicError.
func containedError(p any, cancelErr error) error {
	if p == errJobCancelled {
		if cancelErr != nil {
			return cancelErr
		}
		return context.Canceled
	}
	if pe, ok := p.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: p}
}

// Quiescent reports whether the scheduler holds no trace of any job: no
// Run/RunErr/RunContext call is in flight and every worker's deque is
// empty.  A panicked or cancelled job must leave the runtime quiescent by
// the time its Run variant returns; chaos tests assert this between jobs.
func (rt *Runtime) Quiescent() error {
	if n := rt.inflight.Load(); n != 0 {
		return fmt.Errorf("sched: %d jobs still in flight", n)
	}
	for _, w := range rt.workers {
		if n := w.dq.size(); n != 0 {
			return fmt.Errorf("sched: worker %d deque still holds %d tasks", w.id, n)
		}
	}
	return nil
}

// RunAndMerge executes fn and asks the reducer mechanism to merge the root
// deposit into its leftmost views.  Most callers use this rather than Run.
func (rt *Runtime) RunAndMerge(fn func(*Context)) error {
	_, err := rt.Run(fn)
	return err
}

// Close shuts the workers down and waits for them to exit.  Outstanding Run
// calls must have completed.
func (rt *Runtime) Close() {
	if rt.closed.Swap(true) {
		return
	}
	close(rt.quit)
	rt.stopped.Wait()
}

// Stats aggregates counters across workers.
func (rt *Runtime) Stats() Stats {
	var s Stats
	s.RootTasks = rt.stats.rootTasks.Load()
	for _, w := range rt.workers {
		s.Forks += w.nForks.Load()
		s.Steals += w.nSteals.Load()
		s.FailedSteals += w.nFailedSteals.Load()
		s.StalledJoins += w.nStalledJoins.Load()
		s.HelpedTasks += w.nHelped.Load()
		s.TasksExecuted += w.nTasks.Load()
		s.MergeTasks += w.nMergeTasks.Load()
		s.ParallelForSpl += w.nPForSplits.Load()
		if d := w.maxDeque.Load(); d > s.MaxDequeDepth {
			s.MaxDequeDepth = d
		}
	}
	return s
}

// ResetStats zeroes all per-worker counters.
func (rt *Runtime) ResetStats() {
	rt.stats.rootTasks.Store(0)
	for _, w := range rt.workers {
		w.nForks.Store(0)
		w.nSteals.Store(0)
		w.nFailedSteals.Store(0)
		w.nStalledJoins.Store(0)
		w.nHelped.Store(0)
		w.nTasks.Store(0)
		w.nMergeTasks.Store(0)
		w.nPForSplits.Store(0)
		w.maxDeque.Store(0)
	}
}

// signalWork wakes one parked worker, if any.  Callers publish their work
// (the deque push, the inbox send) before calling it; a parker registers in
// rt.parked before re-checking for work.  Under sequentially-consistent
// atomics one side always observes the other, so no wakeup is lost and
// workers never need a timed poll.
func (rt *Runtime) signalWork() {
	if rt.parked.Load() == 0 {
		return
	}
	select {
	case rt.wake <- struct{}{}:
	default:
		// The buffer already holds one token per worker; every parked
		// worker is guaranteed a wakeup, so dropping this one is safe.
	}
}

// setSpinAttempts adjusts the adaptive park threshold (minimum 1 sweep).
func (rt *Runtime) setSpinAttempts(n int32) {
	if n < 1 {
		n = 1
	}
	rt.spin.Store(n)
}

// spinAttempts returns the current park threshold.
func (rt *Runtime) spinAttempts() int { return int(rt.spin.Load()) }

// takeServiceRoot polls the attached service's admission queue for the next
// runnable job.  The no-service and empty-queue fast paths are one atomic
// load each, so a batch runtime pays nothing for the serving machinery.
func (rt *Runtime) takeServiceRoot() *JobHandle {
	s := rt.service.Load()
	if s == nil {
		return nil
	}
	return s.pop()
}

// serviceReady reports whether the attached service has a queued job;
// parking workers include it in their registered recheck so a Submit racing
// a park is never lost.
func (rt *Runtime) serviceReady() bool {
	s := rt.service.Load()
	return s != nil && s.ready()
}

// workAvailable reports whether any worker other than except holds a
// stealable task.  Parking workers call it after registering in rt.parked
// to close the race with a concurrent push.  The caller's own deque is
// excluded: a worker stalled at a join may still hold its enclosing
// continuations, which it can neither steal (trySteal skips itself) nor
// run early — counting them would make it spin instead of park.
func (rt *Runtime) workAvailable(except *Worker) bool {
	for _, w := range rt.workers {
		if w != except && w.dq.size() > 0 {
			return true
		}
	}
	return false
}
