// Package sched implements the work-stealing fork-join runtime on which the
// reducer mechanisms run.  It plays the role of the Cilk-M/Cilk Plus
// runtime in the paper: P workers, per-worker deques, randomized work
// stealing, and a join protocol under which a worker's execution between
// steals mirrors a serial execution exactly, so that reducer views need to
// be created, transferred and merged only when steals actually occur.
//
// Go cannot steal the un-reified continuation of a running function, so the
// primitive is Fork(left, right): left runs inline and right — the
// continuation — is pushed to the deque where a thief may promote it.  The
// serial fast path (no steal) performs no reducer-related work at all,
// matching the property the paper's overhead accounting relies on.
package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Config configures a Runtime.
type Config struct {
	// Workers is the number of worker goroutines (processor surrogates).
	// Zero means runtime.GOMAXPROCS(0).
	Workers int
	// Seed seeds the per-worker random number generators used for victim
	// selection.  Zero selects a fixed default, making schedules
	// reproducible for a given worker count and interleaving.
	Seed uint64
	// Reducers is the reducer mechanism to notify about steals, view
	// transferal and merges.  Nil disables reducer support.
	Reducers ReducerRuntime
	// StealAttemptsBeforePark bounds how many full victim sweeps a worker
	// performs before parking.  Zero selects a default.
	StealAttemptsBeforePark int
}

// Stats aggregates scheduler counters across workers.
type Stats struct {
	Forks          int64 // Fork calls
	Steals         int64 // successful steals
	FailedSteals   int64 // steal sweeps that found nothing
	StalledJoins   int64 // forks whose continuation was stolen
	HelpedTasks    int64 // tasks executed while waiting at a join
	TasksExecuted  int64 // stolen or injected tasks executed
	MergeTasks     int64 // runtime-internal merge tasks run by thieves
	RootTasks      int64 // Run invocations
	MaxDequeDepth  int64 // high-water mark of any deque
	ParallelForSpl int64 // splits performed by ParallelFor
}

// Runtime is a work-stealing fork-join scheduler instance.
type Runtime struct {
	cfg      Config
	workers  []*Worker
	reducers ReducerRuntime

	inbox   chan *rootTask
	quit    chan struct{}
	wake    chan struct{}
	parked  atomic.Int32
	started sync.WaitGroup
	stopped sync.WaitGroup
	closed  atomic.Bool

	stats struct {
		rootTasks atomic.Int64
	}
}

// rootTask carries one Run invocation into the worker pool.
type rootTask struct {
	fn   func(*Context)
	done chan Deposit
	err  chan any // panic value, if any
}

// ErrClosed is returned by Run after Close has been called.
var ErrClosed = errors.New("sched: runtime is closed")

// New creates a runtime and starts its workers.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x9E3779B97F4A7C15
	}
	if cfg.StealAttemptsBeforePark <= 0 {
		cfg.StealAttemptsBeforePark = 4
	}
	red := cfg.Reducers
	if red == nil {
		red = nopReducerRuntime{}
	}
	rt := &Runtime{
		cfg:      cfg,
		reducers: red,
		inbox:    make(chan *rootTask),
		quit:     make(chan struct{}),
		wake:     make(chan struct{}, cfg.Workers),
	}
	rt.workers = make([]*Worker, cfg.Workers)
	for i := range rt.workers {
		rt.workers[i] = newWorker(rt, i, cfg.Seed+uint64(i)*0x9E3779B97F4A7C15+1)
	}
	for _, w := range rt.workers {
		rt.reducers.WorkerInit(w)
	}
	rt.started.Add(cfg.Workers)
	rt.stopped.Add(cfg.Workers)
	for _, w := range rt.workers {
		go w.loop()
	}
	rt.started.Wait()
	return rt
}

// Workers returns the number of workers.
func (rt *Runtime) Workers() int { return len(rt.workers) }

// Worker returns the i-th worker (for metrics and reducer bookkeeping).
func (rt *Runtime) Worker(i int) *Worker { return rt.workers[i] }

// Reducers returns the configured reducer mechanism, or nil if none.
func (rt *Runtime) Reducers() ReducerRuntime {
	if _, ok := rt.reducers.(nopReducerRuntime); ok {
		return nil
	}
	return rt.reducers
}

// Run executes fn on the worker pool and blocks until it — and every branch
// it forked — has completed.  It returns the Deposit produced by the root
// trace's view transferal, which the reducer mechanism uses to fold the
// computation's views into the reducers' leftmost (user-visible) views.
//
// Run may be called repeatedly, but calls are serialised by the caller's
// own structure; concurrent Run calls execute concurrently on the same pool
// and are independent of each other.
func (rt *Runtime) Run(fn func(*Context)) (Deposit, error) {
	if rt.closed.Load() {
		return nil, ErrClosed
	}
	rt.stats.rootTasks.Add(1)
	root := &rootTask{
		fn:   fn,
		done: make(chan Deposit, 1),
		err:  make(chan any, 1),
	}
	select {
	case rt.inbox <- root:
	case <-rt.quit:
		return nil, ErrClosed
	}
	rt.signalWork()
	select {
	case d := <-root.done:
		return d, nil
	case p := <-root.err:
		panic(fmt.Sprintf("sched: root task panicked: %v", p))
	}
}

// RunAndMerge executes fn and asks the reducer mechanism to merge the root
// deposit into its leftmost views.  Most callers use this rather than Run.
func (rt *Runtime) RunAndMerge(fn func(*Context)) error {
	_, err := rt.Run(fn)
	return err
}

// Close shuts the workers down and waits for them to exit.  Outstanding Run
// calls must have completed.
func (rt *Runtime) Close() {
	if rt.closed.Swap(true) {
		return
	}
	close(rt.quit)
	rt.stopped.Wait()
}

// Stats aggregates counters across workers.
func (rt *Runtime) Stats() Stats {
	var s Stats
	s.RootTasks = rt.stats.rootTasks.Load()
	for _, w := range rt.workers {
		s.Forks += w.nForks.Load()
		s.Steals += w.nSteals.Load()
		s.FailedSteals += w.nFailedSteals.Load()
		s.StalledJoins += w.nStalledJoins.Load()
		s.HelpedTasks += w.nHelped.Load()
		s.TasksExecuted += w.nTasks.Load()
		s.MergeTasks += w.nMergeTasks.Load()
		s.ParallelForSpl += w.nPForSplits.Load()
		if d := w.maxDeque.Load(); d > s.MaxDequeDepth {
			s.MaxDequeDepth = d
		}
	}
	return s
}

// ResetStats zeroes all per-worker counters.
func (rt *Runtime) ResetStats() {
	rt.stats.rootTasks.Store(0)
	for _, w := range rt.workers {
		w.nForks.Store(0)
		w.nSteals.Store(0)
		w.nFailedSteals.Store(0)
		w.nStalledJoins.Store(0)
		w.nHelped.Store(0)
		w.nTasks.Store(0)
		w.nMergeTasks.Store(0)
		w.nPForSplits.Store(0)
		w.maxDeque.Store(0)
	}
}

// signalWork wakes one parked worker, if any.  Callers publish their work
// (the deque push, the inbox send) before calling it; a parker registers in
// rt.parked before re-checking for work.  Under sequentially-consistent
// atomics one side always observes the other, so no wakeup is lost and
// workers never need a timed poll.
func (rt *Runtime) signalWork() {
	if rt.parked.Load() == 0 {
		return
	}
	select {
	case rt.wake <- struct{}{}:
	default:
		// The buffer already holds one token per worker; every parked
		// worker is guaranteed a wakeup, so dropping this one is safe.
	}
}

// workAvailable reports whether any worker other than except holds a
// stealable task.  Parking workers call it after registering in rt.parked
// to close the race with a concurrent push.  The caller's own deque is
// excluded: a worker stalled at a join may still hold its enclosing
// continuations, which it can neither steal (trySteal skips itself) nor
// run early — counting them would make it spin instead of park.
func (rt *Runtime) workAvailable(except *Worker) bool {
	for _, w := range rt.workers {
		if w != except && w.dq.size() > 0 {
			return true
		}
	}
	return false
}
