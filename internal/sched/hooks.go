package sched

// This file defines the narrow interface through which a reducer mechanism
// plugs into the scheduler.  The scheduler knows nothing about hypermaps,
// SPA maps or monoids; it only tells the reducer runtime when execution
// departs from the serial order (a steal begins a new trace), when a stolen
// branch finishes (its views must be transferred out), and when a join must
// fold a finished branch's views back in (a hypermerge).  Both the
// memory-mapping mechanism (internal/core) and the hypermap baseline
// (internal/hypermap) implement this interface, so measured differences
// between them isolate the reducer mechanism itself.

// Trace is an opaque handle for the reducer state of one maximal sequence
// of instructions that a worker executes in serial order between steals
// (a "trace" in the Cilk literature).
type Trace any

// Deposit is an opaque handle for the set of views a completed stolen
// branch leaves behind for its join (the result of view transferal).
type Deposit any

// ReducerRuntime is implemented by a reducer mechanism.
type ReducerRuntime interface {
	// WorkerInit is called once per worker before it executes any task,
	// allowing the mechanism to set up per-worker state (for the
	// memory-mapping mechanism: the worker's TLMM reducer area).
	WorkerInit(w *Worker)

	// BeginTrace is called when a worker begins executing work outside the
	// serial order of its current trace: the root task, a stolen
	// continuation, or a task run while helping at a join.  The worker's
	// view state must afterwards be empty.
	BeginTrace(w *Worker) Trace

	// EndTrace is called when the work begun by the matching BeginTrace
	// completes.  The mechanism performs view transferal: it packages the
	// worker's current views into a Deposit (published in shared memory)
	// and resets the worker's view state to empty so the worker can steal
	// again.
	EndTrace(w *Worker, tr Trace) Deposit

	// Merge is called by the worker that owns a join when a deposited
	// branch must be folded into the worker's current views.  The worker's
	// views hold the serially-earlier updates, so the merge must compute
	// current ⊗ deposit for every reducer present in the deposit (the
	// hypermerge).
	Merge(w *Worker, tr Trace, d Deposit)

	// Discard is called when a Deposit produced by EndTrace will never be
	// merged: its job panicked or was cancelled before the join's Merge
	// could run.  The mechanism must release every resource the deposit
	// holds (pagepool pages, arena view blocks) so that an aborted job
	// leaves the engine quiescent and reusable.  w is the worker
	// performing the abort; it is nil when the discard happens on a
	// non-worker goroutine (the Run caller's), in which case the
	// implementation must not touch owner-only per-worker state.  A nil
	// or already-consumed deposit must be a no-op, so double discards
	// along overlapping failure paths are safe.
	Discard(w *Worker, d Deposit)
}

// nopReducerRuntime is used when no reducer mechanism is configured.
type nopReducerRuntime struct{}

func (nopReducerRuntime) WorkerInit(*Worker)              {}
func (nopReducerRuntime) BeginTrace(*Worker) Trace        { return nil }
func (nopReducerRuntime) EndTrace(*Worker, Trace) Deposit { return nil }
func (nopReducerRuntime) Merge(*Worker, Trace, Deposit)   {}
func (nopReducerRuntime) Discard(*Worker, Deposit)        {}
