package sched

import "repro/internal/faultinject"

// This file is the scheduler's merge-task hook: the narrow facility through
// which a reducer mechanism fans the independent per-reducer Reduce calls of
// a large hypermerge out across the worker pool.  Merge tasks ride the same
// deques, join objects and wake protocol as ordinary forked continuations,
// but they are runtime-internal: executing one begins no reducer trace and
// produces no deposit, because the closure operates on view state owned (and
// lifetime-managed) by the worker that is performing the hypermerge.

// runMergeTask executes a stolen runtime-internal merge task: no trace is
// begun and no views are transferred — the closure mutates SPA slots that
// belong to the hypermerging worker, which coordinates slot disjointness so
// concurrent batches never touch the same slot.
func (w *Worker) runMergeTask(t *task) {
	w.nMergeTasks.Add(1)
	if j := t.job; j != nil {
		j.progress.Add(1) // a merge ran on the job's behalf: it is alive
	}
	var panicked any
	func() {
		defer func() {
			if p := recover(); p != nil {
				panicked = wrapPanic(p)
			}
		}()
		faultinject.Check(faultinject.MergeTask)
		t.mfn()
	}()
	if panicked != nil {
		t.join.panicVal = panicked
	}
	t.join.complete(nil)
	// Like other stolen tasks, the object is left to the GC: its pointer
	// may still sit in the forking worker's liveForks stack for a later
	// popBottomIf identity check (see runTask's recycling note).
}

// ForkMergeTasks executes fns as logically parallel runtime-internal tasks
// and returns when all of them have completed.  fns[0] runs immediately on
// the calling worker; the rest are published for stealing, newest last, and
// any that no thief takes are run inline by the caller on the way out —
// exactly Fork's fast path, so an unstolen fan-out costs no allocation
// beyond the closure slice and completes in serial order.
//
// The caller must be on w's goroutine, mid-join (its liveForks discipline is
// the same as Fork's: entries are pushed here and resolved here, newest
// first).  The closures must write disjoint state: the scheduler provides no
// ordering between them beyond completion of all before return.
//
// Failure containment: a panicking batch does NOT unwind past this function
// while any sibling batch may still be running.  Every fork is settled
// (popped back or waited out) and no further unstolen batch is started
// before the first panic is re-raised, so a hypermerge's deferred cleanup
// can walk merge-op state without racing live executors.  Batches that were
// skipped or ran on a thief that also panicked leave their ops unexecuted;
// the hypermerge's cleanup treats un-run ops as unmerged sources.
func (w *Worker) ForkMergeTasks(fns []func()) {
	n := len(fns)
	if n == 0 {
		return
	}
	if n == 1 {
		fns[0]()
		return
	}
	type mergeFork struct {
		t *task
		j *join
	}
	forks := make([]mergeFork, n-1)
	for i := 1; i < n; i++ {
		j := w.newJoin()
		t := w.newMergeTask(fns[i], j)
		forks[i-1] = mergeFork{t: t, j: j}
		w.pushTask(t)
		faultinject.Perturb(faultinject.SchedMergeFork)
	}
	var panicked any
	runBatch := func(fn func()) {
		defer func() {
			if p := recover(); p != nil && panicked == nil {
				panicked = wrapPanic(p)
			}
		}()
		faultinject.Check(faultinject.MergeTask)
		fn()
	}
	runBatch(fns[0])
	for i := n - 2; i >= 0; i-- {
		mf := forks[i]
		if w.tryPopOwn(mf.t) {
			// Not stolen: the pop proves no thief ever saw the join, so
			// both objects recycle immediately and the batch runs inline —
			// unless a sibling already failed, in which case its work is
			// abandoned (the hypermerge's cleanup releases its sources).
			w.popLiveFork(mf.j)
			w.freeTask(mf.t)
			w.freeJoin(mf.j)
			if panicked == nil {
				runBatch(fns[i+1])
			}
			continue
		}
		w.waitJoin(mf.j)
		w.popLiveFork(mf.j)
		if mf.j.panicVal != nil && panicked == nil {
			panicked = mf.j.panicVal
		}
	}
	if panicked != nil {
		// Every fork above is settled; re-raise the contained value itself
		// so the monoid's original panic payload survives to the job
		// boundary.
		panic(panicked)
	}
}
