package sched

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// This file implements the scheduler's job-boundary failure containment:
// the typed panic wrapper that carries a branch's original panic value and
// stack across joins to the Run caller, and the per-job cancellation token
// honoured at fork checkpoints.
//
// A panic anywhere inside a job — user code in any branch, a monoid inside
// the merge pipeline, or the reducer mechanism's own view transferal —
// unwinds to the executing worker's recovery point, where it is wrapped
// ONCE in a *PanicError capturing the panicking goroutine's stack.  From
// there it propagates by value: joins re-raise the wrapper itself (never a
// formatted string), so the value the caller finally observes — as a panic
// from Run, or as an error from RunErr/RunContext — still contains the
// original payload.  errors.Is/As reach through PanicError into error-typed
// payloads, so a typed fault injected five layers down is still matchable
// at the job boundary.

// PanicError is the error a contained panic surfaces as.  Value holds the
// original panic payload unmodified; Stack is the panicking goroutine's
// stack, captured at the recovery point nearest the panic site (frames
// between the panic and the worker's recover are still live there).
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: panic in parallel job: %v", e.Value)
}

// Unwrap exposes an error-typed panic payload to errors.Is/As chains; it
// returns nil for non-error payloads.
func (e *PanicError) Unwrap() error {
	err, _ := e.Value.(error)
	return err
}

// errJobCancelled is the internal unwind token a cancellation checkpoint
// panics with.  It is deliberately not wrapped in a PanicError: it is not a
// failure, and the job boundary translates it to the context's error.
var errJobCancelled = errors.New("sched: job cancelled")

// wrapPanic wraps a recovered panic value for propagation across joins.
// It is called at the recovery point nearest the panic site so the captured
// stack still contains the panicking frames; values that are already
// wrapped (re-raised at an inner join) and the cancellation token pass
// through unchanged.
func wrapPanic(p any) any {
	if p == errJobCancelled {
		return p
	}
	if _, ok := p.(*PanicError); ok {
		return p
	}
	return &PanicError{Value: p, Stack: debug.Stack()}
}

// job is the per-submission state shared by every task a Run spawns: the
// cancellation flag checkpoints poll, and a progress counter the service
// watchdog samples.  A nil *job (legacy Run) never cancels.
type job struct {
	cancelled atomic.Bool
	// progress counts scheduler-visible progress events for this job:
	// dispatch, every stolen/helped task executed, and every merge task run
	// on its behalf.  The service watchdog declares a job stalled when the
	// counter stops moving for a whole window — exactly the "no steal or
	// merge progress" criterion, so a long serial section that never forks
	// is indistinguishable from a stall (see ServiceConfig.Watchdog).
	progress atomic.Uint64
}

// checkCancelled panics with the cancellation token when the worker's
// current job has been cancelled.  It is the fork checkpoint: every Fork,
// ForkN, ParallelFor split and Group.Spawn passes through it, so a
// cancelled job unwinds at its next fork boundary, settles everything it
// already spawned (via the normal panic containment), and reports
// ctx.Err() instead of running to completion.
func (w *Worker) checkCancelled() {
	if j := w.curJob; j != nil && j.cancelled.Load() {
		panic(errJobCancelled)
	}
}

// Cancelled reports whether the job this context is executing has been
// cancelled (its RunContext caller's context expired).  Long serial
// sections that fork rarely can poll it to honour cancellation between
// checkpoints.
func (c *Context) Cancelled() bool {
	j := c.w.curJob
	return j != nil && j.cancelled.Load()
}
