package sched

import "sync/atomic"

// task is one stealable unit of work: the continuation of a Fork.  In Cilk
// terms it is the suspended parent frame sitting in the worker's deque,
// waiting either to be popped back by its owner (the serial fast path) or
// to be stolen and promoted into a full frame.
//
// Tasks are pooled in per-worker free lists (see Worker.newTask): the
// owner recycles a task when its identity-check window provably closes (a
// fast-path pop, or a locally-run Group child after Wait) so the no-steal
// fork path allocates nothing; stolen tasks are left to the GC so their
// pointers can never re-enter a pool while a suspended fork still compares
// against them.
type task struct {
	fn   func(*Context)
	join *join
	// mfn, when non-nil, marks a runtime-internal merge task (see
	// Worker.ForkMergeTasks): the executor runs it without beginning a
	// reducer trace, because the closure operates on view state owned and
	// coordinated by the forking worker's hypermerge, not on the executing
	// worker's own views.  A task carries either fn or mfn, never both.
	mfn func()
	// owner is the worker that pushed the task; recorded for statistics.
	owner int
	// job is the submission this task belongs to, captured from the
	// pushing worker at creation so a thief inherits the forker's
	// cancellation token.  Nil for jobs submitted through plain Run.
	job *job
	// next links tasks in a worker's free list while recycled.
	next *task
}

// dequeInitialSize is the starting capacity of a deque's circular buffer.
// It must be a power of two.
const dequeInitialSize = 64

// dequeBuf is one growable circular buffer generation.  Slots are atomic
// because a thief may read a slot the owner is concurrently re-using one
// lap later; the subsequent CAS on top detects the conflict, but the read
// itself must be race-free.
type dequeBuf struct {
	mask int64
	slot []atomic.Pointer[task]
}

func newDequeBuf(size int64) *dequeBuf {
	return &dequeBuf{mask: size - 1, slot: make([]atomic.Pointer[task], size)}
}

func (b *dequeBuf) cap() int64           { return b.mask + 1 }
func (b *dequeBuf) get(i int64) *task    { return b.slot[i&b.mask].Load() }
func (b *dequeBuf) put(i int64, t *task) { b.slot[i&b.mask].Store(t) }

// deque is the per-worker double-ended work queue, implemented as a
// lock-free Chase–Lev deque (Chase & Lev, SPAA 2005).  The owner pushes
// and pops at the bottom (newest end) without synchronisation except on
// the last-element race; thieves steal from the top (oldest end) with a
// single CAS, mirroring the THE protocol's access pattern but with O(1)
// steals and no mutex anywhere.
//
// top only ever increases (a steal, or the owner claiming the last
// element); bottom is written only by the owner.  Both indices are
// monotonic positions into an unbounded logical array; the circular buffer
// maps position i to slot i&mask and is replaced (never mutated in place,
// other than slot writes) when it fills.  Go's sync/atomic operations are
// sequentially consistent, which provides the store-load fence the
// algorithm needs between publishing bottom and reading top.
type deque struct {
	// Leading pad: the deque is embedded in Worker after other hot fields
	// (rt, id), and the thief-contended top index must not share their
	// cache line.
	_      [64]byte
	top    atomic.Int64
	_      [56]byte // keep thieves' CAS target off the owner's line
	bottom atomic.Int64
	_      [56]byte
	buf    atomic.Pointer[dequeBuf]
	_      [56]byte
}

// pushBottom appends t at the newest end.  Owner only.  It reports whether
// the deque was empty before the push — the push-into-empty-deque
// transition that drives the runtime's wake protocol — and the resulting
// depth for the high-water statistic.
func (d *deque) pushBottom(t *task) (wasEmpty bool, depth int64) {
	b := d.bottom.Load()
	top := d.top.Load()
	buf := d.buf.Load()
	if buf == nil {
		buf = newDequeBuf(dequeInitialSize)
		d.buf.Store(buf)
	} else if b-top >= buf.cap() {
		buf = d.grow(buf, top, b)
	}
	buf.put(b, t)
	d.bottom.Store(b + 1)
	// wasEmpty must be judged from top AFTER the push is published: a
	// thief may have drained the deque between the top load above and the
	// bottom store, with its own post-steal size() check predating the
	// store — if the owner then also judged by the stale top, neither
	// side would signal and the new task could sit unseen by parked
	// workers.  Re-reading top closes the window: either the thief's
	// size() sees the new bottom, or this load sees the thief's CAS.
	return d.top.Load() == b, b - top + 1
}

// grow replaces the buffer with one twice the size, copying the live range
// [top, bottom).  Thieves still holding the old buffer read the same task
// pointers from it; the CAS on top serialises claims, so no element can be
// taken twice.
func (d *deque) grow(old *dequeBuf, top, bottom int64) *dequeBuf {
	nb := newDequeBuf(old.cap() * 2)
	for i := top; i < bottom; i++ {
		nb.put(i, old.get(i))
	}
	d.buf.Store(nb)
	return nb
}

// popBottom removes and returns the newest task, or nil if the deque is
// empty.  Owner only.  Only the last-element case races with thieves and
// is resolved by a CAS on top.
func (d *deque) popBottom() *task {
	buf := d.buf.Load()
	if buf == nil {
		return nil
	}
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	top := d.top.Load()
	if top > b {
		// Empty: restore the canonical empty state top == bottom.
		d.bottom.Store(b + 1)
		return nil
	}
	t := buf.get(b)
	if top == b {
		// Last element: race thieves for it.
		if !d.top.CompareAndSwap(top, top+1) {
			t = nil
		}
		d.bottom.Store(b + 1)
	}
	return t
}

// popBottomIf removes the newest task and returns true iff it is exactly t.
// Owner only.  This is the owner's conditional pop at the end of a Fork:
// if the continuation is still there, the fork resumes serially; if it is
// gone, a thief has promoted it.  The identity check also lets Group.Wait
// decline to pop when the bottom task belongs to an enclosing computation.
func (d *deque) popBottomIf(want *task) bool {
	buf := d.buf.Load()
	if buf == nil {
		return false
	}
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	top := d.top.Load()
	if top > b {
		d.bottom.Store(b + 1)
		return false
	}
	got := buf.get(b)
	if got != want {
		// The bottom task is not the one we are looking for; put it back.
		d.bottom.Store(b + 1)
		return false
	}
	if top == b {
		ok := d.top.CompareAndSwap(top, top+1)
		d.bottom.Store(b + 1)
		return ok
	}
	return true
}

// stealTop removes and returns the oldest task, or nil if the deque is
// empty.  Thieves call it on a victim's deque; it is O(1) — one CAS per
// claimed task, retried only when racing another thief or the owner for
// the same element.
func (d *deque) stealTop() *task {
	for {
		top := d.top.Load()
		b := d.bottom.Load()
		if top >= b {
			return nil
		}
		buf := d.buf.Load()
		t := buf.get(top)
		if d.top.CompareAndSwap(top, top+1) {
			return t
		}
		// Lost the race for slot top; reload the indices and retry.
	}
}

// size reports the current number of queued tasks.  It is a racy snapshot
// (no lock is taken) — good enough for statistics and the wake protocol's
// re-check scan.
func (d *deque) size() int {
	b := d.bottom.Load()
	t := d.top.Load()
	if b <= t {
		return 0
	}
	return int(b - t)
}
