package sched

import "sync"

// task is one stealable unit of work: the continuation of a Fork.  In Cilk
// terms it is the suspended parent frame sitting in the worker's deque,
// waiting either to be popped back by its owner (the serial fast path) or
// to be stolen and promoted into a full frame.
type task struct {
	fn   func(*Context)
	join *join
	// owner is the worker that pushed the task; recorded for statistics.
	owner int
}

// deque is the per-worker double-ended work queue.  The owner pushes and
// pops at the bottom (newest end); thieves steal from the top (oldest end),
// mirroring the THE protocol's access pattern.  A mutex keeps the
// implementation simple; steals are rare relative to pushes/pops, so the
// lock is almost always uncontended.
type deque struct {
	mu    sync.Mutex
	items []*task
}

// pushBottom appends t at the newest end.
func (d *deque) pushBottom(t *task) {
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()
}

// popBottomIf removes and returns true if the newest task is exactly t.
// This is the owner's conditional pop at the end of a Fork: if the
// continuation is still there, the fork resumes serially; if it is gone, a
// thief has promoted it.
func (d *deque) popBottomIf(t *task) bool {
	d.mu.Lock()
	n := len(d.items)
	if n > 0 && d.items[n-1] == t {
		d.items[n-1] = nil
		d.items = d.items[:n-1]
		d.mu.Unlock()
		return true
	}
	d.mu.Unlock()
	return false
}

// popBottom removes and returns the newest task, or nil if the deque is
// empty.  It is used when a worker drains its own deque.
func (d *deque) popBottom() *task {
	d.mu.Lock()
	n := len(d.items)
	if n == 0 {
		d.mu.Unlock()
		return nil
	}
	t := d.items[n-1]
	d.items[n-1] = nil
	d.items = d.items[:n-1]
	d.mu.Unlock()
	return t
}

// stealTop removes and returns the oldest task, or nil if the deque is
// empty.  Thieves call it on a victim's deque.
func (d *deque) stealTop() *task {
	d.mu.Lock()
	if len(d.items) == 0 {
		d.mu.Unlock()
		return nil
	}
	t := d.items[0]
	copy(d.items, d.items[1:])
	d.items[len(d.items)-1] = nil
	d.items = d.items[:len(d.items)-1]
	d.mu.Unlock()
	return t
}

// size reports the current number of queued tasks.
func (d *deque) size() int {
	d.mu.Lock()
	n := len(d.items)
	d.mu.Unlock()
	return n
}
