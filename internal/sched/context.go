package sched

// Context is the handle through which running code interacts with the
// scheduler: it identifies the worker currently executing the code and
// provides the fork-join primitives.  A Context is only valid on the
// goroutine that received it.
type Context struct {
	w *Worker
	// wid mirrors w.id.  Typed reducer handles index their per-worker view
	// caches on every steady-state hit; reading the id off the context
	// keeps that index off the c.w load's dependency chain, so the slot
	// fetch and the view-epoch load issue in parallel.
	wid int32

	// Single-entry reducer-lookup cache: the last (key, view) pair a
	// reducer engine resolved through this context, valid only while
	// cacheEpoch matches the worker's view epoch.  A context lives exactly
	// as long as one trace, so the cache can never leak views across
	// steals; the epoch additionally invalidates it when a hypermerge or a
	// nested trace changes the views beneath a still-live context.  The
	// key is the reducer's engine-unique id — an integer compare keeps the
	// miss penalty to a couple of cycles, where an interface-typed key
	// would pay a runtime equality call on the hot path.
	cacheKey   uint64
	cacheView  any
	cacheEpoch uint64
}

// Worker returns the worker executing this context.
func (c *Context) Worker() *Worker { return c.w }

// WorkerID returns the executing worker's id without touching the worker
// struct; see the wid field comment.
func (c *Context) WorkerID() int { return int(c.wid) }

// ViewEpoch returns the executing worker's current view epoch — the
// context-level twin of Worker().ViewEpoch(), for callers that hold only
// the context.  Typed reducer handles and the engines' devirtualized
// lookup fast paths compare cached epochs against it on every hit, so it
// must stay a single inlinable atomic load.
func (c *Context) ViewEpoch() uint64 { return c.w.viewEpoch.Load() }

// CachedView returns the view this context last cached for key, if the
// cache is still valid (same key, same worker view epoch).  Reducer engines
// use it to skip the SPA walk (or hash lookup) when a loop body repeatedly
// looks up the same reducer.  Keys must be nonzero: engines use reducer
// ids, which start at 1 and are never recycled, so a fresh context's zero
// key can never produce a false hit.
func (c *Context) CachedView(key uint64) (any, bool) {
	if c.cacheKey == key && c.cacheEpoch == c.w.viewEpoch.Load() {
		return c.cacheView, true
	}
	return nil, false
}

// CacheView records key's resolved view in the context's single-entry
// lookup cache, stamped with the worker's current view epoch.
func (c *Context) CacheView(key uint64, view any) {
	c.cacheKey = key
	c.cacheView = view
	c.cacheEpoch = c.w.viewEpoch.Load()
}

// Runtime returns the owning runtime.
func (c *Context) Runtime() *Runtime { return c.w.rt }

// Fork executes left and right as logically parallel branches and returns
// when both have completed.  left runs immediately on the calling worker;
// right — the continuation — is made available for stealing.  If no thief
// takes it, the calling worker runs right itself immediately after left, so
// the execution order equals the serial order left-then-right and no
// reducer views are created, transferred or merged.  If right is stolen,
// the thief executes it with a fresh set of views and the calling worker
// merges those views back in serial order at the join.
func (c *Context) Fork(left, right func(*Context)) {
	w := c.w
	w.checkCancelled()
	w.forksLocal++
	j := w.newJoin()
	t := w.newTask(right, j)
	w.pushTask(t)

	// If left (or anything it calls) panics, there is no cleanup here:
	// the panic unwinds to runRoot/runTask, whose abortScope settles this
	// task along with everything else the failed scope pushed.

	left(c)

	if w.tryPopOwn(t) {
		// Serial fast path: the continuation was not stolen.  Both
		// objects go straight back to the free lists — the pop proves no
		// other worker ever saw the join.
		w.popLiveFork(j)
		w.freeTask(t)
		w.freeJoin(j)
		right(c)
		return
	}
	// The continuation was stolen and promoted; wait for it, helping with
	// other work in the meantime, then fold its views back in.  The thief
	// recycles the task; the join is left to the GC (see join's doc).
	w.waitJoin(j)
	w.rt.reducers.Merge(w, w.curTrace, j.deposit)
	w.popLiveFork(j)
	if j.panicVal != nil {
		// Re-raise the contained value itself (a *PanicError wrapped at
		// the thief's recovery point, or the cancellation token) so the
		// original payload and stack survive every join on the way out.
		panic(j.panicVal)
	}
}

// ForkN executes the given branches as logically parallel work, preserving
// their serial (left-to-right) order on the no-steal path.  It is the
// n-ary generalisation of Fork, built by right-nesting binary forks.
func (c *Context) ForkN(branches ...func(*Context)) {
	switch len(branches) {
	case 0:
		return
	case 1:
		branches[0](c)
		return
	case 2:
		c.Fork(branches[0], branches[1])
		return
	}
	rest := branches[1:]
	c.Fork(branches[0], func(c2 *Context) { c2.ForkN(rest...) })
}

// ParallelFor executes body(i) for every i in [lo, hi) with automatic grain
// selection, dividing the range by recursive binary forking exactly the way
// the Cilk Plus compiler desugars cilk_for.  Iterations are executed in
// serial order within each grain and the overall reduction order equals the
// serial order.
func (c *Context) ParallelFor(lo, hi int, body func(*Context, int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	grain := n / (8 * c.w.rt.Workers())
	if grain < 1 {
		grain = 1
	}
	if grain > 2048 {
		grain = 2048
	}
	c.ParallelForGrain(lo, hi, grain, body)
}

// ParallelForGrain is ParallelFor with an explicit grain size: ranges of at
// most grain iterations are executed serially without further forking.
func (c *Context) ParallelForGrain(lo, hi, grain int, body func(*Context, int)) {
	if grain < 1 {
		grain = 1
	}
	c.pfor(lo, hi, grain, body)
}

func (c *Context) pfor(lo, hi, grain int, body func(*Context, int)) {
	if hi-lo <= grain {
		for i := lo; i < hi; i++ {
			body(c, i)
		}
		return
	}
	mid := lo + (hi-lo)/2
	c.w.splitsLocal++
	c.Fork(
		func(c2 *Context) { c2.pfor(lo, mid, grain, body) },
		func(c2 *Context) { c2.pfor(mid, hi, grain, body) },
	)
}

// Group provides a help-first spawn/sync convenience API in the style of
// cilk_spawn / cilk_sync.  Unlike Fork, every spawned child is a separate
// stealable task even on the no-steal path, so each child contributes its
// own set of views; Wait folds the contributions back in spawn order after
// the parent's own updates.  Consequently the result equals the serial
// execution whenever the parent performs no reducer updates between its
// Spawn calls (or the monoid is commutative).  Code that needs exact serial
// semantics with interleaved parent updates should use Fork or ForkN.
//
// Every Spawn must be matched by a Wait before the enclosing task or Run
// returns: un-Waited children are abandoned — their contributions are
// never merged and their task objects confuse the runtime's recycling.
//
// A Group is bound to the worker that created it.  Spawn and Wait must be
// called from code executing on that worker: the serial branch that
// called NewGroup, including the left (inline) branch of a nested Fork —
// but never from a right-hand continuation, which a thief may execute on
// another worker (the deque and free lists are owner-only structures, so
// that would be a data race, as it already was for traces in the
// mutex-deque runtime).
type Group struct {
	ctx      *Context
	children []*groupChild
	waited   bool
}

type groupChild struct {
	t *task
	j *join
	// idx is the child's entry in the worker's liveForks stack, recorded
	// at Spawn time: Wait may run inside a Fork branch pushed after the
	// Spawns, so the children are not necessarily the newest entries.
	idx int
	// local records that the parent popped and ran the child itself, so
	// its join was never visible to a thief and can be recycled.
	local bool
}

// NewGroup creates an empty spawn group bound to this context.
func (c *Context) NewGroup() *Group {
	return &Group{ctx: c}
}

// Spawn schedules fn as a child of the group.
func (g *Group) Spawn(fn func(*Context)) {
	if g.waited {
		panic("sched: Spawn after Wait")
	}
	w := g.ctx.w
	w.checkCancelled()
	w.forksLocal++
	j := w.newJoin()
	t := w.newTask(fn, j)
	ch := &groupChild{t: t, j: j}
	g.children = append(g.children, ch)
	w.pushTask(t)
	ch.idx = len(w.liveForks) - 1
}

// Wait blocks until every spawned child has completed and merges their view
// contributions in spawn order.  Children that were not stolen are executed
// by the calling worker itself (newest first, like a deque pop), each as its
// own trace so the merge order is still the spawn order.
func (g *Group) Wait() {
	if g.waited {
		return
	}
	g.waited = true
	w := g.ctx.w
	// Children are zeroed out of the live-fork stack by their recorded
	// indices as they resolve, so a panic mid-Wait leaves abortScope
	// exactly the unresolved ones; trailing zeroes are swept at the end.
	// Reclaim and run children that are still in our own deque, newest
	// first (they are at the bottom).
	for i := len(g.children) - 1; i >= 0; i-- {
		ch := g.children[i]
		if w.tryPopOwn(ch.t) {
			ch.local = true
			w.runTask(ch.t)
			// Resolved: the child's join is complete, so a panic later
			// in Wait must not let abortScope touch this entry.  (The
			// entry is live here, so it cannot have been swept and the
			// index is in range.)
			w.liveForks[ch.idx] = liveFork{}
		}
	}
	// Wait for the rest and merge everything in spawn order.
	var panicked any
	for _, ch := range g.children {
		if !ch.j.finished() {
			w.waitJoin(ch.j)
		}
		w.rt.reducers.Merge(w, w.curTrace, ch.j.deposit)
		if ch.j.panicVal != nil && panicked == nil {
			panicked = ch.j.panicVal
		}
		if ch.local {
			// This worker completed the join itself, so no thief can hold
			// a stale reference; recycle both objects now that the
			// child's identity-check window is closed (runTask leaves
			// owner-pushed tasks unrecycled precisely for this).
			w.freeJoinUsed(ch.j)
			w.freeTask(ch.t)
		}
		if ch.idx < len(w.liveForks) {
			// In range only if the entry still exists: a nested Wait's
			// sweep inside an earlier child may already have truncated
			// this child's zeroed entry away.
			w.liveForks[ch.idx] = liveFork{}
		}
	}
	// Sweep resolved entries off the top of the stack.  When Wait ran
	// inside a newer Fork branch, that fork's live entry stays below-top
	// zeroes that the enclosing scope's truncation will remove.
	for n := len(w.liveForks); n > 0 && w.liveForks[n-1].j == nil; n-- {
		w.liveForks = w.liveForks[:n-1]
	}
	g.children = g.children[:0]
	if panicked != nil {
		// Contained value, not a formatted string: the child's recovery
		// point already wrapped it with the original payload and stack.
		panic(panicked)
	}
}
