package sched

import "fmt"

// Context is the handle through which running code interacts with the
// scheduler: it identifies the worker currently executing the code and
// provides the fork-join primitives.  A Context is only valid on the
// goroutine that received it.
type Context struct {
	w *Worker
}

// Worker returns the worker executing this context.
func (c *Context) Worker() *Worker { return c.w }

// Runtime returns the owning runtime.
func (c *Context) Runtime() *Runtime { return c.w.rt }

// Fork executes left and right as logically parallel branches and returns
// when both have completed.  left runs immediately on the calling worker;
// right — the continuation — is made available for stealing.  If no thief
// takes it, the calling worker runs right itself immediately after left, so
// the execution order equals the serial order left-then-right and no
// reducer views are created, transferred or merged.  If right is stolen,
// the thief executes it with a fresh set of views and the calling worker
// merges those views back in serial order at the join.
func (c *Context) Fork(left, right func(*Context)) {
	w := c.w
	w.nForks.Add(1)
	j := &join{}
	t := &task{fn: right, join: j, owner: w.id}
	w.dq.pushBottom(t)
	w.noteDequeDepth(w.dq.size())
	w.rt.signalWork()

	left(c)

	if w.dq.popBottomIf(t) {
		// Serial fast path: the continuation was not stolen.
		right(c)
		return
	}
	// The continuation was stolen and promoted; wait for it, helping with
	// other work in the meantime, then fold its views back in.
	w.waitJoin(j)
	w.rt.reducers.Merge(w, w.curTrace, j.deposit)
	if j.panicVal != nil {
		panic(fmt.Sprintf("sched: stolen branch panicked: %v", j.panicVal))
	}
}

// ForkN executes the given branches as logically parallel work, preserving
// their serial (left-to-right) order on the no-steal path.  It is the
// n-ary generalisation of Fork, built by right-nesting binary forks.
func (c *Context) ForkN(branches ...func(*Context)) {
	switch len(branches) {
	case 0:
		return
	case 1:
		branches[0](c)
		return
	case 2:
		c.Fork(branches[0], branches[1])
		return
	}
	rest := branches[1:]
	c.Fork(branches[0], func(c2 *Context) { c2.ForkN(rest...) })
}

// ParallelFor executes body(i) for every i in [lo, hi) with automatic grain
// selection, dividing the range by recursive binary forking exactly the way
// the Cilk Plus compiler desugars cilk_for.  Iterations are executed in
// serial order within each grain and the overall reduction order equals the
// serial order.
func (c *Context) ParallelFor(lo, hi int, body func(*Context, int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	grain := n / (8 * c.w.rt.Workers())
	if grain < 1 {
		grain = 1
	}
	if grain > 2048 {
		grain = 2048
	}
	c.ParallelForGrain(lo, hi, grain, body)
}

// ParallelForGrain is ParallelFor with an explicit grain size: ranges of at
// most grain iterations are executed serially without further forking.
func (c *Context) ParallelForGrain(lo, hi, grain int, body func(*Context, int)) {
	if grain < 1 {
		grain = 1
	}
	c.pfor(lo, hi, grain, body)
}

func (c *Context) pfor(lo, hi, grain int, body func(*Context, int)) {
	if hi-lo <= grain {
		for i := lo; i < hi; i++ {
			body(c, i)
		}
		return
	}
	mid := lo + (hi-lo)/2
	c.w.nPForSplits.Add(1)
	c.Fork(
		func(c2 *Context) { c2.pfor(lo, mid, grain, body) },
		func(c2 *Context) { c2.pfor(mid, hi, grain, body) },
	)
}

// Group provides a help-first spawn/sync convenience API in the style of
// cilk_spawn / cilk_sync.  Unlike Fork, every spawned child is a separate
// stealable task even on the no-steal path, so each child contributes its
// own set of views; Wait folds the contributions back in spawn order after
// the parent's own updates.  Consequently the result equals the serial
// execution whenever the parent performs no reducer updates between its
// Spawn calls (or the monoid is commutative).  Code that needs exact serial
// semantics with interleaved parent updates should use Fork or ForkN.
type Group struct {
	ctx      *Context
	children []*groupChild
	waited   bool
}

type groupChild struct {
	t *task
	j *join
}

// NewGroup creates an empty spawn group bound to this context.
func (c *Context) NewGroup() *Group {
	return &Group{ctx: c}
}

// Spawn schedules fn as a child of the group.
func (g *Group) Spawn(fn func(*Context)) {
	if g.waited {
		panic("sched: Spawn after Wait")
	}
	w := g.ctx.w
	w.nForks.Add(1)
	j := &join{}
	t := &task{fn: fn, join: j, owner: w.id}
	g.children = append(g.children, &groupChild{t: t, j: j})
	w.dq.pushBottom(t)
	w.noteDequeDepth(w.dq.size())
	w.rt.signalWork()
}

// Wait blocks until every spawned child has completed and merges their view
// contributions in spawn order.  Children that were not stolen are executed
// by the calling worker itself (newest first, like a deque pop), each as its
// own trace so the merge order is still the spawn order.
func (g *Group) Wait() {
	if g.waited {
		return
	}
	g.waited = true
	w := g.ctx.w
	// Reclaim and run children that are still in our own deque, newest
	// first (they are at the bottom).
	for i := len(g.children) - 1; i >= 0; i-- {
		ch := g.children[i]
		if w.dq.popBottomIf(ch.t) {
			w.runTask(ch.t)
		}
	}
	// Wait for the rest and merge everything in spawn order.
	var panicked any
	for _, ch := range g.children {
		if !ch.j.finished() {
			w.waitJoin(ch.j)
		}
		w.rt.reducers.Merge(w, w.curTrace, ch.j.deposit)
		if ch.j.panicVal != nil && panicked == nil {
			panicked = ch.j.panicVal
		}
	}
	g.children = g.children[:0]
	if panicked != nil {
		panic(fmt.Sprintf("sched: spawned child panicked: %v", panicked))
	}
}
