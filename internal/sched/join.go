package sched

import "sync/atomic"

// join coordinates one Fork: it is the model's analogue of a promoted
// ("full") frame.  It is created lazily in the sense that it only matters
// when the continuation is actually stolen; in the serial fast path the
// struct is taken from the worker's free list but never synchronised on,
// and is recycled as soon as the owner pops its continuation back.
//
// Joins whose continuation WAS stolen are not recycled: after the owner
// observes finished() the thief may still be inside complete(), between
// setting done and closing the waiter channel, so handing the object to a
// new fork could let that stale close hit the new fork's waiter.  Stolen
// joins are rare (steals are rare) and are left to the garbage collector.
type join struct {
	// done is set by the thief after it has published its deposit.
	done atomic.Bool
	// waiter, when non-nil, is closed by the thief to wake the owner
	// parked at the join.
	waiter atomic.Pointer[chan struct{}]
	// deposit holds the stolen branch's transferred views.  It is written
	// by the thief before done is set and read by the owner after done is
	// observed, so the atomic provides the necessary ordering.
	deposit Deposit
	// panicVal carries a panic out of a stolen branch so the forking
	// worker can re-raise it after the join.
	panicVal any
	// next links joins in a worker's free list while recycled.
	next *join
}

// reset clears the join for reuse from a worker's free list.
func (j *join) reset() {
	j.done.Store(false)
	j.waiter.Store(nil)
	j.deposit = nil
	j.panicVal = nil
}

// complete is called by the thief once the stolen continuation has finished
// and its views have been transferred out.  done is set before the waiter
// is read, pairing with park's store-then-recheck, so the owner can never
// sleep on a channel complete will not close.
func (j *join) complete(d Deposit) {
	j.deposit = d
	j.done.Store(true)
	if ch := j.waiter.Load(); ch != nil {
		close(*ch)
	}
}

// finished reports whether the stolen branch has completed.
func (j *join) finished() bool { return j.done.Load() }

// park registers a wait channel and returns it.  The caller must re-check
// finished() after registering to close the race with a concurrent
// complete().
func (j *join) park() chan struct{} {
	ch := make(chan struct{})
	j.waiter.Store(&ch)
	return ch
}
