package sched

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
)

// This file turns the batch fork-join runtime into a resident multi-tenant
// service.  A Service wraps a Runtime with the serving machinery the
// one-job-at-a-time Run API lacks: a bounded admission queue with a
// configurable overload policy, per-job priorities and deadlines enforced at
// the existing fork/steal/merge cancellation checkpoints, a watchdog that
// cancels jobs whose steal/merge progress stops, adaptive worker parking
// driven by the live load, and a graceful drain on Close that stops
// admission, settles every in-flight job by policy, and verifies pool-wide
// quiescence.  Jobs are dispatched by the pool's own workers: an idle worker
// polls the admission queue after its steal sweep, so dispatch needs no
// extra goroutine and scales with idle capacity.

// AdmitPolicy selects what Submit does when the admission queue is full.
type AdmitPolicy uint8

const (
	// AdmitBlock blocks the submitter until queue space frees up, the
	// submission context is cancelled, or the service closes.  This is the
	// classic backpressure policy and the default.
	AdmitBlock AdmitPolicy = iota
	// AdmitReject fails the submission immediately with ErrOverloaded.
	AdmitReject
	// AdmitShedOldest admits the new job and sheds the oldest queued job of
	// the lowest priority class, completing the shed job's handle with
	// ErrOverloaded.  The submitter of a fresher request wins over a stale
	// queued one, which suits deadline-bound request serving.
	AdmitShedOldest
)

// String returns the policy name.
func (p AdmitPolicy) String() string {
	switch p {
	case AdmitBlock:
		return "block"
	case AdmitReject:
		return "reject"
	case AdmitShedOldest:
		return "shed-oldest"
	default:
		return fmt.Sprintf("admit-policy(%d)", uint8(p))
	}
}

// DrainPolicy selects what Close does with jobs admitted before the close.
type DrainPolicy uint8

const (
	// DrainFinish runs every queued and running job to completion before
	// shutting the workers down (new submissions still fail immediately).
	DrainFinish DrainPolicy = iota
	// DrainCancel cancels queued jobs (their handles complete with
	// ErrClosed without ever running) and asks running jobs to stop at
	// their next cancellation checkpoint, then waits for them to settle.
	DrainCancel
)

// String returns the policy name.
func (p DrainPolicy) String() string {
	switch p {
	case DrainFinish:
		return "finish"
	case DrainCancel:
		return "cancel"
	default:
		return fmt.Sprintf("drain-policy(%d)", uint8(p))
	}
}

// ErrOverloaded is returned by Submit under AdmitReject when the admission
// queue is full, and delivered to a shed job's handle under AdmitShedOldest.
var ErrOverloaded = errors.New("sched: service overloaded")

// ErrStalled is the sentinel every watchdog cancellation wraps; classify a
// job error with errors.Is(err, ErrStalled).
var ErrStalled = errors.New("sched: job stalled")

// StallError is the error a watchdog-cancelled job completes with: the
// stall window that elapsed without scheduler-visible progress and a stack
// dump of every goroutine captured at detection time (the diagnostic for
// "where is my job stuck").
type StallError struct {
	// Window is the configured watchdog window the job exceeded.
	Window time.Duration
	// Stack is a runtime.Stack(..., true) capture taken when the stall was
	// detected.
	Stack []byte
}

// Error implements error.
func (e *StallError) Error() string {
	return fmt.Sprintf("sched: job made no steal/merge progress for %v", e.Window)
}

// Unwrap links every StallError to ErrStalled.
func (e *StallError) Unwrap() error { return ErrStalled }

// ServiceConfig configures NewService.
type ServiceConfig struct {
	// Queue bounds the admission queue (jobs admitted but not yet taken by
	// a worker).  Zero selects 4× the worker count.
	Queue int
	// Admit selects the overload policy (default AdmitBlock).
	Admit AdmitPolicy
	// Drain selects what Close does with in-flight jobs (default
	// DrainFinish).
	Drain DrainPolicy
	// Watchdog, when positive, enables the stall watchdog: a job whose
	// progress counter (dispatch, stolen/helped tasks, merge tasks) does
	// not move for a whole window is cancelled with a *StallError carrying
	// an all-goroutine stack dump.  The criterion is scheduler progress, so
	// a legitimate serial section longer than the window is flagged too —
	// size the window for request-shaped fork-join jobs.  Zero disables.
	Watchdog time.Duration
	// AdaptiveParking lets the service steer how long idle workers spin
	// before parking: while jobs are queued or running workers stay hot
	// (longer steal sweeps before parking, lower dispatch latency), and
	// when the service goes idle workers park after a single failed sweep
	// so an embedding server gets its CPUs back.
	AdaptiveParking bool
	// RootMerge, when non-nil, is called by the finishing worker with a
	// successful job's root deposit (the engine's MergeRootDeposit).  When
	// nil the deposit is discarded through the runtime's reducer hooks.
	RootMerge func(Deposit)
	// Quiesce, when non-nil, is the engine-side leak check Close runs after
	// the pool has drained and stopped (the engine's Quiescent).
	Quiesce func() error
}

// JobSpec describes one submission.
type JobSpec struct {
	// Fn is the job's root closure, executed on the worker pool exactly
	// like a Run root.  Required.
	Fn func(*Context)
	// Priority orders the admission queue: higher runs first, ties run in
	// submission order.  Zero is the normal priority.
	Priority int
	// Timeout, when positive, bounds the job's total latency — queue wait
	// included.  It is implemented as a context deadline, so expiry
	// completes the handle with context.DeadlineExceeded and cancels the
	// job at its next checkpoint.
	Timeout time.Duration
	// OnDone, when non-nil, runs exactly once when the handle completes —
	// after the result (or error) is recorded, before Done unblocks — on
	// whichever goroutine completed the job.  It must not block or call
	// back into the handle's Wait.
	OnDone func(err error)
	// OnSettle, when non-nil, runs exactly once when the job settles: when
	// no strand of the job can execute again — the worker has fully
	// unwound (for dispatched jobs) or the job was evicted before dispatch.
	// For a cancelled job this is later than OnDone: the handle completes
	// the moment the cancellation is delivered, while branches already on
	// workers keep unwinding to their next checkpoint.  Resources the job's
	// code itself uses — the cilkm facade's per-job reducer session above
	// all — must be released here, not in OnDone, or a straggling strand
	// could observe another tenant's reuse of them.  It must not block.
	OnSettle func()
}

// Job handle states.
const (
	jobStateNew int32 = iota
	jobStateQueued
	jobStateRunning
	jobStateSettled
	jobStateEvicted // cancelled or shed before a worker took it
)

// JobHandle tracks one submitted job.  The submitter keeps it to wait for
// (or cancel) the job; the service and the finishing worker complete it.
//
// Completion and settlement are distinct: the handle completes when its
// outcome is decided (result merged, or a cancellation/deadline/stall
// delivered), which is when Wait unblocks; a cancelled job settles slightly
// later, once every branch it spawned has unwound and its views are
// discarded.  Drain and quiescence wait for settlement, so a Close after
// Wait never races a job's teardown.
type JobHandle struct {
	svc      *Service
	fn       func(*Context)
	job      *job
	priority int
	seq      uint64

	// state is the queue-lifecycle state (jobState*), advanced by CAS so
	// the dispatch/cancel race has exactly one winner.
	state atomic.Int32
	// completed is the once-only completion claim: whoever wins the CAS
	// delivers the outcome.
	completed atomic.Bool
	// cause records the first cancellation cause (deadline, caller cancel,
	// stall, shed, close) for the settle path to report.
	cause atomic.Pointer[causeBox]

	// err is written exactly once before done is closed; read it only
	// after Done is closed (Wait and Err do this).
	err  error
	done chan struct{}

	// ctxCancel releases the Timeout-derived context; stopWatch detaches
	// the context watcher.  Both are set before the handle is published to
	// the queue and called once at completion.
	ctxCancel context.CancelFunc
	stopWatch func() bool
	onDone    func(error)
	onSettle  func()
	// settleOnce guards onSettle: cancellation racing dispatch means two
	// paths can each believe they retired the job.
	settleOnce atomic.Bool

	// stall holds the watchdog's all-goroutine stack dump when the job was
	// cancelled for stalling; written before the handle completes.
	stall []byte

	// lastProgress and lastActive are watchdog-goroutine-only bookkeeping.
	lastProgress uint64
	lastActive   time.Time
}

type causeBox struct{ err error }

// Done returns a channel closed when the job's outcome is decided.
func (h *JobHandle) Done() <-chan struct{} { return h.done }

// Wait blocks until the job completes and returns its error: nil on
// success, ErrOverloaded if shed, context.DeadlineExceeded on a missed
// deadline, the submission context's error on caller cancellation, a
// *StallError on watchdog cancellation, ErrClosed when the service was
// closed under DrainCancel before the job ran, or a *PanicError when the
// job's code panicked.
func (h *JobHandle) Wait() error {
	<-h.done
	return h.err
}

// Err returns the job's outcome error once Done is closed, and nil before.
func (h *JobHandle) Err() error {
	select {
	case <-h.done:
		return h.err
	default:
		return nil
	}
}

// Cancel asks the job to stop: a queued job completes immediately with
// context.Canceled and never runs; a running job is cancelled at its next
// fork/steal/merge checkpoint.  Cancel after completion is a no-op.
func (h *JobHandle) Cancel() { h.cancel(context.Canceled) }

// StallDump returns the all-goroutine stack capture taken by the watchdog
// when it cancelled this job, or nil if the job was not stall-cancelled.
// Valid once Done is closed.
func (h *JobHandle) StallDump() []byte {
	select {
	case <-h.done:
		return h.stall
	default:
		return nil
	}
}

// storeCause records the first cancellation cause; later causes lose.
func (h *JobHandle) storeCause(err error) {
	h.cause.CompareAndSwap(nil, &causeBox{err: err})
}

// causeErr returns the recorded cancellation cause, or nil.
func (h *JobHandle) causeErr() error {
	if b := h.cause.Load(); b != nil {
		return b.err
	}
	return nil
}

// claimCompletion reserves the right to deliver the handle's outcome.
func (h *JobHandle) claimCompletion() bool {
	return h.completed.CompareAndSwap(false, true)
}

// deliver publishes the outcome and unblocks Wait.  It must be called
// exactly once, by the claimCompletion winner.
func (h *JobHandle) deliver(err error) {
	h.err = err
	if h.ctxCancel != nil {
		h.ctxCancel()
	}
	if h.stopWatch != nil {
		h.stopWatch()
	}
	if h.onDone != nil {
		func() {
			defer func() { _ = recover() }()
			h.onDone(err)
		}()
	}
	close(h.done)
}

// runOnSettle fires the settlement hook exactly once.  It must be called
// only from a path that proves no strand of the job can run again: the
// worker's settle (dispatched jobs) or an eviction that won the state CAS
// against dispatch (never-dispatched jobs).
func (h *JobHandle) runOnSettle() {
	if h.onSettle == nil || !h.settleOnce.CompareAndSwap(false, true) {
		return
	}
	func() {
		defer func() { _ = recover() }()
		h.onSettle()
	}()
}

// cancel is the single entry point for every asynchronous cancellation:
// caller Cancel, context expiry (deadline or cancellation), watchdog stall,
// shed, and drain.  Exactly one of three things happens: the job is evicted
// from the queue before ever running, the running job's handle completes
// early (the job unwinds and settles in the background), or — if the
// outcome was already delivered — nothing.
func (h *JobHandle) cancel(cause error) {
	h.storeCause(cause)
	if faultinject.Enabled() {
		faultinject.Perturb(faultinject.ServiceDeadline)
	}
	if h.state.CompareAndSwap(jobStateNew, jobStateEvicted) {
		// Cancelled while Submit was still admitting: Submit observes the
		// eviction and never queues the job.
		h.job.cancelled.Store(true)
		if h.claimCompletion() {
			h.svc.countCancel(cause)
			h.deliver(cause)
		}
		h.runOnSettle() // never dispatched, so eviction is settlement
		return
	}
	if h.state.CompareAndSwap(jobStateQueued, jobStateEvicted) {
		// Evicted from the queue: the job never ran.  The heap entry is
		// dropped lazily at the next pop.
		h.job.cancelled.Store(true)
		if h.claimCompletion() {
			h.svc.countCancel(cause)
			h.deliver(cause)
		}
		h.runOnSettle() // won the CAS against dispatch: the job never runs
		h.svc.queuedEvicted(h)
		return
	}
	// Running (or settling): ask the checkpoints to unwind and complete the
	// handle early so the submitter is unblocked now; the worker discards
	// the deposit when the job settles.
	h.job.cancelled.Store(true)
	if h.claimCompletion() {
		h.svc.countCancel(cause)
		h.deliver(cause)
	}
}

// settleFromWorker is called by the worker that finished executing the job
// root (normally, by panic, or by cancellation unwind).  It delivers the
// outcome if no cancellation got there first, settles the deposit (merge on
// success, discard otherwise), and retires the job from the service's
// in-flight accounting.
func (h *JobHandle) settleFromWorker(w *Worker, d Deposit, p any) {
	rt := w.rt
	if p != nil {
		// Failed or cancelled: the abort path already discarded the trace's
		// views; d is nil.  Every strand has unwound (the root's joins
		// resolved before the worker returned), so settle-time teardown can
		// run before the outcome is published.
		err := containedError(p, h.causeErr())
		h.runOnSettle()
		if h.claimCompletion() {
			h.deliver(err)
		}
	} else if h.claimCompletion() {
		// Success, and no cancellation raced ahead: fold the root deposit
		// into the leftmost views before the outcome is visible, so a
		// submitter that observes Done reads fully merged reducer values.
		var mergeErr error
		func() {
			defer func() {
				if mp := recover(); mp != nil {
					mergeErr = containedError(wrapPanic(mp), nil)
				}
			}()
			if h.svc.cfg.RootMerge != nil {
				h.svc.cfg.RootMerge(d)
			} else {
				rt.reducers.Discard(w, d)
			}
		}()
		// Merge before settle (teardown may unregister the job's reducers),
		// settle before deliver (a submitter returning from Wait observes
		// the job fully retired).
		h.runOnSettle()
		h.deliver(mergeErr)
	} else {
		// A cancellation outran the finish (the RunContext "outran its
		// cancellation" contract): no result after Done, so the deposit is
		// handed back to the mechanism instead of merged.
		rt.reducers.Discard(w, d)
		h.runOnSettle()
	}
	h.state.Store(jobStateSettled)
	h.svc.jobSettled(h)
}

// jobQueue is the priority heap behind the admission queue: higher Priority
// first, FIFO within a priority (by admission sequence).  Evicted entries
// stay in the heap and are skipped at pop.
type jobQueue []*JobHandle

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}
func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(*JobHandle)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	h := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return h
}
func (q jobQueue) peekDead(i int) bool { return q[i].state.Load() != jobStateQueued }

// ServiceStats is a point-in-time snapshot of the service counters.
type ServiceStats struct {
	Admitted        int64 // jobs accepted into the queue
	Rejected        int64 // submissions failed with ErrOverloaded (AdmitReject)
	Shed            int64 // queued jobs evicted by AdmitShedOldest
	Settled         int64 // jobs fully settled (success, failure, or cancel)
	DeadlineMisses  int64 // jobs cancelled by deadline expiry
	WatchdogCancels int64 // jobs cancelled by the stall watchdog
	QueueDepth      int64 // jobs currently queued
	Running         int64 // jobs currently executing
	QueueCapacity   int64 // configured bound
}

// Service is a resident multi-tenant runtime: a shared worker pool
// accepting concurrent job submissions from many goroutines.  Create one
// with NewService; submit with Submit; shut down with Close.
type Service struct {
	rt  *Runtime
	cfg ServiceConfig

	mu        sync.Mutex
	cond      *sync.Cond
	queue     jobQueue
	heapDead  int // evicted entries still in the heap
	seq       uint64
	running   map[*JobHandle]struct{}
	unsettled int // admitted jobs not yet settled or evicted
	closed    bool
	closeErr  error
	closeDone chan struct{}
	closing   bool

	// queuedLive mirrors the number of live (non-evicted) queued jobs so
	// the workers' pre-park recheck and the pop fast path stay lock-free.
	queuedLive atomic.Int64
	runningCnt atomic.Int64

	stopWatchdog chan struct{}

	admitted        atomic.Int64
	rejected        atomic.Int64
	shed            atomic.Int64
	settled         atomic.Int64
	deadlineMisses  atomic.Int64
	watchdogCancels atomic.Int64
}

// NewService attaches a resident service to the runtime.  At most one
// service may be attached to a runtime; a second NewService panics.  The
// runtime's plain Run/RunErr/RunContext API remains usable alongside the
// service (legacy callers share the same pool).
func NewService(rt *Runtime, cfg ServiceConfig) *Service {
	if cfg.Queue <= 0 {
		cfg.Queue = 4 * rt.Workers()
	}
	s := &Service{
		rt:           rt,
		cfg:          cfg,
		running:      make(map[*JobHandle]struct{}),
		closeDone:    make(chan struct{}),
		stopWatchdog: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if !rt.service.CompareAndSwap(nil, s) {
		panic("sched: runtime already has a service attached")
	}
	if cfg.Watchdog > 0 {
		go s.watchdog()
	}
	return s
}

// Runtime returns the underlying scheduler runtime.
func (s *Service) Runtime() *Runtime { return s.rt }

// Stats snapshots the service counters.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		Admitted:        s.admitted.Load(),
		Rejected:        s.rejected.Load(),
		Shed:            s.shed.Load(),
		Settled:         s.settled.Load(),
		DeadlineMisses:  s.deadlineMisses.Load(),
		WatchdogCancels: s.watchdogCancels.Load(),
		QueueDepth:      s.queuedLive.Load(),
		Running:         s.runningCnt.Load(),
		QueueCapacity:   int64(s.cfg.Queue),
	}
}

// Submit admits a job for execution on the worker pool and returns a handle
// to wait on.  It is safe to call from any number of goroutines.  The
// submission context governs the job end to end: cancelling it (or its
// deadline expiring) evicts a queued job immediately and cancels a running
// one at its next checkpoint; spec.Timeout additionally bounds the job when
// the caller's context has no deadline of its own.
//
// Submit's error reports an admission failure only: ErrClosed after (or
// racing) Close, ErrOverloaded under AdmitReject with a full queue, the
// context's error when ctx died while blocked for space, or an injected
// admission fault.  A handle returned with a nil error always completes —
// job execution errors are reported by Wait.
func (s *Service) Submit(ctx context.Context, spec JobSpec) (*JobHandle, error) {
	if spec.Fn == nil {
		return nil, errors.New("sched: Submit with nil JobSpec.Fn")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if faultinject.Enabled() {
		if err := faultinject.Error(faultinject.ServiceAdmit); err != nil {
			s.rejected.Add(1)
			return nil, err
		}
	}
	h := &JobHandle{
		svc:      s,
		fn:       spec.Fn,
		job:      &job{},
		priority: spec.Priority,
		done:     make(chan struct{}),
		onDone:   spec.OnDone,
		onSettle: spec.OnSettle,
	}
	// Arm the deadline and the context watcher before the handle becomes
	// reachable by any cancellation path, so deliver never races the field
	// stores.
	if spec.Timeout > 0 {
		ctx, h.ctxCancel = context.WithTimeout(ctx, spec.Timeout)
	}
	if ctx.Done() != nil {
		h.stopWatch = context.AfterFunc(ctx, func() {
			h.cancel(ctx.Err())
		})
	}

	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			h.abandonPreQueue(ErrClosed)
			return nil, ErrClosed
		}
		if h.state.Load() == jobStateEvicted {
			// The deadline or the caller's context fired while we were
			// waiting for space: the handle already completed with the
			// cause; report admission success so the caller reads the
			// outcome from the handle, exactly as if eviction had won a
			// moment after queueing.
			s.mu.Unlock()
			return h, nil
		}
		if int(s.queuedLive.Load()) < s.cfg.Queue {
			break
		}
		switch s.cfg.Admit {
		case AdmitReject:
			s.rejected.Add(1)
			s.mu.Unlock()
			h.abandonPreQueue(ErrOverloaded)
			return nil, ErrOverloaded
		case AdmitShedOldest:
			if !s.shedOldestLocked() {
				// Nothing evictable (a race emptied the queue): re-check
				// capacity on the next loop iteration.
				continue
			}
		default: // AdmitBlock
			stop := context.AfterFunc(ctx, func() {
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			})
			s.cond.Wait()
			stop()
			if err := ctx.Err(); err != nil {
				if s.closed {
					// Deterministic contract: a Submit that raced Close
					// reports ErrClosed even if its context also died.
					s.mu.Unlock()
					h.abandonPreQueue(ErrClosed)
					return nil, ErrClosed
				}
				s.mu.Unlock()
				h.abandonPreQueue(err)
				return nil, err
			}
		}
	}
	if !h.state.CompareAndSwap(jobStateNew, jobStateQueued) {
		// Evicted in the instant before queueing (see above).
		s.mu.Unlock()
		return h, nil
	}
	s.seq++
	h.seq = s.seq
	heap.Push(&s.queue, h)
	s.queuedLive.Add(1)
	s.unsettled++
	s.admitted.Add(1)
	s.mu.Unlock()
	s.updateSpin()
	// Publish-then-signal: the queue store above happens-before this load
	// of rt.parked (both sides use sequentially-consistent atomics), so a
	// worker registering as parked either sees the queued job in its
	// recheck or is woken here — no lost wakeup.
	s.rt.signalWork()
	return h, nil
}

// abandonPreQueue completes a handle whose submission failed before it was
// ever queued, releasing its context resources.  The admission error is
// reported by Submit itself; the handle just mirrors it for uniformity.
func (h *JobHandle) abandonPreQueue(err error) {
	h.state.Store(jobStateEvicted)
	if h.claimCompletion() {
		h.deliver(err)
	}
	h.runOnSettle()
}

// shedOldestLocked evicts the oldest queued job of the lowest priority
// class, completing it with ErrOverloaded.  Caller holds s.mu.  Returns
// false when no live queued job exists.
func (s *Service) shedOldestLocked() bool {
	var victim *JobHandle
	for _, h := range s.queue {
		if h.state.Load() != jobStateQueued {
			continue
		}
		if victim == nil ||
			h.priority < victim.priority ||
			(h.priority == victim.priority && h.seq < victim.seq) {
			victim = h
		}
	}
	if victim == nil {
		return false
	}
	if !victim.state.CompareAndSwap(jobStateQueued, jobStateEvicted) {
		return false // lost a race to another eviction; retry from Submit
	}
	s.shed.Add(1)
	victim.job.cancelled.Store(true)
	victim.storeCause(ErrOverloaded)
	if victim.claimCompletion() {
		victim.deliver(ErrOverloaded)
	}
	victim.runOnSettle() // never dispatched
	s.evictAccountingLocked()
	return true
}

// queuedEvicted is the accounting hook for a queued handle evicted by an
// asynchronous cancellation (deadline, caller cancel, drain).
func (s *Service) queuedEvicted(h *JobHandle) {
	s.mu.Lock()
	s.evictAccountingLocked()
	s.mu.Unlock()
	s.updateSpin()
}

// evictAccountingLocked adjusts the queue counters after an eviction and
// compacts the heap when dead entries dominate, so a long-lived service
// under heavy shedding does not pin evicted handles.  Caller holds s.mu.
func (s *Service) evictAccountingLocked() {
	s.queuedLive.Add(-1)
	s.heapDead++
	s.unsettled--
	if s.heapDead > 32 && s.heapDead > len(s.queue)/2 {
		live := s.queue[:0]
		for _, h := range s.queue {
			if h.state.Load() == jobStateQueued {
				live = append(live, h)
			}
		}
		for i := len(live); i < len(s.queue); i++ {
			s.queue[i] = nil
		}
		s.queue = live
		heap.Init(&s.queue)
		s.heapDead = 0
	}
	s.cond.Broadcast()
}

// pop takes the highest-priority live queued job, transitioning it to
// running.  Called by idle workers; the nil fast path is one atomic load.
func (s *Service) pop() *JobHandle {
	if s.queuedLive.Load() == 0 {
		return nil
	}
	s.mu.Lock()
	for s.queue.Len() > 0 {
		h := heap.Pop(&s.queue).(*JobHandle)
		if !h.state.CompareAndSwap(jobStateQueued, jobStateRunning) {
			// Evicted entry surfacing at the top: drop it.
			if s.heapDead > 0 {
				s.heapDead--
			}
			continue
		}
		s.queuedLive.Add(-1)
		s.running[h] = struct{}{}
		s.runningCnt.Add(1)
		s.cond.Broadcast()
		s.mu.Unlock()
		if faultinject.Enabled() {
			faultinject.Perturb(faultinject.ServiceDispatch)
		}
		h.job.progress.Add(1) // dispatch counts as progress
		return h
	}
	s.mu.Unlock()
	return nil
}

// ready reports whether a live job is queued; parking workers use it in
// their registered recheck.
func (s *Service) ready() bool { return s.queuedLive.Load() > 0 }

// jobSettled retires a job from the in-flight accounting once every branch
// has unwound and its deposit is settled.
func (s *Service) jobSettled(h *JobHandle) {
	s.settled.Add(1)
	s.mu.Lock()
	if _, ok := s.running[h]; ok {
		delete(s.running, h)
		s.runningCnt.Add(-1)
	}
	s.unsettled--
	s.cond.Broadcast()
	s.mu.Unlock()
	s.updateSpin()
}

// countCancel classifies a delivered cancellation for the metrics.
func (s *Service) countCancel(cause error) {
	switch {
	case errors.Is(cause, context.DeadlineExceeded):
		s.deadlineMisses.Add(1)
	case errors.Is(cause, ErrStalled):
		s.watchdogCancels.Add(1)
	}
}

// updateSpin steers the adaptive parking level from the live load.
func (s *Service) updateSpin() {
	if !s.cfg.AdaptiveParking {
		return
	}
	if s.queuedLive.Load() > 0 || s.runningCnt.Load() > 0 {
		s.rt.setSpinAttempts(8 * int32(s.rt.cfg.StealAttemptsBeforePark))
	} else {
		s.rt.setSpinAttempts(1)
	}
}

// watchdog periodically scans running jobs for stalled progress counters.
func (s *Service) watchdog() {
	period := s.cfg.Watchdog / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopWatchdog:
			return
		case <-ticker.C:
			s.scanStalls(time.Now())
		}
	}
}

// scanStalls cancels every running job whose progress counter has not moved
// for a full watchdog window, attaching an all-goroutine stack dump.
func (s *Service) scanStalls(now time.Time) {
	s.mu.Lock()
	snapshot := make([]*JobHandle, 0, len(s.running))
	for h := range s.running {
		snapshot = append(snapshot, h)
	}
	s.mu.Unlock()
	for _, h := range snapshot {
		p := h.job.progress.Load()
		if h.lastActive.IsZero() || p != h.lastProgress {
			h.lastProgress = p
			h.lastActive = now
			continue
		}
		if now.Sub(h.lastActive) < s.cfg.Watchdog || h.completed.Load() {
			continue
		}
		// Stalled: capture the diagnostic before completing the handle so
		// StallDump is populated by the time Done closes.
		h.stall = allStacks()
		h.cancel(&StallError{Window: s.cfg.Watchdog, Stack: h.stall})
	}
}

// allStacks captures every goroutine's stack.
func allStacks() []byte {
	buf := make([]byte, 1<<16)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		buf = make([]byte, 2*len(buf))
	}
}

// Close drains and shuts the service down: admission stops first (every
// Submit from this point deterministically returns ErrClosed, including
// submitters blocked for queue space), in-flight jobs are finished or
// cancelled per the drain policy, the worker pool is stopped once every job
// has settled, and pool-wide quiescence is verified — the scheduler's own
// accounting plus the engine check configured in ServiceConfig.Quiesce.
// The first leak found (or a non-quiescent pool) is returned as an error.
// Close is idempotent; concurrent calls all return the first close's
// verdict.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		<-s.closeDone
		return s.closeErr
	}
	s.closing = true
	s.closed = true
	s.cond.Broadcast()
	var toCancel []*JobHandle
	if s.cfg.Drain == DrainCancel {
		for _, h := range s.queue {
			if h.state.Load() == jobStateQueued {
				toCancel = append(toCancel, h)
			}
		}
		for h := range s.running {
			toCancel = append(toCancel, h)
		}
	}
	s.mu.Unlock()

	if faultinject.Enabled() {
		faultinject.Perturb(faultinject.ServiceDrain)
	}
	for _, h := range toCancel {
		h.cancel(ErrClosed)
	}

	// Wait for every admitted job to settle.  Under DrainFinish the queued
	// jobs are still being dispatched by the workers; under DrainCancel
	// the evictions above have already retired the queued ones and the
	// running ones unwind at their next checkpoint.
	s.mu.Lock()
	for s.unsettled > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()

	close(s.stopWatchdog)
	s.rt.Close()

	err := s.rt.Quiescent()
	if err == nil && s.cfg.Quiesce != nil {
		err = s.cfg.Quiesce()
	}
	s.mu.Lock()
	s.closeErr = err
	s.mu.Unlock()
	close(s.closeDone)
	return err
}
