package sched

import "repro/internal/metrics"

// SampleMetrics implements metrics.Source: it exports the scheduler's
// per-worker counters (forks, steals, merge tasks, deque depth) as
// exporter samples.  Stats already reads nothing but per-worker padded
// atomics, so sampling is lock-free and safe at any point of a run; a
// Prometheus rate() over cilkm_sched_steals_total is the steals/s signal
// the observability docs describe.
func (rt *Runtime) SampleMetrics(emit func(metrics.MetricSample)) {
	s := rt.Stats()
	counter := func(name, help string, v int64) {
		emit(metrics.MetricSample{Name: name, Help: help, Kind: metrics.KindCounter, Value: float64(v)})
	}
	counter("cilkm_sched_forks_total", "Fork calls.", s.Forks)
	counter("cilkm_sched_steals_total", "Successful steals.", s.Steals)
	counter("cilkm_sched_failed_steals_total", "Steal sweeps that found nothing.", s.FailedSteals)
	counter("cilkm_sched_stalled_joins_total", "Forks whose continuation was stolen.", s.StalledJoins)
	counter("cilkm_sched_helped_tasks_total", "Tasks executed while waiting at a join.", s.HelpedTasks)
	counter("cilkm_sched_tasks_executed_total", "Stolen or injected tasks executed.", s.TasksExecuted)
	counter("cilkm_sched_merge_tasks_total", "Runtime-internal merge tasks run by thieves.", s.MergeTasks)
	counter("cilkm_sched_root_tasks_total", "Run invocations.", s.RootTasks)
	counter("cilkm_sched_parallel_for_splits_total", "Splits performed by ParallelFor.", s.ParallelForSpl)
	counter("cilkm_sched_worker_parks_total", "Worker park transitions (a registration that backs out at the recheck is not counted).", rt.parks.Load())
	counter("cilkm_sched_worker_unparks_total", "Worker unpark transitions.", rt.unparks.Load())
	emit(metrics.MetricSample{
		Name:  "cilkm_sched_max_deque_depth",
		Help:  "High-water mark of any worker deque.",
		Kind:  metrics.KindGauge,
		Value: float64(s.MaxDequeDepth),
	})
	emit(metrics.MetricSample{
		Name:  "cilkm_sched_workers",
		Help:  "Configured worker count.",
		Kind:  metrics.KindGauge,
		Value: float64(len(rt.workers)),
	})
}

// SampleMetrics implements metrics.Source for the resident service: the
// admission, load and degradation signals the observability docs describe.
// All counters are plain atomics, so sampling never touches the admission
// lock and is safe at any point of a run.
func (s *Service) SampleMetrics(emit func(metrics.MetricSample)) {
	st := s.Stats()
	counter := func(name, help string, v int64) {
		emit(metrics.MetricSample{Name: name, Help: help, Kind: metrics.KindCounter, Value: float64(v)})
	}
	gauge := func(name, help string, v int64) {
		emit(metrics.MetricSample{Name: name, Help: help, Kind: metrics.KindGauge, Value: float64(v)})
	}
	counter("cilkm_service_jobs_admitted_total", "Jobs accepted into the admission queue.", st.Admitted)
	counter("cilkm_service_jobs_rejected_total", "Submissions failed with ErrOverloaded under the reject policy.", st.Rejected)
	counter("cilkm_service_jobs_shed_total", "Queued jobs evicted by the shed-oldest policy.", st.Shed)
	counter("cilkm_service_jobs_settled_total", "Jobs fully settled (success, failure, or cancellation).", st.Settled)
	counter("cilkm_service_deadline_misses_total", "Jobs cancelled by deadline expiry.", st.DeadlineMisses)
	counter("cilkm_service_watchdog_cancels_total", "Jobs cancelled by the stall watchdog.", st.WatchdogCancels)
	gauge("cilkm_service_queue_depth", "Jobs currently waiting in the admission queue.", st.QueueDepth)
	gauge("cilkm_service_jobs_running", "Jobs currently executing on the worker pool.", st.Running)
	gauge("cilkm_service_queue_capacity", "Configured admission queue bound.", st.QueueCapacity)
}
