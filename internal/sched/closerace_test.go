package sched

import (
	"sync"
	"testing"
	"time"
)

// TestCloseRacingRun races Runtime.Close against a burst of concurrent Run
// calls: every Run must either complete its job normally or return
// ErrClosed — never a hang, never a lost job.  The -race build additionally
// checks the inbox/quit/park handshakes involved.
func TestCloseRacingRun(t *testing.T) {
	for round := 0; round < 40; round++ {
		rt := New(Config{Workers: 4})
		const callers = 6
		var wg sync.WaitGroup
		errs := make([]error, callers)
		for g := 0; g < callers; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, errs[g] = rt.Run(func(c *Context) {
					c.ParallelForGrain(0, 32, 1, func(c *Context, i int) {
						time.Sleep(time.Microsecond)
					})
				})
			}()
		}
		// Close somewhere in the middle of the burst: sometimes before any
		// Run lands, sometimes while jobs are executing.
		time.Sleep(time.Duration(round%5) * 50 * time.Microsecond)
		done := make(chan struct{})
		go func() { rt.Close(); close(done) }()
		wg.Wait()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: Close hung with concurrent Run calls", round)
		}
		for g, err := range errs {
			if err != nil && err != ErrClosed {
				t.Fatalf("round %d: caller %d got %v, want nil or ErrClosed", round, g, err)
			}
		}
		// A second Close is a no-op; Run after Close reports ErrClosed.
		rt.Close()
		if _, err := rt.Run(func(*Context) {}); err != ErrClosed {
			t.Fatalf("round %d: Run after Close returned %v, want ErrClosed", round, err)
		}
	}
}
