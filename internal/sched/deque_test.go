package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDequeGrowth pushes far past the initial buffer capacity without any
// pops, then drains from both ends, checking FIFO order at the top and LIFO
// order at the bottom.
func TestDequeGrowth(t *testing.T) {
	var d deque
	const n = dequeInitialSize*8 + 3
	tasks := make([]*task, n)
	for i := range tasks {
		tasks[i] = &task{owner: i}
		d.pushBottom(tasks[i])
	}
	if d.size() != n {
		t.Fatalf("size = %d, want %d", d.size(), n)
	}
	// Steal the oldest half in FIFO order.
	for i := 0; i < n/2; i++ {
		got := d.stealTop()
		if got != tasks[i] {
			t.Fatalf("stealTop %d: got task %v, want %d", i, got, i)
		}
	}
	// Pop the rest in LIFO order.
	for i := n - 1; i >= n/2; i-- {
		got := d.popBottom()
		if got != tasks[i] {
			t.Fatalf("popBottom: got %v, want task %d", got, i)
		}
	}
	if d.popBottom() != nil || d.stealTop() != nil || d.size() != 0 {
		t.Fatal("deque should be empty after draining")
	}
}

// TestDequeStressOwnerVsThieves hammers one deque with its owner (pushing
// in bursts and popping) and several concurrent thieves.  Every task must
// be claimed exactly once — the Chase–Lev last-element race must never
// hand one task to two claimants or lose one.  Run with -race to exercise
// the memory-ordering assumptions.
func TestDequeStressOwnerVsThieves(t *testing.T) {
	const total = 100_000
	const nThieves = 4
	var d deque
	tasks := make([]*task, total)
	for i := range tasks {
		tasks[i] = &task{owner: i}
	}
	claims := make([]atomic.Int32, total)
	var stolen atomic.Int64
	var wg sync.WaitGroup
	var stop atomic.Bool
	for k := 0; k < nThieves; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if tk := d.stealTop(); tk != nil {
					claims[tk.owner].Add(1)
					stolen.Add(1)
					continue
				}
				if stop.Load() {
					return
				}
				runtime.Gosched()
			}
		}()
	}
	// Owner: push in bursts of varying size, popping one task every few
	// pushes so the bottom end stays hot.
	popped := 0
	i := 0
	for i < total {
		burst := 1 + i%7
		for j := 0; j < burst && i < total; j++ {
			d.pushBottom(tasks[i])
			i++
		}
		if i%3 == 0 {
			if tk := d.popBottom(); tk != nil {
				claims[tk.owner].Add(1)
				popped++
			}
		}
	}
	// Drain whatever the thieves have not taken.
	for {
		tk := d.popBottom()
		if tk == nil {
			break
		}
		claims[tk.owner].Add(1)
		popped++
	}
	stop.Store(true)
	wg.Wait()
	for idx := range claims {
		if got := claims[idx].Load(); got != 1 {
			t.Fatalf("task %d claimed %d times, want exactly 1", idx, got)
		}
	}
	if popped+int(stolen.Load()) != total {
		t.Fatalf("popped %d + stolen %d != total %d", popped, stolen.Load(), total)
	}
}

// TestDequeStressForkPattern replays Fork's exact access pattern — push
// one task, do some work, conditionally pop it back — against concurrent
// thieves.  Each task must be executed exactly once, by the owner iff
// popBottomIf succeeded.
func TestDequeStressForkPattern(t *testing.T) {
	const total = 100_000
	const nThieves = 3
	var d deque
	claims := make([]atomic.Int32, total)
	var stolen atomic.Int64
	var wg sync.WaitGroup
	var stop atomic.Bool
	for k := 0; k < nThieves; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if tk := d.stealTop(); tk != nil {
					claims[tk.owner].Add(1)
					stolen.Add(1)
					continue
				}
				if stop.Load() {
					return
				}
				runtime.Gosched()
			}
		}()
	}
	ownerRan := 0
	spin := 0
	for i := 0; i < total; i++ {
		tk := &task{owner: i}
		d.pushBottom(tk)
		// A little "left branch" work so thieves get a window.
		spin += i % 13
		if d.popBottomIf(tk) {
			claims[i].Add(1)
			ownerRan++
		}
	}
	stop.Store(true)
	wg.Wait()
	_ = spin
	for idx := range claims {
		if got := claims[idx].Load(); got != 1 {
			t.Fatalf("task %d claimed %d times, want exactly 1", idx, got)
		}
	}
	if ownerRan+int(stolen.Load()) != total {
		t.Fatalf("owner %d + stolen %d != total %d", ownerRan, stolen.Load(), total)
	}
	if testing.Verbose() {
		t.Logf("owner ran %d, thieves stole %d", ownerRan, stolen.Load())
	}
}

// TestDequePopBottomIfDeclines checks the guard Group.Wait relies on: when
// the bottom task is not the wanted one, popBottomIf must leave the deque
// intact.
func TestDequePopBottomIfDeclines(t *testing.T) {
	var d deque
	t1, t2 := &task{}, &task{}
	d.pushBottom(t1)
	d.pushBottom(t2)
	if d.popBottomIf(t1) {
		t.Fatal("popBottomIf popped a task that was not at the bottom")
	}
	if d.size() != 2 {
		t.Fatalf("size = %d after declined pop, want 2", d.size())
	}
	if !d.popBottomIf(t2) || !d.popBottomIf(t1) {
		t.Fatal("popBottomIf should succeed for bottom tasks in order")
	}
	if d.popBottomIf(t1) {
		t.Fatal("popBottomIf succeeded on an empty deque")
	}
}
