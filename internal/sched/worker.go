package sched

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Worker is one processor surrogate: a goroutine with its own deque that
// executes tasks and participates in randomized work stealing.
type Worker struct {
	rt *Runtime
	id int
	dq deque

	// rngState drives victim selection (xorshift64*).
	rngState uint64

	// curTrace is the reducer trace of the work the worker is currently
	// executing in serial order.  It changes only when the worker begins
	// or ends a stolen task (or the root task).
	curTrace Trace

	// local is per-worker storage for the reducer mechanism.
	local any

	nForks        atomic.Int64
	nSteals       atomic.Int64
	nFailedSteals atomic.Int64
	nStalledJoins atomic.Int64
	nHelped       atomic.Int64
	nTasks        atomic.Int64
	nPForSplits   atomic.Int64
	maxDeque      atomic.Int64
}

func newWorker(rt *Runtime, id int, seed uint64) *Worker {
	if seed == 0 {
		seed = 1
	}
	return &Worker{rt: rt, id: id, rngState: seed}
}

// ID returns the worker's index, in [0, Workers).
func (w *Worker) ID() int { return w.id }

// Runtime returns the owning runtime.
func (w *Worker) Runtime() *Runtime { return w.rt }

// Local returns the per-worker state installed by SetLocal.
func (w *Worker) Local() any { return w.local }

// SetLocal installs per-worker state for the reducer mechanism.  It is
// normally called from ReducerRuntime.WorkerInit.
func (w *Worker) SetLocal(v any) { w.local = v }

// CurrentTrace returns the worker's current reducer trace.
func (w *Worker) CurrentTrace() Trace { return w.curTrace }

// Steals returns the number of successful steals this worker has performed.
func (w *Worker) Steals() int64 { return w.nSteals.Load() }

// loop is the worker's scheduling loop.
func (w *Worker) loop() {
	rt := w.rt
	rt.started.Done()
	defer rt.stopped.Done()
	for {
		if t := w.trySteal(); t != nil {
			w.runTask(t)
			continue
		}
		select {
		case root := <-rt.inbox:
			w.runRoot(root)
			continue
		default:
		}
		// Nothing to do: park until work is signalled, a root task
		// arrives, or the runtime shuts down.
		rt.parked.Add(1)
		select {
		case <-rt.quit:
			rt.parked.Add(-1)
			return
		case root := <-rt.inbox:
			rt.parked.Add(-1)
			w.runRoot(root)
		case <-rt.wake:
			rt.parked.Add(-1)
		case <-time.After(2 * time.Millisecond):
			rt.parked.Add(-1)
		}
	}
}

// runRoot executes one Run invocation as a fresh trace.
func (w *Worker) runRoot(root *rootTask) {
	w.nTasks.Add(1)
	prev := w.curTrace
	w.curTrace = w.rt.reducers.BeginTrace(w)
	func() {
		defer func() {
			if p := recover(); p != nil {
				// Leave the trace in a defined (empty) state before
				// reporting the panic to the Run caller.
				_ = w.rt.reducers.EndTrace(w, w.curTrace)
				w.curTrace = prev
				root.err <- p
			}
		}()
		ctx := &Context{w: w}
		root.fn(ctx)
		d := w.rt.reducers.EndTrace(w, w.curTrace)
		w.curTrace = prev
		root.done <- d
	}()
}

// runTask executes a stolen task as a fresh trace and completes its join.
func (w *Worker) runTask(t *task) {
	w.nTasks.Add(1)
	prev := w.curTrace
	w.curTrace = w.rt.reducers.BeginTrace(w)
	var panicked any
	func() {
		defer func() {
			if p := recover(); p != nil {
				panicked = p
			}
		}()
		ctx := &Context{w: w}
		t.fn(ctx)
	}()
	d := w.rt.reducers.EndTrace(w, w.curTrace)
	w.curTrace = prev
	if panicked != nil {
		t.join.panicVal = panicked
	}
	t.join.complete(d)
}

// trySteal performs one sweep over the other workers in random order and
// returns a stolen task, or nil if every deque was empty.
func (w *Worker) trySteal() *task {
	rt := w.rt
	n := len(rt.workers)
	if n == 1 {
		return nil
	}
	start := int(w.nextRand() % uint64(n))
	for i := 0; i < n; i++ {
		victim := rt.workers[(start+i)%n]
		if victim == w {
			continue
		}
		if t := victim.dq.stealTop(); t != nil {
			w.nSteals.Add(1)
			return t
		}
	}
	w.nFailedSteals.Add(1)
	return nil
}

// waitJoin blocks until the stolen continuation recorded in j completes,
// stealing and executing other tasks while it waits so the worker does not
// idle.
func (w *Worker) waitJoin(j *join) {
	w.nStalledJoins.Add(1)
	attempts := 0
	for !j.finished() {
		if t := w.trySteal(); t != nil {
			w.nHelped.Add(1)
			w.runTask(t)
			attempts = 0
			continue
		}
		attempts++
		if attempts < w.rt.cfg.StealAttemptsBeforePark {
			continue
		}
		ch := j.park()
		if j.finished() {
			return
		}
		select {
		case <-ch:
		case <-time.After(500 * time.Microsecond):
			// Re-check for stealable work periodically so a long-running
			// stolen branch does not leave this worker idle.
		}
	}
}

// nextRand advances the worker's xorshift64* state.
func (w *Worker) nextRand() uint64 {
	x := w.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	w.rngState = x
	return x * 0x2545F4914F6CDD1D
}

// noteDequeDepth updates the deque high-water mark.
func (w *Worker) noteDequeDepth(depth int) {
	d := int64(depth)
	for {
		cur := w.maxDeque.Load()
		if d <= cur || w.maxDeque.CompareAndSwap(cur, d) {
			return
		}
	}
}

// String implements fmt.Stringer for debugging.
func (w *Worker) String() string {
	return fmt.Sprintf("worker(%d)", w.id)
}
