package sched

import (
	"fmt"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/metrics"
)

// Worker is one processor surrogate: a goroutine with its own deque that
// executes tasks and participates in randomized work stealing.
//
// Field layout matters: the deque's indices are padded internally, the
// owner-only hot fields (rng state, trace, free lists) sit together, and
// every statistics counter is a cache-line-padded metrics.PaddedCounter so
// that neither thieves CASing on the deque nor Stats() readers false-share
// with the owner's fast path.
type Worker struct {
	rt *Runtime
	id int

	// dq is the worker's Chase–Lev deque; its top/bottom indices are
	// individually padded inside the struct.
	dq deque

	// rngState drives victim selection (xorshift64*).
	rngState uint64

	// curTrace is the reducer trace of the work the worker is currently
	// executing in serial order.  It changes only when the worker begins
	// or ends a stolen task (or the root task).
	curTrace Trace

	// curJob is the submission whose work the worker is currently
	// executing; fork checkpoints poll its cancellation flag.  Owner-only,
	// saved and restored around nested traces exactly like curTrace.  Nil
	// while executing a plain Run (which has no cancellation).
	curJob *job

	// local is per-worker storage for the reducer mechanism.
	local any

	// viewEpoch is bumped by the reducer mechanism whenever the worker's
	// view state may have changed under an existing context — a trace
	// boundary or a hypermerge (InvalidateLookupCache, owner-side), or a
	// cross-worker publication such as a reducer being unregistered or the
	// directory's view regions growing (PublishViewInvalidation, any
	// goroutine).  The per-context single-entry lookup cache is valid only
	// while its recorded epoch matches, so any of those events silently
	// invalidates every cache built before it.  The counter is atomic so
	// non-owner publishers can bump it, and padded onto its own cache line
	// so a publication sweep does not invalidate the lines holding the
	// owner's other hot fields; the owner's fast-path read is a single
	// read-mostly atomic load.
	_         [64]byte
	viewEpoch atomic.Uint64
	_         [56]byte

	// freeTasks and freeJoins are owner-only free lists backing the
	// allocation-free fork fast path.  Tasks are recycled by whichever
	// worker takes them out of circulation; joins only by their owner on
	// the no-steal path (see join's doc comment).
	freeTasks *task
	freeJoins *join

	// liveForks is the owner-only stack of forks this worker has pushed
	// whose joins are not yet resolved, in push order.  Each entry keeps
	// its own join pointer, captured at push time: the entry's task
	// pointer is used only for popBottomIf identity comparison, never
	// dereferenced, because once stolen the task belongs to its executor
	// (stolen tasks are left to the GC, never recycled — see runTask).
	// Normal fork/join flow maintains strict stack discipline (Group.Wait
	// zeroes entries it consumes out of order); abortScope walks the
	// stack when a task scope panics, so nothing a failed Run pushed can
	// outlive the Run.
	liveForks []liveFork

	// Owner-only plain counters for the fork fast path; flushCounters
	// folds them into the atomic counters below at task boundaries
	// (before a join completes or a root returns), so Stats() is exact
	// once a Run has returned without any atomic RMW per fork.
	forksLocal    int64
	splitsLocal   int64
	maxDequeLocal int64

	_ [64]byte // keep the counters off the owner's hot line

	nForks        metrics.PaddedCounter
	nMergeTasks   metrics.PaddedCounter
	nSteals       metrics.PaddedCounter
	nFailedSteals metrics.PaddedCounter
	nStalledJoins metrics.PaddedCounter
	nHelped       metrics.PaddedCounter
	nTasks        metrics.PaddedCounter
	nPForSplits   metrics.PaddedCounter
	maxDeque      metrics.PaddedCounter
}

func newWorker(rt *Runtime, id int, seed uint64) *Worker {
	if seed == 0 {
		seed = 1
	}
	return &Worker{rt: rt, id: id, rngState: seed}
}

// ID returns the worker's index, in [0, Workers).
func (w *Worker) ID() int { return w.id }

// Runtime returns the owning runtime.
func (w *Worker) Runtime() *Runtime { return w.rt }

// Local returns the per-worker state installed by SetLocal.
func (w *Worker) Local() any { return w.local }

// SetLocal installs per-worker state for the reducer mechanism.  It is
// normally called from ReducerRuntime.WorkerInit.
func (w *Worker) SetLocal(v any) { w.local = v }

// CurrentTrace returns the worker's current reducer trace.
func (w *Worker) CurrentTrace() Trace { return w.curTrace }

// InvalidateLookupCache bumps the worker's view epoch, invalidating every
// per-context lookup cache built against the previous epoch.  Reducer
// mechanisms call it whenever the views a context might have cached can
// change beneath it: at trace boundaries and after hypermerges.  It must be
// called from the worker's own goroutine; other goroutines use
// PublishViewInvalidation.
func (w *Worker) InvalidateLookupCache() { w.viewEpoch.Add(1) }

// ViewEpoch returns the worker's current view epoch.  Typed reducer
// handles stamp their per-worker cached views with it: a cached view is
// served only while the stamp still equals the worker's epoch, so every
// event that calls InvalidateLookupCache or PublishViewInvalidation
// silently invalidates those caches too.  Safe from any goroutine.
func (w *Worker) ViewEpoch() uint64 { return w.viewEpoch.Load() }

// PublishViewInvalidation is the cross-worker half of the view-epoch
// mechanism: it bumps this worker's view epoch from any goroutine.  Reducer
// mechanisms use it as the publication hook for events that change shared
// view metadata out from under running contexts — a reducer unregistered
// mid-run (its slot may be recycled), or the directory's per-worker view
// regions growing — so that every context's cached view is re-resolved
// against the newly published state on its next lookup.
func (w *Worker) PublishViewInvalidation() { w.viewEpoch.Add(1) }

// Steals returns the number of successful steals this worker has performed.
func (w *Worker) Steals() int64 { return w.nSteals.Load() }

// newTask takes a task from the worker's free list, or allocates one.
// Owner-goroutine only.
func (w *Worker) newTask(fn func(*Context), j *join) *task {
	if t := w.freeTasks; t != nil {
		w.freeTasks = t.next
		t.fn, t.mfn, t.join, t.owner, t.job, t.next = fn, nil, j, w.id, w.curJob, nil
		return t
	}
	return &task{fn: fn, join: j, owner: w.id, job: w.curJob}
}

// newMergeTask takes a task from the free list (or allocates one) and
// configures it as a runtime-internal merge task: mfn runs without trace
// hooks.  Owner-goroutine only.
func (w *Worker) newMergeTask(fn func(), j *join) *task {
	if t := w.freeTasks; t != nil {
		w.freeTasks = t.next
		t.fn, t.mfn, t.join, t.owner, t.job, t.next = nil, fn, j, w.id, w.curJob, nil
		return t
	}
	return &task{mfn: fn, join: j, owner: w.id, job: w.curJob}
}

// freeTask recycles a task whose identity-check window has closed: popped
// back by its owner on the fast path, or a Group child the owner ran
// locally and has finished waiting on.
func (w *Worker) freeTask(t *task) {
	t.fn, t.mfn, t.join, t.job = nil, nil, nil, nil
	t.next = w.freeTasks
	w.freeTasks = t
}

// newJoin takes a join from the worker's free list, or allocates one.
func (w *Worker) newJoin() *join {
	if j := w.freeJoins; j != nil {
		w.freeJoins = j.next
		j.next = nil
		return j
	}
	return &join{}
}

// freeJoin recycles a join that is still in its pristine (reset) state: on
// the fork fast path the pop proves no thief ever touched it, so the two
// atomic stores of a reset would be pure overhead.
func (w *Worker) freeJoin(j *join) {
	j.next = w.freeJoins
	w.freeJoins = j
}

// freeJoinUsed recycles a join this worker itself completed (a Group child
// it popped and ran locally): no other worker can hold a reference, but the
// fields must be cleared before reuse.
func (w *Worker) freeJoinUsed(j *join) {
	j.reset()
	j.next = w.freeJoins
	w.freeJoins = j
}

// pushTask publishes t on this worker's deque and applies the wake
// protocol: only the empty→non-empty transition can turn a parked worker's
// situation from "nothing to steal" into "something to steal", so it is
// the only push that signals; trySteal re-signals while a deep deque
// drains.  Fork and Group.Spawn share this so the protocol lives in one
// place.
func (w *Worker) pushTask(t *task) {
	w.liveForks = append(w.liveForks, liveFork{t: t, j: t.join})
	wasEmpty, depth := w.dq.pushBottom(t)
	if depth > w.maxDequeLocal {
		w.maxDequeLocal = depth
	}
	if wasEmpty {
		w.rt.signalWork()
	}
}

// tryPopOwn pops t from the bottom of this worker's deque if it is still
// there.  On decline it re-signals when the deque holds other work: the
// declined pop transiently lowers bottom, and a parking worker whose
// pre-park scan ran in that window may have seen this deque as empty.
// Every owner-side conditional pop must go through here so the wake
// protocol's no-lost-wakeup invariant cannot be forgotten at a call site.
func (w *Worker) tryPopOwn(t *task) bool {
	if w.dq.popBottomIf(t) {
		return true
	}
	if w.dq.size() > 0 {
		w.rt.signalWork()
	}
	return false
}

// popLiveFork removes the calling fork's own liveForks entry, identified
// by its join.  Usually it is the newest live entry — zeroed entries from
// an out-of-order Group.Wait may sit above it and are swept by the
// truncation — but children spawned into a still-un-Waited Group during
// the fork's left branch are live entries above ours and must be kept: in
// that case our entry is zeroed in place, preserving the indices Wait
// recorded at Spawn time.
func (w *Worker) popLiveFork(j *join) {
	i := len(w.liveForks) - 1
	for i >= 0 && w.liveForks[i].j == nil {
		i--
	}
	if i >= 0 && w.liveForks[i].j == j {
		vacated := w.liveForks[i:]
		w.liveForks = w.liveForks[:i]
		for k := range vacated {
			// Clear the vacated backing slots: they hold recycled
			// task/join pointers that must neither pin memory nor be
			// resurrected by a later reslice.
			vacated[k] = liveFork{}
		}
		return
	}
	for ; i >= 0; i-- {
		if w.liveForks[i].j == j {
			w.liveForks[i] = liveFork{}
			return
		}
	}
	panic("sched: fork's live entry missing from its worker's stack")
}

// liveFork is one liveForks entry: a pushed task and the join captured at
// push time (carried separately so the entry never needs to dereference
// the task, which belongs to its executor once stolen).
type liveFork struct {
	t *task
	j *join
}

// abortScope runs when the task scope that begins at liveForks[mark]
// panics: every task the scope pushed is either reclaimed from the deque
// (never seen by a thief — both objects recycle) or, if stolen, waited
// out with its deposit dropped, so no user code from a failed Run keeps
// executing after Run has returned.  Entries are processed newest-first;
// zero entries were already consumed by the normal join paths.
func (w *Worker) abortScope(mark int) {
	for i := len(w.liveForks) - 1; i >= mark; i-- {
		lf := w.liveForks[i]
		if lf.j == nil {
			continue
		}
		if w.tryPopOwn(lf.t) {
			w.freeTask(lf.t)
			w.freeJoin(lf.j)
		} else {
			w.waitJoin(lf.j)
			// The deposit the stolen branch left behind will never reach a
			// Merge — the scope that would have folded it in is panicking —
			// so hand it back to the reducer mechanism, keeping the
			// pagepool and view accounting balanced across an abort.
			w.rt.reducers.Discard(w, lf.j.deposit)
		}
	}
	w.liveForks = w.liveForks[:min(mark, len(w.liveForks))]
}

// flushCounters publishes the owner-local fast-path counters into the
// atomic ones.  It runs before a task's join completes (and before a root
// reports done), so every fork a Run performed is visible to Stats() by the
// time Run returns.
func (w *Worker) flushCounters() {
	if w.forksLocal != 0 {
		w.nForks.Add(w.forksLocal)
		w.forksLocal = 0
	}
	if w.splitsLocal != 0 {
		w.nPForSplits.Add(w.splitsLocal)
		w.splitsLocal = 0
	}
	if w.maxDequeLocal != 0 {
		w.maxDeque.Max(w.maxDequeLocal)
		w.maxDequeLocal = 0
	}
}

// loop is the worker's scheduling loop.  Parking follows a Dekker-style
// protocol with signalWork: the worker registers itself in rt.parked and
// then re-checks every deque, while a forking worker publishes its push and
// then reads rt.parked.  Go atomics are sequentially consistent, so one of
// the two always sees the other and no wakeup is lost — there is no timed
// poll anywhere.
func (w *Worker) loop() {
	rt := w.rt
	rt.started.Done()
	defer rt.stopped.Done()
	attempts := 0
	for {
		if t := w.trySteal(); t != nil {
			w.runTask(t)
			attempts = 0
			continue
		}
		select {
		case root := <-rt.inbox:
			w.runRoot(root)
			attempts = 0
			continue
		default:
		}
		if h := rt.takeServiceRoot(); h != nil {
			w.runServiceJob(h)
			attempts = 0
			continue
		}
		// Nothing found: spin up to the adaptive threshold (a service under
		// load keeps idle workers sweeping so dispatch latency stays low),
		// then register as parked and re-check for work that raced with the
		// registration before actually sleeping.
		attempts++
		if attempts < rt.spinAttempts() {
			continue
		}
		attempts = 0
		if faultinject.Enabled() && faultinject.Perturb(faultinject.SchedPark) {
			continue // chaos: delay the park decision by one extra sweep
		}
		rt.parked.Add(1)
		if rt.workAvailable(w) || rt.serviceReady() {
			rt.parked.Add(-1)
			continue
		}
		rt.parks.Add(1)
		select {
		case <-rt.quit:
			rt.parked.Add(-1)
			return
		case root := <-rt.inbox:
			rt.unparks.Add(1)
			rt.parked.Add(-1)
			w.runRoot(root)
		case <-rt.wake:
			rt.unparks.Add(1)
			rt.parked.Add(-1)
		}
	}
}

// runRoot executes one Run invocation as a fresh trace.
func (w *Worker) runRoot(root *rootTask) {
	w.nTasks.Add(1)
	prev, prevJob := w.curTrace, w.curJob
	w.curTrace = w.rt.reducers.BeginTrace(w)
	w.curJob = root.job
	mark := len(w.liveForks)
	func() {
		defer func() {
			if p := recover(); p != nil {
				// Wrap here, at the recovery point nearest the panic, so
				// the value reported to the Run caller carries the original
				// payload and the panicking goroutine's stack.  Then settle
				// everything the failed root pushed and leave the trace in
				// a defined (empty) state, discarding the views of the
				// aborted job.
				p = wrapPanic(p)
				w.abortScope(mark)
				w.endTraceAbort()
				w.curTrace = prev
				w.curJob = prevJob
				w.flushCounters()
				root.err <- p
			}
		}()
		ctx := &Context{w: w, wid: int32(w.id)}
		root.fn(ctx)
		w.liveForks = w.liveForks[:min(mark, len(w.liveForks))]
		d := w.rt.reducers.EndTrace(w, w.curTrace)
		w.curTrace = prev
		w.curJob = prevJob
		w.flushCounters()
		root.done <- d
	}()
}

// runServiceJob executes one admitted service job as a fresh root trace —
// exactly runRoot's shape, but the outcome is delivered through the job's
// handle (completion claim + settle) instead of the rootTask channels, so a
// deadline or watchdog cancellation that already completed the handle just
// sees its deposit discarded here.
func (w *Worker) runServiceJob(h *JobHandle) {
	w.nTasks.Add(1)
	if h.job.cancelled.Load() {
		// Cancelled between dispatch and execution: never begin the trace.
		h.settleFromWorker(w, nil, errJobCancelled)
		return
	}
	prev, prevJob := w.curTrace, w.curJob
	w.curTrace = w.rt.reducers.BeginTrace(w)
	w.curJob = h.job
	mark := len(w.liveForks)
	var panicked any
	func() {
		defer func() {
			if p := recover(); p != nil {
				panicked = wrapPanic(p)
			}
		}()
		ctx := &Context{w: w, wid: int32(w.id)}
		h.fn(ctx)
	}()
	if panicked != nil {
		w.abortScope(mark)
		w.endTraceAbort()
		w.curTrace = prev
		w.curJob = prevJob
		w.flushCounters()
		h.settleFromWorker(w, nil, panicked)
		return
	}
	w.liveForks = w.liveForks[:min(mark, len(w.liveForks))]
	var d Deposit
	func() {
		defer func() {
			if p := recover(); p != nil {
				d = nil
				panicked = wrapPanic(p)
			}
		}()
		d = w.rt.reducers.EndTrace(w, w.curTrace)
	}()
	w.curTrace = prev
	w.curJob = prevJob
	w.flushCounters()
	h.settleFromWorker(w, d, panicked)
}

// endTraceAbort performs view transferal for a scope that is already
// panicking: the deposit is discarded (its merge will never run), and a
// secondary panic from the reducer mechanism itself is contained so the
// primary failure — already captured by the caller — is the one reported.
func (w *Worker) endTraceAbort() {
	defer func() { _ = recover() }()
	w.rt.reducers.Discard(w, w.rt.reducers.EndTrace(w, w.curTrace))
}

// runTask executes a stolen task as a fresh trace, completes its join, and
// recycles the task object into this worker's free list.
func (w *Worker) runTask(t *task) {
	if t.mfn != nil {
		w.runMergeTask(t)
		return
	}
	w.nTasks.Add(1)
	if j := t.job; j != nil {
		j.progress.Add(1) // a stolen/helped branch ran: the job is alive
	}
	prev, prevJob := w.curTrace, w.curJob
	w.curTrace = w.rt.reducers.BeginTrace(w)
	w.curJob = t.job
	mark := len(w.liveForks)
	var panicked any
	if j := t.job; j != nil && j.cancelled.Load() {
		// The job was cancelled before this branch started: skip the user
		// closure entirely.  The join still completes (with an empty
		// deposit) so the forker unblocks, and the token propagates so the
		// forker's own join logic treats the branch as cancelled.
		panicked = errJobCancelled
	} else {
		func() {
			defer func() {
				if p := recover(); p != nil {
					panicked = wrapPanic(p)
				}
			}()
			ctx := &Context{w: w, wid: int32(w.id)}
			t.fn(ctx)
		}()
	}
	if panicked != nil {
		w.abortScope(mark)
	}
	// Drop any resolved (zeroed) entries the scope left behind — and, like
	// the seed runtime, stop tracking children a misused Group never
	// Waited for.  Clamp to len: a nested Wait's sweep may have truncated
	// below mark, and reslicing up would resurrect vacated slots.
	w.liveForks = w.liveForks[:min(mark, len(w.liveForks))]
	var d Deposit
	func() {
		defer func() {
			if p := recover(); p != nil {
				// View transferal itself failed (e.g. injected pagepool
				// exhaustion).  The join must still complete or the forker
				// hangs forever; report the transferal failure through the
				// join unless the branch had already failed.
				d = nil
				if panicked == nil {
					panicked = wrapPanic(p)
				}
			}
		}()
		d = w.rt.reducers.EndTrace(w, w.curTrace)
	}()
	w.curTrace = prev
	w.curJob = prevJob
	if panicked != nil {
		t.join.panicVal = panicked
	}
	w.flushCounters()
	t.join.complete(d)
	// The task is deliberately NOT recycled here.  Recycling is only safe
	// once no suspended frame can still hold the pointer for a later
	// popBottomIf identity check, and the executor cannot know that: a
	// remote-stolen task's pointer could migrate through thieves' pools
	// back into the origin worker's free list and forge an identity match
	// (ABA) while the pushing fork is still suspended.  Only the two
	// sites that provably close a task's window recycle it: Fork's
	// fast-path pop and Group.Wait's local children.  Stolen and
	// self-stolen tasks go to the GC — part of the steal cost the paper's
	// accounting already budgets for.
}

// trySteal performs one sweep over the other workers in random order and
// returns a stolen task, or nil if every deque was empty.  When a steal
// leaves the victim's deque non-empty, another parked worker is woken so
// that a deep deque drains in parallel.
func (w *Worker) trySteal() *task {
	rt := w.rt
	n := len(rt.workers)
	if n == 1 {
		return nil
	}
	if faultinject.Enabled() && faultinject.Perturb(faultinject.SchedSteal) {
		// Chaos: the sweep pretends every deque was empty, perturbing
		// victim order and park timing without invalidating the schedule
		// (a sweep racing real pushes can legally find nothing).
		w.nFailedSteals.Add(1)
		return nil
	}
	start := int(w.nextRand() % uint64(n))
	for i := 0; i < n; i++ {
		victim := rt.workers[(start+i)%n]
		if victim == w {
			continue
		}
		if t := victim.dq.stealTop(); t != nil {
			w.nSteals.Add(1)
			if victim.dq.size() > 0 {
				rt.signalWork()
			}
			return t
		}
	}
	w.nFailedSteals.Add(1)
	return nil
}

// waitJoin blocks until the stolen continuation recorded in j completes,
// stealing and executing other tasks while it waits so the worker does not
// idle.  When there is nothing to help with, the worker parks on the join's
// waiter channel and on the runtime's wake channel (registering in
// rt.parked first, like loop), so it is woken immediately by either the
// completing thief or by new work — no timed polling.
func (w *Worker) waitJoin(j *join) {
	w.nStalledJoins.Add(1)
	rt := w.rt
	attempts := 0
	for !j.finished() {
		if t := w.trySteal(); t != nil {
			w.nHelped.Add(1)
			w.runTask(t)
			attempts = 0
			continue
		}
		// Self-steal: with nothing to take from other workers, pop and run
		// our own newest continuation exactly as a thief would (fresh
		// trace, deposit, merge at its fork's join).  Any thief could
		// legally run it concurrently with the suspended branch, so this
		// is a valid parallel interleaving — and it is the only way to
		// make progress when the join we are waiting on depends on a task
		// stuck in our own deque (e.g. a group child spawned before the
		// fork being joined, with no other worker free to steal it).
		if t := w.dq.popBottom(); t != nil {
			w.nHelped.Add(1)
			w.runTask(t)
			attempts = 0
			continue
		}
		attempts++
		if attempts < rt.spinAttempts() {
			continue
		}
		attempts = 0
		if faultinject.Enabled() && faultinject.Perturb(faultinject.SchedPark) {
			continue // chaos: delay the park decision by one extra sweep
		}
		ch := j.park()
		if j.finished() {
			return
		}
		rt.parked.Add(1)
		if rt.workAvailable(w) {
			rt.parked.Add(-1)
			continue
		}
		rt.parks.Add(1)
		select {
		case <-ch:
		case <-rt.wake:
			// The token may have been meant for stealable work anywhere —
			// including this worker's own deque, whose tasks other
			// workers can take, or a queued service job this worker (busy
			// at a join) cannot dispatch.  If the join happens to have
			// completed too, the loop exits without a steal sweep, so pass
			// the token on rather than swallow it; a spurious extra wake
			// just re-parks.
			if rt.workAvailable(nil) || rt.serviceReady() {
				rt.signalWork()
			}
		}
		rt.unparks.Add(1)
		rt.parked.Add(-1)
	}
}

// nextRand advances the worker's xorshift64* state.
func (w *Worker) nextRand() uint64 {
	x := w.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	w.rngState = x
	return x * 0x2545F4914F6CDD1D
}

// String implements fmt.Stringer for debugging.
func (w *Worker) String() string {
	return fmt.Sprintf("worker(%d)", w.id)
}
