package sched

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestForkMergeTasksRunsAll checks that every closure of a fan-out runs
// exactly once, whether stolen or run inline, across repeated joins.
func TestForkMergeTasksRunsAll(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rt := New(Config{Workers: workers})
		err := func() error {
			defer rt.Close()
			return rt.RunAndMerge(func(c *Context) {
				w := c.Worker()
				for round := 0; round < 50; round++ {
					const n = 9
					var ran [n]atomic.Int64
					fns := make([]func(), n)
					for i := 0; i < n; i++ {
						i := i
						fns[i] = func() {
							time.Sleep(10 * time.Microsecond)
							ran[i].Add(1)
						}
					}
					w.ForkMergeTasks(fns)
					for i := range ran {
						if got := ran[i].Load(); got != 1 {
							t.Errorf("workers=%d round=%d fn %d ran %d times", workers, round, i, got)
						}
					}
				}
			})
		}()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

// TestForkMergeTasksEmptyAndSingle covers the degenerate fan-outs.
func TestForkMergeTasksEmptyAndSingle(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	err := rt.RunAndMerge(func(c *Context) {
		w := c.Worker()
		w.ForkMergeTasks(nil)
		ran := false
		w.ForkMergeTasks([]func(){func() { ran = true }})
		if !ran {
			t.Error("single-closure fan-out did not run")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestForkMergeTasksPanicPropagates checks that a panicking merge batch
// reaches the forking worker as a panic, and that the runtime survives to
// execute further work afterwards.
func TestForkMergeTasksPanicPropagates(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	panicked := ""
	func() {
		defer func() {
			if p := recover(); p != nil {
				pe, ok := p.(*PanicError)
				if !ok {
					t.Errorf("merge-task panic surfaced as %T, want *PanicError", p)
					panicked = "" // fail the Contains check below too
					return
				}
				if len(pe.Stack) == 0 {
					t.Error("contained panic lost its captured stack")
				}
				panicked, _ = pe.Value.(string)
			}
		}()
		_ = rt.RunAndMerge(func(c *Context) {
			c.Worker().ForkMergeTasks([]func(){
				func() {},
				func() { panic("boom") },
			})
		})
	}()
	if !strings.Contains(panicked, "boom") {
		t.Fatalf("merge-task panic not propagated: %q", panicked)
	}
	// The pool must still be usable.
	n := 0
	if err := rt.RunAndMerge(func(c *Context) { n = 1 }); err != nil || n != 1 {
		t.Fatalf("runtime unusable after merge-task panic: n=%d err=%v", n, err)
	}
}

// TestContextLookupCacheEpoch checks the single-entry cache honours both the
// key and the worker's view epoch.
func TestContextLookupCacheEpoch(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	err := rt.RunAndMerge(func(c *Context) {
		if _, ok := c.CachedView(1); ok {
			t.Error("fresh context reported a cached view")
		}
		c.CacheView(1, "v1")
		if v, ok := c.CachedView(1); !ok || v != "v1" {
			t.Errorf("cache miss after store: %v %v", v, ok)
		}
		if _, ok := c.CachedView(2); ok {
			t.Error("cache hit for a different key")
		}
		c.Worker().InvalidateLookupCache()
		if _, ok := c.CachedView(1); ok {
			t.Error("cache survived an epoch bump")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
