package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesRoot(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	ran := false
	if err := rt.RunAndMerge(func(c *Context) { ran = true }); err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	if !ran {
		t.Fatal("root function did not run")
	}
	st := rt.Stats()
	if st.RootTasks != 1 {
		t.Fatalf("RootTasks = %d, want 1", st.RootTasks)
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	rt := New(Config{})
	defer rt.Close()
	if rt.Workers() < 1 {
		t.Fatalf("Workers = %d, want >= 1", rt.Workers())
	}
	if rt.Reducers() != nil {
		t.Fatal("Reducers should be nil when not configured")
	}
}

func TestRunAfterCloseFails(t *testing.T) {
	rt := New(Config{Workers: 1})
	rt.Close()
	rt.Close() // idempotent
	if err := rt.RunAndMerge(func(*Context) {}); err != ErrClosed {
		t.Fatalf("Run after Close: got %v, want ErrClosed", err)
	}
}

func TestForkSerialOrderOnSingleWorker(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	var order []int
	err := rt.RunAndMerge(func(c *Context) {
		order = append(order, 0)
		c.Fork(
			func(c *Context) {
				order = append(order, 1)
				c.Fork(
					func(c *Context) { order = append(order, 2) },
					func(c *Context) { order = append(order, 3) },
				)
			},
			func(c *Context) { order = append(order, 4) },
		)
		order = append(order, 5)
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	want := []int{0, 1, 2, 3, 4, 5}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	st := rt.Stats()
	if st.Steals != 0 {
		t.Fatalf("single-worker run performed %d steals", st.Steals)
	}
	if st.Forks != 2 {
		t.Fatalf("Forks = %d, want 2", st.Forks)
	}
}

func TestForkNSerialOrder(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	var order []int
	err := rt.RunAndMerge(func(c *Context) {
		c.ForkN(
			func(*Context) { order = append(order, 0) },
			func(*Context) { order = append(order, 1) },
			func(*Context) { order = append(order, 2) },
			func(*Context) { order = append(order, 3) },
		)
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
	if len(order) != 4 {
		t.Fatalf("ran %d branches, want 4", len(order))
	}
	// Degenerate arities.
	if err := rt.RunAndMerge(func(c *Context) {
		c.ForkN()
		c.ForkN(func(*Context) { order = append(order, 99) })
	}); err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	if order[len(order)-1] != 99 {
		t.Fatal("single-branch ForkN did not run its branch")
	}
}

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	const n = 10000
	counts := make([]int32, n)
	err := rt.RunAndMerge(func(c *Context) {
		c.ParallelFor(0, n, func(_ *Context, i int) {
			atomic.AddInt32(&counts[i], 1)
		})
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	for i, v := range counts {
		if v != 1 {
			t.Fatalf("index %d executed %d times", i, v)
		}
	}
}

func TestParallelForGrainAndEmptyRanges(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	var count atomic.Int64
	err := rt.RunAndMerge(func(c *Context) {
		c.ParallelFor(5, 5, func(*Context, int) { count.Add(1) })
		c.ParallelFor(7, 3, func(*Context, int) { count.Add(1) })
		c.ParallelForGrain(0, 100, 0, func(*Context, int) { count.Add(1) })
		c.ParallelForGrain(0, 64, 1000, func(*Context, int) { count.Add(1) })
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	if count.Load() != 164 {
		t.Fatalf("executed %d iterations, want 164", count.Load())
	}
}

func TestWorkIsDistributedAcrossWorkers(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	var mu sync.Mutex
	workersSeen := make(map[int]int)
	err := rt.RunAndMerge(func(c *Context) {
		c.ParallelForGrain(0, 500, 1, func(c *Context, i int) {
			// Sleeping yields the processor so that, even on a single-CPU
			// host, parked workers get scheduled and steal.
			time.Sleep(200 * time.Microsecond)
			mu.Lock()
			workersSeen[c.Worker().ID()]++
			mu.Unlock()
		})
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	st := rt.Stats()
	if st.Steals == 0 {
		t.Fatalf("expected steals on a 4-worker run, stats %+v", st)
	}
	total := 0
	for _, n := range workersSeen {
		total += n
	}
	if total != 500 {
		t.Fatalf("iterations executed %d, want 500", total)
	}
}

func TestGroupRunsAllChildren(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	var sum atomic.Int64
	err := rt.RunAndMerge(func(c *Context) {
		g := c.NewGroup()
		for i := 1; i <= 10; i++ {
			v := int64(i)
			g.Spawn(func(*Context) { sum.Add(v) })
		}
		g.Wait()
		g.Wait() // second Wait is a no-op
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	if sum.Load() != 55 {
		t.Fatalf("sum = %d, want 55", sum.Load())
	}
}

func TestGroupSpawnAfterWaitPanics(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from Spawn after Wait")
		}
	}()
	_ = rt.RunAndMerge(func(c *Context) {
		g := c.NewGroup()
		g.Spawn(func(*Context) {})
		g.Wait()
		g.Spawn(func(*Context) {})
	})
}

func TestRootPanicPropagatesToRunCaller(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate out of Run")
		}
	}()
	_ = rt.RunAndMerge(func(c *Context) {
		panic("boom")
	})
}

func TestRuntimeUsableAfterRootPanic(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	func() {
		defer func() { _ = recover() }()
		_ = rt.RunAndMerge(func(*Context) { panic("first") })
	}()
	ran := false
	if err := rt.RunAndMerge(func(*Context) { ran = true }); err != nil {
		t.Fatalf("RunAndMerge after panic: %v", err)
	}
	if !ran {
		t.Fatal("runtime unusable after a root panic")
	}
}

func TestNestedParallelism(t *testing.T) {
	rt := New(Config{Workers: 3})
	defer rt.Close()
	var total atomic.Int64
	err := rt.RunAndMerge(func(c *Context) {
		c.ParallelForGrain(0, 32, 1, func(c *Context, i int) {
			c.ParallelForGrain(0, 32, 1, func(_ *Context, j int) {
				total.Add(1)
			})
		})
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	if total.Load() != 32*32 {
		t.Fatalf("total = %d, want %d", total.Load(), 32*32)
	}
}

func TestConcurrentRuns(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = rt.RunAndMerge(func(c *Context) {
				c.ParallelFor(0, 1000, func(*Context, int) { total.Add(1) })
			})
		}()
	}
	wg.Wait()
	if total.Load() != 8000 {
		t.Fatalf("total = %d, want 8000", total.Load())
	}
}

func TestStatsResetAndDequeHighWater(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	_ = rt.RunAndMerge(func(c *Context) {
		c.ParallelForGrain(0, 256, 1, func(*Context, int) {})
	})
	st := rt.Stats()
	if st.Forks == 0 || st.MaxDequeDepth == 0 || st.ParallelForSpl == 0 {
		t.Fatalf("expected non-zero fork stats, got %+v", st)
	}
	rt.ResetStats()
	st = rt.Stats()
	if st.Forks != 0 || st.Steals != 0 || st.MaxDequeDepth != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
}

// recordingReducers verifies that the scheduler invokes the reducer hooks
// at the right moments: a trace per root/stolen task, one deposit per trace
// end, and a merge per stolen continuation.
type recordingReducers struct {
	inits  atomic.Int64
	begins atomic.Int64
	ends   atomic.Int64
	merges atomic.Int64
}

type recordingTrace struct{ id int64 }
type recordingDeposit struct{ id int64 }

func (r *recordingReducers) WorkerInit(w *Worker) {
	r.inits.Add(1)
	w.SetLocal(r)
}
func (r *recordingReducers) BeginTrace(w *Worker) Trace {
	return &recordingTrace{id: r.begins.Add(1)}
}
func (r *recordingReducers) EndTrace(w *Worker, tr Trace) Deposit {
	if _, ok := tr.(*recordingTrace); !ok {
		panic("EndTrace received a foreign trace")
	}
	return &recordingDeposit{id: r.ends.Add(1)}
}
func (r *recordingReducers) Merge(w *Worker, tr Trace, d Deposit) {
	if d == nil {
		return
	}
	if _, ok := d.(*recordingDeposit); !ok {
		panic("Merge received a foreign deposit")
	}
	r.merges.Add(1)
}

func TestReducerHooksOnSerialRun(t *testing.T) {
	rec := &recordingReducers{}
	rt := New(Config{Workers: 1, Reducers: rec})
	defer rt.Close()
	if rt.Reducers() == nil {
		t.Fatal("Reducers() should return the configured mechanism")
	}
	err := rt.RunAndMerge(func(c *Context) {
		c.ParallelForGrain(0, 64, 1, func(*Context, int) {})
		if c.Worker().Local() != any(rec) {
			t.Error("WorkerInit did not install local state")
		}
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	if got := rec.inits.Load(); got != 1 {
		t.Fatalf("WorkerInit called %d times, want 1", got)
	}
	// A single-worker run steals nothing: exactly one trace (the root) and
	// no merges.
	if rec.begins.Load() != 1 || rec.ends.Load() != 1 {
		t.Fatalf("begin/end = %d/%d, want 1/1", rec.begins.Load(), rec.ends.Load())
	}
	if rec.merges.Load() != 0 {
		t.Fatalf("merges = %d, want 0 on a serial run", rec.merges.Load())
	}
}

func TestReducerHooksOnParallelRun(t *testing.T) {
	rec := &recordingReducers{}
	rt := New(Config{Workers: 4, Reducers: rec})
	defer rt.Close()
	err := rt.RunAndMerge(func(c *Context) {
		c.ParallelForGrain(0, 2000, 1, func(*Context, int) {
			s := 0
			for k := 0; k < 100; k++ {
				s += k
			}
			_ = s
		})
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	st := rt.Stats()
	begins, ends, merges := rec.begins.Load(), rec.ends.Load(), rec.merges.Load()
	if begins != ends {
		t.Fatalf("unbalanced traces: begins %d, ends %d", begins, ends)
	}
	// One trace per executed task (root + stolen/helped tasks).
	if begins != st.TasksExecuted {
		t.Fatalf("begins = %d, want TasksExecuted = %d", begins, st.TasksExecuted)
	}
	// Every stolen continuation is merged exactly once; the root deposit is
	// returned to Run rather than merged.
	if merges != st.TasksExecuted-st.RootTasks {
		t.Fatalf("merges = %d, want %d", merges, st.TasksExecuted-st.RootTasks)
	}
}

func TestStolenBranchPanicPropagates(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from stolen branch to propagate")
		}
	}()
	_ = rt.RunAndMerge(func(c *Context) {
		c.ParallelForGrain(0, 512, 1, func(_ *Context, i int) {
			busy := 0
			for k := 0; k < 500; k++ {
				busy += k
			}
			_ = busy
			if i == 300 {
				panic("branch failure")
			}
		})
	})
}

func TestDequeOperations(t *testing.T) {
	var d deque
	t1 := &task{}
	t2 := &task{}
	t3 := &task{}
	if d.popBottom() != nil || d.stealTop() != nil || d.size() != 0 {
		t.Fatal("empty deque misbehaves")
	}
	d.pushBottom(t1)
	d.pushBottom(t2)
	d.pushBottom(t3)
	if d.size() != 3 {
		t.Fatalf("size = %d, want 3", d.size())
	}
	if got := d.stealTop(); got != t1 {
		t.Fatal("stealTop should return the oldest task")
	}
	if d.popBottomIf(t2) {
		t.Fatal("popBottomIf should fail when the bottom is a different task")
	}
	if !d.popBottomIf(t3) {
		t.Fatal("popBottomIf should succeed for the bottom task")
	}
	if got := d.popBottom(); got != t2 {
		t.Fatal("popBottom should return the remaining task")
	}
	if d.size() != 0 {
		t.Fatalf("size = %d, want 0", d.size())
	}
}

func TestWorkerString(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	if rt.Worker(1).String() != "worker(1)" {
		t.Fatalf("String() = %q", rt.Worker(1).String())
	}
	if rt.Worker(0).ID() != 0 || rt.Worker(0).Runtime() != rt {
		t.Fatal("worker accessors broken")
	}
}
