package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesRoot(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	ran := false
	if err := rt.RunAndMerge(func(c *Context) { ran = true }); err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	if !ran {
		t.Fatal("root function did not run")
	}
	st := rt.Stats()
	if st.RootTasks != 1 {
		t.Fatalf("RootTasks = %d, want 1", st.RootTasks)
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	rt := New(Config{})
	defer rt.Close()
	if rt.Workers() < 1 {
		t.Fatalf("Workers = %d, want >= 1", rt.Workers())
	}
	if rt.Reducers() != nil {
		t.Fatal("Reducers should be nil when not configured")
	}
}

func TestRunAfterCloseFails(t *testing.T) {
	rt := New(Config{Workers: 1})
	rt.Close()
	rt.Close() // idempotent
	if err := rt.RunAndMerge(func(*Context) {}); err != ErrClosed {
		t.Fatalf("Run after Close: got %v, want ErrClosed", err)
	}
}

func TestForkSerialOrderOnSingleWorker(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	var order []int
	err := rt.RunAndMerge(func(c *Context) {
		order = append(order, 0)
		c.Fork(
			func(c *Context) {
				order = append(order, 1)
				c.Fork(
					func(c *Context) { order = append(order, 2) },
					func(c *Context) { order = append(order, 3) },
				)
			},
			func(c *Context) { order = append(order, 4) },
		)
		order = append(order, 5)
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	want := []int{0, 1, 2, 3, 4, 5}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	st := rt.Stats()
	if st.Steals != 0 {
		t.Fatalf("single-worker run performed %d steals", st.Steals)
	}
	if st.Forks != 2 {
		t.Fatalf("Forks = %d, want 2", st.Forks)
	}
}

func TestForkNSerialOrder(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	var order []int
	err := rt.RunAndMerge(func(c *Context) {
		c.ForkN(
			func(*Context) { order = append(order, 0) },
			func(*Context) { order = append(order, 1) },
			func(*Context) { order = append(order, 2) },
			func(*Context) { order = append(order, 3) },
		)
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
	if len(order) != 4 {
		t.Fatalf("ran %d branches, want 4", len(order))
	}
	// Degenerate arities.
	if err := rt.RunAndMerge(func(c *Context) {
		c.ForkN()
		c.ForkN(func(*Context) { order = append(order, 99) })
	}); err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	if order[len(order)-1] != 99 {
		t.Fatal("single-branch ForkN did not run its branch")
	}
}

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	const n = 10000
	counts := make([]int32, n)
	err := rt.RunAndMerge(func(c *Context) {
		c.ParallelFor(0, n, func(_ *Context, i int) {
			atomic.AddInt32(&counts[i], 1)
		})
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	for i, v := range counts {
		if v != 1 {
			t.Fatalf("index %d executed %d times", i, v)
		}
	}
}

func TestParallelForGrainAndEmptyRanges(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	var count atomic.Int64
	err := rt.RunAndMerge(func(c *Context) {
		c.ParallelFor(5, 5, func(*Context, int) { count.Add(1) })
		c.ParallelFor(7, 3, func(*Context, int) { count.Add(1) })
		c.ParallelForGrain(0, 100, 0, func(*Context, int) { count.Add(1) })
		c.ParallelForGrain(0, 64, 1000, func(*Context, int) { count.Add(1) })
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	if count.Load() != 164 {
		t.Fatalf("executed %d iterations, want 164", count.Load())
	}
}

func TestWorkIsDistributedAcrossWorkers(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	var mu sync.Mutex
	workersSeen := make(map[int]int)
	err := rt.RunAndMerge(func(c *Context) {
		c.ParallelForGrain(0, 500, 1, func(c *Context, i int) {
			// Sleeping yields the processor so that, even on a single-CPU
			// host, parked workers get scheduled and steal.
			time.Sleep(200 * time.Microsecond)
			mu.Lock()
			workersSeen[c.Worker().ID()]++
			mu.Unlock()
		})
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	st := rt.Stats()
	if st.Steals == 0 {
		t.Fatalf("expected steals on a 4-worker run, stats %+v", st)
	}
	total := 0
	for _, n := range workersSeen {
		total += n
	}
	if total != 500 {
		t.Fatalf("iterations executed %d, want 500", total)
	}
}

func TestGroupRunsAllChildren(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	var sum atomic.Int64
	err := rt.RunAndMerge(func(c *Context) {
		g := c.NewGroup()
		for i := 1; i <= 10; i++ {
			v := int64(i)
			g.Spawn(func(*Context) { sum.Add(v) })
		}
		g.Wait()
		g.Wait() // second Wait is a no-op
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	if sum.Load() != 55 {
		t.Fatalf("sum = %d, want 55", sum.Load())
	}
}

func TestGroupSpawnAfterWaitPanics(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from Spawn after Wait")
		}
	}()
	_ = rt.RunAndMerge(func(c *Context) {
		g := c.NewGroup()
		g.Spawn(func(*Context) {})
		g.Wait()
		g.Spawn(func(*Context) {})
	})
}

func TestRootPanicPropagatesToRunCaller(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate out of Run")
		}
	}()
	_ = rt.RunAndMerge(func(c *Context) {
		panic("boom")
	})
}

func TestRuntimeUsableAfterRootPanic(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	func() {
		defer func() { _ = recover() }()
		_ = rt.RunAndMerge(func(*Context) { panic("first") })
	}()
	ran := false
	if err := rt.RunAndMerge(func(*Context) { ran = true }); err != nil {
		t.Fatalf("RunAndMerge after panic: %v", err)
	}
	if !ran {
		t.Fatal("runtime unusable after a root panic")
	}
}

func TestNestedParallelism(t *testing.T) {
	rt := New(Config{Workers: 3})
	defer rt.Close()
	var total atomic.Int64
	err := rt.RunAndMerge(func(c *Context) {
		c.ParallelForGrain(0, 32, 1, func(c *Context, i int) {
			c.ParallelForGrain(0, 32, 1, func(_ *Context, j int) {
				total.Add(1)
			})
		})
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	if total.Load() != 32*32 {
		t.Fatalf("total = %d, want %d", total.Load(), 32*32)
	}
}

func TestConcurrentRuns(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = rt.RunAndMerge(func(c *Context) {
				c.ParallelFor(0, 1000, func(*Context, int) { total.Add(1) })
			})
		}()
	}
	wg.Wait()
	if total.Load() != 8000 {
		t.Fatalf("total = %d, want 8000", total.Load())
	}
}

func TestStatsResetAndDequeHighWater(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	_ = rt.RunAndMerge(func(c *Context) {
		c.ParallelForGrain(0, 256, 1, func(*Context, int) {})
	})
	st := rt.Stats()
	if st.Forks == 0 || st.MaxDequeDepth == 0 || st.ParallelForSpl == 0 {
		t.Fatalf("expected non-zero fork stats, got %+v", st)
	}
	rt.ResetStats()
	st = rt.Stats()
	if st.Forks != 0 || st.Steals != 0 || st.MaxDequeDepth != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
}

// recordingReducers verifies that the scheduler invokes the reducer hooks
// at the right moments: a trace per root/stolen task, one deposit per trace
// end, and a merge per stolen continuation.
type recordingReducers struct {
	inits  atomic.Int64
	begins atomic.Int64
	ends   atomic.Int64
	merges atomic.Int64
}

type recordingTrace struct{ id int64 }
type recordingDeposit struct{ id int64 }

func (r *recordingReducers) WorkerInit(w *Worker) {
	r.inits.Add(1)
	w.SetLocal(r)
}
func (r *recordingReducers) BeginTrace(w *Worker) Trace {
	return &recordingTrace{id: r.begins.Add(1)}
}
func (r *recordingReducers) EndTrace(w *Worker, tr Trace) Deposit {
	if _, ok := tr.(*recordingTrace); !ok {
		panic("EndTrace received a foreign trace")
	}
	return &recordingDeposit{id: r.ends.Add(1)}
}
func (r *recordingReducers) Discard(*Worker, Deposit) {}
func (r *recordingReducers) Merge(w *Worker, tr Trace, d Deposit) {
	if d == nil {
		return
	}
	if _, ok := d.(*recordingDeposit); !ok {
		panic("Merge received a foreign deposit")
	}
	r.merges.Add(1)
}

func TestReducerHooksOnSerialRun(t *testing.T) {
	rec := &recordingReducers{}
	rt := New(Config{Workers: 1, Reducers: rec})
	defer rt.Close()
	if rt.Reducers() == nil {
		t.Fatal("Reducers() should return the configured mechanism")
	}
	err := rt.RunAndMerge(func(c *Context) {
		c.ParallelForGrain(0, 64, 1, func(*Context, int) {})
		if c.Worker().Local() != any(rec) {
			t.Error("WorkerInit did not install local state")
		}
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	if got := rec.inits.Load(); got != 1 {
		t.Fatalf("WorkerInit called %d times, want 1", got)
	}
	// A single-worker run steals nothing: exactly one trace (the root) and
	// no merges.
	if rec.begins.Load() != 1 || rec.ends.Load() != 1 {
		t.Fatalf("begin/end = %d/%d, want 1/1", rec.begins.Load(), rec.ends.Load())
	}
	if rec.merges.Load() != 0 {
		t.Fatalf("merges = %d, want 0 on a serial run", rec.merges.Load())
	}
}

func TestReducerHooksOnParallelRun(t *testing.T) {
	rec := &recordingReducers{}
	rt := New(Config{Workers: 4, Reducers: rec})
	defer rt.Close()
	err := rt.RunAndMerge(func(c *Context) {
		c.ParallelForGrain(0, 2000, 1, func(*Context, int) {
			s := 0
			for k := 0; k < 100; k++ {
				s += k
			}
			_ = s
		})
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	st := rt.Stats()
	begins, ends, merges := rec.begins.Load(), rec.ends.Load(), rec.merges.Load()
	if begins != ends {
		t.Fatalf("unbalanced traces: begins %d, ends %d", begins, ends)
	}
	// One trace per executed task (root + stolen/helped tasks).
	if begins != st.TasksExecuted {
		t.Fatalf("begins = %d, want TasksExecuted = %d", begins, st.TasksExecuted)
	}
	// Every stolen continuation is merged exactly once; the root deposit is
	// returned to Run rather than merged.
	if merges != st.TasksExecuted-st.RootTasks {
		t.Fatalf("merges = %d, want %d", merges, st.TasksExecuted-st.RootTasks)
	}
}

func TestStolenBranchPanicPropagates(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from stolen branch to propagate")
		}
	}()
	_ = rt.RunAndMerge(func(c *Context) {
		c.ParallelForGrain(0, 512, 1, func(_ *Context, i int) {
			busy := 0
			for k := 0; k < 500; k++ {
				busy += k
			}
			_ = busy
			if i == 300 {
				panic("branch failure")
			}
		})
	})
}

func TestDequeOperations(t *testing.T) {
	var d deque
	t1 := &task{}
	t2 := &task{}
	t3 := &task{}
	if d.popBottom() != nil || d.stealTop() != nil || d.size() != 0 {
		t.Fatal("empty deque misbehaves")
	}
	d.pushBottom(t1)
	d.pushBottom(t2)
	d.pushBottom(t3)
	if d.size() != 3 {
		t.Fatalf("size = %d, want 3", d.size())
	}
	if got := d.stealTop(); got != t1 {
		t.Fatal("stealTop should return the oldest task")
	}
	if d.popBottomIf(t2) {
		t.Fatal("popBottomIf should fail when the bottom is a different task")
	}
	if !d.popBottomIf(t3) {
		t.Fatal("popBottomIf should succeed for the bottom task")
	}
	if got := d.popBottom(); got != t2 {
		t.Fatal("popBottom should return the remaining task")
	}
	if d.size() != 0 {
		t.Fatalf("size = %d, want 0", d.size())
	}
}

func TestWorkerString(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	if rt.Worker(1).String() != "worker(1)" {
		t.Fatalf("String() = %q", rt.Worker(1).String())
	}
	if rt.Worker(0).ID() != 0 || rt.Worker(0).Runtime() != rt {
		t.Fatal("worker accessors broken")
	}
}

func TestForkLeftPanicReclaimsContinuation(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	var rightRuns atomic.Int64
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic from left branch to propagate")
			}
		}()
		_ = rt.RunAndMerge(func(c *Context) {
			c.Fork(
				func(*Context) { panic("left failure") },
				func(*Context) { rightRuns.Add(1) },
			)
		})
	}()
	// The continuation must not outlive the failed Run: whatever ran, ran
	// before Run returned; nothing may start afterwards.
	snapshot := rightRuns.Load()
	time.Sleep(20 * time.Millisecond)
	if got := rightRuns.Load(); got != snapshot {
		t.Fatalf("orphaned continuation executed after Run failed (%d -> %d)", snapshot, got)
	}
	if err := rt.RunAndMerge(func(*Context) {}); err != nil {
		t.Fatalf("runtime unusable after left panic: %v", err)
	}
}

func TestForkPanicWithAbandonedGroupChild(t *testing.T) {
	// A branch that spawns a group child and panics before Wait must not
	// hang Fork's panic cleanup (single worker: no thief will ever take
	// the continuation) nor let the abandoned child outlive the Run.
	for _, workers := range []int{1, 4} {
		rt := New(Config{Workers: workers})
		var childRuns atomic.Int64
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic to propagate")
				}
			}()
			_ = rt.RunAndMerge(func(c *Context) {
				c.Fork(
					func(c *Context) {
						g := c.NewGroup()
						// A slow child: with thieves around it is stolen
						// and still running when the panic unwinds, so
						// the abort path must wait it out.
						g.Spawn(func(*Context) {
							time.Sleep(30 * time.Millisecond)
							childRuns.Add(1)
						})
						time.Sleep(5 * time.Millisecond)
						panic("mid-group failure")
					},
					func(*Context) {},
				)
			})
		}()
		snapshot := childRuns.Load()
		time.Sleep(20 * time.Millisecond)
		if got := childRuns.Load(); got != snapshot {
			t.Fatalf("workers=%d: abandoned group child ran after Run failed (%d -> %d)",
				workers, snapshot, got)
		}
		if err := rt.RunAndMerge(func(*Context) {}); err != nil {
			t.Fatalf("workers=%d: runtime unusable after panic: %v", workers, err)
		}
		rt.Close()
	}
}

func TestGroupWaitInsideLaterForkPanic(t *testing.T) {
	// Wait may legally run inside a Fork branch pushed after the Spawns;
	// the group's live-fork entries are then not the newest.  A panic
	// after such a Wait must still settle the fork's continuation — it
	// must not outlive the failed Run — and the runtime must stay usable.
	rt := New(Config{Workers: 2})
	defer rt.Close()
	var rightRuns atomic.Int64
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic to propagate")
			}
		}()
		_ = rt.RunAndMerge(func(c *Context) {
			g := c.NewGroup()
			g.Spawn(func(*Context) { time.Sleep(2 * time.Millisecond) })
			c.Fork(
				func(*Context) {
					g.Wait()
					panic("after nested wait")
				},
				func(*Context) { rightRuns.Add(1) },
			)
		})
	}()
	snapshot := rightRuns.Load()
	time.Sleep(30 * time.Millisecond)
	if got := rightRuns.Load(); got != snapshot {
		t.Fatalf("fork continuation ran after Run failed (%d -> %d)", snapshot, got)
	}
	if err := rt.RunAndMerge(func(*Context) {}); err != nil {
		t.Fatalf("runtime unusable after panic: %v", err)
	}
}

func TestGroupWaitInsideLaterForkSingleWorker(t *testing.T) {
	// With one worker there is no thief: Wait inside a Fork branch pushed
	// after the Spawns can only make progress if the waiting worker runs
	// its own pending tasks (self-steal in waitJoin).  This deadlocked
	// before self-stealing existed.
	rt := New(Config{Workers: 1})
	defer rt.Close()
	var childRan, rightRan atomic.Int64
	err := rt.RunAndMerge(func(c *Context) {
		g := c.NewGroup()
		g.Spawn(func(*Context) { childRan.Add(1) })
		c.Fork(
			func(*Context) { g.Wait() },
			func(*Context) { rightRan.Add(1) },
		)
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	if childRan.Load() != 1 || rightRan.Load() != 1 {
		t.Fatalf("child ran %d, right ran %d; want 1 and 1", childRan.Load(), rightRan.Load())
	}
}

func TestNestedGroupWaitThenRootPanic(t *testing.T) {
	// A Wait nested in a later Fork's left branch zeroes a live-fork entry
	// below the inner fork's; the outer forks' stack pops must skip such
	// zeroes (popLiveFork) or a later panic sends abortScope chasing a
	// recycled join and the worker hangs forever.
	for _, workers := range []int{1, 4} {
		rt := New(Config{Workers: workers})
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected root panic to propagate")
				}
			}()
			_ = rt.RunAndMerge(func(c *Context) {
				c.Fork(
					func(c *Context) {
						g := c.NewGroup()
						g.Spawn(func(*Context) {})
						c.Fork(func(*Context) { g.Wait() }, func(*Context) {})
					},
					func(*Context) {},
				)
				panic("root failure after nested wait")
			})
		}()
		if err := rt.RunAndMerge(func(*Context) {}); err != nil {
			t.Fatalf("workers=%d: runtime unusable after panic: %v", workers, err)
		}
		rt.Close()
	}
}

func TestGroupSpawnInsideForkLeftBranch(t *testing.T) {
	// Spawning into a group from a fork's left branch leaves the child's
	// live entry above the fork's own; the fork's stack pop must remove
	// its own entry (by join identity), not whatever is newest.
	for _, workers := range []int{1, 4} {
		rt := New(Config{Workers: workers})
		var sum atomic.Int64
		err := rt.RunAndMerge(func(c *Context) {
			g := c.NewGroup()
			c.Fork(
				func(*Context) { g.Spawn(func(*Context) { sum.Add(1) }) },
				func(*Context) { sum.Add(10) },
			)
			g.Wait()
		})
		if err != nil {
			t.Fatalf("workers=%d: RunAndMerge: %v", workers, err)
		}
		if sum.Load() != 11 {
			t.Fatalf("workers=%d: sum = %d, want 11", workers, sum.Load())
		}
		rt.Close()
		sum.Store(0)
	}
}

func TestNestedWaitSweepThenPanicNoResurrection(t *testing.T) {
	// A nested Wait's trailing-zero sweep can shrink liveForks below an
	// enclosing scope's mark; scope-end truncation must clamp to len
	// rather than reslice up over vacated array slots, or a later panic
	// sends abortScope chasing a resurrected entry with a recycled join.
	rt := New(Config{Workers: 1})
	defer rt.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic to propagate")
			}
		}()
		_ = rt.RunAndMerge(func(c *Context) {
			g := c.NewGroup()
			g.Spawn(func(*Context) {})
			g.Spawn(func(c *Context) {
				g2 := c.NewGroup()
				g2.Spawn(func(*Context) {})
				g2.Wait()
				c.Fork(func(*Context) {}, func(*Context) {})
			})
			g.Wait()
			panic("after nested waits")
		})
	}()
	if got := len(rt.Worker(0).liveForks); got != 0 {
		t.Fatalf("liveForks not empty after aborted run: %d", got)
	}
	if err := rt.RunAndMerge(func(*Context) {}); err != nil {
		t.Fatalf("runtime unusable after panic: %v", err)
	}
}

func TestNestedGroupInsideEarlierSibling(t *testing.T) {
	// An earlier-spawned local child that runs its own nested group can
	// sweep a later sibling's zeroed live-fork entry off the stack; the
	// outer Wait's merge loop must tolerate the vanished index.
	rt := New(Config{Workers: 1})
	defer rt.Close()
	var ran atomic.Int64
	err := rt.RunAndMerge(func(c *Context) {
		g := c.NewGroup()
		g.Spawn(func(c *Context) {
			g2 := c.NewGroup()
			g2.Spawn(func(*Context) { ran.Add(1) })
			g2.Wait()
		})
		g.Spawn(func(*Context) { ran.Add(1) })
		g.Wait()
	})
	if err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
	if ran.Load() != 2 {
		t.Fatalf("ran = %d, want 2", ran.Load())
	}
}
