// Package sched implements the work-stealing fork-join runtime on which the
// reducer mechanisms run.  It plays the role of the Cilk-M/Cilk Plus
// runtime in the paper: P workers, per-worker deques, randomized work
// stealing, and a join protocol under which a worker's execution between
// steals mirrors a serial execution exactly, so that reducer views need to
// be created, transferred and merged only when steals actually occur.
//
// Go cannot steal the un-reified continuation of a running function, so the
// primitive is Fork(left, right): left runs inline and right — the
// continuation — is pushed to the deque where a thief may promote it.  The
// serial fast path (no steal) performs no reducer-related work at all,
// matching the property the paper's overhead accounting relies on.
//
// The runtime keeps per-worker padded counters (forks, steals, merge
// tasks, deque depth) that Stats aggregates lock-free; Runtime implements
// metrics.Source, so the same counters can be scraped live through the
// metrics exporter.  Job-boundary failure containment (panic.go) turns
// panics in parallel code into errors at the Run boundary without leaking
// views or deque entries.
package sched
