package sched

import (
	"testing"
	"time"
)

// orderReducers is a minimal ReducerRuntime over the noncommutative monoid
// of byte-sequence concatenation.  Each trace accumulates the values
// appended while it ran; EndTrace deposits the sequence; Merge concatenates
// a deposit after the current trace's sequence.  Because concatenation is
// not commutative, the final root deposit equals the serial sequence only
// if the scheduler begins/ends/merges traces in exactly the right order —
// including while traces nest arbitrarily deep during waitJoin helping.
type orderReducers struct{}

type orderLocal struct {
	// stack holds one byte sequence per nested trace; the top is the
	// trace the worker is currently executing.
	stack [][]byte
}

func (orderReducers) WorkerInit(w *Worker) { w.SetLocal(&orderLocal{}) }

func (orderReducers) BeginTrace(w *Worker) Trace {
	l := w.Local().(*orderLocal)
	l.stack = append(l.stack, nil)
	return len(l.stack)
}

func (orderReducers) EndTrace(w *Worker, tr Trace) Deposit {
	l := w.Local().(*orderLocal)
	if want, ok := tr.(int); !ok || want != len(l.stack) {
		panic("orderReducers: unbalanced trace nesting")
	}
	d := l.stack[len(l.stack)-1]
	l.stack = l.stack[:len(l.stack)-1]
	return d
}

func (orderReducers) Merge(w *Worker, tr Trace, dep Deposit) {
	d, _ := dep.([]byte)
	if len(d) == 0 {
		return
	}
	l := w.Local().(*orderLocal)
	top := len(l.stack) - 1
	l.stack[top] = append(l.stack[top], d...)
}

func (orderReducers) Discard(*Worker, Deposit) {}

// orderAppend records v in the current trace of the executing worker.
func orderAppend(c *Context, v int) {
	l := c.Worker().Local().(*orderLocal)
	top := len(l.stack) - 1
	l.stack[top] = append(l.stack[top], byte(v>>8), byte(v))
}

// TestTraceNestingUnderStealStorm forces a steal storm with deeply nested
// waitJoin helping (many fine-grained sleepy iterations across several
// workers, so stolen continuations stall at joins and the stalled workers
// help with further stolen work) and asserts that the reducer result for a
// noncommutative monoid still equals the serial execution exactly.
func TestTraceNestingUnderStealStorm(t *testing.T) {
	const n = 400
	rt := New(Config{Workers: 4, Reducers: orderReducers{}})
	defer rt.Close()
	dep, err := rt.Run(func(c *Context) {
		c.ParallelForGrain(0, n, 1, func(c *Context, i int) {
			// Yield the single underlying CPU so parked workers run and
			// steal, creating stalled joins up the fork tree.
			time.Sleep(50 * time.Microsecond)
			orderAppend(c, i)
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := rt.Stats()
	if st.Steals == 0 {
		t.Fatalf("test did not force any steals; stats %+v", st)
	}
	if st.StalledJoins == 0 {
		t.Fatalf("test did not stall any joins; stats %+v", st)
	}
	got, _ := dep.([]byte)
	if len(got) != 2*n {
		t.Fatalf("deposit has %d bytes, want %d (stats %+v)", len(got), 2*n, st)
	}
	for i := 0; i < n; i++ {
		v := int(got[2*i])<<8 | int(got[2*i+1])
		if v != i {
			t.Fatalf("position %d holds %d, want %d — reducer order diverged "+
				"from serial execution (steals=%d stalled=%d helped=%d)",
				i, v, i, st.Steals, st.StalledJoins, st.HelpedTasks)
		}
	}
	if testing.Verbose() {
		t.Logf("steals=%d stalledJoins=%d helped=%d maxDeque=%d",
			st.Steals, st.StalledJoins, st.HelpedTasks, st.MaxDequeDepth)
	}
}

// TestTraceNestingDeepHelp builds an unbalanced fork tree whose left spine
// sleeps at every level, so thieves take the right continuations and the
// owner stalls at a chain of joins, helping with stolen grandchildren —
// the deepest nesting the runtime produces.  The concatenation result must
// still be serial.
func TestTraceNestingDeepHelp(t *testing.T) {
	const depth = 64
	rt := New(Config{Workers: 4, Reducers: orderReducers{}})
	defer rt.Close()
	var spine func(c *Context, level int)
	spine = func(c *Context, level int) {
		if level == depth {
			return
		}
		c.Fork(
			func(c *Context) {
				time.Sleep(20 * time.Microsecond)
				orderAppend(c, 2*level)
			},
			func(c *Context) {
				orderAppend(c, 2*level+1)
				spine(c, level+1)
			},
		)
	}
	dep, err := rt.Run(func(c *Context) { spine(c, 0) })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got, _ := dep.([]byte)
	if len(got) != 2*2*depth {
		t.Fatalf("deposit has %d bytes, want %d", len(got), 2*2*depth)
	}
	for i := 0; i < 2*depth; i++ {
		v := int(got[2*i])<<8 | int(got[2*i+1])
		if v != i {
			st := rt.Stats()
			t.Fatalf("position %d holds %d, want %d (stats %+v)", i, v, i, st)
		}
	}
}
