package sched

import "testing"

// TestContextAccessorsMirrorWorker pins the two context-level accessors the
// typed lookup fast path leans on: WorkerID must equal the executing
// worker's ID on every context the runtime hands out (root and both fork
// branches, stolen or not), and ViewEpoch must track the worker's live
// epoch through invalidations.
func TestContextAccessorsMirrorWorker(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	check := func(c *Context) {
		if got, want := c.WorkerID(), c.Worker().ID(); got != want {
			t.Errorf("WorkerID = %d, want %d", got, want)
		}
		if got, want := c.ViewEpoch(), c.Worker().ViewEpoch(); got != want {
			t.Errorf("ViewEpoch = %d, want %d", got, want)
		}
	}
	if err := rt.RunAndMerge(func(c *Context) {
		check(c)
		c.Fork(check, check)

		before := c.ViewEpoch()
		c.Worker().InvalidateLookupCache()
		if got := c.ViewEpoch(); got != before+1 {
			t.Errorf("ViewEpoch after invalidation = %d, want %d", got, before+1)
		}
		c.Worker().PublishViewInvalidation()
		if got := c.ViewEpoch(); got != before+2 {
			t.Errorf("ViewEpoch after publication = %d, want %d", got, before+2)
		}
	}); err != nil {
		t.Fatalf("RunAndMerge: %v", err)
	}
}
