package locking

import (
	"sync"
	"testing"
)

func TestSpinLockMutualExclusion(t *testing.T) {
	var l SpinLock
	counter := 0
	var wg sync.WaitGroup
	const goroutines = 8
	const perG = 5000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*perG {
		t.Fatalf("counter = %d, want %d", counter, goroutines*perG)
	}
}

func TestSpinLockTryLock(t *testing.T) {
	var l SpinLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock should succeed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock should fail")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock should succeed")
	}
	l.Unlock()
	if l.Locker() == nil {
		t.Fatal("Locker() should not be nil")
	}
}

func TestSpinLockUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var l SpinLock
	l.Unlock()
}

func TestCellOperations(t *testing.T) {
	var c Cell
	c.Add(10)
	c.Add(-3)
	if c.Load() != 7 {
		t.Fatalf("Load = %d, want 7", c.Load())
	}
	c.Min(3)
	if c.Load() != 3 {
		t.Fatalf("after Min(3) = %d, want 3", c.Load())
	}
	c.Min(5)
	if c.Load() != 3 {
		t.Fatalf("Min(5) should not raise the value, got %d", c.Load())
	}
	c.Max(9)
	if c.Load() != 9 {
		t.Fatalf("after Max(9) = %d, want 9", c.Load())
	}
	c.Max(2)
	if c.Load() != 9 {
		t.Fatalf("Max(2) should not lower the value, got %d", c.Load())
	}
	c.Store(-1)
	if c.Load() != -1 {
		t.Fatalf("Store/Load = %d, want -1", c.Load())
	}
}

func TestCellConcurrentAdds(t *testing.T) {
	var c Cell
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 40000 {
		t.Fatalf("Load = %d, want 40000", c.Load())
	}
}

func TestArray(t *testing.T) {
	a := NewArray(4)
	if a.Len() != 4 {
		t.Fatalf("Len = %d, want 4", a.Len())
	}
	for i := 0; i < 100; i++ {
		a.Add(i%4, int64(i))
	}
	vals := a.Values()
	var total int64
	for _, v := range vals {
		total += v
	}
	if total != 99*100/2 {
		t.Fatalf("sum of cells = %d, want %d", total, 99*100/2)
	}
	// Out-of-range indices wrap.
	a.Add(7, 1)
	if a.Cell(7) != a.Cell(3) {
		t.Fatal("cell indexing should wrap")
	}
	small := NewArray(0)
	if small.Len() != 1 {
		t.Fatalf("NewArray(0) should clamp to 1, got %d", small.Len())
	}
}

func TestMutexCell(t *testing.T) {
	var c MutexCell
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				c.Add(2)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 40000 {
		t.Fatalf("Load = %d, want 40000", c.Load())
	}
}
