// Package locking provides the locking baseline that the paper's Figure 1
// compares against reducer lookups: a spin lock in the style of
// pthread_spin_lock, plus lock-guarded accumulator cells that play the role
// of the "lock and unlock around the memory updates" microbenchmark.
package locking

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SpinLock is a test-and-test-and-set spin lock with exponential backoff.
// Unlike a raw pthread spin lock it yields to the Go scheduler while
// backing off, so it remains usable when workers are multiplexed onto fewer
// OS threads than there are spinners.
type SpinLock struct {
	state atomic.Uint32
}

// Lock acquires the lock, spinning until it is available.
func (l *SpinLock) Lock() {
	backoff := 1
	for {
		if l.TryLock() {
			return
		}
		// Test-and-test-and-set: spin reading until the lock looks free.
		for l.state.Load() != 0 {
			for i := 0; i < backoff; i++ {
				// Busy wait.
			}
			if backoff < 1<<10 {
				backoff <<= 1
			} else {
				runtime.Gosched()
			}
		}
	}
}

// TryLock attempts to acquire the lock without spinning.
func (l *SpinLock) TryLock() bool {
	return l.state.CompareAndSwap(0, 1)
}

// Unlock releases the lock.  Unlocking an unlocked SpinLock panics.
func (l *SpinLock) Unlock() {
	if l.state.Swap(0) != 1 {
		panic("locking: unlock of unlocked SpinLock")
	}
}

// Locker returns the lock as a sync.Locker.
func (l *SpinLock) Locker() sync.Locker { return l }

var _ sync.Locker = (*SpinLock)(nil)

// Cell is a spin-lock-guarded accumulator cell: the unit of the locking
// microbenchmark, one lock per memory location.
type Cell struct {
	lock SpinLock
	v    int64
}

// Add adds delta to the cell under its lock.
func (c *Cell) Add(delta int64) {
	c.lock.Lock()
	c.v += delta
	c.lock.Unlock()
}

// Min lowers the cell to v under its lock.
func (c *Cell) Min(v int64) {
	c.lock.Lock()
	if v < c.v {
		c.v = v
	}
	c.lock.Unlock()
}

// Max raises the cell to v under its lock.
func (c *Cell) Max(v int64) {
	c.lock.Lock()
	if v > c.v {
		c.v = v
	}
	c.lock.Unlock()
}

// Store sets the cell's value under its lock.
func (c *Cell) Store(v int64) {
	c.lock.Lock()
	c.v = v
	c.lock.Unlock()
}

// Load returns the cell's value under its lock.
func (c *Cell) Load() int64 {
	c.lock.Lock()
	v := c.v
	c.lock.Unlock()
	return v
}

// Array is a set of lock-guarded cells, one lock per location, as used by
// the Figure 1 locking microbenchmark.
type Array struct {
	cells []Cell
}

// NewArray creates an array of n zero cells.
func NewArray(n int) *Array {
	if n < 1 {
		n = 1
	}
	return &Array{cells: make([]Cell, n)}
}

// Len returns the number of cells.
func (a *Array) Len() int { return len(a.cells) }

// Cell returns the i-th cell.
func (a *Array) Cell(i int) *Cell { return &a.cells[i%len(a.cells)] }

// Add adds delta to cell i under that cell's lock.
func (a *Array) Add(i int, delta int64) { a.Cell(i).Add(delta) }

// Values returns a snapshot of every cell.
func (a *Array) Values() []int64 {
	out := make([]int64, len(a.cells))
	for i := range a.cells {
		out[i] = a.cells[i].Load()
	}
	return out
}

// MutexCell is the same accumulator guarded by a sync.Mutex, provided so the
// harness can also report the cost of the standard library lock.
type MutexCell struct {
	mu sync.Mutex
	v  int64
}

// Add adds delta under the mutex.
func (c *MutexCell) Add(delta int64) {
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Load returns the value under the mutex.
func (c *MutexCell) Load() int64 {
	c.mu.Lock()
	v := c.v
	c.mu.Unlock()
	return v
}
