// Package metrics provides the instrumentation used to reproduce the
// paper's overhead measurements: per-worker padded counters for the four
// sources of reduce overhead (view creation, view insertion, view
// transferal and hypermerge), simple timing statistics, and text renderers
// for the tables and figures the benchmark harness prints.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Overhead identifies one of the reduce-overhead categories from Figure 8.
type Overhead int

// Overhead categories.
const (
	ViewCreation Overhead = iota
	ViewInsertion
	Hypermerge
	ViewTransferal
	numOverheads
)

// String returns the category name as used in the paper's figures.
func (o Overhead) String() string {
	switch o {
	case ViewCreation:
		return "view creation"
	case ViewInsertion:
		return "view insertion"
	case Hypermerge:
		return "hypermerge"
	case ViewTransferal:
		return "view transferal"
	default:
		return fmt.Sprintf("overhead(%d)", int(o))
	}
}

// Overheads returns every category in display order.
func Overheads() []Overhead {
	return []Overhead{ViewCreation, ViewInsertion, Hypermerge, ViewTransferal}
}

// Breakdown holds accumulated time and event counts per overhead category.
type Breakdown struct {
	Nanos  [numOverheads]int64
	Counts [numOverheads]int64
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(other Breakdown) {
	for i := range b.Nanos {
		b.Nanos[i] += other.Nanos[i]
		b.Counts[i] += other.Counts[i]
	}
}

// Total returns the summed duration across all categories.
func (b Breakdown) Total() time.Duration {
	var t int64
	for _, n := range b.Nanos {
		t += n
	}
	return time.Duration(t)
}

// Duration returns the accumulated time in one category.
func (b Breakdown) Duration(o Overhead) time.Duration { return time.Duration(b.Nanos[o]) }

// Count returns the number of events in one category.
func (b Breakdown) Count(o Overhead) int64 { return b.Counts[o] }

// String renders the breakdown in a compact single line.
func (b Breakdown) String() string {
	parts := make([]string, 0, numOverheads)
	for _, o := range Overheads() {
		parts = append(parts, fmt.Sprintf("%s=%v/%d", o, b.Duration(o), b.Count(o)))
	}
	return strings.Join(parts, " ")
}

// cacheLinePad separates per-worker counters to avoid false sharing.
type cacheLinePad [64]byte

// PaddedCounter is an atomic int64 counter padded out to a cache line, so
// that slices of per-worker counters (scheduler statistics, the reducer
// engines' lookup counters) do not false-share.  The zero value is ready
// to use.
//
//cilkvet:nocopy
type PaddedCounter struct {
	n atomic.Int64
	_ [56]byte
}

// Add atomically adds delta and returns the new value.
func (c *PaddedCounter) Add(delta int64) int64 { return c.n.Add(delta) }

// Load atomically reads the counter.
func (c *PaddedCounter) Load() int64 { return c.n.Load() }

// Store atomically sets the counter.
func (c *PaddedCounter) Store(v int64) { c.n.Store(v) }

// Max raises the counter to v if v is greater than the current value.
func (c *PaddedCounter) Max(v int64) {
	for {
		cur := c.n.Load()
		if v <= cur || c.n.CompareAndSwap(cur, v) {
			return
		}
	}
}

// MergePipeline aggregates the counters of the batched, parallel hypermerge
// pipeline: how many deposits were merged, how many occupied SPA slots they
// carried, how those slots were grouped into batches, and how often the
// batches were fanned out through the scheduler as forked merge tasks.  The
// pipeline's efficiency claim — bulk page movement means fewer pagepool
// round-trips than slots merged — is checked against these counters together
// with pagepool.Stats.RoundTrips.
type MergePipeline struct {
	Merges          PaddedCounter // deposits folded by Merge
	SlotsMerged     PaddedCounter // occupied slots processed (reduces + adopts)
	Reduces         PaddedCounter // slots reduced current ⊗ deposited
	Adopts          PaddedCounter // slots adopted (deposit only)
	Batches         PaddedCounter // reduce batches formed
	ParallelMerges  PaddedCounter // merges fanned out as forked merge tasks
	BulkPageFetches PaddedCounter // bulk pagepool fetches by view transferal
	BulkPageReturns PaddedCounter // bulk pagepool returns after merging
	StaleViewDrops  PaddedCounter // in-flight views dropped after their reducer was unregistered
	// IdentityElisions counts views that were looked up but never handed
	// out for mutation (their slot's written bit stayed clear), so the
	// pipeline recycled them without a reduce call or a page round-trip:
	// reducing with the monoid identity is a no-op.
	IdentityElisions PaddedCounter
	// LocalitySorts counts merges whose reduce partition was large enough
	// to be sorted by (arena size class, view address) before batching, so
	// each batch walks its views in contiguous runs.
	LocalitySorts PaddedCounter
}

// MergePipelineStats is a point-in-time snapshot of MergePipeline.
// CacheHits is not tracked by the pipeline itself — the engines keep
// per-worker hit counters next to their lookup counters and fill the field
// in when snapshotting (see MM.MergeStats).
type MergePipelineStats struct {
	Merges           int64
	SlotsMerged      int64
	Reduces          int64
	Adopts           int64
	Batches          int64
	ParallelMerges   int64
	BulkPageFetches  int64
	BulkPageReturns  int64
	StaleViewDrops   int64
	IdentityElisions int64
	LocalitySorts    int64
	CacheHits        int64
}

// Snapshot reads every counter.
func (m *MergePipeline) Snapshot() MergePipelineStats {
	return MergePipelineStats{
		Merges:           m.Merges.Load(),
		SlotsMerged:      m.SlotsMerged.Load(),
		Reduces:          m.Reduces.Load(),
		Adopts:           m.Adopts.Load(),
		Batches:          m.Batches.Load(),
		ParallelMerges:   m.ParallelMerges.Load(),
		BulkPageFetches:  m.BulkPageFetches.Load(),
		BulkPageReturns:  m.BulkPageReturns.Load(),
		StaleViewDrops:   m.StaleViewDrops.Load(),
		IdentityElisions: m.IdentityElisions.Load(),
		LocalitySorts:    m.LocalitySorts.Load(),
	}
}

// Reset zeroes every counter.
func (m *MergePipeline) Reset() {
	m.Merges.Store(0)
	m.SlotsMerged.Store(0)
	m.Reduces.Store(0)
	m.Adopts.Store(0)
	m.Batches.Store(0)
	m.ParallelMerges.Store(0)
	m.BulkPageFetches.Store(0)
	m.BulkPageReturns.Store(0)
	m.StaleViewDrops.Store(0)
	m.IdentityElisions.Store(0)
	m.LocalitySorts.Store(0)
}

// LookupFastPathStats is a point-in-time snapshot of the devirtualized
// typed-lookup fast path's outcome counters.  The single-deref hit inside
// reducers.Handle is deliberately counter-free (a counter there would cost
// as much as the lookup it measures); these counters start one layer down,
// at the engines' concrete LookupWordFast entry points, which run only when
// a handle's per-worker cache slot misses — a per-trace event, not a
// per-update one, so an atomic increment is affordable there.
type LookupFastPathStats struct {
	// Hits counts fast probes answered by the precomputed (page, slot)
	// index — or, on the hypermap engine, the bucket-head probe — with no
	// slow-path work.
	Hits int64
	// Misses counts fast probes that fell through to the outlined miss
	// path (written-bit stamping, non-worker contexts, first touches,
	// recycled slots, retired handles).
	Misses int64
	// ColdMisses counts the subset of Misses that reached the engines'
	// lookupSlow — view creation, stale-slot recovery, or a retired
	// handle's frozen leftmost read.
	ColdMisses int64
}

// ArenaStats is a point-in-time aggregate of the per-worker view arenas:
// how identity views were allocated (free-list reuse vs fresh bump-chunk
// carves), how many dead views came back, and how many views bypassed the
// arena because their monoid is not arena-eligible.  Snapshots are taken
// while the engine is quiescent (the arenas are owner-goroutine-only).
type ArenaStats struct {
	Allocs      int64 // blocks handed out by the arenas
	FreeHits    int64 // allocations served from a free list (recycled views)
	ChunkAllocs int64 // fresh bump chunks allocated
	Frees       int64 // dead views returned to a free list
	FreeBlocks  int64 // blocks currently sitting on free lists
	HeapViews   int64 // identity views heap-allocated (monoid not arena-eligible)
}

// Add accumulates another snapshot into s (used to sum per-worker arenas).
func (s *ArenaStats) Add(other ArenaStats) {
	s.Allocs += other.Allocs
	s.FreeHits += other.FreeHits
	s.ChunkAllocs += other.ChunkAllocs
	s.Frees += other.Frees
	s.FreeBlocks += other.FreeBlocks
	s.HeapViews += other.HeapViews
}

// DirectoryCounters aggregates one registry shard's registration and
// contention events.  The fields are plain atomics rather than padded
// counters because each shard structure is already padded as a whole: only
// registrations that hash to the same shard touch the same counter lines,
// which is exactly the contention the counters are there to expose.
type DirectoryCounters struct {
	Registers        atomic.Int64 // successful registrations through this shard
	Recycles         atomic.Int64 // registrations served from the shard free list
	FreshSlots       atomic.Int64 // registrations that allocated a fresh slot
	Unregisters      atomic.Int64 // identity-checked unregistrations
	StaleUnregisters atomic.Int64 // unregisters that failed the identity CAS
	FreeRetries      atomic.Int64 // CAS retries on the free stack (contention)
	SlotGrows        atomic.Int64 // RCU republications of the slot array
}

// DirectoryStats is a point-in-time aggregate of a sharded reducer
// directory: shard layout, live/free slot population, and the summed
// per-shard counters.
type DirectoryStats struct {
	Shards           int
	Live             int64
	FreeSlots        int64
	GrownPages       int64
	Registers        int64
	Recycles         int64
	FreshSlots       int64
	Unregisters      int64
	StaleUnregisters int64
	FreeRetries      int64
	SlotGrows        int64
}

// workerCounters is one worker's slice of the recorder.
type workerCounters struct {
	nanos  [numOverheads]atomic.Int64
	counts [numOverheads]atomic.Int64
	_      cacheLinePad
}

// Recorder accumulates overhead contributions from many workers without
// contention and aggregates them on demand.
type Recorder struct {
	workers []workerCounters
	// timing controls whether durations are recorded; event counts are
	// always recorded.
	timing atomic.Bool
}

// NewRecorder creates a recorder for n workers.
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	r := &Recorder{workers: make([]workerCounters, n)}
	r.timing.Store(true)
	return r
}

// EnsureWorkers grows the recorder to at least n per-worker slots,
// preserving accumulated counts.  Like the engines' lookup counters it may
// only be called while nothing else touches the recorder — at attach time,
// before the runtime executes tasks — so that Record/Stop can keep
// indexing without a lock.
func (r *Recorder) EnsureWorkers(n int) {
	if n <= len(r.workers) {
		return
	}
	grown := make([]workerCounters, n)
	for i := range r.workers {
		for o := 0; o < int(numOverheads); o++ {
			grown[i].nanos[o].Store(r.workers[i].nanos[o].Load())
			grown[i].counts[o].Store(r.workers[i].counts[o].Load())
		}
	}
	r.workers = grown
}

// SetTiming enables or disables duration recording.  Disabling it removes
// the clock reads from the instrumented fast paths while keeping counts.
func (r *Recorder) SetTiming(on bool) { r.timing.Store(on) }

// Timing reports whether duration recording is enabled.
func (r *Recorder) Timing() bool { return r.timing.Load() }

// Record adds one event of category o with the given duration for worker w.
func (r *Recorder) Record(w int, o Overhead, d time.Duration) {
	wc := &r.workers[r.clamp(w)]
	wc.counts[o].Add(1)
	if r.timing.Load() && d > 0 {
		wc.nanos[o].Add(int64(d))
	}
}

// RecordCount adds n events of category o without timing.
func (r *Recorder) RecordCount(w int, o Overhead, n int64) {
	r.workers[r.clamp(w)].counts[o].Add(n)
}

// Start returns the current time if timing is enabled and the zero time
// otherwise; pair it with Stop.
func (r *Recorder) Start() time.Time {
	if !r.timing.Load() {
		return time.Time{}
	}
	return time.Now()
}

// Stop records one event of category o for worker w, measured from the
// Start value.
func (r *Recorder) Stop(w int, o Overhead, start time.Time) {
	wc := &r.workers[r.clamp(w)]
	wc.counts[o].Add(1)
	if !start.IsZero() {
		wc.nanos[o].Add(int64(time.Since(start)))
	}
}

// Snapshot aggregates all workers into one breakdown.
func (r *Recorder) Snapshot() Breakdown {
	var b Breakdown
	for i := range r.workers {
		for o := 0; o < int(numOverheads); o++ {
			b.Nanos[o] += r.workers[i].nanos[o].Load()
			b.Counts[o] += r.workers[i].counts[o].Load()
		}
	}
	return b
}

// Reset zeroes every counter.
func (r *Recorder) Reset() {
	for i := range r.workers {
		for o := 0; o < int(numOverheads); o++ {
			r.workers[i].nanos[o].Store(0)
			r.workers[i].counts[o].Store(0)
		}
	}
}

func (r *Recorder) clamp(w int) int {
	if w < 0 {
		return 0
	}
	return w % len(r.workers)
}

// Sample summarises repeated timing measurements.
type Sample struct {
	values []float64
}

// AddValue appends one measurement.
func (s *Sample) AddValue(v float64) { s.values = append(s.values, v) }

// AddDuration appends one duration measured in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.AddValue(d.Seconds()) }

// N returns the number of measurements.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the sample standard deviation, or 0 when fewer than two
// measurements exist.
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	acc := 0.0
	for _, v := range s.values {
		d := v - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(n-1))
}

// RelStdDev returns the standard deviation as a fraction of the mean, the
// quantity the paper reports ("standard deviation of less than 5%").
func (s *Sample) RelStdDev() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.StdDev() / m
}

// Min returns the smallest measurement, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest measurement, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Median returns the median measurement, or 0 for an empty sample.
func (s *Sample) Median() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Table is a minimal text-table builder for harness output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteString("\n")
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, cell)
		}
		sb.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		sb.WriteString(strings.Repeat("-", total))
		sb.WriteString("\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}
