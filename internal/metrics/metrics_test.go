package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
	"unsafe"
)

func TestOverheadStrings(t *testing.T) {
	names := map[Overhead]string{
		ViewCreation:   "view creation",
		ViewInsertion:  "view insertion",
		Hypermerge:     "hypermerge",
		ViewTransferal: "view transferal",
	}
	for o, want := range names {
		if o.String() != want {
			t.Fatalf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
	if got := Overhead(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown overhead string %q", got)
	}
	if len(Overheads()) != 4 {
		t.Fatalf("Overheads() returned %d categories, want 4", len(Overheads()))
	}
}

func TestRecorderRecordAndSnapshot(t *testing.T) {
	r := NewRecorder(4)
	r.Record(0, ViewCreation, 10*time.Nanosecond)
	r.Record(1, ViewCreation, 20*time.Nanosecond)
	r.Record(2, Hypermerge, 30*time.Nanosecond)
	r.RecordCount(3, ViewInsertion, 5)
	b := r.Snapshot()
	if b.Count(ViewCreation) != 2 || b.Duration(ViewCreation) != 30*time.Nanosecond {
		t.Fatalf("ViewCreation = %v/%d", b.Duration(ViewCreation), b.Count(ViewCreation))
	}
	if b.Count(ViewInsertion) != 5 || b.Duration(ViewInsertion) != 0 {
		t.Fatalf("ViewInsertion = %v/%d", b.Duration(ViewInsertion), b.Count(ViewInsertion))
	}
	if b.Total() != 60*time.Nanosecond {
		t.Fatalf("Total = %v, want 60ns", b.Total())
	}
	if !strings.Contains(b.String(), "hypermerge") {
		t.Fatalf("String() = %q", b.String())
	}
	r.Reset()
	if r.Snapshot().Total() != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestRecorderTimingToggle(t *testing.T) {
	r := NewRecorder(1)
	if !r.Timing() {
		t.Fatal("timing should default to enabled")
	}
	r.SetTiming(false)
	start := r.Start()
	if !start.IsZero() {
		t.Fatal("Start should return zero time when timing is disabled")
	}
	r.Stop(0, ViewTransferal, start)
	r.Record(0, ViewTransferal, time.Second)
	b := r.Snapshot()
	if b.Count(ViewTransferal) != 2 {
		t.Fatalf("counts = %d, want 2", b.Count(ViewTransferal))
	}
	if b.Duration(ViewTransferal) != 0 {
		t.Fatalf("durations should not accumulate when timing is off, got %v", b.Duration(ViewTransferal))
	}
	r.SetTiming(true)
	start = r.Start()
	time.Sleep(time.Millisecond)
	r.Stop(0, ViewTransferal, start)
	if r.Snapshot().Duration(ViewTransferal) == 0 {
		t.Fatal("expected a positive duration with timing enabled")
	}
}

func TestRecorderWorkerClamping(t *testing.T) {
	r := NewRecorder(2)
	r.Record(-1, ViewCreation, time.Nanosecond)
	r.Record(17, ViewCreation, time.Nanosecond)
	if got := r.Snapshot().Count(ViewCreation); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	r0 := NewRecorder(0)
	r0.Record(0, ViewCreation, time.Nanosecond)
	if r0.Snapshot().Count(ViewCreation) != 1 {
		t.Fatal("zero-worker recorder should clamp to one slot")
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := NewRecorder(4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(worker, Hypermerge, time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	b := r.Snapshot()
	if b.Count(Hypermerge) != 4000 {
		t.Fatalf("count = %d, want 4000", b.Count(Hypermerge))
	}
	if b.Duration(Hypermerge) != 4000*time.Nanosecond {
		t.Fatalf("duration = %v, want 4µs", b.Duration(Hypermerge))
	}
}

func TestBreakdownAdd(t *testing.T) {
	var a, b Breakdown
	a.Nanos[ViewCreation] = 10
	a.Counts[ViewCreation] = 1
	b.Nanos[ViewCreation] = 5
	b.Counts[ViewCreation] = 2
	b.Nanos[Hypermerge] = 7
	a.Add(b)
	if a.Nanos[ViewCreation] != 15 || a.Counts[ViewCreation] != 3 || a.Nanos[Hypermerge] != 7 {
		t.Fatalf("Add produced %+v", a)
	}
}

func TestSampleStatistics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 || s.RelStdDev() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.AddValue(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	if got := s.StdDev(); got < 2.13 || got > 2.14 {
		t.Fatalf("StdDev = %v, want ~2.138", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Median() != 4.5 {
		t.Fatalf("Median = %v, want 4.5", s.Median())
	}
	if rel := s.RelStdDev(); rel <= 0 || rel >= 1 {
		t.Fatalf("RelStdDev = %v", rel)
	}
	var odd Sample
	odd.AddDuration(time.Second)
	odd.AddDuration(3 * time.Second)
	odd.AddDuration(2 * time.Second)
	if odd.Median() != 2 {
		t.Fatalf("Median of odd sample = %v, want 2", odd.Median())
	}
	var single Sample
	single.AddValue(3)
	if single.StdDev() != 0 {
		t.Fatal("StdDev of single sample should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "name", "time", "ratio")
	tb.AddRow("add-4", 1500*time.Microsecond, 3.14159)
	tb.AddRow("add-1024", 2*time.Second, 0.5)
	out := tb.String()
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "add-1024") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	if !strings.Contains(out, "3.142") {
		t.Fatalf("float formatting missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	empty := NewTable("")
	empty.AddRow("a", "b")
	if !strings.Contains(empty.String(), "a") {
		t.Fatal("headerless table should still render rows")
	}
}

func TestPaddedCounter(t *testing.T) {
	var c PaddedCounter
	if c.Load() != 0 {
		t.Fatal("zero value should read 0")
	}
	if got := c.Add(5); got != 5 {
		t.Fatalf("Add returned %d, want 5", got)
	}
	c.Max(3)
	if c.Load() != 5 {
		t.Fatalf("Max(3) lowered the counter to %d", c.Load())
	}
	c.Max(9)
	if c.Load() != 9 {
		t.Fatalf("Max(9) = %d, want 9", c.Load())
	}
	c.Store(-2)
	if c.Load() != -2 {
		t.Fatalf("Store/Load = %d, want -2", c.Load())
	}
	if unsafe.Sizeof(c) != 64 {
		t.Fatalf("PaddedCounter is %d bytes, want one 64-byte cache line", unsafe.Sizeof(c))
	}
}

func TestPaddedCounterConcurrentMax(t *testing.T) {
	var c PaddedCounter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Max(int64(g*1000 + i))
			}
		}()
	}
	wg.Wait()
	if c.Load() != 7999 {
		t.Fatalf("concurrent Max converged to %d, want 7999", c.Load())
	}
}

func TestRecorderEnsureWorkers(t *testing.T) {
	r := NewRecorder(2)
	r.RecordCount(1, Hypermerge, 7)
	r.EnsureWorkers(5)
	r.RecordCount(4, Hypermerge, 3)
	if got := r.Snapshot().Count(Hypermerge); got != 10 {
		t.Fatalf("counts after grow = %d, want 10", got)
	}
	r.EnsureWorkers(1) // never shrinks
	r.RecordCount(4, Hypermerge, 1)
	if got := r.Snapshot().Count(Hypermerge); got != 11 {
		t.Fatalf("counts after no-op grow = %d, want 11", got)
	}
}
