package metrics

// Shared sample emitters.  Both reducer engines export through these
// helpers so the metric names, help strings and units stay identical; the
// engine label distinguishes the mechanisms when both are registered on
// one exporter.  Ratio gauges are computed here, at sample time, from the
// counters in the same snapshot — exporting the rate alongside the raw
// counters lets a dashboard show the headline number without PromQL while
// keeping the counters available for rate() arithmetic.

// counter emits one counter sample with an engine label.
func counter(emit func(MetricSample), engine, name, help string, v int64) {
	emit(MetricSample{Name: name, Help: help, Kind: KindCounter,
		LabelKey: "engine", LabelValue: engine, Value: float64(v)})
}

// gauge emits one gauge sample with an engine label.
func gauge(emit func(MetricSample), engine, name, help string, v float64) {
	emit(MetricSample{Name: name, Help: help, Kind: KindGauge,
		LabelKey: "engine", LabelValue: engine, Value: v})
}

// ratio returns num/den, or 0 when the denominator is zero.
func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// EmitMergePipeline emits the hypermerge pipeline counters plus the two
// derived gauges the adaptive tuner consumes: merge batch occupancy
// (reduce pairs per batch) and the identity-elision rate (elided views as
// a fraction of views reaching the merge).
func EmitMergePipeline(emit func(MetricSample), engine string, s MergePipelineStats) {
	counter(emit, engine, "cilkm_merges_total", "Completed hypermerges.", s.Merges)
	counter(emit, engine, "cilkm_merge_slots_total", "SPA slots walked by hypermerges.", s.SlotsMerged)
	counter(emit, engine, "cilkm_merge_reduces_total", "Monoid reduce calls performed by hypermerges.", s.Reduces)
	counter(emit, engine, "cilkm_merge_adopts_total", "Views adopted without a reduce (empty left slot).", s.Adopts)
	counter(emit, engine, "cilkm_merge_batches_total", "Reduce batches formed by the merge pipeline.", s.Batches)
	counter(emit, engine, "cilkm_parallel_merges_total", "Hypermerges that fanned batches out through the scheduler.", s.ParallelMerges)
	counter(emit, engine, "cilkm_bulk_page_fetches_total", "Bulk page-pool fetches issued by view transferal.", s.BulkPageFetches)
	counter(emit, engine, "cilkm_bulk_page_returns_total", "Bulk page-pool returns issued by the merge pipeline.", s.BulkPageReturns)
	counter(emit, engine, "cilkm_stale_view_drops_total", "Invalidated views dropped instead of merged.", s.StaleViewDrops)
	counter(emit, engine, "cilkm_merge_locality_sorts_total", "Hypermerges whose reduce partition was ordered by (arena class, view address) before batching.", s.LocalitySorts)
	gauge(emit, engine, "cilkm_merge_batch_occupancy", "Reduce pairs per merge batch (cumulative average).", ratio(s.Reduces, s.Batches))
}

// EmitElisions emits the identity-elision counter and rate.  Split from
// EmitMergePipeline because the hypermap engine tracks elisions without
// running the batched pipeline.
func EmitElisions(emit func(MetricSample), engine string, elisions, slotsMerged int64) {
	counter(emit, engine, "cilkm_identity_elisions_total", "Never-written identity views elided instead of merged.", elisions)
	gauge(emit, engine, "cilkm_identity_elision_rate", "Elided views as a fraction of views reaching the merge.", ratio(elisions, elisions+slotsMerged))
}

// EmitLookups emits the lookup counters shared by both engines.  Only
// meaningful while lookup counting is enabled; the counters read zero
// otherwise.
func EmitLookups(emit func(MetricSample), engine string, lookups, cacheHits int64) {
	counter(emit, engine, "cilkm_lookups_total", "Reducer lookups (counted only while lookup counting is enabled).", lookups)
	counter(emit, engine, "cilkm_lookup_cache_hits_total", "Lookups served by the per-context cache.", cacheHits)
	gauge(emit, engine, "cilkm_lookup_cache_hit_rate", "Cache hits as a fraction of lookups.", ratio(cacheHits, lookups))
}

// EmitLookupFastPath emits the devirtualized typed-lookup fast-path
// counters shared by both engines, plus the derived hit rate (fast probes
// answered in place as a fraction of all fast probes).  These are always
// maintained — unlike the cilkm_lookups_total family they do not depend on
// lookup counting being enabled — because they only tick on handle-cache
// misses, off the single-deref hit path.
func EmitLookupFastPath(emit func(MetricSample), engine string, s LookupFastPathStats) {
	counter(emit, engine, "cilkm_fastpath_hits_total", "Typed-lookup fast probes answered by the precomputed slot index.", s.Hits)
	counter(emit, engine, "cilkm_fastpath_misses_total", "Typed-lookup fast probes that took the outlined miss path.", s.Misses)
	counter(emit, engine, "cilkm_fastpath_cold_misses_total", "Fast-path misses that created or re-resolved a view in lookupSlow.", s.ColdMisses)
	gauge(emit, engine, "cilkm_fastpath_hit_rate", "Fast probes answered in place, as a fraction of all fast probes.", ratio(s.Hits, s.Hits+s.Misses))
}

// EmitArena emits the per-worker view-arena aggregate, including the arena
// hit rate (free-list reuse as a fraction of arena allocations).
func EmitArena(emit func(MetricSample), engine string, s ArenaStats) {
	counter(emit, engine, "cilkm_arena_allocs_total", "View blocks handed out by the worker arenas.", s.Allocs)
	counter(emit, engine, "cilkm_arena_free_hits_total", "Arena allocations served from a free list (recycled views).", s.FreeHits)
	counter(emit, engine, "cilkm_arena_chunk_allocs_total", "Fresh bump chunks allocated by the arenas.", s.ChunkAllocs)
	counter(emit, engine, "cilkm_arena_frees_total", "Dead views returned to an arena free list.", s.Frees)
	counter(emit, engine, "cilkm_arena_heap_views_total", "Identity views heap-allocated because the monoid is not arena-eligible.", s.HeapViews)
	gauge(emit, engine, "cilkm_arena_free_blocks", "View blocks currently sitting on arena free lists.", float64(s.FreeBlocks))
	gauge(emit, engine, "cilkm_arena_hit_rate", "Arena allocations recycled from a free list, as a fraction.", ratio(s.FreeHits, s.Allocs))
}

// EmitDirectory emits the sharded reducer-directory aggregate.
func EmitDirectory(emit func(MetricSample), engine string, s DirectoryStats) {
	gauge(emit, engine, "cilkm_directory_shards", "Configured directory shard count.", float64(s.Shards))
	gauge(emit, engine, "cilkm_directory_live_reducers", "Reducers currently registered.", float64(s.Live))
	gauge(emit, engine, "cilkm_directory_free_slots", "Recycled slots available on the shard free lists.", float64(s.FreeSlots))
	counter(emit, engine, "cilkm_directory_registers_total", "Successful reducer registrations.", s.Registers)
	counter(emit, engine, "cilkm_directory_recycles_total", "Registrations served from a shard free list.", s.Recycles)
	counter(emit, engine, "cilkm_directory_unregisters_total", "Identity-checked unregistrations.", s.Unregisters)
	counter(emit, engine, "cilkm_directory_stale_unregisters_total", "Unregisters that lost the identity CAS.", s.StaleUnregisters)
	counter(emit, engine, "cilkm_directory_free_retries_total", "CAS retries on a shard free stack (contention).", s.FreeRetries)
	counter(emit, engine, "cilkm_directory_slot_grows_total", "RCU republications of a shard slot array.", s.SlotGrows)
}
