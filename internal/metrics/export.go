package metrics

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file implements the runtime's metrics export surface: a small,
// dependency-free exporter that serves point-in-time samples of the
// counters the rest of this package defines (and any other source that
// registers itself) in two wire formats — Prometheus text exposition and
// expvar-style JSON.
//
// The design splits responsibilities the same way the counters do:
//
//   - Sources (the engines, the scheduler, the fault-injection plan) own
//     their counters and implement Source by emitting MetricSample values
//     from lock-free snapshot reads of their padded atomics.  Sampling
//     never stops the world: a scrape observes each counter atomically but
//     the set of samples is not a consistent cut, exactly like scraping any
//     live process.
//   - The Exporter owns naming, registration and rendering.  Registration
//     replaces by source name, so a harness that builds a fresh engine per
//     experiment case can re-register under the same name and the endpoint
//     follows the live engine.
//
// The exporter is deliberately not a general metrics library: one label
// per sample, counters and gauges only, no histograms.  That is enough to
// expose every runtime signal the adaptive merge tuner and the bench
// guardrails consume, while keeping the scrape path allocation-light and
// the package free of third-party dependencies.

// MetricKind distinguishes the Prometheus TYPE of an exported sample.
type MetricKind int

// Metric kinds.
const (
	// KindCounter is a monotonically non-decreasing cumulative count.
	KindCounter MetricKind = iota
	// KindGauge is a point-in-time value that may go up and down.
	KindGauge
)

// promType returns the Prometheus TYPE keyword.
func (k MetricKind) promType() string {
	if k == KindGauge {
		return "gauge"
	}
	return "counter"
}

// MetricSample is one exported time series value.  Name must follow
// Prometheus conventions ([a-zA-Z_][a-zA-Z0-9_]*, counters ending in
// _total); LabelKey/LabelValue optionally attach a single label pair.
type MetricSample struct {
	Name       string
	Help       string
	Kind       MetricKind
	LabelKey   string
	LabelValue string
	Value      float64
}

// Source is implemented by subsystems that can be sampled for export: the
// reducer engines, the scheduler runtime, and the fault-injection plan all
// emit their counters through it.  Implementations must be safe to call at
// any time, concurrently with the hottest paths — in practice that means
// emitting from atomic counter loads only.
type Source interface {
	SampleMetrics(emit func(MetricSample))
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(emit func(MetricSample))

// SampleMetrics implements Source.
func (f SourceFunc) SampleMetrics(emit func(MetricSample)) { f(emit) }

// Exporter gathers samples from registered sources and serves them as
// Prometheus text exposition format and as expvar-style JSON.  It
// implements http.Handler; the zero value is not usable, construct with
// NewExporter.
type Exporter struct {
	mu sync.Mutex
	// sources is the RCU-published registration list: scrapes load the
	// pointer once and iterate without holding mu, so a slow registrant can
	// never block a scrape (or vice versa).
	sources atomic.Pointer[[]namedSource]
}

// namedSource pairs a registration name with its source.
type namedSource struct {
	name string
	src  Source
}

// NewExporter creates an empty exporter.
func NewExporter() *Exporter {
	e := &Exporter{}
	e.sources.Store(&[]namedSource{})
	return e
}

// Register installs (or, for an existing name, replaces) a sample source.
// Replacement makes registration idempotent for harnesses that rebuild
// their engine per experiment case: re-registering under the same name
// points the endpoint at the live instance.
func (e *Exporter) Register(name string, src Source) {
	if src == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := *e.sources.Load()
	next := make([]namedSource, 0, len(cur)+1)
	replaced := false
	for _, ns := range cur {
		if ns.name == name {
			next = append(next, namedSource{name: name, src: src})
			replaced = true
		} else {
			next = append(next, ns)
		}
	}
	if !replaced {
		next = append(next, namedSource{name: name, src: src})
	}
	e.sources.Store(&next)
}

// Unregister removes a sample source by name (a no-op for unknown names).
func (e *Exporter) Unregister(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := *e.sources.Load()
	next := make([]namedSource, 0, len(cur))
	for _, ns := range cur {
		if ns.name != name {
			next = append(next, ns)
		}
	}
	e.sources.Store(&next)
}

// Gather samples every registered source and returns the samples sorted by
// name (then label value), ready for rendering.
func (e *Exporter) Gather() []MetricSample {
	var out []MetricSample
	for _, ns := range *e.sources.Load() {
		ns.src.SampleMetrics(func(s MetricSample) { out = append(out, s) })
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].LabelValue < out[j].LabelValue
	})
	return out
}

// WritePrometheus renders every sample in the Prometheus text exposition
// format (version 0.0.4): one # HELP and # TYPE header per metric name,
// then one line per sample.
func (e *Exporter) WritePrometheus(w io.Writer) error {
	samples := e.Gather()
	var b strings.Builder
	lastName := ""
	for _, s := range samples {
		if s.Name != lastName {
			if s.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.Name, escapeHelp(s.Help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, s.Kind.promType())
			lastName = s.Name
		}
		if s.LabelKey != "" {
			fmt.Fprintf(&b, "%s{%s=%q} %v\n", s.Name, s.LabelKey, s.LabelValue, promValue(s.Value))
		} else {
			fmt.Fprintf(&b, "%s %v\n", s.Name, promValue(s.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promValue formats a sample value the way Prometheus clients do: integral
// values without an exponent, everything else in Go's shortest form.
func promValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// escapeHelp escapes newlines and backslashes per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ExpvarMap flattens the current samples into an expvar-style map: metric
// name (with ".<label value>" appended for labelled samples) to value.
func (e *Exporter) ExpvarMap() map[string]float64 {
	out := make(map[string]float64)
	for _, s := range e.Gather() {
		key := s.Name
		if s.LabelKey != "" {
			key = key + "." + s.LabelValue
		}
		out[key] = s.Value
	}
	return out
}

// WriteExpvar renders the flattened sample map as JSON, the shape expvar's
// /debug/vars serves for published variables.
func (e *Exporter) WriteExpvar(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e.ExpvarMap())
}

// ExpvarVar returns the exporter as an expvar.Var whose String is the JSON
// of ExpvarMap, suitable for expvar.Publish: the runtime's metrics then
// appear under the chosen key on the standard /debug/vars endpoint.
func (e *Exporter) ExpvarVar() expvar.Var {
	return expvar.Func(func() any { return e.ExpvarMap() })
}

// PublishExpvar publishes the exporter on the process-wide expvar registry
// under the given name.  expvar.Publish panics on duplicate names, so call
// it once per process per name.
func (e *Exporter) PublishExpvar(name string) {
	expvar.Publish(name, e.ExpvarVar())
}

// ServeHTTP implements http.Handler.  The default response is Prometheus
// text exposition; `?format=expvar` (or `format=json`) selects the
// expvar-style JSON rendering of the same samples.  Mount it wherever the
// embedding server wants its scrape endpoint:
//
//	mux.Handle("/metrics", exporter)
func (e *Exporter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("format") {
	case "expvar", "json":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = e.WriteExpvar(w)
	default:
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = e.WritePrometheus(w)
	}
}
