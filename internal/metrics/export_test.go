package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func staticSource(samples ...MetricSample) Source {
	return SourceFunc(func(emit func(MetricSample)) {
		for _, s := range samples {
			emit(s)
		}
	})
}

func TestExporterWritePrometheus(t *testing.T) {
	e := NewExporter()
	e.Register("a", staticSource(
		MetricSample{Name: "cilkm_merges_total", Help: "Completed hypermerges.", Kind: KindCounter,
			LabelKey: "engine", LabelValue: "mm", Value: 42},
		MetricSample{Name: "cilkm_arena_hit_rate", Help: "Arena hit rate.", Kind: KindGauge,
			LabelKey: "engine", LabelValue: "mm", Value: 0.75},
		MetricSample{Name: "cilkm_sched_workers", Kind: KindGauge, Value: 8},
	))
	var b strings.Builder
	if err := e.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP cilkm_merges_total Completed hypermerges.\n",
		"# TYPE cilkm_merges_total counter\n",
		`cilkm_merges_total{engine="mm"} 42` + "\n",
		"# TYPE cilkm_arena_hit_rate gauge\n",
		`cilkm_arena_hit_rate{engine="mm"} 0.75` + "\n",
		"cilkm_sched_workers 8\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestExporterHeaderOncePerName(t *testing.T) {
	e := NewExporter()
	e.Register("engines", staticSource(
		MetricSample{Name: "cilkm_lookups_total", Kind: KindCounter, LabelKey: "engine", LabelValue: "mm", Value: 1},
		MetricSample{Name: "cilkm_lookups_total", Kind: KindCounter, LabelKey: "engine", LabelValue: "hypermap", Value: 2},
	))
	var b strings.Builder
	if err := e.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, "# TYPE cilkm_lookups_total"); got != 1 {
		t.Errorf("TYPE header emitted %d times, want once:\n%s", got, out)
	}
	if !strings.Contains(out, `cilkm_lookups_total{engine="hypermap"} 2`) ||
		!strings.Contains(out, `cilkm_lookups_total{engine="mm"} 1`) {
		t.Errorf("missing per-engine samples:\n%s", out)
	}
}

func TestExporterExpvarJSON(t *testing.T) {
	e := NewExporter()
	e.Register("a", staticSource(
		MetricSample{Name: "cilkm_merges_total", Kind: KindCounter, LabelKey: "engine", LabelValue: "mm", Value: 7},
		MetricSample{Name: "cilkm_sched_steals_total", Kind: KindCounter, Value: 3},
	))
	var b strings.Builder
	if err := e.WriteExpvar(&b); err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.Unmarshal([]byte(b.String()), &m); err != nil {
		t.Fatalf("expvar output is not JSON: %v\n%s", err, b.String())
	}
	if m["cilkm_merges_total.mm"] != 7 || m["cilkm_sched_steals_total"] != 3 {
		t.Errorf("expvar map = %v", m)
	}
}

func TestExporterServeHTTPFormats(t *testing.T) {
	e := NewExporter()
	e.Register("a", staticSource(MetricSample{Name: "x_total", Kind: KindCounter, Value: 1}))

	rec := httptest.NewRecorder()
	e.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default Content-Type = %q, want Prometheus text", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("Prometheus body = %q", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	e.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=expvar", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("expvar Content-Type = %q, want JSON", ct)
	}
	var m map[string]float64
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil || m["x_total"] != 1 {
		t.Errorf("expvar body = %q (err %v)", rec.Body.String(), err)
	}
}

func TestExporterRegisterReplacesByName(t *testing.T) {
	e := NewExporter()
	e.Register("engine", staticSource(MetricSample{Name: "v", Kind: KindGauge, Value: 1}))
	e.Register("engine", staticSource(MetricSample{Name: "v", Kind: KindGauge, Value: 2}))
	samples := e.Gather()
	if len(samples) != 1 || samples[0].Value != 2 {
		t.Errorf("Gather after re-register = %+v, want single replaced sample", samples)
	}
	e.Unregister("engine")
	if got := e.Gather(); len(got) != 0 {
		t.Errorf("Gather after Unregister = %+v, want empty", got)
	}
}

func TestPromValueFormatting(t *testing.T) {
	if got := promValue(1e7); got != "10000000" {
		t.Errorf("promValue(1e7) = %q, want plain integer", got)
	}
	if got := promValue(0.25); got != "0.25" {
		t.Errorf("promValue(0.25) = %q", got)
	}
}
